let () =
  let write name src =
    let oc = open_out (Printf.sprintf "queries/%s.gql" name) in
    output_string oc src;
    close_out oc
  in
  let open Gql_workload.Queries in
  write "q1-all-books" q1_src;
  write "q2-expensive-titles" q2_src;
  write "q3-persons-with-address" q3_src;
  write "q4-product-origins" q4_src;
  write "q5-van-vendors" q5_src;
  write "q6-homeless" q6_src;
  write "q7-deep-last-names" q7_src;
  write "q8-ordered" q8_src;
  write "q9-by-employer" q9_src;
  write "q10-rest-list" q10_src;
  write "q11-siblings" q11_src;
  write "q12-root-links" q12_src;
  (* sample data *)
  let save path s = let oc = open_out path in output_string oc s; close_out oc in
  let bib = Gql_workload.Gen.bibliography ~seed:1 30 in
  let bib_with_dtd =
    { bib with
      Gql_xml.Tree.doctype =
        Some
          { Gql_xml.Tree.dt_name = "bib"; system_id = None; public_id = None;
            internal_subset = Some ("\n" ^ Gql_workload.Gen.book_dtd_text ^ "\n") } }
  in
  save "data/bibliography.xml" (Gql_xml.Printer.to_string_pretty bib_with_dtd);
  save "data/greengrocer.xml" (Gql_xml.Printer.to_string_pretty (Gql_workload.Gen.greengrocer ~seed:1 25));
  save "data/people.xml" (Gql_xml.Printer.to_string_pretty (Gql_workload.Gen.people ~seed:1 25));
  (* the paper's figures as SVG *)
  (try Unix.mkdir "figures" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun (e : Gql_workload.Queries.entry) ->
      match e.kind with
      | `Xmlgl p ->
        List.iteri
          (fun i r ->
            let d =
              Gql_visual.Builders.of_xmlgl_rule
                ~title:(e.name ^ ": " ^ e.description) r
            in
            let path =
              if i = 0 then Printf.sprintf "figures/%s.svg" (String.lowercase_ascii e.name)
              else Printf.sprintf "figures/%s-%d.svg" (String.lowercase_ascii e.name) i
            in
            Gql_visual.Svg.write_file path d)
          (Lazy.force p).Gql_xmlgl.Ast.rules
      | `Wglog p ->
        List.iteri
          (fun i r ->
            let d =
              Gql_visual.Builders.of_wglog_rule
                ~title:(e.name ^ ": " ^ e.description) r
            in
            let path =
              if i = 0 then Printf.sprintf "figures/%s.svg" (String.lowercase_ascii e.name)
              else Printf.sprintf "figures/%s-%d.svg" (String.lowercase_ascii e.name) i
            in
            Gql_visual.Svg.write_file path d)
          (Lazy.force p).Gql_wglog.Ast.rules)
    Gql_workload.Queries.suite;
  print_endline "generated"
