examples/schema_compare.ml: Gql_data Gql_dtd Gql_workload Gql_xml Gql_xmlgl List Printf String
