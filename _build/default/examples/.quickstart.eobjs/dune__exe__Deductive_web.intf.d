examples/deductive_web.mli:
