examples/schema_compare.mli:
