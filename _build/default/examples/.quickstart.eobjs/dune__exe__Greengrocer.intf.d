examples/greengrocer.mli:
