examples/quickstart.mli:
