examples/bibliography.mli:
