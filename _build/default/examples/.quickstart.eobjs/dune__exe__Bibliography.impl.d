examples/bibliography.ml: Gql_core Gql_dtd Gql_workload Gql_xml Gql_xmlgl List Printf
