examples/greengrocer.ml: Gql_core Gql_workload Gql_xml Gql_xmlgl List Option Printf
