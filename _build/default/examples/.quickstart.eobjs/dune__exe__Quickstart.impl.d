examples/quickstart.ml: Gql_core Gql_xmlgl List Printf
