examples/deductive_web.ml: Gql_core Gql_data Gql_wglog Gql_workload List Printf
