(* Quickstart: load XML, draw a graphical query, run it, look at it.

   Run with:  dune exec examples/quickstart.exe *)

let database =
  {|<greengrocer>
      <products>
        <product><type>vegetable</type><name>cabbage</name>
          <price><unit>piece</unit><value>0.59</value></price>
          <vendor>DeRuiter</vendor></product>
        <product><type>fruit</type><name>cherry</name>
          <price><unit>kilo</unit><value>2.19</value></price>
          <vendor>Lafayette</vendor></product>
        <product><type>fruit</type><name>apple</name>
          <price><unit>kilo</unit><value>0.89</value></price>
          <vendor>VanHouten</vendor></product>
      </products>
      <vendors>
        <vendor><country>holland</country><name>DeRuiter</name></vendor>
        <vendor><country>france</country><name>Lafayette</name></vendor>
        <vendor><country>holland</country><name>VanHouten</name></vendor>
      </vendors>
    </greengrocer>|}

(* An XML-GL rule in the textual syntax: the left part (query) selects
   every product whose price/value is below 1, the right part
   (construct) rebuilds a small catalogue. *)
let cheap_products =
  {|xmlgl
result cheap-catalogue
rule
query
  node $p elem product
  node $n elem name
  node $pr elem price
  node $v elem value where self < 1
  edge $p $n
  edge $p $pr
  edge $pr $v
construct
  node item new item per $p
  node n copy $n deep
  node cost value $v
  root item
  edge item n
  edge item cost attr price
end
|}

let () =
  (* 1. load: the document becomes a semi-structured data graph *)
  let db = Gql_core.Gql.load_xml_string database in
  let nodes, edges = Gql_core.Gql.stats db in
  Printf.printf "loaded: %d graph nodes, %d edges\n\n" nodes edges;

  (* 2. run the graphical query *)
  let result = Gql_core.Gql.run_xmlgl_text db cheap_products in
  print_endline "== result ==";
  print_string (Gql_core.Gql.to_xml_string result);

  (* 3. the same question, navigationally (the baseline engine) *)
  let via_xpath = Gql_core.Gql.xpath_select db "//product[price/value < 1]/name" in
  Printf.printf "\nXPath agrees: %d cheap products\n\n" (List.length via_xpath);

  (* 4. look at the query the way the paper draws it *)
  let program = Gql_core.Gql.parse_xmlgl cheap_products in
  let diagram =
    Gql_core.Gql.rule_diagram_xmlgl ~title:"cheap products (query | construct)"
      (List.hd program.Gql_xmlgl.Ast.rules)
  in
  print_string (Gql_core.Gql.render_ascii diagram);
  Gql_core.Gql.save_svg "quickstart-rule.svg" diagram;
  print_endline "\nwrote quickstart-rule.svg (open in a browser)";

  (* 5. EXPLAIN: the plan the algebra runs *)
  print_endline "\n== plan ==";
  print_string (Gql_core.Gql.explain_xmlgl db program)
