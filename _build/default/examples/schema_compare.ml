(* E2: XML-GL as a schema language vs the DTD (figures XML-GL-DTD1/2).

   The paper's claim: an XML-GL graph can state everything the BOOK DTD
   states, *plus* unordered content that no DTD can express.  This
   example shows both directions of the translation and the exact
   document that separates the two formalisms.

   Run with:  dune exec examples/schema_compare.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  section "the DTD of figure XML-GL-DTD2";
  print_string (Gql_dtd.Ast.to_string Gql_workload.Gen.book_dtd);

  section "translated to an XML-GL schema graph (figure XML-GL-DTD1)";
  let schema = Gql_xmlgl.Schema.of_dtd Gql_workload.Gen.book_dtd in
  List.iter
    (fun (d : Gql_xmlgl.Schema.decl) ->
      Printf.printf "  %s%s: %s%s%s\n" d.d_name
        (if d.d_ordered then " (ordered)" else " (unordered)")
        (String.concat ", "
           (List.map
              (fun (n, m) -> n ^ Gql_xmlgl.Schema.mult_to_string m)
              d.d_children))
        (match d.d_text with Some _ -> " #text" | None -> "")
        (match d.d_attrs with
        | [] -> ""
        | ats ->
          "  @" ^ String.concat " @" (List.map (fun (a, req) -> a ^ (if req then "!" else "?")) ats)))
    schema.Gql_xmlgl.Schema.decls;

  section "agreement on a 100-document corpus";
  let agree = ref 0 and total = ref 0 in
  for seed = 1 to 50 do
    List.iter
      (fun rate ->
        incr total;
        let doc = Gql_workload.Gen.bibliography ~seed ~defect_rate:rate 10 in
        let dtd_ok = Gql_dtd.Validate.is_valid Gql_workload.Gen.book_dtd doc in
        let g, _ = Gql_data.Codec.encode doc in
        let gl_ok = Gql_xmlgl.Schema.is_valid schema g in
        if dtd_ok = gl_ok then incr agree)
      [ 0.0; 0.5 ]
  done;
  Printf.printf "verdict agreement: %d / %d\n" !agree !total;

  section "where XML-GL is strictly more expressive";
  (* The paper's own point: BOOK content is *unordered* in the XML-GL
     figure — "this is not expressible in DTD syntax". *)
  let swapped =
    {|<BOOK isbn="1"><price>10</price><title>late title</title></BOOK>|}
  in
  let doc = Gql_xml.Parser.parse_document swapped in
  let g, _ = Gql_data.Codec.encode doc in
  let dtd_verdict = Gql_dtd.Validate.is_valid Gql_workload.Gen.book_dtd doc in
  let unordered = Gql_xmlgl.Schema.book_schema in
  let gl_verdict = Gql_xmlgl.Schema.is_valid unordered g in
  Printf.printf "document with price before title:\n  %s\n" swapped;
  Printf.printf "  DTD (ordered content model):        %s\n"
    (if dtd_verdict then "valid" else "INVALID");
  Printf.printf "  XML-GL schema (unordered content):  %s\n"
    (if gl_verdict then "valid" else "INVALID");

  section "and back: XML-GL -> DTD";
  (match Gql_xmlgl.Schema.to_dtd unordered with
  | _ -> ()
  | exception Gql_xmlgl.Schema.Not_translatable reason ->
    Printf.printf "unordered schema refuses to translate: %s\n" reason);
  let forced = Gql_xmlgl.Schema.to_dtd ~force_order:true unordered in
  print_endline "with force_order (linearised, loses the unordered semantics):";
  print_string (Gql_dtd.Ast.to_string forced)
