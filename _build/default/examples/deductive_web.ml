(* WG-Log over a hyperdocument web: the GraphLog figures (sibling links,
   root links via index+) and the restaurant aggregation figure, run as
   deductive fixpoints.

   Run with:  dune exec examples/deductive_web.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

let count_rel g label =
  let n = ref 0 in
  for i = 0 to Gql_data.Graph.n_nodes g - 1 do
    n :=
      !n
      + List.length
          (List.filter (fun (nm, _) -> nm = label) (Gql_data.Graph.rels g i))
  done;
  !n

let () =
  section "E1: the WG-Log restaurant figure";
  let restaurants = Gql_workload.Gen.restaurants ~seed:31 ~menu_fraction:0.6 12 in
  let db = Gql_core.Gql.of_graph restaurants in
  let stats =
    Gql_core.Gql.run_wglog_text ~schema:Gql_wglog.Schema.restaurant_schema db
      Gql_workload.Queries.q10_src
  in
  Printf.printf
    "fixpoint: %d rounds, %d embeddings, +%d nodes, +%d edges\n"
    stats.Gql_wglog.Eval.rounds stats.embeddings_found stats.nodes_added
    stats.edges_added;
  let rl = Gql_data.Graph.nodes_labelled restaurants "rest-list" in
  Printf.printf "rest-list instances: %d, members: %d\n" (List.length rl)
    (count_rel restaurants "member");

  section "E5a: sibling links (figure GraphLog-simple)";
  let web = Gql_workload.Gen.hyperdocs ~seed:32 ~fanout:3 ~link_factor:1 40 in
  let db2 = Gql_core.Gql.of_graph web in
  let s11 =
    Gql_core.Gql.run_wglog_text ~schema:Gql_wglog.Schema.hyperdoc_schema db2
      Gql_workload.Queries.q11_src
  in
  Printf.printf "derived %d sibling edges in %d rounds\n" s11.Gql_wglog.Eval.edges_added
    s11.Gql_wglog.Eval.rounds;

  section "E5b: root links via index+ (figure GraphLog-root)";
  let s12 =
    Gql_core.Gql.run_wglog_text ~schema:Gql_wglog.Schema.hyperdoc_schema db2
      Gql_workload.Queries.q12_src
  in
  Printf.printf "derived %d root edges\n" s12.Gql_wglog.Eval.edges_added;

  section "recursion: reachability as transitive closure";
  let closure = {|wglog
rule
  node a Document
  node b Document
  edge a link b
  cedge a reaches b
end
rule
  node a Document
  node b Document
  node c Document
  edge a reaches b
  edge b reaches c
  cedge a reaches c
end
|} in
  let small = Gql_workload.Gen.hyperdocs ~seed:33 ~fanout:2 ~link_factor:1 15 in
  let db3 = Gql_core.Gql.of_graph small in
  let s = Gql_core.Gql.run_wglog_text db3 closure in
  Printf.printf "closure: %d reaches-edges after %d rounds (base links: %d)\n"
    (count_rel small "reaches") s.Gql_wglog.Eval.rounds (count_rel small "link");

  section "a goal: which documents reach doc 0's page?";
  let p = Gql_core.Gql.parse_wglog closure in
  ignore p;
  let goal_rule =
    let b = Gql_wglog.Ast.Build.create () in
    let a = Gql_wglog.Ast.Build.entity b "Document" in
    let z = Gql_wglog.Ast.Build.entity b "Document" in
    Gql_wglog.Ast.Build.edge b ~label:"reaches" a z;
    Gql_wglog.Ast.Build.finish b
  in
  Printf.printf "reaches-pairs found by goal: %d\n"
    (List.length (Gql_core.Gql.wglog_goal db3 goal_rule));

  section "rendering the E1 rule";
  let prog =
    Gql_core.Gql.parse_wglog ~schema:Gql_wglog.Schema.restaurant_schema
      Gql_workload.Queries.q10_src
  in
  let d =
    Gql_core.Gql.rule_diagram_wglog ~title:"E1: rest-list of offering restaurants"
      (List.hd prog.Gql_wglog.Ast.rules)
  in
  print_string (Gql_core.Gql.render_ascii d);
  Gql_core.Gql.save_svg "deductive-e1.svg" d;
  print_endline "wrote deductive-e1.svg"
