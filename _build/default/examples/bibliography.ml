(* The paper's bibliography scenario: the BOOK/AUTHOR DTD of figure
   XML-GL-DTD2, the "all books" query of figure XML-GL-simple (E3), and
   a join/aggregation mix — run against a generated bibliography.

   Run with:  dune exec examples/bibliography.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  (* A 25-book bibliography valid against the paper's DTD. *)
  let doc = Gql_workload.Gen.bibliography ~seed:2026 25 in
  let db = Gql_core.Gql.of_document ~dtd:Gql_workload.Gen.book_dtd doc in

  section "the DTD (figure XML-GL-DTD2)";
  print_string (Gql_dtd.Ast.to_string Gql_workload.Gen.book_dtd);

  section "validation";
  let violations = Gql_core.Gql.validate_dtd db in
  Printf.printf "violations in generated corpus: %d\n" (List.length violations);

  section "E3: all BOOK elements, deep copy (figure XML-GL-simple)";
  let books = Gql_core.Gql.run_xmlgl_text db Gql_workload.Queries.q1_src in
  Printf.printf "%d books returned; first:\n" (List.length books.Gql_xml.Tree.children);
  (match books.Gql_xml.Tree.children with
  | first :: _ -> print_endline (Gql_xml.Printer.node_to_string first)
  | [] -> ());

  section "titles of books over 40 (selection, Q2)";
  let titles = Gql_core.Gql.run_xmlgl_text db Gql_workload.Queries.q2_src in
  List.iter
    (fun n -> print_endline ("  - " ^ Gql_xml.Tree.text_content n))
    titles.Gql_xml.Tree.children;

  section "the same, navigationally";
  Printf.printf "XPath %s -> %d nodes\n" Gql_workload.Queries.q2_xpath
    (List.length (Gql_core.Gql.xpath_select db Gql_workload.Queries.q2_xpath));

  section "authors per book (ordered query, Q8)";
  let ordered = Gql_core.Gql.run_xmlgl_text db Gql_workload.Queries.q8_src in
  Printf.printf "%d books have title before price\n"
    (List.length ordered.Gql_xml.Tree.children);

  section "co-author pairs (self-join through shared book)";
  let co_authors = {|xmlgl
result co-authors
rule
query
  node $b elem BOOK
  node $a1 elem AUTHOR
  node $a2 elem AUTHOR
  node $l1 elem last-name
  node $l2 elem last-name
  edge $b $a1
  edge $b $a2
  edge $a1 $l1
  edge $a2 $l2
construct
  node pair new pair per $a1
  node x copy $l1 deep
  node y copy $l2 deep
  root pair
  edge pair x
  edge pair y
end
|} in
  let pairs = Gql_core.Gql.run_xmlgl_text db co_authors in
  Printf.printf "%d author-pair slots (homomorphic: includes self-pairs)\n"
    (List.length pairs.Gql_xml.Tree.children);

  section "rendering the E3 rule";
  let p = Gql_core.Gql.parse_xmlgl Gql_workload.Queries.q1_src in
  let d =
    Gql_core.Gql.rule_diagram_xmlgl ~title:"E3: all books"
      (List.hd p.Gql_xmlgl.Ast.rules)
  in
  Gql_core.Gql.save_svg "bibliography-e3.svg" d;
  print_endline "wrote bibliography-e3.svg"
