(* The greengrocer database that runs through the supplied text's
   examples: value joins across the products/vendors sections, regular
   expressions on vendor names, restructuring with grouping.

   Run with:  dune exec examples/greengrocer.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let doc = Gql_workload.Gen.greengrocer ~seed:99 ~vendors:6 40 in
  let db = Gql_core.Gql.of_document doc in

  section "Q4: products with their vendor's country (value join)";
  let joined = Gql_core.Gql.run_xmlgl_text db Gql_workload.Queries.q4_src in
  Printf.printf "%d products resolved through the join; first two:\n"
    (List.length joined.Gql_xml.Tree.children);
  List.iteri
    (fun i n ->
      if i < 2 then print_endline ("  " ^ Gql_xml.Printer.node_to_string n))
    joined.Gql_xml.Tree.children;

  section "Q5: vendors matching /Van.*/ (the text's regex example)";
  let vans = Gql_core.Gql.run_xmlgl_text db Gql_workload.Queries.q5_src in
  Printf.printf "%d products sold by Van-someone\n"
    (List.length vans.Gql_xml.Tree.children);

  section "restructuring: products regrouped by type";
  let by_type = {|xmlgl
result catalogue
rule
query
  node $p elem product
  node $t elem type
  node $tv content
  edge $p $t
  edge $t $tv
construct
  node g group $tv
  node section new section
  node label value $tv
  node member copy $p deep
  root g
  edge g section
  edge section label attr kind
  edge section member
end
|} in
  let catalogue = Gql_core.Gql.run_xmlgl_text db by_type in
  List.iter
    (function
      | Gql_xml.Tree.Element e ->
        Printf.printf "  section kind=%s: %d products\n"
          (Option.value (Gql_xml.Tree.attr e "kind") ~default:"?")
          (List.length e.Gql_xml.Tree.children)
      | _ -> ())
    catalogue.Gql_xml.Tree.children;

  section "dutch vendors and what they sell (two-step join)";
  let dutch = {|xmlgl
result dutch-products
rule
query
  node $v elem vendor
  node $c elem country
  node $cv content where self ~ /[hH]olland/
  node $n elem name
  node $shared content
  node $p elem product
  node $pv elem vendor
  edge $v $c
  edge $c $cv
  edge $v $n
  edge $n $shared
  edge $p $pv
  edge $pv $shared
construct
  node item copy $p deep
  root item
end
|} in
  let d = Gql_core.Gql.run_xmlgl_text db dutch in
  Printf.printf "%d products from dutch vendors\n" (List.length d.Gql_xml.Tree.children);

  section "aggregate: every product name under one list (triangle)";
  let all_names = {|xmlgl
result name-list
rule
query
  node $p elem product
  node $n elem name
  edge $p $n
construct
  node l new list
  node t all $n
  root l
  edge l t
end
|} in
  let names = Gql_core.Gql.run_xmlgl_text db all_names in
  (match names.Gql_xml.Tree.children with
  | [ Gql_xml.Tree.Element l ] ->
    Printf.printf "list holds %d name elements\n" (List.length l.Gql_xml.Tree.children)
  | _ -> ());

  section "diagram of the two-step join";
  let p = Gql_core.Gql.parse_xmlgl dutch in
  let diagram =
    Gql_core.Gql.rule_diagram_xmlgl ~title:"dutch vendors join"
      (List.hd p.Gql_xmlgl.Ast.rules)
  in
  Gql_core.Gql.save_svg "greengrocer-join.svg" diagram;
  print_endline "wrote greengrocer-join.svg"
