lib/workload/gen.ml: Array Fun Gql_data Gql_dtd Gql_xml Gql_xpath Graph List Printf Prng Value
