lib/workload/queries.ml: Gql_lang Gql_wglog Gql_xmlgl Lazy
