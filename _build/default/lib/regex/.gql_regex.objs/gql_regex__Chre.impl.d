lib/regex/chre.ml: Char List Nfa Printf String Syntax
