lib/regex/nfa.ml: Array Fun List Seq Syntax
