lib/regex/syntax.ml: Buffer List
