lib/regex/glushkov.ml: Array List Syntax
