(** Glushkov (position) automata.

    DTD content models such as [(title?, price, AUTHOR°)] (where ° is the
    Kleene star) are regular
    expressions over element names, and the XML 1.0 rule that content
    models be *deterministic* (1-unambiguous) is exactly determinism of
    the Glushkov automaton.  This module builds the automaton for a
    regex over an arbitrary symbol type with equality, exposes acceptance
    over symbol sequences, and reports whether the expression is
    1-unambiguous. *)

type 'a t = {
  n_positions : int;
  syms : 'a array;  (** symbol at each position, 1-based positions 1..n *)
  first : int list;
  last : int list;
  follow : int list array;  (** follow.(p) for p in 1..n; index 0 unused *)
  nullable : bool;
}

(** Build the position automaton.  Positions number the symbol leaves of
    the expression left to right, starting at 1; state 0 is the initial
    state. *)
let build (re : 'a Syntax.t) : 'a t =
  let syms = Array.of_list (Syntax.symbols re) in
  let n = Array.length syms in
  let counter = ref 0 in
  (* Annotate: recompute first/last/nullable structurally, assigning
     positions in the same left-to-right order as [Syntax.symbols]. *)
  let follow = Array.make (n + 1) [] in
  let add_follow p q = follow.(p) <- q :: follow.(p) in
  (* returns (nullable, first, last) *)
  let rec go = function
    | Syntax.Empty -> (false, [], [])
    | Syntax.Eps -> (true, [], [])
    | Syntax.Sym _ ->
      incr counter;
      let p = !counter in
      (false, [ p ], [ p ])
    | Syntax.Seq (a, b) ->
      let na, fa, la = go a in
      let nb, fb, lb = go b in
      List.iter (fun p -> List.iter (fun q -> add_follow p q) fb) la;
      let first = if na then fa @ fb else fa in
      let last = if nb then lb @ la else lb in
      (na && nb, first, last)
    | Syntax.Alt (a, b) ->
      let na, fa, la = go a in
      let nb, fb, lb = go b in
      (na || nb, fa @ fb, la @ lb)
    | Syntax.Star a ->
      let _, fa, la = go a in
      List.iter (fun p -> List.iter (fun q -> add_follow p q) fa) la;
      (true, fa, la)
    | Syntax.Plus a ->
      let na, fa, la = go a in
      List.iter (fun p -> List.iter (fun q -> add_follow p q) fa) la;
      (na, fa, la)
    | Syntax.Opt a ->
      let na, fa, la = go a in
      ignore na;
      (true, fa, la)
  in
  let nullable, first, last = go re in
  let dedup l = List.sort_uniq compare l in
  Array.iteri (fun i l -> if i > 0 then follow.(i) <- dedup l) follow;
  {
    n_positions = n;
    syms;
    first = dedup first;
    last = dedup last;
    follow;
    nullable;
  }

let sym_at t p = t.syms.(p - 1)

(** Determinism (= 1-unambiguity of the source expression): no state has
    two outgoing transitions on the same symbol. *)
let deterministic ?(equal = ( = )) t =
  let distinct_syms ps =
    let rec go = function
      | [] -> true
      | p :: rest ->
        (not (List.exists (fun q -> equal (sym_at t p) (sym_at t q)) rest))
        && go rest
    in
    go ps
  in
  distinct_syms t.first
  && Array.for_all distinct_syms
       (Array.sub t.follow 1 (max 0 (Array.length t.follow - 1)))

(** Acceptance of a symbol sequence. *)
let accepts ?(equal = ( = )) t word =
  (* Current state: None = initial, Some set = set of positions. *)
  let step positions sym =
    List.filter (fun p -> equal (sym_at t p) sym) positions
  in
  let rec go current = function
    | [] ->
      (match current with
      | None -> t.nullable
      | Some ps -> List.exists (fun p -> List.mem p t.last) ps)
    | sym :: rest ->
      let nexts =
        match current with
        | None -> step t.first sym
        | Some ps ->
          List.sort_uniq compare
            (List.concat_map (fun p -> step t.follow.(p) sym) ps)
      in
      if nexts = [] then false else go (Some nexts) rest
  in
  go None word

(** First symbols that could legally start a word, for error reporting. *)
let expected_first ?(equal = ( = )) t =
  let add acc s = if List.exists (equal s) acc then acc else s :: acc in
  List.rev (List.fold_left (fun acc p -> add acc (sym_at t p)) [] t.first)
