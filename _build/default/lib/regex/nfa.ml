(** Thompson construction and subset simulation.

    The NFA is generic in the input token type ['tok]: each symbol leaf of
    the regex is compiled to a predicate ['tok -> bool] supplied by the
    caller.  Simulation maintains the epsilon-closed frontier of states, so
    matching a word of length [n] against an NFA with [m] states and [t]
    transitions costs O(n * t) — no exponential blow-up and no backtracking,
    which matters because query predicates run once per candidate node
    during pattern matching. *)

type 'tok t = {
  n_states : int;
  start : int;
  accept : int;
  (* eps.(q) lists the epsilon successors of q. *)
  eps : int list array;
  (* delta.(q) lists (predicate, successor) pairs. *)
  delta : ('tok -> bool) list array * int list array;
}

(* Transitions are stored as two parallel arrays to avoid allocating tuples
   on the hot path of [step]. *)

type 'tok builder = {
  mutable next : int;
  mutable b_eps : (int * int) list;
  mutable b_delta : (int * ('tok -> bool) * int) list;
}

let new_state b =
  let s = b.next in
  b.next <- s + 1;
  s

let add_eps b p q = b.b_eps <- (p, q) :: b.b_eps
let add_trans b p f q = b.b_delta <- (p, f, q) :: b.b_delta

(** [compile pred re] builds the Thompson NFA of [re], mapping each symbol
    [s] to the predicate [pred s]. *)
let compile (pred : 'a -> 'tok -> bool) (re : 'a Syntax.t) : 'tok t =
  let b = { next = 0; b_eps = []; b_delta = [] } in
  (* Each construction returns (entry, exit). *)
  let rec go = function
    | Syntax.Empty ->
      let i = new_state b and o = new_state b in
      (i, o)
    | Syntax.Eps ->
      let i = new_state b and o = new_state b in
      add_eps b i o;
      (i, o)
    | Syntax.Sym s ->
      let i = new_state b and o = new_state b in
      add_trans b i (pred s) o;
      (i, o)
    | Syntax.Seq (x, y) ->
      let ix, ox = go x in
      let iy, oy = go y in
      add_eps b ox iy;
      (ix, oy)
    | Syntax.Alt (x, y) ->
      let i = new_state b and o = new_state b in
      let ix, ox = go x in
      let iy, oy = go y in
      add_eps b i ix;
      add_eps b i iy;
      add_eps b ox o;
      add_eps b oy o;
      (i, o)
    | Syntax.Star x ->
      let i = new_state b and o = new_state b in
      let ix, ox = go x in
      add_eps b i ix;
      add_eps b i o;
      add_eps b ox ix;
      add_eps b ox o;
      (i, o)
    | Syntax.Plus x ->
      let ix, ox = go x in
      let o = new_state b in
      add_eps b ox ix;
      add_eps b ox o;
      (ix, o)
    | Syntax.Opt x ->
      let i = new_state b and o = new_state b in
      let ix, ox = go x in
      add_eps b i ix;
      add_eps b i o;
      add_eps b ox o;
      (i, o)
  in
  let start, accept = go re in
  let n = b.next in
  let eps = Array.make n [] in
  List.iter (fun (p, q) -> eps.(p) <- q :: eps.(p)) b.b_eps;
  let preds = Array.make n [] and succs = Array.make n [] in
  List.iter
    (fun (p, f, q) ->
      preds.(p) <- f :: preds.(p);
      succs.(p) <- q :: succs.(p))
    b.b_delta;
  { n_states = n; start; accept; eps; delta = (preds, succs) }

(** Epsilon closure of a state set, as a boolean membership array. *)
let closure nfa (set : bool array) =
  let stack = ref [] in
  Array.iteri (fun q m -> if m then stack := q :: !stack) set;
  let rec drain () =
    match !stack with
    | [] -> ()
    | q :: rest ->
      stack := rest;
      List.iter
        (fun q' ->
          if not set.(q') then begin
            set.(q') <- true;
            stack := q' :: !stack
          end)
        nfa.eps.(q);
      drain ()
  in
  drain ()

let start_set nfa =
  let set = Array.make nfa.n_states false in
  set.(nfa.start) <- true;
  closure nfa set;
  set

(** One simulation step: consume [tok] from state set [set]. *)
let step nfa set tok =
  let preds, succs = nfa.delta in
  let out = Array.make nfa.n_states false in
  let any = ref false in
  Array.iteri
    (fun q m ->
      if m then
        let rec go2 fs qs =
          match fs, qs with
          | f :: fs', q' :: qs' ->
            if (not out.(q')) && f tok then begin
              out.(q') <- true;
              any := true
            end;
            go2 fs' qs'
          | _, _ -> ()
        in
        go2 preds.(q) succs.(q))
    set;
  if !any then closure nfa out;
  out

let accepts_set nfa set = set.(nfa.accept)

(** Full-word match of a token sequence. *)
let run nfa (toks : 'tok Seq.t) =
  let set = ref (start_set nfa) in
  let alive = ref true in
  Seq.iter
    (fun tok ->
      if !alive then begin
        let s = step nfa !set tok in
        set := s;
        alive := Array.exists Fun.id s
      end)
    toks;
  !alive && accepts_set nfa !set

let run_list nfa toks = run nfa (List.to_seq toks)
