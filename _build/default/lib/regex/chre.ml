(** Character-level regular expressions.

    These are the regexes that appear in query predicates — e.g. the
    [/Van.*/] and [/[hH]olland/] patterns of the paper's running examples —
    and in GraphLog-style textual conditions.  The supported syntax is the
    classical core: literals, [.], character classes [[a-z0-9]] (with
    ranges and [^] negation), grouping, alternation [|], and the postfix
    operators [*], [+], [?].  Escaping with [\\] makes any metacharacter
    literal; [\\d], [\\w], [\\s] are provided as conveniences.

    A pattern by default must match the whole subject ({!matches});
    {!search} finds a match anywhere in the subject.  Matching is
    NFA-based (linear time), never backtracking. *)

type cls =
  | Any  (** [.] — any character *)
  | Lit of char
  | Set of { ranges : (char * char) list; negated : bool }

type t = {
  pattern : string;
  case_insensitive : bool;
  anchored : char Nfa.t;  (** whole-string automaton *)
  floating : char Nfa.t;  (** [.°  re .°] automaton for {!search} *)
  ast : cls Syntax.t;
}

exception Parse_error of string * int
(** [Parse_error (msg, pos)] — syntax error at byte offset [pos]. *)

let fail msg pos = raise (Parse_error (msg, pos))

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the pattern string.                  *)
(* ------------------------------------------------------------------ *)

let parse (s : string) : cls Syntax.t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c) !pos
  in
  let escape_class c =
    (* Shared by both top-level escapes and escapes inside [...] sets. *)
    match c with
    | 'd' -> Set { ranges = [ ('0', '9') ]; negated = false }
    | 'w' ->
      Set
        { ranges = [ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ];
          negated = false }
    | 's' ->
      Set
        { ranges = [ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r') ];
          negated = false }
    | 'n' -> Lit '\n'
    | 't' -> Lit '\t'
    | 'r' -> Lit '\r'
    | c -> Lit c
  in
  let parse_set () =
    (* Called after '['. *)
    let negated =
      match peek () with
      | Some '^' -> advance (); true
      | _ -> false
    in
    let ranges = ref [] in
    let rec items first =
      match peek () with
      | None -> fail "unterminated character class" !pos
      | Some ']' when not first -> advance ()
      | Some c ->
        advance ();
        let c =
          if c = '\\' then (
            match peek () with
            | None -> fail "dangling escape in class" !pos
            | Some e ->
              advance ();
              (match escape_class e with
              | Lit l -> l
              | Set { ranges = rs; negated = false } ->
                (* \d etc. inside a class: splice the ranges in. *)
                ranges := rs @ !ranges;
                (* Use a marker that adds nothing further. *)
                '\000'
              | _ -> fail "unsupported escape in class" !pos))
          else c
        in
        if c <> '\000' then begin
          match peek () with
          | Some '-' when !pos + 1 < n && s.[!pos + 1] <> ']' ->
            advance ();
            (match peek () with
            | Some hi ->
              advance ();
              if hi < c then fail "inverted range in class" !pos;
              ranges := (c, hi) :: !ranges
            | None -> fail "unterminated range" !pos)
          | _ -> ranges := (c, c) :: !ranges
        end;
        items false
    in
    items true;
    Set { ranges = List.rev !ranges; negated }
  in
  let rec parse_alt () =
    let left = parse_seq () in
    match peek () with
    | Some '|' ->
      advance ();
      Syntax.alt left (parse_alt ())
    | _ -> left
  and parse_seq () =
    let rec go acc =
      match peek () with
      | None | Some ')' | Some '|' -> acc
      | _ -> go (Syntax.seq acc (parse_postfix ()))
    in
    go Syntax.eps
  and parse_postfix () =
    let atom = parse_atom () in
    let parse_bound () =
      (* {n}, {n,}, {n,m} — desugared by expansion; bounds are capped to
         keep adversarial patterns from exploding the automaton *)
      let number () =
        let start = !pos in
        while (match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
          advance ()
        done;
        if !pos = start then None
        else Some (int_of_string (String.sub s start (!pos - start)))
      in
      let lo = number () in
      match lo with
      | None -> fail "expected a number in {}" !pos
      | Some lo ->
        if lo > 64 then fail "repetition bound too large (max 64)" !pos;
        let hi =
          match peek () with
          | Some ',' -> (
            advance ();
            match number () with
            | Some hi ->
              if hi > 64 then fail "repetition bound too large (max 64)" !pos;
              if hi < lo then fail "inverted repetition bounds" !pos;
              `Upto hi
            | None -> `Unbounded)
          | _ -> `Exactly
        in
        (match peek () with
        | Some '}' -> advance ()
        | _ -> fail "expected '}'" !pos);
        (lo, hi)
    in
    let repeat r (lo, hi) =
      let prefix = Syntax.seq_list (List.init lo (fun _ -> r)) in
      match hi with
      | `Exactly -> prefix
      | `Unbounded -> Syntax.seq prefix (Syntax.star r)
      | `Upto hi ->
        Syntax.seq prefix
          (Syntax.seq_list (List.init (hi - lo) (fun _ -> Syntax.opt r)))
    in
    let rec post r =
      match peek () with
      | Some '*' -> advance (); post (Syntax.star r)
      | Some '+' -> advance (); post (Syntax.plus r)
      | Some '?' -> advance (); post (Syntax.opt r)
      | Some '{' -> advance (); post (repeat r (parse_bound ()))
      | _ -> r
    in
    post atom
  and parse_atom () =
    match peek () with
    | None -> fail "expected atom" !pos
    | Some '(' ->
      advance ();
      let r = parse_alt () in
      expect ')';
      r
    | Some '[' ->
      advance ();
      Syntax.sym (parse_set ())
    | Some '.' ->
      advance ();
      Syntax.sym Any
    | Some '\\' ->
      advance ();
      (match peek () with
      | None -> fail "dangling escape" !pos
      | Some c ->
        advance ();
        Syntax.sym (escape_class c))
    | Some ('*' | '+' | '?') -> fail "quantifier with nothing to repeat" !pos
    | Some ')' -> fail "unbalanced ')'" !pos
    | Some c ->
      advance ();
      Syntax.sym (Lit c)
  in
  let r = parse_alt () in
  if !pos <> n then fail "trailing input" !pos;
  r

(* ------------------------------------------------------------------ *)
(* Matching.                                                           *)
(* ------------------------------------------------------------------ *)

let lower c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c

let cls_matches ~ci cls c =
  let c = if ci then lower c else c in
  match cls with
  | Any -> true
  | Lit l -> (if ci then lower l else l) = c
  | Set { ranges; negated } ->
    let inside =
      List.exists
        (fun (lo, hi) ->
          if ci then
            (* Case-insensitive sets: check both the raw and folded char. *)
            (c >= lower lo && c <= lower hi) || (c >= lo && c <= hi)
          else c >= lo && c <= hi)
        ranges
    in
    if negated then not inside else inside

let compile ?(case_insensitive = false) pattern =
  let ast = parse pattern in
  let pred cls c = cls_matches ~ci:case_insensitive cls c in
  let anchored = Nfa.compile pred ast in
  let dot_star = Syntax.star (Syntax.sym Any) in
  let floating = Nfa.compile pred Syntax.(seq dot_star (seq ast dot_star)) in
  { pattern; case_insensitive; anchored; floating; ast }

let compile_opt ?case_insensitive pattern =
  match compile ?case_insensitive pattern with
  | t -> Some t
  | exception Parse_error _ -> None

let matches t subject = Nfa.run t.anchored (String.to_seq subject)
let search t subject = Nfa.run t.floating (String.to_seq subject)
let pattern t = t.pattern
let ast t = t.ast

(* ------------------------------------------------------------------ *)
(* Reference matcher (Brzozowski derivatives) — used by property tests *)
(* to cross-check the NFA engine on random patterns and subjects.      *)
(* ------------------------------------------------------------------ *)

let rec derive ~ci c (r : cls Syntax.t) : cls Syntax.t =
  let open Syntax in
  match r with
  | Empty | Eps -> Empty
  | Sym cls -> if cls_matches ~ci cls c then Eps else Empty
  | Seq (a, b) ->
    let da_b = seq (derive ~ci c a) b in
    if nullable a then alt da_b (derive ~ci c b) else da_b
  | Alt (a, b) -> alt (derive ~ci c a) (derive ~ci c b)
  | Star a -> seq (derive ~ci c a) (star a)
  | Plus a -> seq (derive ~ci c a) (star a)
  | Opt a -> derive ~ci c a

let matches_reference t subject =
  let r = ref t.ast in
  String.iter (fun c -> r := derive ~ci:t.case_insensitive c !r) subject;
  Syntax.nullable !r
