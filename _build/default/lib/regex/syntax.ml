(** Abstract syntax of regular expressions over an arbitrary alphabet.

    This single AST backs three distinct users in the system:
    - character-level regexes in query predicates ({!Chre});
    - regular path expressions over edge labels (GraphLog-style dashed
      edges, see [Gql_graph.Regpath]);
    - DTD content models over element names (see [Gql_dtd] and
      {!Glushkov}).

    Leaves carry an abstract symbol ['a]; how a symbol matches an input
    token is decided by the compiler that consumes the AST. *)

type 'a t =
  | Empty  (** the empty language (matches nothing) *)
  | Eps  (** the empty word *)
  | Sym of 'a  (** a single alphabet symbol *)
  | Seq of 'a t * 'a t  (** concatenation *)
  | Alt of 'a t * 'a t  (** union *)
  | Star of 'a t  (** Kleene star *)
  | Plus of 'a t  (** one or more *)
  | Opt of 'a t  (** zero or one *)

(* Smart constructors perform the cheap algebraic simplifications that keep
   automata small: identities of [Eps]/[Empty] and idempotence of [Star]. *)

let empty = Empty
let eps = Eps
let sym s = Sym s

let seq a b =
  match a, b with
  | Empty, _ | _, Empty -> Empty
  | Eps, r | r, Eps -> r
  | a, b -> Seq (a, b)

let alt a b =
  match a, b with
  | Empty, r | r, Empty -> r
  | a, b -> if a = b then a else Alt (a, b)

let star = function
  | Empty | Eps -> Eps
  | Star _ as r -> r
  | Plus r -> Star r
  | r -> Star r

let plus = function
  | Empty -> Empty
  | Eps -> Eps
  | Star _ as r -> r
  | r -> Plus r

let opt = function
  | Empty -> Eps
  | Eps -> Eps
  | (Star _ | Opt _) as r -> r
  | r -> Opt r

let seq_list rs = List.fold_left seq eps rs
let alt_list rs = List.fold_left alt empty rs

(** [nullable r] is [true] iff the empty word belongs to the language. *)
let rec nullable = function
  | Empty -> false
  | Eps -> true
  | Sym _ -> false
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Star _ | Opt _ -> true
  | Plus r -> nullable r

(** Number of AST nodes; used by tests and by the visual layer to bound
    diagram sizes. *)
let rec size = function
  | Empty | Eps | Sym _ -> 1
  | Seq (a, b) | Alt (a, b) -> 1 + size a + size b
  | Star r | Plus r | Opt r -> 1 + size r

(** Symbols occurring in the expression, left to right, with duplicates. *)
let symbols r =
  let rec go acc = function
    | Empty | Eps -> acc
    | Sym s -> s :: acc
    | Seq (a, b) | Alt (a, b) -> go (go acc a) b
    | Star r | Plus r | Opt r -> go acc r
  in
  List.rev (go [] r)

let map f r =
  let rec go = function
    | Empty -> Empty
    | Eps -> Eps
    | Sym s -> Sym (f s)
    | Seq (a, b) -> Seq (go a, go b)
    | Alt (a, b) -> Alt (go a, go b)
    | Star r -> Star (go r)
    | Plus r -> Plus (go r)
    | Opt r -> Opt (go r)
  in
  go r

(** Pretty-print with a symbol printer, fully parenthesising only where
    precedence requires it (alt < seq < postfix). *)
let to_string pp_sym r =
  let buf = Buffer.create 64 in
  (* prec: 0 alt, 1 seq, 2 postfix/atom *)
  let rec go prec = function
    | Empty -> Buffer.add_string buf "∅"
    | Eps -> Buffer.add_string buf "ε"
    | Sym s -> Buffer.add_string buf (pp_sym s)
    | Seq (a, b) ->
      let p () = go 1 a; Buffer.add_char buf ' '; go 1 b in
      if prec > 1 then (Buffer.add_char buf '('; p (); Buffer.add_char buf ')')
      else p ()
    | Alt (a, b) ->
      let p () = go 0 a; Buffer.add_char buf '|'; go 0 b in
      if prec > 0 then (Buffer.add_char buf '('; p (); Buffer.add_char buf ')')
      else p ()
    | Star r -> go 2 r; Buffer.add_char buf '*'
    | Plus r -> go 2 r; Buffer.add_char buf '+'
    | Opt r -> go 2 r; Buffer.add_char buf '?'
  in
  go 0 r;
  Buffer.contents buf
