lib/core/gql.ml: Gql_algebra Gql_data Gql_dtd Gql_lang Gql_visual Gql_wglog Gql_xml Gql_xmlgl Gql_xpath Lazy List Printf
