lib/core/expressiveness.mli: Gql_wglog Gql_xmlgl
