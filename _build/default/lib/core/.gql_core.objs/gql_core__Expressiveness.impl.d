lib/core/expressiveness.ml: Array Buffer Gql_wglog Gql_xmlgl Hashtbl List Printf String
