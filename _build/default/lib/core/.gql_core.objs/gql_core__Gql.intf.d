lib/core/gql.mli: Gql_data Gql_dtd Gql_visual Gql_wglog Gql_xml Gql_xmlgl Gql_xpath Lazy
