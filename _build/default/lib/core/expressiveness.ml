(** The expressiveness comparison (experiment E6).

    The paper's core contribution is a *qualitative* comparison of
    XML-GL and WG-Log.  This module makes it mechanical: ten feature
    classes, each with a support level per language (plus the XPath
    baseline), and a static classifier that reports which classes a
    given query actually uses — so the matrix can be cross-checked
    against the witness queries in [Gql_workload.Queries]. *)

type feature =
  | Selection  (** match by element name / entity type and constants *)
  | Projection  (** keep only some children in the result *)
  | Value_join  (** equality of values across branches *)
  | Regex_match  (** regular expressions on textual content *)
  | Negation  (** absent children / crossed edges *)
  | Deep_paths  (** descendants at any depth / regular path edges *)
  | Aggregation  (** collect-all (triangles) *)
  | Grouping  (** group-by (list icons) *)
  | Restructuring  (** build new element structure *)
  | Ordered_content  (** order-sensitive matching *)
  | Schema_declaration  (** can state schemas in the same formalism *)
  | Recursion  (** derived relations feeding further derivations *)

let all_features =
  [ Selection; Projection; Value_join; Regex_match; Negation; Deep_paths;
    Aggregation; Grouping; Restructuring; Ordered_content;
    Schema_declaration; Recursion ]

let feature_name = function
  | Selection -> "selection"
  | Projection -> "projection"
  | Value_join -> "value join"
  | Regex_match -> "regex match"
  | Negation -> "negation"
  | Deep_paths -> "deep / regular paths"
  | Aggregation -> "aggregation (all)"
  | Grouping -> "grouping"
  | Restructuring -> "restructuring"
  | Ordered_content -> "ordered content"
  | Schema_declaration -> "schema declaration"
  | Recursion -> "recursion / chaining"

type support = Native | Encodable | Unsupported

let support_symbol = function
  | Native -> "yes"
  | Encodable -> "enc"
  | Unsupported -> "no"

(** The paper's comparison, as verified by this implementation.  Every
    [Native] entry for the two visual languages is exercised by a witness
    query in the suite; XPath 1.0 entries reflect the baseline engine. *)
let matrix : (feature * support * support * support) list =
  (* feature, XML-GL, WG-Log, XPath *)
  [
    (Selection, Native, Native, Native);
    (Projection, Native, Native, Native);
    (Value_join, Native, Native, Encodable);
    (Regex_match, Native, Native, Unsupported);
    (Negation, Native, Native, Native);
    (Deep_paths, Native, Native, Native);
    (Aggregation, Native, Native, Unsupported);
    (Grouping, Native, Encodable, Unsupported);
    (Restructuring, Native, Native, Unsupported);
    (Ordered_content, Native, Unsupported, Native);
    (Schema_declaration, Native, Native, Unsupported);
    (Recursion, Unsupported, Native, Unsupported);
  ]

(* ------------------------------------------------------------------ *)
(* Classifiers                                                         *)
(* ------------------------------------------------------------------ *)

let rec pred_features (p : Gql_xmlgl.Ast.predicate) : feature list =
  match p with
  | Gql_xmlgl.Ast.Matches _ -> [ Regex_match ]
  | Gql_xmlgl.Ast.Compare (_, a, b) ->
    let refs = Gql_xmlgl.Ast.operand_refs a @ Gql_xmlgl.Ast.operand_refs b in
    Selection :: (if refs = [] then [] else [ Value_join ])
  | Gql_xmlgl.Ast.Contains_str _ | Gql_xmlgl.Ast.Starts_with _ -> [ Selection ]
  | Gql_xmlgl.Ast.And (a, b) | Gql_xmlgl.Ast.Or (a, b) ->
    pred_features a @ pred_features b
  | Gql_xmlgl.Ast.Not a -> Negation :: pred_features a

(** Features used by an XML-GL program. *)
let of_xmlgl (p : Gql_xmlgl.Ast.program) : feature list =
  let feats = ref [ Selection ] in
  let add f = feats := f :: !feats in
  List.iter
    (fun (r : Gql_xmlgl.Ast.rule) ->
      (* query side *)
      let incoming = Hashtbl.create 8 in
      Array.iter
        (fun (n : Gql_xmlgl.Ast.qnode) ->
          (match n.q_kind with
          | Gql_xmlgl.Ast.Q_elem (Gql_xmlgl.Ast.Name_re _) -> add Regex_match
          | _ -> ());
          match n.q_pred with
          | Some p -> List.iter add (pred_features p)
          | None -> ())
        r.query.q_nodes;
      List.iter
        (fun (e : Gql_xmlgl.Ast.qedge) ->
          (match e.q_kind_e with
          | Gql_xmlgl.Ast.Deep -> add Deep_paths
          | Gql_xmlgl.Ast.Absent -> add Negation
          | Gql_xmlgl.Ast.Contains { ordered = true; _ } -> add Ordered_content
          | Gql_xmlgl.Ast.Contains _ | Gql_xmlgl.Ast.Attr_of _
          | Gql_xmlgl.Ast.Ref_to _ ->
            ());
          match e.q_kind_e with
          | Gql_xmlgl.Ast.Absent -> ()
          | _ ->
            let k = try Hashtbl.find incoming e.q_dst with Not_found -> 0 in
            Hashtbl.replace incoming e.q_dst (k + 1);
            if k + 1 > 1 then add Value_join)
        r.query.q_edges;
      (* construction side *)
      Array.iter
        (fun (n : Gql_xmlgl.Ast.cnode) ->
          match n.c_kind with
          | Gql_xmlgl.Ast.C_elem _ | Gql_xmlgl.Ast.C_unnest _ -> add Restructuring
          | Gql_xmlgl.Ast.C_all _ | Gql_xmlgl.Ast.C_aggregate _ -> add Aggregation
          | Gql_xmlgl.Ast.C_group _ -> add Grouping
          | Gql_xmlgl.Ast.C_copy_of { deep = false; _ } -> add Projection
          | Gql_xmlgl.Ast.C_copy_of _ | Gql_xmlgl.Ast.C_value_of _
          | Gql_xmlgl.Ast.C_const _ ->
            ())
        r.construction.c_nodes;
      (* an element box whose children are projected copies *)
      if
        Array.exists
          (fun (n : Gql_xmlgl.Ast.cnode) ->
            match n.c_kind with
            | Gql_xmlgl.Ast.C_copy_of { deep = false; _ } -> true
            | _ -> false)
          r.construction.c_nodes
        && r.construction.c_edges <> []
      then add Projection)
    p.rules;
  List.sort_uniq compare !feats

(** Features used by a WG-Log program. *)
let of_wglog (p : Gql_wglog.Ast.program) : feature list =
  let feats = ref [ Selection ] in
  let add f = feats := f :: !feats in
  let derived_labels = ref [] in
  let queried_labels = ref [] in
  List.iter
    (fun (r : Gql_wglog.Ast.rule) ->
      Array.iter
        (fun (n : Gql_wglog.Ast.node) ->
          List.iter
            (function
              | Gql_wglog.Ast.Re _ -> add Regex_match
              | Gql_wglog.Ast.Cmp _ -> add Selection)
            n.n_cond;
          if n.n_role = Gql_wglog.Ast.Construct then add Restructuring)
        r.nodes;
      List.iter
        (fun (e : Gql_wglog.Ast.edge) ->
          (match e.e_mode with
          | Gql_wglog.Ast.Negated -> add Negation
          | Gql_wglog.Ast.Regex _ -> add Deep_paths
          | Gql_wglog.Ast.Collect -> add Aggregation
          | Gql_wglog.Ast.Plain -> ());
          if e.e_role = Gql_wglog.Ast.Construct && e.e_mode <> Gql_wglog.Ast.Collect
          then derived_labels := e.e_label :: !derived_labels;
          if e.e_role = Gql_wglog.Ast.Query then
            queried_labels := e.e_label :: !queried_labels)
        r.edges;
      (* shared query nodes = joins *)
      let incoming = Hashtbl.create 8 in
      List.iter
        (fun (e : Gql_wglog.Ast.edge) ->
          if e.e_role = Gql_wglog.Ast.Query then begin
            let k = try Hashtbl.find incoming e.e_dst with Not_found -> 0 in
            Hashtbl.replace incoming e.e_dst (k + 1);
            if k + 1 > 1 then add Value_join
          end)
        r.edges)
    p.rules;
  if List.exists (fun l -> List.mem l !queried_labels) !derived_labels then
    add Recursion;
  List.sort_uniq compare !feats

(* ------------------------------------------------------------------ *)
(* Table rendering                                                     *)
(* ------------------------------------------------------------------ *)

let matrix_to_string () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-22s | %-6s | %-6s | %-6s\n" "feature" "XML-GL" "WG-Log"
       "XPath");
  Buffer.add_string buf (String.make 50 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun (f, a, b, c) ->
      Buffer.add_string buf
        (Printf.sprintf "%-22s | %-6s | %-6s | %-6s\n" (feature_name f)
           (support_symbol a) (support_symbol b) (support_symbol c)))
    matrix;
  Buffer.contents buf
