(** The expressiveness comparison (experiment E6).

    The paper's core contribution is a *qualitative* comparison of
    XML-GL and WG-Log.  This module makes it mechanical: twelve feature
    classes, a support matrix per language (plus the XPath baseline),
    and static classifiers that report which classes a given query
    actually uses — so the matrix can be cross-checked against the
    witness queries in [Gql_workload.Queries]. *)

type feature =
  | Selection  (** match by element name / entity type and constants *)
  | Projection  (** keep only some children in the result *)
  | Value_join  (** equality of values across branches *)
  | Regex_match  (** regular expressions on textual content *)
  | Negation  (** absent children / crossed edges *)
  | Deep_paths  (** descendants at any depth / regular path edges *)
  | Aggregation  (** collect-all (triangles), count/sum/min/max/avg *)
  | Grouping  (** group-by (list icons) *)
  | Restructuring  (** build new element structure *)
  | Ordered_content  (** order-sensitive matching *)
  | Schema_declaration  (** can state schemas in the same formalism *)
  | Recursion  (** derived relations feeding further derivations *)

val all_features : feature list
val feature_name : feature -> string

type support = Native | Encodable | Unsupported

val support_symbol : support -> string

val matrix : (feature * support * support * support) list
(** (feature, XML-GL, WG-Log, XPath 1.0) — the paper's comparison as
    verified by this implementation; every [Native] entry for the two
    visual languages has a witness query in the suite. *)

val of_xmlgl : Gql_xmlgl.Ast.program -> feature list
(** Feature classes an XML-GL program uses, sorted and deduplicated. *)

val of_wglog : Gql_wglog.Ast.program -> feature list

val matrix_to_string : unit -> string
(** The matrix as the aligned text table printed by [gql matrix] and the
    E6 bench. *)
