(** Diagram builders: from language ASTs and data graphs to {!Diagram}s.

    These produce exactly the pictures in the paper's figures: an XML-GL
    rule as the side-by-side query/construction pair, a WG-Log rule as a
    single graph with red and green parts, and a data graph with boxes
    for complex nodes and circles for atoms. *)

let pred_note (p : Gql_xmlgl.Ast.predicate) : string =
  let open Gql_xmlgl.Ast in
  let op_str = function
    | Eq -> "=" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  in
  let rec operand = function
    | Const v -> Gql_data.Value.to_string v
    | Self -> "."
    | Node_value n -> Printf.sprintf "$%d" n
    | Arith (op, a, b) ->
      let o = match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" in
      Printf.sprintf "(%s%s%s)" (operand a) o (operand b)
  in
  let rec go = function
    | Compare (op, a, b) -> Printf.sprintf "%s%s%s" (operand a) (op_str op) (operand b)
    | Contains_str (a, s) -> Printf.sprintf "contains(%s,%S)" (operand a) s
    | Starts_with (a, s) -> Printf.sprintf "starts(%s,%S)" (operand a) s
    | Matches (a, re) -> Printf.sprintf "%s~/%s/" (operand a) re
    | And (a, b) -> Printf.sprintf "%s & %s" (go a) (go b)
    | Or (a, b) -> Printf.sprintf "%s | %s" (go a) (go b)
    | Not a -> Printf.sprintf "not(%s)" (go a)
  in
  go p

(** An XML-GL rule: query part (red) on the left layers, construction
    part (green) appended; the classic two-pane figure. *)
let of_xmlgl_rule ?(title = "XML-GL rule") (r : Gql_xmlgl.Ast.rule) : Diagram.t =
  let open Gql_xmlgl.Ast in
  let d = Diagram.create title in
  let qmap = Hashtbl.create 8 in
  Array.iteri
    (fun qid (n : qnode) ->
      let note = Option.map pred_note n.q_pred in
      let shape, label =
        match n.q_kind with
        | Q_elem (Exact name) -> (Diagram.Box, name)
        | Q_elem Any_name -> (Diagram.Box, "*")
        | Q_elem (Name_re re) -> (Diagram.Box, "/" ^ re ^ "/")
        | Q_content -> (Diagram.Circle_hollow, Option.value note ~default:"")
        | Q_attr -> (Diagram.Circle_filled, Option.value note ~default:"")
      in
      let note =
        match n.q_kind with
        | Q_elem _ -> note
        | Q_content | Q_attr -> None  (* note already used as label *)
      in
      Hashtbl.replace qmap qid
        (Diagram.add_node d ~role:Diagram.Query_part ?note shape label))
    r.query.q_nodes;
  List.iter
    (fun (e : qedge) ->
      let src = Hashtbl.find qmap e.q_src and dst = Hashtbl.find qmap e.q_dst in
      match e.q_kind_e with
      | Contains { ordered; position } ->
        let label =
          match position with Some p -> Printf.sprintf "[%d]" p | None -> ""
        in
        let label = if ordered then label ^ "'" else label in
        Diagram.add_edge d ~role:Diagram.Query_part ~label src dst
      | Deep -> Diagram.add_edge d ~role:Diagram.Query_part ~style:Diagram.Dashed ~label:"*" src dst
      | Attr_of name -> Diagram.add_edge d ~role:Diagram.Query_part ~label:name src dst
      | Ref_to name ->
        Diagram.add_edge d ~role:Diagram.Query_part ~style:Diagram.Dashed
          ~label:(Option.value name ~default:"ref") src dst
      | Absent -> Diagram.add_edge d ~role:Diagram.Query_part ~style:Diagram.Crossed src dst)
    r.query.q_edges;
  (* Construction part. *)
  let cmap = Hashtbl.create 8 in
  Array.iteri
    (fun cid (n : cnode) ->
      let shape, label, note =
        match n.c_kind with
        | C_elem { name; per = None } -> (Diagram.Box, name, None)
        | C_elem { name; per = Some q } ->
          (Diagram.Box, name, Some (Printf.sprintf "per $%d" q))
        | C_copy_of { source; deep } ->
          (Diagram.Box, Printf.sprintf "$%d" source, if deep then Some "*" else None)
        | C_value_of source -> (Diagram.Circle_hollow, Printf.sprintf "$%d" source, None)
        | C_const v -> (Diagram.Circle_hollow, Gql_data.Value.to_string v, None)
        | C_all source -> (Diagram.Triangle, Printf.sprintf "$%d" source, None)
        | C_group { by } -> (Diagram.Round_box, Printf.sprintf "group $%d" by, None)
        | C_unnest s -> (Diagram.Round_box, Printf.sprintf "unnest $%d" s, None)
        | C_aggregate { fn; source } ->
          let f =
            match fn with
            | Count -> "CNT" | Sum -> "SUM" | Min -> "MIN" | Max -> "MAX" | Avg -> "AVG"
          in
          (Diagram.Circle_hollow, Printf.sprintf "%s.$%d" f source, None)
      in
      Hashtbl.replace cmap cid
        (Diagram.add_node d ~role:Diagram.Construct_part ?note shape label))
    r.construction.c_nodes;
  List.iter
    (fun (e : cedge) ->
      Diagram.add_edge d ~role:Diagram.Construct_part ~thick:true
        ?label:(Option.map (fun a -> "@" ^ a) e.c_as_attr |> Option.map Fun.id)
        (Hashtbl.find cmap e.c_parent) (Hashtbl.find cmap e.c_child))
    r.construction.c_edges;
  (* Dotted bindings from construction references back to the query part
     (the paper's "line connecting the relevant query and construction
     node"). *)
  Array.iteri
    (fun cid (n : cnode) ->
      match n.c_kind with
      | C_copy_of { source; _ } | C_value_of source | C_all source
      | C_group { by = source } | C_unnest source
      | C_aggregate { source; _ }
      | C_elem { per = Some source; _ } ->
        Diagram.add_edge d ~style:Diagram.Dashed (Hashtbl.find qmap source)
          (Hashtbl.find cmap cid)
      | C_elem { per = None; _ } | C_const _ -> ())
    r.construction.c_nodes;
  d

(** A WG-Log rule: one graph, thin red query edges, thick green
    construction edges. *)
let of_wglog_rule ?(title = "WG-Log rule") (r : Gql_wglog.Ast.rule) : Diagram.t =
  let open Gql_wglog.Ast in
  let d = Diagram.create title in
  let map = Hashtbl.create 8 in
  let cond_note conds =
    match conds with
    | [] -> None
    | cs ->
      Some
        (String.concat ","
           (List.map
              (function
                | Cmp (op, v) ->
                  let o =
                    match op with
                    | Eq -> "=" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
                  in
                  o ^ Gql_data.Value.to_string v
                | Re re -> "/" ^ re ^ "/")
              cs))
  in
  Array.iteri
    (fun i (n : node) ->
      let role =
        match n.n_role with
        | Query -> Diagram.Query_part
        | Construct -> Diagram.Construct_part
      in
      let shape, label =
        match n.n_kind with
        | Entity (Some t) -> (Diagram.Box, t)
        | Entity None -> (Diagram.Circle_hollow, "")
        | Value (Some v) -> (Diagram.Round_box, Gql_data.Value.to_string v)
        | Value None -> (Diagram.Round_box, "?")
      in
      Hashtbl.replace map i
        (Diagram.add_node d ~role ?note:(cond_note n.n_cond) shape label))
    r.nodes;
  List.iter
    (fun (e : edge) ->
      let role =
        match e.e_role with
        | Query -> Diagram.Query_part
        | Construct -> Diagram.Construct_part
      in
      let style, label =
        match e.e_mode with
        | Plain -> (Diagram.Solid, e.e_label)
        | Negated -> (Diagram.Crossed, e.e_label)
        | Regex re -> (Diagram.Dashed, Gql_regex.Syntax.to_string Fun.id re)
        | Collect -> (Diagram.Solid, e.e_label ^ " (all)")
      in
      Diagram.add_edge d ~role ~style ~thick:(e.e_role = Construct) ~label
        (Hashtbl.find map e.e_src) (Hashtbl.find map e.e_dst))
    r.edges;
  d

(** A data graph, truncated to [max_nodes] (debug pictures of databases). *)
let of_data ?(title = "data graph") ?(max_nodes = 60) (g : Gql_data.Graph.t) :
    Diagram.t =
  let open Gql_data in
  let d = Diagram.create title in
  let n = min max_nodes (Graph.n_nodes g) in
  let map = Hashtbl.create 32 in
  for i = 0 to n - 1 do
    let shape, label =
      match Graph.kind g i with
      | Graph.Complex l -> (Diagram.Box, l)
      | Graph.Atom v ->
        let s = Value.to_string v in
        ( Diagram.Round_box,
          if String.length s > 14 then String.sub s 0 12 ^ ".." else s )
    in
    Hashtbl.replace map i (Diagram.add_node d shape label)
  done;
  for i = 0 to n - 1 do
    List.iter
      (fun (dst, (e : Graph.edge)) ->
        if dst < n then
          let style =
            match e.Graph.kind with
            | Graph.Ref | Graph.Rel -> Diagram.Dashed
            | Graph.Child | Graph.Attribute -> Diagram.Solid
          in
          Diagram.add_edge d ~style ~label:e.Graph.name (Hashtbl.find map i)
            (Hashtbl.find map dst))
      (Graph.out g i)
  done;
  d
