(** The retained diagram model — the data structure a visual editor for
    these languages would manipulate.

    Per the reproduction plan (DESIGN.md, substitution record), the GUI
    itself is out of scope in this environment; everything *semantic*
    about the visual languages lives here: the shape vocabulary (boxes
    for elements/entities, hollow circles for PCDATA, filled circles for
    attributes, triangles for aggregation), the edge roles (thin/red =
    query, thick/green = construction), and the line styles (dashed =
    regular path, crossed = negation).  {!Layout} computes coordinates,
    {!Svg} and {!Ascii} render. *)

type shape =
  | Box  (** element / entity *)
  | Round_box  (** term label (puigsegur-style), result wrapper *)
  | Circle_hollow  (** PCDATA circle *)
  | Circle_filled  (** attribute dot *)
  | Diamond  (** relationship (ER heritage) *)
  | Triangle  (** aggregation *)

type role = Neutral | Query_part | Construct_part

type line_style = Solid | Dashed | Crossed

type node = {
  n_id : int;
  n_shape : shape;
  n_label : string;
  n_role : role;
  n_note : string option;  (** small annotation: multiplicity, tick, '*' *)
  (* Geometry, filled in by layout (units: pixels). *)
  mutable x : float;
  mutable y : float;
  mutable w : float;
  mutable h : float;
}

type edge = {
  e_src : int;
  e_dst : int;
  e_label : string;
  e_role : role;
  e_style : line_style;
  e_thick : bool;  (** construction edges are drawn thick *)
}

type t = {
  title : string;
  mutable nodes : node list;  (** reversed during building *)
  mutable edges : edge list;
  mutable next_id : int;
}

let create title = { title; nodes = []; edges = []; next_id = 0 }

let char_w = 7.5
let node_h = 26.0

let default_size shape label =
  match shape with
  | Circle_hollow | Circle_filled -> (16.0, 16.0)
  | Triangle -> (24.0, 20.0)
  | Diamond ->
    let w = (float_of_int (String.length label) *. char_w) +. 30.0 in
    (w, node_h +. 8.0)
  | Box | Round_box ->
    let w = Float.max 30.0 ((float_of_int (String.length label) *. char_w) +. 14.0) in
    (w, node_h)

let add_node d ?(role = Neutral) ?note shape label =
  let id = d.next_id in
  d.next_id <- id + 1;
  let w, h = default_size shape label in
  d.nodes <-
    { n_id = id; n_shape = shape; n_label = label; n_role = role; n_note = note;
      x = 0.0; y = 0.0; w; h }
    :: d.nodes;
  id

let add_edge d ?(role = Neutral) ?(style = Solid) ?(thick = false) ?(label = "")
    src dst =
  d.edges <-
    { e_src = src; e_dst = dst; e_label = label; e_role = role; e_style = style;
      e_thick = thick }
    :: d.edges

let nodes d = List.rev d.nodes
let edges d = List.rev d.edges
let node_by_id d id = List.find (fun n -> n.n_id = id) d.nodes
let n_nodes d = d.next_id
let n_edges d = List.length d.edges

(** Bounding box of the laid-out diagram. *)
let extent d =
  List.fold_left
    (fun (mx, my) n -> (Float.max mx (n.x +. n.w), Float.max my (n.y +. n.h)))
    (0.0, 0.0) d.nodes
