(** ASCII rendering of laid-out diagrams — the terminal/test view.

    Coordinates are down-scaled onto a character grid; nodes draw as
    bracketed labels whose delimiters encode the shape, edges as a list
    below the picture (drawing crossing-free ASCII edge paths is not
    worth the complexity for graphs that are rendered properly by
    {!Svg}). *)

let delims = function
  | Diagram.Box -> ("[", "]")
  | Diagram.Round_box -> ("(", ")")
  | Diagram.Circle_hollow -> ("o(", ")")
  | Diagram.Circle_filled -> ("*(", ")")
  | Diagram.Diamond -> ("<", ">")
  | Diagram.Triangle -> ("/", "\\")

let role_tag = function
  | Diagram.Neutral -> ""
  | Diagram.Query_part -> "?"
  | Diagram.Construct_part -> "!"

let render (d : Diagram.t) : string =
  let scale_x = 0.14 and scale_y = 0.055 in
  let nodes = Diagram.nodes d in
  let w, h = Diagram.extent d in
  let cols = int_of_float (w *. scale_x) + 30 in
  let rows = int_of_float (h *. scale_y) + 2 in
  let grid = Array.make_matrix rows cols ' ' in
  let put_string r c s =
    String.iteri
      (fun i ch ->
        let c' = c + i in
        if r >= 0 && r < rows && c' >= 0 && c' < cols then grid.(r).(c') <- ch)
      s
  in
  List.iter
    (fun (n : Diagram.node) ->
      let r = int_of_float (n.Diagram.y *. scale_y) in
      let c = int_of_float (n.Diagram.x *. scale_x) in
      let l, rdelim = delims n.n_shape in
      let label = if n.n_label = "" then "." else n.n_label in
      put_string r c
        (Printf.sprintf "%s%s%s%s" l label rdelim (role_tag n.n_role)))
    nodes;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "-- %s --\n" d.Diagram.title);
  Array.iter
    (fun row ->
      let line = String.init cols (fun i -> row.(i)) in
      let trimmed =
        let len = ref (String.length line) in
        while !len > 0 && line.[!len - 1] = ' ' do
          decr len
        done;
        String.sub line 0 !len
      in
      if trimmed <> "" then begin
        Buffer.add_string buf trimmed;
        Buffer.add_char buf '\n'
      end)
    grid;
  let name id =
    let n = Diagram.node_by_id d id in
    if n.n_label = "" then Printf.sprintf "#%d" id else n.n_label
  in
  List.iter
    (fun (e : Diagram.edge) ->
      let style =
        match e.e_style with
        | Diagram.Solid -> if e.e_thick then "==>" else "-->"
        | Diagram.Dashed -> "-->>"
        | Diagram.Crossed -> "-X->"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s %s %s%s%s\n" (name e.e_src) style (name e.e_dst)
           (if e.e_label = "" then "" else " : " ^ e.e_label)
           (match e.e_role with
           | Diagram.Query_part -> "  (query)"
           | Diagram.Construct_part -> "  (construct)"
           | Diagram.Neutral -> "")))
    (Diagram.edges d);
  Buffer.contents buf

let render_auto (d : Diagram.t) : string =
  Layout.layered d;
  render d
