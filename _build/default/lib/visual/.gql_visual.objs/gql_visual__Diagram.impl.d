lib/visual/diagram.ml: Float List String
