lib/visual/svg.ml: Buffer Diagram Float Layout List Printf String
