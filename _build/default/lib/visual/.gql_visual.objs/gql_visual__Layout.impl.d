lib/visual/layout.ml: Array Diagram Hashtbl List Queue
