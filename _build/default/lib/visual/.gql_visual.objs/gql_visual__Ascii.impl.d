lib/visual/ascii.ml: Array Buffer Diagram Layout List Printf String
