lib/visual/builders.ml: Array Diagram Fun Gql_data Gql_regex Gql_wglog Gql_xmlgl Graph Hashtbl List Option Printf String Value
