(** SVG rendering of laid-out diagrams.

    Colour/thickness encode the paper's conventions: query structure in
    red thin strokes, construction structure in green thick strokes,
    dashed lines for regular path edges, a cross mark on negated edges. *)

let esc s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let role_colour = function
  | Diagram.Neutral -> "#333333"
  | Diagram.Query_part -> "#b03030"
  | Diagram.Construct_part -> "#2f7d32"

let render_node buf (n : Diagram.node) =
  let stroke = role_colour n.n_role in
  let cx = n.x +. (n.w /. 2.0) and cy = n.y +. (n.h /. 2.0) in
  (match n.n_shape with
  | Diagram.Box ->
    Printf.bprintf buf
      "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"#fdfdf6\" stroke=\"%s\"/>\n"
      n.x n.y n.w n.h stroke
  | Diagram.Round_box ->
    Printf.bprintf buf
      "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" rx=\"9\" fill=\"#fdfdf6\" stroke=\"%s\"/>\n"
      n.x n.y n.w n.h stroke
  | Diagram.Circle_hollow ->
    Printf.bprintf buf
      "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"white\" stroke=\"%s\"/>\n"
      cx cy (n.w /. 2.0) stroke
  | Diagram.Circle_filled ->
    Printf.bprintf buf
      "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\" stroke=\"%s\"/>\n"
      cx cy (n.w /. 2.0) stroke stroke
  | Diagram.Diamond ->
    Printf.bprintf buf
      "<polygon points=\"%.1f,%.1f %.1f,%.1f %.1f,%.1f %.1f,%.1f\" fill=\"#fdfdf6\" stroke=\"%s\"/>\n"
      cx n.y (n.x +. n.w) cy cx (n.y +. n.h) n.x cy stroke
  | Diagram.Triangle ->
    Printf.bprintf buf
      "<polygon points=\"%.1f,%.1f %.1f,%.1f %.1f,%.1f\" fill=\"#fdfdf6\" stroke=\"%s\"/>\n"
      cx n.y (n.x +. n.w) (n.y +. n.h) n.x (n.y +. n.h) stroke);
  (* label *)
  (match n.n_shape with
  | Diagram.Circle_hollow | Diagram.Circle_filled ->
    if n.n_label <> "" then
      Printf.bprintf buf
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" font-family=\"sans-serif\" fill=\"#333\">%s</text>\n"
        (n.x +. n.w +. 4.0) (cy +. 4.0) (esc n.n_label)
  | Diagram.Box | Diagram.Round_box | Diagram.Diamond | Diagram.Triangle ->
    Printf.bprintf buf
      "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" font-size=\"12\" font-family=\"sans-serif\" fill=\"#111\">%s</text>\n"
      cx (cy +. 4.0) (esc n.n_label));
  match n.n_note with
  | Some note ->
    Printf.bprintf buf
      "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" font-family=\"sans-serif\" fill=\"#777\">%s</text>\n"
      (n.x +. n.w -. 4.0) (n.y -. 2.0) (esc note)
  | None -> ()

(* Intersect the segment from the node centre towards (tx,ty) with the
   node's bounding box, so arrows start/stop at borders. *)
let border_point (n : Diagram.node) (tx, ty) =
  let cx = n.x +. (n.w /. 2.0) and cy = n.y +. (n.h /. 2.0) in
  let dx = tx -. cx and dy = ty -. cy in
  if dx = 0.0 && dy = 0.0 then (cx, cy)
  else begin
    let sx = if dx = 0.0 then infinity else (n.w /. 2.0) /. Float.abs dx in
    let sy = if dy = 0.0 then infinity else (n.h /. 2.0) /. Float.abs dy in
    let s = Float.min sx sy in
    (cx +. (dx *. s), cy +. (dy *. s))
  end

let render_edge buf (d : Diagram.t) (e : Diagram.edge) =
  let src = Diagram.node_by_id d e.e_src in
  let dst = Diagram.node_by_id d e.e_dst in
  let scx = src.x +. (src.w /. 2.0) and scy = src.y +. (src.h /. 2.0) in
  let dcx = dst.x +. (dst.w /. 2.0) and dcy = dst.y +. (dst.h /. 2.0) in
  let x1, y1 = border_point src (dcx, dcy) in
  let x2, y2 = border_point dst (scx, scy) in
  let colour = role_colour e.e_role in
  let width = if e.e_thick then "2.6" else "1.2" in
  let dash =
    match e.e_style with
    | Diagram.Dashed -> " stroke-dasharray=\"6,4\""
    | Diagram.Solid | Diagram.Crossed -> ""
  in
  Printf.bprintf buf
    "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" stroke-width=\"%s\"%s marker-end=\"url(#arr)\"/>\n"
    x1 y1 x2 y2 colour width dash;
  (* cross mark for negation *)
  (if e.e_style = Diagram.Crossed then begin
     let mx = (x1 +. x2) /. 2.0 and my = (y1 +. y2) /. 2.0 in
     Printf.bprintf buf
       "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" stroke-width=\"1.6\"/>\n"
       (mx -. 5.0) (my -. 5.0) (mx +. 5.0) (my +. 5.0) colour;
     Printf.bprintf buf
       "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" stroke-width=\"1.6\"/>\n"
       (mx -. 5.0) (my +. 5.0) (mx +. 5.0) (my -. 5.0) colour
   end);
  if e.e_label <> "" then begin
    let mx = (x1 +. x2) /. 2.0 and my = (y1 +. y2) /. 2.0 in
    Printf.bprintf buf
      "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" font-family=\"sans-serif\" fill=\"%s\">%s</text>\n"
      (mx +. 4.0) (my -. 3.0) colour (esc e.e_label)
  end

(** Render a laid-out diagram to a standalone SVG document. *)
let render (d : Diagram.t) : string =
  let w, h = Diagram.extent d in
  let w = w +. 30.0 and h = h +. 40.0 in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n"
    w h w h;
  Buffer.add_string buf
    "<defs><marker id=\"arr\" markerWidth=\"9\" markerHeight=\"7\" refX=\"8\" refY=\"3.5\" orient=\"auto\"><polygon points=\"0 0, 9 3.5, 0 7\" fill=\"#555\"/></marker></defs>\n";
  Printf.bprintf buf
    "<text x=\"12\" y=\"%.1f\" font-size=\"12\" font-family=\"sans-serif\" font-style=\"italic\" fill=\"#555\">%s</text>\n"
    (h -. 12.0) (esc d.Diagram.title);
  List.iter (render_edge buf d) (Diagram.edges d);
  List.iter (render_node buf) (Diagram.nodes d);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

(** Lay out (layered) and render in one go. *)
let render_auto (d : Diagram.t) : string =
  Layout.layered d;
  render d

let write_file path (d : Diagram.t) =
  let oc = open_out path in
  output_string oc (render_auto d);
  close_out oc
