(** Automatic layout: layered (Sugiyama-style) drawing.

    The paper remarks that "complicated graphs could tend to be cluttered
    with many edges"; experiment E10 quantifies this with the two layout
    strategies implemented here:

    - {!layered}: longest-path layering + iterated barycentric ordering
      inside layers (crossing reduction) + per-layer coordinates;
    - {!grid}: the naive baseline — nodes placed row by row in id order.

    {!count_crossings} reports edge crossings of a laid-out diagram, the
    standard clutter metric. *)

let h_gap = 36.0
let v_gap = 54.0
let margin = 20.0

(* Build adjacency over diagram node ids. *)
let adjacency (d : Diagram.t) =
  let n = Diagram.n_nodes d in
  let out = Array.make n [] in
  let inn = Array.make n [] in
  List.iter
    (fun (e : Diagram.edge) ->
      out.(e.e_src) <- e.e_dst :: out.(e.e_src);
      inn.(e.e_dst) <- e.e_src :: inn.(e.e_dst))
    (Diagram.edges d);
  (out, inn)

(** Longest-path layering; cycles are broken by ignoring back edges found
    by a DFS (queries are near-DAGs; back edges are rare and only occur
    in recursive schemas). *)
let assign_layers (d : Diagram.t) : int array =
  let n = Diagram.n_nodes d in
  let out, inn = adjacency d in
  (* DFS to mark back edges. *)
  let colour = Array.make n 0 in
  let back = Hashtbl.create 8 in
  let rec dfs u =
    colour.(u) <- 1;
    List.iter
      (fun v ->
        if colour.(v) = 0 then dfs v
        else if colour.(v) = 1 then Hashtbl.replace back (u, v) ())
      out.(u);
    colour.(u) <- 2
  in
  for u = 0 to n - 1 do
    if colour.(u) = 0 then dfs u
  done;
  let is_back u v = Hashtbl.mem back (u, v) in
  (* Longest path from sources over forward edges. *)
  let layer = Array.make n 0 in
  let indeg = Array.make n 0 in
  for v = 0 to n - 1 do
    List.iter (fun u -> if not (is_back u v) then indeg.(v) <- indeg.(v) + 1) inn.(v)
  done;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    List.iter
      (fun v ->
        if not (is_back u v) then begin
          if layer.(v) < layer.(u) + 1 then layer.(v) <- layer.(u) + 1;
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then Queue.add v queue
        end)
      out.(u)
  done;
  layer

(** Barycentric crossing reduction: order each layer by the mean position
    of neighbours in the adjacent layer, sweeping down then up, a few
    rounds. *)
let order_layers (d : Diagram.t) (layer : int array) : int list array =
  let n = Diagram.n_nodes d in
  let out, inn = adjacency d in
  let max_layer = Array.fold_left max 0 layer in
  let layers = Array.make (max_layer + 1) [] in
  for v = n - 1 downto 0 do
    layers.(layer.(v)) <- v :: layers.(layer.(v))
  done;
  let position = Array.make n 0.0 in
  let refresh l = List.iteri (fun i v -> position.(v) <- float_of_int i) l in
  Array.iter refresh layers;
  let barycentre neigh v =
    match neigh v with
    | [] -> position.(v)
    | ns ->
      List.fold_left (fun acc u -> acc +. position.(u)) 0.0 ns
      /. float_of_int (List.length ns)
  in
  for _pass = 1 to 4 do
    (* downward sweep: order by in-neighbour barycentre *)
    for l = 1 to max_layer do
      let sorted =
        List.stable_sort
          (fun a b -> compare (barycentre (fun v -> inn.(v)) a) (barycentre (fun v -> inn.(v)) b))
          layers.(l)
      in
      layers.(l) <- sorted;
      refresh sorted
    done;
    (* upward sweep *)
    for l = max_layer - 1 downto 0 do
      let sorted =
        List.stable_sort
          (fun a b -> compare (barycentre (fun v -> out.(v)) a) (barycentre (fun v -> out.(v)) b))
          layers.(l)
      in
      layers.(l) <- sorted;
      refresh sorted
    done
  done;
  layers

(** Assign coordinates. *)
let place (d : Diagram.t) (layers : int list array) : unit =
  let node = Diagram.node_by_id d in
  Array.iteri
    (fun l ids ->
      let y = margin +. (float_of_int l *. v_gap) in
      let x = ref margin in
      List.iter
        (fun id ->
          let nd = node id in
          nd.Diagram.x <- !x;
          nd.Diagram.y <- y +. ((Diagram.node_h -. nd.Diagram.h) /. 2.0);
          x := !x +. nd.Diagram.w +. h_gap)
        ids)
    layers;
  (* Centre each layer horizontally. *)
  let width, _ = Diagram.extent d in
  Array.iter
    (fun ids ->
      match ids with
      | [] -> ()
      | _ ->
        let last = node (List.nth ids (List.length ids - 1)) in
        let layer_w = last.Diagram.x +. last.Diagram.w -. margin in
        let shift = (width -. margin -. layer_w) /. 2.0 in
        if shift > 0.0 then
          List.iter (fun id -> (node id).Diagram.x <- (node id).Diagram.x +. shift) ids)
    layers

let layered (d : Diagram.t) : unit =
  if Diagram.n_nodes d > 0 then begin
    let layer = assign_layers d in
    let layers = order_layers d layer in
    place d layers
  end

(** Naive baseline: fixed-width rows in id order. *)
let grid ?(per_row = 6) (d : Diagram.t) : unit =
  List.iteri
    (fun i n ->
      n.Diagram.x <- margin +. (float_of_int (i mod per_row) *. 140.0);
      n.Diagram.y <- margin +. (float_of_int (i / per_row) *. v_gap))
    (Diagram.nodes d)

(* ------------------------------------------------------------------ *)
(* Metrics (E10)                                                       *)
(* ------------------------------------------------------------------ *)

let centre (n : Diagram.node) =
  (n.Diagram.x +. (n.Diagram.w /. 2.0), n.Diagram.y +. (n.Diagram.h /. 2.0))

let segments_cross (x1, y1) (x2, y2) (x3, y3) (x4, y4) =
  let d (ax, ay) (bx, by) (cx, cy) =
    ((bx -. ax) *. (cy -. ay)) -. ((by -. ay) *. (cx -. ax))
  in
  let d1 = d (x3, y3) (x4, y4) (x1, y1) in
  let d2 = d (x3, y3) (x4, y4) (x2, y2) in
  let d3 = d (x1, y1) (x2, y2) (x3, y3) in
  let d4 = d (x1, y1) (x2, y2) (x4, y4) in
  ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
  && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))

(** Number of pairwise edge crossings in the current geometry (edges as
    straight centre-to-centre segments, pairs sharing an endpoint
    skipped). *)
let count_crossings (d : Diagram.t) : int =
  let es = Array.of_list (Diagram.edges d) in
  let node = Diagram.node_by_id d in
  let seg (e : Diagram.edge) = (centre (node e.e_src), centre (node e.e_dst)) in
  let count = ref 0 in
  for i = 0 to Array.length es - 1 do
    for j = i + 1 to Array.length es - 1 do
      let a = es.(i) and b = es.(j) in
      if
        a.e_src <> b.e_src && a.e_src <> b.e_dst && a.e_dst <> b.e_src
        && a.e_dst <> b.e_dst
      then begin
        let (p1, p2) = seg a and (p3, p4) = seg b in
        if segments_cross p1 p2 p3 p4 then incr count
      end
    done
  done;
  !count
