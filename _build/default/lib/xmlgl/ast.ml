(** Abstract syntax of XML-GL.

    An XML-GL *rule* is the paper's pair of graphs drawn side by side:
    the query graph (left) and the construction graph (right).  The
    visual vocabulary maps onto this AST as follows:

    - labelled boxes            -> {!qnode_kind.Q_elem} / {!cnode_kind.C_elem}
    - hollow circles (PCDATA)   -> {!qnode_kind.Q_content}
    - filled circles (attributes) -> {!qnode_kind.Q_attr}
    - containment edges         -> {!qedge_kind.Contains} (the short stroke
      crossing the first edge = [ordered = true])
    - descendant ("at any depth") edges -> {!qedge_kind.Deep}
    - the asterisk on a box     -> [deep = true] on a {!cnode_kind.C_copy_of}
    - node sharing (join)       -> two query edges pointing at the same
      {!node_id}
    - triangles                 -> {!cnode_kind.C_all}
    - list icons with a grouping edge -> {!cnode_kind.C_group}

    A *program* is a non-empty list of rules; their results are
    concatenated under one result root, as in the paper. *)

type node_id = int

(* ------------------------------------------------------------------ *)
(* Predicates on content                                               *)
(* ------------------------------------------------------------------ *)

type arith_op = Add | Sub | Mul | Div

type operand =
  | Const of Gql_data.Value.t
  | Self  (** the value of the node the predicate is attached to *)
  | Node_value of node_id  (** the value bound to another query node *)
  | Arith of arith_op * operand * operand

type cmp_op = Eq | Neq | Lt | Le | Gt | Ge

type predicate =
  | Compare of cmp_op * operand * operand
  | Contains_str of operand * string
  | Starts_with of operand * string
  | Matches of operand * string  (** regex between slashes in the figures *)
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate

(* ------------------------------------------------------------------ *)
(* Query graph                                                         *)
(* ------------------------------------------------------------------ *)

type name_test =
  | Exact of string
  | Any_name  (** wildcard box *)
  | Name_re of string  (** regex over element names *)

type qnode_kind =
  | Q_elem of name_test
  | Q_content  (** hollow circle: a text child *)
  | Q_attr  (** filled circle; the attribute name travels on the edge *)

type qnode = {
  q_kind : qnode_kind;
  q_pred : predicate option;  (** attached condition, if any *)
}

type qedge_kind =
  | Contains of { ordered : bool; position : int option }
      (** direct containment; [position] pins the child index *)
  | Deep  (** descendant at any depth (>= 1 containment step) *)
  | Attr_of of string  (** element -> attribute circle *)
  | Ref_to of string option  (** follow an ID/IDREF or relation edge *)
  | Absent  (** negation: no such child/edge may exist *)

type qedge = { q_src : node_id; q_kind_e : qedge_kind; q_dst : node_id }

type query = { q_nodes : qnode array; q_edges : qedge list }

(* ------------------------------------------------------------------ *)
(* Construction graph                                                  *)
(* ------------------------------------------------------------------ *)

type agg_fn = Count | Sum | Min | Max | Avg

type cnode_kind =
  | C_elem of { name : string; per : node_id option }
      (** plain box: build a fresh element.  When [per] references a
          query node the box is attached to the query side and is
          instantiated once per distinct binding of that node ("for each
          element the query pattern has matched, an element is
          constructed"); without [per] it is a collector, instantiated
          once in its context. *)
  | C_copy_of of { source : node_id; deep : bool }
      (** emit the element bound to a query node; [deep] (the asterisk)
          copies all descendants, otherwise children come from the
          construction edges *)
  | C_value_of of node_id  (** text node carrying a query node's value *)
  | C_const of Gql_data.Value.t  (** literal text *)
  | C_all of node_id
      (** triangle: collect every binding of the referenced query node
          under a single parent instance *)
  | C_group of { by : node_id }
      (** list icon: one instance of the subtree per distinct value of
          the grouping query node *)
  | C_aggregate of { fn : agg_fn; source : node_id }
      (** QBE's CNT./SUM./MIN./MAX./AVG. keywords, which the XML-GL
          family inherits: a text node carrying the aggregate of the
          referenced query node's bindings in the current context *)
  | C_unnest of node_id
      (** unnesting (the paper's "powerful tools to prevent recursive
          queries"): for each binding of the query node, emit its
          *children* instead of the node itself, flattening one level of
          structure.  Nesting is the composition [C_group] + [C_elem]. *)

type cnode = { c_kind : cnode_kind }

type cedge = {
  c_parent : node_id;
  c_child : node_id;
  c_ord : int;  (** sibling order in the constructed element *)
  c_as_attr : string option;
      (** when set, the child value becomes this attribute of the parent *)
}

type construction = {
  c_nodes : cnode array;
  c_edges : cedge list;
  c_roots : node_id list;  (** top-level constructed elements, in order *)
}

type rule = { query : query; construction : construction }

type program = { rules : rule list; result_root : string }

(* ------------------------------------------------------------------ *)
(* Builder: a tiny imperative API used by the textual parser, the
   examples and the tests.                                             *)
(* ------------------------------------------------------------------ *)

module Build = struct
  type t = {
    mutable qn : qnode list;  (** reversed *)
    mutable qn_count : int;
    mutable qe : qedge list;
    mutable cn : cnode list;  (** reversed *)
    mutable cn_count : int;
    mutable ce : cedge list;
    mutable roots : node_id list;
  }

  let create () =
    { qn = []; qn_count = 0; qe = []; cn = []; cn_count = 0; ce = []; roots = [] }

  let qnode b ?pred kind =
    let id = b.qn_count in
    b.qn <- { q_kind = kind; q_pred = pred } :: b.qn;
    b.qn_count <- id + 1;
    id

  let q_elem b ?pred name = qnode b ?pred (Q_elem (Exact name))
  let q_any b ?pred () = qnode b ?pred (Q_elem Any_name)
  let q_content b ?pred () = qnode b ?pred Q_content
  let q_attr_node b ?pred () = qnode b ?pred Q_attr

  let qedge b ?(ordered = false) ?position src dst =
    b.qe <- { q_src = src; q_kind_e = Contains { ordered; position }; q_dst = dst } :: b.qe

  let qdeep b src dst = b.qe <- { q_src = src; q_kind_e = Deep; q_dst = dst } :: b.qe

  let qattr b src name dst =
    b.qe <- { q_src = src; q_kind_e = Attr_of name; q_dst = dst } :: b.qe

  let qref b ?name src dst =
    b.qe <- { q_src = src; q_kind_e = Ref_to name; q_dst = dst } :: b.qe

  let qabsent b src dst =
    b.qe <- { q_src = src; q_kind_e = Absent; q_dst = dst } :: b.qe

  let cnode b kind =
    let id = b.cn_count in
    b.cn <- { c_kind = kind } :: b.cn;
    b.cn_count <- id + 1;
    id

  let c_elem b ?per name = cnode b (C_elem { name; per })
  let c_copy b ?(deep = false) source = cnode b (C_copy_of { source; deep })
  let c_value b source = cnode b (C_value_of source)
  let c_const b v = cnode b (C_const v)
  let c_all b source = cnode b (C_all source)
  let c_group b ~by = cnode b (C_group { by })
  let c_unnest b source = cnode b (C_unnest source)
  let c_aggregate b fn source = cnode b (C_aggregate { fn; source })

  let cedge b ?as_attr ~ord parent child =
    b.ce <- { c_parent = parent; c_child = child; c_ord = ord; c_as_attr = as_attr } :: b.ce

  let root b id = b.roots <- b.roots @ [ id ]

  let finish b : rule =
    {
      query = { q_nodes = Array.of_list (List.rev b.qn); q_edges = List.rev b.qe };
      construction =
        {
          c_nodes = Array.of_list (List.rev b.cn);
          c_edges = List.rev b.ce;
          c_roots = b.roots;
        };
    }
end

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

type error = string

let rec pred_refs = function
  | Compare (_, a, b) -> operand_refs a @ operand_refs b
  | Contains_str (a, _) | Starts_with (a, _) | Matches (a, _) -> operand_refs a
  | And (a, b) | Or (a, b) -> pred_refs a @ pred_refs b
  | Not a -> pred_refs a

and operand_refs = function
  | Const _ | Self -> []
  | Node_value n -> [ n ]
  | Arith (_, a, b) -> operand_refs a @ operand_refs b

(** All query nodes referenced by the construction side. *)
let referenced_qnodes (c : construction) =
  Array.to_list c.c_nodes
  |> List.filter_map (fun n ->
         match n.c_kind with
         | C_copy_of { source; _ } | C_value_of source | C_all source
         | C_group { by = source } | C_unnest source
         | C_aggregate { source; _ }
         | C_elem { per = Some source; _ } ->
           Some source
         | C_elem { per = None; _ } | C_const _ -> None)
  |> List.sort_uniq compare

(** Static checks a visual editor would enforce; the engine refuses
    ill-formed rules. *)
let check_rule (r : rule) : error list =
  let nq = Array.length r.query.q_nodes in
  let nc = Array.length r.construction.c_nodes in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let check_q id ctx = if id < 0 || id >= nq then err "%s: query node %d out of range" ctx id in
  let check_c id ctx =
    if id < 0 || id >= nc then err "%s: construction node %d out of range" ctx id
  in
  List.iter
    (fun e ->
      check_q e.q_src "query edge";
      check_q e.q_dst "query edge";
      if e.q_src < nq && e.q_dst < nq then begin
        (match r.query.q_nodes.(e.q_src).q_kind with
        | Q_elem _ -> ()
        | Q_content | Q_attr -> err "query edge %d->%d: source must be an element box" e.q_src e.q_dst);
        match e.q_kind_e, r.query.q_nodes.(e.q_dst).q_kind with
        | Attr_of _, Q_attr -> ()
        | Attr_of _, (Q_elem _ | Q_content) ->
          err "attribute edge %d->%d must target a filled circle" e.q_src e.q_dst
        | (Contains _ | Deep | Ref_to _ | Absent), _ -> ()
      end)
    r.query.q_edges;
  (* Predicates may only reference existing nodes. *)
  Array.iteri
    (fun id n ->
      match n.q_pred with
      | Some p -> List.iter (fun m -> check_q m (Printf.sprintf "predicate on node %d" id)) (pred_refs p)
      | None -> ())
    r.query.q_nodes;
  (* Construction refs. *)
  List.iter (fun id -> check_q id "construction reference") (referenced_qnodes r.construction);
  List.iter
    (fun e ->
      check_c e.c_parent "construction edge";
      check_c e.c_child "construction edge")
    r.construction.c_edges;
  List.iter (fun id -> check_c id "construction root") r.construction.c_roots;
  if r.construction.c_roots = [] then err "rule has no construction root";
  (* The construction DAG must be acyclic. *)
  let g = Gql_graph.Digraph.create ~dummy:() in
  for _ = 1 to nc do
    ignore (Gql_graph.Digraph.add_node g ())
  done;
  List.iter
    (fun e ->
      if e.c_parent < nc && e.c_child < nc then
        Gql_graph.Digraph.add_edge g ~src:e.c_parent ~dst:e.c_child ())
    r.construction.c_edges;
  if not (Gql_graph.Algo.is_acyclic g) then err "construction graph is cyclic";
  List.rev !errs

let check_program (p : program) : error list =
  if p.rules = [] then [ "program has no rules" ]
  else List.concat_map check_rule p.rules
