(** XML-GL as a schema language.

    The paper devotes a figure to showing that an XML-GL expression can
    state what a DTD states (figures XML-GL-DTD1/DTD2), and claims
    *more*: XML-GL can declare unordered content, which DTDs cannot.
    This module implements that schema reading of XML-GL graphs:

    - boxes with multiplicity-labelled edges (like ER diagrams, the text
      notes) describe element containment: [1], [?], [*] or [+];
    - the ordered tick on a parent makes its children's relative order
      significant — in which case the content model is a regular
      expression checked with a Glushkov automaton, exactly the DTD
      discipline;
    - without the tick, content is validated by *counting* per label —
      the beyond-DTD case the paper highlights;
    - filled circles declare attributes (required or optional), hollow
      circles PCDATA content.

    {!of_dtd} and {!to_dtd} translate between the two formalisms where
    the translation exists; experiment E2 measures their agreement. *)

type mult = One | Opt | Star | Plus

let mult_to_string = function One -> "1" | Opt -> "?" | Star -> "*" | Plus -> "+"

let mult_allows m count =
  match m with
  | One -> count = 1
  | Opt -> count <= 1
  | Star -> true
  | Plus -> count >= 1

type decl = {
  d_name : string;
  d_ordered : bool;
  d_children : (string * mult) list;  (** element children, declaration order *)
  d_text : mult option;  (** PCDATA circle, if drawn *)
  d_attrs : (string * bool) list;  (** attribute name, required? *)
  d_open : bool;
      (** open interpretation: children beyond the declared ones are
          tolerated (the schema-free spirit of the language) *)
}

type t = { root : string option; decls : decl list }

let find t name = List.find_opt (fun d -> d.d_name = name) t.decls

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

type violation = { v_element : string; v_message : string }

let pp_violation v = Printf.sprintf "<%s>: %s" v.v_element v.v_message

let mult_regex name m =
  let open Gql_regex.Syntax in
  let s = sym name in
  match m with One -> s | Opt -> opt s | Star -> star s | Plus -> plus s

let content_regex d =
  Gql_regex.Syntax.seq_list
    (List.map (fun (n, m) -> mult_regex n m) d.d_children)

let validate_node (t : t) (data : Gql_data.Graph.t) (n : Gql_data.Graph.node)
    (acc : violation list) : violation list =
  let open Gql_data in
  match Graph.kind data n with
  | Graph.Atom _ -> acc
  | Graph.Complex label -> (
    match find t label with
    | None ->
      if t.decls = [] then acc
      else { v_element = label; v_message = "element not declared" } :: acc
    | Some d ->
      let children = Graph.children data n in
      let elem_children =
        List.filter_map
          (fun (c, _) ->
            match Graph.kind data c with
            | Graph.Complex l -> Some l
            | Graph.Atom _ -> None)
          children
      in
      let text_count =
        List.length
          (List.filter (fun (c, _) -> Graph.is_atom data c) children)
      in
      let acc =
        (* text discipline *)
        match d.d_text with
        | Some m when not (mult_allows m text_count) ->
          { v_element = label;
            v_message =
              Printf.sprintf "text content count %d violates multiplicity %s"
                text_count (mult_to_string m) }
          :: acc
        | None when text_count > 0 && not d.d_open ->
          { v_element = label; v_message = "unexpected text content" } :: acc
        | Some _ | None -> acc
      in
      let acc =
        if d.d_ordered then begin
          (* DTD-style: regular expression over the child label word *)
          let auto = Gql_regex.Glushkov.build (content_regex d) in
          if Gql_regex.Glushkov.accepts auto elem_children then acc
          else
            { v_element = label;
              v_message =
                Printf.sprintf "ordered children (%s) do not match schema"
                  (String.concat "," elem_children) }
            :: acc
        end
        else begin
          (* beyond-DTD: per-label counting, order-insensitive *)
          let count l =
            List.length (List.filter (fun x -> x = l) elem_children)
          in
          let acc =
            List.fold_left
              (fun acc (cname, m) ->
                if mult_allows m (count cname) then acc
                else
                  { v_element = label;
                    v_message =
                      Printf.sprintf "%d occurrence(s) of <%s> violate multiplicity %s"
                        (count cname) cname (mult_to_string m) }
                  :: acc)
              acc d.d_children
          in
          if d.d_open then acc
          else
            List.fold_left
              (fun acc cname ->
                if List.mem_assoc cname d.d_children then acc
                else
                  { v_element = label;
                    v_message = Printf.sprintf "undeclared child <%s>" cname }
                  :: acc)
              acc
              (List.sort_uniq compare elem_children)
        end
      in
      (* attributes *)
      let present = List.map fst (Graph.attributes data n) in
      let acc =
        List.fold_left
          (fun acc (aname, required) ->
            if required && not (List.mem aname present) then
              { v_element = label;
                v_message = Printf.sprintf "required attribute %s missing" aname }
              :: acc
            else acc)
          acc d.d_attrs
      in
      if d.d_open then acc
      else
        List.fold_left
          (fun acc aname ->
            if List.mem_assoc aname d.d_attrs then acc
            else
              { v_element = label;
                v_message = Printf.sprintf "undeclared attribute %s" aname }
              :: acc)
          acc present)

let validate (t : t) (data : Gql_data.Graph.t) : violation list =
  let open Gql_data in
  let acc = ref [] in
  (match t.root, Graph.roots data with
  | Some r, root :: _ -> (
    match Graph.label data root with
    | Some l when l <> r ->
      acc :=
        [ { v_element = l;
            v_message = Printf.sprintf "root is <%s>, schema expects <%s>" l r } ]
    | Some _ | None -> ())
  | _ -> ());
  for n = 0 to Graph.n_nodes data - 1 do
    acc := validate_node t data n !acc
  done;
  List.rev !acc

let is_valid t data = validate t data = []

(* ------------------------------------------------------------------ *)
(* DTD interchange                                                     *)
(* ------------------------------------------------------------------ *)

exception Not_translatable of string

(* A content model is "flat" when it is a sequence of names each carrying
   at most one postfix operator — the shape a multiplicity-labelled
   schema graph can draw.  The BOOK/AUTHOR DTD of the paper is flat. *)
let rec flatten_seq (re : string Gql_regex.Syntax.t) :
    (string * mult) list =
  let open Gql_regex.Syntax in
  match re with
  | Eps -> []
  | Sym s -> [ (s, One) ]
  | Opt (Sym s) -> [ (s, Opt) ]
  | Star (Sym s) -> [ (s, Star) ]
  | Plus (Sym s) -> [ (s, Plus) ]
  | Seq (a, b) -> flatten_seq a @ flatten_seq b
  | Empty | Alt _ | Star _ | Plus _ | Opt _ ->
    raise
      (Not_translatable
         (Printf.sprintf "content model %s is not a flat sequence"
            (to_string Fun.id re)))

(** Translate a DTD into an XML-GL schema graph (raises
    {!Not_translatable} on non-flat content models — the fragment the
    figures exercise is flat). *)
let of_dtd (dtd : Gql_dtd.Ast.t) : t =
  let decl_of (name, cm) =
    let d_children, d_text, d_ordered =
      match cm with
      | Gql_dtd.Ast.Empty_content -> ([], None, true)
      | Gql_dtd.Ast.Any_content ->
        raise (Not_translatable (name ^ ": ANY content"))
      | Gql_dtd.Ast.Pcdata -> ([], Some Star, true)
      | Gql_dtd.Ast.Mixed names ->
        (* mixed content: text and the listed elements, unordered *)
        (List.map (fun n -> (n, Star)) names, Some Star, false)
      | Gql_dtd.Ast.Children re -> (flatten_seq re, None, true)
    in
    let d_attrs =
      List.map
        (fun (a : Gql_dtd.Ast.attr_def) ->
          (a.attr_name, a.default = Gql_dtd.Ast.Required))
        (Gql_dtd.Ast.attrs_of dtd name)
    in
    { d_name = name; d_ordered; d_children; d_text; d_attrs; d_open = false }
  in
  { root = dtd.Gql_dtd.Ast.root_hint; decls = List.map decl_of dtd.elements }

(** Translate back to a DTD.  Unordered declarations have no DTD
    equivalent (the paper's point); they raise {!Not_translatable}
    unless [force_order] linearises them. *)
let to_dtd ?(force_order = false) (t : t) : Gql_dtd.Ast.t =
  let elements =
    List.map
      (fun d ->
        if (not d.d_ordered) && d.d_children <> [] && not force_order then
          raise
            (Not_translatable
               (d.d_name ^ ": unordered content is not DTD-expressible"));
        let cm =
          match d.d_children, d.d_text with
          | [], None -> Gql_dtd.Ast.Empty_content
          | [], Some _ -> Gql_dtd.Ast.Pcdata
          | children, None ->
            Gql_dtd.Ast.Children
              (Gql_regex.Syntax.seq_list
                 (List.map (fun (n, m) -> mult_regex n m) children))
          | children, Some _ -> Gql_dtd.Ast.Mixed (List.map fst children)
        in
        (d.d_name, cm))
      t.decls
  in
  let attlists =
    List.filter_map
      (fun d ->
        if d.d_attrs = [] then None
        else
          Some
            ( d.d_name,
              List.map
                (fun (aname, required) ->
                  {
                    Gql_dtd.Ast.attr_name = aname;
                    attr_type = Gql_dtd.Ast.Cdata;
                    default =
                      (if required then Gql_dtd.Ast.Required
                       else Gql_dtd.Ast.Implied);
                  })
                d.d_attrs ))
      t.decls
  in
  { Gql_dtd.Ast.root_hint = t.root; elements; attlists }

(** The paper's BOOK/AUTHOR schema (figure XML-GL-DTD1), as a ready-made
    value for tests and the E2 bench. *)
let book_schema : t =
  {
    root = Some "BOOK";
    decls =
      [
        {
          d_name = "BOOK";
          d_ordered = false;  (* the figure's content is unordered — the
                                 point of the comparison *)
          d_children =
            [ ("title", Opt); ("price", One); ("AUTHOR", Star) ];
          d_text = None;
          d_attrs = [ ("isbn", true) ];
          d_open = false;
        };
        {
          d_name = "title";
          d_ordered = true;
          d_children = [];
          d_text = Some Star;
          d_attrs = [];
          d_open = false;
        };
        {
          d_name = "price";
          d_ordered = true;
          d_children = [];
          d_text = Some Star;
          d_attrs = [];
          d_open = false;
        };
        {
          d_name = "AUTHOR";
          d_ordered = true;
          d_children = [ ("first-name", One); ("last-name", One) ];
          d_text = None;
          d_attrs = [];
          d_open = false;
        };
        {
          d_name = "first-name";
          d_ordered = true;
          d_children = [];
          d_text = Some Star;
          d_attrs = [];
          d_open = false;
        };
        {
          d_name = "last-name";
          d_ordered = true;
          d_children = [];
          d_text = Some Star;
          d_attrs = [];
          d_open = false;
        };
      ];
  }
