lib/xmlgl/matching.ml: Array Ast Fun Gql_data Gql_graph Gql_regex Graph Hashtbl List Option Predicate Value
