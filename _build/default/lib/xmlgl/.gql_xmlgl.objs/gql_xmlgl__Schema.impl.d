lib/xmlgl/schema.ml: Fun Gql_data Gql_dtd Gql_regex Graph List Printf String
