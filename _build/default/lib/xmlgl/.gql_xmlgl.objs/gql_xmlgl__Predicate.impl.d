lib/xmlgl/predicate.ml: Array Ast Gql_data Gql_regex Graph Hashtbl String Value
