lib/xmlgl/construct.ml: Array Ast Codec Float Gql_data Gql_xml Graph Hashtbl List Matching Option Value
