lib/xmlgl/engine.ml: Ast Construct Gql_data Gql_xml List Matching
