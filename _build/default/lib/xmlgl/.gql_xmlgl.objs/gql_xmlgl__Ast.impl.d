lib/xmlgl/ast.ml: Array Gql_data Gql_graph List Printf
