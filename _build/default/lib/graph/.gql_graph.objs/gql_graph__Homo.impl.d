lib/graph/homo.ml: Array Digraph List Regpath
