lib/graph/algo.ml: Array Digraph List Queue
