lib/graph/regpath.ml: Array Buffer Digraph Fun Gql_regex Hashtbl List Queue
