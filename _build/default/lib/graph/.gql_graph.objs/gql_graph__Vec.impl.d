lib/graph/vec.ml: Array List
