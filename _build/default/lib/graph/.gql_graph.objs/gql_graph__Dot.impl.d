lib/graph/dot.ml: Buffer Digraph List Printf String
