(** Generic pattern matching: find homomorphic embeddings of a small
    pattern graph into a large data graph.

    Both visual languages reduce their matching phase to this search:
    pattern nodes constrain the data node they may bind to (a predicate),
    pattern edges constrain pairs of bindings — either a direct edge whose
    label satisfies a predicate, or a regular path ({!Regpath}).  Shared
    pattern nodes *are* the joins of the paper ("they share the same
    nodes, making variables obsolete").

    The search is backtracking with the standard optimisations that keep
    the paper's example queries interactive on 100k-node databases:
    - once part of the pattern is bound, candidates for a node connected
      to the bound region come from *adjacency* of the bound neighbour,
      never from a global scan;
    - global candidate lists (needed to start each connected component)
      are computed lazily and memoised;
    - the next node to bind is chosen fail-first: connected nodes are
      scored by their bound neighbour's degree, unconnected ones by their
      global candidate count.

    [iter_embeddings ~pre_bound] seeds the search with fixed bindings —
    the semi-naive WG-Log evaluator pins a pattern edge to a freshly
    derived data edge and completes the embedding around it. *)

type ('n, 'e) edge_constraint =
  | Direct of ('e -> bool)  (** one edge whose label satisfies the predicate *)
  | Path of 'e Regpath.t  (** a regular path *)
  | Negated of ('e -> bool)
      (** no edge with a matching label may exist (GraphLog's crossed-out
          edges); checked once both endpoints are bound *)

type ('n, 'e) pattern = {
  p_nodes : (Digraph.node -> 'n -> bool) array;
      (** predicate for each pattern node; receives the data node id so
          callers can consult surrounding structure (e.g. string-values) *)
  p_edges : (int * ('n, 'e) edge_constraint * int) list;
}

type embedding = int array
(** [emb.(p)] = data node bound to pattern node [p]. *)

(** Enumerate embeddings, calling [emit] on each.  [emit] may raise to
    stop early (see {!exists}).  [pre_bound] fixes pattern nodes to data
    nodes before the search starts (duplicates must agree); the fixed
    nodes are checked against their predicates and edge constraints. *)
let iter_embeddings ?(pre_bound = []) (pat : ('n, 'e) pattern)
    (g : ('n, 'e) Digraph.t) ~(emit : embedding -> unit) : unit =
  let k = Array.length pat.p_nodes in
  if k = 0 then emit [||]
  else begin
    let binding = Array.make k (-1) in
    let bound = Array.make k false in
    (* Lazy global candidate lists. *)
    let cand_cache : int list option array = Array.make k None in
    let global_candidates p =
      match cand_cache.(p) with
      | Some c -> c
      | None ->
        let c =
          List.rev
            (Digraph.fold_nodes
               (fun acc i payload -> if pat.p_nodes.(p) i payload then i :: acc else acc)
               [] g)
        in
        cand_cache.(p) <- Some c;
        c
    in
    (* Positive adjacency between pattern nodes, for connectivity-guided
       ordering; negated edges do not guide the order (they only filter). *)
    let adj = Array.make k [] in
    List.iter
      (fun (a, c, b) ->
        match c with
        | Direct _ | Path _ ->
          adj.(a) <- b :: adj.(a);
          adj.(b) <- a :: adj.(b)
        | Negated _ -> ())
      pat.p_edges;
    (* Check every constraint whose endpoints are both bound and that
       involves pattern node [just_bound]. *)
    let edges_ok just_bound =
      List.for_all
        (fun (a, c, b) ->
          if (a <> just_bound && b <> just_bound) || not (bound.(a) && bound.(b))
          then true
          else
            let na = binding.(a) and nb = binding.(b) in
            match c with
            | Direct p -> List.exists (fun (d, l) -> d = nb && p l) (Digraph.succ g na)
            | Path rp -> Regpath.connects rp g ~src:na ~dst:nb
            | Negated p ->
              not (List.exists (fun (d, l) -> d = nb && p l) (Digraph.succ g na)))
        pat.p_edges
    in
    (* Fail-first ordering with cheap scores: a node adjacent to the
       bound region is scored by that neighbour's degree (its candidates
       will come from adjacency); an unconnected node costs a global
       scan, memoised. *)
    let next_node () =
      let best = ref (-1) in
      let best_score = ref max_int in
      for p = 0 to k - 1 do
        if not bound.(p) then begin
          let neighbour_degree =
            List.fold_left
              (fun acc q ->
                if bound.(q) then
                  let deg =
                    Digraph.out_degree g binding.(q) + Digraph.in_degree g binding.(q)
                  in
                  min acc deg
                else acc)
              max_int adj.(p)
          in
          let score =
            if neighbour_degree < max_int then neighbour_degree
            else 1_000_000 + List.length (global_candidates p)
          in
          if score < !best_score then begin
            best_score := score;
            best := p
          end
        end
      done;
      !best
    in
    (* Candidates for [p]: when a positive edge connects p to an
       already-bound node, enumerate along that edge; fall back to the
       global list otherwise.  The node predicate is re-checked on
       propagated candidates. *)
    let candidates_for p =
      let via_edge =
        List.find_map
          (fun (a, c, b) ->
            match c with
            | Negated _ -> None
            | Direct f ->
              if a <> p && b = p && bound.(a) then
                Some
                  (List.filter_map
                     (fun (d, l) -> if f l then Some d else None)
                     (Digraph.succ g binding.(a)))
              else if a = p && b <> p && bound.(b) then
                Some
                  (List.filter_map
                     (fun (s, l) -> if f l then Some s else None)
                     (Digraph.pred g binding.(b)))
              else None
            | Path rp ->
              if a <> p && b = p && bound.(a) then
                Some (Regpath.reachable rp g binding.(a))
              else None)
          pat.p_edges
      in
      match via_edge with
      | Some cands ->
        List.sort_uniq compare
          (List.filter (fun n -> pat.p_nodes.(p) n (Digraph.payload g n)) cands)
      | None -> global_candidates p
    in
    (* Seed the pre-bound nodes. *)
    let seeds_ok =
      List.for_all
        (fun (p, n) ->
          if p < 0 || p >= k then false
          else if bound.(p) then binding.(p) = n
          else if pat.p_nodes.(p) n (Digraph.payload g n) then begin
            binding.(p) <- n;
            bound.(p) <- true;
            edges_ok p
          end
          else false)
        pre_bound
    in
    if seeds_ok then begin
      let already = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bound in
      let rec extend depth =
        if depth = k then emit (Array.copy binding)
        else begin
          let p = next_node () in
          let cands = candidates_for p in
          bound.(p) <- true;
          List.iter
            (fun candidate ->
              binding.(p) <- candidate;
              if edges_ok p then extend (depth + 1))
            cands;
          binding.(p) <- -1;
          bound.(p) <- false
        end
      in
      extend already
    end
  end

exception Found

let exists ?pre_bound pat g =
  match iter_embeddings ?pre_bound pat g ~emit:(fun _ -> raise Found) with
  | () -> false
  | exception Found -> true

let all_embeddings ?pre_bound pat g =
  let acc = ref [] in
  iter_embeddings ?pre_bound pat g ~emit:(fun e -> acc := e :: !acc);
  List.rev !acc

let count ?pre_bound pat g =
  let n = ref 0 in
  iter_embeddings ?pre_bound pat g ~emit:(fun _ -> incr n);
  !n
