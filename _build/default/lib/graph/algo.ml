(** Classical graph algorithms over {!Digraph}.

    Everything here is payload-agnostic; predicates and label filters are
    passed in.  Complexity notes are in each doc comment because these
    run inside the pattern matchers' inner loops. *)

(** Breadth-first order from [starts], following edges that satisfy
    [follow] (default: all).  O(V + E). *)
let bfs ?(follow = fun _ -> true) g starts =
  let n = Digraph.n_nodes g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if not seen.(s) then begin
        seen.(s) <- true;
        Queue.add s queue
      end)
    starts;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    order := u :: !order;
    List.iter
      (fun (v, l) ->
        if follow l && not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      (Digraph.succ g u)
  done;
  List.rev !order

(** Nodes reachable from [starts] (including them), as a membership array. *)
let reachable ?follow g starts =
  let n = Digraph.n_nodes g in
  let mark = Array.make n false in
  List.iter (fun u -> mark.(u) <- true) (bfs ?follow g starts);
  mark

(** Depth-first postorder of the whole graph.  O(V + E), iterative. *)
let dfs_postorder g =
  let n = Digraph.n_nodes g in
  let seen = Array.make n false in
  let order = ref [] in
  let visit u =
    (* Explicit stack to survive deep synthetic documents. *)
    let stack = ref [ (u, ref (Digraph.succ g u)) ] in
    seen.(u) <- true;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (v, rest) :: tl -> (
        match !rest with
        | [] ->
          order := v :: !order;
          stack := tl
        | (w, _) :: more ->
          rest := more;
          if not seen.(w) then begin
            seen.(w) <- true;
            stack := (w, ref (Digraph.succ g w)) :: !stack
          end)
    done
  in
  for u = 0 to n - 1 do
    if not seen.(u) then visit u
  done;
  List.rev !order

(** Topological sort; [None] if the graph has a cycle.  O(V + E). *)
let topological_sort g =
  let n = Digraph.n_nodes g in
  let indeg = Array.make n 0 in
  Digraph.iter_edges (fun ~src:_ ~dst _ -> indeg.(dst) <- indeg.(dst) + 1) g;
  let queue = Queue.create () in
  for u = 0 to n - 1 do
    if indeg.(u) = 0 then Queue.add u queue
  done;
  let order = ref [] in
  let taken = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    incr taken;
    order := u :: !order;
    List.iter
      (fun (v, _) ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      (Digraph.succ g u)
  done;
  if !taken = n then Some (List.rev !order) else None

let is_acyclic g = topological_sort g <> None

(** Strongly connected components (Tarjan), iterative.  Returns components
    in reverse topological order of the condensation.  O(V + E). *)
let scc g =
  let n = Digraph.n_nodes g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let strongconnect v =
    (* Recursive with an explicit work list encoded in frames. *)
    let frames = ref [ (v, ref (List.map fst (Digraph.succ g v))) ] in
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (u, rest) :: tl -> (
        match !rest with
        | w :: more ->
          rest := more;
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            stack := w :: !stack;
            on_stack.(w) <- true;
            frames := (w, ref (List.map fst (Digraph.succ g w))) :: !frames
          end
          else if on_stack.(w) then lowlink.(u) <- min lowlink.(u) index.(w)
        | [] ->
          if lowlink.(u) = index.(u) then begin
            let rec pop acc =
              match !stack with
              | [] -> acc
              | w :: rest' ->
                stack := rest';
                on_stack.(w) <- false;
                if w = u then w :: acc else pop (w :: acc)
            in
            components := pop [] :: !components
          end;
          frames := tl;
          (match tl with
          | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(u)
          | [] -> ()))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  List.rev !components

(** Shortest (hop-count) path between two nodes following labelled edges;
    [None] if unreachable.  Returns the node sequence including both
    endpoints. *)
let shortest_path ?(follow = fun _ -> true) g ~src ~dst =
  let n = Digraph.n_nodes g in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(src) <- true;
  Queue.add src queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.take queue in
    if u = dst then found := true
    else
      List.iter
        (fun (v, l) ->
          if follow l && not seen.(v) then begin
            seen.(v) <- true;
            parent.(v) <- u;
            Queue.add v queue
          end)
        (Digraph.succ g u)
  done;
  if not !found then None
  else begin
    let rec build acc v = if v = src then src :: acc else build (v :: acc) parent.(v) in
    Some (build [] dst)
  end

(** Transitive closure as a boolean matrix — O(V * (V + E)); only for the
    small graphs of queries and schemas, never for databases. *)
let transitive_closure g =
  let n = Digraph.n_nodes g in
  Array.init n (fun u -> reachable g [ u ])

(** Undirected connected components (used for join-ordering in the
    algebra: each component of a pattern is planned independently). *)
let undirected_components g =
  let n = Digraph.n_nodes g in
  let comp = Array.make n (-1) in
  let current = ref 0 in
  for u = 0 to n - 1 do
    if comp.(u) = -1 then begin
      let queue = Queue.create () in
      Queue.add u queue;
      comp.(u) <- !current;
      while not (Queue.is_empty queue) do
        let v = Queue.take queue in
        let touch w =
          if comp.(w) = -1 then begin
            comp.(w) <- !current;
            Queue.add w queue
          end
        in
        List.iter (fun (w, _) -> touch w) (Digraph.succ g v);
        List.iter (fun (w, _) -> touch w) (Digraph.pred g v)
      done;
      incr current
    end
  done;
  (comp, !current)
