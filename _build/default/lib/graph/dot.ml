(** Graphviz DOT export — the debugging view of every graph in the
    system (data graphs, query graphs, schema graphs).  The presentation
    view is [Gql_visual]; DOT is for developers. *)

let escape s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Render with user-supplied labellers.  [node_attrs]/[edge_attrs] may
    add extra DOT attributes (e.g. [shape=box], [style=dashed]). *)
let to_string ?(name = "g") ?(node_attrs = fun _ _ -> [])
    ?(edge_attrs = fun _ -> []) ~node_label ~edge_label g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n";
  Digraph.iter_nodes
    (fun i p ->
      let attrs =
        ("label", node_label i p) :: node_attrs i p
        |> List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v))
        |> String.concat ", "
      in
      Buffer.add_string buf (Printf.sprintf "  n%d [%s];\n" i attrs))
    g;
  Digraph.iter_edges
    (fun ~src ~dst l ->
      let attrs =
        ("label", edge_label l) :: edge_attrs l
        |> List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v))
        |> String.concat ", "
      in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [%s];\n" src dst attrs))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
