lib/xpath/parse.ml: Ast List Printf String
