lib/xpath/eval.ml: Array Ast Float Hashtbl Index List Option Parse Printf String
