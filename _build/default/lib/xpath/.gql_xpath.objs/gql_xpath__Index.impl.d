lib/xpath/index.ml: Array Buffer Gql_xml List
