lib/xpath/ast.ml: Float List Printf String
