(** AST of the XPath 1.0 subset used as the navigational baseline.

    The paper positions graphical languages against the navigational
    family (XPath/XSLT/XQuery, section 2.2 of the supplied text).  To
    benchmark "who wins where" we need a faithful competitor: this module
    with {!Parse} and {!Eval} implements the XPath fragment that covers
    every navigational query in the supplied text's examples (e.g.
    [/html/body//a[contains(./text(),"Xcerpt") and starts-with(./@href,"http:")]]). *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Attribute
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding

type node_test =
  | Name of string  (** element (or attribute) name *)
  | Wildcard  (** [*] *)
  | Text_test  (** [text()] *)
  | Node_test  (** [node()] *)
  | Comment_test  (** [comment()] *)

type expr =
  | Path of path
  | Literal of string
  | Number of float
  | Binop of binop * expr * expr
  | Neg of expr
  | Call of string * expr list

and binop =
  | Or | And
  | Eq | Neq | Lt | Le | Gt | Ge
  | Add | Sub | Mul | Div | Mod
  | Union  (** [|] on node-sets *)

and step = { axis : axis; test : node_test; predicates : expr list }

and path = {
  absolute : bool;  (** starts at the document root *)
  steps : step list;
}

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Self -> "self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Attribute -> "attribute"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Following -> "following"
  | Preceding -> "preceding"

let test_name = function
  | Name s -> s
  | Wildcard -> "*"
  | Text_test -> "text()"
  | Node_test -> "node()"
  | Comment_test -> "comment()"

let rec pp_expr = function
  | Path p -> pp_path p
  | Literal s -> Printf.sprintf "%S" s
  | Number f ->
    if Float.is_integer f then string_of_int (int_of_float f)
    else string_of_float f
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (pp_expr a) (pp_binop op) (pp_expr b)
  | Neg e -> Printf.sprintf "(-%s)" (pp_expr e)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map pp_expr args))

and pp_binop = function
  | Or -> "or" | And -> "and"
  | Eq -> "=" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div" | Mod -> "mod"
  | Union -> "|"

and pp_step s =
  let base =
    match s.axis, s.test with
    | Child, t -> test_name t
    | Attribute, t -> "@" ^ test_name t
    | Self, Node_test -> "."
    | Parent, Node_test -> ".."
    | a, t -> axis_name a ^ "::" ^ test_name t
  in
  base
  ^ String.concat ""
      (List.map (fun p -> "[" ^ pp_expr p ^ "]") s.predicates)

and pp_path p =
  (* [//] abbreviation is re-introduced where a descendant-or-self::node()
     step was produced by the parser. *)
  let rec steps = function
    | [] -> []
    | { axis = Descendant_or_self; test = Node_test; predicates = [] }
      :: next :: rest -> ("//" ^ pp_step next) :: steps rest
    | s :: rest -> ("/" ^ pp_step s) :: steps rest
  in
  let body = String.concat "" (steps p.steps) in
  if p.absolute then if body = "" then "/" else body
  else if String.length body > 0 && body.[0] = '/' then
    String.sub body 1 (String.length body - 1)
  else body
