(** Flattened document index for XPath evaluation.

    The tree is numbered in document order (attributes immediately after
    their owner element, as XPath prescribes), with parent and children
    arrays, so every axis is array navigation and node-sets are sorted
    integer lists.  Built once per document, reused across queries —
    this is what makes the navigational baseline a fair competitor in
    the benchmarks. *)

type node_data =
  | Elem of { name : string; attrs : (string * string) list }
  | Attr of { name : string; value : string; owner : int }
  | Txt of string
  | Com of string
  | P of { target : string; content : string }

type t = {
  data : node_data array;
  parent : int array;  (** -1 at the root *)
  children : int array array;  (** element/text/comment/PI children only *)
  attr_nodes : int array array;  (** attribute node ids per node *)
  root : int;  (** index of the root element *)
}

let build (document : Gql_xml.Tree.doc) : t =
  let open Gql_xml.Tree in
  let data = ref [] in
  let parent = ref [] in
  let count = ref 0 in
  let children_acc : (int * int list) list ref = ref [] in
  let attrs_acc : (int * int list) list ref = ref [] in
  let fresh d p =
    let id = !count in
    incr count;
    data := d :: !data;
    parent := p :: !parent;
    id
  in
  let rec go_element p (e : element) : int =
    let id = fresh (Elem { name = e.name; attrs = e.attrs }) p in
    let attr_ids =
      List.map
        (fun (name, value) -> fresh (Attr { name; value; owner = id }) id)
        e.attrs
    in
    attrs_acc := (id, attr_ids) :: !attrs_acc;
    let child_ids =
      List.map
        (fun c ->
          match c with
          | Element ce -> go_element id ce
          | Text s -> fresh (Txt s) id
          | Comment s -> fresh (Com s) id
          | Pi (target, content) -> fresh (P { target; content }) id)
        e.children
    in
    children_acc := (id, child_ids) :: !children_acc;
    id
  in
  let root = go_element (-1) document.root in
  let n = !count in
  let data_arr = Array.of_list (List.rev !data) in
  let parent_arr = Array.of_list (List.rev !parent) in
  let children = Array.make n [||] in
  List.iter (fun (id, cs) -> children.(id) <- Array.of_list cs) !children_acc;
  let attr_nodes = Array.make n [||] in
  List.iter (fun (id, ats) -> attr_nodes.(id) <- Array.of_list ats) !attrs_acc;
  { data = data_arr; parent = parent_arr; children; attr_nodes; root }

let n_nodes t = Array.length t.data
let data t i = t.data.(i)
let parent t i = t.parent.(i)
let children t i = t.children.(i)
let attrs t i = t.attr_nodes.(i)

let name t i =
  match t.data.(i) with
  | Elem { name; _ } -> Some name
  | Attr { name; _ } -> Some name
  | Txt _ | Com _ | P _ -> None

let is_element t i = match t.data.(i) with Elem _ -> true | _ -> false

(** XPath string-value. *)
let rec string_value t i =
  match t.data.(i) with
  | Txt s -> s
  | Attr { value; _ } -> value
  | Com s -> s
  | P { content; _ } -> content
  | Elem _ ->
    let buf = Buffer.create 16 in
    let rec go j =
      match t.data.(j) with
      | Txt s -> Buffer.add_string buf s
      | Elem _ -> Array.iter go t.children.(j)
      | Attr _ | Com _ | P _ -> ()
    in
    Array.iter go t.children.(i);
    ignore string_value;
    Buffer.contents buf

(** Reconstruct the subtree as an XML tree (for materialising results). *)
let rec to_tree t i : Gql_xml.Tree.node =
  match t.data.(i) with
  | Txt s -> Gql_xml.Tree.Text s
  | Com s -> Gql_xml.Tree.Comment s
  | P { target; content } -> Gql_xml.Tree.Pi (target, content)
  | Attr { name; value; _ } ->
    (* An attribute materialises as a small element, as XSLT's copy-of
       does for attribute-only selections. *)
    Gql_xml.Tree.elt name [ Gql_xml.Tree.Text value ]
  | Elem { name; attrs } ->
    Gql_xml.Tree.Element
      {
        Gql_xml.Tree.name;
        attrs;
        children = Array.to_list (Array.map (to_tree t) t.children.(i));
      }
