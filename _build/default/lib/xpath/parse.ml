(** Recursive-descent parser for the XPath subset (abbreviated syntax).

    Precedence, low to high: or, and, equality, relational, additive,
    multiplicative (star, div, mod), unary minus, union, path.  Paths
    support [/], [//], [@], [.], [..], the star wildcard, [axis::test]
    and predicates. *)

exception Error of string * int

type state = { src : string; mutable pos : int }

let error st msg = raise (Error (msg, st.pos))
let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let peek_at st k =
  if st.pos + k >= String.length st.src then '\000' else st.src.[st.pos + k]

let advance st = if not (eof st) then st.pos <- st.pos + 1

let skip_space st =
  while (not (eof st)) && (peek st = ' ' || peek st = '\t' || peek st = '\n') do
    advance st
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let eat st s =
  if looking_at st s then begin
    st.pos <- st.pos + String.length s;
    true
  end
  else false

let expect st s = if not (eat st s) then error st (Printf.sprintf "expected %S" s)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.' || c = ':'

let parse_name st =
  (* ':' is a legal name character (lexical namespaces) but "::" is the
     axis separator — stop before a double colon. *)
  if not (is_name_start (peek st)) then error st "expected a name";
  let start = st.pos in
  let continue () =
    is_name_char (peek st) && not (peek st = ':' && peek_at st 1 = ':')
  in
  while (not (eof st)) && continue () do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* A name used as an operator keyword (and/or/div/mod) must not be
   followed by name characters. *)
let at_keyword st kw =
  looking_at st kw
  && not (is_name_char (peek_at st (String.length kw)))

let parse_number st =
  let start = st.pos in
  while (not (eof st)) && peek st >= '0' && peek st <= '9' do
    advance st
  done;
  if peek st = '.' && peek_at st 1 >= '0' && peek_at st 1 <= '9' then begin
    advance st;
    while (not (eof st)) && peek st >= '0' && peek st <= '9' do
      advance st
    done
  end;
  float_of_string (String.sub st.src start (st.pos - start))

let parse_literal st =
  let q = peek st in
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek st <> q do
    advance st
  done;
  if eof st then error st "unterminated string literal";
  let s = String.sub st.src start (st.pos - start) in
  advance st;
  s

let rec parse_expr st : Ast.expr = parse_or st

and parse_or st =
  let left = parse_and st in
  skip_space st;
  if at_keyword st "or" then begin
    st.pos <- st.pos + 2;
    Ast.Binop (Ast.Or, left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_equality st in
  skip_space st;
  if at_keyword st "and" then begin
    st.pos <- st.pos + 3;
    Ast.Binop (Ast.And, left, parse_and st)
  end
  else left

and parse_equality st =
  let left = parse_relational st in
  skip_space st;
  if eat st "!=" then Ast.Binop (Ast.Neq, left, parse_equality st)
  else if eat st "=" then Ast.Binop (Ast.Eq, left, parse_equality st)
  else left

and parse_relational st =
  let left = parse_additive st in
  skip_space st;
  if eat st "<=" then Ast.Binop (Ast.Le, left, parse_relational st)
  else if eat st ">=" then Ast.Binop (Ast.Ge, left, parse_relational st)
  else if eat st "<" then Ast.Binop (Ast.Lt, left, parse_relational st)
  else if eat st ">" then Ast.Binop (Ast.Gt, left, parse_relational st)
  else left

and parse_additive st =
  let left = parse_multiplicative st in
  let rec go left =
    skip_space st;
    if eat st "+" then go (Ast.Binop (Ast.Add, left, parse_multiplicative st))
    else if
      (* '-' must not swallow the hyphen inside names; in XPath a binary
         minus is always surrounded by non-name context here because the
         left operand has already been consumed. *)
      eat st "-"
    then go (Ast.Binop (Ast.Sub, left, parse_multiplicative st))
    else left
  in
  go left

and parse_multiplicative st =
  let left = parse_unary st in
  let rec go left =
    skip_space st;
    if eat st "*" then go (Ast.Binop (Ast.Mul, left, parse_unary st))
    else if at_keyword st "div" then begin
      st.pos <- st.pos + 3;
      go (Ast.Binop (Ast.Div, left, parse_unary st))
    end
    else if at_keyword st "mod" then begin
      st.pos <- st.pos + 3;
      go (Ast.Binop (Ast.Mod, left, parse_unary st))
    end
    else left
  in
  go left

and parse_unary st =
  skip_space st;
  if eat st "-" then Ast.Neg (parse_unary st) else parse_union st

and parse_union st =
  let left = parse_path_expr st in
  skip_space st;
  if peek st = '|' then begin
    advance st;
    Ast.Binop (Ast.Union, left, parse_union st)
  end
  else left

and parse_path_expr st =
  skip_space st;
  match peek st with
  | '"' | '\'' -> Ast.Literal (parse_literal st)
  | c when c >= '0' && c <= '9' -> Ast.Number (parse_number st)
  | '(' ->
    advance st;
    let e = parse_expr st in
    skip_space st;
    expect st ")";
    (* A parenthesised expression may continue as a path: not supported in
       this subset (rare in practice); return as-is. *)
    e
  | _ ->
    (* Function call or location path.  A name followed by '(' that is
       not a node-test keyword is a function call. *)
    let save = st.pos in
    if is_name_start (peek st) then begin
      let name = parse_name st in
      skip_space st;
      if
        peek st = '('
        && name <> "text" && name <> "node" && name <> "comment"
      then begin
        advance st;
        let args = ref [] in
        skip_space st;
        if peek st <> ')' then begin
          args := [ parse_expr st ];
          skip_space st;
          while peek st = ',' do
            advance st;
            args := parse_expr st :: !args;
            skip_space st
          done
        end;
        expect st ")";
        Ast.Call (name, List.rev !args)
      end
      else begin
        st.pos <- save;
        Ast.Path (parse_path st)
      end
    end
    else begin
      let p = parse_path st in
      if (not p.Ast.absolute) && p.Ast.steps = [] then
        error st "expected an expression";
      Ast.Path p
    end

and parse_path st : Ast.path =
  skip_space st;
  let absolute = peek st = '/' in
  let steps = ref [] in
  if absolute then begin
    if looking_at st "//" then begin
      st.pos <- st.pos + 2;
      steps :=
        [ { Ast.axis = Ast.Descendant_or_self; test = Ast.Node_test; predicates = [] } ]
    end
    else advance st
  end;
  let rec go first =
    skip_space st;
    if eof st then ()
    else if
      first
      && not
           (is_name_start (peek st) || peek st = '@' || peek st = '.'
          || peek st = '*')
    then ()
    else begin
      (match parse_step st with
      | Some s -> steps := s :: !steps
      | None -> ());
      skip_space st;
      if looking_at st "//" then begin
        st.pos <- st.pos + 2;
        steps :=
          { Ast.axis = Ast.Descendant_or_self; test = Ast.Node_test; predicates = [] }
          :: !steps;
        go false
      end
      else if peek st = '/' then begin
        advance st;
        go false
      end
    end
  in
  (if absolute then begin
     skip_space st;
     if
       is_name_start (peek st) || peek st = '@' || peek st = '.' || peek st = '*'
     then go false
   end
   else go true);
  { Ast.absolute; steps = List.rev !steps }

and parse_step st : Ast.step option =
  skip_space st;
  if eat st ".." then
    Some { Ast.axis = Ast.Parent; test = Ast.Node_test; predicates = parse_predicates st }
  else if peek st = '.' && peek_at st 1 <> '.' then begin
    advance st;
    Some { Ast.axis = Ast.Self; test = Ast.Node_test; predicates = parse_predicates st }
  end
  else begin
    let axis =
      if eat st "@" then Ast.Attribute
      else begin
        (* Long axis syntax axis::test *)
        let save = st.pos in
        if is_name_start (peek st) then begin
          let name = parse_name st in
          if eat st "::" then
            match name with
            | "child" -> Ast.Child
            | "descendant" -> Ast.Descendant
            | "descendant-or-self" -> Ast.Descendant_or_self
            | "self" -> Ast.Self
            | "parent" -> Ast.Parent
            | "ancestor" -> Ast.Ancestor
            | "ancestor-or-self" -> Ast.Ancestor_or_self
            | "attribute" -> Ast.Attribute
            | "following-sibling" -> Ast.Following_sibling
            | "preceding-sibling" -> Ast.Preceding_sibling
            | "following" -> Ast.Following
            | "preceding" -> Ast.Preceding
            | a -> error st (Printf.sprintf "unknown axis %s" a)
          else begin
            st.pos <- save;
            Ast.Child
          end
        end
        else Ast.Child
      end
    in
    let test =
      if eat st "*" then Ast.Wildcard
      else if looking_at st "text()" then begin
        st.pos <- st.pos + 6;
        Ast.Text_test
      end
      else if looking_at st "node()" then begin
        st.pos <- st.pos + 6;
        Ast.Node_test
      end
      else if looking_at st "comment()" then begin
        st.pos <- st.pos + 9;
        Ast.Comment_test
      end
      else if is_name_start (peek st) then Ast.Name (parse_name st)
      else error st "expected a node test"
    in
    Some { Ast.axis; test; predicates = parse_predicates st }
  end

and parse_predicates st =
  let rec go acc =
    skip_space st;
    if peek st = '[' then begin
      advance st;
      let e = parse_expr st in
      skip_space st;
      expect st "]";
      go (e :: acc)
    end
    else List.rev acc
  in
  go []

(** Parse a complete XPath expression; raises {!Error}. *)
let expr (src : string) : Ast.expr =
  let st = { src; pos = 0 } in
  let e = parse_expr st in
  skip_space st;
  if not (eof st) then error st "trailing input";
  e

let expr_result src =
  match expr src with
  | e -> Ok e
  | exception Error (msg, pos) -> Error (Printf.sprintf "offset %d: %s" pos msg)
