lib/wglog/schema.ml: Gql_data Graph List Printf
