lib/wglog/ast.ml: Array Gql_data Gql_regex List Printf Schema
