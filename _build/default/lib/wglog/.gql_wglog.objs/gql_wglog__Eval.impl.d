lib/wglog/eval.ml: Array Ast Gql_data Gql_graph Gql_regex Graph Hashtbl List Option String Value
