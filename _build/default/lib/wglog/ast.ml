(** Abstract syntax of WG-Log rules.

    A WG-Log rule is *one* graph in which query and construction parts
    are distinguished by colour/thickness ("the querying graph structure
    is spanned through thin or red lines, while the construction
    structure is spanned by green or thick lines ... they share the same
    nodes, making variables obsolete").  The AST therefore tags every
    node and edge with a {!role} instead of splitting the rule in two.

    GraphLog heritage carried over: crossed-out (negated) edges, dashed
    edges bearing a regular path expression, and the aggregation
    triangle (here: a [Collect] construction edge). *)

type role = Query | Construct

type cmp_op = Eq | Neq | Lt | Le | Gt | Ge

(** Conditions attachable to value nodes (GraphLog shows attribute values
    as rectangles; comparisons against constants qualify them). *)
type condition =
  | Cmp of cmp_op * Gql_data.Value.t
  | Re of string  (** regular expression on the textual value *)

type node_kind =
  | Entity of string option  (** typed box; [None] = any entity (rare) *)
  | Value of Gql_data.Value.t option
      (** atomic rectangle: a constant, or open (bound by matching) *)

type node = {
  n_role : role;
  n_kind : node_kind;
  n_cond : condition list;  (** all must hold *)
}

type edge_mode =
  | Plain
  | Negated  (** crossed-out; query role only *)
  | Regex of string Gql_regex.Syntax.t
      (** dashed; matches a path whose label word is in the language *)
  | Collect
      (** triangle; construction role only: one edge per binding of the
          destination query node, all under a single source instance *)

type edge = {
  e_src : int;
  e_dst : int;
  e_label : string;  (** relation or slot name; unused for [Regex] *)
  e_role : role;
  e_mode : edge_mode;
}

type rule = { nodes : node array; edges : edge list }

type program = { schema : Schema.t option; rules : rule list }

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

module Build = struct
  type t = { mutable ns : node list; mutable count : int; mutable es : edge list }

  let create () = { ns = []; count = 0; es = [] }

  let node b ?(role = Query) ?(cond = []) kind =
    let id = b.count in
    b.ns <- { n_role = role; n_kind = kind; n_cond = cond } :: b.ns;
    b.count <- id + 1;
    id

  let entity b ?role ?cond name = node b ?role ?cond (Entity (Some name))
  let any_entity b ?role ?cond () = node b ?role ?cond (Entity None)
  let value b ?role ?cond () = node b ?role ?cond (Value None)
  let const b ?role v = node b ?role (Value (Some v))

  let edge b ?(role = Query) ?(mode = Plain) ~label src dst =
    b.es <- { e_src = src; e_dst = dst; e_label = label; e_role = role; e_mode = mode } :: b.es

  let negated b ~label src dst = edge b ~mode:Negated ~label src dst

  let regex b re src dst = edge b ~mode:(Regex re) ~label:"" src dst

  let collect b src dst =
    edge b ~role:Construct ~mode:Collect ~label:"member" src dst

  let collect_as b ~label src dst =
    edge b ~role:Construct ~mode:Collect ~label src dst

  let derive b ~label src dst = edge b ~role:Construct ~label src dst

  let finish b : rule =
    { nodes = Array.of_list (List.rev b.ns); edges = List.rev b.es }
end

(* ------------------------------------------------------------------ *)
(* Static checks                                                       *)
(* ------------------------------------------------------------------ *)

type error = string

let query_nodes (r : rule) =
  Array.to_list (Array.mapi (fun i n -> (i, n)) r.nodes)
  |> List.filter_map (fun (i, n) -> if n.n_role = Query then Some i else None)

let construct_nodes (r : rule) =
  Array.to_list (Array.mapi (fun i n -> (i, n)) r.nodes)
  |> List.filter_map (fun (i, n) -> if n.n_role = Construct then Some i else None)

let check_rule (r : rule) : error list =
  let n = Array.length r.nodes in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  List.iter
    (fun e ->
      if e.e_src < 0 || e.e_src >= n || e.e_dst < 0 || e.e_dst >= n then
        err "edge %d->%d out of range" e.e_src e.e_dst
      else begin
        (match e.e_mode, e.e_role with
        | Negated, Construct -> err "negated edge %d->%d cannot be green" e.e_src e.e_dst
        | Collect, Query -> err "collect edge %d->%d must be green" e.e_src e.e_dst
        | (Plain | Regex _ | Negated | Collect), _ -> ());
        (* A query edge may not touch a construction node: the red part
           must be evaluable before anything is derived. *)
        if e.e_role = Query then begin
          if r.nodes.(e.e_src).n_role = Construct then
            err "query edge %d->%d starts at a construction node" e.e_src e.e_dst;
          if r.nodes.(e.e_dst).n_role = Construct then
            err "query edge %d->%d ends at a construction node" e.e_src e.e_dst
        end;
        if e.e_mode = Collect && r.nodes.(e.e_dst).n_role <> Query then
          err "collect edge %d->%d must aggregate a query node" e.e_src e.e_dst
      end)
    r.edges;
  if construct_nodes r = [] && not (List.exists (fun e -> e.e_role = Construct) r.edges)
  then () (* pure goal: allowed *);
  List.rev !errs

(** Check a rule against a schema: entity types exist, relation labels
    exist with compatible endpoint types, slot edges match declarations. *)
let check_against_schema (s : Schema.t) (r : rule) : error list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  Array.iteri
    (fun i nd ->
      match nd.n_kind with
      | Entity (Some t) when not (Schema.has_entity s t) ->
        err "node %d: unknown entity type %s" i t
      | Entity _ | Value _ -> ())
    r.nodes;
  List.iter
    (fun e ->
      match e.e_mode with
      | Regex _ -> ()
      | Plain | Negated | Collect -> (
        let src_t =
          match r.nodes.(e.e_src).n_kind with
          | Entity (Some t) -> Some t
          | Entity None | Value _ -> None
        in
        let dst_is_value =
          match r.nodes.(e.e_dst).n_kind with
          | Value _ -> true
          | Entity _ -> false
        in
        match src_t with
        | None -> ()
        | Some t ->
          if dst_is_value then begin
            if not (List.mem_assoc e.e_label (Schema.slots_of s t)) then
              err "edge %s: entity %s has no such slot" e.e_label t
          end
          else
            match Schema.edge_type s e.e_label with
            | None -> err "edge %s: not a declared relation" e.e_label
            | Some et ->
              if et.Schema.et_src <> t then
                err "edge %s: source must be %s, rule has %s" e.e_label
                  et.Schema.et_src t))
    r.edges;
  List.rev !errs

let check_program (p : program) : error list =
  let base = List.concat_map check_rule p.rules in
  match p.schema with
  | None -> base
  | Some s -> base @ List.concat_map (check_against_schema s) p.rules

(** Labels derived (green) and negated (red, crossed) by a program; a
    program is *stratifiable within one pass* only when no derived label
    is also negated — the classical safety condition, surfaced as a
    warning by the engine. *)
let stratification_warnings (p : program) : string list =
  let derived =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun e ->
            if e.e_role = Construct && e.e_mode <> Collect then Some e.e_label
            else None)
          r.edges)
      p.rules
    |> List.sort_uniq compare
  in
  let negated =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun e -> if e.e_mode = Negated then Some e.e_label else None)
          r.edges)
      p.rules
    |> List.sort_uniq compare
  in
  List.filter_map
    (fun l ->
      if List.mem l derived then
        Some (Printf.sprintf "label %s is both derived and negated: stratify the program" l)
      else None)
    negated
