lib/lang/lex.ml: Buffer Float List Printf String
