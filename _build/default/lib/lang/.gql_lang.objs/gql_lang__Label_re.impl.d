lib/lang/label_re.ml: Gql_regex String
