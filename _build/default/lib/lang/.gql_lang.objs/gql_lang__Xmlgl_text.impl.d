lib/lang/xmlgl_text.ml: Float Gql_data Gql_xmlgl Hashtbl Lex List Printf String
