lib/lang/pp.ml: Array Buffer Gql_data Gql_wglog Gql_xmlgl Label_re List Option Printf String
