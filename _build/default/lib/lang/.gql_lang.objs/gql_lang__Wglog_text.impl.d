lib/lang/wglog_text.ml: Float Gql_data Gql_wglog Hashtbl Label_re Lex List Printf String
