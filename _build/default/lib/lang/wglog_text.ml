(** Textual concrete syntax for WG-Log.

    Line-based, like the XML-GL front-end.  Roles follow the paper's
    colouring: plain declarations are red (query); [cnode]/[cedge]/
    [collect] are green (construction).

    {v
    wglog
    rule
      node r Restaurant          # red entity box
      node x any                 # untyped box
      value v where > 100        # red value rectangle with condition
      value w where /[hH]olland/
      const k "fixed"            # constant value node
      cnode L rest-list          # green (derived) entity
      cvalue M "new"             # green constant value node
      edge r offers m            # red relation edge
      edge m price v             # red slot edge (target is a value node)
      negedge d index e          # crossed-out edge
      pathedge d (link|index)+ e # dashed regular path edge; '.' = any
      cedge L member r           # green edge, derived per embedding
      collect L member r         # green aggregation (triangle)
    end
    v} *)

open Lex

type pstate = { mutable toks : token list; line : int }

let expect_ident (st : pstate) what =
  match st.toks with
  | Ident s :: r ->
    st.toks <- r;
    s
  | _ -> err st.line "expected %s" what

let eat_ident (st : pstate) kw =
  match st.toks with
  | Ident s :: r when s = kw ->
    st.toks <- r;
    true
  | _ -> false

let parse_conditions (st : pstate) : Gql_wglog.Ast.condition list =
  if not (eat_ident st "where") then begin
    if st.toks <> [] then err st.line "unexpected tokens";
    []
  end
  else begin
    let conds = ref [] in
    let value_of = function
      | Str s -> Gql_data.Value.string s
      | Num f ->
        if Float.is_integer f then Gql_data.Value.int (int_of_float f)
        else Gql_data.Value.float f
      | t -> err st.line "expected a literal, got %s" (pp_token t)
    in
    let rec go () =
      (match st.toks with
      | Regex re :: r ->
        st.toks <- r;
        conds := Gql_wglog.Ast.Re re :: !conds
      | Punct '=' :: v :: r ->
        st.toks <- r;
        conds := Gql_wglog.Ast.Cmp (Gql_wglog.Ast.Eq, value_of v) :: !conds
      | Punct '!' :: Punct '=' :: v :: r ->
        st.toks <- r;
        conds := Gql_wglog.Ast.Cmp (Gql_wglog.Ast.Neq, value_of v) :: !conds
      | Punct '<' :: Punct '=' :: v :: r ->
        st.toks <- r;
        conds := Gql_wglog.Ast.Cmp (Gql_wglog.Ast.Le, value_of v) :: !conds
      | Punct '>' :: Punct '=' :: v :: r ->
        st.toks <- r;
        conds := Gql_wglog.Ast.Cmp (Gql_wglog.Ast.Ge, value_of v) :: !conds
      | Punct '<' :: v :: r ->
        st.toks <- r;
        conds := Gql_wglog.Ast.Cmp (Gql_wglog.Ast.Lt, value_of v) :: !conds
      | Punct '>' :: v :: r ->
        st.toks <- r;
        conds := Gql_wglog.Ast.Cmp (Gql_wglog.Ast.Gt, value_of v) :: !conds
      | t :: _ -> err st.line "expected a condition, got %s" (pp_token t)
      | [] -> err st.line "expected a condition");
      if eat_ident st "and" then go ()
      else if st.toks <> [] then err st.line "trailing tokens after condition"
    in
    go ();
    List.rev !conds
  end

exception Parse_error = Lex.Error

let parse_program ?schema (src : string) : Gql_wglog.Ast.program =
  let lines = tokenise src in
  let rules = ref [] in
  let b = ref (Gql_wglog.Ast.Build.create ()) in
  let ids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let in_rule = ref false in
  let id (st : pstate) name =
    match Hashtbl.find_opt ids name with
    | Some i -> i
    | None -> err st.line "unknown node %s" name
  in
  let declare (st : pstate) name i =
    if Hashtbl.mem ids name then err st.line "duplicate node %s" name;
    Hashtbl.replace ids name i
  in
  let finish_rule line =
    if not !in_rule then err line "end without rule";
    rules := Gql_wglog.Ast.Build.finish !b :: !rules;
    b := Gql_wglog.Ast.Build.create ();
    Hashtbl.reset ids;
    in_rule := false
  in
  List.iter
    (fun (line, toks) ->
      let st = { toks; line } in
      match st.toks with
      | Ident "wglog" :: _ -> ()
      | Ident "rule" :: _ ->
        if !in_rule then finish_rule line;
        in_rule := true
      | Ident "end" :: _ -> finish_rule line
      | Ident "node" :: r ->
        st.toks <- r;
        let name = expect_ident st "node name" in
        let ty = expect_ident st "entity type" in
        let kind = if ty = "any" then None else Some ty in
        declare st name
          (Gql_wglog.Ast.Build.node !b (Gql_wglog.Ast.Entity kind))
      | Ident "cnode" :: r ->
        st.toks <- r;
        let name = expect_ident st "node name" in
        let ty = expect_ident st "entity type" in
        let kind = if ty = "any" then None else Some ty in
        declare st name
          (Gql_wglog.Ast.Build.node !b ~role:Gql_wglog.Ast.Construct
             (Gql_wglog.Ast.Entity kind))
      | Ident "value" :: r ->
        st.toks <- r;
        let name = expect_ident st "node name" in
        let cond = parse_conditions st in
        declare st name
          (Gql_wglog.Ast.Build.node !b ~cond (Gql_wglog.Ast.Value None))
      | Ident "const" :: r -> (
        st.toks <- r;
        let name = expect_ident st "node name" in
        match st.toks with
        | Str s :: r' ->
          st.toks <- r';
          declare st name
            (Gql_wglog.Ast.Build.const !b (Gql_data.Value.string s))
        | Num f :: r' ->
          st.toks <- r';
          declare st name
            (Gql_wglog.Ast.Build.const !b
               (if Float.is_integer f then Gql_data.Value.int (int_of_float f)
                else Gql_data.Value.float f))
        | _ -> err line "const expects a literal")
      | Ident "cvalue" :: r -> (
        st.toks <- r;
        let name = expect_ident st "node name" in
        match st.toks with
        | Str s :: r' ->
          st.toks <- r';
          declare st name
            (Gql_wglog.Ast.Build.node !b ~role:Gql_wglog.Ast.Construct
               (Gql_wglog.Ast.Value (Some (Gql_data.Value.string s))))
        | _ -> err line "cvalue expects a string")
      | Ident "edge" :: r ->
        st.toks <- r;
        let src = id st (expect_ident st "source") in
        let label = expect_ident st "edge label" in
        let dst = id st (expect_ident st "destination") in
        Gql_wglog.Ast.Build.edge !b ~label src dst
      | Ident "negedge" :: r ->
        st.toks <- r;
        let src = id st (expect_ident st "source") in
        let label = expect_ident st "edge label" in
        let dst = id st (expect_ident st "destination") in
        Gql_wglog.Ast.Build.negated !b ~label src dst
      | Ident "pathedge" :: r -> (
        st.toks <- r;
        let src = id st (expect_ident st "source") in
        (* The path expression is everything up to the final identifier. *)
        match List.rev st.toks with
        | Ident dst_name :: rev_body ->
          let dst = id st dst_name in
          let body =
            String.concat " " (List.rev_map pp_token rev_body)
          in
          (match Label_re.parse body with
          | re -> Gql_wglog.Ast.Build.regex !b re src dst
          | exception Label_re.Error m -> err line "bad path expression: %s" m)
        | _ -> err line "pathedge expects: src <expr> dst")
      | Ident "cedge" :: r ->
        st.toks <- r;
        let src = id st (expect_ident st "source") in
        let label = expect_ident st "edge label" in
        let dst = id st (expect_ident st "destination") in
        Gql_wglog.Ast.Build.derive !b ~label src dst
      | Ident "collect" :: r ->
        st.toks <- r;
        let src = id st (expect_ident st "source") in
        let label = expect_ident st "edge label" in
        let dst = id st (expect_ident st "destination") in
        Gql_wglog.Ast.Build.collect_as !b ~label src dst
      | t :: _ -> err line "unexpected %s" (pp_token t)
      | [] -> ())
    lines;
  if !in_rule then rules := Gql_wglog.Ast.Build.finish !b :: !rules;
  { Gql_wglog.Ast.schema; rules = List.rev !rules }

let parse_program_result ?schema src =
  match parse_program ?schema src with
  | p -> Ok p
  | exception Parse_error (msg, line) ->
    Error (Printf.sprintf "line %d: %s" line msg)
