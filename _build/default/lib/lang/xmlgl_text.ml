(** Textual concrete syntax for XML-GL.

    A visual language needs a serialisation; this one is line-based — one
    declaration per line, exactly the information a diagram stores.  The
    grammar (# starts a comment):

    {v
    xmlgl
    result <name>              # optional result root, default "result"
    rule
    query
      node $b elem BOOK        # labelled box
      node $w elem *           # wildcard box
      node $r elem /B.*/       # regex-named box
      node $c content [where <pred>]   # hollow circle
      node $a attr [where <pred>]      # filled circle
      edge $b $c [ordered] [pos <n>]   # containment
      deep $b $w               # descendant at any depth
      attredge $b isbn $a      # attribute edge, labelled
      refedge $b $x            # ID/IDREF edge;  refedge $b name $x
      absent $b $w             # negation
    construct
      node r new RESULT        # plain box
      node c copy $b [deep]    # box bound to a query node ([deep] = the asterisk)
      node v value $c          # text from a query node's value
      node k const "text"      # literal text
      node t all $b            # triangle
      node g group $c          # list icon, grouped by $c's value
      root r
      edge r c [attr <name>]   # construction containment / attribute
    end
    v}

    Predicates: [self > 20], [self = "x"], [$other >= self],
    [self contains "a"], [self starts "b"], [self ~ /re/], combined with
    [and], [or], [not] and parentheses; arithmetic with parenthesised
    [(a + b)] operands. *)

open Lex

type pstate = { mutable toks : token list; line : int }

let peek st = match st.toks with [] -> None | t :: _ -> Some t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect_ident st what =
  match st.toks with
  | Ident s :: r ->
    st.toks <- r;
    s
  | _ -> err st.line "expected %s" what

let eat_ident st kw =
  match st.toks with
  | Ident s :: r when s = kw ->
    st.toks <- r;
    true
  | _ -> false

let eat_punct st c =
  match st.toks with
  | Punct c' :: r when c' = c ->
    st.toks <- r;
    true
  | _ -> false

(* --- predicates ----------------------------------------------------- *)

let parse_operand_atom st ids : Gql_xmlgl.Ast.operand =
  match st.toks with
  | Ident "self" :: r ->
    st.toks <- r;
    Gql_xmlgl.Ast.Self
  | Ident name :: r when String.length name > 0 && name.[0] = '$' ->
    st.toks <- r;
    (match Hashtbl.find_opt ids name with
    | Some id -> Gql_xmlgl.Ast.Node_value id
    | None -> err st.line "unknown node %s in predicate" name)
  | Str s :: r ->
    st.toks <- r;
    Gql_xmlgl.Ast.Const (Gql_data.Value.string s)
  | Num f :: r ->
    st.toks <- r;
    if Float.is_integer f then Gql_xmlgl.Ast.Const (Gql_data.Value.int (int_of_float f))
    else Gql_xmlgl.Ast.Const (Gql_data.Value.float f)
  | _ -> err st.line "expected an operand"

let rec parse_operand st ids : Gql_xmlgl.Ast.operand =
  if eat_punct st '(' then begin
    let a = parse_operand st ids in
    let op =
      if eat_punct st '+' then Gql_xmlgl.Ast.Add
      else if eat_punct st '-' then Gql_xmlgl.Ast.Sub
      else if eat_punct st '*' then Gql_xmlgl.Ast.Mul
      else if eat_punct st '/' then Gql_xmlgl.Ast.Div
      else err st.line "expected an arithmetic operator"
    in
    let b = parse_operand st ids in
    if not (eat_punct st ')') then err st.line "expected ')'";
    Gql_xmlgl.Ast.Arith (op, a, b)
  end
  else parse_operand_atom st ids

let parse_cmp_op st : Gql_xmlgl.Ast.cmp_op =
  match st.toks with
  | Punct '=' :: r ->
    st.toks <- r;
    Gql_xmlgl.Ast.Eq
  | Punct '!' :: Punct '=' :: r ->
    st.toks <- r;
    Gql_xmlgl.Ast.Neq
  | Punct '<' :: Punct '=' :: r ->
    st.toks <- r;
    Gql_xmlgl.Ast.Le
  | Punct '>' :: Punct '=' :: r ->
    st.toks <- r;
    Gql_xmlgl.Ast.Ge
  | Punct '<' :: r ->
    st.toks <- r;
    Gql_xmlgl.Ast.Lt
  | Punct '>' :: r ->
    st.toks <- r;
    Gql_xmlgl.Ast.Gt
  | _ -> err st.line "expected a comparison operator"

let rec parse_pred st ids : Gql_xmlgl.Ast.predicate =
  let left = parse_pred_and st ids in
  if eat_ident st "or" then Gql_xmlgl.Ast.Or (left, parse_pred st ids) else left

and parse_pred_and st ids =
  let left = parse_pred_atom st ids in
  if eat_ident st "and" then Gql_xmlgl.Ast.And (left, parse_pred_and st ids)
  else left

and parse_pred_atom st ids =
  if eat_ident st "not" then Gql_xmlgl.Ast.Not (parse_pred_atom st ids)
  else if eat_punct st '(' then begin
    (* Lookahead ambiguity: '(' may open a grouped predicate or an
       arithmetic operand.  Try predicate first by scanning for a
       comparison before the matching ')': simplest robust rule is to
       re-parse as operand on failure. *)
    let saved = st.toks in
    let attempt =
      match parse_pred st ids with
      | p -> if eat_punct st ')' then Some p else None
      | exception Error _ -> None
    in
    match attempt with
    | Some p -> p
    | None ->
      st.toks <- saved;
      (* grouped arithmetic operand comparison: ( a + b ) op c *)
      let a =
        let x = parse_operand st ids in
        let op =
          if eat_punct st '+' then Some Gql_xmlgl.Ast.Add
          else if eat_punct st '-' then Some Gql_xmlgl.Ast.Sub
          else if eat_punct st '*' then Some Gql_xmlgl.Ast.Mul
          else if eat_punct st '/' then Some Gql_xmlgl.Ast.Div
          else None
        in
        match op with
        | Some op ->
          let y = parse_operand st ids in
          Gql_xmlgl.Ast.Arith (op, x, y)
        | None -> x
      in
      if not (eat_punct st ')') then err st.line "expected ')'";
      finish_cmp st ids a
  end
  else begin
    let a = parse_operand st ids in
    finish_cmp st ids a
  end

and finish_cmp st ids a =
  if eat_ident st "contains" then
    match st.toks with
    | Str s :: r ->
      st.toks <- r;
      Gql_xmlgl.Ast.Contains_str (a, s)
    | _ -> err st.line "contains expects a string"
  else if eat_ident st "starts" then
    match st.toks with
    | Str s :: r ->
      st.toks <- r;
      Gql_xmlgl.Ast.Starts_with (a, s)
    | _ -> err st.line "starts expects a string"
  else if eat_punct st '~' then
    match st.toks with
    | Regex re :: r ->
      st.toks <- r;
      Gql_xmlgl.Ast.Matches (a, re)
    | _ -> err st.line "~ expects a /regex/"
  else begin
    let op = parse_cmp_op st in
    let b = parse_operand st ids in
    Gql_xmlgl.Ast.Compare (op, a, b)
  end

let parse_where st ids =
  if eat_ident st "where" then begin
    let p = parse_pred st ids in
    if st.toks <> [] then err st.line "trailing tokens after predicate";
    Some p
  end
  else if st.toks <> [] then err st.line "unexpected tokens"
  else None

(* --- rules ----------------------------------------------------------- *)

type section = S_none | S_query | S_construct

exception Parse_error = Lex.Error

let parse_program (src : string) : Gql_xmlgl.Ast.program =
  let lines = tokenise src in
  let rules = ref [] in
  let result_root = ref "result" in
  let b = ref (Gql_xmlgl.Ast.Build.create ()) in
  let qids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let cids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let section = ref S_none in
  let in_rule = ref false in
  let qid st name =
    match Hashtbl.find_opt qids name with
    | Some id -> id
    | None -> err st.line "unknown query node %s" name
  in
  let cid st name =
    match Hashtbl.find_opt cids name with
    | Some id -> id
    | None -> err st.line "unknown construction node %s" name
  in
  let cord = Hashtbl.create 8 in
  let next_ord parent =
    let v = match Hashtbl.find_opt cord parent with Some v -> v | None -> 0 in
    Hashtbl.replace cord parent (v + 1);
    v
  in
  let finish_rule line =
    if not !in_rule then err line "end without rule";
    rules := Gql_xmlgl.Ast.Build.finish !b :: !rules;
    b := Gql_xmlgl.Ast.Build.create ();
    Hashtbl.reset qids;
    Hashtbl.reset cids;
    Hashtbl.reset cord;
    section := S_none;
    in_rule := false
  in
  List.iter
    (fun (line, toks) ->
      let st = { toks; line } in
      match peek st with
      | Some (Ident "xmlgl") -> ()
      | Some (Ident "result") ->
        advance st;
        result_root := expect_ident st "result root name"
      | Some (Ident "rule") ->
        if !in_rule then finish_rule line;
        in_rule := true;
        section := S_none
      | Some (Ident "end") -> finish_rule line
      | Some (Ident "query") -> section := S_query
      | Some (Ident "construct") -> section := S_construct
      | Some (Ident "node") -> (
        advance st;
        let name = expect_ident st "node name" in
        match !section with
        | S_query -> (
          if Hashtbl.mem qids name then err line "duplicate node %s" name;
          match expect_ident st "node kind" with
          | "elem" -> (
            match st.toks with
            | Ident "*" :: r ->
              st.toks <- r;
              let pred = parse_where st qids in
              Hashtbl.replace qids name
                (Gql_xmlgl.Ast.Build.qnode !b ?pred
                   (Gql_xmlgl.Ast.Q_elem Gql_xmlgl.Ast.Any_name))
            | Regex re :: r ->
              st.toks <- r;
              let pred = parse_where st qids in
              Hashtbl.replace qids name
                (Gql_xmlgl.Ast.Build.qnode !b ?pred
                   (Gql_xmlgl.Ast.Q_elem (Gql_xmlgl.Ast.Name_re re)))
            | Ident ename :: r ->
              st.toks <- r;
              let pred = parse_where st qids in
              Hashtbl.replace qids name
                (Gql_xmlgl.Ast.Build.qnode !b ?pred
                   (Gql_xmlgl.Ast.Q_elem (Gql_xmlgl.Ast.Exact ename)))
            | _ -> err line "elem expects a name, * or /regex/")
          | "content" ->
            let pred = parse_where st qids in
            Hashtbl.replace qids name
              (Gql_xmlgl.Ast.Build.q_content !b ?pred ())
          | "attr" ->
            let pred = parse_where st qids in
            Hashtbl.replace qids name
              (Gql_xmlgl.Ast.Build.q_attr_node !b ?pred ())
          | k -> err line "unknown query node kind %s" k)
        | S_construct -> (
          if Hashtbl.mem cids name then err line "duplicate node %s" name;
          match expect_ident st "node kind" with
          | "new" ->
            let ename = expect_ident st "element name" in
            let per =
              if eat_ident st "per" then
                Some (qid st (expect_ident st "query node"))
              else None
            in
            Hashtbl.replace cids name
              (Gql_xmlgl.Ast.Build.c_elem !b ?per ename)
          | "copy" ->
            let q = qid st (expect_ident st "query node") in
            let deep = eat_ident st "deep" in
            Hashtbl.replace cids name (Gql_xmlgl.Ast.Build.c_copy !b ~deep q)
          | "value" ->
            let q = qid st (expect_ident st "query node") in
            Hashtbl.replace cids name (Gql_xmlgl.Ast.Build.c_value !b q)
          | "const" -> (
            match st.toks with
            | Str s :: r ->
              st.toks <- r;
              Hashtbl.replace cids name
                (Gql_xmlgl.Ast.Build.c_const !b (Gql_data.Value.string s))
            | Num f :: r ->
              st.toks <- r;
              Hashtbl.replace cids name
                (Gql_xmlgl.Ast.Build.c_const !b
                   (if Float.is_integer f then Gql_data.Value.int (int_of_float f)
                    else Gql_data.Value.float f))
            | _ -> err line "const expects a literal")
          | "all" ->
            let q = qid st (expect_ident st "query node") in
            Hashtbl.replace cids name (Gql_xmlgl.Ast.Build.c_all !b q)
          | "group" ->
            let q = qid st (expect_ident st "query node") in
            Hashtbl.replace cids name (Gql_xmlgl.Ast.Build.c_group !b ~by:q)
          | "unnest" ->
            let q = qid st (expect_ident st "query node") in
            Hashtbl.replace cids name (Gql_xmlgl.Ast.Build.c_unnest !b q)
          | ("count" | "sum" | "min" | "max" | "avg") as fn ->
            let q = qid st (expect_ident st "query node") in
            let fn =
              match fn with
              | "count" -> Gql_xmlgl.Ast.Count
              | "sum" -> Gql_xmlgl.Ast.Sum
              | "min" -> Gql_xmlgl.Ast.Min
              | "max" -> Gql_xmlgl.Ast.Max
              | _ -> Gql_xmlgl.Ast.Avg
            in
            Hashtbl.replace cids name (Gql_xmlgl.Ast.Build.c_aggregate !b fn q)
          | k -> err line "unknown construction node kind %s" k)
        | S_none -> err line "node outside query/construct section")
      | Some (Ident "edge") -> (
        advance st;
        match !section with
        | S_query ->
          let src = qid st (expect_ident st "source") in
          let dst = qid st (expect_ident st "destination") in
          let ordered = eat_ident st "ordered" in
          let position =
            if eat_ident st "pos" then
              match st.toks with
              | Num f :: r ->
                st.toks <- r;
                Some (int_of_float f)
              | _ -> err line "pos expects a number"
            else None
          in
          Gql_xmlgl.Ast.Build.qedge !b ~ordered ?position src dst
        | S_construct ->
          let parent = cid st (expect_ident st "parent") in
          let child = cid st (expect_ident st "child") in
          let as_attr =
            if eat_ident st "attr" then Some (expect_ident st "attribute name")
            else None
          in
          Gql_xmlgl.Ast.Build.cedge !b ?as_attr ~ord:(next_ord parent) parent child
        | S_none -> err line "edge outside query/construct section")
      | Some (Ident "deep") ->
        advance st;
        let src = qid st (expect_ident st "source") in
        let dst = qid st (expect_ident st "destination") in
        Gql_xmlgl.Ast.Build.qdeep !b src dst
      | Some (Ident "attredge") ->
        advance st;
        let src = qid st (expect_ident st "source") in
        let attr = expect_ident st "attribute name" in
        let dst = qid st (expect_ident st "destination") in
        Gql_xmlgl.Ast.Build.qattr !b src attr dst
      | Some (Ident "refedge") -> (
        advance st;
        let src = qid st (expect_ident st "source") in
        (* optional label before destination *)
        match st.toks with
        | Ident a :: Ident b' :: r when Hashtbl.mem qids b' ->
          st.toks <- r;
          ignore a;
          Gql_xmlgl.Ast.Build.qref !b ~name:a src (Hashtbl.find qids b')
        | Ident a :: r when Hashtbl.mem qids a ->
          st.toks <- r;
          Gql_xmlgl.Ast.Build.qref !b src (Hashtbl.find qids a)
        | _ -> err line "refedge expects [label] destination")
      | Some (Ident "absent") ->
        advance st;
        let src = qid st (expect_ident st "source") in
        let dst = qid st (expect_ident st "destination") in
        Gql_xmlgl.Ast.Build.qabsent !b src dst
      | Some (Ident "root") ->
        advance st;
        Gql_xmlgl.Ast.Build.root !b (cid st (expect_ident st "root node"))
      | Some t -> err line "unexpected %s" (pp_token t)
      | None -> ())
    lines;
  if !in_rule then
    rules := Gql_xmlgl.Ast.Build.finish !b :: !rules;
  { Gql_xmlgl.Ast.rules = List.rev !rules; result_root = !result_root }

let parse_program_result src =
  match parse_program src with
  | p -> Ok p
  | exception Parse_error (msg, line) ->
    Error (Printf.sprintf "line %d: %s" line msg)
