(** Pretty-printers from ASTs back to the textual concrete syntax.

    [parse (print x) = x] up to node renaming is property-tested; the
    printers are also what "export as text" would do in an editor. *)

let value_literal (v : Gql_data.Value.t) =
  match v with
  | Gql_data.Value.Int i -> string_of_int i
  | Gql_data.Value.Float f -> string_of_float f
  | Gql_data.Value.String s -> Printf.sprintf "%S" s
  | Gql_data.Value.Bool b -> Printf.sprintf "%S" (string_of_bool b)

(* --- XML-GL ---------------------------------------------------------- *)

let xmlgl_operand qname (op : Gql_xmlgl.Ast.operand) =
  let rec go = function
    | Gql_xmlgl.Ast.Const v -> value_literal v
    | Gql_xmlgl.Ast.Self -> "self"
    | Gql_xmlgl.Ast.Node_value n -> qname n
    | Gql_xmlgl.Ast.Arith (op, a, b) ->
      let o =
        match op with
        | Gql_xmlgl.Ast.Add -> "+"
        | Gql_xmlgl.Ast.Sub -> "-"
        | Gql_xmlgl.Ast.Mul -> "*"
        | Gql_xmlgl.Ast.Div -> "/"
      in
      Printf.sprintf "(%s %s %s)" (go a) o (go b)
  in
  go op

let xmlgl_pred qname (p : Gql_xmlgl.Ast.predicate) =
  let cmp = function
    | Gql_xmlgl.Ast.Eq -> "="
    | Gql_xmlgl.Ast.Neq -> "!="
    | Gql_xmlgl.Ast.Lt -> "<"
    | Gql_xmlgl.Ast.Le -> "<="
    | Gql_xmlgl.Ast.Gt -> ">"
    | Gql_xmlgl.Ast.Ge -> ">="
  in
  let rec go = function
    | Gql_xmlgl.Ast.Compare (op, a, b) ->
      Printf.sprintf "%s %s %s" (xmlgl_operand qname a) (cmp op)
        (xmlgl_operand qname b)
    | Gql_xmlgl.Ast.Contains_str (a, s) ->
      Printf.sprintf "%s contains %S" (xmlgl_operand qname a) s
    | Gql_xmlgl.Ast.Starts_with (a, s) ->
      Printf.sprintf "%s starts %S" (xmlgl_operand qname a) s
    | Gql_xmlgl.Ast.Matches (a, re) ->
      Printf.sprintf "%s ~ /%s/" (xmlgl_operand qname a) re
    | Gql_xmlgl.Ast.And (a, b) -> Printf.sprintf "(%s) and (%s)" (go a) (go b)
    | Gql_xmlgl.Ast.Or (a, b) -> Printf.sprintf "(%s) or (%s)" (go a) (go b)
    | Gql_xmlgl.Ast.Not a -> Printf.sprintf "not (%s)" (go a)
  in
  go p

let xmlgl_rule buf (r : Gql_xmlgl.Ast.rule) =
  let qname i = Printf.sprintf "$q%d" i in
  let cname i = Printf.sprintf "c%d" i in
  Buffer.add_string buf "rule\nquery\n";
  Array.iteri
    (fun i (n : Gql_xmlgl.Ast.qnode) ->
      let kind =
        match n.q_kind with
        | Gql_xmlgl.Ast.Q_elem (Gql_xmlgl.Ast.Exact s) -> "elem " ^ s
        | Gql_xmlgl.Ast.Q_elem Gql_xmlgl.Ast.Any_name -> "elem *"
        | Gql_xmlgl.Ast.Q_elem (Gql_xmlgl.Ast.Name_re re) ->
          Printf.sprintf "elem /%s/" re
        | Gql_xmlgl.Ast.Q_content -> "content"
        | Gql_xmlgl.Ast.Q_attr -> "attr"
      in
      let where =
        match n.q_pred with
        | Some p -> " where " ^ xmlgl_pred qname p
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  node %s %s%s\n" (qname i) kind where))
    r.query.q_nodes;
  List.iter
    (fun (e : Gql_xmlgl.Ast.qedge) ->
      let s = qname e.q_src and d = qname e.q_dst in
      match e.q_kind_e with
      | Gql_xmlgl.Ast.Contains { ordered; position } ->
        Buffer.add_string buf
          (Printf.sprintf "  edge %s %s%s%s\n" s d
             (if ordered then " ordered" else "")
             (match position with
             | Some p -> Printf.sprintf " pos %d" p
             | None -> ""))
      | Gql_xmlgl.Ast.Deep -> Buffer.add_string buf (Printf.sprintf "  deep %s %s\n" s d)
      | Gql_xmlgl.Ast.Attr_of a ->
        Buffer.add_string buf (Printf.sprintf "  attredge %s %s %s\n" s a d)
      | Gql_xmlgl.Ast.Ref_to (Some a) ->
        Buffer.add_string buf (Printf.sprintf "  refedge %s %s %s\n" s a d)
      | Gql_xmlgl.Ast.Ref_to None ->
        Buffer.add_string buf (Printf.sprintf "  refedge %s %s\n" s d)
      | Gql_xmlgl.Ast.Absent ->
        Buffer.add_string buf (Printf.sprintf "  absent %s %s\n" s d))
    r.query.q_edges;
  Buffer.add_string buf "construct\n";
  Array.iteri
    (fun i (n : Gql_xmlgl.Ast.cnode) ->
      let kind =
        match n.c_kind with
        | Gql_xmlgl.Ast.C_elem { name; per = None } -> "new " ^ name
        | Gql_xmlgl.Ast.C_elem { name; per = Some q } ->
          Printf.sprintf "new %s per %s" name (qname q)
        | Gql_xmlgl.Ast.C_copy_of { source; deep } ->
          Printf.sprintf "copy %s%s" (qname source) (if deep then " deep" else "")
        | Gql_xmlgl.Ast.C_value_of s -> "value " ^ qname s
        | Gql_xmlgl.Ast.C_const v -> "const " ^ value_literal v
        | Gql_xmlgl.Ast.C_all s -> "all " ^ qname s
        | Gql_xmlgl.Ast.C_group { by } -> "group " ^ qname by
        | Gql_xmlgl.Ast.C_unnest s -> "unnest " ^ qname s
        | Gql_xmlgl.Ast.C_aggregate { fn; source } ->
          let f =
            match fn with
            | Gql_xmlgl.Ast.Count -> "count"
            | Gql_xmlgl.Ast.Sum -> "sum"
            | Gql_xmlgl.Ast.Min -> "min"
            | Gql_xmlgl.Ast.Max -> "max"
            | Gql_xmlgl.Ast.Avg -> "avg"
          in
          f ^ " " ^ qname source
      in
      Buffer.add_string buf (Printf.sprintf "  node %s %s\n" (cname i) kind))
    r.construction.c_nodes;
  List.iter
    (fun root -> Buffer.add_string buf (Printf.sprintf "  root %s\n" (cname root)))
    r.construction.c_roots;
  List.iter
    (fun (e : Gql_xmlgl.Ast.cedge) ->
      Buffer.add_string buf
        (Printf.sprintf "  edge %s %s%s\n" (cname e.c_parent) (cname e.c_child)
           (match e.c_as_attr with
           | Some a -> " attr " ^ a
           | None -> "")))
    (List.sort (fun (a : Gql_xmlgl.Ast.cedge) b -> compare a.c_ord b.c_ord)
       r.construction.c_edges);
  Buffer.add_string buf "end\n"

let xmlgl_program (p : Gql_xmlgl.Ast.program) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "xmlgl\n";
  Buffer.add_string buf (Printf.sprintf "result %s\n" p.result_root);
  List.iter (xmlgl_rule buf) p.rules;
  Buffer.contents buf

(* --- WG-Log ---------------------------------------------------------- *)

let wglog_rule buf (r : Gql_wglog.Ast.rule) =
  let name i = Printf.sprintf "n%d" i in
  Buffer.add_string buf "rule\n";
  Array.iteri
    (fun i (n : Gql_wglog.Ast.node) ->
      let conds =
        match n.n_cond with
        | [] -> ""
        | cs ->
          " where "
          ^ String.concat " and "
              (List.map
                 (function
                   | Gql_wglog.Ast.Cmp (op, v) ->
                     let o =
                       match op with
                       | Gql_wglog.Ast.Eq -> "="
                       | Gql_wglog.Ast.Neq -> "!="
                       | Gql_wglog.Ast.Lt -> "<"
                       | Gql_wglog.Ast.Le -> "<="
                       | Gql_wglog.Ast.Gt -> ">"
                       | Gql_wglog.Ast.Ge -> ">="
                     in
                     o ^ " " ^ value_literal v
                   | Gql_wglog.Ast.Re re -> "/" ^ re ^ "/")
                 cs)
      in
      match n.n_kind, n.n_role with
      | Gql_wglog.Ast.Entity t, Gql_wglog.Ast.Query ->
        Buffer.add_string buf
          (Printf.sprintf "  node %s %s\n" (name i) (Option.value t ~default:"any"))
      | Gql_wglog.Ast.Entity t, Gql_wglog.Ast.Construct ->
        Buffer.add_string buf
          (Printf.sprintf "  cnode %s %s\n" (name i) (Option.value t ~default:"any"))
      | Gql_wglog.Ast.Value (Some v), Gql_wglog.Ast.Query ->
        Buffer.add_string buf
          (Printf.sprintf "  const %s %s\n" (name i) (value_literal v))
      | Gql_wglog.Ast.Value (Some v), Gql_wglog.Ast.Construct ->
        Buffer.add_string buf
          (Printf.sprintf "  cvalue %s %s\n" (name i) (value_literal v))
      | Gql_wglog.Ast.Value None, _ ->
        Buffer.add_string buf (Printf.sprintf "  value %s%s\n" (name i) conds))
    r.nodes;
  List.iter
    (fun (e : Gql_wglog.Ast.edge) ->
      let s = name e.e_src and d = name e.e_dst in
      match e.e_mode, e.e_role with
      | Gql_wglog.Ast.Plain, Gql_wglog.Ast.Query ->
        Buffer.add_string buf (Printf.sprintf "  edge %s %s %s\n" s e.e_label d)
      | Gql_wglog.Ast.Plain, Gql_wglog.Ast.Construct ->
        Buffer.add_string buf (Printf.sprintf "  cedge %s %s %s\n" s e.e_label d)
      | Gql_wglog.Ast.Negated, _ ->
        Buffer.add_string buf (Printf.sprintf "  negedge %s %s %s\n" s e.e_label d)
      | Gql_wglog.Ast.Regex re, _ ->
        Buffer.add_string buf
          (Printf.sprintf "  pathedge %s %s %s\n" s (Label_re.to_string re) d)
      | Gql_wglog.Ast.Collect, _ ->
        Buffer.add_string buf (Printf.sprintf "  collect %s %s %s\n" s e.e_label d))
    r.edges;
  Buffer.add_string buf "end\n"

let wglog_program (p : Gql_wglog.Ast.program) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "wglog\n";
  List.iter (wglog_rule buf) p.rules;
  Buffer.contents buf
