(** Token-level utilities shared by the two textual front-ends.

    The concrete syntax of both languages is deliberately line-based: a
    program is a sequence of declarations, one per line, mirroring how a
    visual editor would serialise a diagram (one line per node or edge).
    Comments run from [#] to end of line. *)

type token =
  | Ident of string
  | Str of string  (** "quoted" *)
  | Num of float
  | Regex of string  (** /slashed/ *)
  | Punct of char

exception Error of string * int  (** message, line number *)

let err line fmt = Printf.ksprintf (fun s -> raise (Error (s, line))) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = ':' || c = '$' || c = '*'

let is_digit c = (c >= '0' && c <= '9') || c = '.'

(** Tokenise one line. *)
let tokens_of_line ~line (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = '#' then i := n
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while !i < n && not !closed do
        if s.[!i] = '"' then closed := true
        else if s.[!i] = '\\' && !i + 1 < n then begin
          (match s.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | c -> Buffer.add_char buf c);
          incr i
        end
        else Buffer.add_char buf s.[!i];
        incr i
      done;
      if not !closed then err line "unterminated string";
      toks := Str (Buffer.contents buf) :: !toks
    end
    else if c = '/' then begin
      (* regex literal /.../ ; a lone '/' is punctuation *)
      let j = ref (!i + 1) in
      let found = ref false in
      while !j < n && not !found do
        if s.[!j] = '/' && s.[!j - 1] <> '\\' then found := true else incr j
      done;
      if !found then begin
        toks := Regex (String.sub s (!i + 1) (!j - !i - 1)) :: !toks;
        i := !j + 1
      end
      else begin
        toks := Punct '/' :: !toks;
        incr i
      end
    end
    else if is_digit c && c <> '.' then begin
      let start = !i in
      while !i < n && is_digit s.[!i] do
        incr i
      done;
      let text = String.sub s start (!i - start) in
      match float_of_string_opt text with
      | Some f -> toks := Num f :: !toks
      | None -> err line "bad number %S" text
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      toks := Ident (String.sub s start (!i - start)) :: !toks
    end
    else begin
      toks := Punct c :: !toks;
      incr i
    end
  done;
  List.rev !toks

(** Split source into (line number, tokens) for non-empty lines. *)
let tokenise (src : string) : (int * token list) list =
  String.split_on_char '\n' src
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter_map (fun (ln, l) ->
         match tokens_of_line ~line:ln l with
         | [] -> None
         | toks -> Some (ln, toks))

let pp_token = function
  | Ident s -> s
  | Str s -> Printf.sprintf "%S" s
  | Num f ->
    if Float.is_integer f then string_of_int (int_of_float f)
    else string_of_float f
  | Regex r -> "/" ^ r ^ "/"
  | Punct c -> String.make 1 c
