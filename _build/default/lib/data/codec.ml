(** Encoding XML documents as data graphs and decoding construction
    results back to XML.

    Encoding follows the paper's reading of XML: containment becomes
    ordered [Child] edges, attributes become [Attribute] edges to atoms,
    and ID/IDREF pairs are *resolved* into [Ref] edges, revealing the
    graph structure hiding in the tree.  Decoding (used to materialise
    query results) inverts this, re-introducing [id]/[idref] attributes
    only where a [Ref] edge would otherwise be lost and breaking cycles
    by reference rather than by infinite unfolding. *)

(** [encode ?dtd ?resolve_refs doc] loads a document.  When [dtd] is
    given, its ID/IDREF attribute declarations drive reference
    resolution; otherwise the [id]/[idref]/[ref] naming convention
    applies.  Returns the graph and the mapping from document paths to
    graph nodes. *)
let encode ?dtd ?(resolve_refs = true) (doc : Gql_xml.Tree.doc) :
    Graph.t * (Gql_xml.Tree.path * Graph.node) list =
  let open Gql_xml in
  let t = Graph.create () in
  let path_map = ref [] in
  let is_id, is_idref =
    match dtd with
    | Some d ->
      ( (fun ~element ~attr -> Gql_dtd.Ast.is_id_attr d ~element ~attr),
        fun ~element ~attr -> Gql_dtd.Ast.is_idref_attr d ~element ~attr )
    | None -> (Ids.default_is_id, Ids.default_is_idref)
  in
  let rec encode_element rev_path (e : Tree.element) : Graph.node =
    let node = Graph.add_complex t e.name in
    path_map := (List.rev rev_path, node) :: !path_map;
    List.iter
      (fun (aname, avalue) ->
        (* IDREF attributes become Ref edges in a second pass; every
           attribute is still materialised so queries over attributes work
           uniformly. *)
        let atom = Graph.add_atom t (Value.of_string avalue) in
        Graph.link t ~src:node ~dst:atom (Graph.attr_edge aname))
      e.attrs;
    List.iteri
      (fun i child ->
        match child with
        | Tree.Element ce ->
          let cnode = encode_element (i :: rev_path) ce in
          Graph.link t ~src:node ~dst:cnode (Graph.child_edge ~ord:i "")
        | Tree.Text s ->
          if String.trim s <> "" then begin
            let atom = Graph.add_atom t (Value.of_string s) in
            Graph.link t ~src:node ~dst:atom (Graph.child_edge ~ord:i "")
          end
        | Tree.Comment _ | Tree.Pi _ -> ())
      e.children;
    node
  in
  let root = encode_element [] doc.root in
  Graph.add_root t root;
  (* Second pass: resolve ID/IDREF into Ref edges. *)
  if resolve_refs then begin
    let ids = Ids.build ~is_id ~is_idref doc.root in
    let node_of_path p = List.assoc_opt p !path_map in
    List.iter
      (fun (src_path, attr, target) ->
        match Ids.resolve ids target, node_of_path src_path with
        | Some target_path, Some src_node -> (
          match node_of_path target_path with
          | Some dst_node ->
            Graph.link t ~src:src_node ~dst:dst_node (Graph.ref_edge attr)
          | None -> ())
        | (Some _ | None), _ -> ())
      ids.Ids.refs
  end;
  (t, List.rev !path_map)

let encode_string ?dtd ?resolve_refs src =
  let doc = Gql_xml.Parser.parse_document src in
  let dtd =
    match dtd with
    | Some _ -> dtd
    | None -> Gql_dtd.Parse.of_doc doc
  in
  fst (encode ?dtd ?resolve_refs doc)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

(** Turn a subgraph rooted at [n] back into an XML element.

    [Ref] edges are rendered as [idref] attributes pointing at generated
    [id]s; nodes reachable through more than one [Child] path (shared
    subtrees, legal in construction results) are unfolded the first time
    and referenced after, so the output is always a finite tree. *)
let decode (t : Graph.t) (n : Graph.node) : Gql_xml.Tree.element =
  let open Gql_xml.Tree in
  let seen = Hashtbl.create 32 in
  let needs_id = Hashtbl.create 8 in
  (* First pass: which targets of Ref edges need an id attribute? *)
  let assign_id =
    let counter = ref 0 in
    fun node ->
      match Hashtbl.find_opt needs_id node with
      | Some id -> id
      | None ->
        incr counter;
        let id = Printf.sprintf "n%d" !counter in
        Hashtbl.replace needs_id node id;
        id
  in
  let rec go node : element =
    Hashtbl.replace seen node ();
    let name =
      match Graph.kind t node with
      | Graph.Complex l -> l
      | Graph.Atom _ -> "value"
    in
    let attrs =
      List.map (fun (a, v) -> (a, Value.to_string v)) (Graph.attributes t node)
    in
    let ref_attrs =
      List.map
        (fun (rname, target) ->
          let rname = if rname = "" then "idref" else rname in
          (rname, assign_id target))
        (Graph.refs t node)
    in
    let children =
      List.filter_map
        (fun (c, _) ->
          match Graph.kind t c with
          | Graph.Atom v -> Some (Text (Value.to_string v))
          | Graph.Complex _ ->
            if Hashtbl.mem seen c then
              (* Already unfolded elsewhere: reference instead of copy. *)
              Some
                (Element
                   { name = "ref";
                     attrs = [ ("idref", assign_id c) ];
                     children = [] })
            else Some (Element (go c)))
        (Graph.children t node)
    in
    { name; attrs = attrs @ ref_attrs; children }
  in
  let tree = go n in
  (* Second pass: decorate targets with their ids.  Targets are inside
     the decoded subtree iff they were reached by [go]. *)
  if Hashtbl.length needs_id = 0 then tree
  else begin
    (* Re-run the decode, now knowing the ids.  Simpler than mutation on
       an immutable tree and still linear. *)
    Hashtbl.reset seen;
    let rec go2 node : element =
      Hashtbl.replace seen node ();
      let name =
        match Graph.kind t node with
        | Graph.Complex l -> l
        | Graph.Atom _ -> "value"
      in
      let id_attr =
        match Hashtbl.find_opt needs_id node with
        | Some id -> [ ("id", id) ]
        | None -> []
      in
      let attrs =
        List.map (fun (a, v) -> (a, Value.to_string v)) (Graph.attributes t node)
      in
      let ref_attrs =
        List.map
          (fun (rname, target) ->
            let rname = if rname = "" then "idref" else rname in
            (rname, assign_id target))
          (Graph.refs t node)
      in
      let children =
        List.filter_map
          (fun (c, _) ->
            match Graph.kind t c with
            | Graph.Atom v -> Some (Text (Value.to_string v))
            | Graph.Complex _ ->
              if Hashtbl.mem seen c then
                Some
                  (Element
                     { name = "ref";
                       attrs = [ ("idref", assign_id c) ];
                       children = [] })
              else Some (Element (go2 c)))
          (Graph.children t node)
      in
      { name; attrs = id_attr @ attrs @ ref_attrs; children }
    in
    go2 n
  end

let decode_roots (t : Graph.t) ~(wrapper : string) : Gql_xml.Tree.element =
  {
    Gql_xml.Tree.name = wrapper;
    attrs = [];
    children =
      List.map (fun r -> Gql_xml.Tree.Element (decode t r)) (Graph.roots t);
  }
