lib/data/graph.ml: Gql_graph List Printf String Value
