lib/data/codec.ml: Gql_dtd Gql_xml Graph Hashtbl Ids List Printf String Tree Value
