lib/data/value.ml: Float Printf String
