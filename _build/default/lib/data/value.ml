(** Atomic values at the leaves of semi-structured data.

    XML is untyped text, but every query language in the paper compares
    contents numerically ("items that cost more than 0,79", "older than
    60").  Values therefore carry a dynamic type inferred at load time;
    comparisons are numeric when both sides are numeric, lexicographic
    otherwise — the standard semi-structured convention. *)

type t =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool

let of_string s =
  (* Inference is deliberately conservative: only the full trimmed token
     converts; "12 monkeys" stays a string. *)
  let t = String.trim s in
  if t = "" then String s
  else
    match int_of_string_opt t with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt t with
      | Some f -> Float f
      | None -> (
        match String.lowercase_ascii t with
        | "true" -> Bool true
        | "false" -> Bool false
        | _ -> String s))

let string v = String v
let int v = Int v
let float v = Float v
let bool v = Bool v

let to_string = function
  | String s -> s
  | Int i -> string_of_int i
  | Float f ->
    (* Print integral floats without the trailing dot ambiguity. *)
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else string_of_float f
  | Bool b -> string_of_bool b

let type_name = function
  | String _ -> "string"
  | Int _ -> "int"
  | Float _ -> "float"
  | Bool _ -> "bool"

let as_number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | String s -> float_of_string_opt (String.trim s)
  | Bool _ -> None

(** Three-way comparison: numeric when both coerce, else string compare. *)
let compare_values a b =
  match as_number a, as_number b with
  | Some x, Some y -> Float.compare x y
  | (Some _ | None), _ -> String.compare (to_string a) (to_string b)

let equal_values a b = compare_values a b = 0

(** Arithmetic lifts ints when both are ints, floats otherwise; [None]
    on non-numbers (queries treat that as a failed predicate, never an
    error — semi-structured data is allowed to be ragged). *)
let arith op a b =
  match a, b with
  | Int x, Int y -> (
    match op with
    | `Add -> Some (Int (x + y))
    | `Sub -> Some (Int (x - y))
    | `Mul -> Some (Int (x * y))
    | `Div -> if y = 0 then None else Some (Int (x / y)))
  | _ -> (
    match as_number a, as_number b with
    | Some x, Some y -> (
      match op with
      | `Add -> Some (Float (x +. y))
      | `Sub -> Some (Float (x -. y))
      | `Mul -> Some (Float (x *. y))
      | `Div -> if y = 0.0 then None else Some (Float (x /. y)))
    | (Some _ | None), _ -> None)
