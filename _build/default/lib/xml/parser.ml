(** Hand-written XML parser.

    Covers the XML 1.0 subset a semi-structured query system needs:
    prolog and XML declaration, DOCTYPE (with the raw internal subset
    captured for [Gql_dtd]), elements, attributes, character data, the
    five predefined entities plus decimal/hex character references,
    CDATA sections, comments and processing instructions.  Namespaces are
    treated lexically (colons are legal name characters), matching the
    paper's languages, which predate namespace-aware querying.

    Errors carry 1-based line/column positions. *)

type position = { line : int; col : int }

exception Error of string * position

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
}

let current_position st = { line = st.line; col = st.pos - st.bol + 1 }
let error st msg = raise (Error (msg, current_position st))

let make src = { src; pos = 0; line = 1; bol = 0 }
let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  (if not (eof st) then
     let c = st.src.[st.pos] in
     st.pos <- st.pos + 1;
     if c = '\n' then begin
       st.line <- st.line + 1;
       st.bol <- st.pos
     end)

let advance_n st n =
  for _ = 1 to n do
    advance st
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then advance_n st (String.length s)
  else error st (Printf.sprintf "expected %S" s)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let require_space st =
  if not (is_space (peek st)) then error st "expected whitespace";
  skip_space st

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then error st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Entity and character references, shared by attribute values and
   character data. *)
let parse_reference st =
  expect st "&";
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' in
    if hex then advance st;
    let start = st.pos in
    let digit c =
      (c >= '0' && c <= '9')
      || (hex && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')))
    in
    while digit (peek st) do
      advance st
    done;
    if st.pos = start then error st "empty character reference";
    let digits = String.sub st.src start (st.pos - start) in
    expect st ";";
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> error st "invalid character reference"
    in
    if code < 0 || code > 0x10FFFF then error st "character reference out of range";
    (* Encode as UTF-8. *)
    let b = Buffer.create 4 in
    let add = Buffer.add_char b in
    if code < 0x80 then add (Char.chr code)
    else if code < 0x800 then begin
      add (Char.chr (0xC0 lor (code lsr 6)));
      add (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      add (Char.chr (0xE0 lor (code lsr 12)));
      add (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      add (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      add (Char.chr (0xF0 lor (code lsr 18)));
      add (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      add (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      add (Char.chr (0x80 lor (code land 0x3F)))
    end;
    Buffer.contents b
  end
  else begin
    let name = parse_name st in
    expect st ";";
    match name with
    | "amp" -> "&"
    | "lt" -> "<"
    | "gt" -> ">"
    | "quot" -> "\""
    | "apos" -> "'"
    | other -> error st (Printf.sprintf "unknown entity &%s;" other)
  end

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then error st "expected quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then error st "unterminated attribute value"
    else
      let c = peek st in
      if c = quote then advance st
      else if c = '&' then begin
        Buffer.add_string buf (parse_reference st);
        go ()
      end
      else if c = '<' then error st "'<' in attribute value"
      else begin
        advance st;
        Buffer.add_char buf c;
        go ()
      end
  in
  go ();
  Buffer.contents buf

let parse_comment st =
  expect st "<!--";
  let start = st.pos in
  let rec go () =
    if eof st then error st "unterminated comment"
    else if looking_at st "-->" then begin
      let s = String.sub st.src start (st.pos - start) in
      advance_n st 3;
      s
    end
    else begin
      advance st;
      go ()
    end
  in
  go ()

let parse_pi st =
  expect st "<?";
  let target = parse_name st in
  skip_space st;
  let start = st.pos in
  let rec go () =
    if eof st then error st "unterminated processing instruction"
    else if looking_at st "?>" then begin
      let s = String.sub st.src start (st.pos - start) in
      advance_n st 2;
      s
    end
    else begin
      advance st;
      go ()
    end
  in
  (target, go ())

let parse_cdata st =
  expect st "<![CDATA[";
  let start = st.pos in
  let rec go () =
    if eof st then error st "unterminated CDATA section"
    else if looking_at st "]]>" then begin
      let s = String.sub st.src start (st.pos - start) in
      advance_n st 3;
      s
    end
    else begin
      advance st;
      go ()
    end
  in
  go ()

let parse_attrs st =
  let rec go acc =
    skip_space st;
    if is_name_start (peek st) then begin
      let name = parse_name st in
      skip_space st;
      expect st "=";
      skip_space st;
      let value = parse_attr_value st in
      if List.mem_assoc name acc then
        error st (Printf.sprintf "duplicate attribute %S" name);
      go ((name, value) :: acc)
    end
    else List.rev acc
  in
  go []

let rec parse_element st : Tree.element =
  expect st "<";
  let name = parse_name st in
  let attrs = parse_attrs st in
  skip_space st;
  if looking_at st "/>" then begin
    advance_n st 2;
    { Tree.name; attrs; children = [] }
  end
  else begin
    expect st ">";
    let children = parse_content st name in
    { Tree.name; attrs; children }
  end

and parse_content st parent_name : Tree.node list =
  let buf = Buffer.create 32 in
  let acc = ref [] in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      acc := Tree.Text (Buffer.contents buf) :: !acc;
      Buffer.clear buf
    end
  in
  let rec go () =
    if eof st then error st (Printf.sprintf "unterminated element <%s>" parent_name)
    else if looking_at st "</" then begin
      flush_text ();
      advance_n st 2;
      let close = parse_name st in
      if close <> parent_name then
        error st
          (Printf.sprintf "mismatched close tag </%s> for <%s>" close parent_name);
      skip_space st;
      expect st ">";
      List.rev !acc
    end
    else if looking_at st "<!--" then begin
      flush_text ();
      acc := Tree.Comment (parse_comment st) :: !acc;
      go ()
    end
    else if looking_at st "<![CDATA[" then begin
      Buffer.add_string buf (parse_cdata st);
      go ()
    end
    else if looking_at st "<?" then begin
      flush_text ();
      let target, content = parse_pi st in
      acc := Tree.Pi (target, content) :: !acc;
      go ()
    end
    else if peek st = '<' then begin
      flush_text ();
      acc := Tree.Element (parse_element st) :: !acc;
      go ()
    end
    else if peek st = '&' then begin
      Buffer.add_string buf (parse_reference st);
      go ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ()

let parse_doctype st : Tree.doctype =
  expect st "<!DOCTYPE";
  require_space st;
  let dt_name = parse_name st in
  skip_space st;
  let public_id, system_id =
    if looking_at st "SYSTEM" then begin
      advance_n st 6;
      skip_space st;
      (None, Some (parse_attr_value st))
    end
    else if looking_at st "PUBLIC" then begin
      advance_n st 6;
      skip_space st;
      let pub = parse_attr_value st in
      skip_space st;
      let sys =
        if peek st = '"' || peek st = '\'' then Some (parse_attr_value st)
        else None
      in
      (Some pub, sys)
    end
    else (None, None)
  in
  skip_space st;
  let internal_subset =
    if peek st = '[' then begin
      advance st;
      let start = st.pos in
      (* The internal subset may contain quoted strings and comments that
         themselves contain ']'; skip them correctly. *)
      let rec go depth =
        if eof st then error st "unterminated DOCTYPE internal subset"
        else
          match peek st with
          | ']' when depth = 0 -> ()
          | '"' | '\'' ->
            ignore (parse_attr_value st);
            go depth
          | _ when looking_at st "<!--" ->
            ignore (parse_comment st);
            go depth
          | '<' -> advance st; go (depth + 1)
          | '>' when depth > 0 -> advance st; go (depth - 1)
          | _ -> advance st; go depth
      in
      go 0;
      let s = String.sub st.src start (st.pos - start) in
      expect st "]";
      skip_space st;
      Some s
    end
    else None
  in
  expect st ">";
  { Tree.dt_name; system_id; public_id; internal_subset }

let parse_misc st =
  (* Comments, PIs and whitespace allowed in the prolog/epilog. *)
  let rec go () =
    skip_space st;
    if looking_at st "<!--" then begin
      ignore (parse_comment st);
      go ()
    end
    else if looking_at st "<?" && not (looking_at st "<?xml ") then begin
      ignore (parse_pi st);
      go ()
    end
  in
  go ()

(** Parse a complete document. *)
let parse_document (src : string) : Tree.doc =
  let st = make src in
  (* Optional XML declaration. *)
  if looking_at st "<?xml" then begin
    let _ = parse_pi st in
    ()
  end;
  parse_misc st;
  let doctype =
    if looking_at st "<!DOCTYPE" then begin
      let dt = parse_doctype st in
      parse_misc st;
      Some dt
    end
    else None
  in
  if peek st <> '<' then error st "expected root element";
  let root = parse_element st in
  parse_misc st;
  if not (eof st) then error st "content after root element";
  { Tree.doctype; root }

(** Parse a string that is a single element (fragment). *)
let parse_fragment (src : string) : Tree.element =
  let st = make src in
  parse_misc st;
  let e = parse_element st in
  parse_misc st;
  if not (eof st) then error st "content after fragment";
  e

let parse_document_result src =
  match parse_document src with
  | d -> Ok d
  | exception Error (msg, p) ->
    Error (Printf.sprintf "%d:%d: %s" p.line p.col msg)
