(** ID / IDREF indexing.

    The reference mechanisms of XML (ID/IDREF pairs, the supplied text's
    section on Xcerpt notes the same) are what turn document *trees* into
    semi-structured *graphs*.  This module builds the index used by
    [Gql_data] when materialising the graph: a map from ID value to the
    path of the element carrying it, and the list of (path, attribute,
    referenced id) triples.

    Which attributes are ID-typed is configurable: without a DTD the
    common convention (attribute named [id]) applies; with a DTD, the
    declared attribute types decide (the predicates are injected by
    [Gql_dtd] to avoid a dependency cycle). *)

type t = {
  ids : (string, Tree.path) Hashtbl.t;
  refs : (Tree.path * string * string) list;  (** element path, attr name, target id *)
  duplicates : string list;  (** ID values declared more than once *)
}

let default_is_id ~element:_ ~attr = String.lowercase_ascii attr = "id"

let default_is_idref ~element:_ ~attr =
  let a = String.lowercase_ascii attr in
  a = "idref" || a = "ref" || a = "idrefs"

let build ?(is_id = default_is_id) ?(is_idref = default_is_idref) root_el =
  let ids = Hashtbl.create 64 in
  let refs = ref [] in
  let duplicates = ref [] in
  Tree.iter_nodes
    (fun path node ->
      match node with
      | Tree.Element e ->
        List.iter
          (fun (attr, value) ->
            if is_id ~element:e.Tree.name ~attr then begin
              if Hashtbl.mem ids value then duplicates := value :: !duplicates
              else Hashtbl.add ids value path
            end
            else if is_idref ~element:e.Tree.name ~attr then
              (* IDREFS: whitespace-separated list of targets. *)
              List.iter
                (fun target ->
                  if target <> "" then refs := (path, attr, target) :: !refs)
                (String.split_on_char ' ' value))
          e.Tree.attrs
      | Tree.Text _ | Tree.Comment _ | Tree.Pi _ -> ())
    root_el;
  { ids; refs = List.rev !refs; duplicates = List.rev !duplicates }

let resolve t id = Hashtbl.find_opt t.ids id

(** References whose target ID is not declared anywhere. *)
let dangling t =
  List.filter (fun (_, _, target) -> not (Hashtbl.mem t.ids target)) t.refs

let all_ids t = Hashtbl.fold (fun id path acc -> (id, path) :: acc) t.ids []
