(** Serialisation of the document model back to XML text.

    Two modes: {!to_string} emits compact markup that re-parses to an
    equal tree (round-trip tested); {!to_string_pretty} indents
    element-only content for human consumption, leaving mixed content
    untouched so no significant whitespace is invented. *)

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\n' -> Buffer.add_string buf "&#10;"
      | '\t' -> Buffer.add_string buf "&#9;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr v);
      Buffer.add_char buf '"')
    attrs

let rec add_node buf = function
  | Tree.Text s -> Buffer.add_string buf (escape_text s)
  | Tree.Comment s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Tree.Pi (target, content) ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf target;
    if content <> "" then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf content
    end;
    Buffer.add_string buf "?>"
  | Tree.Element e -> add_element buf e

and add_element buf (e : Tree.element) =
  Buffer.add_char buf '<';
  Buffer.add_string buf e.name;
  add_attrs buf e.attrs;
  match e.children with
  | [] -> Buffer.add_string buf "/>"
  | children ->
    Buffer.add_char buf '>';
    List.iter (add_node buf) children;
    Buffer.add_string buf "</";
    Buffer.add_string buf e.name;
    Buffer.add_char buf '>'

let element_to_string e =
  let buf = Buffer.create 256 in
  add_element buf e;
  Buffer.contents buf

let node_to_string n =
  let buf = Buffer.create 256 in
  add_node buf n;
  Buffer.contents buf

let doctype_to_string (dt : Tree.doctype) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "<!DOCTYPE ";
  Buffer.add_string buf dt.dt_name;
  (match dt.public_id, dt.system_id with
  | Some pub, Some sys ->
    Buffer.add_string buf (Printf.sprintf " PUBLIC \"%s\" \"%s\"" pub sys)
  | Some pub, None -> Buffer.add_string buf (Printf.sprintf " PUBLIC \"%s\"" pub)
  | None, Some sys -> Buffer.add_string buf (Printf.sprintf " SYSTEM \"%s\"" sys)
  | None, None -> ());
  (match dt.internal_subset with
  | Some s ->
    Buffer.add_string buf " [";
    Buffer.add_string buf s;
    Buffer.add_char buf ']'
  | None -> ());
  Buffer.add_char buf '>';
  Buffer.contents buf

let to_string (d : Tree.doc) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  (match d.doctype with
  | Some dt ->
    Buffer.add_string buf (doctype_to_string dt);
    Buffer.add_char buf '\n'
  | None -> ());
  add_element buf d.root;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                      *)
(* ------------------------------------------------------------------ *)

let has_element_child (e : Tree.element) =
  List.exists (function Tree.Element _ -> true | _ -> false) e.children

let only_structural_children (e : Tree.element) =
  (* True when every text child is whitespace: safe to indent. *)
  List.for_all
    (function Tree.Text s -> String.trim s = "" | _ -> true)
    e.children

let rec add_pretty buf indent (e : Tree.element) =
  let pad = String.make (2 * indent) ' ' in
  Buffer.add_string buf pad;
  Buffer.add_char buf '<';
  Buffer.add_string buf e.name;
  add_attrs buf e.attrs;
  match e.children with
  | [] -> Buffer.add_string buf "/>\n"
  | children when has_element_child e && only_structural_children e ->
    Buffer.add_string buf ">\n";
    List.iter
      (function
        | Tree.Element e' -> add_pretty buf (indent + 1) e'
        | Tree.Text _ -> ()
        | (Tree.Comment _ | Tree.Pi _) as n ->
          Buffer.add_string buf (String.make (2 * (indent + 1)) ' ');
          add_node buf n;
          Buffer.add_char buf '\n')
      children;
    Buffer.add_string buf pad;
    Buffer.add_string buf "</";
    Buffer.add_string buf e.name;
    Buffer.add_string buf ">\n"
  | children ->
    Buffer.add_char buf '>';
    List.iter (add_node buf) children;
    Buffer.add_string buf "</";
    Buffer.add_string buf e.name;
    Buffer.add_string buf ">\n"

let element_to_string_pretty e =
  let buf = Buffer.create 1024 in
  add_pretty buf 0 e;
  Buffer.contents buf

let to_string_pretty (d : Tree.doc) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  (match d.doctype with
  | Some dt ->
    Buffer.add_string buf (doctype_to_string dt);
    Buffer.add_char buf '\n'
  | None -> ());
  add_pretty buf 0 d.root;
  Buffer.contents buf
