(** The XML document model.

    A deliberately small, immutable tree: elements with attribute lists and
    mixed content, text, comments and processing instructions.  This is the
    "document" face of semi-structured data; the graph face (with ID/IDREF
    edges resolved) lives in [Gql_data].

    Node identity is positional: a {!path} addresses a node by the child
    indexes leading to it from the root, and document order is
    lexicographic order on paths. *)

type node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of string * string  (** target, content *)

and element = {
  name : string;
  attrs : (string * string) list;  (** in source order, names unique *)
  children : node list;
}

type doctype = {
  dt_name : string;
  system_id : string option;
  public_id : string option;
  internal_subset : string option;  (** raw text between [ ] if present *)
}

type doc = { doctype : doctype option; root : element }

type path = int list
(** Child indexes from the root element; [[]] is the root element itself.
    Indexes count *all* nodes (text, comments...), not just elements. *)

let element ?(attrs = []) name children = { name; attrs; children }
let elt ?attrs name children = Element (element ?attrs name children)
let text s = Text s
let doc ?doctype root = { doctype; root }

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let attr e name = List.assoc_opt name e.attrs

let child_elements e =
  List.filter_map
    (function Element e' -> Some e' | Text _ | Comment _ | Pi _ -> None)
    e.children

(** Concatenated text content of the subtree, document order (the
    string-value of XPath). *)
let rec text_content_el e =
  String.concat ""
    (List.map
       (function
         | Text s -> s
         | Element e' -> text_content_el e'
         | Comment _ | Pi _ -> "")
       e.children)

let text_content = function
  | Element e -> text_content_el e
  | Text s -> s
  | Comment _ | Pi _ -> ""

(** Direct text of an element (its own text children only, concatenated). *)
let own_text e =
  String.concat ""
    (List.filter_map
       (function Text s -> Some s | Element _ | Comment _ | Pi _ -> None)
       e.children)

(* ------------------------------------------------------------------ *)
(* Traversal                                                            *)
(* ------------------------------------------------------------------ *)

(** Fold over every node in document order, with its path. *)
let fold_nodes f acc root_el =
  let rec go_el acc rev_path e =
    let acc = f acc (List.rev rev_path) (Element e) in
    let _, acc =
      List.fold_left
        (fun (i, acc) child ->
          let acc =
            match child with
            | Element e' -> go_el acc (i :: rev_path) e'
            | other -> f acc (List.rev (i :: rev_path)) other
          in
          (i + 1, acc))
        (0, acc) e.children
    in
    acc
  in
  go_el acc [] root_el

let iter_nodes f root_el = fold_nodes (fun () p n -> f p n) () root_el

(** All elements of the subtree (including the root), document order. *)
let descendant_elements root_el =
  List.rev
    (fold_nodes
       (fun acc _ n -> match n with Element e -> e :: acc | _ -> acc)
       [] root_el)

(** Elements with a given name anywhere in the subtree. *)
let find_all name root_el =
  List.filter (fun e -> e.name = name) (descendant_elements root_el)

let find_first name root_el =
  match find_all name root_el with [] -> None | e :: _ -> Some e

(** Node at [path], if any. *)
let rec node_at (e : element) (p : path) : node option =
  match p with
  | [] -> Some (Element e)
  | i :: rest -> (
    match List.nth_opt e.children i with
    | None -> None
    | Some (Element e') -> node_at e' rest
    | Some other -> if rest = [] then Some other else None)

(** Document order on paths: lexicographic; a prefix precedes its
    extensions (an element precedes its content). *)
let compare_paths (a : path) (b : path) = compare a b

let count_nodes root_el = fold_nodes (fun n _ _ -> n + 1) 0 root_el

let max_depth root_el =
  fold_nodes (fun d p _ -> max d (List.length p)) 0 root_el

(* ------------------------------------------------------------------ *)
(* Structural equality, ignoring attribute order                       *)
(* ------------------------------------------------------------------ *)

let sort_attrs attrs = List.sort (fun (a, _) (b, _) -> compare a b) attrs

let rec equal_element a b =
  a.name = b.name
  && sort_attrs a.attrs = sort_attrs b.attrs
  && List.length a.children = List.length b.children
  && List.for_all2 equal_node a.children b.children

and equal_node a b =
  match a, b with
  | Element a, Element b -> equal_element a b
  | Text a, Text b -> a = b
  | Comment a, Comment b -> a = b
  | Pi (ta, ca), Pi (tb, cb) -> ta = tb && ca = cb
  | (Element _ | Text _ | Comment _ | Pi _), _ -> false

(** Equality after dropping comments/PIs and whitespace-only text — the
    equality used when comparing query results to golden documents. *)
let rec canonical_element e =
  let keep = function
    | Text s -> if String.trim s = "" then None else Some (Text s)
    | Comment _ | Pi _ -> None
    | Element e' -> Some (Element (canonical_element e'))
  in
  { e with
    attrs = sort_attrs e.attrs;
    children = List.filter_map keep e.children }

let equal_canonical a b = equal_element (canonical_element a) (canonical_element b)
