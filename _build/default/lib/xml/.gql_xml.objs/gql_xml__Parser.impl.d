lib/xml/parser.ml: Buffer Char List Printf String Tree
