lib/xml/tree.ml: List String
