lib/xml/printer.ml: Buffer List Printf String Tree
