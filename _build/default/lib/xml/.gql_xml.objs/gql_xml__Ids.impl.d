lib/xml/ids.ml: Hashtbl List String Tree
