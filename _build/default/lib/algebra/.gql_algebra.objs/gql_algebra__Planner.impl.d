lib/algebra/planner.ml: Array Fun Gql_data Gql_graph Gql_xmlgl Graph List Plan Printf
