lib/algebra/exec.ml: Array Fun Gql_data Gql_graph Gql_xmlgl Graph List Plan Planner
