lib/algebra/plan.ml: Buffer Gql_data Gql_graph Graph Printf String
