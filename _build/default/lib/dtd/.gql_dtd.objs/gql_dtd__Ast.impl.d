lib/dtd/ast.ml: Buffer Gql_regex List Printf String
