lib/dtd/validate.ml: Ast Gql_regex Gql_xml Hashtbl List Option Printf String
