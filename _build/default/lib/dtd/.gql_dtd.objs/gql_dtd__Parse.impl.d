lib/dtd/parse.ml: Ast Gql_regex Gql_xml List Printf String
