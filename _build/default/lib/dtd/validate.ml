(** Document validation against a DTD.

    Element content is checked with the Glushkov automaton of the declared
    content model (built once per element declaration and cached), so
    validation is linear in document size.  Attribute checks cover
    presence of #REQUIRED, #FIXED value agreement, enumeration membership,
    and document-wide ID uniqueness / IDREF resolution. *)

type violation = {
  path : Gql_xml.Tree.path;
  element : string;
  message : string;
}

let violation path element message = { path; element; message }

let pp_violation v =
  Printf.sprintf "/%s <%s>: %s"
    (String.concat "/" (List.map string_of_int v.path))
    v.element v.message

type compiled = {
  dtd : Ast.t;
  automata : (string, string Gql_regex.Glushkov.t) Hashtbl.t;
}

let compile (dtd : Ast.t) : compiled =
  let automata = Hashtbl.create 16 in
  List.iter
    (fun (name, cm) ->
      match cm with
      | Ast.Children re -> Hashtbl.replace automata name (Gql_regex.Glushkov.build re)
      | Ast.Empty_content | Ast.Any_content | Ast.Pcdata | Ast.Mixed _ -> ())
    dtd.Ast.elements;
  { dtd; automata }

(** Content models must be deterministic (1-unambiguous) per XML 1.0;
    returns the offending element names. *)
let nondeterministic_models (c : compiled) =
  Hashtbl.fold
    (fun name auto acc ->
      if Gql_regex.Glushkov.deterministic auto then acc else name :: acc)
    c.automata []

let significant_text s = String.trim s <> ""

let check_element (c : compiled) path (e : Gql_xml.Tree.element) acc =
  let open Gql_xml.Tree in
  match Ast.content_model c.dtd e.name with
  | None -> violation path e.name "element not declared" :: acc
  | Some Ast.Any_content -> acc
  | Some Ast.Empty_content ->
    if e.children = [] then acc
    else violation path e.name "declared EMPTY but has content" :: acc
  | Some Ast.Pcdata ->
    if
      List.for_all
        (function
          | Text _ | Comment _ | Pi _ -> true
          | Element _ -> false)
        e.children
    then acc
    else violation path e.name "declared (#PCDATA) but has element children" :: acc
  | Some (Ast.Mixed allowed) ->
    List.fold_left
      (fun acc child ->
        match child with
        | Element ce when not (List.mem ce.name allowed) ->
          violation path e.name
            (Printf.sprintf "child <%s> not allowed in mixed content" ce.name)
          :: acc
        | Element _ | Text _ | Comment _ | Pi _ -> acc)
      acc e.children
  | Some (Ast.Children _) ->
    let auto = Hashtbl.find c.automata e.name in
    let child_names =
      List.filter_map
        (function Element ce -> Some ce.name | Text _ | Comment _ | Pi _ -> None)
        e.children
    in
    let stray_text =
      List.exists
        (function Text t -> significant_text t | _ -> false)
        e.children
    in
    let acc =
      if stray_text then
        violation path e.name "text not allowed in element content" :: acc
      else acc
    in
    if Gql_regex.Glushkov.accepts auto child_names then acc
    else
      violation path e.name
        (Printf.sprintf "children (%s) do not match content model %s"
           (String.concat "," child_names)
           (Ast.pp_content_model
              (Option.get (Ast.content_model c.dtd e.name))))
      :: acc

let check_attrs (c : compiled) path (e : Gql_xml.Tree.element) acc =
  let defs = Ast.attrs_of c.dtd e.name in
  (* Undeclared attributes: only an error when the element has an ATTLIST
     (common validator behaviour for internal subsets). *)
  let acc =
    List.fold_left
      (fun acc (aname, value) ->
        match List.find_opt (fun d -> d.Ast.attr_name = aname) defs with
        | None ->
          if defs = [] then acc
          else
            violation path e.name
              (Printf.sprintf "attribute %s not declared" aname)
            :: acc
        | Some d -> (
          match d.Ast.attr_type, d.Ast.default with
          | Ast.Enumeration allowed, _ when not (List.mem value allowed) ->
            violation path e.name
              (Printf.sprintf "attribute %s=%S not in enumeration (%s)" aname
                 value
                 (String.concat "|" allowed))
            :: acc
          | _, Ast.Fixed fixed when value <> fixed ->
            violation path e.name
              (Printf.sprintf "attribute %s must be fixed to %S" aname fixed)
            :: acc
          | _ -> acc))
      acc e.attrs
  in
  (* Required attributes present? *)
  List.fold_left
    (fun acc d ->
      match d.Ast.default with
      | Ast.Required when not (List.mem_assoc d.Ast.attr_name e.attrs) ->
        violation path e.name
          (Printf.sprintf "required attribute %s missing" d.Ast.attr_name)
        :: acc
      | Ast.Required | Ast.Implied | Ast.Fixed _ | Ast.Default _ -> acc)
    acc defs

(** Validate a whole document.  Returns violations in document order. *)
let validate (dtd : Ast.t) (doc : Gql_xml.Tree.doc) : violation list =
  let c = compile dtd in
  let root = doc.root in
  let acc =
    match dtd.Ast.root_hint with
    | Some n when n <> root.name ->
      [ violation [] root.name
          (Printf.sprintf "root element is <%s> but DOCTYPE declares %s"
             root.name n) ]
    | Some _ | None -> []
  in
  let acc =
    Gql_xml.Tree.fold_nodes
      (fun acc path node ->
        match node with
        | Gql_xml.Tree.Element e ->
          check_attrs c path e (check_element c path e acc)
        | Gql_xml.Tree.Text _ | Gql_xml.Tree.Comment _ | Gql_xml.Tree.Pi _ ->
          acc)
      acc root
  in
  (* ID / IDREF discipline. *)
  let ids =
    Gql_xml.Ids.build
      ~is_id:(fun ~element ~attr -> Ast.is_id_attr dtd ~element ~attr)
      ~is_idref:(fun ~element ~attr -> Ast.is_idref_attr dtd ~element ~attr)
      root
  in
  let acc =
    List.fold_left
      (fun acc id -> violation [] root.name (Printf.sprintf "duplicate ID %S" id) :: acc)
      acc ids.Gql_xml.Ids.duplicates
  in
  let acc =
    List.fold_left
      (fun acc (path, attr, target) ->
        violation path "?"
          (Printf.sprintf "IDREF %s=%S does not resolve" attr target)
        :: acc)
      acc
      (Gql_xml.Ids.dangling ids)
  in
  List.rev acc

let is_valid dtd doc = validate dtd doc = []

(** Apply attribute defaults from the DTD, returning a new document in
    which every defaulted attribute is materialised. *)
let apply_defaults (dtd : Ast.t) (document : Gql_xml.Tree.doc) : Gql_xml.Tree.doc =
  let open Gql_xml.Tree in
  let rec fix_element e =
    let defs = Ast.attrs_of dtd e.name in
    let attrs =
      List.fold_left
        (fun attrs d ->
          if List.mem_assoc d.Ast.attr_name attrs then attrs
          else
            match d.Ast.default with
            | Ast.Default v | Ast.Fixed v -> attrs @ [ (d.Ast.attr_name, v) ]
            | Ast.Required | Ast.Implied -> attrs)
        e.attrs defs
    in
    { e with
      attrs;
      children =
        List.map
          (function
            | Element ce -> Element (fix_element ce)
            | (Text _ | Comment _ | Pi _) as n -> n)
          e.children }
  in
  { document with root = fix_element document.root }
