(** Abstract syntax of Document Type Definitions.

    DTDs play two roles in the reproduction: they are the yardstick
    against which the paper measures XML-GL's schema expressiveness
    (figures XML-GL-DTD1/DTD2: an XML-GL graph equivalent to a BOOK/AUTHOR
    DTD), and they drive schema-aware tooling (attribute defaulting, ID
    typing for the data-graph encoder). *)

type content_model =
  | Empty_content  (** EMPTY *)
  | Any_content  (** ANY *)
  | Pcdata  (** (#PCDATA) — text only *)
  | Mixed of string list  (** (#PCDATA | a | b)° — text mixed with listed elements *)
  | Children of string Gql_regex.Syntax.t  (** pure element content *)

type attr_type =
  | Cdata
  | Id
  | Idref
  | Idrefs
  | Nmtoken
  | Nmtokens
  | Enumeration of string list

type attr_default =
  | Required  (** #REQUIRED *)
  | Implied  (** #IMPLIED *)
  | Fixed of string  (** #FIXED "v" *)
  | Default of string  (** "v" *)

type attr_def = { attr_name : string; attr_type : attr_type; default : attr_default }

type t = {
  root_hint : string option;
    (** document element name from <!DOCTYPE name ...>, when known *)
  elements : (string * content_model) list;  (** declaration order *)
  attlists : (string * attr_def list) list;  (** element name -> attributes *)
}

let empty = { root_hint = None; elements = []; attlists = [] }

let content_model t name = List.assoc_opt name t.elements

let attrs_of t name =
  match List.assoc_opt name t.attlists with Some l -> l | None -> []

let declared_elements t = List.map fst t.elements

(** Is [attr] of [element] declared with type ID (resp. IDREF/IDREFS)?
    These predicates plug into [Gql_xml.Ids.build]. *)
let is_id_attr t ~element ~attr =
  List.exists
    (fun d -> d.attr_name = attr && d.attr_type = Id)
    (attrs_of t element)

let is_idref_attr t ~element ~attr =
  List.exists
    (fun d -> d.attr_name = attr && (d.attr_type = Idref || d.attr_type = Idrefs))
    (attrs_of t element)

let pp_attr_type = function
  | Cdata -> "CDATA"
  | Id -> "ID"
  | Idref -> "IDREF"
  | Idrefs -> "IDREFS"
  | Nmtoken -> "NMTOKEN"
  | Nmtokens -> "NMTOKENS"
  | Enumeration vs -> "(" ^ String.concat "|" vs ^ ")"

(* DTD concrete syntax for content-model regexes: ',' for sequence, '|'
   for choice, parentheses mandatory around any composite. *)
let rec pp_dtd_re (re : string Gql_regex.Syntax.t) =
  let open Gql_regex.Syntax in
  match re with
  | Empty -> "EMPTY"
  | Eps -> "()"
  | Sym s -> s
  | Seq _ ->
    let rec flatten = function
      | Seq (a, b) -> flatten a @ flatten b
      | r -> [ r ]
    in
    "(" ^ String.concat "," (List.map pp_dtd_re (flatten re)) ^ ")"
  | Alt _ ->
    let rec flatten = function
      | Alt (a, b) -> flatten a @ flatten b
      | r -> [ r ]
    in
    "(" ^ String.concat "|" (List.map pp_dtd_re (flatten re)) ^ ")"
  | Star r -> pp_dtd_re r ^ "*"
  | Plus r -> pp_dtd_re r ^ "+"
  | Opt r -> pp_dtd_re r ^ "?"

let pp_content_model = function
  | Empty_content -> "EMPTY"
  | Any_content -> "ANY"
  | Pcdata -> "(#PCDATA)"
  | Mixed names -> "(#PCDATA|" ^ String.concat "|" names ^ ")*"
  | Children re ->
    (* The DTD grammar requires the top level of a children model to be a
       parenthesised group. *)
    let s = pp_dtd_re re in
    if String.length s > 0 && s.[0] = '(' then s else "(" ^ s ^ ")"

(** Serialise back to DTD text (round-trip tested). *)
let to_string t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, cm) ->
      Buffer.add_string buf
        (Printf.sprintf "<!ELEMENT %s %s>\n" name (pp_content_model cm)))
    t.elements;
  List.iter
    (fun (name, defs) ->
      Buffer.add_string buf (Printf.sprintf "<!ATTLIST %s" name);
      List.iter
        (fun d ->
          let dflt =
            match d.default with
            | Required -> "#REQUIRED"
            | Implied -> "#IMPLIED"
            | Fixed v -> Printf.sprintf "#FIXED \"%s\"" v
            | Default v -> Printf.sprintf "\"%s\"" v
          in
          Buffer.add_string buf
            (Printf.sprintf "\n  %s %s %s" d.attr_name (pp_attr_type d.attr_type)
               dflt))
        defs;
      Buffer.add_string buf ">\n")
    t.attlists;
  Buffer.contents buf
