(** Parser for the DTD internal-subset syntax.

    Accepts the text captured between [\[ \]] of a DOCTYPE (or a whole
    standalone [.dtd] file): <!ELEMENT>, <!ATTLIST>, comments and
    parameter-entity-free declarations.  Content models are parsed into
    [Gql_regex.Syntax] regexes over element names. *)

exception Error of string * int  (** message, byte offset *)

type state = { src : string; mutable pos : int }

let error st msg = raise (Error (msg, st.pos))
let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]
let advance st = if not (eof st) then st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else error st (Printf.sprintf "expected %S" s)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let rec skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done;
  if looking_at st "<!--" then begin
    st.pos <- st.pos + 4;
    let rec go () =
      if eof st then error st "unterminated comment"
      else if looking_at st "-->" then st.pos <- st.pos + 3
      else begin
        advance st;
        go ()
      end
    in
    go ();
    skip_space st
  end

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then error st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let parse_quoted st =
  let q = peek st in
  if q <> '"' && q <> '\'' then error st "expected quoted literal";
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek st <> q do
    advance st
  done;
  if eof st then error st "unterminated literal";
  let s = String.sub st.src start (st.pos - start) in
  advance st;
  s

(* --- content models ------------------------------------------------ *)

let parse_postfix st re =
  match peek st with
  | '*' -> advance st; Gql_regex.Syntax.star re
  | '+' -> advance st; Gql_regex.Syntax.plus re
  | '?' -> advance st; Gql_regex.Syntax.opt re
  | _ -> re

(* A parenthesised group: either a sequence (comma-separated) or a choice
   (pipe-separated); mixing separators is a syntax error, as in XML 1.0. *)
let rec parse_group st =
  expect st "(";
  skip_space st;
  let first = parse_cp st in
  skip_space st;
  match peek st with
  | ')' ->
    advance st;
    first
  | ',' ->
    let items = ref [ first ] in
    while peek st = ',' do
      advance st;
      skip_space st;
      items := parse_cp st :: !items;
      skip_space st
    done;
    expect st ")";
    Gql_regex.Syntax.seq_list (List.rev !items)
  | '|' ->
    let items = ref [ first ] in
    while peek st = '|' do
      advance st;
      skip_space st;
      items := parse_cp st :: !items;
      skip_space st
    done;
    expect st ")";
    Gql_regex.Syntax.alt_list (List.rev !items)
  | _ -> error st "expected ',', '|' or ')' in content model"

and parse_cp st =
  let atom =
    if peek st = '(' then parse_group st
    else Gql_regex.Syntax.sym (parse_name st)
  in
  parse_postfix st atom

let parse_content_model st : Ast.content_model =
  skip_space st;
  if looking_at st "EMPTY" then begin
    st.pos <- st.pos + 5;
    Ast.Empty_content
  end
  else if looking_at st "ANY" then begin
    st.pos <- st.pos + 3;
    Ast.Any_content
  end
  else if peek st = '(' then begin
    (* Distinguish (#PCDATA...) from pure element content. *)
    let save = st.pos in
    advance st;
    skip_space st;
    if looking_at st "#PCDATA" then begin
      st.pos <- st.pos + 7;
      skip_space st;
      let names = ref [] in
      while peek st = '|' do
        advance st;
        skip_space st;
        names := parse_name st :: !names;
        skip_space st
      done;
      expect st ")";
      if !names = [] then Ast.Pcdata
      else begin
        (* Mixed content requires the trailing star. *)
        if peek st = '*' then advance st
        else error st "mixed content model must end with '*'";
        Ast.Mixed (List.rev !names)
      end
    end
    else begin
      st.pos <- save;
      let re = parse_group st in
      Ast.Children (parse_postfix st re)
    end
  end
  else error st "expected content model"

(* --- attribute declarations ---------------------------------------- *)

let parse_attr_type st : Ast.attr_type =
  skip_space st;
  if looking_at st "CDATA" then (st.pos <- st.pos + 5; Ast.Cdata)
  else if looking_at st "IDREFS" then (st.pos <- st.pos + 6; Ast.Idrefs)
  else if looking_at st "IDREF" then (st.pos <- st.pos + 5; Ast.Idref)
  else if looking_at st "ID" then (st.pos <- st.pos + 2; Ast.Id)
  else if looking_at st "NMTOKENS" then (st.pos <- st.pos + 8; Ast.Nmtokens)
  else if looking_at st "NMTOKEN" then (st.pos <- st.pos + 7; Ast.Nmtoken)
  else if peek st = '(' then begin
    advance st;
    skip_space st;
    let values = ref [ parse_name st ] in
    skip_space st;
    while peek st = '|' do
      advance st;
      skip_space st;
      values := parse_name st :: !values;
      skip_space st
    done;
    expect st ")";
    Ast.Enumeration (List.rev !values)
  end
  else error st "expected attribute type"

let parse_attr_default st : Ast.attr_default =
  skip_space st;
  if looking_at st "#REQUIRED" then (st.pos <- st.pos + 9; Ast.Required)
  else if looking_at st "#IMPLIED" then (st.pos <- st.pos + 8; Ast.Implied)
  else if looking_at st "#FIXED" then begin
    st.pos <- st.pos + 6;
    skip_space st;
    Ast.Fixed (parse_quoted st)
  end
  else Ast.Default (parse_quoted st)

(* --- declarations --------------------------------------------------- *)

let parse_subset ?root_hint (src : string) : Ast.t =
  let st = { src; pos = 0 } in
  let elements = ref [] in
  let attlists : (string * Ast.attr_def list) list ref = ref [] in
  let rec go () =
    skip_space st;
    if eof st then ()
    else if looking_at st "<!ELEMENT" then begin
      st.pos <- st.pos + 9;
      skip_space st;
      let name = parse_name st in
      let cm = parse_content_model st in
      skip_space st;
      expect st ">";
      if List.mem_assoc name !elements then
        error st (Printf.sprintf "duplicate <!ELEMENT %s>" name);
      elements := (name, cm) :: !elements;
      go ()
    end
    else if looking_at st "<!ATTLIST" then begin
      st.pos <- st.pos + 9;
      skip_space st;
      let ename = parse_name st in
      let defs = ref [] in
      skip_space st;
      while peek st <> '>' do
        let attr_name = parse_name st in
        let attr_type = parse_attr_type st in
        let default = parse_attr_default st in
        defs := { Ast.attr_name; attr_type; default } :: !defs;
        skip_space st
      done;
      expect st ">";
      let prev = try List.assoc ename !attlists with Not_found -> [] in
      attlists :=
        (ename, prev @ List.rev !defs) :: List.remove_assoc ename !attlists;
      go ()
    end
    else if looking_at st "<!ENTITY" || looking_at st "<!NOTATION" then begin
      (* Skipped: entities/notations are out of scope for the query system;
         skip to the closing '>' respecting quotes. *)
      while peek st <> '>' && not (eof st) do
        if peek st = '"' || peek st = '\'' then ignore (parse_quoted st)
        else advance st
      done;
      expect st ">";
      go ()
    end
    else if looking_at st "<?" then begin
      while (not (eof st)) && not (looking_at st "?>") do
        advance st
      done;
      expect st "?>";
      go ()
    end
    else error st "expected a DTD declaration"
  in
  go ();
  { Ast.root_hint; elements = List.rev !elements; attlists = List.rev !attlists }

(** Parse the DTD embedded in a document's DOCTYPE, if any. *)
let of_doc (d : Gql_xml.Tree.doc) : Ast.t option =
  match d.doctype with
  | Some { dt_name; internal_subset = Some subset; _ } ->
    Some (parse_subset ~root_hint:dt_name subset)
  | Some { dt_name; internal_subset = None; _ } ->
    Some { Ast.empty with root_hint = Some dt_name }
  | None -> None

let parse_subset_result ?root_hint src =
  match parse_subset ?root_hint src with
  | dtd -> Ok dtd
  | exception Error (msg, pos) -> Error (Printf.sprintf "offset %d: %s" pos msg)
