(* The experiment harness: one section per experiment in DESIGN.md's
   index (E1-E10), each printing a paper-style table.

     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe e3 e7      # selected experiments
     dune exec bench/main.exe micro      # Bechamel microbenchmarks

   The paper (survey band) has no performance tables of its own; the
   figures are reproduced as executable artefacts and the performance
   characterisation is the substituted evaluation recorded in
   EXPERIMENTS.md. *)

let timed ?(repeat = 3) f =
  (* median-of-k wall-clock; good enough at these durations *)
  let runs =
    List.init repeat (fun _ ->
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (Unix.gettimeofday () -. t0, r))
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) runs in
  let t, r = List.nth sorted (repeat / 2) in
  (t *. 1000.0, r)

let header title =
  Printf.printf "\n================ %s ================\n" title

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* E1 — the WG-Log restaurant figure at scale                          *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1  WG-Log: rest-list of restaurants offering menus";
  row "%8s  %10s  %8s  %10s  %10s\n" "n_rest" "embeddings" "members" "rounds" "ms";
  List.iter
    (fun n ->
      let ms, (stats, members) =
        timed (fun () ->
            let g = Gql_workload.Gen.restaurants ~seed:41 ~menu_fraction:0.6 n in
            let p =
              Gql_lang.Wglog_text.parse_program
                ~schema:Gql_wglog.Schema.restaurant_schema
                Gql_workload.Queries.q10_src
            in
            let stats = Gql_wglog.Eval.run g p in
            let rl = Gql_data.Graph.nodes_labelled g "rest-list" in
            let members =
              match rl with
              | [ l ] ->
                List.length
                  (List.filter (fun (nm, _) -> nm = "member") (Gql_data.Graph.rels g l))
              | _ -> -1
            in
            (stats, members))
      in
      row "%8d  %10d  %8d  %10d  %10.2f\n" n stats.Gql_wglog.Eval.embeddings_found
        members stats.Gql_wglog.Eval.rounds ms)
    [ 100; 500; 2000 ]

(* ------------------------------------------------------------------ *)
(* E2 — DTD vs XML-GL schema agreement                                  *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2  schema expressiveness: DTD vs XML-GL graph (figures DTD1/DTD2)";
  let schema = Gql_xmlgl.Schema.of_dtd Gql_workload.Gen.book_dtd in
  row "%12s  %8s  %10s  %12s  %12s\n" "defect_rate" "corpus" "agreement" "dtd_ms" "xmlgl_ms";
  List.iter
    (fun rate ->
      let corpus =
        List.init 40 (fun seed ->
            let doc = Gql_workload.Gen.bibliography ~seed ~defect_rate:rate 20 in
            (doc, fst (Gql_data.Codec.encode doc)))
      in
      let dtd_ms, dtd_verdicts =
        timed (fun () ->
            List.map
              (fun (doc, _) -> Gql_dtd.Validate.is_valid Gql_workload.Gen.book_dtd doc)
              corpus)
      in
      let gl_ms, gl_verdicts =
        timed (fun () ->
            List.map (fun (_, g) -> Gql_xmlgl.Schema.is_valid schema g) corpus)
      in
      let agree =
        List.length
          (List.filter Fun.id (List.map2 ( = ) dtd_verdicts gl_verdicts))
      in
      row "%12.2f  %8d  %9d%%  %12.2f  %12.2f\n" rate (List.length corpus)
        (100 * agree / List.length corpus)
        dtd_ms gl_ms)
    [ 0.0; 0.3; 0.7; 1.0 ];
  (* the separating document *)
  let swapped = "<BOOK isbn=\"1\"><price>1</price><title>t</title></BOOK>" in
  let doc = Gql_xml.Parser.parse_document swapped in
  let g = fst (Gql_data.Codec.encode doc) in
  row "beyond-DTD check (price before title): DTD=%s  unordered-XML-GL=%s\n"
    (if Gql_dtd.Validate.is_valid Gql_workload.Gen.book_dtd doc then "valid" else "invalid")
    (if Gql_xmlgl.Schema.is_valid Gql_xmlgl.Schema.book_schema g then "valid" else "invalid")

(* ------------------------------------------------------------------ *)
(* E3/E4 — the two XML-GL figures as queries                           *)
(* ------------------------------------------------------------------ *)

let run_fig name src xpath mk_db sizes =
  header name;
  row "%8s  %9s  %9s  %11s  %11s\n" "size" "gl_hits" "xp_hits" "xmlgl_ms" "xpath_ms";
  List.iter
    (fun n ->
      let db = mk_db n in
      let gl_ms, gl =
        timed (fun () ->
            List.length (Gql_core.Gql.run_xmlgl_text db src).Gql_xml.Tree.children)
      in
      let xp_ms, xp =
        timed (fun () -> List.length (Gql_core.Gql.xpath_select db xpath))
      in
      row "%8d  %9d  %9d  %11.2f  %11.2f\n" n gl xp gl_ms xp_ms)
    sizes

let e3 () =
  run_fig "E3  figure XML-GL-simple: all BOOK elements (deep copy)"
    Gql_workload.Queries.q1_src Gql_workload.Queries.q1_xpath
    (fun n -> Gql_core.Gql.of_document (Gql_workload.Gen.bibliography ~seed:42 n))
    [ 50; 200; 1000 ]

let e4 () =
  run_fig "E4  figure XML-GL-aggregate: persons with FULLADDR projected"
    Gql_workload.Queries.q3_src Gql_workload.Queries.q3_xpath
    (fun n -> Gql_core.Gql.of_document (Gql_workload.Gen.people ~seed:43 n))
    [ 50; 200; 1000 ]

(* ------------------------------------------------------------------ *)
(* E5 — the GraphLog figures on hyperdocument webs                      *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5  GraphLog figures: sibling links and index+ root links";
  row "%8s  %12s  %12s  %12s  %12s\n" "docs" "sibling+" "sibling_ms" "root+" "root_ms";
  List.iter
    (fun n ->
      let sib_ms, sib =
        timed (fun () ->
            let g = Gql_workload.Gen.hyperdocs ~seed:44 ~fanout:3 ~link_factor:1 n in
            let p =
              Gql_lang.Wglog_text.parse_program
                ~schema:Gql_wglog.Schema.hyperdoc_schema Gql_workload.Queries.q11_src
            in
            (Gql_wglog.Eval.run g p).Gql_wglog.Eval.edges_added)
      in
      let root_ms, root =
        timed (fun () ->
            let g = Gql_workload.Gen.hyperdocs ~seed:44 ~fanout:3 ~link_factor:1 n in
            let p =
              Gql_lang.Wglog_text.parse_program
                ~schema:Gql_wglog.Schema.hyperdoc_schema Gql_workload.Queries.q12_src
            in
            (Gql_wglog.Eval.run g p).Gql_wglog.Eval.edges_added)
      in
      row "%8d  %12d  %12.2f  %12d  %12.2f\n" n sib sib_ms root root_ms)
    [ 50; 150; 400 ]

(* ------------------------------------------------------------------ *)
(* E6 — the expressiveness matrix, witness-checked                      *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6  expressiveness matrix (the paper's comparison, verified)";
  print_string (Gql_core.Expressiveness.matrix_to_string ());
  let ok = ref 0 in
  List.iter
    (fun (e : Gql_workload.Queries.entry) ->
      let feats =
        match e.kind with
        | `Xmlgl p -> Gql_core.Expressiveness.of_xmlgl (Lazy.force p)
        | `Wglog p -> Gql_core.Expressiveness.of_wglog (Lazy.force p)
      in
      if feats <> [] then incr ok)
    Gql_workload.Queries.suite;
  row "witness queries classified: %d / %d\n" !ok
    (List.length Gql_workload.Queries.suite)

(* ------------------------------------------------------------------ *)
(* E7 — scalability: evaluation time vs document size                   *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7  evaluation time vs document size (XML-GL vs XPath baseline)";
  row "%-10s  %8s  %8s  %11s  %11s  %11s\n" "query" "size" "hits" "xmlgl_ms" "algebra_ms" "xpath_ms";
  let cases =
    [ ("Q2-select", Gql_workload.Queries.q2_src, Gql_workload.Queries.q2_xpath,
       (fun n -> Gql_workload.Gen.bibliography ~seed:45 n));
      ("Q4-join", Gql_workload.Queries.q4_src, Gql_workload.Queries.q4_xpath,
       (fun n -> Gql_workload.Gen.greengrocer ~seed:46 n));
      ("Q6-negate", Gql_workload.Queries.q6_src, Gql_workload.Queries.q6_xpath,
       (fun n -> Gql_workload.Gen.people ~seed:47 n)) ]
  in
  List.iter
    (fun (name, src, xpath, gen) ->
      List.iter
        (fun n ->
          let doc = gen n in
          let db = Gql_core.Gql.of_document doc in
          let p = Gql_core.Gql.parse_xmlgl src in
          let q = (List.hd p.Gql_xmlgl.Ast.rules).Gql_xmlgl.Ast.query in
          let gl_ms, hits =
            timed (fun () ->
                List.length (Gql_xmlgl.Matching.run db.Gql_core.Gql.graph q))
          in
          let alg_ms, _ =
            timed (fun () ->
                List.length (Gql_algebra.Exec.run_xmlgl db.Gql_core.Gql.graph q))
          in
          let xp_ms, _ =
            timed (fun () -> List.length (Gql_core.Gql.xpath_select db xpath))
          in
          row "%-10s  %8d  %8d  %11.2f  %11.2f  %11.2f\n" name n hits gl_ms alg_ms xp_ms)
        [ 100; 400; 1600 ])
    cases

(* ------------------------------------------------------------------ *)
(* E8 — deductive fixpoint: naive vs semi-naive                         *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8  WG-Log fixpoint: naive vs semi-naive (transitive closure)";
  let closure_src =
    "wglog\nrule\n  node a Document\n  node b Document\n  node c Document\n\
    \  edge a link b\n  edge b link c\n  cedge a link c\nend\n"
  in
  let chain n =
    let g = Gql_data.Graph.create () in
    let docs = Array.init n (fun _ -> Gql_data.Graph.add_complex g "Document") in
    Gql_data.Graph.add_root g docs.(0);
    for i = 0 to n - 2 do
      Gql_data.Graph.link g ~src:docs.(i) ~dst:docs.(i + 1)
        (Gql_data.Graph.rel_edge "link")
    done;
    g
  in
  row "%8s  %9s  %8s  %11s  %11s  %11s  %11s  %9s\n" "chain" "derived" "rounds"
    "naive_emb" "semi_emb" "naive_ms" "semi_ms" "speedup";
  List.iter
    (fun n ->
      let p () = Gql_lang.Wglog_text.parse_program closure_src in
      let naive_ms, naive_stats =
        timed ~repeat:1 (fun () -> Gql_wglog.Eval.run ~strategy:`Naive (chain n) (p ()))
      in
      let semi_ms, stats =
        timed ~repeat:1 (fun () ->
            let g = chain n in
            Gql_wglog.Eval.run ~strategy:`Semi_naive g (p ()))
      in
      (* embeddings_found is the work metric: naive re-derives every old
         embedding each round, semi-naive only touches the delta *)
      row "%8d  %9d  %8d  %11d  %11d  %11.2f  %11.2f  %8.2fx\n" n
        stats.Gql_wglog.Eval.edges_added stats.Gql_wglog.Eval.rounds
        naive_stats.Gql_wglog.Eval.embeddings_found
        stats.Gql_wglog.Eval.embeddings_found naive_ms semi_ms
        (naive_ms /. semi_ms))
    [ 16; 32; 64; 128 ]

(* ------------------------------------------------------------------ *)
(* E9 — planner ablation                                                *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9  planner ablation: greedy fail-first vs declaration order";
  row "%-6s  %8s  %8s  %12s  %12s  %10s\n" "query" "size" "hits" "greedy_ms" "fixed_ms" "ratio";
  let dbs =
    [ (`Bibliography, Gql_core.Gql.of_document (Gql_workload.Gen.bibliography ~seed:48 400));
      (`Greengrocer, Gql_core.Gql.of_document (Gql_workload.Gen.greengrocer ~seed:48 400));
      (`People, Gql_core.Gql.of_document (Gql_workload.Gen.people ~seed:48 400)) ]
  in
  List.iter
    (fun (e : Gql_workload.Queries.entry) ->
      match e.kind, List.assoc_opt e.workload dbs with
      | `Xmlgl p, Some db ->
        let q = (List.hd (Lazy.force p).Gql_xmlgl.Ast.rules).Gql_xmlgl.Ast.query in
        let g_ms, hits =
          timed (fun () ->
              List.length (Gql_algebra.Exec.run_xmlgl ~strategy:`Greedy db.Gql_core.Gql.graph q))
        in
        let f_ms, _ =
          timed (fun () ->
              List.length (Gql_algebra.Exec.run_xmlgl ~strategy:`Fixed db.Gql_core.Gql.graph q))
        in
        row "%-6s  %8d  %8d  %12.2f  %12.2f  %9.2fx\n" e.name 400 hits g_ms f_ms
          (f_ms /. g_ms)
      | _ -> ())
    Gql_workload.Queries.suite

(* ------------------------------------------------------------------ *)
(* E10 — visual scalability: clutter and layout cost                    *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10  layout: crossings and time vs query size (layered vs grid)";
  row "%8s  %8s  %12s  %12s  %12s  %12s\n" "nodes" "edges" "layered_x" "grid_x" "layered_ms" "grid_ms";
  let random_diagram n seed =
    (* a rule-shaped random diagram: mostly tree-like with extra join
       edges — the clutter source the paper worries about *)
    let rng = Gql_workload.Prng.create seed in
    let d = Gql_visual.Diagram.create "synthetic" in
    let ids =
      Array.init n (fun i ->
          Gql_visual.Diagram.add_node d Gql_visual.Diagram.Box (Printf.sprintf "n%d" i))
    in
    for i = 1 to n - 1 do
      Gql_visual.Diagram.add_edge d ids.(Gql_workload.Prng.int rng i) ids.(i)
    done;
    for _ = 1 to n / 3 do
      let a = Gql_workload.Prng.int rng n and b = Gql_workload.Prng.int rng n in
      if a <> b then Gql_visual.Diagram.add_edge d ids.(a) ids.(b)
    done;
    d
  in
  List.iter
    (fun n ->
      let d1 = random_diagram n 7 in
      let lay_ms, () = timed (fun () -> Gql_visual.Layout.layered d1) in
      let lx = Gql_visual.Layout.count_crossings d1 in
      let d2 = random_diagram n 7 in
      let grid_ms, () = timed (fun () -> Gql_visual.Layout.grid d2) in
      let gx = Gql_visual.Layout.count_crossings d2 in
      row "%8d  %8d  %12d  %12d  %12.2f  %12.2f\n" n (Gql_visual.Diagram.n_edges d1)
        lx gx lay_ms grid_ms)
    [ 10; 20; 40; 80 ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                             *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let xml = Gql_xml.Printer.to_string (Gql_workload.Gen.bibliography ~seed:50 100) in
  let db = Gql_core.Gql.load_xml_string xml in
  let q2 = Gql_core.Gql.parse_xmlgl Gql_workload.Queries.q2_src in
  let q2_query = (List.hd q2.Gql_xmlgl.Ast.rules).Gql_xmlgl.Ast.query in
  let regex = Gql_regex.Chre.compile "[hH]olland|Van.*" in
  let idx = Lazy.force db.Gql_core.Gql.xpath_index in
  let xp = Gql_xpath.Parse.expr Gql_workload.Queries.q2_xpath in
  let tests =
    [
      Test.make ~name:"xml-parse-100-books"
        (Staged.stage (fun () -> ignore (Gql_xml.Parser.parse_document xml)));
      Test.make ~name:"xmlgl-match-q2"
        (Staged.stage (fun () ->
             ignore (Gql_xmlgl.Matching.run db.Gql_core.Gql.graph q2_query)));
      Test.make ~name:"xpath-eval-q2"
        (Staged.stage (fun () -> ignore (Gql_xpath.Eval.select idx xp)));
      Test.make ~name:"regex-search"
        (Staged.stage (fun () ->
             ignore (Gql_regex.Chre.search regex "sold in Holland by VanDam")));
      Test.make ~name:"rule-parse"
        (Staged.stage (fun () ->
             ignore (Gql_lang.Xmlgl_text.parse_program Gql_workload.Queries.q4_src)));
    ]
  in
  header "microbenchmarks (ns/run, OLS on monotonic clock)";
  List.iter
    (fun test ->
      let instances = Toolkit.Instance.[ monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
      in
      let a = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name res ->
          match Analyze.OLS.estimates res with
          | Some [ est ] -> row "%-28s  %12.1f ns/run\n" name est
          | Some _ | None -> row "%-28s  (no estimate)\n" name)
        a)
    tests

(* ------------------------------------------------------------------ *)

let all =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) all
  | [ "micro" ] -> micro ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt (String.lowercase_ascii name) all with
        | Some f -> f ()
        | None -> Printf.eprintf "unknown experiment %s (e1..e10, micro)\n" name)
      names
