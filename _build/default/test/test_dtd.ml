(* Tests for Gql_dtd: parsing, serialisation round-trip, validation
   (content models, attributes, IDs), attribute defaulting. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let book_dtd_src =
  "<!ELEMENT BOOK (title?,price,AUTHOR*)>\n\
   <!ATTLIST BOOK isbn CDATA #REQUIRED>\n\
   <!ELEMENT title (#PCDATA)>\n\
   <!ELEMENT price (#PCDATA)>\n\
   <!ELEMENT AUTHOR (first-name,last-name)>\n\
   <!ELEMENT first-name (#PCDATA)>\n\
   <!ELEMENT last-name (#PCDATA)>"

let book_dtd = Gql_dtd.Parse.parse_subset ~root_hint:"BOOK" book_dtd_src

(* --- parsing ----------------------------------------------------------- *)

let test_parse_elements () =
  check_int "six element declarations" 6 (List.length book_dtd.Gql_dtd.Ast.elements);
  match Gql_dtd.Ast.content_model book_dtd "BOOK" with
  | Some (Gql_dtd.Ast.Children re) ->
    Alcotest.(check (list string))
      "symbols" [ "title"; "price"; "AUTHOR" ]
      (Gql_regex.Syntax.symbols re)
  | _ -> Alcotest.fail "BOOK should have element content"

let test_parse_attlist () =
  match Gql_dtd.Ast.attrs_of book_dtd "BOOK" with
  | [ d ] ->
    check "name" true (d.Gql_dtd.Ast.attr_name = "isbn");
    check "required" true (d.Gql_dtd.Ast.default = Gql_dtd.Ast.Required)
  | _ -> Alcotest.fail "one attribute expected"

let test_parse_variants () =
  let dtd =
    Gql_dtd.Parse.parse_subset
      "<!ELEMENT e EMPTY>\n<!ELEMENT a ANY>\n<!ELEMENT m (#PCDATA|b|c)*>\n\
       <!ELEMENT ch ((x,y)|z+)>\n\
       <!ATTLIST e t (on|off) \"on\" i ID #IMPLIED r IDREF #IMPLIED>"
  in
  check "empty" true (Gql_dtd.Ast.content_model dtd "e" = Some Gql_dtd.Ast.Empty_content);
  check "any" true (Gql_dtd.Ast.content_model dtd "a" = Some Gql_dtd.Ast.Any_content);
  check "mixed" true
    (Gql_dtd.Ast.content_model dtd "m" = Some (Gql_dtd.Ast.Mixed [ "b"; "c" ]));
  (match Gql_dtd.Ast.content_model dtd "ch" with
  | Some (Gql_dtd.Ast.Children _) -> ()
  | _ -> Alcotest.fail "choice content expected");
  check "id attr recognised" true (Gql_dtd.Ast.is_id_attr dtd ~element:"e" ~attr:"i");
  check "idref attr recognised" true
    (Gql_dtd.Ast.is_idref_attr dtd ~element:"e" ~attr:"r");
  check "cdata not id" false (Gql_dtd.Ast.is_id_attr dtd ~element:"e" ~attr:"t")

let test_parse_errors () =
  let bad s =
    match Gql_dtd.Parse.parse_subset s with
    | _ -> false
    | exception Gql_dtd.Parse.Error _ -> true
  in
  check "mixed without star" true (bad "<!ELEMENT m (#PCDATA|b)>");
  check "garbage" true (bad "<!WHATEVER x>");
  check "unterminated" true (bad "<!ELEMENT a (b");
  check "duplicate element" true (bad "<!ELEMENT a (b*)> <!ELEMENT a EMPTY> <!ELEMENT b (#PCDATA)>")

let test_roundtrip () =
  let printed = Gql_dtd.Ast.to_string book_dtd in
  let reparsed = Gql_dtd.Parse.parse_subset ~root_hint:"BOOK" printed in
  let printed2 = Gql_dtd.Ast.to_string reparsed in
  Alcotest.(check string) "print-parse-print stable" printed printed2

let test_of_doc () =
  let doc =
    Gql_xml.Parser.parse_document
      "<!DOCTYPE r [<!ELEMENT r (x*)> <!ELEMENT x EMPTY>]><r><x/></r>"
  in
  match Gql_dtd.Parse.of_doc doc with
  | Some dtd ->
    check "root hint" true (dtd.Gql_dtd.Ast.root_hint = Some "r");
    check_int "two elements" 2 (List.length dtd.Gql_dtd.Ast.elements)
  | None -> Alcotest.fail "expected a DTD"

(* --- validation -------------------------------------------------------- *)

let parse_book s =
  Gql_xml.Parser.parse_document s

let valid_book =
  {|<BOOK isbn="1"><title>t</title><price>10</price><AUTHOR><first-name>A</first-name><last-name>B</last-name></AUTHOR></BOOK>|}

let test_validate_ok () =
  check "valid accepted" true (Gql_dtd.Validate.is_valid book_dtd (parse_book valid_book));
  (* title is optional *)
  check "no title ok" true
    (Gql_dtd.Validate.is_valid book_dtd (parse_book {|<BOOK isbn="1"><price>9</price></BOOK>|}))

let violations s = Gql_dtd.Validate.validate book_dtd (parse_book s)

let test_validate_content () =
  check "missing price" true
    (violations {|<BOOK isbn="1"><title>t</title></BOOK>|} <> []);
  check "order violation" true
    (violations {|<BOOK isbn="1"><price>9</price><title>t</title></BOOK>|} <> []);
  check "author incomplete" true
    (violations
       {|<BOOK isbn="1"><price>9</price><AUTHOR><first-name>A</first-name></AUTHOR></BOOK>|}
    <> []);
  check "undeclared element" true
    (violations {|<BOOK isbn="1"><price>9</price><extra/></BOOK>|} <> []);
  check "text in element content" true
    (violations {|<BOOK isbn="1">loose<price>9</price></BOOK>|} <> [])

let test_validate_attrs () =
  check "missing required isbn" true (violations {|<BOOK><price>9</price></BOOK>|} <> []);
  let dtd =
    Gql_dtd.Parse.parse_subset
      "<!ELEMENT e EMPTY><!ATTLIST e t (on|off) #REQUIRED f CDATA #FIXED \"v\">"
  in
  let v s = Gql_dtd.Validate.validate dtd (Gql_xml.Parser.parse_document s) in
  check "enum ok" true (v {|<e t="on"/>|} = []);
  check "enum bad" true (v {|<e t="maybe"/>|} <> []);
  check "fixed ok" true (v {|<e t="on" f="v"/>|} = []);
  check "fixed bad" true (v {|<e t="on" f="other"/>|} <> []);
  check "undeclared attr" true (v {|<e t="on" zz="1"/>|} <> [])

let test_validate_ids () =
  let dtd =
    Gql_dtd.Parse.parse_subset
      "<!ELEMENT g (n*)> <!ELEMENT n EMPTY>\n\
       <!ATTLIST n k ID #REQUIRED r IDREF #IMPLIED>"
  in
  let v s = Gql_dtd.Validate.validate dtd (Gql_xml.Parser.parse_document s) in
  check "ok" true (v {|<g><n k="a"/><n k="b" r="a"/></g>|} = []);
  check "duplicate id" true (v {|<g><n k="a"/><n k="a"/></g>|} <> []);
  check "dangling idref" true (v {|<g><n k="a" r="zz"/></g>|} <> [])

let test_validate_root () =
  check "wrong root" true
    (Gql_dtd.Validate.validate book_dtd
       (Gql_xml.Parser.parse_document "<title>t</title>")
    <> [])

let test_mixed_validation () =
  let dtd = Gql_dtd.Parse.parse_subset "<!ELEMENT p (#PCDATA|b)*> <!ELEMENT b (#PCDATA)>" in
  let v s = Gql_dtd.Validate.validate dtd (Gql_xml.Parser.parse_document s) in
  check "mixed ok" true (v "<p>x<b>y</b>z</p>" = []);
  check "mixed bad child" true (v "<p>x<i>y</i></p>" <> [])

let test_nondeterministic_models () =
  let dtd = Gql_dtd.Parse.parse_subset "<!ELEMENT a ((b,c)|(b,d))> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>" in
  let compiled = Gql_dtd.Validate.compile dtd in
  Alcotest.(check (list string)) "detected" [ "a" ]
    (Gql_dtd.Validate.nondeterministic_models compiled);
  let ok = Gql_dtd.Validate.compile book_dtd in
  Alcotest.(check (list string)) "book dtd clean" []
    (Gql_dtd.Validate.nondeterministic_models ok)

let test_apply_defaults () =
  let dtd =
    Gql_dtd.Parse.parse_subset
      "<!ELEMENT e EMPTY><!ATTLIST e a CDATA \"dflt\" b CDATA #IMPLIED f CDATA #FIXED \"x\">"
  in
  let doc = Gql_xml.Parser.parse_document "<e/>" in
  let doc' = Gql_dtd.Validate.apply_defaults dtd doc in
  check "default applied" true (Gql_xml.Tree.attr doc'.Gql_xml.Tree.root "a" = Some "dflt");
  check "fixed applied" true (Gql_xml.Tree.attr doc'.Gql_xml.Tree.root "f" = Some "x");
  check "implied absent" true (Gql_xml.Tree.attr doc'.Gql_xml.Tree.root "b" = None);
  (* explicit value wins over default *)
  let doc2 =
    Gql_dtd.Validate.apply_defaults dtd (Gql_xml.Parser.parse_document {|<e a="mine"/>|})
  in
  check "explicit kept" true (Gql_xml.Tree.attr doc2.Gql_xml.Tree.root "a" = Some "mine")

(* Property: generated bibliography documents are valid; defective ones
   are flagged. *)
let prop_generated_valid =
  QCheck.Test.make ~name:"clean bibliographies validate" ~count:20
    QCheck.(make Gen.(int_range 1 40))
    (fun n ->
      let doc = Gql_workload.Gen.bibliography ~seed:n n in
      Gql_dtd.Validate.is_valid Gql_workload.Gen.book_dtd doc)

let prop_defective_flagged =
  QCheck.Test.make ~name:"defective bibliographies rejected" ~count:20
    QCheck.(make Gen.(int_range 5 40))
    (fun n ->
      let doc = Gql_workload.Gen.bibliography ~seed:n ~defect_rate:1.0 n in
      not (Gql_dtd.Validate.is_valid Gql_workload.Gen.book_dtd doc))

let () =
  Alcotest.run "gql_dtd"
    [
      ( "parse",
        [
          Alcotest.test_case "elements" `Quick test_parse_elements;
          Alcotest.test_case "attlist" `Quick test_parse_attlist;
          Alcotest.test_case "variants" `Quick test_parse_variants;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "of_doc" `Quick test_of_doc;
        ] );
      ( "validate",
        [
          Alcotest.test_case "accepts valid" `Quick test_validate_ok;
          Alcotest.test_case "content models" `Quick test_validate_content;
          Alcotest.test_case "attributes" `Quick test_validate_attrs;
          Alcotest.test_case "ids" `Quick test_validate_ids;
          Alcotest.test_case "root" `Quick test_validate_root;
          Alcotest.test_case "mixed" `Quick test_mixed_validation;
          Alcotest.test_case "nondeterministic models" `Quick test_nondeterministic_models;
          Alcotest.test_case "apply defaults" `Quick test_apply_defaults;
          QCheck_alcotest.to_alcotest prop_generated_valid;
          QCheck_alcotest.to_alcotest prop_defective_flagged;
        ] );
    ]
