(* Tests for Gql_visual: diagram model, layered layout (coordinates,
   crossing metric), SVG and ASCII renderers, AST->diagram builders. *)

open Gql_visual

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let has re s = Gql_regex.Chre.search (Gql_regex.Chre.compile re) s

(* --- diagram model ------------------------------------------------------ *)

let test_model () =
  let d = Diagram.create "t" in
  let a = Diagram.add_node d Diagram.Box "alpha" in
  let b = Diagram.add_node d ~role:Diagram.Query_part Diagram.Circle_hollow "" in
  Diagram.add_edge d ~label:"x" a b;
  check_int "nodes" 2 (Diagram.n_nodes d);
  check_int "edges" 1 (Diagram.n_edges d);
  check "node lookup" true ((Diagram.node_by_id d a).Diagram.n_label = "alpha");
  check "wider label, wider box" true
    ((Diagram.node_by_id d a).Diagram.w > (Diagram.node_by_id d b).Diagram.w)

(* --- layout -------------------------------------------------------------- *)

let chain_diagram n =
  let d = Diagram.create "chain" in
  let ids = List.init n (fun i -> Diagram.add_node d Diagram.Box (Printf.sprintf "n%d" i)) in
  let rec link = function
    | a :: (b :: _ as rest) ->
      Diagram.add_edge d a b;
      link rest
    | _ -> ()
  in
  link ids;
  d

let test_layered_layers () =
  let d = chain_diagram 4 in
  Layout.layered d;
  (* a chain lays out on 4 distinct y levels, increasing *)
  let ys =
    List.map (fun (n : Diagram.node) -> n.Diagram.y) (Diagram.nodes d)
  in
  check_int "distinct levels" 4 (List.length (List.sort_uniq compare ys));
  let w, h = Diagram.extent d in
  check "positive extent" true (w > 0.0 && h > 0.0)

let test_layered_handles_cycles () =
  let d = Diagram.create "cycle" in
  let a = Diagram.add_node d Diagram.Box "a" in
  let b = Diagram.add_node d Diagram.Box "b" in
  Diagram.add_edge d a b;
  Diagram.add_edge d b a;
  Layout.layered d;
  let w, _ = Diagram.extent d in
  check "cycle laid out" true (w > 0.0)

let test_crossings_tree_zero () =
  (* a tree laid out by the layered algorithm has no crossings *)
  let d = Diagram.create "tree" in
  let root = Diagram.add_node d Diagram.Box "r" in
  let kids = List.init 3 (fun i -> Diagram.add_node d Diagram.Box (Printf.sprintf "k%d" i)) in
  List.iter (fun k -> Diagram.add_edge d root k) kids;
  Layout.layered d;
  check_int "no crossings" 0 (Layout.count_crossings d)

let test_barycentric_beats_grid () =
  (* K(3,3)-ish bipartite tangle: layered ordering should not be worse
     than the naive grid *)
  let mk () =
    let d = Diagram.create "tangle" in
    let tops = List.init 4 (fun i -> Diagram.add_node d Diagram.Box (Printf.sprintf "t%d" i)) in
    let bots = List.init 4 (fun i -> Diagram.add_node d Diagram.Box (Printf.sprintf "b%d" i)) in
    (* connect i -> (i+1 mod 4) and i -> i: a permutation tangle *)
    List.iteri
      (fun i t ->
        Diagram.add_edge d t (List.nth bots ((i + 1) mod 4));
        Diagram.add_edge d t (List.nth bots i))
      tops;
    d
  in
  let d1 = mk () in
  Layout.layered d1;
  let d2 = mk () in
  Layout.grid ~per_row:3 d2;
  check "layered <= grid crossings" true
    (Layout.count_crossings d1 <= Layout.count_crossings d2)

(* --- svg ------------------------------------------------------------------ *)

let sample_rule () =
  let p = Gql_lang.Xmlgl_text.parse_program Gql_workload.Queries.q3_src in
  List.hd p.Gql_xmlgl.Ast.rules

let test_svg_output () =
  let d = Builders.of_xmlgl_rule (sample_rule ()) in
  let svg = Svg.render_auto d in
  check "svg root" true (has "<svg xmlns" svg);
  check "closes" true (has "</svg>" svg);
  check "has rects" true (has "<rect" svg);
  check "has lines" true (has "<line" svg);
  check "query colour" true (has "#b03030" svg);
  check "construct colour" true (has "#2f7d32" svg);
  check "labels escaped" true (not (has "<text[^>]*<" svg))

let test_svg_is_wellformed_xml () =
  (* the renderer's output must be well-formed XML: parse it with the
     repository's own parser, for every suite query *)
  List.iter
    (fun (e : Gql_workload.Queries.entry) ->
      let svgs =
        match e.kind with
        | `Xmlgl p ->
          List.map
            (fun r -> Svg.render_auto (Builders.of_xmlgl_rule r))
            (Lazy.force p).Gql_xmlgl.Ast.rules
        | `Wglog p ->
          List.map
            (fun r -> Svg.render_auto (Builders.of_wglog_rule r))
            (Lazy.force p).Gql_wglog.Ast.rules
      in
      List.iter
        (fun svg ->
          match Gql_xml.Parser.parse_document svg with
          | doc ->
            check (e.Gql_workload.Queries.name ^ " svg root") true
              (doc.Gql_xml.Tree.root.Gql_xml.Tree.name = "svg")
          | exception Gql_xml.Parser.Error (msg, _) ->
            Alcotest.fail (e.Gql_workload.Queries.name ^ ": bad svg: " ^ msg))
        svgs)
    Gql_workload.Queries.suite

let test_svg_file () =
  let d = Builders.of_xmlgl_rule (sample_rule ()) in
  let path = Filename.temp_file "gql" ".svg" in
  Svg.write_file path d;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  check "file written" true (len > 200)

(* --- ascii ------------------------------------------------------------------ *)

let test_ascii_output () =
  let d = Builders.of_xmlgl_rule (sample_rule ()) in
  let s = Ascii.render_auto d in
  check "title" true (has "-- XML-GL rule --" s);
  check "person box" true (has "\\[PERSON\\]" s);
  check "construct arrows" true (has "==>" s);
  check "query arrows" true (has "-->" s)

(* --- builders ----------------------------------------------------------------- *)

let test_builder_xmlgl_shapes () =
  let p = Gql_lang.Xmlgl_text.parse_program {|xmlgl
rule
query
  node $a elem BOOK
  node $t content where self > 10
  node $at attr
  node $w elem *
  edge $a $t
  attredge $a isbn $at
  deep $a $w
  absent $a $w
construct
  node r new out
  node c copy $a deep
  node v value $t
  node k const "lit"
  node g all $a
  node h group $t
  root r
  edge r c
  edge r v attr price
end
|} in
  let d = Builders.of_xmlgl_rule (List.hd p.Gql_xmlgl.Ast.rules) in
  (* 4 query nodes + 6 construction nodes *)
  check_int "all nodes drawn" 10 (Diagram.n_nodes d);
  (* query edges 4 + construct edges 2 + binding edges 4 *)
  check_int "all edges drawn" 10 (Diagram.n_edges d);
  let svg = Svg.render_auto d in
  check "triangle present" true (has "<polygon" svg);
  check "circle present" true (has "<circle" svg);
  check "dashes for deep" true (has "stroke-dasharray" svg)

let test_builder_wglog () =
  let p = Gql_lang.Wglog_text.parse_program Gql_workload.Queries.q12_src in
  let d = Builders.of_wglog_rule (List.hd p.Gql_wglog.Ast.rules) in
  check_int "three entity boxes" 3 (Diagram.n_nodes d);
  let svg = Svg.render_auto d in
  check "regex edge dashed" true (has "stroke-dasharray" svg);
  check "thick green derive" true (has "2.6" svg)

let test_builder_data () =
  let g = fst (Gql_data.Codec.encode (Gql_workload.Gen.greengrocer 3)) in
  let d = Builders.of_data ~max_nodes:30 g in
  check "truncated" true (Diagram.n_nodes d <= 30);
  let ascii = Ascii.render_auto d in
  check "has product box" true (has "\\[product\\]" ascii)

let test_crossing_metric_positive () =
  (* two explicitly crossing segments *)
  let d = Diagram.create "x" in
  let a = Diagram.add_node d Diagram.Box "a" in
  let b = Diagram.add_node d Diagram.Box "b" in
  let c = Diagram.add_node d Diagram.Box "c" in
  let e = Diagram.add_node d Diagram.Box "d" in
  (Diagram.node_by_id d a).Diagram.x <- 0.0;
  (Diagram.node_by_id d a).Diagram.y <- 0.0;
  (Diagram.node_by_id d b).Diagram.x <- 100.0;
  (Diagram.node_by_id d b).Diagram.y <- 100.0;
  (Diagram.node_by_id d c).Diagram.x <- 100.0;
  (Diagram.node_by_id d c).Diagram.y <- 0.0;
  (Diagram.node_by_id d e).Diagram.x <- 0.0;
  (Diagram.node_by_id d e).Diagram.y <- 100.0;
  Diagram.add_edge d a b;
  Diagram.add_edge d c e;
  check_int "one crossing" 1 (Layout.count_crossings d)

let () =
  Alcotest.run "gql_visual"
    [
      ( "model", [ Alcotest.test_case "basics" `Quick test_model ] );
      ( "layout",
        [
          Alcotest.test_case "layers" `Quick test_layered_layers;
          Alcotest.test_case "cycles" `Quick test_layered_handles_cycles;
          Alcotest.test_case "tree has no crossings" `Quick test_crossings_tree_zero;
          Alcotest.test_case "layered <= grid" `Quick test_barycentric_beats_grid;
          Alcotest.test_case "crossing metric" `Quick test_crossing_metric_positive;
        ] );
      ( "svg",
        [
          Alcotest.test_case "output" `Quick test_svg_output;
          Alcotest.test_case "file" `Quick test_svg_file;
          Alcotest.test_case "well-formed xml" `Quick test_svg_is_wellformed_xml;
        ] );
      ( "ascii", [ Alcotest.test_case "output" `Quick test_ascii_output ] );
      ( "builders",
        [
          Alcotest.test_case "xmlgl shapes" `Quick test_builder_xmlgl_shapes;
          Alcotest.test_case "wglog" `Quick test_builder_wglog;
          Alcotest.test_case "data graph" `Quick test_builder_data;
        ] );
    ]
