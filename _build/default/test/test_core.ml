(* Tests for Gql_core: the facade and the expressiveness machinery. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let xml = Gql_xml.Printer.to_string (Gql_workload.Gen.people ~seed:4 10)

let test_load_and_stats () =
  let db = Gql_core.Gql.load_xml_string xml in
  let nodes, edges = Gql_core.Gql.stats db in
  check "nodes" true (nodes > 50);
  check "edges" true (edges >= nodes - 1)

let test_load_error () =
  match Gql_core.Gql.load_xml_string "<broken" with
  | _ -> Alcotest.fail "should fail"
  | exception Gql_core.Gql.Error msg ->
    check "mentions parse" true
      (Gql_regex.Chre.search (Gql_regex.Chre.compile "parse") msg)

let test_run_xmlgl_text () =
  let db = Gql_core.Gql.load_xml_string xml in
  let out = Gql_core.Gql.run_xmlgl_text db Gql_workload.Queries.q3_src in
  Alcotest.(check string) "result root" "RESULT" out.Gql_xml.Tree.name;
  check "some persons" true (out.Gql_xml.Tree.children <> [])

let test_parse_error_surface () =
  let db = Gql_core.Gql.load_xml_string xml in
  match Gql_core.Gql.run_xmlgl_text db "xmlgl\nrule\nquery\n node $a zz\nend\n" with
  | _ -> Alcotest.fail "should fail"
  | exception Gql_core.Gql.Error _ -> ()

let test_xpath_agreement () =
  let db = Gql_core.Gql.load_xml_string xml in
  let via_xpath = List.length (Gql_core.Gql.xpath_select db "//PERSON[FULLADDR]") in
  let via_xmlgl =
    List.length
      (Gql_core.Gql.run_xmlgl_text db Gql_workload.Queries.q3_src).Gql_xml.Tree.children
  in
  check_int "same count" via_xpath via_xmlgl

let test_xpath_value () =
  let db = Gql_core.Gql.load_xml_string xml in
  let v = Gql_core.Gql.xpath_value db "count(//PERSON)" in
  Alcotest.(check string) "count" "10" v

let test_run_wglog () =
  let g = Gql_workload.Gen.restaurants ~seed:2 8 in
  let db = Gql_core.Gql.of_graph g in
  let stats = Gql_core.Gql.run_wglog_text ~schema:Gql_wglog.Schema.restaurant_schema
    db Gql_workload.Queries.q10_src in
  check "derived something" true (stats.Gql_wglog.Eval.edges_added > 0);
  (* xpath unavailable on pure graphs *)
  match Gql_core.Gql.xpath_select db "//x" with
  | _ -> Alcotest.fail "should fail"
  | exception Gql_core.Gql.Error _ -> ()

let test_validate_dtd_via_db () =
  let doc = Gql_workload.Gen.bibliography ~seed:3 5 in
  let db = Gql_core.Gql.of_document ~dtd:Gql_workload.Gen.book_dtd doc in
  Alcotest.(check int) "no violations" 0 (List.length (Gql_core.Gql.validate_dtd db))

let test_explain () =
  let db = Gql_core.Gql.load_xml_string xml in
  let p = Gql_core.Gql.parse_xmlgl Gql_workload.Queries.q3_src in
  let s = Gql_core.Gql.explain_xmlgl db p in
  check "plan text" true (Gql_regex.Chre.search (Gql_regex.Chre.compile "scan") s)

let test_diagram_roundtrip () =
  let p = Gql_core.Gql.parse_xmlgl Gql_workload.Queries.q3_src in
  let d = Gql_core.Gql.rule_diagram_xmlgl (List.hd p.Gql_xmlgl.Ast.rules) in
  let ascii = Gql_core.Gql.render_ascii d in
  check "ascii mentions PERSON" true
    (Gql_regex.Chre.search (Gql_regex.Chre.compile "PERSON") ascii)

(* --- expressiveness ---------------------------------------------------------- *)

let features_of_xmlgl src =
  Gql_core.Expressiveness.of_xmlgl (Gql_core.Gql.parse_xmlgl src)

let has f fs = List.mem f fs

let test_classifier_xmlgl () =
  let open Gql_core.Expressiveness in
  check "q4 value join" true (has Value_join (features_of_xmlgl Gql_workload.Queries.q4_src));
  check "q5 regex" true (has Regex_match (features_of_xmlgl Gql_workload.Queries.q5_src));
  check "q6 negation" true (has Negation (features_of_xmlgl Gql_workload.Queries.q6_src));
  check "q7 deep" true (has Deep_paths (features_of_xmlgl Gql_workload.Queries.q7_src));
  check "q8 ordered" true (has Ordered_content (features_of_xmlgl Gql_workload.Queries.q8_src));
  check "q9 grouping" true (has Grouping (features_of_xmlgl Gql_workload.Queries.q9_src));
  check "q1 has no joins" false (has Value_join (features_of_xmlgl Gql_workload.Queries.q1_src))

let test_classifier_wglog () =
  let open Gql_core.Expressiveness in
  let feats src schema =
    of_wglog (Gql_core.Gql.parse_wglog ~schema src)
  in
  let q10 = feats Gql_workload.Queries.q10_src Gql_wglog.Schema.restaurant_schema in
  check "q10 aggregation" true (has Aggregation q10);
  check "q10 restructuring" true (has Restructuring q10);
  let q12 = feats Gql_workload.Queries.q12_src Gql_wglog.Schema.hyperdoc_schema in
  check "q12 deep paths" true (has Deep_paths q12);
  check "q12 negation" true (has Negation q12);
  (* transitive closure: derived label also queried -> recursion *)
  let tc = feats "wglog\nrule\n  node a Document\n  node b Document\n  node c Document\n  edge a link b\n  edge b link c\n  cedge a link c\nend\n" Gql_wglog.Schema.hyperdoc_schema in
  check "closure is recursive" true (has Recursion tc)

let test_matrix_consistency () =
  let open Gql_core.Expressiveness in
  check_int "all features covered" (List.length all_features) (List.length matrix);
  (* XML-GL cannot do recursion, WG-Log can: the paper's headline contrast *)
  let find f = List.find (fun (g, _, _, _) -> g = f) matrix in
  let _, xmlgl, wglog, _ = find Recursion in
  check "xml-gl no recursion" true (xmlgl = Unsupported);
  check "wg-log recursion" true (wglog = Native);
  let _, xmlgl_o, wglog_o, _ = find Ordered_content in
  check "xml-gl ordered" true (xmlgl_o = Native);
  check "wg-log unordered model" true (wglog_o = Unsupported);
  check "table renders" true (String.length (matrix_to_string ()) > 300)

let () =
  Alcotest.run "gql_core"
    [
      ( "facade",
        [
          Alcotest.test_case "load + stats" `Quick test_load_and_stats;
          Alcotest.test_case "load error" `Quick test_load_error;
          Alcotest.test_case "run xmlgl" `Quick test_run_xmlgl_text;
          Alcotest.test_case "parse error" `Quick test_parse_error_surface;
          Alcotest.test_case "xpath agreement" `Quick test_xpath_agreement;
          Alcotest.test_case "xpath value" `Quick test_xpath_value;
          Alcotest.test_case "run wglog" `Quick test_run_wglog;
          Alcotest.test_case "validate dtd" `Quick test_validate_dtd_via_db;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "diagram" `Quick test_diagram_roundtrip;
        ] );
      ( "expressiveness",
        [
          Alcotest.test_case "xmlgl classifier" `Quick test_classifier_xmlgl;
          Alcotest.test_case "wglog classifier" `Quick test_classifier_wglog;
          Alcotest.test_case "matrix" `Quick test_matrix_consistency;
        ] );
    ]
