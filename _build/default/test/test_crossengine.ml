(* Cross-engine agreement properties: the three query engines (direct
   matcher, algebra plans with both strategies, XPath where expressible)
   must agree on randomly generated documents — this is the strongest
   correctness net in the repository because the engines share no code
   beyond the data model. *)

let check = Alcotest.(check bool)

(* Build a small query: elements named [parent] containing [child],
   returning the bindings count through each engine. *)
let q_parent_child parent child =
  Printf.sprintf
    {|xmlgl
rule
query
  node $a elem %s
  node $b elem %s
  edge $a $b
construct
  node c copy $b
  root c
end
|}
    parent child

let engines_agree_on src db xpath =
  let p = Gql_core.Gql.parse_xmlgl src in
  let q = (List.hd p.Gql_xmlgl.Ast.rules).Gql_xmlgl.Ast.query in
  let norm bs = List.sort compare (List.map Array.to_list bs) in
  let m = norm (Gql_xmlgl.Matching.run db.Gql_core.Gql.graph q) in
  let g = norm (Gql_algebra.Exec.run_xmlgl ~strategy:`Greedy db.Gql_core.Gql.graph q) in
  let f = norm (Gql_algebra.Exec.run_xmlgl ~strategy:`Fixed db.Gql_core.Gql.graph q) in
  m = g && m = f
  &&
  match xpath with
  | None -> true
  | Some x -> List.length m = List.length (Gql_core.Gql.xpath_select db x)

(* random tag-pool documents *)
let random_db seed =
  Gql_core.Gql.of_document (Gql_workload.Gen.random_tree ~seed ~ref_density:0.0 80)

let tags = [ "a"; "b"; "c"; "item"; "entry"; "node" ]

let prop_parent_child =
  QCheck.Test.make ~name:"parent/child agreement on random docs" ~count:40
    QCheck.(make Gen.(triple (int_range 1 500) (oneofl tags) (oneofl tags)))
    (fun (seed, parent, child) ->
      let db = random_db seed in
      engines_agree_on (q_parent_child parent child) db
        (Some (Printf.sprintf "//%s/%s" parent child)))

let q_deep anc desc =
  Printf.sprintf
    {|xmlgl
rule
query
  node $a elem %s
  node $b elem %s
  deep $a $b
construct
  node c copy $b
  root c
end
|}
    anc desc

let prop_deep =
  QCheck.Test.make ~name:"deep-edge agreement on random docs" ~count:30
    QCheck.(make Gen.(triple (int_range 1 500) (oneofl tags) (oneofl tags)))
    (fun (seed, anc, desc) ->
      let db = random_db seed in
      (* engines agree on bindings; against XPath compare *distinct
         descendants* (a node under two same-named ancestors is one XPath
         result but two bindings) *)
      engines_agree_on (q_deep anc desc) db None
      &&
      let p = Gql_core.Gql.parse_xmlgl (q_deep anc desc) in
      let q = (List.hd p.Gql_xmlgl.Ast.rules).Gql_xmlgl.Ast.query in
      let bindings = Gql_xmlgl.Matching.run db.Gql_core.Gql.graph q in
      let distinct_desc =
        List.sort_uniq compare (List.map (fun b -> b.(1)) bindings)
      in
      List.length distinct_desc
      = List.length
          (Gql_core.Gql.xpath_select db
             (Printf.sprintf "//%s/descendant::%s" anc desc)))

let q_absent parent missing =
  Printf.sprintf
    {|xmlgl
rule
query
  node $a elem %s
  node $b elem %s
  absent $a $b
construct
  node c copy $a
  root c
end
|}
    parent missing

let prop_absent =
  QCheck.Test.make ~name:"negation agreement on random docs" ~count:30
    QCheck.(make Gen.(triple (int_range 1 500) (oneofl tags) (oneofl tags)))
    (fun (seed, parent, missing) ->
      let db = random_db seed in
      engines_agree_on (q_absent parent missing) db
        (Some (Printf.sprintf "//%s[not(%s)]" parent missing)))

let q_attr_select tag =
  Printf.sprintf
    {|xmlgl
rule
query
  node $a elem %s
  node $v attr
  attredge $a id $v
construct
  node c copy $a
  root c
end
|}
    tag

let prop_attr =
  QCheck.Test.make ~name:"attribute agreement on random docs" ~count:30
    QCheck.(make Gen.(pair (int_range 1 500) (oneofl tags)))
    (fun (seed, tag) ->
      let db = random_db seed in
      engines_agree_on (q_attr_select tag) db
        (Some (Printf.sprintf "//%s[@id]" tag)))

(* Construction totality: run_program never raises on well-formed suite
   programs over any workload instance. *)
let prop_construction_total =
  QCheck.Test.make ~name:"suite programs total on random workloads" ~count:15
    QCheck.(make Gen.(int_range 1 300))
    (fun seed ->
      List.for_all
        (fun (e : Gql_workload.Queries.entry) ->
          match e.kind with
          | `Xmlgl p ->
            let db =
              match e.workload with
              | `Bibliography ->
                Gql_core.Gql.of_document (Gql_workload.Gen.bibliography ~seed 10)
              | `Greengrocer ->
                Gql_core.Gql.of_document (Gql_workload.Gen.greengrocer ~seed 10)
              | `People | `Restaurants | `Hyperdocs ->
                Gql_core.Gql.of_document (Gql_workload.Gen.people ~seed 10)
            in
            let (_ : Gql_xml.Tree.element) = Gql_core.Gql.run_xmlgl db (Lazy.force p) in
            true
          | `Wglog _ -> true)
        Gql_workload.Queries.suite)

(* WG-Log determinism: both strategies saturate random hyperdoc graphs to
   identical node/edge counts for the sibling and closure rules. *)
let closure_src =
  "wglog\nrule\n  node a Document\n  node b Document\n  node c Document\n\
  \  edge a link b\n  edge b link c\n  cedge a link c\nend\n"

let prop_fixpoint_strategies =
  QCheck.Test.make ~name:"fixpoint strategies agree on random webs" ~count:10
    QCheck.(make Gen.(int_range 1 300))
    (fun seed ->
      let run strategy =
        let g = Gql_workload.Gen.hyperdocs ~seed ~fanout:2 ~link_factor:1 14 in
        let p = Gql_lang.Wglog_text.parse_program closure_src in
        let _ = Gql_wglog.Eval.run ~strategy g p in
        (Gql_data.Graph.n_nodes g, Gql_data.Graph.n_edges g)
      in
      run `Naive = run `Semi_naive)

(* Matching determinism: same query + same doc = same bindings across
   repeated runs (guards against hidden state in caches). *)
let prop_matching_deterministic =
  QCheck.Test.make ~name:"matching is deterministic" ~count:20
    QCheck.(make Gen.(int_range 1 300))
    (fun seed ->
      let db = random_db seed in
      let p = Gql_core.Gql.parse_xmlgl (q_parent_child "item" "a") in
      let q = (List.hd p.Gql_xmlgl.Ast.rules).Gql_xmlgl.Ast.query in
      Gql_xmlgl.Matching.run db.Gql_core.Gql.graph q
      = Gql_xmlgl.Matching.run db.Gql_core.Gql.graph q)

let () =
  ignore check;
  Alcotest.run "crossengine"
    [
      ( "agreement",
        [
          QCheck_alcotest.to_alcotest prop_parent_child;
          QCheck_alcotest.to_alcotest prop_deep;
          QCheck_alcotest.to_alcotest prop_absent;
          QCheck_alcotest.to_alcotest prop_attr;
        ] );
      ( "totality",
        [
          QCheck_alcotest.to_alcotest prop_construction_total;
          QCheck_alcotest.to_alcotest prop_fixpoint_strategies;
          QCheck_alcotest.to_alcotest prop_matching_deterministic;
        ] );
    ]
