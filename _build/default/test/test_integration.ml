(* End-to-end integration: every suite query on its workload, cross-engine
   agreement (XML-GL vs XPath on the navigationally-expressible queries),
   the E2 schema-agreement experiment in miniature, and golden outputs. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let db_of_doc doc = Gql_core.Gql.of_document doc

let bib = db_of_doc (Gql_workload.Gen.bibliography ~seed:21 20)
let grocer = db_of_doc (Gql_workload.Gen.greengrocer ~seed:22 25)
let folks = db_of_doc (Gql_workload.Gen.people ~seed:23 30)

let db_for = function
  | `Bibliography -> bib
  | `Greengrocer -> grocer
  | `People -> folks
  | `Restaurants -> Gql_core.Gql.of_graph (Gql_workload.Gen.restaurants ~seed:24 15)
  | `Hyperdocs -> Gql_core.Gql.of_graph (Gql_workload.Gen.hyperdocs ~seed:25 25)

(* Every suite query runs without error and produces work. *)
let test_suite_runs () =
  List.iter
    (fun (e : Gql_workload.Queries.entry) ->
      let db = db_for e.workload in
      match e.kind with
      | `Xmlgl p ->
        let out = Gql_core.Gql.run_xmlgl db (Lazy.force p) in
        check (e.name ^ " produced output") true (out.Gql_xml.Tree.children <> [])
      | `Wglog p ->
        let stats = Gql_core.Gql.run_wglog db (Lazy.force p) in
        check (e.name ^ " derived facts") true (stats.Gql_wglog.Eval.edges_added > 0))
    Gql_workload.Queries.suite

(* XML-GL and XPath agree on result cardinality where both can express
   the query (the engines share nothing but the input document). *)
let test_cross_engine_agreement () =
  let pairs =
    [ ("Q1", Gql_workload.Queries.q1_src, Gql_workload.Queries.q1_xpath, bib);
      ("Q2", Gql_workload.Queries.q2_src, Gql_workload.Queries.q2_xpath, bib);
      ("Q3", Gql_workload.Queries.q3_src, Gql_workload.Queries.q3_xpath, folks);
      ("Q5", Gql_workload.Queries.q5_src, Gql_workload.Queries.q5_xpath, grocer);
      ("Q6", Gql_workload.Queries.q6_src, Gql_workload.Queries.q6_xpath, folks);
      ("Q7", Gql_workload.Queries.q7_src, Gql_workload.Queries.q7_xpath, bib) ]
  in
  List.iter
    (fun (name, gl, xp, db) ->
      let gl_count =
        List.length (Gql_core.Gql.run_xmlgl_text db gl).Gql_xml.Tree.children
      in
      let xp_count = List.length (Gql_core.Gql.xpath_select db xp) in
      check_int (name ^ " agree") xp_count gl_count)
    pairs

let test_q4_join_agreement () =
  (* Q4's construction emits one origin element per (product, vendor
     pair); the XPath equivalent counts products with a resolvable
     vendor.  Compare on distinct products. *)
  let out = Gql_core.Gql.run_xmlgl_text grocer Gql_workload.Queries.q4_src in
  let xp = List.length (Gql_core.Gql.xpath_select grocer Gql_workload.Queries.q4_xpath) in
  check_int "every product resolves" xp (List.length out.Gql_xml.Tree.children)

let test_q8_ordered_agreement () =
  let gl =
    List.length (Gql_core.Gql.run_xmlgl_text bib Gql_workload.Queries.q8_src).Gql_xml.Tree.children
  in
  let xp = List.length (Gql_core.Gql.xpath_select bib Gql_workload.Queries.q8_xpath) in
  check_int "ordered agree" xp gl

(* Golden output: a fixed small database and the aggregation figure. *)
let test_golden_q3 () =
  let xml =
    {|<people>
        <PERSON><firstname>Ada</firstname><lastname>L</lastname><FULLADDR><city>London</city></FULLADDR></PERSON>
        <PERSON><firstname>Alan</firstname><lastname>T</lastname></PERSON>
      </people>|}
  in
  let db = Gql_core.Gql.load_xml_string xml in
  let out = Gql_core.Gql.run_xmlgl_text db Gql_workload.Queries.q3_src in
  let expected =
    "<RESULT><PERSON><firstname>Ada</firstname><lastname>L</lastname></PERSON></RESULT>"
  in
  Alcotest.(check string) "golden" expected (Gql_xml.Printer.element_to_string out)

let test_golden_q10 () =
  (* fixed restaurant base: 2 restaurants, one offering *)
  let g = Gql_data.Graph.create () in
  let module G = Gql_data.Graph in
  let r1 = G.add_complex g "Restaurant" in
  let r2 = G.add_complex g "Restaurant" in
  let m = G.add_complex g "Menu" in
  G.add_root g r1;
  ignore r2;
  G.link g ~src:r1 ~dst:m (G.rel_edge "offers");
  let db = Gql_core.Gql.of_graph g in
  let _ = Gql_core.Gql.run_wglog_text db Gql_workload.Queries.q10_src in
  let rl = G.nodes_labelled g "rest-list" in
  check_int "one list" 1 (List.length rl);
  let members = List.filter (fun (n, _) -> n = "member") (G.rels g (List.hd rl)) in
  check "only r1 collected" true (List.map snd members = [ r1 ])

(* E2 in miniature: DTD and XML-GL schema agree on a 60-document corpus. *)
let test_schema_agreement_corpus () =
  let s = Gql_xmlgl.Schema.of_dtd Gql_workload.Gen.book_dtd in
  let agree = ref 0 and total = ref 0 in
  for seed = 1 to 30 do
    List.iter
      (fun rate ->
        incr total;
        let doc = Gql_workload.Gen.bibliography ~seed ~defect_rate:rate 8 in
        let dtd_verdict = Gql_dtd.Validate.is_valid Gql_workload.Gen.book_dtd doc in
        let g, _ = Gql_data.Codec.encode doc in
        let gl_verdict = Gql_xmlgl.Schema.is_valid s g in
        if dtd_verdict = gl_verdict then incr agree)
      [ 0.0; 0.6 ]
  done;
  check_int "full agreement" !total !agree

(* Text -> parse -> render-as-diagram -> SVG for every suite query: the
   visual pipeline never fails on legal programs. *)
let test_visual_pipeline () =
  List.iter
    (fun (e : Gql_workload.Queries.entry) ->
      match e.kind with
      | `Xmlgl p ->
        List.iter
          (fun r ->
            let svg = Gql_visual.Svg.render_auto (Gql_visual.Builders.of_xmlgl_rule r) in
            check (e.name ^ " svg") true (String.length svg > 100))
          (Lazy.force p).Gql_xmlgl.Ast.rules
      | `Wglog p ->
        List.iter
          (fun r ->
            let svg = Gql_visual.Svg.render_auto (Gql_visual.Builders.of_wglog_rule r) in
            check (e.name ^ " svg") true (String.length svg > 100))
          (Lazy.force p).Gql_wglog.Ast.rules)
    Gql_workload.Queries.suite

(* Full pipeline property: on random trees, Q-like queries through text,
   algebra and matcher give identical results. *)
let prop_full_pipeline =
  QCheck.Test.make ~name:"text->engine = text->algebra on random docs" ~count:10
    QCheck.(make Gen.(int_range 1 20))
    (fun seed ->
      let doc = Gql_workload.Gen.random_tree ~seed 60 in
      let db = Gql_core.Gql.of_document doc in
      let src = {|xmlgl
rule
query
  node $a elem item
  node $b elem *
  edge $a $b
construct
  node c copy $b
  root c
end
|} in
      let p = Gql_core.Gql.parse_xmlgl src in
      let q = (List.hd p.Gql_xmlgl.Ast.rules).Gql_xmlgl.Ast.query in
      let m = List.sort compare (List.map Array.to_list (Gql_xmlgl.Matching.run db.Gql_core.Gql.graph q)) in
      let a = List.sort compare (List.map Array.to_list (Gql_algebra.Exec.run_xmlgl db.Gql_core.Gql.graph q)) in
      m = a)

let () =
  Alcotest.run "integration"
    [
      ( "suite",
        [
          Alcotest.test_case "all queries run" `Quick test_suite_runs;
          Alcotest.test_case "cross-engine agreement" `Quick test_cross_engine_agreement;
          Alcotest.test_case "q4 join agreement" `Quick test_q4_join_agreement;
          Alcotest.test_case "q8 ordered agreement" `Quick test_q8_ordered_agreement;
        ] );
      ( "golden",
        [
          Alcotest.test_case "q3 aggregation figure" `Quick test_golden_q3;
          Alcotest.test_case "q10 wglog figure" `Quick test_golden_q10;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "schema agreement corpus" `Quick test_schema_agreement_corpus;
          Alcotest.test_case "visual pipeline" `Quick test_visual_pipeline;
          QCheck_alcotest.to_alcotest prop_full_pipeline;
        ] );
    ]
