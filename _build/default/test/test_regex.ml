(* Tests for Gql_regex: syntax algebra, the NFA engine, the char-regex
   front-end (cross-checked against the derivative matcher) and Glushkov
   automata for DTD content models. *)

open Gql_regex

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Syntax ---------------------------------------------------------- *)

let test_nullable () =
  let open Syntax in
  check "eps nullable" true (nullable eps);
  check "empty not nullable" false (nullable empty);
  check "sym not nullable" false (nullable (sym 'a'));
  check "star nullable" true (nullable (star (sym 'a')));
  check "plus of nullable" true (nullable (plus (opt (sym 'a'))));
  check "seq needs both" false (nullable (seq (sym 'a') (star (sym 'b'))));
  check "alt needs one" true (nullable (alt (sym 'a') eps))

let test_smart_constructors () =
  let open Syntax in
  check "seq empty = empty" true (seq empty (sym 'a') = empty);
  check "seq eps identity" true (seq eps (sym 'a') = sym 'a');
  check "alt empty identity" true (alt empty (sym 'a') = sym 'a');
  check "alt idempotent" true (alt (sym 'a') (sym 'a') = sym 'a');
  check "star of star" true (star (star (sym 'a')) = star (sym 'a'));
  check "star of eps" true (star eps = eps);
  check "opt of star collapses" true (opt (star (sym 'a')) = star (sym 'a'))

let test_symbols_order () =
  let open Syntax in
  let re = seq (sym 1) (alt (sym 2) (seq (sym 3) (star (sym 4)))) in
  Alcotest.(check (list int)) "left-to-right" [ 1; 2; 3; 4 ] (symbols re)

let test_to_string () =
  let open Syntax in
  Alcotest.(check string) "alt/seq precedence" "a b|c"
    (to_string (String.make 1) (alt (seq (sym 'a') (sym 'b')) (sym 'c')));
  Alcotest.(check string) "star on group" "(a b)*"
    (to_string (String.make 1) (star (seq (sym 'a') (sym 'b'))))

(* --- Chre ------------------------------------------------------------ *)

let m pat s = Chre.matches (Chre.compile pat) s
let srch pat s = Chre.search (Chre.compile pat) s

let test_literal () =
  check "exact" true (m "abc" "abc");
  check "partial no" false (m "abc" "abcd");
  check "empty pattern, empty subject" true (m "" "");
  check "empty pattern, non-empty" false (m "" "x")

let test_operators () =
  check "star zero" true (m "a*" "");
  check "star many" true (m "a*" "aaaa");
  check "plus needs one" false (m "a+" "");
  check "plus many" true (m "a+" "aaa");
  check "opt present" true (m "ab?c" "abc");
  check "opt absent" true (m "ab?c" "ac");
  check "alt left" true (m "cat|dog" "cat");
  check "alt right" true (m "cat|dog" "dog");
  check "alt neither" false (m "cat|dog" "cow");
  check "group star" true (m "(ab)*" "ababab");
  check "group star partial" false (m "(ab)*" "aba")

let test_classes () =
  check "dot any" true (m "a.c" "axc");
  check "dot not empty" false (m "a.c" "ac");
  check "range low" true (m "[a-z]+" "hello");
  check "range reject" false (m "[a-z]+" "Hello");
  check "negated" true (m "[^0-9]+" "abc");
  check "negated reject" false (m "[^0-9]+" "ab1");
  check "multi range" true (m "[a-zA-Z0-9_]+" "Mixed_Case99");
  check "literal dash" true (m "[a-]+" "a-a");
  check "digit escape" true (m "\\d+" "12345");
  check "word escape" true (m "\\w+" "ab_9");
  check "space escape" true (m "a\\sb" "a b")

let test_escapes () =
  check "escaped dot" true (m "a\\.c" "a.c");
  check "escaped dot rejects" false (m "a\\.c" "axc");
  check "escaped star" true (m "a\\*" "a*");
  check "escaped backslash" true (m "a\\\\b" "a\\b")

let test_paper_patterns () =
  (* the patterns of the supplied text's examples *)
  let van = Chre.compile "Van.*" in
  check "VanDam" true (Chre.matches van "VanDam");
  check "DeRuiter no" false (Chre.matches van "DeRuiter");
  let holland = Chre.compile "[hH]olland" in
  check "holland" true (Chre.matches holland "holland");
  check "Holland" true (Chre.matches holland "Holland");
  check "search in sentence" true (Chre.search holland "in Holland today")

let test_search () =
  check "substring" true (srch "ell" "hello");
  check "no substring" false (srch "elf" "hello");
  check "search empty pattern" true (srch "" "anything");
  check "anchored vs search" false (m "ell" "hello")

let test_case_insensitive () =
  let t = Chre.compile ~case_insensitive:true "abc" in
  check "ci upper" true (Chre.matches t "ABC");
  check "ci mixed" true (Chre.matches t "AbC");
  let cls = Chre.compile ~case_insensitive:true "[a-z]+" in
  check "ci class" true (Chre.matches cls "HELLO")

let test_bounded_repetition () =
  check "exactly" true (m "a{3}" "aaa");
  check "exactly under" false (m "a{3}" "aa");
  check "exactly over" false (m "a{3}" "aaaa");
  check "at least" true (m "a{2,}" "aaaaa");
  check "at least under" false (m "a{2,}" "a");
  check "range low" true (m "a{1,3}" "a");
  check "range high" true (m "a{1,3}" "aaa");
  check "range over" false (m "a{1,3}" "aaaa");
  check "zero min" true (m "a{0,2}b" "b");
  check "group bound" true (m "(ab){2}" "abab");
  check "bound then more" true (m "a{2}b+" "aabbb");
  let bad p =
    match Chre.compile p with
    | _ -> false
    | exception Chre.Parse_error _ -> true
  in
  check "empty braces" true (bad "a{}");
  check "inverted" true (bad "a{3,1}");
  check "huge bound" true (bad "a{9999}");
  check "unclosed" true (bad "a{2")

let test_parse_errors () =
  let bad p =
    match Chre.compile p with
    | _ -> false
    | exception Chre.Parse_error _ -> true
  in
  check "dangling star" true (bad "*a");
  check "unbalanced paren" true (bad "(ab");
  check "unbalanced close" true (bad "ab)");
  check "unterminated class" true (bad "[abc");
  check "dangling escape" true (bad "ab\\");
  check "compile_opt none" true (Chre.compile_opt "(" = None);
  check "compile_opt some" true (Chre.compile_opt "a" <> None)

(* Property: the NFA engine agrees with the Brzozowski-derivative
   reference on random patterns and subjects. *)
let pattern_gen =
  (* Random well-formed patterns over a tiny alphabet. *)
  let open QCheck.Gen in
  let rec gen depth =
    if depth = 0 then
      oneof
        [ map (fun c -> String.make 1 c) (oneofl [ 'a'; 'b'; 'c' ]); return "." ]
    else
      frequency
        [
          (3, gen 0);
          (2, map2 (fun a b -> a ^ b) (gen (depth - 1)) (gen (depth - 1)));
          (2, map2 (fun a b -> Printf.sprintf "(%s|%s)" a b) (gen (depth - 1)) (gen (depth - 1)));
          (1, map (fun a -> Printf.sprintf "(%s)*" a) (gen (depth - 1)));
          (1, map (fun a -> Printf.sprintf "(%s)+" a) (gen (depth - 1)));
          (1, map (fun a -> Printf.sprintf "(%s)?" a) (gen (depth - 1)));
        ]
  in
  gen 3

let subject_gen =
  QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_bound 8))

let prop_nfa_vs_derivative =
  QCheck.Test.make ~name:"nfa agrees with derivative matcher" ~count:500
    (QCheck.make (QCheck.Gen.pair pattern_gen subject_gen))
    (fun (pat, subject) ->
      let t = Chre.compile pat in
      Chre.matches t subject = Chre.matches_reference t subject)

let prop_nullable_matches_empty =
  QCheck.Test.make ~name:"nullable = matches empty string" ~count:300
    (QCheck.make pattern_gen)
    (fun pat ->
      let t = Chre.compile pat in
      Chre.matches t "" = Syntax.nullable (Chre.ast t))

(* --- Glushkov --------------------------------------------------------- *)

let book_model =
  (* title? price AUTHOR-star *)
  Syntax.(seq (opt (sym "title")) (seq (sym "price") (star (sym "AUTHOR"))))

let test_glushkov_accepts () =
  let auto = Glushkov.build book_model in
  check "full" true (Glushkov.accepts auto [ "title"; "price"; "AUTHOR"; "AUTHOR" ]);
  check "no title" true (Glushkov.accepts auto [ "price" ]);
  check "missing price" false (Glushkov.accepts auto [ "title" ]);
  check "title after price" false (Glushkov.accepts auto [ "price"; "title" ]);
  check "author before price" false (Glushkov.accepts auto [ "AUTHOR"; "price" ]);
  check "empty rejected" false (Glushkov.accepts auto [])

let test_glushkov_nullable () =
  let auto = Glushkov.build Syntax.(star (sym "x")) in
  check "star accepts empty" true (Glushkov.accepts auto []);
  check "star accepts many" true (Glushkov.accepts auto [ "x"; "x" ])

let test_glushkov_deterministic () =
  check "book model deterministic" true
    (Glushkov.deterministic (Glushkov.build book_model));
  (* (a, b) | (a, c) is the classic 1-ambiguous model *)
  let ambiguous =
    Syntax.(alt (seq (sym "a") (sym "b")) (seq (sym "a") (sym "c")))
  in
  check "ambiguous detected" false
    (Glushkov.deterministic (Glushkov.build ambiguous));
  (* a(b|c) is fine *)
  let fine = Syntax.(seq (sym "a") (alt (sym "b") (sym "c"))) in
  check "factored fine" true (Glushkov.deterministic (Glushkov.build fine))

let test_glushkov_expected_first () =
  let auto = Glushkov.build book_model in
  Alcotest.(check (list string))
    "first symbols" [ "title"; "price" ]
    (Glushkov.expected_first auto)

(* Property: Glushkov acceptance agrees with NFA word acceptance. *)
let symre_gen =
  let open QCheck.Gen in
  let syms = [ "a"; "b"; "c" ] in
  let rec gen depth =
    if depth = 0 then map Syntax.sym (oneofl syms)
    else
      frequency
        [
          (3, gen 0);
          (2, map2 Syntax.seq (gen (depth - 1)) (gen (depth - 1)));
          (2, map2 Syntax.alt (gen (depth - 1)) (gen (depth - 1)));
          (1, map Syntax.star (gen (depth - 1)));
          (1, map Syntax.plus (gen (depth - 1)));
          (1, map Syntax.opt (gen (depth - 1)));
        ]
  in
  gen 3

let word_gen = QCheck.Gen.(list_size (int_bound 6) (oneofl [ "a"; "b"; "c" ]))

let prop_glushkov_vs_nfa =
  QCheck.Test.make ~name:"glushkov agrees with thompson nfa" ~count:500
    (QCheck.make (QCheck.Gen.pair symre_gen word_gen))
    (fun (re, word) ->
      let auto = Glushkov.build re in
      let nfa = Nfa.compile (fun s tok -> s = tok) re in
      Glushkov.accepts auto word = Nfa.run_list nfa word)

let () =
  Alcotest.run "gql_regex"
    [
      ( "syntax",
        [
          Alcotest.test_case "nullable" `Quick test_nullable;
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "symbols order" `Quick test_symbols_order;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "chre",
        [
          Alcotest.test_case "literal" `Quick test_literal;
          Alcotest.test_case "operators" `Quick test_operators;
          Alcotest.test_case "classes" `Quick test_classes;
          Alcotest.test_case "escapes" `Quick test_escapes;
          Alcotest.test_case "bounded repetition" `Quick test_bounded_repetition;
          Alcotest.test_case "paper patterns" `Quick test_paper_patterns;
          Alcotest.test_case "search" `Quick test_search;
          Alcotest.test_case "case insensitive" `Quick test_case_insensitive;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "glushkov",
        [
          Alcotest.test_case "accepts" `Quick test_glushkov_accepts;
          Alcotest.test_case "nullable" `Quick test_glushkov_nullable;
          Alcotest.test_case "deterministic" `Quick test_glushkov_deterministic;
          Alcotest.test_case "expected first" `Quick test_glushkov_expected_first;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_nfa_vs_derivative;
          QCheck_alcotest.to_alcotest prop_nullable_matches_empty;
          QCheck_alcotest.to_alcotest prop_glushkov_vs_nfa;
        ] );
    ]

let _ = check_int
