(* Tests for Gql_algebra: plan construction, EXPLAIN rendering, and the
   central equivalence property — plans (both strategies) produce the
   same bindings as the direct Homo matcher. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let people_doc n = Gql_workload.Gen.people ~seed:3 n
let people n = fst (Gql_data.Codec.encode (people_doc n))

let q_src = Gql_workload.Queries.q3_src
let query_of src =
  match (Gql_lang.Xmlgl_text.parse_program src).Gql_xmlgl.Ast.rules with
  | r :: _ -> r.Gql_xmlgl.Ast.query
  | [] -> Alcotest.fail "no rule"

let normalise bs = List.sort compare (List.map Array.to_list bs)

let test_plan_structure () =
  let data = people 20 in
  let q = query_of q_src in
  let compiled = Gql_xmlgl.Matching.compile data q in
  let job = Gql_algebra.Planner.job_of_xmlgl compiled in
  let plan = Gql_algebra.Planner.build data job in
  (* 4 pattern nodes: 1 scan + 3 expands + 1 residual filter = 5 ops *)
  check_int "operator count" 5 (Gql_algebra.Plan.size plan);
  check_int "all vars bound" 4
    (List.length (List.sort_uniq compare (Gql_algebra.Plan.vars plan)))

let test_explain () =
  let data = people 10 in
  let s = Gql_algebra.Exec.explain_xmlgl data (query_of q_src) in
  check "mentions scan" true (Gql_regex.Chre.search (Gql_regex.Chre.compile "scan") s);
  check "mentions expand" true (Gql_regex.Chre.search (Gql_regex.Chre.compile "expand") s);
  check "mentions filter" true (Gql_regex.Chre.search (Gql_regex.Chre.compile "filter") s)

let test_greedy_starts_selective () =
  (* greedy must not start from the most common node type *)
  let data = people 30 in
  let q = query_of q_src in
  let s = Gql_algebra.Exec.explain_xmlgl ~strategy:`Greedy data q in
  (* the deepest line (innermost op) is the scan; it must not scan the
     most frequent label.  We just require a single scan (connected
     pattern => no cross products). *)
  let count_scans =
    List.length
      (List.filter
         (fun l -> Gql_regex.Chre.search (Gql_regex.Chre.compile "scan") l)
         (String.split_on_char '\n' s))
  in
  check_int "single scan" 1 count_scans

let agree src data =
  let q = query_of src in
  let reference = normalise (Gql_xmlgl.Matching.run data q) in
  let greedy = normalise (Gql_algebra.Exec.run_xmlgl ~strategy:`Greedy data q) in
  let fixed = normalise (Gql_algebra.Exec.run_xmlgl ~strategy:`Fixed data q) in
  reference = greedy && reference = fixed

let test_equivalence_q3 () = check "q3" true (agree Gql_workload.Queries.q3_src (people 25))
let test_equivalence_q6 () = check "q6 (negation)" true (agree Gql_workload.Queries.q6_src (people 25))
let test_equivalence_q9 () = check "q9" true (agree Gql_workload.Queries.q9_src (people 25))

let test_equivalence_bib () =
  let data = fst (Gql_data.Codec.encode (Gql_workload.Gen.bibliography ~seed:9 15)) in
  check "q2 (selection)" true (agree Gql_workload.Queries.q2_src data);
  check "q7 (deep)" true (agree Gql_workload.Queries.q7_src data);
  check "q8 (ordered)" true (agree Gql_workload.Queries.q8_src data)

let test_equivalence_greengrocer () =
  let data = fst (Gql_data.Codec.encode (Gql_workload.Gen.greengrocer ~seed:2 20)) in
  check "q4 (value join)" true (agree Gql_workload.Queries.q4_src data);
  check "q5 (regex)" true (agree Gql_workload.Queries.q5_src data)

(* disconnected pattern -> cross product *)
let test_cross_product () =
  let data = people 5 in
  let src = {|xmlgl
rule
query
  node $a elem firstname
  node $b elem lastname
construct
  node c new pair
  root c
end
|} in
  let q = query_of src in
  let res = Gql_algebra.Exec.run_xmlgl data q in
  check_int "5 x 5 pairs" 25 (List.length res);
  let s = Gql_algebra.Exec.explain_xmlgl data q in
  check "uses cross" true (Gql_regex.Chre.search (Gql_regex.Chre.compile "cross") s);
  check "matches reference" true (agree src data)

(* Property over random people-db sizes: both strategies agree with the
   matcher on the full suite of XML-GL queries. *)
let prop_strategies_agree =
  QCheck.Test.make ~name:"plans agree with matcher on Q3/Q6" ~count:15
    QCheck.(make Gen.(int_range 3 25))
    (fun n ->
      let data = people n in
      agree Gql_workload.Queries.q3_src data
      && agree Gql_workload.Queries.q6_src data)

let () =
  Alcotest.run "gql_algebra"
    [
      ( "planner",
        [
          Alcotest.test_case "plan structure" `Quick test_plan_structure;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "greedy single scan" `Quick test_greedy_starts_selective;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "q3 people" `Quick test_equivalence_q3;
          Alcotest.test_case "q6 negation" `Quick test_equivalence_q6;
          Alcotest.test_case "q9 grouping" `Quick test_equivalence_q9;
          Alcotest.test_case "bibliography queries" `Quick test_equivalence_bib;
          Alcotest.test_case "greengrocer queries" `Quick test_equivalence_greengrocer;
          Alcotest.test_case "cross product" `Quick test_cross_product;
          QCheck_alcotest.to_alcotest prop_strategies_agree;
        ] );
    ]
