test/test_workload.ml: Alcotest Array Gql_data Gql_dtd Gql_wglog Gql_workload Gql_xml Gql_xmlgl Gql_xpath Lazy List
