test/test_visual.mli:
