test/test_dtd.ml: Alcotest Gen Gql_dtd Gql_regex Gql_workload Gql_xml List QCheck QCheck_alcotest
