test/test_xpath.ml: Alcotest Gql_xml Gql_xpath List Printf String
