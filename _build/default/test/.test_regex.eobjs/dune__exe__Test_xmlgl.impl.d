test/test_xmlgl.ml: Alcotest Array Ast Engine Gql_data Gql_dtd Gql_lang Gql_regex Gql_workload Gql_xml Gql_xmlgl List Matching Option Predicate Printf Schema
