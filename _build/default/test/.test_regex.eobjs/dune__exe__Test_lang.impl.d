test/test_lang.ml: Alcotest Array Gen Gql_lang Gql_regex Gql_wglog Gql_workload Gql_xmlgl List Printf QCheck QCheck_alcotest Result String
