test/test_algebra.ml: Alcotest Array Gen Gql_algebra Gql_data Gql_lang Gql_regex Gql_workload Gql_xmlgl List QCheck QCheck_alcotest String
