test/test_xml.ml: Alcotest Char Gen Gql_xml Ids List Parser Printer Printf QCheck QCheck_alcotest String Tree
