test/test_integration.ml: Alcotest Array Gen Gql_algebra Gql_core Gql_data Gql_dtd Gql_visual Gql_wglog Gql_workload Gql_xml Gql_xmlgl Lazy List QCheck QCheck_alcotest String
