test/test_crossengine.ml: Alcotest Array Gen Gql_algebra Gql_core Gql_data Gql_lang Gql_wglog Gql_workload Gql_xml Gql_xmlgl Lazy List Printf QCheck QCheck_alcotest
