test/test_wglog.mli:
