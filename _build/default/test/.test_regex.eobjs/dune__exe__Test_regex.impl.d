test/test_regex.ml: Alcotest Chre Glushkov Gql_regex Nfa Printf QCheck QCheck_alcotest String Syntax
