test/test_graph.ml: Alcotest Algo Array Digraph Fun Gql_graph Gql_regex Homo List QCheck QCheck_alcotest Regpath String
