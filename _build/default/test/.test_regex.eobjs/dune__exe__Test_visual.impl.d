test/test_visual.ml: Alcotest Ascii Builders Diagram Filename Gql_data Gql_lang Gql_regex Gql_visual Gql_wglog Gql_workload Gql_xml Gql_xmlgl Layout Lazy List Printf Svg Sys
