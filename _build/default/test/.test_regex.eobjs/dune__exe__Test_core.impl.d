test/test_core.ml: Alcotest Gql_core Gql_regex Gql_wglog Gql_workload Gql_xml Gql_xmlgl List String
