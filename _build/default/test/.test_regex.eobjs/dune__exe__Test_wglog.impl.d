test/test_wglog.ml: Alcotest Array Ast Eval Gql_data Gql_lang Gql_wglog Gql_workload Graph List Schema Value
