test/test_crossengine.mli:
