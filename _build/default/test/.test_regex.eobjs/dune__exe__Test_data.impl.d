test/test_data.ml: Alcotest Codec Fun Gen Gql_data Gql_regex Gql_workload Gql_xml Graph List QCheck QCheck_alcotest Value
