test/test_xmlgl.mli:
