(* Tests for Gql_xml: parser, printer round-trip, tree utilities, ID
   index. *)

open Gql_xml

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let parse s = Parser.parse_document s
let root s = (parse s).Tree.root

(* --- parser ----------------------------------------------------------- *)

let test_minimal () =
  let e = root "<a/>" in
  check_str "name" "a" e.Tree.name;
  check_int "no children" 0 (List.length e.Tree.children)

let test_nesting () =
  let e = root "<a><b><c>deep</c></b><d/></a>" in
  check_int "two children" 2 (List.length (Tree.child_elements e));
  check_str "text content" "deep" (Tree.text_content_el e)

let test_attributes () =
  let e = root {|<a x="1" y="two &amp; three"/>|} in
  check "x" true (Tree.attr e "x" = Some "1");
  check "entity in attr" true (Tree.attr e "y" = Some "two & three");
  check "missing" true (Tree.attr e "z" = None)

let test_single_quotes () =
  let e = root {|<a x='single'/>|} in
  check "single-quoted" true (Tree.attr e "x" = Some "single")

let test_entities () =
  let e = root "<a>&lt;tag&gt; &amp; &quot;text&quot; &apos;</a>" in
  check_str "decoded" "<tag> & \"text\" '" (Tree.text_content_el e)

let test_char_refs () =
  let e = root "<a>&#65;&#x42;</a>" in
  check_str "decimal and hex" "AB" (Tree.text_content_el e);
  let u = root "<a>&#233;</a>" in
  check_str "utf-8 encoding" "\xc3\xa9" (Tree.text_content_el u)

let test_cdata () =
  let e = root "<a><![CDATA[<not>&parsed;]]></a>" in
  check_str "cdata raw" "<not>&parsed;" (Tree.text_content_el e)

let test_comments_pis () =
  let e = root "<a><!-- note --><?php echo ?><b/></a>" in
  check_int "three children" 3 (List.length e.Tree.children);
  (match e.Tree.children with
  | [ Tree.Comment c; Tree.Pi (t, _); Tree.Element _ ] ->
    check_str "comment" " note " c;
    check_str "pi target" "php" t
  | _ -> Alcotest.fail "unexpected shape");
  check_int "one element child" 1 (List.length (Tree.child_elements e))

let test_xml_decl_prolog () =
  let d = parse "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!-- c -->\n<a/>" in
  check_str "root" "a" d.Tree.root.Tree.name

let test_doctype () =
  let d = parse {|<!DOCTYPE bib SYSTEM "bib.dtd"><bib/>|} in
  (match d.Tree.doctype with
  | Some dt ->
    check_str "name" "bib" dt.Tree.dt_name;
    check "system" true (dt.Tree.system_id = Some "bib.dtd")
  | None -> Alcotest.fail "no doctype");
  let d2 = parse "<!DOCTYPE a [<!ELEMENT a (b*)> <!ELEMENT b (#PCDATA)>]><a/>" in
  match d2.Tree.doctype with
  | Some { Tree.internal_subset = Some s; _ } ->
    check "subset captured" true
      (String.length s > 10 && String.sub s 0 9 = "<!ELEMENT")
  | _ -> Alcotest.fail "no internal subset"

let test_mixed_content () =
  let e = root "<p>hello <b>world</b>!</p>" in
  check_int "three nodes" 3 (List.length e.Tree.children);
  check_str "string value" "hello world!" (Tree.text_content_el e);
  check_str "own text" "hello !" (Tree.own_text e)

let test_errors () =
  let bad s =
    match Parser.parse_document s with
    | _ -> false
    | exception Parser.Error _ -> true
  in
  check "unclosed" true (bad "<a>");
  check "mismatch" true (bad "<a></b>");
  check "junk after root" true (bad "<a/><b/>");
  check "duplicate attr" true (bad {|<a x="1" x="2"/>|});
  check "lt in attr" true (bad {|<a x="<"/>|});
  check "unknown entity" true (bad "<a>&nope;</a>");
  check "bad charref" true (bad "<a>&#xFFFFFFFF;</a>");
  check "empty input" true (bad "");
  check "attr without value" true (bad "<a x/>")

let test_error_position () =
  match Parser.parse_document "<a>\n<b></c>\n</a>" with
  | _ -> Alcotest.fail "should not parse"
  | exception Parser.Error (_, pos) -> check_int "line" 2 pos.Parser.line

let test_fragment () =
  let e = Parser.parse_fragment "<x><y/></x>" in
  check_str "fragment root" "x" e.Tree.name

(* --- printer ---------------------------------------------------------- *)

let test_print_escapes () =
  let e = Tree.element ~attrs:[ ("q", "a\"b") ] "t" [ Tree.text "a<b&c" ] in
  let s = Printer.element_to_string e in
  check "escaped text" true (s = {|<t q="a&quot;b">a&lt;b&amp;c</t>|})

let test_print_parse_roundtrip () =
  let src = {|<a x="1"><b>text &amp; more</b><c/><d y="z">mixed<e/>tail</d></a>|} in
  let d = parse src in
  let printed = Printer.to_string d in
  let d2 = parse printed in
  check "round trip equal" true (Tree.equal_element d.Tree.root d2.Tree.root)

let test_pretty_no_mixed_damage () =
  (* pretty printing must not invent whitespace inside mixed content *)
  let d = parse "<a><p>hello <b>world</b></p></a>" in
  let pretty = Printer.to_string_pretty d in
  let d2 = parse pretty in
  match Tree.find_first "p" d2.Tree.root with
  | Some p -> check_str "mixed preserved" "hello world" (Tree.text_content_el p)
  | None -> Alcotest.fail "p lost"

(* Random tree generator for round-trip property. *)
let tree_gen =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "item"; "x-y"; "ns:t" ] in
  let attr_val =
    string_size ~gen:(oneofl [ 'v'; '&'; '<'; '"'; ' '; 'z' ]) (int_bound 5)
  in
  let text_gen =
    string_size ~gen:(oneofl [ 't'; '&'; '<'; '>'; ' '; '\n'; 'x' ]) (int_range 1 6)
  in
  (* Adjacent text children would merge on reparse; keep generated trees
     in normal form by fusing them up front. *)
  let rec normalise = function
    | Tree.Text a :: Tree.Text b :: rest -> normalise (Tree.Text (a ^ b) :: rest)
    | x :: rest -> x :: normalise rest
    | [] -> []
  in
  let rec gen depth =
    if depth = 0 then map (fun n -> Tree.element n []) name
    else
      map3
        (fun n attrs children -> Tree.element ~attrs n (normalise children))
        name
        (map
           (fun vs -> List.mapi (fun i v -> (Printf.sprintf "a%d" i, v)) vs)
           (list_size (int_bound 3) attr_val))
        (list_size (int_bound 3)
           (frequency
              [
                (2, map (fun e -> Tree.Element e) (gen (depth - 1)));
                (1, map (fun t -> Tree.Text t) text_gen);
                ( 1,
                  map
                    (fun c -> Tree.Comment c)
                    (string_size ~gen:(oneofl [ 'c'; ' ' ]) (int_bound 4)) );
              ]))
  in
  gen 3

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print then parse is identity" ~count:300
    (QCheck.make tree_gen)
    (fun e ->
      let printed = Printer.element_to_string e in
      let reparsed = Parser.parse_fragment printed in
      Tree.equal_element e reparsed)

(* Robustness: arbitrary bytes either parse or raise Parser.Error —
   never crash, never loop. *)
let prop_parser_total =
  QCheck.Test.make ~name:"parser is total on random bytes" ~count:500
    QCheck.(make Gen.(string_size ~gen:(map Char.chr (int_range 9 126)) (int_bound 40)))
    (fun junk ->
      match Parser.parse_document junk with
      | _ -> true
      | exception Parser.Error _ -> true)

let prop_parser_total_marked =
  QCheck.Test.make ~name:"parser is total on markup-ish noise" ~count:500
    QCheck.(
      make
        Gen.(
          map (String.concat "")
            (list_size (int_bound 12)
               (oneofl
                  [ "<"; ">"; "</"; "/>"; "a"; "b"; "\""; "="; "&"; "&amp;";
                    "<!--"; "-->"; "<![CDATA["; "]]>"; "<?"; "?>"; " " ]))))
    (fun junk ->
      match Parser.parse_document junk with
      | _ -> true
      | exception Parser.Error _ -> true)

(* --- tree utilities ---------------------------------------------------- *)

let sample =
  root
    {|<bib><BOOK isbn="1"><title>T1</title><price>10</price></BOOK><BOOK isbn="2"><price>99</price></BOOK></bib>|}

let test_find_all () =
  check_int "books" 2 (List.length (Tree.find_all "BOOK" sample));
  check_int "titles" 1 (List.length (Tree.find_all "title" sample));
  check "find_first" true
    (match Tree.find_first "price" sample with
    | Some e -> Tree.text_content_el e = "10"
    | None -> false)

let test_paths () =
  let paths = ref [] in
  Tree.iter_nodes (fun p _ -> paths := p :: !paths) sample;
  let paths = List.rev !paths in
  check "root path" true (List.hd paths = []);
  List.iter
    (fun p -> check "node_at defined" true (Tree.node_at sample p <> None))
    paths;
  check "missing path" true (Tree.node_at sample [ 9; 9 ] = None);
  check_int "count" (Tree.count_nodes sample) (List.length paths)

let test_document_order () =
  check "prefix before extension" true (Tree.compare_paths [ 0 ] [ 0; 1 ] < 0);
  check "sibling order" true (Tree.compare_paths [ 0; 1 ] [ 0; 2 ] < 0);
  check "equal" true (Tree.compare_paths [ 1; 2 ] [ 1; 2 ] = 0)

let test_canonical_equal () =
  let a = root "<a x=\"1\" y=\"2\"><b/>  </a>" in
  let b = root "<a y=\"2\" x=\"1\"><!-- c --><b/></a>" in
  check "canonically equal" true (Tree.equal_canonical a b);
  let c = root "<a y=\"2\" x=\"1\"><b/>text</a>" in
  check "text significant" false (Tree.equal_canonical a c)

let test_depth () =
  check_int "depth" 3 (Tree.max_depth (root "<a><b><c><d/></c></b></a>"))

(* --- ids --------------------------------------------------------------- *)

let id_doc =
  root
    {|<g><n id="n1"/><n id="n2" ref="n1"/><n id="n3" ref="missing"/><n idrefs="n1 n2"/></g>|}

let test_ids_index () =
  let idx = Ids.build id_doc in
  check "resolve n1" true (Ids.resolve idx "n1" <> None);
  check "resolve missing" true (Ids.resolve idx "nope" = None);
  check_int "ids" 3 (List.length (Ids.all_ids idx));
  check_int "refs (incl idrefs list)" 4 (List.length idx.Ids.refs);
  check_int "dangling" 1 (List.length (Ids.dangling idx))

let test_duplicate_ids () =
  let d = root {|<g><a id="x"/><b id="x"/></g>|} in
  let idx = Ids.build d in
  Alcotest.(check (list string)) "dup" [ "x" ] idx.Ids.duplicates

let () =
  Alcotest.run "gql_xml"
    [
      ( "parser",
        [
          Alcotest.test_case "minimal" `Quick test_minimal;
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "single quotes" `Quick test_single_quotes;
          Alcotest.test_case "entities" `Quick test_entities;
          Alcotest.test_case "char refs" `Quick test_char_refs;
          Alcotest.test_case "cdata" `Quick test_cdata;
          Alcotest.test_case "comments and pis" `Quick test_comments_pis;
          Alcotest.test_case "xml decl" `Quick test_xml_decl_prolog;
          Alcotest.test_case "doctype" `Quick test_doctype;
          Alcotest.test_case "mixed content" `Quick test_mixed_content;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "error position" `Quick test_error_position;
          Alcotest.test_case "fragment" `Quick test_fragment;
        ] );
      ( "printer",
        [
          Alcotest.test_case "escapes" `Quick test_print_escapes;
          Alcotest.test_case "round trip" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "pretty keeps mixed" `Quick test_pretty_no_mixed_damage;
          QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
          QCheck_alcotest.to_alcotest prop_parser_total;
          QCheck_alcotest.to_alcotest prop_parser_total_marked;
        ] );
      ( "tree",
        [
          Alcotest.test_case "find" `Quick test_find_all;
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "document order" `Quick test_document_order;
          Alcotest.test_case "canonical equality" `Quick test_canonical_equal;
          Alcotest.test_case "depth" `Quick test_depth;
        ] );
      ( "ids",
        [
          Alcotest.test_case "index" `Quick test_ids_index;
          Alcotest.test_case "duplicates" `Quick test_duplicate_ids;
        ] );
    ]
