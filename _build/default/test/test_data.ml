(* Tests for Gql_data: value typing/comparison/arithmetic, XML->graph
   encoding (with ID/IDREF resolution), graph->XML decoding. *)

open Gql_data

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- values ------------------------------------------------------------- *)

let test_value_inference () =
  check "int" true (Value.of_string "42" = Value.Int 42);
  check "negative int" true (Value.of_string "-3" = Value.Int (-3));
  check "float" true (Value.of_string "2.19" = Value.Float 2.19);
  check "trimmed" true (Value.of_string " 7 " = Value.Int 7);
  check "bool" true (Value.of_string "true" = Value.Bool true);
  check "string stays" true (Value.of_string "12 monkeys" = Value.String "12 monkeys");
  check "empty stays" true (Value.of_string "" = Value.String "")

let test_value_compare () =
  check "numeric" true (Value.compare_values (Value.Int 2) (Value.Float 10.0) < 0);
  check "string numeric coercion" true
    (Value.compare_values (Value.String "0.79") (Value.Float 0.89) < 0);
  check "lexicographic" true
    (Value.compare_values (Value.String "apple") (Value.String "banana") < 0);
  check "equal across types" true
    (Value.equal_values (Value.Int 5) (Value.String "5"));
  check "not equal" false (Value.equal_values (Value.Int 5) (Value.String "five"))

let test_value_arith () =
  check "int add" true (Value.arith `Add (Value.Int 2) (Value.Int 3) = Some (Value.Int 5));
  check "float mul" true
    (Value.arith `Mul (Value.Float 2.0) (Value.Int 3) = Some (Value.Float 6.0));
  check "div by zero" true (Value.arith `Div (Value.Int 1) (Value.Int 0) = None);
  check "non-numeric" true
    (Value.arith `Add (Value.String "a") (Value.Int 1) = None);
  check "numeric strings" true
    (Value.arith `Add (Value.String "1") (Value.String "2") = Some (Value.Float 3.0))

let test_value_to_string () =
  check_str "int" "42" (Value.to_string (Value.Int 42));
  check_str "float integral" "2.0" (Value.to_string (Value.Float 2.0));
  check_str "string" "x" (Value.to_string (Value.String "x"))

(* --- encoding ------------------------------------------------------------ *)

let greengrocer_xml =
  {|<greengrocer>
      <products>
        <product><name>cabbage</name><price>0.59</price><vendor>DeRuiter</vendor></product>
        <product><name>cherry</name><price>2.19</price><vendor>Lafayette</vendor></product>
      </products>
      <vendors>
        <vendor><country>holland</country><name>DeRuiter</name></vendor>
        <vendor><country>france</country><name>Lafayette</name></vendor>
      </vendors>
    </greengrocer>|}

let g = Codec.encode_string greengrocer_xml

let test_encode_shape () =
  check_int "one root" 1 (List.length (Graph.roots g));
  let root = List.hd (Graph.roots g) in
  check "root label" true (Graph.label g root = Some "greengrocer");
  check_int "two sections" 2 (List.length (Graph.children g root));
  check_int "products found" 2 (List.length (Graph.nodes_labelled g "product"));
  check_int "vendors found" 4 (List.length (Graph.nodes_labelled g "vendor"))

let test_string_value () =
  let p = List.hd (Graph.nodes_labelled g "price") in
  check_str "price text" "0.59" (Graph.string_value g p);
  check "typed as float" true (Graph.node_value g p = Value.Float 0.59)

let test_children_order () =
  let prod = List.hd (Graph.nodes_labelled g "product") in
  let kids = Graph.children g prod in
  check_int "three children" 3 (List.length kids);
  let labels = List.filter_map (fun (c, _) -> Graph.label g c) kids in
  Alcotest.(check (list string)) "ordered" [ "name"; "price"; "vendor" ] labels

let test_attributes () =
  let g2 = Codec.encode_string {|<e a="1" b="x"/>|} in
  let root = List.hd (Graph.roots g2) in
  let attrs = Graph.attributes g2 root in
  check_int "two attrs" 2 (List.length attrs);
  check "typed attr" true (List.assoc "a" attrs = Value.Int 1)

let test_idref_resolution () =
  let g2 =
    Codec.encode_string
      {|<db><person id="p1" ref="p2"/><person id="p2"/></db>|}
  in
  let persons = Graph.nodes_labelled g2 "person" in
  check_int "two persons" 2 (List.length persons);
  let p1 =
    List.find
      (fun p ->
        List.exists (fun (a, v) -> a = "id" && Value.to_string v = "p1")
          (Graph.attributes g2 p))
      persons
  in
  match Graph.refs g2 p1 with
  | [ (name, target) ] ->
    check_str "ref edge name" "ref" name;
    check "target is p2" true
      (List.exists
         (fun (a, v) -> a = "id" && Value.to_string v = "p2")
         (Graph.attributes g2 target))
  | _ -> Alcotest.fail "expected one ref edge"

let test_no_ref_resolution_optout () =
  let doc =
    Gql_xml.Parser.parse_document {|<db><a id="p1" ref="p2"/><b id="p2"/></db>|}
  in
  let g2, _ = Codec.encode ~resolve_refs:false doc in
  let a = List.hd (Graph.nodes_labelled g2 "a") in
  check "no refs when disabled" true (Graph.refs g2 a = [])

let test_whitespace_dropped () =
  let g2 = Codec.encode_string "<a>\n  <b/>\n</a>" in
  let root = List.hd (Graph.roots g2) in
  check_int "whitespace not materialised" 1 (List.length (Graph.children g2 root))

let test_descendants () =
  let root = List.hd (Graph.roots g) in
  (* all complex + atom nodes below the root, minus attribute atoms *)
  check "many descendants" true (List.length (Graph.descendants g root) > 10)

(* --- decoding ------------------------------------------------------------- *)

let test_decode_roundtrip () =
  let src = {|<a x="1"><b>7</b><c><d>text</d></c></a>|} in
  let g2 = Codec.encode_string src in
  let root = List.hd (Graph.roots g2) in
  let decoded = Codec.decode g2 root in
  let original = (Gql_xml.Parser.parse_document src).Gql_xml.Tree.root in
  check "canonical equal" true (Gql_xml.Tree.equal_canonical original decoded)

let test_decode_refs () =
  let g2 =
    Codec.encode_string {|<db><x id="a" ref="b"/><x id="b"/></db>|}
  in
  let root = List.hd (Graph.roots g2) in
  let decoded = Codec.decode g2 root in
  let s = Gql_xml.Printer.element_to_string decoded in
  (* the ref edge must be rendered as matching id/idref attributes *)
  check "ref attribute present" true
    (Gql_regex.Chre.search (Gql_regex.Chre.compile "ref=") s)

let test_decode_cycle_safe () =
  (* a cyclic graph (possible after WG-Log derivation) must decode to a
     finite tree *)
  let g2 = Graph.create () in
  let a = Graph.add_complex g2 "a" in
  let b = Graph.add_complex g2 "b" in
  Graph.link g2 ~src:a ~dst:b (Graph.child_edge ~ord:0 "");
  Graph.link g2 ~src:b ~dst:a (Graph.child_edge ~ord:0 "");
  Graph.add_root g2 a;
  let decoded = Codec.decode g2 a in
  check "finite" true (Gql_xml.Tree.count_nodes decoded < 10)

(* Property: encoding never loses elements: element count in the tree =
   complex node count in the graph. *)
let prop_encode_counts =
  QCheck.Test.make ~name:"element count preserved by encoding" ~count:50
    QCheck.(make Gen.(int_range 1 30))
    (fun seed ->
      let doc = Gql_workload.Gen.random_tree ~seed (20 + seed) in
      let g2, _ = Codec.encode doc in
      let tree_elems =
        List.length (Gql_xml.Tree.descendant_elements doc.Gql_xml.Tree.root)
      in
      let graph_complex =
        List.length
          (List.filter
             (fun n -> not (Graph.is_atom g2 n))
             (List.init (Graph.n_nodes g2) Fun.id))
      in
      tree_elems = graph_complex)

(* Property: decode . encode preserves canonical structure on ref-free
   documents. *)
let prop_decode_encode_id =
  QCheck.Test.make ~name:"decode after encode is canonical identity" ~count:50
    QCheck.(make Gen.(int_range 1 30))
    (fun seed ->
      let doc = Gql_workload.Gen.random_tree ~seed ~ref_density:0.0 (15 + seed) in
      let g2, _ = Codec.encode doc in
      let root = List.hd (Graph.roots g2) in
      Gql_xml.Tree.equal_canonical doc.Gql_xml.Tree.root (Codec.decode g2 root))

let () =
  Alcotest.run "gql_data"
    [
      ( "value",
        [
          Alcotest.test_case "inference" `Quick test_value_inference;
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "arith" `Quick test_value_arith;
          Alcotest.test_case "to_string" `Quick test_value_to_string;
        ] );
      ( "encode",
        [
          Alcotest.test_case "shape" `Quick test_encode_shape;
          Alcotest.test_case "string value" `Quick test_string_value;
          Alcotest.test_case "children order" `Quick test_children_order;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "idref resolution" `Quick test_idref_resolution;
          Alcotest.test_case "resolution opt-out" `Quick test_no_ref_resolution_optout;
          Alcotest.test_case "whitespace" `Quick test_whitespace_dropped;
          Alcotest.test_case "descendants" `Quick test_descendants;
          QCheck_alcotest.to_alcotest prop_encode_counts;
        ] );
      ( "decode",
        [
          Alcotest.test_case "roundtrip" `Quick test_decode_roundtrip;
          Alcotest.test_case "refs" `Quick test_decode_refs;
          Alcotest.test_case "cycle safe" `Quick test_decode_cycle_safe;
          QCheck_alcotest.to_alcotest prop_decode_encode_id;
        ] );
    ]
