(* The command-line face of the library.

     gql run      -d data.xml query.gql        evaluate a query file
     gql validate -d data.xml [--dtd f.dtd]    DTD / embedded-DTD validation
     gql render   query.gql -o out.svg         draw a rule like the paper
     gql explain  -d data.xml query.gql        show the physical plan
     gql matrix                                the expressiveness table
     gql stats    -d data.xml                  data-graph statistics
     gql serve    --socket /tmp/gql.sock       resident query service
     gql client   --socket /tmp/gql.sock ...   talk to a running service

   Query files start with a header line: `xmlgl` or `wglog`. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let language_of = Gql_core.Gql.language_of_source

(* A snapshot file starts with the store magic; anything shorter or
   different is treated as XML. *)
let is_snapshot_file path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic 8 with
        | magic -> magic = "GQLSNAP1"
        | exception End_of_file -> false)

(* --- common args -------------------------------------------------------- *)

let data_arg =
  let doc = "XML document to load as the database." in
  Arg.(value & opt (some file) None & info [ "d"; "data" ] ~docv:"FILE" ~doc)

let query_arg =
  let doc = "Query file (textual XML-GL or WG-Log; header line selects)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY" ~doc)

let out_arg =
  let doc = "Output file." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let require_db data =
  match data with
  | Some f -> Gql_core.Gql.load_xml_file f
  | None -> failwith "this command needs --data FILE"

let wrap f =
  try f (); 0 with
  | Gql_core.Gql.Error msg | Failure msg ->
    prerr_endline ("error: " ^ msg);
    1
  | Gql_wglog.Eval.Invalid_query msg | Gql_xmlgl.Construct.Invalid_query msg ->
    prerr_endline ("error: invalid query: " ^ msg);
    1
  | Gql_xmlgl.Engine.Ill_formed errs ->
    prerr_endline ("error: invalid query: " ^ String.concat "; " errs);
    1
  | Gql_match.Parse.Error msg | Gql_match.Compile.Error msg ->
    prerr_endline ("error: invalid query: " ^ msg);
    1
  | Gql_xpath.Eval.Eval_error msg ->
    prerr_endline ("error: XPath: " ^ msg);
    1
  | Gql_xml.Parser.Error (msg, pos) ->
    Printf.eprintf "error: XML %d:%d: %s\n" pos.Gql_xml.Parser.line
      pos.Gql_xml.Parser.col msg;
    1
  | Gql_data.Store.Invalid_snapshot _ as e ->
    prerr_endline ("error: " ^ Gql_data.Store.describe e);
    1

(* --- run ----------------------------------------------------------------- *)

let run_cmd =
  let domains_arg =
    let doc =
      "Evaluate on $(docv) OCaml domains (results are byte-identical to \
       sequential evaluation; overrides \\$GQL_DOMAINS)."
    in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)
  in
  let par_cutoff_arg =
    let doc =
      "Work-size cutoff for parallel evaluation: jobs whose cost estimate \
       (candidates x pattern size) is below $(docv) run sequentially even \
       when --domains asks for more.  0 disables gating.  Overrides \
       \\$GQL_PAR_CUTOFF; default 65536."
    in
    Arg.(value & opt (some int) None & info [ "par-cutoff" ] ~docv:"COST" ~doc)
  in
  let action data query out domains par_cutoff =
    wrap (fun () ->
        Option.iter Gql_graph.Par.set_default domains;
        Option.iter Gql_graph.Par.set_cutoff par_cutoff;
        let source = read_file query in
        match language_of source with
        | `Xmlgl ->
          let db = require_db data in
          let result = Gql_core.Gql.run_xmlgl_text db source in
          let text = Gql_core.Gql.to_xml_string result in
          (match out with
          | Some f ->
            let oc = open_out f in
            output_string oc text;
            close_out oc;
            Printf.printf "wrote %s\n" f
          | None -> print_string text)
        | `Wglog ->
          let db = require_db data in
          let stats = Gql_core.Gql.run_wglog_text db source in
          Printf.printf
            "fixpoint reached: %d rounds, %d embeddings, +%d nodes, +%d edges\n"
            stats.Gql_wglog.Eval.rounds stats.embeddings_found stats.nodes_added
            stats.edges_added;
          (match out with
          | Some f ->
            let oc = open_out f in
            output_string oc (Gql_data.Graph.to_dot db.Gql_core.Gql.graph);
            close_out oc;
            Printf.printf "wrote saturated graph to %s (DOT)\n" f
          | None -> ())
        | `Match ->
          let db = require_db data in
          let body, _rows = Gql_core.Gql.run_match_text db source in
          (match out with
          | Some f ->
            let oc = open_out f in
            output_string oc body;
            close_out oc;
            Printf.printf "wrote %s\n" f
          | None -> print_string body)
        | `Unknown ->
          failwith "query file must start with 'xmlgl', 'wglog' or 'match'")
  in
  let info = Cmd.info "run" ~doc:"Evaluate a graphical query against a database." in
  Cmd.v info
    Term.(
      const action $ data_arg $ query_arg $ out_arg $ domains_arg
      $ par_cutoff_arg)

(* --- validate ------------------------------------------------------------- *)

let validate_cmd =
  let dtd_arg =
    let doc = "External DTD file (otherwise the DOCTYPE internal subset)." in
    Arg.(value & opt (some file) None & info [ "dtd" ] ~docv:"FILE" ~doc)
  in
  let action data dtd =
    wrap (fun () ->
        let dtd =
          Option.map (fun f -> Gql_dtd.Parse.parse_subset (read_file f)) dtd
        in
        let db =
          match data with
          | Some f -> Gql_core.Gql.load_xml_file ?dtd f
          | None -> failwith "validate needs --data FILE"
        in
        let violations = Gql_core.Gql.validate_dtd db in
        if violations = [] then print_endline "valid"
        else begin
          List.iter
            (fun v -> print_endline (Gql_dtd.Validate.pp_violation v))
            violations;
          Printf.printf "%d violation(s)\n" (List.length violations)
        end)
  in
  let info = Cmd.info "validate" ~doc:"Validate a document against its DTD." in
  Cmd.v info Term.(const action $ data_arg $ dtd_arg)

(* --- render ----------------------------------------------------------------- *)

let render_cmd =
  let ascii_arg =
    let doc = "Render to the terminal instead of SVG." in
    Arg.(value & flag & info [ "ascii" ] ~doc)
  in
  let action query out ascii =
    wrap (fun () ->
        let source = read_file query in
        let diagrams =
          match language_of source with
          | `Xmlgl ->
            let p = Gql_core.Gql.parse_xmlgl source in
            List.mapi
              (fun i r ->
                Gql_core.Gql.rule_diagram_xmlgl
                  ~title:(Printf.sprintf "rule %d" (i + 1)) r)
              p.Gql_xmlgl.Ast.rules
          | `Wglog ->
            let p = Gql_core.Gql.parse_wglog source in
            List.mapi
              (fun i r ->
                Gql_core.Gql.rule_diagram_wglog
                  ~title:(Printf.sprintf "rule %d" (i + 1)) r)
              p.Gql_wglog.Ast.rules
          | `Match -> failwith "render supports the visual languages (XML-GL, WG-Log)"
          | `Unknown -> failwith "query file must start with 'xmlgl', 'wglog' or 'match'"
        in
        if ascii then
          List.iter (fun d -> print_string (Gql_core.Gql.render_ascii d)) diagrams
        else begin
          let base = Option.value out ~default:(Filename.remove_extension query ^ ".svg") in
          List.iteri
            (fun i d ->
              let path =
                if List.length diagrams = 1 then base
                else
                  Printf.sprintf "%s.%d.svg" (Filename.remove_extension base) (i + 1)
              in
              Gql_core.Gql.save_svg path d;
              Printf.printf "wrote %s\n" path)
            diagrams
        end)
  in
  let info = Cmd.info "render" ~doc:"Draw the rules of a query as the paper does." in
  Cmd.v info Term.(const action $ query_arg $ out_arg $ ascii_arg)

(* --- explain ----------------------------------------------------------------- *)

let explain_cmd =
  let action data query =
    wrap (fun () ->
        let source = read_file query in
        match language_of source with
        | `Xmlgl ->
          let db = require_db data in
          print_string (Gql_core.Gql.explain_xmlgl db (Gql_core.Gql.parse_xmlgl source))
        | `Wglog ->
          let db = require_db data in
          print_string (Gql_core.Gql.explain_wglog db (Gql_core.Gql.parse_wglog source))
        | `Match ->
          let db = require_db data in
          print_string (Gql_core.Gql.explain_match db (Gql_core.Gql.parse_match source))
        | `Unknown ->
          failwith "query file must start with 'xmlgl', 'wglog' or 'match'")
  in
  let info = Cmd.info "explain" ~doc:"Show the physical plan for a query." in
  Cmd.v info Term.(const action $ data_arg $ query_arg)

(* --- xpath ----------------------------------------------------------------- *)

let xpath_cmd =
  let expr_arg =
    let doc = "XPath expression." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc)
  in
  let action data expr =
    wrap (fun () ->
        let db = require_db data in
        match Gql_xpath.Parse.expr expr with
        | exception Gql_xpath.Parse.Error (msg, pos) ->
          failwith (Printf.sprintf "XPath offset %d: %s" pos msg)
        | e -> (
          let idx = Lazy.force db.Gql_core.Gql.xpath_index in
          match Gql_xpath.Eval.eval_expr idx e with
          | Gql_xpath.Eval.Nodeset ns ->
            Printf.printf "%d node(s)\n" (List.length ns);
            List.iter
              (fun n ->
                print_endline
                  (Gql_xml.Printer.node_to_string (Gql_xpath.Index.to_tree idx n)))
              ns
          | Gql_xpath.Eval.Str s -> print_endline s
          | Gql_xpath.Eval.Num f -> Printf.printf "%g\n" f
          | Gql_xpath.Eval.Bool b -> Printf.printf "%b\n" b))
  in
  let info = Cmd.info "xpath" ~doc:"Evaluate an XPath expression (the navigational baseline)." in
  Cmd.v info Term.(const action $ data_arg $ expr_arg)

(* --- matrix / stats ------------------------------------------------------------ *)

let matrix_cmd =
  let action () =
    print_string (Gql_core.Expressiveness.matrix_to_string ());
    0
  in
  let info = Cmd.info "matrix" ~doc:"Print the language expressiveness matrix." in
  Cmd.v info Term.(const action $ const ())

let stats_cmd =
  let action data =
    wrap (fun () ->
        let db = require_db data in
        let nodes, edges = Gql_core.Gql.stats db in
        Printf.printf "graph: %d nodes, %d edges\n" nodes edges;
        match db.Gql_core.Gql.dtd with
        | Some dtd ->
          Printf.printf "DTD: %d element declarations\n"
            (List.length dtd.Gql_dtd.Ast.elements)
        | None -> print_endline "DTD: none")
  in
  let info = Cmd.info "stats" ~doc:"Database statistics." in
  Cmd.v info Term.(const action $ data_arg)

(* --- serve ----------------------------------------------------------------- *)

let socket_arg =
  let doc = "Unix-domain socket path to listen/connect on." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let host_arg =
  let doc = "TCP host." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let port_arg =
  let doc = "TCP port to listen/connect on." in
  Arg.(value & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let workers_arg =
    let doc = "Worker domains (default: hardware-sized)." in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Default per-query deadline in milliseconds." in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"MS" ~doc)
  in
  let rcache_arg =
    let doc = "Result-cache capacity (0 disables)." in
    Arg.(value & opt int 256 & info [ "rcache" ] ~docv:"N" ~doc)
  in
  let preload_arg =
    let doc =
      "XML or snapshot file(s) to pre-load; each is registered under its \
       base name (data/bibliography.xml -> 'bibliography').  Snapshot \
       files (saved with $(b,gql snapshot save)) are recognised by their \
       magic and mapped directly — no re-parse, no re-freeze.  Repeatable."
    in
    Arg.(value & opt_all file [] & info [ "d"; "data" ] ~docv:"FILE" ~doc)
  in
  let run_domains_arg =
    let doc =
      "Domains per RUN evaluation.  Default: auto — a single large RUN \
       borrows the capacity idle workers leave unused, and a burst of \
       clients degrades to one domain per request instead of \
       oversubscribing the machine."
    in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)
  in
  let action socket port host workers deadline rcache run_domains preload =
    wrap (fun () ->
        if socket = None && port = None then
          failwith "serve needs --socket PATH and/or --port PORT";
        let config =
          {
            Gql_server.Server.default_config with
            workers;
            default_deadline_ms = deadline;
            result_cache = rcache;
            run_domains;
          }
        in
        let server = Gql_server.Server.create ~config () in
        List.iter
          (fun file ->
            let name = Filename.remove_extension (Filename.basename file) in
            let registry = Gql_server.Server.registry server in
            let loaded =
              if is_snapshot_file file then
                Gql_server.Registry.load_snapshot registry ~name file
              else Gql_server.Registry.load_xml registry ~name (read_file file)
            in
            match loaded with
            | Ok snap ->
              Printf.printf "loaded %s (v%d, %d nodes, %d edges)\n%!" name
                snap.Gql_server.Registry.version snap.Gql_server.Registry.nodes
                snap.Gql_server.Registry.edges
            | Error msg -> failwith (Printf.sprintf "loading %s: %s" file msg))
          preload;
        let listeners =
          (match socket with
          | Some path ->
            let l =
              Gql_server.Server.listen server (Unix.ADDR_UNIX path)
            in
            Printf.printf "listening on unix socket %s\n%!" path;
            [ l ]
          | None -> [])
          @
          match port with
          | Some p ->
            let l =
              Gql_server.Server.listen server
                (Unix.ADDR_INET (Unix.inet_addr_of_string host, p))
            in
            Printf.printf "listening on %s:%d\n%!" host p;
            [ l ]
          | None -> []
        in
        Printf.printf "%d worker domain(s); ctrl-C to stop\n%!"
          (Gql_server.Server.workers server);
        List.iter Gql_server.Server.wait listeners)
  in
  let info = Cmd.info "serve" ~doc:"Serve queries over frozen document snapshots." in
  Cmd.v info
    Term.(
      const action $ socket_arg $ port_arg $ host_arg $ workers_arg
      $ deadline_arg $ rcache_arg $ run_domains_arg $ preload_arg)

(* --- snapshot --------------------------------------------------------------- *)

let snapshot_cmd =
  let file_pos =
    let doc = "Snapshot file." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let save_cmd =
    let out_arg =
      let doc = "Snapshot file to write." in
      Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
    in
    let action data out =
      wrap (fun () ->
          let db = require_db data in
          let t0 = Unix.gettimeofday () in
          let index = Gql_core.Gql.index db in
          let freeze_ms = (Unix.gettimeofday () -. t0) *. 1000. in
          let t1 = Unix.gettimeofday () in
          let bytes = Gql_data.Store.save ~path:out index in
          let save_ms = (Unix.gettimeofday () -. t1) *. 1000. in
          Printf.printf "saved %s: %d bytes (freeze %.1f ms, save %.1f ms)\n"
            out bytes freeze_ms save_ms)
    in
    let info =
      Cmd.info "save"
        ~doc:"Freeze the document's index and write it as a snapshot file."
    in
    Cmd.v info Term.(const action $ data_arg $ out_arg)
  in
  let load_cmd =
    let action file =
      wrap (fun () ->
          let t0 = Unix.gettimeofday () in
          let db = Gql_core.Gql.load_snapshot_file file in
          let load_ms = (Unix.gettimeofday () -. t0) *. 1000. in
          let nodes, edges = Gql_core.Gql.stats db in
          Printf.printf "loaded %s: %d nodes, %d edges (%.1f ms)\n" file nodes
            edges load_ms)
    in
    let info =
      Cmd.info "load"
        ~doc:"Load a snapshot file (validates checksums) and print its size."
    in
    Cmd.v info Term.(const action $ file_pos)
  in
  let info_cmd =
    let action file =
      wrap (fun () ->
          let i = Gql_data.Store.validate file in
          Printf.printf "file     %s\nformat   %d\nbytes    %d\nnodes    %d\nedges    %d\nsymbols  %d\nsections %d\n"
            file i.Gql_data.Store.info_format i.Gql_data.Store.info_bytes
            i.Gql_data.Store.info_nodes i.Gql_data.Store.info_edges
            i.Gql_data.Store.info_syms
            (List.length i.Gql_data.Store.info_sections);
          List.iter
            (fun (name, off, elems) ->
              Printf.printf "  %-12s off=%-10d elems=%d\n" name off elems)
            i.Gql_data.Store.info_sections)
    in
    let info =
      Cmd.info "info"
        ~doc:"Validate a snapshot file and print its header and section table."
    in
    Cmd.v info Term.(const action $ file_pos)
  in
  let info =
    Cmd.info "snapshot"
      ~doc:
        "Persistent snapshots of the frozen index: save once, map back in \
         milliseconds."
  in
  Cmd.group info [ save_cmd; load_cmd; info_cmd ]

(* --- fuzz ------------------------------------------------------------------ *)

let fuzz_cmd =
  let seed_arg =
    let doc =
      "Base seed.  Case $(i,i) of a run uses seed $(i,BASE+i), so a reported \
       failing seed replays alone with --seed N --cases 1."
    in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let cases_arg =
    let doc = "Number of cases to generate." in
    Arg.(value & opt int 1000 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let oracle_arg =
    let doc =
      "Oracle to run: scan-vs-index, digraph-vs-csr, engine-vs-algebra, \
       direct-vs-served, seq-vs-par, match-vs-algebra or \
       loaded-vs-frozen.  Repeatable; default is all seven."
    in
    Arg.(value & opt_all string [] & info [ "oracle" ] ~docv:"NAME" ~doc)
  in
  let out_arg =
    let doc = "Directory to write minimized .repro files into." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let action seed cases oracle_names out_dir =
    wrap (fun () ->
        let oracles =
          match oracle_names with
          | [] -> Gql_fuzz.Oracle.all
          | names ->
            List.map
              (fun n ->
                match Gql_fuzz.Oracle.of_string n with
                | Some o -> o
                | None -> failwith (Printf.sprintf "unknown oracle %S" n))
              names
        in
        let cfg =
          {
            Gql_fuzz.Driver.base_seed = seed;
            cases;
            oracles;
            out_dir;
            log = (fun line -> Printf.printf "%s\n%!" line);
          }
        in
        let outcome = Gql_fuzz.Driver.run cfg in
        Printf.printf "%d case(s), %d check(s), %d failure(s)\n%!"
          outcome.Gql_fuzz.Driver.cases_run outcome.Gql_fuzz.Driver.checks_run
          (List.length outcome.Gql_fuzz.Driver.failures);
        match outcome.Gql_fuzz.Driver.failures with
        | [] -> ()
        | f :: _ ->
          failwith
            (Printf.sprintf "first failure: seed=%d oracle=%s (%s)"
               f.Gql_fuzz.Driver.seed
               (Gql_fuzz.Oracle.to_string f.Gql_fuzz.Driver.oracle)
               f.Gql_fuzz.Driver.detail))
  in
  let info =
    Cmd.info "fuzz"
      ~doc:
        "Differential fuzzing: random documents and programs checked across \
         redundant evaluation paths."
  in
  Cmd.v info Term.(const action $ seed_arg $ cases_arg $ oracle_arg $ out_arg)

(* --- client ----------------------------------------------------------------- *)

let client_cmd =
  let words_arg =
    let doc =
      "Command and arguments: load DOC FILE | prepare NAME FILE | run DOC \
       QUERY | explain DOC QUERY | stats DOC | metrics | ping.  QUERY is a \
       file path (sent as source) or a PREPAREd name."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"CMD" ~doc)
  in
  let schema_arg =
    let doc = "WG-Log schema tag for prepare/run (restaurant|hyperdoc)." in
    Arg.(value & opt (some string) None & info [ "schema" ] ~docv:"S" ~doc)
  in
  let deadline_arg =
    let doc = "Per-query deadline in milliseconds (run only)." in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"MS" ~doc)
  in
  let action socket port host schema deadline_ms words =
    wrap (fun () ->
        let c =
          match socket, port with
          | Some path, _ -> Gql_server.Client.connect_unix path
          | None, Some p -> Gql_server.Client.connect_tcp ~host ~port:p
          | None, None -> failwith "client needs --socket PATH or --port PORT"
        in
        Fun.protect
          ~finally:(fun () -> Gql_server.Client.close c)
          (fun () ->
            let query_ref q =
              if Sys.file_exists q then `Source (read_file q) else `Named q
            in
            let result =
              match words with
              | [ "load"; doc; file ] ->
                Gql_server.Client.load c ~doc (read_file file)
              | [ "prepare"; name; file ] ->
                Gql_server.Client.prepare c ~name ?schema (read_file file)
              | [ "run"; doc; q ] ->
                Gql_server.Client.run c ~doc ?schema ?deadline_ms (query_ref q)
              | [ "explain"; doc; q ] ->
                Gql_server.Client.explain c ~doc (query_ref q)
              | [ "stats"; doc ] -> Gql_server.Client.stats c ~doc
              | [ "metrics" ] -> Gql_server.Client.metrics c
              | [ "ping" ] -> Gql_server.Client.ping c
              | _ -> failwith "bad client command (see --help)"
            in
            match result with
            | Ok (info, body) ->
              if info <> "" then Printf.eprintf "OK %s\n%!" info;
              print_string body
            | Error msg -> failwith msg))
  in
  let info = Cmd.info "client" ~doc:"Send one command to a running gql server." in
  Cmd.v info
    Term.(
      const action $ socket_arg $ port_arg $ host_arg $ schema_arg
      $ deadline_arg $ words_arg)

let () =
  let info =
    Cmd.info "gql" ~version:"1.0"
      ~doc:"Graphical query languages for semi-structured information (EDBT 2000 reproduction)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; validate_cmd; render_cmd; explain_cmd; xpath_cmd; matrix_cmd;
            stats_cmd; serve_cmd; client_cmd; fuzz_cmd; snapshot_cmd ]))
