(* Tests for Gql_graph.Iset (flat sorted int sets: construction
   normalisation, linear vs galloping intersection agreement around the
   crossover, set algebra edge cases) and Gql_data.Symtab (id/name
   round-trips, concurrent interning from multiple domains). *)

open Gql_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_list = Alcotest.(check (list int))

let l (s : Iset.t) = Iset.to_list s

(* --- construction ------------------------------------------------------ *)

let test_build () =
  check_list "empty" [] (l Iset.empty);
  check_int "empty length" 0 (Iset.length Iset.empty);
  check "empty is_empty" true (Iset.is_empty Iset.empty);
  check_list "singleton" [ 7 ] (l (Iset.singleton 7));
  check_list "of_list sorts" [ 1; 2; 9 ] (l (Iset.of_list [ 9; 1; 2 ]));
  check_list "of_list dedups" [ 1; 2 ] (l (Iset.of_list [ 2; 1; 2; 1; 1 ]));
  check_list "of_array dedups sorted input" [ 3; 4 ]
    (l (Iset.of_array [| 3; 3; 4 |]));
  check_list "already strict input kept" [ 1; 5; 8 ]
    (l (Iset.of_array [| 1; 5; 8 |]));
  check_int "get" 5 (Iset.get (Iset.of_list [ 9; 5; 1 ]) 1);
  check "mem yes" true (Iset.mem (Iset.of_list [ 1; 5; 9 ]) 5);
  check "mem no" false (Iset.mem (Iset.of_list [ 1; 5; 9 ]) 4);
  (* binary-search path: > 8 elements *)
  let big = Iset.of_list (List.init 100 (fun i -> i * 3)) in
  check "mem binary yes" true (Iset.mem big 99);
  check "mem binary no" false (Iset.mem big 100)

let test_sub () =
  let s = Iset.of_list [ 0; 2; 4; 6; 8 ] in
  check_list "middle slice" [ 2; 4; 6 ] (l (Iset.sub s 1 3));
  check_list "empty slice" [] (l (Iset.sub s 2 0));
  check_list "full slice" (l s) (l (Iset.sub s 0 5))

(* --- intersection ------------------------------------------------------ *)

let test_inter_edge_cases () =
  let s123 = Iset.of_list [ 1; 2; 3 ] in
  check_list "empty-left" [] (l (Iset.inter Iset.empty s123));
  check_list "empty-right" [] (l (Iset.inter s123 Iset.empty));
  check_list "disjoint" [] (l (Iset.inter s123 (Iset.of_list [ 4; 5 ])));
  check_list "contained" [ 2; 3 ]
    (l (Iset.inter s123 (Iset.of_list [ 2; 3; 9 ])));
  check_list "identical" [ 1; 2; 3 ] (l (Iset.inter s123 s123));
  check_list "singleton hit" [ 2 ] (l (Iset.inter (Iset.singleton 2) s123));
  check_list "singleton miss" [] (l (Iset.inter (Iset.singleton 9) s123))

(* Linear and galloping intersection must agree everywhere, in
   particular around the [gallop_factor] crossover where [inter] flips
   between them. *)
let test_inter_crossover () =
  let small = Iset.of_list [ 0; 17; 40; 41; 999 ] in
  List.iter
    (fun n ->
      let large = Iset.of_list (List.init n (fun i -> i)) in
      let lin = l (Iset.inter_linear small large) in
      let gal = l (Iset.inter_gallop small large) in
      let auto = l (Iset.inter small large) in
      Alcotest.(check (list int))
        (Printf.sprintf "linear=gallop at n=%d" n)
        lin gal;
      Alcotest.(check (list int)) (Printf.sprintf "auto at n=%d" n) lin auto)
    [ 1; 5; Iset.gallop_factor * 5 - 1; Iset.gallop_factor * 5;
      Iset.gallop_factor * 5 + 1; 2000 ]

let test_inter_qcheck =
  QCheck.Test.make ~count:500 ~name:"inter agrees with naive set intersection"
    QCheck.(pair (list (int_bound 200)) (list (int_bound 200)))
    (fun (a, b) ->
      let sa = Iset.of_list a and sb = Iset.of_list b in
      let naive =
        List.sort_uniq compare (List.filter (fun x -> List.mem x b) a)
      in
      l (Iset.inter sa sb) = naive
      && l (Iset.inter_linear sa sb) = naive
      && l (Iset.inter_gallop sa sb) = naive)

let test_inter_many () =
  let s1 = Iset.of_list [ 1; 2; 3; 4; 5 ] in
  let s2 = Iset.of_list [ 2; 4; 6 ] in
  let s3 = Iset.of_list [ 0; 2; 4 ] in
  check_list "three sets" [ 2; 4 ] (l (Iset.inter_many [ s1; s2; s3 ]));
  check_list "single set" [ 2; 4; 6 ] (l (Iset.inter_many [ s2 ]));
  check_list "with empty" [] (l (Iset.inter_many [ s1; Iset.empty; s2 ]));
  check "empty list rejected" true
    (match Iset.inter_many [] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- union / diff / filter --------------------------------------------- *)

let test_union_diff_filter () =
  let s1 = Iset.of_list [ 1; 3; 5 ] in
  let s2 = Iset.of_list [ 2; 3; 4 ] in
  check_list "union" [ 1; 2; 3; 4; 5 ] (l (Iset.union s1 s2));
  check_list "union empty" [ 1; 3; 5 ] (l (Iset.union s1 Iset.empty));
  check_list "diff" [ 1; 5 ] (l (Iset.diff s1 s2));
  check_list "diff all" [] (l (Iset.diff s1 s1));
  check_list "diff empty" [ 1; 3; 5 ] (l (Iset.diff s1 Iset.empty));
  check_list "filter" [ 3; 5 ] (l (Iset.filter (fun x -> x > 1) s1));
  check "filter nothing dropped shares" true
    (Iset.filter (fun _ -> true) s1 == s1)

(* --- symtab ------------------------------------------------------------ *)

let test_symtab_basic () =
  let t = Gql_data.Symtab.create () in
  let a = Gql_data.Symtab.intern t "alpha" in
  let b = Gql_data.Symtab.intern t "beta" in
  check_int "distinct ids" 1 (abs (b - a));
  check_int "re-intern stable" a (Gql_data.Symtab.intern t "alpha");
  check_int "find hit" a
    (match Gql_data.Symtab.find t "alpha" with Some i -> i | None -> -1);
  check "find miss" true (Gql_data.Symtab.find t "gamma" = None);
  check "name round-trip" true (Gql_data.Symtab.name t b = "beta");
  check_int "length" 2 (Gql_data.Symtab.length t)

(* Concurrent interning: several domains intern overlapping name sets;
   afterwards every name must have exactly one id and every id must
   round-trip, regardless of interleaving. *)
let test_symtab_concurrent () =
  let t = Gql_data.Symtab.create ~size:1 () in
  let names d = List.init 200 (fun i -> Printf.sprintf "n%d" ((i + d) mod 250)) in
  let workers =
    List.init 4 (fun d ->
        Domain.spawn (fun () -> List.map (Gql_data.Symtab.intern t) (names d)))
  in
  let results = List.map Domain.join workers in
  (* every domain saw the same id for the same name *)
  List.iteri
    (fun d ids ->
      List.iter2
        (fun name id ->
          Alcotest.(check int)
            (Printf.sprintf "domain %d agrees on %s" d name)
            id
            (Gql_data.Symtab.intern t name))
        (names d) ids)
    results;
  (* offsets 0..3 over 200 names cover n0..n202 *)
  check_int "exactly the distinct names" 203 (Gql_data.Symtab.length t);
  for i = 0 to Gql_data.Symtab.length t - 1 do
    let n = Gql_data.Symtab.name t i in
    check_int (Printf.sprintf "id %d round-trips" i) i
      (match Gql_data.Symtab.find t n with Some j -> j | None -> -1)
  done

let () =
  Alcotest.run "iset"
    [
      ( "iset",
        [
          Alcotest.test_case "construction" `Quick test_build;
          Alcotest.test_case "sub slices" `Quick test_sub;
          Alcotest.test_case "inter edge cases" `Quick test_inter_edge_cases;
          Alcotest.test_case "inter crossover" `Quick test_inter_crossover;
          QCheck_alcotest.to_alcotest test_inter_qcheck;
          Alcotest.test_case "inter_many" `Quick test_inter_many;
          Alcotest.test_case "union diff filter" `Quick test_union_diff_filter;
        ] );
      ( "symtab",
        [
          Alcotest.test_case "basic" `Quick test_symtab_basic;
          Alcotest.test_case "concurrent interning" `Quick
            test_symtab_concurrent;
        ] );
    ]
