(* The persistent snapshot store: freeze -> save -> load must be
   observationally identical to the freshly frozen index for every
   engine and every MATCH route, corrupt files must be rejected with a
   typed error naming the offending section, and re-loading identical
   content must reuse the existing registry snapshot (version
   unchanged, caches warm). *)

module Store = Gql_data.Store
module Registry = Gql_server.Registry

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let docs =
  [
    ("bibliography", lazy (Gql_workload.Gen.bibliography ~seed:81 40));
    ("people", lazy (Gql_workload.Gen.people ~seed:82 60));
    ("greengrocer", lazy (Gql_workload.Gen.greengrocer ~seed:83 80));
  ]

let xml_of name =
  Gql_xml.Printer.to_string (Lazy.force (List.assoc name docs))

(* Save [db]'s frozen index to a fresh temp file; caller removes it. *)
let save_db (db : Gql_core.Gql.db) : string =
  let path = Filename.temp_file "gql-store" ".snap" in
  ignore (Store.save ~path (Gql_core.Gql.index db));
  path

let with_roundtrip name (f : Gql_core.Gql.db -> Gql_core.Gql.db -> unit) =
  let frozen = Gql_core.Gql.load_xml_string (xml_of name) in
  let path = save_db frozen in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f frozen (Gql_core.Gql.load_snapshot_file path))

(* --- identity across engines and routes ------------------------------- *)

let test_xmlgl_identity () =
  List.iter
    (fun (q : Gql_workload.Queries.server_query) ->
      match Gql_core.Gql.language_of_source q.source with
      | `Xmlgl when List.mem_assoc q.doc docs ->
        with_roundtrip q.doc (fun frozen loaded ->
            let run db =
              Gql_core.Gql.to_xml_string (Gql_core.Gql.run_xmlgl_text db q.source)
            in
            check (q.sq_name ^ " identical") (run frozen) (run loaded))
      | _ -> ())
    Gql_workload.Queries.server_suite

let test_match_routes_identity () =
  List.iter
    (fun (q : Gql_workload.Queries.server_query) ->
      match Gql_core.Gql.language_of_source q.source with
      | `Match when List.mem_assoc q.doc docs ->
        with_roundtrip q.doc (fun frozen loaded ->
            let routes (db : Gql_core.Gql.db) =
              let data = db.Gql_core.Gql.graph in
              let c =
                Gql_match.Compile.compile (Gql_core.Gql.parse_match q.source)
              in
              let body f = Gql_match.Eval.body data c (f c) in
              [
                ("homo-scan", body (fun c -> Gql_match.Eval.bindings data c));
                ( "homo-indexed",
                  body (fun c ->
                      Gql_match.Eval.bindings ~index:(Gql_core.Gql.index db)
                        data c) );
                ( "algebra-greedy",
                  body (fun c ->
                      Gql_match.Eval.bindings_algebra ~strategy:`Greedy
                        ~index:(Gql_core.Gql.index db) data c) );
                ( "algebra-fixed",
                  body (fun c ->
                      Gql_match.Eval.bindings_algebra ~strategy:`Fixed
                        ~index:(Gql_core.Gql.index db) data c) );
                ( "algebra-cost",
                  body (fun c ->
                      Gql_match.Eval.bindings_algebra ~strategy:`Cost
                        ~index:(Gql_core.Gql.index db) data c) );
                ( "algebra-noindex",
                  body (fun c -> Gql_match.Eval.bindings_algebra data c) );
              ]
            in
            List.iter2
              (fun (label, a) (_, b) ->
                check (q.sq_name ^ " " ^ label ^ " identical") a b)
              (routes frozen) (routes loaded))
      | _ -> ())
    Gql_workload.Queries.server_suite

let test_wglog_identity () =
  (* the deductive engine: fixpoint on a fork of the loaded graph must
     derive exactly what a fork of the frozen graph derives *)
  let graph = Gql_workload.Gen.restaurants ~seed:84 50 in
  let frozen = Gql_core.Gql.of_graph graph in
  let path = save_db frozen in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let loaded = Gql_core.Gql.load_snapshot_file path in
      let run (db : Gql_core.Gql.db) =
        let fork = Gql_core.Gql.of_graph (Gql_data.Graph.copy db.Gql_core.Gql.graph) in
        let stats =
          Gql_core.Gql.run_wglog_text
            ~schema:Gql_wglog.Schema.restaurant_schema fork
            Gql_workload.Queries.q10_src
        in
        ( stats.Gql_wglog.Eval.rounds, stats.embeddings_found,
          stats.nodes_added, stats.edges_added,
          Gql_core.Gql.stats fork )
      in
      check_bool "wglog fixpoints identical" true (run frozen = run loaded))

let test_lazy_load () =
  with_roundtrip "bibliography" (fun frozen loaded ->
      (* the mutable graph stays cold until an engine actually needs it;
         node/edge counts answer from the snapshot header *)
      check_bool "graph not thawed by load" false
        (Gql_data.Graph.forced loaded.Gql_core.Gql.graph);
      check_bool "stats without thaw" true
        (Gql_core.Gql.stats loaded = Gql_core.Gql.stats frozen);
      check_bool "still not thawed" false
        (Gql_data.Graph.forced loaded.Gql_core.Gql.graph);
      ignore (Gql_data.Graph.digraph loaded.Gql_core.Gql.graph);
      check_bool "thawed on demand" true
        (Gql_data.Graph.forced loaded.Gql_core.Gql.graph))

(* --- corrupt / truncated / wrong-version files ------------------------- *)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> Bytes.of_string (really_input_string ic (in_channel_length ic)))

let write_bytes path b =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc b)

(* Write a mutated copy of [src] and expect [Store.load] to reject it
   with a typed error; returns the section the error names. *)
let expect_invalid ~what src (mutate : Bytes.t -> Bytes.t) : string =
  let path = Filename.temp_file "gql-store" ".bad" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      write_bytes path (mutate (read_bytes src));
      match Store.load ~path with
      | _ -> Alcotest.failf "%s: corrupt file loaded" what
      | exception Store.Invalid_snapshot { section; _ } -> section)

let with_valid_file (f : string -> unit) =
  let db = Gql_core.Gql.load_xml_string (xml_of "bibliography") in
  let path = save_db db in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_reject_magic_and_version () =
  with_valid_file (fun path ->
      let sec =
        expect_invalid ~what:"magic" path (fun b -> Bytes.set b 0 'X'; b)
      in
      check "magic error names header" "header" sec;
      let sec =
        expect_invalid ~what:"version" path (fun b ->
            (* h_version lives at byte 8, little-endian *)
            Bytes.set b 8 '\x63'; b)
      in
      check "version error names header" "header" sec)

let test_reject_truncation () =
  with_valid_file (fun path ->
      let total = Bytes.length (read_bytes path) in
      List.iter
        (fun keep ->
          ignore
            (expect_invalid ~what:(Printf.sprintf "truncate to %d" keep) path
               (fun b -> Bytes.sub b 0 keep)))
        [ 0; 7; 100; 4096; total / 2; total - 1 ])

let test_reject_bit_flips () =
  with_valid_file (fun path ->
      let info = Store.validate path in
      (* flip the first byte of every non-empty section: each must be
         caught by that section's checksum (or the structural checks) *)
      List.iter
        (fun (name, off, elems) ->
          if elems > 0 then begin
            let sec =
              expect_invalid ~what:("flip " ^ name) path (fun b ->
                  Bytes.set b off
                    (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
                  b)
            in
            check_bool
              (Printf.sprintf "flip in %s names a section (%s)" name sec)
              true (String.length sec > 0)
          end)
        info.Store.info_sections;
      (* ... and a flip inside the header table *)
      ignore
        (expect_invalid ~what:"flip header table" path (fun b ->
             Bytes.set b 70 (Char.chr (Char.code (Bytes.get b 70) lxor 0x01));
             b)))

(* --- registry digest reuse --------------------------------------------- *)

let test_registry_xml_reuse () =
  let reg = Registry.create () in
  let xml = xml_of "bibliography" in
  let v1 =
    match Registry.load_xml reg ~name:"d" xml with
    | Ok s -> s.Registry.version
    | Error m -> Alcotest.fail m
  in
  let v2 =
    match Registry.load_xml reg ~name:"d" xml with
    | Ok s -> s.Registry.version
    | Error m -> Alcotest.fail m
  in
  check_int "identical xml reuses the snapshot" v1 v2;
  let v3 =
    match Registry.load_xml reg ~name:"d" (xml_of "people") with
    | Ok s -> s.Registry.version
    | Error m -> Alcotest.fail m
  in
  check_bool "different xml bumps the version" true (v3 > v1)

let test_registry_snapshot_reuse () =
  with_valid_file (fun path ->
      let reg = Registry.create () in
      let load () =
        match Registry.load_snapshot reg ~name:"d" path with
        | Ok s -> s.Registry.version
        | Error m -> Alcotest.fail m
      in
      let v1 = load () in
      check_int "identical file reuses the snapshot" v1 (load ());
      (* a genuinely different snapshot file under the same name bumps *)
      let db2 = Gql_core.Gql.load_xml_string (xml_of "people") in
      let path2 = save_db db2 in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path2 with Sys_error _ -> ())
        (fun () ->
          match Registry.load_snapshot reg ~name:"d" path2 with
          | Ok s -> check_bool "new file bumps" true (s.Registry.version > v1)
          | Error m -> Alcotest.fail m))

let test_registry_snapshot_rejects () =
  let reg = Registry.create () in
  let path = Filename.temp_file "gql-store" ".bad" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      write_bytes path (Bytes.of_string "not a snapshot at all");
      match Registry.load_snapshot reg ~name:"d" path with
      | Ok _ -> Alcotest.fail "garbage accepted"
      | Error msg ->
        check_bool "error mentions the file" true
          (String.length msg > 0))

(* --- validate / file_key ----------------------------------------------- *)

let test_validate_info () =
  with_valid_file (fun path ->
      let i = Store.validate path in
      let db = Gql_core.Gql.load_xml_string (xml_of "bibliography") in
      let nodes, edges = Gql_core.Gql.stats db in
      check_int "nodes" nodes i.Store.info_nodes;
      check_int "edges" edges i.Store.info_edges;
      check_int "format" 1 i.Store.info_format;
      check_bool "sections listed" true (List.length i.Store.info_sections >= 30);
      (* the content key is stable across processes and reads *)
      check "file_key stable" (Store.file_key path) (Store.file_key path))

let () =
  Alcotest.run "store"
    [
      ( "identity",
        [
          Alcotest.test_case "xmlgl suite" `Quick test_xmlgl_identity;
          Alcotest.test_case "match routes" `Quick test_match_routes_identity;
          Alcotest.test_case "wglog fixpoint" `Quick test_wglog_identity;
          Alcotest.test_case "lazy thaw" `Quick test_lazy_load;
        ] );
      ( "rejects",
        [
          Alcotest.test_case "magic and version" `Quick test_reject_magic_and_version;
          Alcotest.test_case "truncation" `Quick test_reject_truncation;
          Alcotest.test_case "bit flips" `Quick test_reject_bit_flips;
        ] );
      ( "registry",
        [
          Alcotest.test_case "xml digest reuse" `Quick test_registry_xml_reuse;
          Alcotest.test_case "snapshot digest reuse" `Quick test_registry_snapshot_reuse;
          Alcotest.test_case "typed rejection" `Quick test_registry_snapshot_rejects;
        ] );
      ( "validate",
        [ Alcotest.test_case "info and file_key" `Quick test_validate_info ] );
    ]
