(* Tests for Gql_wglog: schemas, rule checks, embedding search, the
   deductive fixpoint (naive vs semi-naive, Skolem dedup, aggregation),
   and the paper's three figure rules. *)

open Gql_wglog
open Gql_data

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- schema ----------------------------------------------------------- *)

let test_schema_check () =
  Alcotest.(check (list string)) "restaurant schema consistent" []
    (Schema.check Schema.restaurant_schema);
  let broken =
    { Schema.entities = [ "A" ];
      slots = [ ("B", "s", "string") ];
      edge_types =
        [ { Schema.et_name = "r"; et_src = "A"; et_dst = "Z"; et_mult = Schema.M_one_one } ] }
  in
  check_int "two problems" 2 (List.length (Schema.check broken))

let test_schema_validate_data () =
  let g = Gql_workload.Gen.restaurants 5 in
  Alcotest.(check (list string)) "generated restaurants conform" []
    (Schema.validate Schema.restaurant_schema g);
  (* an undeclared entity type *)
  let bad = Graph.create () in
  let x = Graph.add_complex bad "Spaceship" in
  Graph.add_root bad x;
  check "undeclared entity flagged" true
    (Schema.validate Schema.restaurant_schema bad <> [])

let test_schema_validate_edges () =
  let g = Graph.create () in
  let r = Graph.add_complex g "Restaurant" in
  let c = Graph.add_complex g "City" in
  Graph.link g ~src:r ~dst:c (Graph.rel_edge "offers");  (* wrong target type *)
  check "type error flagged" true
    (Schema.validate Schema.restaurant_schema g <> [])

let test_schema_multiplicities () =
  (* located-in is n:1 — a restaurant in two cities violates it *)
  let g = Graph.create () in
  let r = Graph.add_complex g "Restaurant" in
  let nm = Graph.add_atom g (Value.string "X") in
  Graph.link g ~src:r ~dst:nm (Graph.attr_edge "name");
  let mk_city name =
    let c = Graph.add_complex g "City" in
    let v = Graph.add_atom g (Value.string name) in
    Graph.link g ~src:c ~dst:v (Graph.attr_edge "name");
    c
  in
  Graph.link g ~src:r ~dst:(mk_city "A") (Graph.rel_edge "located-in");
  check "one city fine" true
    (Schema.check_multiplicities Schema.restaurant_schema g = []);
  Graph.link g ~src:r ~dst:(mk_city "B") (Graph.rel_edge "located-in");
  check "two cities flagged" true
    (Schema.check_multiplicities Schema.restaurant_schema g <> []);
  (* offers is 1:n — a menu offered by two restaurants violates it *)
  let g2 = Gql_workload.Gen.restaurants ~seed:5 ~menu_fraction:1.0 3 in
  check "generated ok" true (Schema.check_multiplicities Schema.restaurant_schema g2 = []);
  let menus = Graph.nodes_labelled g2 "Menu" in
  let rests = Graph.nodes_labelled g2 "Restaurant" in
  (match menus, rests with
  | m :: _, r1 :: r2 :: _ ->
    let other =
      if List.exists (fun (n, d) -> n = "offers" && d = m) (Graph.rels g2 r1)
      then r2 else r1
    in
    Graph.link g2 ~src:other ~dst:m (Graph.rel_edge "offers");
    check "double offer flagged" true
      (Schema.check_multiplicities Schema.restaurant_schema g2 <> [])
  | _ -> Alcotest.fail "workload shape")

(* --- rule checks -------------------------------------------------------- *)

let test_check_rule () =
  (* negated construction edge is ill-formed *)
  let b = Ast.Build.create () in
  let a = Ast.Build.entity b "Document" in
  let c = Ast.Build.entity b "Document" in
  Ast.Build.edge b ~role:Ast.Construct ~mode:Ast.Negated ~label:"x" a c;
  check "negated green flagged" true (Ast.check_rule (Ast.Build.finish b) <> []);
  (* query edge touching a construction node *)
  let b2 = Ast.Build.create () in
  let q = Ast.Build.entity b2 "Document" in
  let g = Ast.Build.entity b2 ~role:Ast.Construct "Document" in
  Ast.Build.edge b2 ~label:"x" q g;
  check "red edge to green node flagged" true (Ast.check_rule (Ast.Build.finish b2) <> [])

let test_check_against_schema () =
  let b = Ast.Build.create () in
  let r = Ast.Build.entity b "Restaurant" in
  let m = Ast.Build.entity b "Menu" in
  Ast.Build.edge b ~label:"nonsense" r m;
  check "unknown relation flagged" true
    (Ast.check_against_schema Schema.restaurant_schema (Ast.Build.finish b) <> []);
  let b2 = Ast.Build.create () in
  let r2 = Ast.Build.entity b2 "Starship" in
  let _ = r2 in
  check "unknown entity flagged" true
    (Ast.check_against_schema Schema.restaurant_schema (Ast.Build.finish b2) <> [])

let test_stratification_warning () =
  let src = {|wglog
rule
  node a Document
  node b Document
  negedge a sibling b
  cedge b sibling a
end
|} in
  let p = Gql_lang.Wglog_text.parse_program src in
  check "warned" true (Ast.stratification_warnings p <> [])

(* --- goals (pure queries) ------------------------------------------------ *)

let test_goal_embeddings () =
  let g = Gql_workload.Gen.restaurants ~seed:5 10 in
  let b = Ast.Build.create () in
  let r = Ast.Build.entity b "Restaurant" in
  let m = Ast.Build.entity b "Menu" in
  Ast.Build.edge b ~label:"offers" r m;
  let embs = Eval.goal g (Ast.Build.finish b) in
  check "some offers" true (List.length embs > 0);
  List.iter
    (fun e ->
      check "typed correctly" true
        (Graph.label g e.(0) = Some "Restaurant" && Graph.label g e.(1) = Some "Menu"))
    embs

let test_goal_slot_condition () =
  let g = Gql_workload.Gen.restaurants ~seed:5 20 in
  let b = Ast.Build.create () in
  let m = Ast.Build.entity b "Menu" in
  let v = Ast.Build.value b ~cond:[ Ast.Cmp (Ast.Lt, Value.float 20.0) ] () in
  Ast.Build.edge b ~label:"price" m v;
  let cheap = List.length (Eval.goal g (Ast.Build.finish b)) in
  let b2 = Ast.Build.create () in
  let m2 = Ast.Build.entity b2 "Menu" in
  let v2 = Ast.Build.value b2 () in
  Ast.Build.edge b2 ~label:"price" m2 v2;
  let all = List.length (Eval.goal g (Ast.Build.finish b2)) in
  check "some cheap" true (cheap > 0);
  check "strictly fewer" true (cheap < all)

let test_goal_const_value () =
  let g = Gql_workload.Gen.restaurants ~seed:5 10 in
  let b = Ast.Build.create () in
  let c = Ast.Build.entity b "City" in
  let v = Ast.Build.const b (Value.string "Milano") in
  Ast.Build.edge b ~label:"name" c v;
  check_int "exactly one Milano node" 1 (List.length (Eval.goal g (Ast.Build.finish b)))

let test_goal_regex_condition () =
  let g = Gql_workload.Gen.restaurants ~seed:5 10 in
  let b = Ast.Build.create () in
  let r = Ast.Build.entity b "Restaurant" in
  let v = Ast.Build.value b ~cond:[ Ast.Re "Trattoria [0-4]" ] () in
  Ast.Build.edge b ~label:"name" r v;
  check_int "five matching names" 5 (List.length (Eval.goal g (Ast.Build.finish b)))

(* --- fixpoint: the paper's rules ------------------------------------------ *)

let q10 () = Gql_lang.Wglog_text.parse_program
  ~schema:Schema.restaurant_schema Gql_workload.Queries.q10_src

let test_q10_rest_list () =
  let g = Gql_workload.Gen.restaurants ~seed:5 ~menu_fraction:0.5 20 in
  (* expected: restaurants with at least one offers edge *)
  let expected =
    List.length
      (List.filter
         (fun n -> List.exists (fun (nm, _) -> nm = "offers") (Graph.rels g n))
         (Graph.nodes_labelled g "Restaurant"))
  in
  let stats = Eval.run g (q10 ()) in
  check "converged" true (stats.Eval.rounds <= 3);
  check_int "one rest-list created" 1 (List.length (Graph.nodes_labelled g "rest-list"));
  let rl = List.hd (Graph.nodes_labelled g "rest-list") in
  let members = List.filter (fun (nm, _) -> nm = "member") (Graph.rels g rl) in
  check_int "one member per offering restaurant" expected (List.length members);
  (* members are distinct restaurants *)
  check_int "distinct members" expected
    (List.length (List.sort_uniq compare (List.map snd members)))

let test_q10_idempotent () =
  let g = Gql_workload.Gen.restaurants ~seed:5 10 in
  let _ = Eval.run g (q10 ()) in
  let before = (Graph.n_nodes g, Graph.n_edges g) in
  let stats2 = Eval.run g (q10 ()) in
  check "second run adds nothing" true
    ((Graph.n_nodes g, Graph.n_edges g) = before && stats2.Eval.edges_added = 0)

let test_q11_siblings () =
  let g = Graph.create () in
  let idx = Graph.add_complex g "Document" in
  let a = Graph.add_complex g "Document" in
  let b = Graph.add_complex g "Document" in
  let c = Graph.add_complex g "Document" in
  Graph.add_root g idx;
  Graph.link g ~src:idx ~dst:a (Graph.rel_edge "index");
  Graph.link g ~src:idx ~dst:b (Graph.rel_edge "index");
  Graph.link g ~src:a ~dst:c (Graph.rel_edge "link");
  let p = Gql_lang.Wglog_text.parse_program ~schema:Schema.hyperdoc_schema
    Gql_workload.Queries.q11_src in
  let _ = Eval.run g p in
  let sib n = List.filter (fun (nm, _) -> nm = "sibling") (Graph.rels g n) in
  (* a-b, b-a, a-a, b-b: homomorphic semantics derives self-siblings too *)
  check "a sibling b" true (List.mem ("sibling", b) (sib a));
  check "b sibling a" true (List.mem ("sibling", a) (sib b));
  check "c not sibling" true (sib c = [])

let test_q12_root_links () =
  (* chain r -index-> a -index-> b, plus an orphan o with no index in *)
  let g = Graph.create () in
  let r = Graph.add_complex g "Document" in
  let a = Graph.add_complex g "Document" in
  let b = Graph.add_complex g "Document" in
  Graph.add_root g r;
  Graph.link g ~src:r ~dst:a (Graph.rel_edge "index");
  Graph.link g ~src:a ~dst:b (Graph.rel_edge "index");
  let p = Gql_lang.Wglog_text.parse_program ~schema:Schema.hyperdoc_schema
    Gql_workload.Queries.q12_src in
  let _ = Eval.run g p in
  let roots n = List.filter (fun (nm, _) -> nm = "root") (Graph.rels g n) in
  check "r roots a" true (List.mem ("root", a) (roots r));
  check "r roots b (index+)" true (List.mem ("root", b) (roots r));
  check "a roots nothing (has incoming index)" true (roots a = [])

(* --- fixpoint mechanics ----------------------------------------------------- *)

let transitive_closure_src = {|wglog
rule
  node a Document
  node b Document
  node c Document
  edge a link b
  edge b link c
  cedge a link c
end
|}

let chain_graph n =
  let g = Graph.create () in
  let docs = Array.init n (fun _ -> Graph.add_complex g "Document") in
  Graph.add_root g docs.(0);
  for i = 0 to n - 2 do
    Graph.link g ~src:docs.(i) ~dst:docs.(i + 1) (Graph.rel_edge "link")
  done;
  g

let count_links g =
  let n = ref 0 in
  for i = 0 to Graph.n_nodes g - 1 do
    n := !n + List.length (List.filter (fun (nm, _) -> nm = "link") (Graph.rels g i))
  done;
  !n

let test_transitive_closure () =
  let p = Gql_lang.Wglog_text.parse_program transitive_closure_src in
  let g = chain_graph 6 in
  let stats = Eval.run g p in
  (* closure of a 6-chain: 5+4+3+2+1 = 15 links *)
  check_int "closure size" 15 (count_links g);
  check "recursion took rounds" true (stats.Eval.rounds > 2)

let test_naive_equals_seminaive () =
  let p () = Gql_lang.Wglog_text.parse_program transitive_closure_src in
  let g1 = chain_graph 7 in
  let g2 = chain_graph 7 in
  let _ = Eval.run ~strategy:`Naive g1 (p ()) in
  let _ = Eval.run ~strategy:`Semi_naive g2 (p ()) in
  check_int "same closure naive/semi-naive" (count_links g1) (count_links g2);
  check_int "same node count" (Graph.n_nodes g1) (Graph.n_nodes g2)

let test_skolem_per_binding () =
  (* a construction node connected to a query node gets one instance per
     binding *)
  let src = {|wglog
rule
  node r Restaurant
  cnode badge any
  cedge r decorated-with badge
end
|} in
  let g = Gql_workload.Gen.restaurants ~seed:5 6 in
  let n_rest = List.length (Graph.nodes_labelled g "Restaurant") in
  let p = Gql_lang.Wglog_text.parse_program src in
  let _ = Eval.run g p in
  check_int "one badge per restaurant" n_rest
    (List.length (Graph.nodes_labelled g "entity"))

let test_max_rounds_guard () =
  (* a rule that would generate fresh nodes forever is cut by max_rounds:
     each round matches the new node and builds another *)
  let src = {|wglog
rule
  node d Document
  cnode e Document
  cedge d link e
end
|} in
  (* Skolemisation keys on d's binding, so this actually converges after
     2 rounds: new nodes get their own successor once. Guard still
     exercised via tiny max_rounds. *)
  let g = chain_graph 2 in
  let p = Gql_lang.Wglog_text.parse_program src in
  let stats = Eval.run ~max_rounds:1 g p in
  check_int "stopped at guard" 1 stats.Eval.rounds

let test_invalid_program_rejected () =
  let b = Ast.Build.create () in
  let a = Ast.Build.entity b "Document" in
  let c = Ast.Build.entity b ~role:Ast.Construct "Document" in
  Ast.Build.edge b ~label:"x" a c;  (* red edge into green node *)
  let p = { Ast.schema = None; rules = [ Ast.Build.finish b ] } in
  let g = chain_graph 2 in
  match Eval.run g p with
  | _ -> Alcotest.fail "expected Invalid_query"
  | exception Eval.Invalid_query _ -> ()

let test_goal_rejects_collect_query_edge () =
  (* a Collect-mode edge between two query nodes is exactly the shape
     that used to reach the `assert false` in the edge compiler; goal
     now front-runs it with the static check and the typed error *)
  let b = Ast.Build.create () in
  let n0 = Ast.Build.entity b "Document" in
  let n1 = Ast.Build.entity b "Document" in
  Ast.Build.edge b ~mode:Ast.Collect ~label:"member" n0 n1;
  let r = Ast.Build.finish b in
  let g = chain_graph 2 in
  match Eval.goal g r with
  | _ -> Alcotest.fail "expected Invalid_query"
  | exception Eval.Invalid_query _ -> ()

let test_negated_edge_semantics () =
  (* pairwise negation: both endpoints anchored by slot edges *)
  let g = Graph.create () in
  let mk name =
    let d = Graph.add_complex g "Document" in
    let t = Graph.add_atom g (Value.string name) in
    Graph.link g ~src:d ~dst:t (Graph.attr_edge "title");
    d
  in
  let a = mk "a" and b = mk "b" and c = mk "c" in
  Graph.add_root g a;
  ignore c;
  Graph.link g ~src:a ~dst:b (Graph.rel_edge "link");
  let bld = Ast.Build.create () in
  let x = Ast.Build.entity bld "Document" in
  let vx = Ast.Build.value bld () in
  let y = Ast.Build.entity bld "Document" in
  let vy = Ast.Build.value bld () in
  Ast.Build.edge bld ~label:"title" x vx;
  Ast.Build.edge bld ~label:"title" y vy;
  Ast.Build.negated bld ~label:"link" x y;
  let embs = Eval.goal g (Ast.Build.finish bld) in
  (* ordered pairs without a link edge: 9 - 1 = 8 *)
  check_int "non-linked pairs" 8 (List.length embs)

let test_free_negation_universal () =
  (* a crossed edge with an unconstrained endpoint means NOT EXISTS: the
     GraphLog-root reading *)
  let g = Graph.create () in
  let r = Graph.add_complex g "Document" in
  let a = Graph.add_complex g "Document" in
  Graph.add_root g r;
  Graph.link g ~src:r ~dst:a (Graph.rel_edge "index");
  let bld = Ast.Build.create () in
  let o = Ast.Build.entity bld "Document" in
  let d = Ast.Build.entity bld "Document" in
  Ast.Build.negated bld ~label:"index" o d;
  (* d is anchored by a green edge (as in the Q12 figure); o stays free *)
  Ast.Build.derive bld ~label:"is-root" d d;
  let embs = Eval.goal g (Ast.Build.finish bld) in
  (* only r has no incoming index edge *)
  check_int "unindexed documents" 1 (List.length embs)

let () =
  Alcotest.run "gql_wglog"
    [
      ( "schema",
        [
          Alcotest.test_case "consistency" `Quick test_schema_check;
          Alcotest.test_case "data validation" `Quick test_schema_validate_data;
          Alcotest.test_case "edge typing" `Quick test_schema_validate_edges;
          Alcotest.test_case "multiplicities" `Quick test_schema_multiplicities;
        ] );
      ( "checks",
        [
          Alcotest.test_case "rule checks" `Quick test_check_rule;
          Alcotest.test_case "schema checks" `Quick test_check_against_schema;
          Alcotest.test_case "stratification" `Quick test_stratification_warning;
        ] );
      ( "goals",
        [
          Alcotest.test_case "embeddings" `Quick test_goal_embeddings;
          Alcotest.test_case "slot conditions" `Quick test_goal_slot_condition;
          Alcotest.test_case "const values" `Quick test_goal_const_value;
          Alcotest.test_case "regex conditions" `Quick test_goal_regex_condition;
          Alcotest.test_case "negated edges" `Quick test_negated_edge_semantics;
          Alcotest.test_case "free negation" `Quick test_free_negation_universal;
        ] );
      ( "figures",
        [
          Alcotest.test_case "Q10 rest-list" `Quick test_q10_rest_list;
          Alcotest.test_case "Q10 idempotent" `Quick test_q10_idempotent;
          Alcotest.test_case "Q11 siblings" `Quick test_q11_siblings;
          Alcotest.test_case "Q12 root links" `Quick test_q12_root_links;
        ] );
      ( "fixpoint",
        [
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "naive = semi-naive" `Quick test_naive_equals_seminaive;
          Alcotest.test_case "skolem per binding" `Quick test_skolem_per_binding;
          Alcotest.test_case "max rounds guard" `Quick test_max_rounds_guard;
          Alcotest.test_case "invalid rejected" `Quick test_invalid_program_rejected;
          Alcotest.test_case "collect edge rejected" `Quick
            test_goal_rejects_collect_query_edge;
        ] );
    ]
