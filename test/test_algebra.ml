(* Tests for Gql_algebra: plan construction, EXPLAIN rendering, and the
   central equivalence property — plans (both strategies) produce the
   same bindings as the direct Homo matcher. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let people_doc n = Gql_workload.Gen.people ~seed:3 n
let people n = fst (Gql_data.Codec.encode (people_doc n))

let q_src = Gql_workload.Queries.q3_src
let query_of src =
  match (Gql_lang.Xmlgl_text.parse_program src).Gql_xmlgl.Ast.rules with
  | r :: _ -> r.Gql_xmlgl.Ast.query
  | [] -> Alcotest.fail "no rule"

let normalise bs = List.sort compare (List.map Array.to_list bs)

let test_plan_structure () =
  let data = people 20 in
  let q = query_of q_src in
  let compiled = Gql_xmlgl.Matching.compile data q in
  let job = Gql_algebra.Planner.job_of_xmlgl compiled in
  let plan = Gql_algebra.Planner.build data job in
  (* 4 pattern nodes: 1 scan + 3 expands + 1 residual filter = 5 ops *)
  check_int "operator count" 5 (Gql_algebra.Plan.size plan);
  check_int "all vars bound" 4
    (List.length (List.sort_uniq compare (Gql_algebra.Plan.vars plan)))

let test_explain () =
  let data = people 10 in
  let s = Gql_algebra.Exec.explain_xmlgl data (query_of q_src) in
  check "mentions scan" true (Gql_regex.Chre.search (Gql_regex.Chre.compile "scan") s);
  check "mentions expand" true (Gql_regex.Chre.search (Gql_regex.Chre.compile "expand") s);
  check "mentions filter" true (Gql_regex.Chre.search (Gql_regex.Chre.compile "filter") s)

let test_greedy_starts_selective () =
  (* greedy must not start from the most common node type *)
  let data = people 30 in
  let q = query_of q_src in
  let s = Gql_algebra.Exec.explain_xmlgl ~strategy:`Greedy data q in
  (* the deepest line (innermost op) is the scan; it must not scan the
     most frequent label.  We just require a single scan (connected
     pattern => no cross products). *)
  let count_scans =
    List.length
      (List.filter
         (fun l -> Gql_regex.Chre.search (Gql_regex.Chre.compile "scan") l)
         (String.split_on_char '\n' s))
  in
  check_int "single scan" 1 count_scans

let agree src data =
  let q = query_of src in
  let reference = normalise (Gql_xmlgl.Matching.run data q) in
  let greedy = normalise (Gql_algebra.Exec.run_xmlgl ~strategy:`Greedy data q) in
  let fixed = normalise (Gql_algebra.Exec.run_xmlgl ~strategy:`Fixed data q) in
  reference = greedy && reference = fixed

let test_equivalence_q3 () = check "q3" true (agree Gql_workload.Queries.q3_src (people 25))
let test_equivalence_q6 () = check "q6 (negation)" true (agree Gql_workload.Queries.q6_src (people 25))
let test_equivalence_q9 () = check "q9" true (agree Gql_workload.Queries.q9_src (people 25))

let test_equivalence_bib () =
  let data = fst (Gql_data.Codec.encode (Gql_workload.Gen.bibliography ~seed:9 15)) in
  check "q2 (selection)" true (agree Gql_workload.Queries.q2_src data);
  check "q7 (deep)" true (agree Gql_workload.Queries.q7_src data);
  check "q8 (ordered)" true (agree Gql_workload.Queries.q8_src data)

let test_equivalence_greengrocer () =
  let data = fst (Gql_data.Codec.encode (Gql_workload.Gen.greengrocer ~seed:2 20)) in
  check "q4 (value join)" true (agree Gql_workload.Queries.q4_src data);
  check "q5 (regex)" true (agree Gql_workload.Queries.q5_src data)

(* disconnected pattern -> cross product *)
let test_cross_product () =
  let data = people 5 in
  let src = {|xmlgl
rule
query
  node $a elem firstname
  node $b elem lastname
construct
  node c new pair
  root c
end
|} in
  let q = query_of src in
  let res = Gql_algebra.Exec.run_xmlgl data q in
  check_int "5 x 5 pairs" 25 (List.length res);
  let s = Gql_algebra.Exec.explain_xmlgl data q in
  check "uses cross" true (Gql_regex.Chre.search (Gql_regex.Chre.compile "cross") s);
  check "matches reference" true (agree src data)

(* Property over random people-db sizes: both strategies agree with the
   matcher on the full suite of XML-GL queries. *)
let prop_strategies_agree =
  QCheck.Test.make ~name:"plans agree with matcher on Q3/Q6" ~count:15
    QCheck.(make Gen.(int_range 3 25))
    (fun n ->
      let data = people n in
      agree Gql_workload.Queries.q3_src data
      && agree Gql_workload.Queries.q6_src data)

(* --- cost model and planner ordering regressions (PR 8) --------------- *)

module H = Gql_graph.Homo
module Graph = Gql_data.Graph

let contains s lit = Gql_regex.Chre.search (Gql_regex.Chre.compile lit) s
let label_pred l _ k = k = Graph.Complex l

(* A graph whose label cardinalities are the whole point: A x5, B x100,
   C x7.  One A node carries an edge to a B and to a C so the patterns
   below are satisfiable; shape is otherwise irrelevant. *)
let counted_graph () =
  let g = Graph.create () in
  let add l n = List.init n (fun _ -> Graph.add_complex g l) in
  (match (add "A" 5, add "B" 100, add "C" 7) with
  | x :: _, y :: _, z :: _ ->
    Graph.link g ~src:x ~dst:y (Graph.rel_edge "r");
    Graph.link g ~src:x ~dst:z (Graph.rel_edge "r")
  | _ -> assert false);
  g

let test_capped_estimate_order () =
  let data = counted_graph () in
  let pattern =
    {
      H.p_nodes = [| label_pred "A"; label_pred "B"; label_pred "C" |];
      p_edges =
        [ (0, H.Direct (fun _ -> true), 1); (0, H.Direct (fun _ -> true), 2) ];
    }
  in
  let job =
    { Gql_algebra.Planner.pattern; residuals = []; provider = None }
  in
  (* True counts are A=5 < C=7 << B=100: bind A, then C, then B.  The
     pre-PR-8 planner capped *every* scan estimate at best+1 during the
     counting pass, so B and C both reported 6 and B (the lower
     variable id) was expanded first.  [Plan.vars] lists the binding
     order outermost-first. *)
  List.iter
    (fun strategy ->
      let plan = Gql_algebra.Planner.build ~strategy data job in
      check_int "binding order A,C,B"
        0
        (compare (Gql_algebra.Plan.vars plan) [ 1; 2; 0 ]))
    [ `Greedy; `Cost ]

let test_parallel_edges_prefer_direct () =
  let data = counted_graph () in
  let rp =
    Gql_graph.Regpath.compile
      (fun sym (e : Graph.edge) ->
        Gql_lang.Label_re.symbol_matches sym e.Graph.name)
      (Gql_lang.Label_re.parse ".+")
  in
  (* Two parallel edges between the same endpoints: the regular path is
     declared first, but the Direct edge must carry the Expand and the
     path must be demoted to a post-hoc edge check. *)
  let pattern =
    {
      H.p_nodes = [| label_pred "A"; label_pred "B" |];
      p_edges = [ (0, H.Path rp, 1); (0, H.Direct (fun _ -> true), 1) ];
    }
  in
  let job =
    { Gql_algebra.Planner.pattern; residuals = []; provider = None }
  in
  List.iter
    (fun strategy ->
      let plan = Gql_algebra.Planner.build ~strategy data job in
      let s = Gql_algebra.Plan.to_string plan in
      check "expand rides the direct edge" true (contains s "via direct");
      check "path edge demoted to a check" true (contains s "\\(path\\)");
      check "no path expansion" false (contains s "via path"))
    [ `Greedy; `Cost; `Fixed ]

let test_sentinel_million_candidates () =
  (* Regression for the old pick_next scoring [est + 1_000_000 if
     unconnected]: a *connected* node backed by a posting set of more
     than a million candidates scored worse than a 16-candidate
     unconnected one, so the planner started a cartesian product on a
     connected pattern.  The fixture must genuinely cross the sentinel,
     hence the million items. *)
  let data = Gql_workload.Gen.wide_graph ~seed:47 ~hubs:16 1_000_100 in
  let idx = Gql_data.Index.build data in
  let q =
    Gql_match.Parse.parse
      "MATCH (h:Hub)-[:rel]->(i:Item)<-[:rel]-(g:Hub)\nRETURN h, i, g\n"
  in
  let c = Gql_match.Compile.compile q in
  let job = Gql_match.Compile.job ~index:idx c in
  List.iter
    (fun strategy ->
      let plan = Gql_algebra.Planner.build ~strategy data job in
      check "connected pattern has no cross" false
        (Gql_algebra.Plan.has_cross plan))
    [ `Greedy; `Cost ]

(* --- golden cost-annotated EXPLAIN suite ------------------------------ *)

let check_str = Alcotest.(check string)

let explain_suite () : string =
  let buf = Buffer.create 4096 in
  let section name s =
    Buffer.add_string buf ("== " ^ name ^ " ==\n");
    Buffer.add_string buf s
  in
  let graph_of doc = fst (Gql_data.Codec.encode doc) in
  let with_idx data = (data, Gql_data.Index.build data) in
  let bib, bib_idx =
    with_idx (graph_of (Gql_workload.Gen.bibliography ~seed:61 100))
  in
  let ppl, ppl_idx =
    with_idx (graph_of (Gql_workload.Gen.people ~seed:62 400))
  in
  let grn, grn_idx =
    with_idx (graph_of (Gql_workload.Gen.greengrocer ~seed:63 800))
  in
  let rst, rst_idx = with_idx (Gql_workload.Gen.restaurants ~seed:64 200) in
  let m (data, idx) name src =
    section name
      (Gql_match.Eval.explain ~index:idx data (Gql_match.Parse.parse src))
  in
  m (bib, bib_idx) "M1 (bibliography)" Gql_workload.Queries.m1_src;
  m (bib, bib_idx) "M2 (bibliography)" Gql_workload.Queries.m2_src;
  m (ppl, ppl_idx) "M3 (people)" Gql_workload.Queries.m3_src;
  m (grn, grn_idx) "M4 (greengrocer)" Gql_workload.Queries.m4_src;
  m (rst, rst_idx) "M5 (restaurants)" Gql_workload.Queries.m5_src;
  let x (data, idx) name src =
    section name (Gql_algebra.Exec.explain_xmlgl ~index:idx data (query_of src))
  in
  x (bib, bib_idx) "Q2 (bibliography, XML-GL)" Gql_workload.Queries.q2_src;
  x (ppl, ppl_idx) "Q3 (people, XML-GL)" Gql_workload.Queries.q3_src;
  Buffer.contents buf

(* Byte-compared against test/golden/explain_cost.txt: any change to
   the cost formulas, calibration constants, estimate plumbing or plan
   rendering shows up as a diff here.  To update, run the test and copy
   the printed actual over the golden file. *)
let test_explain_golden () =
  let golden =
    let ic = open_in "golden/explain_cost.txt" in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let actual = explain_suite () in
  if actual <> golden then (
    Printf.printf "--- actual golden/explain_cost.txt ---\n%s" actual;
    check_str "cost-annotated EXPLAIN suite" golden actual)

(* The enumerated (cost-based) planner must agree with greedy on result
   bytes for arbitrary fuzz-generated documents and MATCH queries — the
   same canonical-body comparison the differential fuzzer runs. *)
let prop_cost_matches_greedy =
  QCheck.Test.make ~name:"cost plans match greedy result bytes (fuzz)"
    ~count:200
    QCheck.(make Gen.(int_bound 0x3FFFFFFF))
    (fun seed ->
      let case = Gql_fuzz.Casegen.generate ~seed in
      let db = Gql_core.Gql.load_xml_string case.Gql_fuzz.Casegen.xml in
      let data = db.Gql_core.Gql.graph in
      let index = Gql_core.Gql.index db in
      let q = Gql_match.Parse.parse case.Gql_fuzz.Casegen.match_src in
      match Gql_match.Compile.compile q with
      | exception Gql_match.Compile.Error _ -> true
      | c ->
        let body strategy =
          Gql_match.Eval.body data c
            (Gql_match.Eval.bindings_algebra ~strategy ~index data c)
        in
        body `Cost = body `Greedy)

let () =
  Alcotest.run "gql_algebra"
    [
      ( "planner",
        [
          Alcotest.test_case "plan structure" `Quick test_plan_structure;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "greedy single scan" `Quick test_greedy_starts_selective;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "q3 people" `Quick test_equivalence_q3;
          Alcotest.test_case "q6 negation" `Quick test_equivalence_q6;
          Alcotest.test_case "q9 grouping" `Quick test_equivalence_q9;
          Alcotest.test_case "bibliography queries" `Quick test_equivalence_bib;
          Alcotest.test_case "greengrocer queries" `Quick test_equivalence_greengrocer;
          Alcotest.test_case "cross product" `Quick test_cross_product;
          QCheck_alcotest.to_alcotest prop_strategies_agree;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "capped estimates keep true order" `Quick
            test_capped_estimate_order;
          Alcotest.test_case "parallel edges prefer direct" `Quick
            test_parallel_edges_prefer_direct;
          Alcotest.test_case "million-candidate node stays connected" `Quick
            test_sentinel_million_candidates;
          Alcotest.test_case "golden cost-annotated explains" `Quick
            test_explain_golden;
          QCheck_alcotest.to_alcotest prop_cost_matches_greedy;
        ] );
    ]
