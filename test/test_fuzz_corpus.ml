(* The fuzzer's regression loop: every minimized repro in corpus/ is
   replayed on each test run, so once the fuzzer has caught a bug it
   can never quietly come back.  A bounded deterministic smoke run and
   a determinism check keep the harness itself honest. *)

module Casegen = Gql_fuzz.Casegen
module Oracle = Gql_fuzz.Oracle
module Corpus = Gql_fuzz.Corpus
module Driver = Gql_fuzz.Driver

let corpus_dir = "corpus"

let corpus_files () =
  if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort compare
    |> List.map (Filename.concat corpus_dir)
  else []

let test_corpus_present () =
  let files = corpus_files () in
  Alcotest.(check bool)
    "at least the three seeded crash-path repros" true
    (List.length files >= 3)

let test_replay_corpus () =
  List.iter
    (fun path ->
      let r = Corpus.load path in
      match Driver.replay r with
      | Oracle.Pass -> ()
      | Oracle.Fail detail ->
        Alcotest.failf "%s replays red: %s" path detail)
    (corpus_files ())

(* The corpus parser must read back exactly what the writer produced,
   or a minimized repro would mutate on its way into the corpus. *)
let test_corpus_roundtrip () =
  let r =
    {
      Corpus.seed = 42;
      oracle = "scan-vs-index";
      detail = "something disagreed";
      graph_seed = 7;
      source = "xmlgl\nresult result\nrule\nquery\n  node $q0 elem a\nend";
      xml = "<a id=\"n1\">1</a>";
    }
  in
  let r' = Corpus.parse (Corpus.render r) in
  Alcotest.(check int) "seed" r.Corpus.seed r'.Corpus.seed;
  Alcotest.(check string) "oracle" r.Corpus.oracle r'.Corpus.oracle;
  Alcotest.(check string) "detail" r.Corpus.detail r'.Corpus.detail;
  Alcotest.(check int) "graph_seed" r.Corpus.graph_seed r'.Corpus.graph_seed;
  Alcotest.(check string) "source" r.Corpus.source r'.Corpus.source;
  Alcotest.(check string) "xml" r.Corpus.xml r'.Corpus.xml

(* A small deterministic run over every oracle: the generators only
   emit well-formed programs, so all redundant paths must agree. *)
let test_smoke_all_oracles () =
  let cfg =
    {
      Driver.base_seed = 20260806;
      cases = 20;
      oracles = Oracle.all;
      out_dir = None;
      log = ignore;
    }
  in
  let outcome = Driver.run cfg in
  Alcotest.(check int) "cases" 20 outcome.Driver.cases_run;
  (match outcome.Driver.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "seed=%d oracle=%s: %s" f.Driver.seed
      (Oracle.to_string f.Driver.oracle)
      f.Driver.detail);
  Alcotest.(check bool)
    "every oracle contributed checks" true
    (outcome.Driver.checks_run >= 20 * 4)

(* Same seed, same case — byte for byte.  This is the property that
   makes a failure report (just a seed and an oracle name) a repro. *)
let test_generation_deterministic () =
  for seed = 1 to 10 do
    let a = Casegen.generate ~seed and b = Casegen.generate ~seed in
    Alcotest.(check string) "xml" a.Casegen.xml b.Casegen.xml;
    Alcotest.(check string) "xmlgl" a.Casegen.xmlgl_src b.Casegen.xmlgl_src;
    Alcotest.(check string) "wglog" a.Casegen.wglog_src b.Casegen.wglog_src;
    Alcotest.(check int) "graph_seed" a.Casegen.graph_seed b.Casegen.graph_seed;
    Alcotest.(check string) "regex" a.Casegen.regex_src b.Casegen.regex_src
  done

(* Generated artifacts must round-trip through the textual parsers:
   the served path re-parses the printed program, so a print/parse
   mismatch would show up as a spurious oracle failure. *)
let test_generated_programs_parse () =
  for seed = 1 to 25 do
    let c = Casegen.generate ~seed in
    (match Gql_core.Gql.parse_xmlgl c.Casegen.xmlgl_src with
    | _ -> ()
    | exception exn ->
      Alcotest.failf "seed %d xmlgl does not re-parse: %s" seed
        (Printexc.to_string exn));
    (match Gql_core.Gql.parse_wglog c.Casegen.wglog_src with
    | _ -> ()
    | exception exn ->
      Alcotest.failf "seed %d wglog does not re-parse: %s" seed
        (Printexc.to_string exn));
    match Gql_lang.Label_re.parse c.Casegen.regex_src with
    | _ -> ()
    | exception exn ->
      Alcotest.failf "seed %d regex does not re-parse: %s" seed
        (Printexc.to_string exn)
  done

(* The shrinker against a synthetic failure: only one subtree of the
   document and one line of the query matter, and greedy minimization
   must strip everything else while keeping the query parseable. *)
let test_shrinker_minimizes () =
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  let xml =
    "<root><keep>1</keep><a><b>2</b><c>3</c></a><d><e>4</e></d></root>"
  in
  let source =
    "xmlgl\nresult result\nrule\nquery\n  node $q0 elem keep\n\
     \  node $q1 elem a\nconstruct\n  node c0 new out\n  root c0\nend"
  in
  let still_fails ~xml ~source =
    contains ~needle:"<keep>" xml && contains ~needle:"elem keep" source
  in
  let parses s =
    match Gql_core.Gql.parse_xmlgl s with _ -> true | exception _ -> false
  in
  let xml', source' = Gql_fuzz.Shrink.minimize ~parses ~still_fails ~xml ~source in
  Alcotest.(check bool) "doc failure preserved" true (contains ~needle:"<keep>" xml');
  Alcotest.(check bool) "doc shrank" true (not (contains ~needle:"<b>" xml'));
  Alcotest.(check bool) "unneeded subtree gone" true (not (contains ~needle:"<e>" xml'));
  Alcotest.(check bool) "query failure preserved" true
    (contains ~needle:"elem keep" source');
  Alcotest.(check bool) "unneeded query line gone" true
    (not (contains ~needle:"elem a" source'));
  Alcotest.(check bool) "minimized query still parses" true (parses source')

let () =
  Alcotest.run "fuzz_corpus"
    [
      ( "corpus",
        [
          Alcotest.test_case "present" `Quick test_corpus_present;
          Alcotest.test_case "replays green" `Quick test_replay_corpus;
          Alcotest.test_case "roundtrip" `Quick test_corpus_roundtrip;
        ] );
      ( "harness",
        [
          Alcotest.test_case "smoke all oracles" `Quick test_smoke_all_oracles;
          Alcotest.test_case "deterministic" `Quick
            test_generation_deterministic;
          Alcotest.test_case "programs parse" `Quick
            test_generated_programs_parse;
          Alcotest.test_case "shrinker minimizes" `Quick test_shrinker_minimizes;
        ] );
    ]
