(* Tests for the frozen graph layer: CSR freeze round-trips against the
   mutable Digraph it snapshots, and the index-backed embedding search
   returns exactly the bindings of the scan-based one — same sets, same
   order — across both engines' query corpora, including negation,
   regular paths and pre-bound seeds. *)

open Gql_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- CSR freeze round-trip ------------------------------------------- *)

(* A random multigraph with string payloads and labels. *)
let random_digraph seed =
  let st = Random.State.make [| seed |] in
  let n = 1 + Random.State.int st 40 in
  let g = Digraph.create ~dummy:"" in
  for i = 0 to n - 1 do
    ignore (Digraph.add_node g (Printf.sprintf "n%d" i))
  done;
  let m = Random.State.int st (4 * n) in
  for _ = 1 to m do
    let src = Random.State.int st n and dst = Random.State.int st n in
    Digraph.add_edge g ~src ~dst (Printf.sprintf "e%d" (Random.State.int st 5))
  done;
  g

let csr_matches_digraph g =
  let c = Csr.freeze g in
  Csr.n_nodes c = Digraph.n_nodes g
  && Csr.n_edges c = Digraph.n_edges g
  && List.for_all
       (fun i ->
         Csr.payload c i = Digraph.payload g i
         && Csr.out_degree c i = Digraph.out_degree g i
         && Csr.in_degree c i = Digraph.in_degree g i
         && Csr.succ c i = Digraph.succ g i
         && Csr.pred c i = Digraph.pred g i)
       (List.init (Digraph.n_nodes g) Fun.id)

let prop_freeze_roundtrip =
  QCheck.Test.make ~name:"freeze round-trips random digraphs" ~count:100
    QCheck.(make Gen.(int_range 0 10_000))
    (fun seed -> csr_matches_digraph (random_digraph seed))

let test_freeze_empty () =
  let g = Digraph.create ~dummy:"" in
  let c = Csr.freeze g in
  check_int "no nodes" 0 (Csr.n_nodes c);
  check_int "no edges" 0 (Csr.n_edges c)

let test_freeze_edgeless () =
  let g = Digraph.create ~dummy:"" in
  ignore (Digraph.add_node g "a");
  ignore (Digraph.add_node g "b");
  let c = Csr.freeze g in
  check_int "nodes" 2 (Csr.n_nodes c);
  check_int "degree" 0 (Csr.degree c 0);
  check "has_edge" false (Csr.has_edge c 0 1)

let test_freeze_workload () =
  (* real data graphs, including parallel edges and attribute slots *)
  let graphs =
    [
      (Gql_data.Graph.digraph (Gql_workload.Gen.restaurants 30));
      (Gql_data.Graph.digraph (Gql_workload.Gen.hyperdocs ~fanout:3 25));
      (Gql_data.Graph.digraph (Gql_workload.Gen.to_graph (Gql_workload.Gen.random_tree 120)));
    ]
  in
  List.iter
    (fun g ->
      let c = Csr.freeze g in
      check "counts" true
        (Csr.n_nodes c = Digraph.n_nodes g && Csr.n_edges c = Digraph.n_edges g);
      for i = 0 to Digraph.n_nodes g - 1 do
        check "succ" true (Csr.succ c i = Digraph.succ g i);
        check "pred" true (Csr.pred c i = Digraph.pred g i);
        check_int "degree" (Digraph.out_degree g i + Digraph.in_degree g i)
          (Csr.degree c i)
      done)
    graphs

let test_freeze_is_snapshot () =
  let g = Digraph.create ~dummy:"" in
  let a = Digraph.add_node g "a" and b = Digraph.add_node g "b" in
  Digraph.add_edge g ~src:a ~dst:b "x";
  let c = Csr.freeze g in
  Digraph.add_edge g ~src:b ~dst:a "y";
  check_int "frozen edge count" 1 (Csr.n_edges c);
  check_int "live edge count" 2 (Digraph.n_edges g)

(* --- indexed vs scan: XML-GL corpus ---------------------------------- *)

let doc_for = function
  | `Bibliography -> Gql_workload.Gen.bibliography 25
  | `Greengrocer -> Gql_workload.Gen.greengrocer 25
  | `People | `Restaurants | `Hyperdocs -> Gql_workload.Gen.people 25

let test_xmlgl_corpus_equivalence () =
  List.iter
    (fun (e : Gql_workload.Queries.entry) ->
      match e.kind with
      | `Wglog _ -> ()
      | `Xmlgl p ->
        let db = Gql_core.Gql.of_document (doc_for e.workload) in
        let data = db.Gql_core.Gql.graph in
        let idx = Gql_data.Index.build data in
        List.iter
          (fun (r : Gql_xmlgl.Ast.rule) ->
            let q = r.Gql_xmlgl.Ast.query in
            let scan = Gql_xmlgl.Matching.run data q in
            let indexed = Gql_xmlgl.Matching.run ~index:idx data q in
            check (e.name ^ " identical bindings, identical order") true
              (scan = indexed);
            (* the algebra executor, with and without the index *)
            let norm bs = List.sort compare (List.map Array.to_list bs) in
            check (e.name ^ " algebra agrees") true
              (norm (Gql_algebra.Exec.run_xmlgl data q)
              = norm (Gql_algebra.Exec.run_xmlgl ~index:idx data q)))
          (Lazy.force p).Gql_xmlgl.Ast.rules)
    Gql_workload.Queries.suite

let prop_xmlgl_random_docs =
  (* indexed = scan on random documents too, not just the fixed corpus *)
  QCheck.Test.make ~name:"indexed = scan on random documents" ~count:30
    QCheck.(make Gen.(int_range 1 500))
    (fun seed ->
      let db =
        Gql_core.Gql.of_document (Gql_workload.Gen.random_tree ~seed 100)
      in
      let data = db.Gql_core.Gql.graph in
      let idx = Gql_data.Index.build data in
      let src =
        {|xmlgl
rule
query
  node $a elem item
  node $b elem a
  deep $a $b
construct
  node c copy $b
  root c
end
|}
      in
      let p = Gql_core.Gql.parse_xmlgl src in
      let q = (List.hd p.Gql_xmlgl.Ast.rules).Gql_xmlgl.Ast.query in
      Gql_xmlgl.Matching.run data q
      = Gql_xmlgl.Matching.run ~index:idx data q)

(* --- indexed vs scan: WG-Log ----------------------------------------- *)

let wglog_graph_for = function
  | `Restaurants -> Gql_workload.Gen.restaurants 30
  | _ -> Gql_workload.Gen.hyperdocs ~fanout:3 25

let test_wglog_corpus_equivalence () =
  List.iter
    (fun (e : Gql_workload.Queries.entry) ->
      match e.kind with
      | `Xmlgl _ -> ()
      | `Wglog p ->
        let data = wglog_graph_for e.workload in
        let idx = Gql_data.Index.build data in
        List.iter
          (fun r ->
            let cq = Gql_wglog.Eval.compile_query r in
            let scan = Gql_wglog.Eval.query_embeddings data r cq in
            let indexed =
              Gql_wglog.Eval.query_embeddings ~index:idx data r cq
            in
            check (e.name ^ " identical embeddings") true (scan = indexed))
          (Lazy.force p).Gql_wglog.Ast.rules)
    Gql_workload.Queries.suite

let test_wglog_fixpoint_equivalence () =
  (* full programs: indexed and unindexed runs derive the same graph *)
  List.iter
    (fun (e : Gql_workload.Queries.entry) ->
      match e.kind with
      | `Xmlgl _ -> ()
      | `Wglog p ->
        let run use_index =
          let data = wglog_graph_for e.workload in
          let stats =
            Gql_wglog.Eval.run ~use_index data (Lazy.force p)
          in
          ( stats.Gql_wglog.Eval.embeddings_found,
            stats.Gql_wglog.Eval.nodes_added,
            stats.Gql_wglog.Eval.edges_added,
            Gql_data.Graph.n_nodes data,
            Gql_data.Graph.n_edges data )
        in
        check (e.name ^ " fixpoint agrees") true (run true = run false))
    Gql_workload.Queries.suite

(* --- handcrafted rules: negation, paths, pre-bound seeds -------------- *)

let offers_rule () =
  (* a:Restaurant -offers-> m:Menu *)
  let open Gql_wglog.Ast.Build in
  let b = create () in
  let a = entity b "Restaurant" in
  let m = entity b "Menu" in
  edge b ~label:"offers" a m;
  finish b

let no_menu_rule () =
  (* a:Restaurant with no offers edge (free negated endpoint) *)
  let open Gql_wglog.Ast.Build in
  let b = create () in
  let a = entity b "Restaurant" in
  let c = entity b "City" in
  let m = entity b "Menu" in
  edge b ~label:"located-in" a c;
  negated b ~label:"offers" a m;
  finish b

let bound_negation_rule () =
  (* a -index-> x, a -link-> y, and x -link-> y must NOT exist: a
     negated edge whose endpoints both bind *)
  let open Gql_wglog.Ast.Build in
  let b = create () in
  let a = entity b "Document" in
  let x = entity b "Document" in
  let y = entity b "Document" in
  edge b ~label:"index" a x;
  edge b ~label:"link" a y;
  negated b ~label:"link" x y;
  finish b

let path_rule () =
  (* a =index+=> d: regular path *)
  let open Gql_wglog.Ast.Build in
  let b = create () in
  let a = entity b "Document" in
  let d = entity b "Document" in
  regex b Gql_regex.Syntax.(plus (sym "index")) a d;
  finish b

let equivalent ?pre_bound data r =
  let idx = Gql_data.Index.build data in
  let cq = Gql_wglog.Eval.compile_query r in
  Gql_wglog.Eval.query_embeddings ?pre_bound data r cq
  = Gql_wglog.Eval.query_embeddings ?pre_bound ~index:idx data r cq

let test_handcrafted_equivalence () =
  let rest = Gql_workload.Gen.restaurants 40 in
  let web = Gql_workload.Gen.hyperdocs ~fanout:3 ~link_factor:2 30 in
  check "plain edges" true (equivalent rest (offers_rule ()));
  check "free negation" true (equivalent rest (no_menu_rule ()));
  check "bound negation" true (equivalent web (bound_negation_rule ()));
  check "regular path" true (equivalent web (path_rule ()))

let test_pre_bound_equivalence () =
  let rest = Gql_workload.Gen.restaurants 40 in
  let r = offers_rule () in
  let cq = Gql_wglog.Eval.compile_query r in
  (* seed pattern position 0 (the Restaurant) with each candidate *)
  let some_restaurants =
    List.filteri
      (fun i _ -> i < 5)
      (List.filter
         (fun n ->
           match Gql_data.Graph.kind rest n with
           | Gql_data.Graph.Complex "Restaurant" -> true
           | _ -> false)
         (List.init (Gql_data.Graph.n_nodes rest) Fun.id))
  in
  check "has seeds" true (some_restaurants <> []);
  List.iter
    (fun seed ->
      check "seeded search agrees" true
        (equivalent ~pre_bound:[ (0, seed) ] rest r);
      ignore cq)
    some_restaurants

let test_sanity_nonempty () =
  (* guard against vacuous equivalence: these rules really do match *)
  let rest = Gql_workload.Gen.restaurants 40 in
  let web = Gql_workload.Gen.hyperdocs ~fanout:3 ~link_factor:2 30 in
  let idx_r = Gql_data.Index.build rest in
  let idx_w = Gql_data.Index.build web in
  let count idx data r =
    List.length (Gql_wglog.Eval.goal ~index:idx data r)
  in
  check "offers matches" true (count idx_r rest (offers_rule ()) > 0);
  check "no-menu matches" true (count idx_r rest (no_menu_rule ()) > 0);
  check "path matches" true (count idx_w web (path_rule ()) > 0)

(* --- index cache ------------------------------------------------------ *)

let test_cache_refresh () =
  let open Gql_data in
  let data = Gql_workload.Gen.restaurants 10 in
  let c = Index.cache () in
  let i1 = Index.refresh c data in
  let i2 = Index.refresh c data in
  check "cached while unchanged" true (i1 == i2);
  let n = Graph.add_complex data "Restaurant" in
  ignore n;
  let i3 = Index.refresh c data in
  check "rebuilt after growth" true (not (i1 == i3));
  check_int "sees the new node" (Graph.n_nodes data) (Index.n_nodes i3)

(* --- interned symbol plane ------------------------------------------- *)

(* Index.build writes each node's interned label id onto the frozen CSR
   ([Csr.node_sym]); the plane must round-trip through the snapshot's
   symtab, atoms must stay unlabelled (-1), and ids are snapshot-local:
   a different snapshot may assign different ids to the same strings. *)
let test_symbol_plane () =
  let open Gql_data in
  let data = Graph.create () in
  let r = Graph.add_complex data "Restaurant" in
  let m = Graph.add_complex data "Menu" in
  let v = Graph.add_atom data (Value.string "bistro") in
  Graph.link data ~src:r ~dst:m (Graph.rel_edge "offers");
  Graph.link data ~src:r ~dst:v (Graph.attr_edge "name");
  let idx = Index.build data in
  let st = Index.symtab idx in
  check "labels interned" true
    (Symtab.name st (Index.node_sym idx r) = "Restaurant"
    && Symtab.name st (Index.node_sym idx m) = "Menu");
  check_int "atom has no label sym" (-1) (Index.node_sym idx v);
  check_int "label_sym round-trip" (Index.node_sym idx r)
    (Index.label_sym idx "Restaurant");
  check_int "missing label" (-1) (Index.label_sym idx "Pub");
  check "sym bucket = label bucket" true
    (Index.complex_with_sym idx (Index.label_sym idx "Menu")
    = Index.complex_with_label idx "Menu");
  (* snapshot-local: a second snapshot interning in a different order
     can give "Menu" a different id, and each index only answers for
     its own ids *)
  let data2 = Graph.create () in
  let m2 = Graph.add_complex data2 "Menu" in
  let idx2 = Index.build data2 in
  check "own snapshot resolves" true
    (Gql_graph.Iset.to_list (Index.complex_with_label idx2 "Menu") = [ m2 ])

let () =
  Alcotest.run "csr"
    [
      ( "freeze",
        [
          QCheck_alcotest.to_alcotest prop_freeze_roundtrip;
          Alcotest.test_case "empty graph" `Quick test_freeze_empty;
          Alcotest.test_case "edgeless graph" `Quick test_freeze_edgeless;
          Alcotest.test_case "workload graphs" `Quick test_freeze_workload;
          Alcotest.test_case "snapshot semantics" `Quick test_freeze_is_snapshot;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "xmlgl corpus" `Quick test_xmlgl_corpus_equivalence;
          QCheck_alcotest.to_alcotest prop_xmlgl_random_docs;
          Alcotest.test_case "wglog corpus" `Quick test_wglog_corpus_equivalence;
          Alcotest.test_case "wglog fixpoints" `Quick test_wglog_fixpoint_equivalence;
          Alcotest.test_case "handcrafted rules" `Quick test_handcrafted_equivalence;
          Alcotest.test_case "pre-bound seeds" `Quick test_pre_bound_equivalence;
          Alcotest.test_case "matches are non-empty" `Quick test_sanity_nonempty;
        ] );
      ( "symbols",
        [ Alcotest.test_case "interned label plane" `Quick test_symbol_plane ] );
      ( "cache",
        [ Alcotest.test_case "refresh" `Quick test_cache_refresh ] );
    ]
