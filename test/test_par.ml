(* Tests for Gql_graph.Par and the domain-parallel evaluation paths:
   the chunked scheduler itself (order, exceptions, budget accounting)
   and the determinism guarantee — every engine must produce results
   byte-identical to its sequential run at any domain count, including
   WG-Log fixpoints whose construction adds nodes mid-round. *)

module Par = Gql_graph.Par
module Graph = Gql_data.Graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- the scheduler ---------------------------------------------------- *)

let test_map_chunks_identity () =
  List.iter
    (fun domains ->
      List.iter
        (fun n ->
          let chunks =
            Par.map_chunks ~domains ~n (fun lo hi ->
                List.init (hi - lo) (fun k -> lo + k))
          in
          Alcotest.(check (list int))
            (Printf.sprintf "tiles [0,%d) at %d domains" n domains)
            (List.init n Fun.id) (List.concat chunks))
        [ 0; 1; 2; 5; 37; 100 ])
    [ 1; 2; 3; 8 ]

let test_concat_map_order () =
  let xs = List.init 57 (fun i -> i) in
  let f i = [ i * 2; (i * 2) + 1 ] in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "concat_map at %d domains" domains)
        (List.concat_map f xs)
        (Par.concat_map_chunks ~domains f xs))
    [ 1; 2; 4; 8 ]

exception Boom of int

let test_exception_propagation () =
  (* every chunk raises; the lowest-numbered chunk's exception must be
     the one re-raised, after all domains have joined *)
  match Par.map_chunks ~domains:4 ~n:40 (fun lo _ -> raise (Boom lo)) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom lo -> check_int "lowest failing chunk wins" 0 lo

let test_exception_leaves_scheduler_usable () =
  (match Par.map_chunks ~domains:4 ~n:16 (fun _ _ -> raise Exit) with
  | _ -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  let again =
    Par.map_chunks ~domains:4 ~n:16 (fun lo hi -> hi - lo) |> List.fold_left ( + ) 0
  in
  check_int "next call still tiles the range" 16 again

let test_budget_accounting () =
  let before = Par.auto_domains () in
  check "auto_domains is at least 1" true (before >= 1);
  Par.charged (fun () ->
      check_int "one unit held while charged" (max 1 (before - 1))
        (Par.auto_domains ()));
  check_int "unit refunded afterwards" before (Par.auto_domains ());
  (* explicit fan-out must refund everything it charged *)
  ignore (Par.map_chunks ~domains:8 ~n:64 (fun lo hi -> hi - lo));
  check_int "map_chunks refunds its extra domains" before (Par.auto_domains ())

let test_nested_call_degrades () =
  (* a chunk body that fans out again must run sequentially, not spawn
     recursively — observable as exactly one inner chunk per outer *)
  let inner_chunks =
    Par.map_chunks ~domains:4 ~n:8 (fun _ _ ->
        List.length (Par.map_chunks ~domains:4 ~n:100 (fun lo hi -> (lo, hi))))
  in
  List.iter (fun c -> check_int "inner call collapsed to one chunk" 1 c)
    inner_chunks

(* --- the persistent pool ----------------------------------------------- *)

let test_pool_reuse () =
  (* a first fan-out may grow the pool; later fan-outs must ride the
     parked workers instead of spawning again *)
  ignore (Par.map_chunks ~domains:4 ~n:64 (fun lo hi -> hi - lo));
  let before = Par.stats () in
  for _ = 1 to 5 do
    ignore (Par.map_chunks ~domains:4 ~n:64 (fun lo hi -> hi - lo))
  done;
  let d = Par.stats_diff ~before (Par.stats ()) in
  check_int "no new workers for a warm pool" 0 d.Par.workers_spawned;
  check_int "five jobs submitted" 5 d.Par.jobs;
  check "chunks were executed" true (d.Par.chunks > 0);
  check_int "no spawn failures" 0 d.Par.spawn_failures

let test_stats_fallback_reasons () =
  let before = Par.stats () in
  (* below-cutoff cost: sequential, no pool traffic *)
  ignore (Par.map_chunks ~cost:1 ~domains:4 ~n:64 (fun lo hi -> hi - lo));
  (* solo: explicit 1 domain *)
  ignore (Par.map_chunks ~domains:1 ~n:64 (fun lo hi -> hi - lo));
  let d = Par.stats_diff ~before (Par.stats ()) in
  check_int "cutoff fallback counted" 1 d.Par.seq_below_cutoff;
  check_int "solo fallback counted" 1 d.Par.seq_solo;
  check_int "no jobs reached the pool" 0 d.Par.jobs;
  (* nested: one inner call per outer chunk, counted wherever it ran *)
  let before = Par.stats () in
  let inner =
    Par.map_chunks ~domains:4 ~n:8 (fun _ _ ->
        ignore (Par.map_chunks ~domains:4 ~n:32 (fun lo hi -> hi - lo)))
  in
  let d = Par.stats_diff ~before (Par.stats ()) in
  check_int "every nested call degraded" (List.length inner) d.Par.seq_nested

let test_burst_budget () =
  (* eight concurrent clients, each charging one budget unit around its
     own fan-out (the serve pool's shape): everything must be refunded,
     and the scheduler must still answer correctly under contention *)
  let before = Par.auto_domains () in
  let clients =
    List.init 8 (fun _ ->
        Domain.spawn (fun () ->
            Par.charged (fun () ->
                Par.map_chunks ~domains:2 ~n:128 (fun lo hi -> hi - lo)
                |> List.fold_left ( + ) 0)))
  in
  List.iter
    (fun c -> check_int "client saw the whole range" 128 (Domain.join c))
    clients;
  check_int "burst refunded every unit" before (Par.auto_domains ())

(* --- determinism across engines --------------------------------------- *)

let bindings_at domains graph q index =
  List.map Array.to_list (Gql_xmlgl.Matching.run ~index ~domains graph q)

let test_xmlgl_determinism () =
  List.iter
    (fun (name, doc, src) ->
      let graph = fst (Gql_data.Codec.encode doc) in
      let index = Gql_data.Index.build graph in
      let q =
        (List.hd (Gql_core.Gql.parse_xmlgl src).Gql_xmlgl.Ast.rules)
          .Gql_xmlgl.Ast.query
      in
      let seq = bindings_at 1 graph q index in
      check (name ^ " finds embeddings") true (seq <> []);
      List.iter
        (fun domains ->
          Alcotest.(check (list (list int)))
            (Printf.sprintf "%s identical at %d domains" name domains)
            seq
            (bindings_at domains graph q index))
        [ 2; 8 ])
    [ ("q2-select", Gql_workload.Gen.bibliography ~seed:7 120,
       Gql_workload.Queries.q2_src);
      ("q4-join", Gql_workload.Gen.greengrocer ~seed:8 150,
       Gql_workload.Queries.q4_src) ]

let test_algebra_determinism () =
  let graph =
    fst (Gql_data.Codec.encode (Gql_workload.Gen.greengrocer ~seed:9 150))
  in
  let q =
    (List.hd (Gql_core.Gql.parse_xmlgl Gql_workload.Queries.q4_src)
       .Gql_xmlgl.Ast.rules)
      .Gql_xmlgl.Ast.query
  in
  let at domains =
    List.map Array.to_list (Gql_algebra.Exec.run_xmlgl ~domains graph q)
  in
  let seq = at 1 in
  check "algebra finds embeddings" true (seq <> []);
  List.iter
    (fun domains ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "algebra identical at %d domains" domains)
        seq (at domains))
    [ 2; 8 ]

let test_wglog_goal_determinism () =
  let g = Gql_workload.Gen.restaurants ~seed:11 ~menu_fraction:0.6 120 in
  let p =
    Gql_lang.Wglog_text.parse_program ~schema:Gql_wglog.Schema.restaurant_schema
      Gql_workload.Queries.q10_src
  in
  let at domains =
    List.concat_map
      (fun r ->
        List.map Array.to_list (Gql_wglog.Eval.goal ~domains g r))
      p.Gql_wglog.Ast.rules
  in
  let seq = at 1 in
  check "goal finds embeddings" true (seq <> []);
  List.iter
    (fun domains ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "goal identical at %d domains" domains)
        seq (at domains))
    [ 2; 8 ]

(* Every observable fact about a graph, in deterministic order. *)
let fingerprint (data : Graph.t) =
  let nodes =
    List.rev
      (Gql_graph.Digraph.fold_nodes
         (fun acc i kind -> (i, kind) :: acc)
         [] (Graph.digraph data))
  in
  let edges = ref [] in
  Gql_graph.Digraph.iter_edges
    (fun ~src ~dst (e : Graph.edge) -> edges := (src, dst, e) :: !edges)
    (Graph.digraph data);
  (nodes, List.rev !edges)

let fixpoint_at base prog domains =
  let g = Graph.copy base in
  let stats = Gql_wglog.Eval.run ~domains g prog in
  ( stats.Gql_wglog.Eval.rounds,
    stats.Gql_wglog.Eval.embeddings_found,
    stats.Gql_wglog.Eval.nodes_added,
    stats.Gql_wglog.Eval.edges_added,
    fingerprint g )

let test_wglog_fixpoint_determinism () =
  List.iter
    (fun (name, base, prog) ->
      let (_, _, _, added, _) as seq = fixpoint_at base prog 1 in
      check (name ^ " derives edges") true (added > 0);
      List.iter
        (fun domains ->
          check
            (Printf.sprintf "%s fixpoint identical at %d domains" name domains)
            true
            (fixpoint_at base prog domains = seq))
        [ 2; 8 ])
    [ ("q10-restaurants",
       Gql_workload.Gen.restaurants ~seed:12 ~menu_fraction:0.6 150,
       Gql_lang.Wglog_text.parse_program
         ~schema:Gql_wglog.Schema.restaurant_schema Gql_workload.Queries.q10_src);
      ("q12-hyperdocs",
       Gql_workload.Gen.hyperdocs ~seed:13 ~fanout:3 ~link_factor:1 60,
       Gql_lang.Wglog_text.parse_program
         ~schema:Gql_wglog.Schema.hyperdoc_schema Gql_workload.Queries.q12_src) ]

let test_wglog_parallel_round_adds_nodes () =
  (* q10's construction adds a rest-list *node* plus member edges; the
     parallel rounds complete the previous delta across domains while
     construction stays sequential, so no generation tag may be lost or
     duplicated and the node count must match exactly *)
  let base = Gql_workload.Gen.restaurants ~seed:14 ~menu_fraction:0.6 150 in
  let prog =
    Gql_lang.Wglog_text.parse_program ~schema:Gql_wglog.Schema.restaurant_schema
      Gql_workload.Queries.q10_src
  in
  let run domains =
    let g = Graph.copy base in
    let stats = Gql_wglog.Eval.run ~domains g prog in
    let edges = ref [] in
    Gql_graph.Digraph.iter_edges
      (fun ~src ~dst (e : Graph.edge) ->
        edges := (src, dst, e.Graph.name, e.Graph.gen) :: !edges)
      (Graph.digraph g);
    (stats.Gql_wglog.Eval.nodes_added, Graph.n_nodes g,
     List.sort compare !edges)
  in
  let (seq_added, seq_nodes, seq_edges) = run 1 in
  check "construction adds nodes" true (seq_added > 0);
  List.iter
    (fun domains ->
      let (par_added, par_nodes, par_edges) = run domains in
      check_int
        (Printf.sprintf "nodes_added matches at %d domains" domains)
        seq_added par_added;
      check_int
        (Printf.sprintf "node count matches at %d domains" domains)
        seq_nodes par_nodes;
      check
        (Printf.sprintf "sorted (src,dst,name,gen) edges match at %d domains"
           domains)
        true
        (par_edges = seq_edges))
    [ 2; 4; 8 ]

(* --- the large fixture ------------------------------------------------- *)

let test_million_node_identity () =
  (* a >= 1M-node graph: big enough that the cost estimate clears the
     default cutoff, so 2- and 8-domain runs really go through the pool
     — and must still enumerate byte-identically to sequential *)
  let g = Gql_workload.Gen.wide_graph ~seed:31 ~hubs:256 1_000_000 in
  check "fixture is >= 1M nodes" true (Graph.n_nodes g >= 1_000_000);
  let rule =
    (Gql_lang.Wglog_text.parse_program ~schema:Gql_wglog.Schema.scale_schema
       Gql_workload.Queries.q13_src)
      .Gql_wglog.Ast.rules
    |> List.hd
  in
  let at domains = Gql_wglog.Eval.goal ~domains g rule in
  let seq = at 1 in
  check "sequential run finds the million embeddings" true
    (List.length seq >= 1_000_000);
  let before = Par.stats () in
  List.iter
    (fun domains ->
      check
        (Printf.sprintf "identical at %d domains" domains)
        true
        (at domains = seq))
    [ 2; 8 ];
  let d = Par.stats_diff ~before (Par.stats ()) in
  check "parallel runs actually used the pool" true (d.Par.jobs >= 2)

let () =
  Alcotest.run "par"
    [
      ( "scheduler",
        [
          Alcotest.test_case "map_chunks tiles in order" `Quick
            test_map_chunks_identity;
          Alcotest.test_case "concat_map preserves order" `Quick
            test_concat_map_order;
          Alcotest.test_case "lowest chunk exception wins" `Quick
            test_exception_propagation;
          Alcotest.test_case "scheduler survives exceptions" `Quick
            test_exception_leaves_scheduler_usable;
          Alcotest.test_case "budget charge and refund" `Quick
            test_budget_accounting;
          Alcotest.test_case "nested call degrades to sequential" `Quick
            test_nested_call_degrades;
        ] );
      ( "pool",
        [
          Alcotest.test_case "workers are reused across jobs" `Quick
            test_pool_reuse;
          Alcotest.test_case "fallback reasons are counted" `Quick
            test_stats_fallback_reasons;
          Alcotest.test_case "8-client burst refunds the budget" `Quick
            test_burst_budget;
          Alcotest.test_case "million-node fixture 1/2/8 domains" `Slow
            test_million_node_identity;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "xml-gl matcher 1/2/8 domains" `Quick
            test_xmlgl_determinism;
          Alcotest.test_case "algebra executor 1/2/8 domains" `Quick
            test_algebra_determinism;
          Alcotest.test_case "wg-log goal 1/2/8 domains" `Quick
            test_wglog_goal_determinism;
          Alcotest.test_case "wg-log fixpoint 1/2/8 domains" `Quick
            test_wglog_fixpoint_determinism;
          Alcotest.test_case "parallel rounds with node construction" `Quick
            test_wglog_parallel_round_adds_nodes;
        ] );
    ]
