(* Tests for Gql_workload: PRNG determinism, generator shapes and
   determinism, query suite health. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- prng ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Gql_workload.Prng.create 7 in
  let b = Gql_workload.Prng.create 7 in
  let sa = List.init 50 (fun _ -> Gql_workload.Prng.int a 1000) in
  let sb = List.init 50 (fun _ -> Gql_workload.Prng.int b 1000) in
  check "same stream" true (sa = sb);
  let c = Gql_workload.Prng.create 8 in
  let sc = List.init 50 (fun _ -> Gql_workload.Prng.int c 1000) in
  check "different seed differs" true (sa <> sc)

let test_prng_ranges () =
  let r = Gql_workload.Prng.create 1 in
  for _ = 1 to 200 do
    let v = Gql_workload.Prng.int r 10 in
    check "in range" true (v >= 0 && v < 10);
    let f = Gql_workload.Prng.float r in
    check "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_prng_unbiased () =
  (* rejection sampling: for a bound that divides no power of two,
     every residue must appear at close to the same frequency.  With
     the old truncating modulo a bound this close to a divisor of the
     62-bit range would skew low residues measurably. *)
  let r = Gql_workload.Prng.create 42 in
  let bound = 3 in
  let n = 30_000 in
  let counts = Array.make bound 0 in
  for _ = 1 to n do
    let v = Gql_workload.Prng.int r bound in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int n /. float_of_int bound in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      check (Printf.sprintf "residue %d within 5%%" i) true (dev < 0.05))
    counts;
  (* degenerate and invalid bounds *)
  check_int "bound 1 is constant" 0 (Gql_workload.Prng.int r 1);
  check "bound 0 rejected" true
    (match Gql_workload.Prng.int r 0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* large bounds stay in range (the 62-bit window never goes negative) *)
  let big = max_int / 2 in
  for _ = 1 to 100 do
    let v = Gql_workload.Prng.int r big in
    check "large bound in range" true (v >= 0 && v < big)
  done

let test_prng_shuffle () =
  let r = Gql_workload.Prng.create 2 in
  let arr = [| 1; 2; 3; 4; 5; 6 |] in
  let s = Gql_workload.Prng.shuffle r arr in
  check "permutation" true
    (List.sort compare (Array.to_list s) = Array.to_list arr);
  check "original untouched" true (arr = [| 1; 2; 3; 4; 5; 6 |])

(* --- generators -------------------------------------------------------------- *)

let test_bibliography_shape () =
  let d = Gql_workload.Gen.bibliography ~seed:1 12 in
  check_int "twelve books" 12
    (List.length (Gql_xml.Tree.find_all "BOOK" d.Gql_xml.Tree.root));
  check "valid against dtd" true
    (Gql_dtd.Validate.is_valid Gql_workload.Gen.book_dtd d)

let test_generator_determinism () =
  let a = Gql_workload.Gen.bibliography ~seed:5 10 in
  let b = Gql_workload.Gen.bibliography ~seed:5 10 in
  check "same seed, same doc" true
    (Gql_xml.Tree.equal_element a.Gql_xml.Tree.root b.Gql_xml.Tree.root);
  let c = Gql_workload.Gen.bibliography ~seed:6 10 in
  check "different seed" false
    (Gql_xml.Tree.equal_element a.Gql_xml.Tree.root c.Gql_xml.Tree.root)

let test_greengrocer_shape () =
  let d = Gql_workload.Gen.greengrocer ~seed:1 ~vendors:4 30 in
  let root = d.Gql_xml.Tree.root in
  check_int "products" 30 (List.length (Gql_xml.Tree.find_all "product" root));
  (* product/vendor text values always reference a declared vendor name *)
  let vendor_names =
    Gql_xml.Tree.find_all "vendors" root
    |> List.concat_map (Gql_xml.Tree.find_all "name")
    |> List.map Gql_xml.Tree.text_content_el
  in
  let used =
    Gql_xml.Tree.find_all "products" root
    |> List.concat_map (Gql_xml.Tree.find_all "vendor")
    |> List.map Gql_xml.Tree.text_content_el
  in
  check "joins resolvable" true (List.for_all (fun v -> List.mem v vendor_names) used)

let test_people_shape () =
  let d = Gql_workload.Gen.people ~seed:1 ~with_addr:0.5 40 in
  let persons = Gql_xml.Tree.find_all "PERSON" d.Gql_xml.Tree.root in
  check_int "persons" 40 (List.length persons);
  let with_addr =
    List.length (List.filter (fun p -> Gql_xml.Tree.find_first "FULLADDR" p <> None) persons)
  in
  check "roughly half have addresses" true (with_addr > 8 && with_addr < 32)

let test_hyperdocs_shape () =
  let g = Gql_workload.Gen.hyperdocs ~seed:1 ~fanout:3 ~link_factor:1 20 in
  check_int "twenty documents" 20
    (List.length (Gql_data.Graph.nodes_labelled g "Document"));
  (* index edges form a forest: every doc except the root has <= 1 index parent *)
  let ok = ref true in
  List.iter
    (fun d ->
      let parents =
        List.filter
          (fun (_, (e : Gql_data.Graph.edge)) -> e.Gql_data.Graph.name = "index")
          (Gql_data.Graph.inn g d)
      in
      if List.length parents > 1 then ok := false)
    (Gql_data.Graph.nodes_labelled g "Document");
  check "index forest" true !ok

let test_restaurants_shape () =
  let g = Gql_workload.Gen.restaurants ~seed:1 ~menu_fraction:1.0 10 in
  check_int "ten restaurants" 10
    (List.length (Gql_data.Graph.nodes_labelled g "Restaurant"));
  check "all offer menus" true
    (List.for_all
       (fun r ->
         List.exists (fun (n, _) -> n = "offers") (Gql_data.Graph.rels g r))
       (Gql_data.Graph.nodes_labelled g "Restaurant"));
  Alcotest.(check (list string)) "schema conform" []
    (Gql_wglog.Schema.validate Gql_wglog.Schema.restaurant_schema g)

let test_random_tree_size () =
  let d = Gql_workload.Gen.random_tree ~seed:2 200 in
  let n = Gql_xml.Tree.count_nodes d.Gql_xml.Tree.root in
  check "about the requested size" true (n > 100 && n < 500)

(* --- query suite --------------------------------------------------------------- *)

let test_suite_parses () =
  List.iter
    (fun (e : Gql_workload.Queries.entry) ->
      match e.kind with
      | `Xmlgl p ->
        let p = Lazy.force p in
        Alcotest.(check (list string))
          (e.name ^ " well-formed") [] (Gql_xmlgl.Ast.check_program p)
      | `Wglog p ->
        let p = Lazy.force p in
        Alcotest.(check (list string))
          (e.name ^ " well-formed") [] (Gql_wglog.Ast.check_program p))
    Gql_workload.Queries.suite

let test_suite_xpaths_parse () =
  List.iter
    (fun (e : Gql_workload.Queries.entry) ->
      match e.xpath with
      | Some x -> ignore (Gql_xpath.Parse.expr x)
      | None -> ())
    Gql_workload.Queries.suite

let test_suite_coverage () =
  check_int "twelve queries" 12 (List.length Gql_workload.Queries.suite);
  let wglogs =
    List.filter
      (fun (e : Gql_workload.Queries.entry) ->
        match e.kind with `Wglog _ -> true | `Xmlgl _ -> false)
      Gql_workload.Queries.suite
  in
  check_int "three wglog figures" 3 (List.length wglogs)

let () =
  Alcotest.run "gql_workload"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "unbiased" `Quick test_prng_unbiased;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle;
        ] );
      ( "generators",
        [
          Alcotest.test_case "bibliography" `Quick test_bibliography_shape;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
          Alcotest.test_case "greengrocer" `Quick test_greengrocer_shape;
          Alcotest.test_case "people" `Quick test_people_shape;
          Alcotest.test_case "hyperdocs" `Quick test_hyperdocs_shape;
          Alcotest.test_case "restaurants" `Quick test_restaurants_shape;
          Alcotest.test_case "random tree" `Quick test_random_tree_size;
        ] );
      ( "suite",
        [
          Alcotest.test_case "parses" `Quick test_suite_parses;
          Alcotest.test_case "xpaths parse" `Quick test_suite_xpaths_parse;
          Alcotest.test_case "coverage" `Quick test_suite_coverage;
        ] );
    ]
