(* Tests for Gql_lang: the lexer, the label-regex parser, both textual
   front-ends (errors included) and print->parse round-trips. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- lexer ---------------------------------------------------------------- *)

let test_lexer_tokens () =
  let toks = Gql_lang.Lex.tokens_of_line ~line:1 {|node $a elem /Van.*/ "str" 3.5 ( )|} in
  let open Gql_lang.Lex in
  match toks with
  | [ Ident "node"; Ident "$a"; Ident "elem"; Regex "Van.*"; Str "str";
      Num 3.5; Punct '('; Punct ')' ] ->
    ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_comments () =
  check_int "comment stripped" 1
    (List.length (Gql_lang.Lex.tokens_of_line ~line:1 "word # rest ignored"))

let test_lexer_string_escapes () =
  match Gql_lang.Lex.tokens_of_line ~line:1 {|"a\"b\n"|} with
  | [ Gql_lang.Lex.Str s ] -> check "escapes" true (s = "a\"b\n")
  | _ -> Alcotest.fail "bad string token"

let test_lexer_errors () =
  (match Gql_lang.Lex.tokens_of_line ~line:3 {|"unterminated|} with
  | _ -> Alcotest.fail "should fail"
  | exception Gql_lang.Lex.Error (_, 3) -> ())

let test_tokenise_lines () =
  let lines = Gql_lang.Lex.tokenise "a\n\n# only comment\nb c\n" in
  check_int "two significant lines" 2 (List.length lines);
  check "line numbers" true (List.map fst lines = [ 1; 4 ])

(* --- label regexes ----------------------------------------------------------- *)

let test_label_re () =
  let open Gql_regex.Syntax in
  check "single" true (Gql_lang.Label_re.parse "link" = sym "link");
  check "plus" true (Gql_lang.Label_re.parse "index+" = plus (sym "index"));
  check "alt group star" true
    (Gql_lang.Label_re.parse "(link|index)*" = star (alt (sym "link") (sym "index")));
  check "seq" true
    (Gql_lang.Label_re.parse "link index" = seq (sym "link") (sym "index"));
  check "wildcard dot" true (Gql_lang.Label_re.parse "." = sym "*")

let test_label_re_errors () =
  let bad s =
    match Gql_lang.Label_re.parse s with
    | _ -> false
    | exception Gql_lang.Label_re.Error _ -> true
  in
  check "empty" true (bad "");
  check "unclosed" true (bad "(link");
  check "trailing" true (bad "link )")

let test_label_re_error_columns () =
  (* parse errors carry the 1-based failing column, so a fuzz repro or
     an editor can point at the offending character *)
  let column_of s =
    match Gql_lang.Label_re.parse s with
    | _ -> None
    | exception Gql_lang.Label_re.Error msg -> (
      match String.rindex_opt msg ' ' with
      | Some i ->
        int_of_string_opt (String.sub msg (i + 1) (String.length msg - i - 1))
      | None -> None)
  in
  let check_col s expected =
    match column_of s with
    | Some col -> Alcotest.(check int) (Printf.sprintf "column in %S" s) expected col
    | None -> Alcotest.failf "no column reported for %S" s
  in
  check_col "link )" 6;        (* trailing input after the expression *)
  check_col "(link" 6;         (* unclosed group: ')' expected at end *)
  check_col "*link" 1;         (* postfix star with no atom before it *)
  check_col "" 1               (* empty expression fails at column 1 *)

let test_label_re_roundtrip () =
  List.iter
    (fun s ->
      let re = Gql_lang.Label_re.parse s in
      let re2 = Gql_lang.Label_re.parse (Gql_lang.Label_re.to_string re) in
      check (Printf.sprintf "roundtrip %s" s) true (re = re2))
    [ "link"; "index+"; "(link|index)* ref?"; ". link ." ]

(* --- xmlgl front-end ----------------------------------------------------------- *)

let test_xmlgl_parse_shapes () =
  let p = Gql_lang.Xmlgl_text.parse_program Gql_workload.Queries.q4_src in
  check_int "one rule" 1 (List.length p.Gql_xmlgl.Ast.rules);
  let r = List.hd p.Gql_xmlgl.Ast.rules in
  check_int "seven query nodes" 7 (Array.length r.Gql_xmlgl.Ast.query.q_nodes);
  check_int "six query edges" 6 (List.length r.Gql_xmlgl.Ast.query.q_edges);
  check "well formed" true (Gql_xmlgl.Ast.check_rule r = [])

let test_xmlgl_result_root () =
  let p = Gql_lang.Xmlgl_text.parse_program Gql_workload.Queries.q1_src in
  Alcotest.(check string) "result root" "books" p.Gql_xmlgl.Ast.result_root

let test_xmlgl_predicates () =
  let p = Gql_lang.Xmlgl_text.parse_program {|xmlgl
rule
query
  node $a elem price
  node $v content where self > 10 and self < 20 or self = 99
  node $w content where (self + 1) >= $v
  edge $a $v
  edge $a $w
construct
  node c copy $a
  root c
end
|} in
  let r = List.hd p.Gql_xmlgl.Ast.rules in
  (match r.Gql_xmlgl.Ast.query.q_nodes.(1).Gql_xmlgl.Ast.q_pred with
  | Some (Gql_xmlgl.Ast.Or _) -> ()
  | _ -> Alcotest.fail "or expected at top");
  match r.Gql_xmlgl.Ast.query.q_nodes.(2).Gql_xmlgl.Ast.q_pred with
  | Some (Gql_xmlgl.Ast.Compare (Gql_xmlgl.Ast.Ge, Gql_xmlgl.Ast.Arith _, Gql_xmlgl.Ast.Node_value 1)) -> ()
  | _ -> Alcotest.fail "arith vs node ref expected"

let test_xmlgl_errors () =
  let bad s = Gql_lang.Xmlgl_text.parse_program_result s |> Result.is_error in
  check "unknown node in edge" true
    (bad "xmlgl\nrule\nquery\n  node $a elem x\n  edge $a $zz\nconstruct\n  node c copy $a\n  root c\nend\n");
  check "duplicate node" true
    (bad "xmlgl\nrule\nquery\n  node $a elem x\n  node $a elem y\nconstruct\n  node c copy $a\n  root c\nend\n");
  check "node outside section" true (bad "xmlgl\nrule\n  node $a elem x\nend\n");
  check "end without rule" true (bad "xmlgl\nend\n");
  check "bad kind" true
    (bad "xmlgl\nrule\nquery\n  node $a wiggle x\nconstruct\nend\n")

let unnest_src = {|xmlgl
rule
query
  node $a elem FULLADDR
construct
  node w new places
  node u unnest $a
  root w
  edge w u
end
|}

let test_xmlgl_unnest_parse () =
  let p = Gql_lang.Xmlgl_text.parse_program unnest_src in
  let r = List.hd p.Gql_xmlgl.Ast.rules in
  check "unnest node present" true
    (Array.exists
       (fun (n : Gql_xmlgl.Ast.cnode) ->
         match n.c_kind with Gql_xmlgl.Ast.C_unnest _ -> true | _ -> false)
       r.Gql_xmlgl.Ast.construction.c_nodes);
  let printed = Gql_lang.Pp.xmlgl_program p in
  check "roundtrips" true (Gql_lang.Xmlgl_text.parse_program printed = p)

let test_xmlgl_roundtrip () =
  List.iter
    (fun (name, src) ->
      let p = Gql_lang.Xmlgl_text.parse_program src in
      let printed = Gql_lang.Pp.xmlgl_program p in
      let p2 = Gql_lang.Xmlgl_text.parse_program printed in
      (* node renaming aside, the structures must be identical *)
      check (name ^ " roundtrip") true (p = p2))
    [
      ("q1", Gql_workload.Queries.q1_src);
      ("q2", Gql_workload.Queries.q2_src);
      ("q3", Gql_workload.Queries.q3_src);
      ("q4", Gql_workload.Queries.q4_src);
      ("q5", Gql_workload.Queries.q5_src);
      ("q6", Gql_workload.Queries.q6_src);
      ("q7", Gql_workload.Queries.q7_src);
      ("q8", Gql_workload.Queries.q8_src);
      ("q9", Gql_workload.Queries.q9_src);
    ]

(* --- wglog front-end ------------------------------------------------------------ *)

let test_wglog_parse_shapes () =
  let p = Gql_lang.Wglog_text.parse_program Gql_workload.Queries.q12_src in
  let r = List.hd p.Gql_wglog.Ast.rules in
  check_int "three nodes" 3 (Array.length r.Gql_wglog.Ast.nodes);
  check_int "three edges" 3 (List.length r.Gql_wglog.Ast.edges);
  check "has regex edge" true
    (List.exists
       (fun (e : Gql_wglog.Ast.edge) ->
         match e.e_mode with Gql_wglog.Ast.Regex _ -> true | _ -> false)
       r.Gql_wglog.Ast.edges)

let test_wglog_conditions () =
  let p = Gql_lang.Wglog_text.parse_program {|wglog
rule
  node m Menu
  value v where > 10 and <= 20 and /cheap/
  edge m price v
  cnode l rest-list
  collect l member m
end
|} in
  let r = List.hd p.Gql_wglog.Ast.rules in
  check_int "three conditions" 3 (List.length r.Gql_wglog.Ast.nodes.(1).Gql_wglog.Ast.n_cond)

let test_wglog_errors () =
  let bad s = Gql_lang.Wglog_text.parse_program_result s |> Result.is_error in
  check "unknown node" true (bad "wglog\nrule\n  edge a offers b\nend\n");
  check "bad path" true
    (bad "wglog\nrule\n  node a Document\n  node b Document\n  pathedge a ((( b\nend\n");
  check "garbage" true (bad "wglog\nrule\n  frobnicate\nend\n")

let test_wglog_roundtrip () =
  List.iter
    (fun (name, src) ->
      let p = Gql_lang.Wglog_text.parse_program src in
      let printed = Gql_lang.Pp.wglog_program p in
      let p2 = Gql_lang.Wglog_text.parse_program printed in
      check (name ^ " roundtrip") true
        (p.Gql_wglog.Ast.rules = p2.Gql_wglog.Ast.rules))
    [
      ("q10", Gql_workload.Queries.q10_src);
      ("q11", Gql_workload.Queries.q11_src);
      ("q12", Gql_workload.Queries.q12_src);
    ]

let test_wglog_schema_attached () =
  let p =
    Gql_lang.Wglog_text.parse_program ~schema:Gql_wglog.Schema.restaurant_schema
      Gql_workload.Queries.q10_src
  in
  check "schema kept" true (p.Gql_wglog.Ast.schema <> None);
  Alcotest.(check (list string)) "schema-checks clean" []
    (Gql_wglog.Ast.check_program p)

(* --- language sniffing ---------------------------------------------------- *)

(* [language_of_source] keys on the first word of the first significant
   line only, so programs *mentioning* MATCH/RETURN in labels must not
   be misrouted to the textual MATCH front-end. *)
let test_sniff_match () =
  let lang src = Gql_core.Gql.language_of_source src in
  check "match upper" true (lang "MATCH (v:a)\nRETURN v\n" = `Match);
  check "match lower" true (lang "match (v)\nreturn v\n" = `Match);
  check "leading comment and blank" true
    (lang "\n# query\nMATCH (v)\nRETURN v\n" = `Match);
  check "matchx is not match" true (lang "matchx (v)\nRETURN v\n" = `Unknown);
  check "match glued to paren is unknown" true
    (lang "match(v)\nRETURN v\n" = `Unknown)

let test_sniff_negative () =
  let lang src = Gql_core.Gql.language_of_source src in
  (* a WG-Log program whose node labels are literally MATCH / RETURN *)
  check "wglog with match labels" true
    (lang
       "wglog\nrule\n  node a MATCH\n  node b RETURN\n  edge a match b\nend\n"
    = `Wglog);
  check "xmlgl with match label" true
    (lang
       "xmlgl\nrule\nquery\n  node $a elem MATCH\nconstruct\n  node c copy $a\n  root c\nend\n"
    = `Xmlgl);
  check "workload q1 still xmlgl" true
    (lang Gql_workload.Queries.q1_src = `Xmlgl);
  check "workload q10 still wglog" true
    (lang Gql_workload.Queries.q10_src = `Wglog)

(* Fuzz: random declaration-shaped lines must parse or raise Parse_error,
   never crash. *)
let fuzz_line_gen =
  QCheck.Gen.(
    map (String.concat " ")
      (list_size (int_bound 6)
         (oneofl
            [ "node"; "$a"; "$b"; "elem"; "content"; "attr"; "edge"; "deep";
              "where"; "self"; ">"; "<"; "("; ")"; "construct"; "query";
              "rule"; "end"; "copy"; "new"; "root"; "\"str\""; "3"; "/re/";
              "~"; "and"; "or" ])))

let prop_xmlgl_parser_total =
  QCheck.Test.make ~name:"xmlgl parser total on token soup" ~count:300
    QCheck.(make Gen.(map (String.concat "\n") (list_size (int_bound 8) fuzz_line_gen)))
    (fun src ->
      match Gql_lang.Xmlgl_text.parse_program ("xmlgl\n" ^ src) with
      | _ -> true
      | exception Gql_lang.Xmlgl_text.Parse_error _ -> true)

let prop_wglog_parser_total =
  QCheck.Test.make ~name:"wglog parser total on token soup" ~count:300
    QCheck.(make Gen.(map (String.concat "\n") (list_size (int_bound 8) fuzz_line_gen)))
    (fun src ->
      match Gql_lang.Wglog_text.parse_program ("wglog\n" ^ src) with
      | _ -> true
      | exception Gql_lang.Wglog_text.Parse_error _ -> true)

let () =
  Alcotest.run "gql_lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "string escapes" `Quick test_lexer_string_escapes;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "tokenise" `Quick test_tokenise_lines;
        ] );
      ( "label_re",
        [
          Alcotest.test_case "parse" `Quick test_label_re;
          Alcotest.test_case "errors" `Quick test_label_re_errors;
          Alcotest.test_case "error columns" `Quick test_label_re_error_columns;
          Alcotest.test_case "roundtrip" `Quick test_label_re_roundtrip;
        ] );
      ( "xmlgl",
        [
          Alcotest.test_case "shapes" `Quick test_xmlgl_parse_shapes;
          Alcotest.test_case "result root" `Quick test_xmlgl_result_root;
          Alcotest.test_case "predicates" `Quick test_xmlgl_predicates;
          Alcotest.test_case "errors" `Quick test_xmlgl_errors;
          Alcotest.test_case "unnest" `Quick test_xmlgl_unnest_parse;
          Alcotest.test_case "roundtrip" `Quick test_xmlgl_roundtrip;
        ] );
      ( "wglog",
        [
          Alcotest.test_case "shapes" `Quick test_wglog_parse_shapes;
          Alcotest.test_case "conditions" `Quick test_wglog_conditions;
          Alcotest.test_case "errors" `Quick test_wglog_errors;
          Alcotest.test_case "roundtrip" `Quick test_wglog_roundtrip;
          Alcotest.test_case "schema attach" `Quick test_wglog_schema_attached;
          QCheck_alcotest.to_alcotest prop_xmlgl_parser_total;
          QCheck_alcotest.to_alcotest prop_wglog_parser_total;
        ] );
      ( "sniff",
        [
          Alcotest.test_case "match" `Quick test_sniff_match;
          Alcotest.test_case "negative" `Quick test_sniff_negative;
        ] );
    ]
