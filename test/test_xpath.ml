(* Tests for Gql_xpath: parsing, axes, predicates, functions, coercions.
   The fixed document exercises every axis. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let doc =
  Gql_xml.Parser.parse_document
    {|<bib>
        <BOOK isbn="1"><title>Data on the Web</title><price>39.95</price>
          <AUTHOR><first-name>Serge</first-name><last-name>Abiteboul</last-name></AUTHOR>
          <AUTHOR><first-name>Dan</first-name><last-name>Suciu</last-name></AUTHOR>
        </BOOK>
        <BOOK isbn="2"><title>XML Query</title><price>55</price>
          <AUTHOR><first-name>Sara</first-name><last-name>Comai</last-name></AUTHOR>
        </BOOK>
        <BOOK isbn="3"><price>12</price></BOOK>
      </bib>|}

let idx = Gql_xpath.Index.build doc

let sel e = Gql_xpath.Eval.select_string idx e
let count e = List.length (sel e)
let value e = 
  match Gql_xpath.Eval.eval_string idx e with
  | Gql_xpath.Eval.Str s -> s
  | Gql_xpath.Eval.Num f -> Printf.sprintf "%g" f
  | Gql_xpath.Eval.Bool b -> string_of_bool b
  | Gql_xpath.Eval.Nodeset ns ->
    String.concat "," (List.map (Gql_xpath.Index.string_value idx) ns)

(* --- paths -------------------------------------------------------------- *)

let test_absolute_paths () =
  check_int "root" 1 (count "/bib");
  check_int "children" 3 (count "/bib/BOOK");
  check_int "grandchildren" 2 (count "/bib/BOOK/title");
  check_int "no such" 0 (count "/bib/MAGAZINE")

let test_descendant () =
  check_int "//BOOK" 3 (count "//BOOK");
  check_int "//last-name" 3 (count "//last-name");
  check_int "nested //" 3 (count "/bib//AUTHOR");
  check_int "descendant axis" 3 (count "/bib/descendant::AUTHOR")

let test_wildcard () =
  check_int "all book children" 8 (count "/bib/BOOK/*");
  check_int "any root child" 3 (count "/bib/*")

let test_attribute_axis () =
  check_int "isbn attrs" 3 (count "//BOOK/@isbn");
  check_int "all attrs" 3 (count "//@*");
  check_str "attr value" "1" (value "string(/bib/BOOK[1]/@isbn)")

let test_parent_self () =
  check_int "parent of title" 2 (count "//title/..");
  check_int "self" 3 (count "//BOOK/.");
  check_int "parent axis" 2 (count "//title/parent::BOOK");
  check_int "ancestor" 1 (count "//last-name/ancestor::bib")

let test_siblings () =
  check_int "following" 2 (count "//title/following-sibling::price");
  check_int "preceding" 2 (count "//price/preceding-sibling::title")

let test_following_preceding () =
  (* elements after BOOK[1]'s title in document order: the rest of BOOK1
     (price + 2 AUTHOR subtrees = 7), BOOK2's subtree (6), BOOK3's (2) *)
  check_int "following of first title" 15 (count "//BOOK[1]/title/following::*");
  check_int "preceding prices" 2 (count "//BOOK[3]/price/preceding::price");
  check_int "following excludes descendants" 0
    (count "/bib/following::*");
  check_int "preceding excludes ancestors" 0
    (count "//last-name[1]/preceding::bib")

let test_text_node_test () =
  check_int "title texts" 2 (count "//title/text()");
  check_str "first title" "Data on the Web" (value "string(//title/text())")

(* --- predicates ----------------------------------------------------------- *)

let test_predicates_comparison () =
  check_int "cheap books" 2 (count "//BOOK[price < 40]");
  check_int "exact string" 1 (count "//BOOK[title = \"XML Query\"]");
  check_int "attr test" 1 (count "//BOOK[@isbn = \"2\"]");
  check_int "existence" 2 (count "//BOOK[title]");
  check_int "negated existence" 1 (count "//BOOK[not(title)]")

let test_predicates_position () =
  check_int "first book" 1 (count "//BOOK[1]");
  check_str "first book isbn" "1" (value "string(//BOOK[1]/@isbn)");
  check_str "last book isbn" "3" (value "string(//BOOK[last()]/@isbn)");
  check_int "position filter" 2 (count "//BOOK[position() > 1]")

let test_predicates_nested () =
  check_int "books by Suciu" 1
    (count "//BOOK[AUTHOR/last-name = \"Suciu\"]");
  check_int "chained predicates" 1 (count "//BOOK[title][price > 40]")

let test_boolean_connectives () =
  check_int "and" 1 (count "//BOOK[title and price > 40]");
  check_int "or" 3 (count "//BOOK[title or price < 20]")

(* --- functions -------------------------------------------------------------- *)

let test_string_functions () =
  check_int "contains" 1 (count "//BOOK[contains(title, \"Web\")]");
  check_int "starts-with" 1 (count "//BOOK[starts-with(title, \"XML\")]");
  check_str "concat" "ab" (value "concat(\"a\", \"b\")");
  check_str "normalize" "a b" (value "normalize-space(\"  a   b \")");
  check_str "substring" "ell" (value "substring(\"hello\", 2, 3)");
  check_str "strlen" "5" (value "string-length(\"hello\")")

let test_numeric_functions () =
  check_str "count" "3" (value "count(//BOOK)");
  check_str "sum" "106.95" (value "sum(//price)");
  check_str "floor" "3" (value "floor(3.7)");
  check_str "ceiling" "4" (value "ceiling(3.2)");
  check_str "round" "4" (value "round(3.5)");
  check_str "arith" "7" (value "1 + 2 * 3");
  check_str "div" "2" (value "4 div 2");
  check_str "mod" "1" (value "7 mod 2")

let test_name_function () =
  check_str "name" "bib" (value "name(/bib)")

let test_union () =
  check_int "titles and prices" 5 (count "//title | //price")

(* the supplied text's own XPath example shape *)
let test_paper_example () =
  let d2 =
    Gql_xml.Parser.parse_document
      {|<html><body><p><a href="http://xcerpt.org">about Xcerpt</a></p>
        <a href="local.html">Xcerpt intro</a><a href="http://other.org">other</a></body></html>|}
  in
  let idx2 = Gql_xpath.Index.build d2 in
  let hits =
    Gql_xpath.Eval.select_string idx2
      {|/html/body//a[contains(./text(),"Xcerpt") and starts-with(./@href,"http:")]|}
  in
  check_int "one qualifying link" 1 (List.length hits)

(* --- parsing --------------------------------------------------------------- *)

let test_parse_errors () =
  let bad s =
    match Gql_xpath.Parse.expr s with
    | _ -> false
    | exception Gql_xpath.Parse.Error _ -> true
  in
  check "empty" true (bad "");
  check "lone bracket" true (bad "//BOOK[");
  check "bad axis" true (bad "//sideways::x");
  check "trailing" true (bad "//a }");
  check "unterminated literal" true (bad "\"abc");
  check "result wrapper" true (Gql_xpath.Parse.expr_result "///" <> Ok (Gql_xpath.Parse.expr "//*"))

let test_pp_roundtrip () =
  List.iter
    (fun src ->
      let e = Gql_xpath.Parse.expr src in
      let printed = Gql_xpath.Ast.pp_expr e in
      let e2 = Gql_xpath.Parse.expr printed in
      (* evaluation agreement is the contract, not textual equality *)
      let v1 = Gql_xpath.Eval.eval_expr idx e in
      let v2 = Gql_xpath.Eval.eval_expr idx e2 in
      check (Printf.sprintf "pp roundtrip %s" src) true (v1 = v2))
    [
      "//BOOK[price < 40]/title";
      "/bib/BOOK/@isbn";
      "count(//AUTHOR)";
      "//BOOK[1]";
      "//title | //price";
      "//BOOK[contains(title, \"Web\")]";
    ]

let test_eval_errors () =
  let bad s =
    match Gql_xpath.Eval.eval_string idx s with
    | _ -> false
    | exception Gql_xpath.Eval.Eval_error _ -> true
  in
  check "unknown function" true (bad "frobnicate(1)");
  check "count of number" true (bad "count(1)")

(* --- operator dispatch boundaries ----------------------------------------
   Evaluation splits the binary operators across three folds (arithmetic,
   equality, relational); an operator routed to the wrong fold raises the
   typed Eval_error instead of tripping an assert.  These pin down the full
   matrix of reachable combinations around those guards. *)

let test_dispatch_arithmetic () =
  check_str "mod" "2" (value "5 mod 3");
  check_str "mod sign follows dividend" "-2" (value "-5 mod 3");
  check_str "div" "2.5" (value "5 div 2");
  check_str "mixed precedence" "7" (value "1 + 2 * 3")

let test_dispatch_equality_mixed () =
  (* node-set vs number: each node's string value is coerced, and only
     Eq/Neq may reach this arm of the dispatch *)
  check_str "nodeset = number" "true" (value "//price = 55");
  check_str "nodeset != number" "true" (value "//price != 55");
  check_str "non-numeric text never equals" "false" (value "//title = 55");
  check_str "non-numeric text always differs" "true" (value "//title != 55")

let test_dispatch_relational_mixed () =
  (* node-set vs number relational: only Lt/Le/Gt/Ge may reach here *)
  check_str "some price below" "true" (value "//price < 13");
  check_str "some price above" "true" (value "//price > 50");
  check_str "none below" "false" (value "//price < 12");
  check_str "boundary inclusive" "true" (value "//price <= 12")

let () =
  Alcotest.run "gql_xpath"
    [
      ( "paths",
        [
          Alcotest.test_case "absolute" `Quick test_absolute_paths;
          Alcotest.test_case "descendant" `Quick test_descendant;
          Alcotest.test_case "wildcard" `Quick test_wildcard;
          Alcotest.test_case "attributes" `Quick test_attribute_axis;
          Alcotest.test_case "parent/self" `Quick test_parent_self;
          Alcotest.test_case "siblings" `Quick test_siblings;
          Alcotest.test_case "following/preceding" `Quick test_following_preceding;
          Alcotest.test_case "text()" `Quick test_text_node_test;
        ] );
      ( "predicates",
        [
          Alcotest.test_case "comparisons" `Quick test_predicates_comparison;
          Alcotest.test_case "positions" `Quick test_predicates_position;
          Alcotest.test_case "nested" `Quick test_predicates_nested;
          Alcotest.test_case "connectives" `Quick test_boolean_connectives;
        ] );
      ( "functions",
        [
          Alcotest.test_case "strings" `Quick test_string_functions;
          Alcotest.test_case "numerics" `Quick test_numeric_functions;
          Alcotest.test_case "name" `Quick test_name_function;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "paper example" `Quick test_paper_example;
        ] );
      ( "parsing",
        [
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "pp agreement" `Quick test_pp_roundtrip;
          Alcotest.test_case "eval errors" `Quick test_eval_errors;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "arithmetic" `Quick test_dispatch_arithmetic;
          Alcotest.test_case "equality mixed" `Quick test_dispatch_equality_mixed;
          Alcotest.test_case "relational mixed" `Quick
            test_dispatch_relational_mixed;
        ] );
    ]
