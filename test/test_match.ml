(* Tests for the textual MATCH front-end: parser structure, the
   parse->pp->parse identity (fixed corpus and generated queries),
   golden error messages, and byte-identity of the evaluation routes
   (homomorphism scan / indexed / algebra greedy / fixed / no-index)
   on a hand-written document. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- parsing ------------------------------------------------------------- *)

let test_parse_shapes () =
  let q =
    Gql_match.Parse.parse
      {|MATCH (b:BOOK)-[e:id]->(x)<-[]-(y:a-b)
MATCH (b)-[:(link|index)*]->(z)
WHERE x.value > 10 AND y.value <> "n1"
NOT EXISTS { (b)-[:ref]->(w) }
RETURN b, x.value
|}
  in
  check_int "four clauses" 4 (List.length q.Gql_match.Ast.clauses);
  (match q.Gql_match.Ast.clauses with
  | Gql_match.Ast.Match c :: _ ->
    check_int "two hops" 2 (List.length c.Gql_match.Ast.hops);
    (match c.Gql_match.Ast.hops with
    | [ (e1, n1); (e2, n2) ] ->
      check "edge var" true (e1.Gql_match.Ast.e_var = Some "e");
      check "edge label" true (e1.Gql_match.Ast.e_spec = Gql_match.Ast.Label "id");
      check "out dir" true (e1.Gql_match.Ast.e_dir = Gql_match.Ast.Out);
      check "anon node" true (n1.Gql_match.Ast.n_label = None);
      check "in dir" true (e2.Gql_match.Ast.e_dir = Gql_match.Ast.In);
      check "any spec" true (e2.Gql_match.Ast.e_spec = Gql_match.Ast.Any);
      check "hyphen label" true (n2.Gql_match.Ast.n_label = Some "a-b")
    | _ -> Alcotest.fail "expected two hops")
  | _ -> Alcotest.fail "expected a MATCH clause first");
  (match q.Gql_match.Ast.clauses with
  | _ :: Gql_match.Ast.Match c :: _ -> (
    match c.Gql_match.Ast.hops with
    | [ (e, _) ] ->
      check "regex spec kept verbatim" true
        (e.Gql_match.Ast.e_spec = Gql_match.Ast.Regex "(link|index)*")
    | _ -> Alcotest.fail "expected one hop")
  | _ -> Alcotest.fail "expected a second MATCH clause");
  (match q.Gql_match.Ast.clauses with
  | _ :: _ :: Gql_match.Ast.Where conds :: _ ->
    check_int "two conjuncts" 2 (List.length conds)
  | _ -> Alcotest.fail "expected a WHERE clause");
  check_int "two return columns" 2 (List.length q.Gql_match.Ast.returns);
  check "value return" true
    (List.nth q.Gql_match.Ast.returns 1 = Gql_match.Ast.Value "x")

let test_parse_comments_and_blanks () =
  let q =
    Gql_match.Parse.parse "# a comment\n\nMATCH (a:item)\n\n# more\nRETURN a\n"
  in
  check_int "one clause" 1 (List.length q.Gql_match.Ast.clauses)

(* --- pp roundtrip ---------------------------------------------------------- *)

let roundtrip_src name src =
  let q = Gql_match.Parse.parse src in
  let printed = Gql_match.Pp.query q in
  let q2 = Gql_match.Parse.parse printed in
  check (name ^ " ast identity") true (q = q2);
  check_str (name ^ " pp idempotent") printed (Gql_match.Pp.query q2)

let test_roundtrip_suite () =
  (* every MATCH entry of the server workload survives parse->pp->parse *)
  let matches =
    List.filter
      (fun (sq : Gql_workload.Queries.server_query) ->
        Gql_core.Gql.language_of_source sq.source = `Match)
      Gql_workload.Queries.server_suite
  in
  check "suite has MATCH entries" true (List.length matches >= 5);
  List.iter (fun (sq : Gql_workload.Queries.server_query) ->
      roundtrip_src sq.sq_name sq.source)
    matches

let test_roundtrip_generated () =
  (* the fuzz generator's whole output space holds the identity too *)
  for seed = 0 to 499 do
    let rng = Gql_workload.Prng.create seed in
    let src = Gql_fuzz.Casegen.gen_match rng in
    roundtrip_src (Printf.sprintf "seed %d" seed) src
  done

(* --- error messages (golden) ------------------------------------------------ *)

(* Each case renders as the escaped source and the parser's answer; the
   rendering is compared byte-for-byte against test/golden/match_errors.txt
   so error-message regressions (wording, 1-based positions) show up as
   a diff.  To update the golden file, run the test and copy the actual
   output it prints on failure. *)
let error_cases =
  [
    "MATCH (a:BOOK\nRETURN a\n";
    "MATCH (a)-[:]->(b)\nRETURN a\n";
    "MATCH (a)-[:(x]->(b)\nRETURN a\n";
    "MATCH (a)->(b)\nRETURN a\n";
    "RETURN a\n";
    "MATCH (a)\n";
    "MATCH (a)\nFROB x\nRETURN a\n";
    "MATCH (a)\nRETURN a\nWHERE a.value > 1\n";
    "MATCH (a)\nWHERE a.val > 1\nRETURN a\n";
    "MATCH (a)-[]->(b)\nWHERE b.value >< 1\nRETURN b\n";
    "MATCH (a)\nNOT EXISTS (a)-[]->(b)\nRETURN a\n";
  ]

let render_error_cases () =
  String.concat ""
    (List.map
       (fun src ->
         let answer =
           match Gql_match.Parse.parse_result src with
           | Ok _ -> "ok"
           | Error msg -> msg
         in
         Printf.sprintf "case: %s\nerror: %s\n\n" (String.escaped src) answer)
       error_cases)

let test_error_golden () =
  let golden =
    let ic = open_in "golden/match_errors.txt" in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let actual = render_error_cases () in
  if actual <> golden then (
    Printf.printf "--- actual golden/match_errors.txt ---\n%s" actual;
    check_str "golden error messages" golden actual)

(* --- compile errors ---------------------------------------------------------- *)

let compile_error src =
  let q = Gql_match.Parse.parse src in
  match Gql_match.Compile.compile q with
  | _ -> None
  | exception Gql_match.Compile.Error msg -> Some msg

let test_compile_errors () =
  (match compile_error "MATCH (a:item)\nRETURN b\n" with
  | Some msg -> check "unknown return var" true
      (msg = "unknown variable 'b' in RETURN")
  | None -> Alcotest.fail "expected a compile error");
  (match compile_error "MATCH (a)-[e:id]->(b)\nRETURN e.value\n" with
  | Some _ -> ()
  | None -> Alcotest.fail "edge variable in RETURN should not compile");
  match compile_error "MATCH (x)-[x]->(b)\nRETURN b\n" with
  | Some _ -> ()
  | None -> Alcotest.fail "node/edge name collision should not compile"

(* --- evaluation routes ------------------------------------------------------- *)

let doc_xml =
  {|<shop>
  <item n="1"><name>apple</name><price>3</price></item>
  <item n="2"><name>plum</name><price>7</price></item>
  <box><item n="3"><name>fig</name><price>7</price></item></box>
</shop>|}

let routes db (q : Gql_match.Ast.query) : (string * string) list =
  let graph = db.Gql_core.Gql.graph in
  let idx = Gql_core.Gql.index db in
  let c = Gql_match.Compile.compile q in
  let body embs = Gql_match.Eval.body graph c embs in
  [
    ("homo-scan", body (Gql_match.Eval.bindings graph c));
    ("homo-indexed", body (Gql_match.Eval.bindings ~index:idx graph c));
    ("algebra-greedy",
     body (Gql_match.Eval.bindings_algebra ~index:idx graph c));
    ("algebra-fixed",
     body (Gql_match.Eval.bindings_algebra ~strategy:`Fixed ~index:idx graph c));
    ("algebra-noindex", body (Gql_match.Eval.bindings_algebra graph c));
  ]

let all_routes_equal db src ~expect =
  let q = Gql_core.Gql.parse_match src in
  match routes db q with
  | [] -> Alcotest.fail "no routes"
  | (_, first) :: rest ->
    List.iter
      (fun (name, b) -> check_str (name ^ " agrees") first b)
      rest;
    check_str "expected body" expect first

let test_eval_basic () =
  let db = Gql_core.Gql.load_xml_string doc_xml in
  all_routes_equal db "MATCH (i:item)-[]->(n:name)\nRETURN i, n.value\n"
    ~expect:"i\tn.value\nitem\tapple\nitem\tfig\nitem\tplum\n";
  (* attribute edges are named; containment edges are not *)
  all_routes_equal db "MATCH (i:item)-[:n]->(v)\nRETURN v.value\n"
    ~expect:"v.value\n1\n2\n3\n"

let test_eval_where_and_paths () =
  let db = Gql_core.Gql.load_xml_string doc_xml in
  all_routes_equal db
    "MATCH (i:item)-[]->(p:price)\nWHERE p.value >= 7\nRETURN p.value\n"
    ~expect:"p.value\n7\n7\n";
  (* a path edge reaches the nested item's name through the box *)
  all_routes_equal db "MATCH (s:shop)-[:.+]->(n:name)\nRETURN n.value\n"
    ~expect:"n.value\napple\nfig\nplum\n";
  (* In-direction traversal *)
  all_routes_equal db "MATCH (n:name)<-[]-(i:item)\nRETURN i, n.value\n"
    ~expect:"i\tn.value\nitem\tapple\nitem\tfig\nitem\tplum\n"

let test_eval_not_exists () =
  let db = Gql_core.Gql.load_xml_string doc_xml in
  (* negated single hop between bound vars: shop's direct items are
     kept only when no box sits between (vacuous here, keeps all) *)
  all_routes_equal db
    "MATCH (s:shop)-[]->(i:item)\nNOT EXISTS { (i)-[:missing]->(s) }\nRETURN i\n"
    ~expect:"i\nitem\nitem\n";
  (* general form with a fresh inner variable: items with no <name> child
     do not exist, so nothing survives *)
  all_routes_equal db
    "MATCH (i:item)\nNOT EXISTS { (i)-[]->(n:name) }\nRETURN i\n"
    ~expect:"i\n";
  (* and the dual: the box has no price child *)
  all_routes_equal db
    "MATCH (b:box)\nNOT EXISTS { (b)-[]->(p:price) }\nRETURN b\n"
    ~expect:"b\nbox\n"

let test_eval_matches_facade () =
  let db = Gql_core.Gql.load_xml_string doc_xml in
  let src = "MATCH (i:item)-[]->(p:price)\nRETURN i, p.value\n" in
  let body, rows = Gql_core.Gql.run_match_text db src in
  check_int "three rows" 3 rows;
  check_str "facade equals direct route" body
    (List.assoc "algebra-greedy" (routes db (Gql_core.Gql.parse_match src)))

let () =
  Alcotest.run "gql_match"
    [
      ( "parse",
        [
          Alcotest.test_case "shapes" `Quick test_parse_shapes;
          Alcotest.test_case "comments and blanks" `Quick
            test_parse_comments_and_blanks;
        ] );
      ( "pp",
        [
          Alcotest.test_case "suite roundtrip" `Quick test_roundtrip_suite;
          Alcotest.test_case "generated roundtrip" `Quick
            test_roundtrip_generated;
        ] );
      ( "errors",
        [
          Alcotest.test_case "golden messages" `Quick test_error_golden;
          Alcotest.test_case "compile errors" `Quick test_compile_errors;
        ] );
      ( "eval",
        [
          Alcotest.test_case "basic" `Quick test_eval_basic;
          Alcotest.test_case "where and paths" `Quick test_eval_where_and_paths;
          Alcotest.test_case "not exists" `Quick test_eval_not_exists;
          Alcotest.test_case "facade" `Quick test_eval_matches_facade;
        ] );
    ]
