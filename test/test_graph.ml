(* Tests for Gql_graph: digraph operations, classical algorithms
   (properties on random graphs), regular path queries (vs a naive
   enumerator) and the homomorphism matcher. *)

open Gql_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Small labelled graph builder: nodes carry strings, edges strings. *)
let build nodes edges =
  let g = Digraph.create ~dummy:"" in
  let ids = List.map (fun p -> Digraph.add_node g p) nodes in
  let arr = Array.of_list ids in
  List.iter (fun (s, l, d) -> Digraph.add_edge g ~src:arr.(s) ~dst:arr.(d) l) edges;
  g

(* --- digraph ----------------------------------------------------------- *)

let test_basic () =
  let g = build [ "a"; "b"; "c" ] [ (0, "x", 1); (1, "y", 2); (0, "z", 2) ] in
  check_int "nodes" 3 (Digraph.n_nodes g);
  check_int "edges" 3 (Digraph.n_edges g);
  check_int "out 0" 2 (Digraph.out_degree g 0);
  check_int "in 2" 2 (Digraph.in_degree g 2);
  check "payload" true (Digraph.payload g 1 = "b");
  check "has_edge" true (Digraph.has_edge g 0 1);
  check "has_edge label" true (Digraph.has_edge ~label:"x" g 0 1);
  check "no such label" false (Digraph.has_edge ~label:"q" g 0 1);
  check "edges_between" true (Digraph.edges_between g 0 2 = [ "z" ])

let test_multigraph () =
  let g = build [ "a"; "b" ] [ (0, "x", 1); (0, "y", 1) ] in
  check_int "two parallel edges" 2 (List.length (Digraph.edges_between g 0 1))

let test_map () =
  let g = build [ "a"; "b" ] [ (0, "x", 1) ] in
  let g2 =
    Digraph.map ~node:(fun i p -> (i, p)) ~edge:String.uppercase_ascii
      ~dummy:(0, "") g
  in
  check "mapped payload" true (Digraph.payload g2 1 = (1, "b"));
  check "mapped label" true (Digraph.edges_between g2 0 1 = [ "X" ])

(* --- algorithms --------------------------------------------------------- *)

let diamond =
  build [ "s"; "l"; "r"; "t" ] [ (0, "", 1); (0, "", 2); (1, "", 3); (2, "", 3) ]

let test_bfs () =
  let order = Algo.bfs diamond [ 0 ] in
  check_int "visits all" 4 (List.length order);
  check "starts at source" true (List.hd order = 0);
  check "target last" true (List.nth order 3 = 3);
  check_int "from middle" 2 (List.length (Algo.bfs diamond [ 1 ]))

let test_reachable () =
  let r = Algo.reachable diamond [ 1 ] in
  check "1 reaches 3" true r.(3);
  check "1 not 2" false r.(2)

let test_topo () =
  match Algo.topological_sort diamond with
  | None -> Alcotest.fail "diamond is a DAG"
  | Some order ->
    let pos = Array.make 4 0 in
    List.iteri (fun i v -> pos.(v) <- i) order;
    Digraph.iter_edges
      (fun ~src ~dst _ -> check "edge respects order" true (pos.(src) < pos.(dst)))
      diamond

let test_topo_cycle () =
  let cyc = build [ "a"; "b" ] [ (0, "", 1); (1, "", 0) ] in
  check "cycle detected" true (Algo.topological_sort cyc = None);
  check "acyclic check" false (Algo.is_acyclic cyc);
  check "dag check" true (Algo.is_acyclic diamond)

let test_scc () =
  let g =
    build [ "a"; "b"; "c"; "d"; "e" ]
      [ (0, "", 1); (1, "", 0); (1, "", 2); (2, "", 3); (3, "", 2) ]
  in
  let comps = Algo.scc g in
  check_int "three components" 3 (List.length comps);
  let find v = List.find (fun c -> List.mem v c) comps in
  check "a with b" true (List.sort compare (find 0) = [ 0; 1 ]);
  check "c with d" true (List.sort compare (find 2) = [ 2; 3 ]);
  check "e alone" true (find 4 = [ 4 ])

let test_shortest_path () =
  let g =
    build [ "a"; "b"; "c"; "d" ]
      [ (0, "x", 1); (1, "x", 2); (0, "y", 3); (3, "y", 2) ]
  in
  (match Algo.shortest_path g ~src:0 ~dst:2 with
  | Some p -> check_int "3 node path" 3 (List.length p)
  | None -> Alcotest.fail "reachable");
  check "unreachable" true (Algo.shortest_path g ~src:2 ~dst:0 = None);
  match Algo.shortest_path ~follow:(fun l -> l = "y") g ~src:0 ~dst:2 with
  | Some p -> check "filtered path via d" true (p = [ 0; 3; 2 ])
  | None -> Alcotest.fail "y-path exists"

let test_components () =
  let g = build [ "a"; "b"; "c"; "d" ] [ (0, "", 1); (2, "", 3) ] in
  let comp, n = Algo.undirected_components g in
  check_int "two components" 2 n;
  check "0 with 1" true (comp.(0) = comp.(1));
  check "2 with 3" true (comp.(2) = comp.(3));
  check "separate" true (comp.(0) <> comp.(2))

let dag_gen =
  QCheck.Gen.(
    let* n = int_range 2 15 in
    let* edges =
      list_size (int_bound 25)
        (let* a = int_bound (n - 1) in
         let* b = int_bound (n - 1) in
         return (min a b, max a b))
    in
    return (n, List.filter (fun (a, b) -> a <> b) edges))

let prop_topo_on_dags =
  QCheck.Test.make ~name:"topological sort on random DAGs" ~count:200
    (QCheck.make dag_gen)
    (fun (n, edges) ->
      let g =
        build (List.init n string_of_int)
          (List.map (fun (a, b) -> (a, "", b)) edges)
      in
      match Algo.topological_sort g with
      | None -> false
      | Some order ->
        let pos = Array.make n 0 in
        List.iteri (fun i v -> pos.(v) <- i) order;
        List.for_all (fun (a, b) -> pos.(a) < pos.(b)) edges)

let graph_gen =
  QCheck.Gen.(
    let* n = int_range 1 8 in
    let* edges =
      list_size (int_bound 14)
        (let* a = int_bound (n - 1) in
         let* b = int_bound (n - 1) in
         let* l = oneofl [ "x"; "y" ] in
         return (a, l, b))
    in
    return (n, edges))

let prop_scc_partition =
  QCheck.Test.make ~name:"scc is a partition" ~count:200 (QCheck.make graph_gen)
    (fun (n, edges) ->
      let g = build (List.init n string_of_int) edges in
      let comps = Algo.scc g in
      let all = List.concat comps in
      List.length all = n && List.sort_uniq compare all = List.init n Fun.id)

(* --- regular paths ------------------------------------------------------ *)

let test_regpath_basic () =
  let g =
    build [ "r"; "a"; "b"; "c" ]
      [ (0, "index", 1); (1, "index", 2); (2, "link", 3) ]
  in
  let index_plus =
    Regpath.compile (fun l e -> l = e) Gql_regex.Syntax.(plus (sym "index"))
  in
  Alcotest.(check (list int)) "index+" [ 1; 2 ] (Regpath.reachable index_plus g 0);
  let any_star =
    Regpath.compile (fun () _ -> true) Gql_regex.Syntax.(star (sym ()))
  in
  Alcotest.(check (list int)) "anything*" [ 0; 1; 2; 3 ]
    (Regpath.reachable any_star g 0);
  let index_then_link =
    Regpath.compile (fun l e -> l = e)
      Gql_regex.Syntax.(seq (plus (sym "index")) (sym "link"))
  in
  Alcotest.(check (list int)) "index+ link" [ 3 ]
    (Regpath.reachable index_then_link g 0);
  check "connects" true (Regpath.connects index_plus g ~src:0 ~dst:2);
  check "not connects" false (Regpath.connects index_plus g ~src:0 ~dst:3)

let test_regpath_cycle () =
  let g = build [ "a"; "b" ] [ (0, "x", 1); (1, "x", 0) ] in
  let xp = Regpath.compile (fun l e -> l = e) Gql_regex.Syntax.(plus (sym "x")) in
  Alcotest.(check (list int)) "cycle closure" [ 0; 1 ] (Regpath.reachable xp g 0)

let re_gen =
  let open QCheck.Gen in
  let sym = oneofl [ "x"; "y" ] in
  let rec gen d =
    if d = 0 then map Gql_regex.Syntax.sym sym
    else
      frequency
        [
          (3, gen 0);
          (2, map2 Gql_regex.Syntax.seq (gen (d - 1)) (gen (d - 1)));
          (2, map2 Gql_regex.Syntax.alt (gen (d - 1)) (gen (d - 1)));
          (1, map Gql_regex.Syntax.star (gen (d - 1)));
          (1, map Gql_regex.Syntax.plus (gen (d - 1)));
        ]
  in
  gen 2

let prop_regpath_vs_naive =
  QCheck.Test.make ~name:"naive path results are regpath subset" ~count:60
    (QCheck.make QCheck.Gen.(pair graph_gen re_gen))
    (fun ((n, edges), re) ->
      let g = build (List.init n string_of_int) edges in
      let rp = Regpath.compile (fun l e -> l = e) re in
      let fast = Regpath.reachable rp g 0 in
      let slow =
        Regpath.reachable_naive (fun l e -> l = e) re g 0 ~max_len:6
      in
      (* the bounded naive search may miss long paths but must never find
         something the product construction missed *)
      List.for_all (fun v -> List.mem v fast) slow)

let prop_regpath_single_sym =
  QCheck.Test.make ~name:"single-symbol path = direct successors" ~count:200
    (QCheck.make graph_gen)
    (fun (n, edges) ->
      let g = build (List.init n string_of_int) edges in
      let rp = Regpath.compile (fun l e -> l = e) (Gql_regex.Syntax.sym "x") in
      let expect =
        List.sort_uniq compare
          (List.filter_map (fun (a, l, b) -> if a = 0 && l = "x" then Some b else None) edges)
      in
      Regpath.reachable rp g 0 = expect)

(* --- homomorphism matcher ------------------------------------------------ *)

let any _ _ = true
let lbl want _ p = p = want

(* Candidate propagation through a provider (navs intersected
   smallest-first, negations as exclusions) must bind the same
   embeddings in the same order as the plain scan — the scan-vs-index
   fuzz oracle's contract, pinned here on a pattern where one node has
   two bound incident edges plus a negated one.  One nav is a
   deliberate superset with [nav_exact = false], so the re-check path
   is exercised too. *)
let test_homo_provider_order () =
  let g =
    build
      [ "a"; "c"; "b"; "b"; "b"; "b" ]
      [ (0, "x", 2); (0, "x", 3); (0, "x", 5); (1, "y", 2); (1, "y", 3);
        (1, "y", 4); (0, "z", 3) ]
  in
  let pat =
    {
      Homo.p_nodes = [| lbl "a"; lbl "c"; lbl "b" |];
      p_edges =
        [ (0, Homo.Direct (fun e -> e = "x"), 2);
          (1, Homo.Direct (fun e -> e = "y"), 2);
          (0, Homo.Negated (fun e -> e = "z"), 2) ];
    }
  in
  let by_label want =
    Iset.of_list
      (Digraph.fold_nodes (fun acc i p -> if p = want then i :: acc else acc) [] g)
  in
  let out_lbl want n =
    Iset.of_list
      (List.filter_map (fun (d, l) -> if l = want then Some d else None)
         (Digraph.succ g n))
  in
  let nav_x =
    (* exact: exactly the x-successors *)
    Some
      { Homo.nav_out = Some (out_lbl "x"); nav_in = None;
        nav_links = Some (fun s d -> Iset.mem (out_lbl "x" s) d);
        nav_exact = true }
  in
  let nav_y_superset =
    (* superset: all successors regardless of label, not exact *)
    Some
      { Homo.nav_out = Some (fun n -> Iset.of_list (List.map fst (Digraph.succ g n)));
        nav_in = None; nav_links = None; nav_exact = false }
  in
  let provider =
    {
      Homo.prov_candidates =
        (fun p -> Some (by_label [| "a"; "c"; "b" |].(p)));
      prov_degree = None;
      prov_nav =
        (fun i -> match i with 0 -> nav_x | 1 -> nav_y_superset | _ -> None);
    }
  in
  let scan = Homo.all_embeddings pat g in
  let indexed = Homo.all_embeddings ~provider pat g in
  check "non-trivial" true (List.length scan > 0);
  check "same embeddings, same order" true (scan = indexed)

let test_homo_basic () =
  let g = build [ "a"; "b"; "a"; "b"; "c" ] [ (0, "", 1); (2, "", 3); (4, "", 1) ] in
  let pat =
    { Homo.p_nodes = [| lbl "a"; lbl "b" |];
      p_edges = [ (0, Homo.Direct (fun _ -> true), 1) ] }
  in
  check_int "two embeddings" 2 (Homo.count pat g);
  check "exists" true (Homo.exists pat g);
  let embs = Homo.all_embeddings pat g in
  check "bindings correct" true
    (List.for_all
       (fun e -> Digraph.payload g e.(0) = "a" && Digraph.payload g e.(1) = "b")
       embs)

let test_homo_edge_labels () =
  let g = build [ "a"; "b" ] [ (0, "x", 1); (0, "y", 1) ] in
  let pat l =
    { Homo.p_nodes = [| any; any |];
      p_edges = [ (0, Homo.Direct (fun e -> e = l), 1) ] }
  in
  check_int "x edge" 1 (Homo.count (pat "x") g);
  check_int "z edge" 0 (Homo.count (pat "z") g)

let test_homo_shared_node_join () =
  let g = build [ "p"; "p"; "c"; "c" ] [ (0, "", 2); (1, "", 2); (1, "", 3) ] in
  let pat =
    { Homo.p_nodes = [| lbl "p"; lbl "p"; lbl "c" |];
      p_edges =
        [ (0, Homo.Direct (fun _ -> true), 2); (1, Homo.Direct (fun _ -> true), 2) ] }
  in
  let embs = Homo.all_embeddings pat g in
  (* homomorphisms (not injective): (0,1,2) (1,0,2) (0,0,2) (1,1,2) (1,1,3) *)
  check_int "identity join embeddings" 5 (List.length embs)

let test_homo_negated () =
  let g = build [ "a"; "b"; "a"; "b" ] [ (0, "", 1); (2, "", 1) ] in
  let pat =
    { Homo.p_nodes = [| lbl "a"; lbl "b" |];
      p_edges = [ (0, Homo.Negated (fun _ -> true), 1) ] }
  in
  (* pairs without an edge: (0,3) and (2,3) *)
  check_int "negated pairs" 2 (Homo.count pat g)

let test_homo_path_edge () =
  let g = build [ "a"; "m"; "b" ] [ (0, "x", 1); (1, "x", 2) ] in
  let rp = Regpath.compile (fun () e -> e = "x") Gql_regex.Syntax.(plus (sym ())) in
  let pat =
    { Homo.p_nodes = [| lbl "a"; lbl "b" |]; p_edges = [ (0, Homo.Path rp, 1) ] }
  in
  check_int "path a=>b" 1 (Homo.count pat g)

let test_homo_empty_pattern () =
  let g = build [ "a" ] [] in
  let pat = { Homo.p_nodes = [||]; p_edges = [] } in
  check_int "empty pattern one empty embedding" 1 (Homo.count pat g)

let test_homo_no_candidates () =
  let g = build [ "a" ] [] in
  let pat = { Homo.p_nodes = [| lbl "zz" |]; p_edges = [] } in
  check_int "no candidates" 0 (Homo.count pat g)

let prop_homo_sound =
  QCheck.Test.make ~name:"homo embeddings satisfy constraints" ~count:150
    (QCheck.make graph_gen)
    (fun (n, edges) ->
      let g = build (List.init n string_of_int) edges in
      let pat =
        { Homo.p_nodes = [| any; any |];
          p_edges = [ (0, Homo.Direct (fun e -> e = "x"), 1) ] }
      in
      List.for_all
        (fun emb ->
          List.exists (fun (d, l) -> d = emb.(1) && l = "x") (Digraph.succ g emb.(0)))
        (Homo.all_embeddings pat g))

let prop_homo_complete =
  QCheck.Test.make ~name:"homo finds every x-edge" ~count:150
    (QCheck.make graph_gen)
    (fun (n, edges) ->
      let g = build (List.init n string_of_int) edges in
      let pat =
        { Homo.p_nodes = [| any; any |];
          p_edges = [ (0, Homo.Direct (fun e -> e = "x"), 1) ] }
      in
      let expected =
        List.length
          (List.sort_uniq compare
             (List.filter_map
                (fun (a, l, b) -> if l = "x" then Some (a, b) else None)
                edges))
      in
      Homo.count pat g = expected)

let () =
  Alcotest.run "gql_graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "multigraph" `Quick test_multigraph;
          Alcotest.test_case "map" `Quick test_map;
        ] );
      ( "algo",
        [
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "topo" `Quick test_topo;
          Alcotest.test_case "topo cycle" `Quick test_topo_cycle;
          Alcotest.test_case "scc" `Quick test_scc;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
          Alcotest.test_case "components" `Quick test_components;
          QCheck_alcotest.to_alcotest prop_topo_on_dags;
          QCheck_alcotest.to_alcotest prop_scc_partition;
        ] );
      ( "regpath",
        [
          Alcotest.test_case "basic" `Quick test_regpath_basic;
          Alcotest.test_case "cycles" `Quick test_regpath_cycle;
          QCheck_alcotest.to_alcotest prop_regpath_vs_naive;
          QCheck_alcotest.to_alcotest prop_regpath_single_sym;
        ] );
      ( "homo",
        [
          Alcotest.test_case "basic" `Quick test_homo_basic;
          Alcotest.test_case "provider keeps binding order" `Quick
            test_homo_provider_order;
          Alcotest.test_case "edge labels" `Quick test_homo_edge_labels;
          Alcotest.test_case "shared node join" `Quick test_homo_shared_node_join;
          Alcotest.test_case "negated" `Quick test_homo_negated;
          Alcotest.test_case "path edge" `Quick test_homo_path_edge;
          Alcotest.test_case "empty pattern" `Quick test_homo_empty_pattern;
          Alcotest.test_case "no candidates" `Quick test_homo_no_candidates;
          QCheck_alcotest.to_alcotest prop_homo_sound;
          QCheck_alcotest.to_alcotest prop_homo_complete;
        ] );
    ]
