(* The query service, proven against direct evaluation.

   The load-bearing property: a RUN response body must be *byte
   identical* to what direct `Gql_xmlgl.Engine` / `Gql_wglog.Eval`
   evaluation over the same snapshot produces — cold, cached, over a
   socket, and under concurrent clients on a multi-domain worker pool.
   Everything else (protocol framing, caches, metrics, deadlines) is
   exercised around that invariant. *)

open Gql_server

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- the served corpus -------------------------------------------------- *)

let doc_of = function
  | "bibliography" -> Gql_workload.Gen.bibliography ~seed:81 40
  | "people" -> Gql_workload.Gen.people ~seed:82 60
  | "greengrocer" -> Gql_workload.Gen.greengrocer ~seed:83 80
  | d -> failwith ("no test doc " ^ d)

let restaurant_graph () = Gql_workload.Gen.restaurants ~seed:84 50

let new_server ?(workers = 4) ?(result_cache = 256) ?default_deadline_ms () =
  let config =
    {
      Server.default_config with
      workers = Some workers;
      result_cache;
      default_deadline_ms;
    }
  in
  let server = Server.create ~config () in
  let reg = Server.registry server in
  List.iter
    (fun name ->
      match
        Registry.load_xml reg ~name
          (Gql_xml.Printer.to_string (doc_of name))
      with
      | Ok _ -> ()
      | Error m -> failwith m)
    [ "bibliography"; "people"; "greengrocer" ];
  ignore (Registry.add_graph reg ~name:"restaurants" (restaurant_graph ()));
  server

(** What direct evaluation says for one suite query — computed fresh
    from the server's own snapshot so both sides see one graph. *)
let direct_body server (q : Gql_workload.Queries.server_query) : string =
  let snap = Option.get (Registry.find (Server.registry server) q.doc) in
  let graph = snap.Registry.db.Gql_core.Gql.graph in
  match Gql_core.Gql.language_of_source q.source with
  | `Xmlgl ->
    let p = Gql_core.Gql.parse_xmlgl q.source in
    Gql_core.Gql.to_xml_string
      (Gql_xmlgl.Engine.run_program ~index:snap.Registry.index graph p)
  | `Wglog ->
    let schema =
      match q.schema with
      | Some "restaurant" -> Some Gql_wglog.Schema.restaurant_schema
      | Some "hyperdoc" -> Some Gql_wglog.Schema.hyperdoc_schema
      | _ -> None
    in
    let p = Gql_core.Gql.parse_wglog ?schema q.source in
    Server.wglog_stats_line (Gql_wglog.Eval.run (Registry.fork snap) p)
  | `Match ->
    let q = Gql_core.Gql.parse_match q.source in
    fst (Gql_match.Eval.run ~index:snap.Registry.index graph q)
  | `Unknown -> failwith "unknown language"

let run_payload (q : Gql_workload.Queries.server_query) =
  Protocol.render_request
    (Protocol.Run
       { doc = q.doc; query = `Source q.source; schema = q.schema; deadline_ms = None })

(* --- language sniffing (the satellite fix) ------------------------------ *)

let test_language_of () =
  let lang s = Gql_core.Gql.language_of_source s in
  check_bool "lowercase wglog" true (lang "wglog\nrule\n" = `Wglog);
  check_bool "uppercase WGLOG" true (lang "WGLOG\nrule\n" = `Wglog);
  check_bool "mixed case XmlGl" true (lang "XmlGl\nrule\n" = `Xmlgl);
  check_bool "wglogx is not wglog" true (lang "wglogx\nrule\n" = `Unknown);
  check_bool "xmlgl2 is not xmlgl" true (lang "xmlgl2\n" = `Unknown);
  check_bool "comment lines skipped" true (lang "# note\n\nxmlgl\n" = `Xmlgl);
  check_bool "header args allowed" true (lang "xmlgl result r\n" = `Xmlgl);
  check_bool "tab separated" true (lang "wglog\tstrict\n" = `Wglog);
  check_bool "empty" true (lang "" = `Unknown)

(* --- graph copy --------------------------------------------------------- *)

let test_graph_copy_isolated () =
  let g = restaurant_graph () in
  let n0 = Gql_data.Graph.n_nodes g and e0 = Gql_data.Graph.n_edges g in
  let copy = Gql_data.Graph.copy g in
  let p =
    Gql_core.Gql.parse_wglog ~schema:Gql_wglog.Schema.restaurant_schema
      Gql_workload.Queries.q10_src
  in
  let stats = Gql_wglog.Eval.run copy p in
  check_bool "fixpoint derived something" true (stats.Gql_wglog.Eval.edges_added > 0);
  check_int "original nodes untouched" n0 (Gql_data.Graph.n_nodes g);
  check_int "original edges untouched" e0 (Gql_data.Graph.n_edges g);
  (* a second fork sees the pristine graph: byte-identical stats *)
  let stats' = Gql_wglog.Eval.run (Gql_data.Graph.copy g) p in
  check "fork determinism" (Server.wglog_stats_line stats)
    (Server.wglog_stats_line stats')

(* --- metrics histogram -------------------------------------------------- *)

let test_histogram_quantiles () =
  let h = Metrics.histogram () in
  for us = 1 to 1000 do
    Metrics.observe h ~us
  done;
  let p50 = Metrics.quantile h 0.50 in
  let p99 = Metrics.quantile h 0.99 in
  (* log-linear buckets promise <= 25% relative error *)
  check_bool "p50 near 500" true (p50 >= 500 && p50 <= 640);
  check_bool "p99 near 990" true (p99 >= 990 && p99 <= 1300);
  check_bool "monotone" true (p50 <= p99)

(* --- result cache LRU --------------------------------------------------- *)

let key doc version qhash = { Rcache.doc; version; qhash; kind = "run" }

let test_rcache_lru () =
  let c = Rcache.create ~capacity:2 () in
  Rcache.add c (key "d" 1 "a") ~info:"" "A";
  Rcache.add c (key "d" 1 "b") ~info:"" "B";
  ignore (Rcache.find c (key "d" 1 "a"));
  (* a is now MRU *)
  Rcache.add c (key "d" 1 "c") ~info:"" "C";
  (* b was LRU: evicted *)
  check_bool "a survives" true (Rcache.find c (key "d" 1 "a") <> None);
  check_bool "b evicted" true (Rcache.find c (key "d" 1 "b") = None);
  check_bool "c present" true (Rcache.find c (key "d" 1 "c") <> None);
  Rcache.purge_doc c "d";
  check_int "purge empties the doc" 0 (Rcache.length c)

let test_rcache_version_isolation () =
  let c = Rcache.create ~capacity:8 () in
  Rcache.add c (key "d" 1 "q") ~info:"" "old";
  check_bool "other version misses" true (Rcache.find c (key "d" 2 "q") = None)

(* --- prepared-query cache ----------------------------------------------- *)

let test_qcache () =
  let c = Qcache.create ~capacity:4 () in
  let src = Gql_workload.Queries.q1_src in
  (match Qcache.intern c ~schema:None src with
  | Ok (_, hit) -> check_bool "first intern is a miss" false hit
  | Error m -> Alcotest.fail m);
  (match Qcache.intern c ~schema:None src with
  | Ok (_, hit) -> check_bool "second intern hits" true hit
  | Error m -> Alcotest.fail m);
  (match Qcache.prepare c ~name:"q1" ~schema:None src with
  | Ok (entry, hit) ->
    check_bool "prepare of known source hits" true hit;
    check_bool "language detected" true (entry.Qcache.lang = `Xmlgl)
  | Error m -> Alcotest.fail m);
  (match Qcache.find_named c "q1" with
  | Ok (_, hit) -> check_bool "named lookup hits" true hit
  | Error m -> Alcotest.fail m);
  check_bool "unknown name errors" true
    (match Qcache.find_named c "nope" with Error _ -> true | Ok _ -> false);
  check_bool "parse errors surface" true
    (match Qcache.intern c ~schema:None "xmlgl\nrule\nsyntax error" with
    | Error _ -> true
    | Ok _ -> false);
  check_bool "bad schema tag errors" true
    (match Qcache.intern c ~schema:(Some "nope") Gql_workload.Queries.q10_src with
    | Error _ -> true
    | Ok _ -> false)

let test_qcache_reprepare_no_double_enqueue () =
  (* FIFO accounting: re-PREPAREing text the cache already holds must
     not enqueue its hash again — with capacity 3, preparing the same
     source capacity+1 times may evict nothing, and the other resident
     entries must still hit afterwards *)
  let capacity = 3 in
  let c = Qcache.create ~capacity () in
  let resident = [ Gql_workload.Queries.q2_src; Gql_workload.Queries.q3_src ] in
  List.iter
    (fun src ->
      match Qcache.intern c ~schema:None src with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m)
    resident;
  for i = 1 to capacity + 1 do
    match Qcache.prepare c ~name:"q1" ~schema:None Gql_workload.Queries.q1_src with
    | Ok (_, hit) -> check_bool "only the first prepare misses" (i > 1) hit
    | Error m -> Alcotest.fail m
  done;
  check_int "fifo holds one slot per distinct parse" 3
    (Queue.length c.Qcache.fifo);
  List.iter
    (fun src ->
      match Qcache.intern c ~schema:None src with
      | Ok (_, hit) -> check_bool "resident entry was not evicted" true hit
      | Error m -> Alcotest.fail m)
    resident

(* --- in-process byte identity ------------------------------------------- *)

let test_inprocess_byte_identity () =
  let server = new_server () in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      List.iter
        (fun (q : Gql_workload.Queries.server_query) ->
          let expected = direct_body server q in
          (* cold *)
          (match Protocol.parse_response (Server.handle_payload server (run_payload q)) with
          | Protocol.Ok_ { body; _ } -> check (q.sq_name ^ " cold") expected body
          | r -> Alcotest.failf "%s: %s" q.sq_name (Protocol.render_response r));
          (* cached: still byte-identical *)
          match Protocol.parse_response (Server.handle_payload server (run_payload q)) with
          | Protocol.Ok_ { info; body } ->
            check (q.sq_name ^ " cached") expected body;
            check_bool (q.sq_name ^ " hit the result cache") true
              (contains ~needle:" cached" info)
          | r -> Alcotest.failf "%s: %s" q.sq_name (Protocol.render_response r))
        Gql_workload.Queries.server_suite)

let test_malformed_programs_yield_err () =
  (* programs that parse but fail the semantic checks used to raise
     straight through handle_payload (killing the worker domain serving
     the connection); they must come back as framed ERRs, and the
     server must keep answering afterwards *)
  let server = new_server ~workers:1 () in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let send req =
        Protocol.parse_response
          (Server.handle_payload server (Protocol.render_request req))
      in
      let run source =
        send
          (Protocol.Run
             { doc = "people"; query = `Source source; schema = None;
               deadline_ms = None })
      in
      let rootless =
        "xmlgl\nresult result\nrule\nquery\n  node $q0 elem PERSON\n\
         construct\n  node c0 new out\nend\n"
      in
      let cyclic =
        "xmlgl\nresult result\nrule\nquery\n  node $q0 elem PERSON\n\
         construct\n  node c0 new out\n  node c1 new inner\n  root c0\n\
         \  edge c0 c1\n  edge c1 c0\nend\n"
      in
      let collect_query_edge =
        "wglog\nrule\n  node n0 PERSON\n  cnode n1 derived\n\
         \  edge n0 id n1\nend\n"
      in
      List.iter
        (fun (name, src) ->
          match run src with
          | Protocol.Err msg ->
            check_bool (name ^ " reports a typed invalid-query error") true
              (contains ~needle:"invalid query" msg)
          | r ->
            Alcotest.failf "%s: expected ERR, got %s" name
              (Protocol.render_response r))
        [ ("rootless construction", rootless); ("cyclic construction", cyclic);
          ("collect query edge", collect_query_edge) ];
      match send Protocol.Ping with
      | Protocol.Ok_ _ -> ()
      | r ->
        Alcotest.failf "server stopped answering: %s"
          (Protocol.render_response r))

(* --- socket byte identity ----------------------------------------------- *)

let with_socket_server ?workers ?result_cache ?default_deadline_ms f =
  let server = new_server ?workers ?result_cache ?default_deadline_ms () in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gql-test-%d-%d.sock" (Unix.getpid ()) (Random.bits ()))
  in
  let _ = Server.listen server (Unix.ADDR_UNIX path) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f server path)

let test_socket_byte_identity () =
  with_socket_server (fun server path ->
      let c = Client.connect_unix path in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          List.iter
            (fun (q : Gql_workload.Queries.server_query) ->
              let expected = direct_body server q in
              match Client.run c ~doc:q.doc ?schema:q.schema (`Source q.source) with
              | Ok (_, body) -> check (q.sq_name ^ " over socket") expected body
              | Error m -> Alcotest.failf "%s: %s" q.sq_name m)
            Gql_workload.Queries.server_suite))

(* --- prepared queries over the wire -------------------------------------- *)

let test_prepare_and_run () =
  with_socket_server (fun server path ->
      let c = Client.connect_unix path in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let q =
            List.find
              (fun (q : Gql_workload.Queries.server_query) -> q.sq_name = "Q2")
              Gql_workload.Queries.server_suite
          in
          (match Client.prepare c ~name:"expensive" q.source with
          | Ok (info, _) ->
            check_bool "prepare reports lang" true
              (contains ~needle:"lang=xmlgl" info)
          | Error m -> Alcotest.fail m);
          match Client.run c ~doc:q.doc (`Named "expensive") with
          | Ok (_, body) -> check "named run" (direct_body server q) body
          | Error m -> Alcotest.fail m))

(* --- stats / metrics / errors / deadlines -------------------------------- *)

let test_stats_metrics_errors () =
  with_socket_server (fun _server path ->
      let c = Client.connect_unix path in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.ping c with
          | Ok (info, _) -> check "ping" "pong" info
          | Error m -> Alcotest.fail m);
          (match Client.stats c ~doc:"bibliography" with
          | Ok (_, body) ->
            check_bool "stats mentions nodes" true
              (List.mem_assoc "nodes" (Metrics.parse_body body))
          | Error m -> Alcotest.fail m);
          check_bool "unknown doc errors" true
            (Result.is_error (Client.stats c ~doc:"missing"));
          check_bool "bad source errors" true
            (Result.is_error (Client.run c ~doc:"bibliography" (`Source "nonsense")));
          (* deadline 0: always overdue -> graceful TIMEOUT, socket stays up *)
          (match
             Client.run c ~doc:"bibliography" ~deadline_ms:0.0
               (`Source Gql_workload.Queries.q1_src)
           with
          | Error m ->
            check_bool "timeout reported" true
              (String.length m >= 7 && String.sub m 0 7 = "timeout")
          | Ok _ -> Alcotest.fail "deadline=0 must time out");
          match Client.metrics c with
          | Ok (_, body) ->
            let kv = Metrics.parse_body body in
            check_bool "requests counted" true
              (int_of_string (List.assoc "requests" kv) >= 4);
            check_bool "timeout counted" true
              (int_of_string (List.assoc "timeouts" kv) >= 1);
            (* the Par scheduler's slice rides along *)
            check_bool "par stats exported" true
              (List.mem_assoc "par_jobs" kv
              && List.mem_assoc "par_seq_below_cutoff" kv
              && List.mem_assoc "par_cutoff" kv);
            (* ... and so do the path-engine counters *)
            check_bool "path stats exported" true
              (List.mem_assoc "path_compiles" kv
              && List.mem_assoc "path_specialisations" kv
              && List.mem_assoc "path_searches" kv
              && List.mem_assoc "path_memo_hits" kv
              && List.mem_assoc "path_memo_misses" kv
              && List.mem_assoc "path_frontier_peak" kv
              && List.mem_assoc "path_scratch_reuses" kv);
            (* ... and the snapshot store's *)
            check_bool "snapshot stats exported" true
              (List.mem_assoc "snapshot_saves" kv
              && List.mem_assoc "snapshot_loads" kv
              && List.mem_assoc "snapshot_save_ms" kv
              && List.mem_assoc "snapshot_load_ms" kv
              && List.mem_assoc "snapshot_bytes" kv)
          | Error m -> Alcotest.fail m))

(* --- plan cache ----------------------------------------------------------- *)

let test_plan_cache_counters () =
  (* result cache off, so the second identical RUN actually re-evaluates
     — but planning must be skipped: one plan-cache miss, then hits. *)
  with_socket_server ~result_cache:0 (fun _server path ->
      let c = Client.connect_unix path in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let src = Gql_workload.Queries.m1_src in
          let run () =
            match Client.run c ~doc:"bibliography" (`Source src) with
            | Ok (_, body) -> body
            | Error m -> Alcotest.fail m
          in
          let first = run () in
          check "identical bodies from cached plan" first (run ());
          match Client.metrics c with
          | Ok (_, body) ->
            let kv = Metrics.parse_body body in
            check_bool "plan cache missed on first run" true
              (int_of_string (List.assoc "plan_cache_misses" kv) >= 1);
            check_bool "plan cache hit on second run" true
              (int_of_string (List.assoc "plan_cache_hits" kv) >= 1)
          | Error m -> Alcotest.fail m))

(* --- snapshot versioning over the wire ------------------------------------ *)

let test_reload_invalidates () =
  with_socket_server (fun server path ->
      let c = Client.connect_unix path in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let q1 = Gql_workload.Queries.q1_src in
          let before =
            match Client.run c ~doc:"bibliography" (`Source q1) with
            | Ok (_, body) -> body
            | Error m -> Alcotest.fail m
          in
          (* re-LOAD a *different* bibliography under the same name *)
          let xml =
            Gql_xml.Printer.to_string (Gql_workload.Gen.bibliography ~seed:999 10)
          in
          (match Client.load c ~doc:"bibliography" xml with
          | Ok (info, _) ->
            check_bool "version bumped" true
              (let kv =
                 List.filter_map
                   (fun t ->
                     match String.index_opt t '=' with
                     | Some i ->
                       Some
                         ( String.sub t 0 i,
                           String.sub t (i + 1) (String.length t - i - 1) )
                     | None -> None)
                   (String.split_on_char ' ' info)
               in
               List.assoc "version" kv = "2")
          | Error m -> Alcotest.fail m);
          let after =
            match Client.run c ~doc:"bibliography" (`Source q1) with
            | Ok (_, body) -> body
            | Error m -> Alcotest.fail m
          in
          check_bool "stale result not replayed" true (before <> after);
          let q =
            List.find
              (fun (q : Gql_workload.Queries.server_query) -> q.sq_name = "Q1")
              Gql_workload.Queries.server_suite
          in
          check "fresh snapshot served" (direct_body server q) after))

(* --- concurrent determinism (the 4-domain stress case) -------------------- *)

let test_concurrent_determinism () =
  with_socket_server ~workers:4 (fun server path ->
      (* expected bodies from single-threaded direct evaluation *)
      let expected =
        List.map
          (fun (q : Gql_workload.Queries.server_query) ->
            (q.sq_name, direct_body server q))
          Gql_workload.Queries.server_suite
      in
      let n_threads = 8 and per_thread = 30 in
      let failures = ref [] in
      let mu = Mutex.create () in
      let client_thread k () =
        let mix = Gql_workload.Queries.server_mix ~seed:(100 + k) per_thread in
        let c = Client.connect_unix path in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            List.iter
              (fun (q : Gql_workload.Queries.server_query) ->
                let want = List.assoc q.sq_name expected in
                match Client.run c ~doc:q.doc ?schema:q.schema (`Source q.source) with
                | Ok (_, body) when body = want -> ()
                | Ok _ ->
                  Mutex.lock mu;
                  failures := Printf.sprintf "thread %d: %s diverged" k q.sq_name :: !failures;
                  Mutex.unlock mu
                | Error m ->
                  Mutex.lock mu;
                  failures := Printf.sprintf "thread %d: %s: %s" k q.sq_name m :: !failures;
                  Mutex.unlock mu)
              mix)
      in
      let threads = List.init n_threads (fun k -> Thread.create (client_thread k) ()) in
      List.iter Thread.join threads;
      (match !failures with
      | [] -> ()
      | fs -> Alcotest.fail (String.concat "; " fs));
      let c = Client.connect_unix path in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.metrics c with
          | Ok (_, body) ->
            let kv = Metrics.parse_body body in
            check_bool "all requests served" true
              (int_of_string (List.assoc "requests" kv) >= n_threads * per_thread)
          | Error m -> Alcotest.fail m))

(* --- protocol framing ----------------------------------------------------- *)

let test_framing_roundtrip () =
  let payloads =
    [ ""; "x"; "two\nlines"; String.make 100_000 'z'; "trailing\n" ]
  in
  let path = Filename.temp_file "gql-frame" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      List.iter (Protocol.write_frame oc) payloads;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          List.iter
            (fun want ->
              match Protocol.read_frame ic with
              | Some got -> check "frame" want got
              | None -> Alcotest.fail "premature EOF")
            payloads;
          check_bool "clean EOF" true (Protocol.read_frame ic = None)))

let test_request_roundtrip () =
  let reqs =
    [
      Protocol.Load { doc = "d"; xml = "<a/>" };
      Protocol.Prepare { name = "n"; schema = Some "restaurant"; source = "wglog\n" };
      Protocol.Run
        { doc = "d"; query = `Named "n"; schema = None; deadline_ms = Some 25.0 };
      Protocol.Run
        { doc = "d"; query = `Source "xmlgl\nbody"; schema = None; deadline_ms = None };
      Protocol.Explain { doc = "d"; query = `Named "n" };
      Protocol.Stats { doc = "d" };
      Protocol.Metrics;
      Protocol.Ping;
      Protocol.Quit;
    ]
  in
  List.iter
    (fun r ->
      check_bool "roundtrip" true
        (Protocol.parse_request (Protocol.render_request r) = r))
    reqs;
  check_bool "verbs are case-insensitive" true
    (Protocol.parse_request "stats d" = Protocol.Stats { doc = "d" });
  check_bool "unknown verb rejected" true
    (match Protocol.parse_request "FROB x" with
    | exception Protocol.Protocol_error _ -> true
    | _ -> false)

let () =
  Alcotest.run "server"
    [
      ( "satellites",
        [
          Alcotest.test_case "language_of_source" `Quick test_language_of;
          Alcotest.test_case "graph copy isolation" `Quick test_graph_copy_isolated;
        ] );
      ( "components",
        [
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "result-cache LRU" `Quick test_rcache_lru;
          Alcotest.test_case "result-cache versioning" `Quick test_rcache_version_isolation;
          Alcotest.test_case "prepared-query cache" `Quick test_qcache;
          Alcotest.test_case "re-prepare FIFO accounting" `Quick
            test_qcache_reprepare_no_double_enqueue;
          Alcotest.test_case "frame roundtrip" `Quick test_framing_roundtrip;
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
        ] );
      ( "byte-identity",
        [
          Alcotest.test_case "in-process, cold and cached" `Quick
            test_inprocess_byte_identity;
          Alcotest.test_case "over a unix socket" `Quick test_socket_byte_identity;
          Alcotest.test_case "prepared run" `Quick test_prepare_and_run;
          Alcotest.test_case "plan cache counters" `Quick
            test_plan_cache_counters;
          Alcotest.test_case "reload invalidates" `Quick test_reload_invalidates;
        ] );
      ( "service",
        [
          Alcotest.test_case "stats, metrics, errors, deadline" `Quick
            test_stats_metrics_errors;
          Alcotest.test_case "malformed programs yield ERR" `Quick
            test_malformed_programs_yield_err;
          Alcotest.test_case "8 clients x 4 domains determinism" `Quick
            test_concurrent_determinism;
        ] );
    ]
