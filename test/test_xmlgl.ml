(* Tests for Gql_xmlgl: matching semantics feature by feature,
   construction semantics construct by construct, well-formedness
   checks, and the schema reading of XML-GL (incl. DTD interchange). *)

open Gql_xmlgl

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let load s = Gql_data.Codec.encode_string s

let people =
  load
    {|<people>
        <PERSON id="p1"><firstname>Alice</firstname><lastname>Smith</lastname>
          <age>30</age><salary>20000</salary>
          <FULLADDR><city>Milano</city></FULLADDR></PERSON>
        <PERSON id="p2"><firstname>Bob</firstname><lastname>Jones</lastname>
          <age>65</age><salary>30000</salary></PERSON>
        <PERSON id="p3"><firstname>Carla</firstname><lastname>Rossi</lastname>
          <age>17</age><salary>26000</salary>
          <FULLADDR><city>Como</city></FULLADDR></PERSON>
      </people>|}

(* --- matching: selection -------------------------------------------------- *)

let test_select_by_name () =
  let b = Ast.Build.create () in
  let _ = Ast.Build.q_elem b "PERSON" in
  let r = { (Ast.Build.finish b) with Ast.construction = { Ast.c_nodes = [||]; c_edges = []; c_roots = [] } } in
  check_int "three persons" 3 (Matching.count people r.Ast.query)

let test_select_wildcard () =
  let b = Ast.Build.create () in
  let _ = Ast.Build.q_any b () in
  let q = (Ast.Build.finish b).Ast.query in
  (* every complex node: people + 3 persons + 3x4 leaves + 2 addr + 2 city *)
  check "many elements" true (Matching.count people q > 10)

let test_select_name_regex () =
  let b = Ast.Build.create () in
  let _ = Ast.Build.qnode b (Ast.Q_elem (Ast.Name_re "F.*")) in
  let q = (Ast.Build.finish b).Ast.query in
  check_int "FULLADDR twice" 2 (Matching.count people q)

let test_containment_edge () =
  let b = Ast.Build.create () in
  let p = Ast.Build.q_elem b "PERSON" in
  let a = Ast.Build.q_elem b "FULLADDR" in
  Ast.Build.qedge b p a;
  check_int "two persons with address" 2
    (Matching.count people (Ast.Build.finish b).Ast.query)

let test_content_predicate () =
  let b = Ast.Build.create () in
  let p = Ast.Build.q_elem b "age" in
  let c =
    Ast.Build.q_content b
      ~pred:(Ast.Compare (Ast.Gt, Ast.Self, Ast.Const (Gql_data.Value.int 20)))
      ()
  in
  Ast.Build.qedge b p c;
  check_int "ages over 20" 2 (Matching.count people (Ast.Build.finish b).Ast.query)

let test_attr_edge () =
  let b = Ast.Build.create () in
  let p = Ast.Build.q_elem b "PERSON" in
  let a =
    Ast.Build.q_attr_node b
      ~pred:(Ast.Compare (Ast.Eq, Ast.Self, Ast.Const (Gql_data.Value.string "p2")))
      ()
  in
  Ast.Build.qattr b p "id" a;
  check_int "person p2" 1 (Matching.count people (Ast.Build.finish b).Ast.query)

let test_deep_edge () =
  let b = Ast.Build.create () in
  let root = Ast.Build.q_elem b "people" in
  let city = Ast.Build.q_elem b "city" in
  Ast.Build.qdeep b root city;
  check_int "cities at depth" 2 (Matching.count people (Ast.Build.finish b).Ast.query);
  (* deep is one-or-more: an element is not its own descendant *)
  let b2 = Ast.Build.create () in
  let x = Ast.Build.q_elem b2 "city" in
  let y = Ast.Build.q_elem b2 "city" in
  Ast.Build.qdeep b2 x y;
  check_int "city under city" 0 (Matching.count people (Ast.Build.finish b2).Ast.query)

let test_absent_edge () =
  let b = Ast.Build.create () in
  let p = Ast.Build.q_elem b "PERSON" in
  let a = Ast.Build.q_elem b "FULLADDR" in
  Ast.Build.qabsent b p a;
  check_int "one person without address" 1
    (Matching.count people (Ast.Build.finish b).Ast.query)

let test_position_pin () =
  let b = Ast.Build.create () in
  let p = Ast.Build.q_elem b "PERSON" in
  let first = Ast.Build.q_any b () in
  Ast.Build.qedge b ~position:0 p first;
  let bindings = Matching.run people (Ast.Build.finish b).Ast.query in
  check_int "three first children" 3 (List.length bindings);
  check "all are firstname" true
    (List.for_all
       (fun bd -> Gql_data.Graph.label people bd.(1) = Some "firstname")
       bindings)

let doc_ordered =
  load {|<r><e><a/><b/></e><e><b/><a/></e></r>|}

let test_ordered_tick () =
  let mk ordered =
    let b = Ast.Build.create () in
    let e = Ast.Build.q_elem b "e" in
    let a = Ast.Build.q_elem b "a" in
    let bb = Ast.Build.q_elem b "b" in
    Ast.Build.qedge b ~ordered e a;
    Ast.Build.qedge b ~ordered e bb;
    (Ast.Build.finish b).Ast.query
  in
  check_int "unordered matches both" 2 (Matching.count doc_ordered (mk false));
  check_int "ordered matches one" 1 (Matching.count doc_ordered (mk true))

let test_value_join () =
  (* shared content circle between two parents = value equality *)
  let data =
    load
      {|<db><l><v>x</v><v>y</v></l><r><w>y</w><w>z</w></r></db>|}
  in
  let b = Ast.Build.create () in
  let v = Ast.Build.q_elem b "v" in
  let w = Ast.Build.q_elem b "w" in
  let shared = Ast.Build.q_content b () in
  Ast.Build.qedge b v shared;
  Ast.Build.qedge b w shared;
  let bindings = Matching.run data (Ast.Build.finish b).Ast.query in
  check_int "one joining pair" 1 (List.length bindings)

let test_cross_node_predicate () =
  (* persons whose salary is at least 1000 * age *)
  let b = Ast.Build.create () in
  let p = Ast.Build.q_elem b "PERSON" in
  let age = Ast.Build.q_elem b "age" in
  let agev = Ast.Build.q_content b () in
  let sal = Ast.Build.q_elem b "salary" in
  let salv =
    Ast.Build.q_content b
      ~pred:
        (Ast.Compare
           ( Ast.Ge,
             Ast.Self,
             Ast.Arith (Ast.Mul, Ast.Node_value 2, Ast.Const (Gql_data.Value.int 1000)) ))
      ()
  in
  Ast.Build.qedge b p age;
  Ast.Build.qedge b age agev;
  Ast.Build.qedge b p sal;
  Ast.Build.qedge b sal salv;
  (* Alice: 20000 >= 30000 no; Bob: 30000 >= 65000 no; Carla: 26000 >= 17000 yes *)
  check_int "salary >= age*1000" 1
    (Matching.count people (Ast.Build.finish b).Ast.query)

let test_regex_predicate () =
  let b = Ast.Build.create () in
  let ln = Ast.Build.q_elem b "lastname" in
  let v = Ast.Build.q_content b ~pred:(Ast.Matches (Ast.Self, "S.*th")) () in
  Ast.Build.qedge b ln v;
  check_int "Smith" 1 (Matching.count people (Ast.Build.finish b).Ast.query)

let test_ref_edge () =
  let data = load {|<db><a id="x" ref="y"/><a id="y"/></db>|} in
  let b = Ast.Build.create () in
  let src = Ast.Build.q_elem b "a" in
  let dst = Ast.Build.q_elem b "a" in
  Ast.Build.qref b src dst;
  check_int "one ref pair" 1 (Matching.count data (Ast.Build.finish b).Ast.query)

(* --- construction ---------------------------------------------------------- *)

let run_rule data rule = Engine.run_rule data rule

let simple_rule ~construct =
  (* query: PERSON with lastname circle *)
  let b = Ast.Build.create () in
  let p = Ast.Build.q_elem b "PERSON" in
  let ln = Ast.Build.q_elem b "lastname" in
  let v = Ast.Build.q_content b () in
  Ast.Build.qedge b p ln;
  Ast.Build.qedge b ln v;
  construct b ~person:p ~lastname:ln ~value:v;
  Ast.Build.finish b

let names_of nodes =
  List.filter_map
    (function Gql_xml.Tree.Element e -> Some e.Gql_xml.Tree.name | _ -> None)
    nodes

let test_construct_copy_deep () =
  let rule =
    simple_rule ~construct:(fun b ~person ~lastname:_ ~value:_ ->
        let c = Ast.Build.c_copy b ~deep:true person in
        Ast.Build.root b c)
  in
  let out = run_rule people rule in
  check_int "three persons" 3 (List.length out);
  match out with
  | Gql_xml.Tree.Element e :: _ ->
    check "deep copy has children" true (List.length e.Gql_xml.Tree.children >= 4);
    check "attrs kept" true (Gql_xml.Tree.attr e "id" <> None)
  | _ -> Alcotest.fail "expected elements"

let test_construct_copy_shallow_projection () =
  let rule =
    simple_rule ~construct:(fun b ~person ~lastname ~value:_ ->
        let c = Ast.Build.c_copy b person in
        let ln = Ast.Build.c_copy b ~deep:true lastname in
        Ast.Build.root b c;
        Ast.Build.cedge b ~ord:0 c ln)
  in
  match run_rule people rule with
  | Gql_xml.Tree.Element e :: _ ->
    Alcotest.(check (list string)) "only lastname projected" [ "lastname" ]
      (names_of e.Gql_xml.Tree.children)
  | _ -> Alcotest.fail "expected elements"

let test_construct_value_and_const () =
  let rule =
    simple_rule ~construct:(fun b ~person:_ ~lastname:_ ~value ->
        let w = Ast.Build.c_elem b "names" in
        let v = Ast.Build.c_value b value in
        let k = Ast.Build.c_const b (Gql_data.Value.string "!") in
        Ast.Build.root b w;
        Ast.Build.cedge b ~ord:0 w v;
        Ast.Build.cedge b ~ord:1 w k)
  in
  match run_rule people rule with
  | [ Gql_xml.Tree.Element e ] ->
    (* one wrapper (fresh element instantiated once), all three distinct
       lastname values inside, then the constant *)
    check_int "three values + bang" 4 (List.length e.Gql_xml.Tree.children);
    check_str "wrapper" "names" e.Gql_xml.Tree.name
  | _ -> Alcotest.fail "expected a single names element"

let test_construct_all_triangle () =
  let rule =
    simple_rule ~construct:(fun b ~person ~lastname:_ ~value:_ ->
        let w = Ast.Build.c_elem b "RESULT" in
        let t = Ast.Build.c_all b person in
        Ast.Build.root b w;
        Ast.Build.cedge b ~ord:0 w t)
  in
  match run_rule people rule with
  | [ Gql_xml.Tree.Element e ] ->
    check_int "collects all three" 3 (List.length e.Gql_xml.Tree.children)
  | _ -> Alcotest.fail "expected one RESULT"

let test_construct_as_attr () =
  let rule =
    simple_rule ~construct:(fun b ~person:_ ~lastname:_ ~value ->
        let w = Ast.Build.c_elem b "tag" in
        let v = Ast.Build.c_value b value in
        Ast.Build.root b w;
        Ast.Build.cedge b ~as_attr:"name" ~ord:0 w v)
  in
  match run_rule people rule with
  | [ Gql_xml.Tree.Element e ] ->
    check "attribute set" true (Gql_xml.Tree.attr e "name" <> None)
  | _ -> Alcotest.fail "expected one element"

let test_construct_group () =
  (* group persons by city of their address *)
  let b = Ast.Build.create () in
  let p = Ast.Build.q_elem b "PERSON" in
  let addr = Ast.Build.q_elem b "FULLADDR" in
  let city = Ast.Build.q_elem b "city" in
  let cval = Ast.Build.q_content b () in
  Ast.Build.qedge b p addr;
  Ast.Build.qedge b addr city;
  Ast.Build.qedge b city cval;
  let g = Ast.Build.c_group b ~by:cval in
  let bucket = Ast.Build.c_elem b "city-group" in
  let key = Ast.Build.c_value b cval in
  let member = Ast.Build.c_copy b p in
  Ast.Build.root b g;
  Ast.Build.cedge b ~ord:0 g bucket;
  Ast.Build.cedge b ~as_attr:"name" ~ord:0 bucket key;
  Ast.Build.cedge b ~ord:1 bucket member;
  let out = run_rule people (Ast.Build.finish b) in
  check_int "two city groups" 2 (List.length out);
  List.iter
    (function
      | Gql_xml.Tree.Element e ->
        check_str "bucket name" "city-group" e.Gql_xml.Tree.name;
        check "has key attr" true (Gql_xml.Tree.attr e "name" <> None);
        check_int "one member each" 1 (List.length e.Gql_xml.Tree.children)
      | _ -> Alcotest.fail "element expected")
    out

let test_construct_unnest () =
  (* flatten FULLADDR: emit its children (cities) directly *)
  let b = Ast.Build.create () in
  let p = Ast.Build.q_elem b "PERSON" in
  let a = Ast.Build.q_elem b "FULLADDR" in
  Ast.Build.qedge b p a;
  let w = Ast.Build.c_elem b "places" in
  let u = Ast.Build.c_unnest b a in
  Ast.Build.root b w;
  Ast.Build.cedge b ~ord:0 w u;
  (match run_rule people (Ast.Build.finish b) with
  | [ Gql_xml.Tree.Element e ] ->
    Alcotest.(check (list string)) "cities flattened" [ "city"; "city" ]
      (names_of e.Gql_xml.Tree.children)
  | _ -> Alcotest.fail "expected one places element");
  (* nesting = group + new element: regroup persons per city *)
  ()

let test_multi_rule_program () =
  let p = Gql_lang.Xmlgl_text.parse_program
    {|xmlgl
result combo
rule
query
  node $a elem firstname
construct
  node c copy $a deep
  root c
end
rule
query
  node $b elem lastname
construct
  node c copy $b deep
  root c
end
|} in
  let out = Engine.run_program people p in
  check_str "root name" "combo" out.Gql_xml.Tree.name;
  check_int "3 + 3 results" 6 (List.length out.Gql_xml.Tree.children)

let test_construct_edge_cases () =
  (* value_of on an element node: its string-value *)
  let b = Ast.Build.create () in
  let p = Ast.Build.q_elem b "firstname" in
  let w = Ast.Build.c_elem b "names" in
  let v = Ast.Build.c_value b p in
  Ast.Build.root b w;
  Ast.Build.cedge b ~ord:0 w v;
  (match run_rule people (Ast.Build.finish b) with
  | [ Gql_xml.Tree.Element e ] ->
    check_int "three distinct names" 3 (List.length e.Gql_xml.Tree.children)
  | _ -> Alcotest.fail "one wrapper expected");
  (* group with zero matches: empty result, no crash *)
  let b2 = Ast.Build.create () in
  let x = Ast.Build.q_elem b2 "NOSUCH" in
  let c = Ast.Build.q_content b2 () in
  Ast.Build.qedge b2 x c;
  let g = Ast.Build.c_group b2 ~by:c in
  let bucket = Ast.Build.c_elem b2 "bucket" in
  Ast.Build.root b2 g;
  Ast.Build.cedge b2 ~ord:0 g bucket;
  check_int "empty group" 0 (List.length (run_rule people (Ast.Build.finish b2)));
  (* as_attr referencing an element: string-value of the element *)
  let b3 = Ast.Build.create () in
  let pp = Ast.Build.q_elem b3 "PERSON" in
  let ln = Ast.Build.q_elem b3 "lastname" in
  Ast.Build.qedge b3 pp ln;
  let tag = Ast.Build.c_elem b3 ~per:pp "tag" in
  let lnc = Ast.Build.c_copy b3 ln in
  Ast.Build.root b3 tag;
  Ast.Build.cedge b3 ~as_attr:"surname" ~ord:0 tag lnc;
  (match run_rule people (Ast.Build.finish b3) with
  | outs ->
    check_int "one tag per person" 3 (List.length outs);
    List.iter
      (function
        | Gql_xml.Tree.Element e ->
          check "surname set" true (Gql_xml.Tree.attr e "surname" <> None)
        | _ -> Alcotest.fail "element")
      outs)

let test_aggregates () =
  (* per-group aggregates: average salary per employer, count of persons *)
  let src = {|xmlgl
result stats
rule
query
  node $p elem PERSON
  node $s elem salary
  node $sv content
  edge $p $s
  edge $s $sv
construct
  node w new summary
  node n count $p
  node total sum $sv
  node lo min $sv
  node hi max $sv
  node mean avg $sv
  root w
  edge w n attr persons
  edge w total attr total
  edge w lo attr min
  edge w hi attr max
  edge w mean attr mean
end
|} in
  let p = Gql_lang.Xmlgl_text.parse_program src in
  let out = Engine.run_program people p in
  match out.Gql_xml.Tree.children with
  | [ Gql_xml.Tree.Element e ] ->
    let attr name = Option.get (Gql_xml.Tree.attr e name) in
    check_str "count" "3" (attr "persons");
    (* salaries: 20000 + 30000 + 26000 *)
    check_str "sum" "76000.0" (attr "total");
    check_str "min" "20000.0" (attr "min");
    check_str "max" "30000.0" (attr "max");
    check "mean" true (float_of_string (attr "mean") > 25333.0
                       && float_of_string (attr "mean") < 25334.0)
  | _ -> Alcotest.fail "one summary expected"

let test_aggregate_empty () =
  (* aggregates over zero matches: count 0; numeric aggregates vanish *)
  let src = {|xmlgl
rule
query
  node $p elem NOPE
construct
  node w new summary
  node n count $p
  node s sum $p
  root w
  edge w n
  edge w s
end
|} in
  let p = Gql_lang.Xmlgl_text.parse_program src in
  let out = Engine.run_program people p in
  match out.Gql_xml.Tree.children with
  | [ Gql_xml.Tree.Element e ] ->
    (match e.Gql_xml.Tree.children with
    | [ Gql_xml.Tree.Text "0" ] -> ()
    | _ -> Alcotest.fail "expected count 0 and no sum node")
  | _ -> Alcotest.fail "one summary expected"

let test_aggregate_count_dispatch () =
  (* Count is answered by the outer aggregate dispatch; the numeric fold
     it must never reach now guards itself with the typed
     Construct.Invalid_query instead of an assert.  Count therefore
     works even when no source value is numeric — and Sum over the same
     bindings is undefined (None), not an error. *)
  let b = Ast.Build.create () in
  let p = Ast.Build.q_elem b "PERSON" in
  let n = Ast.Build.q_elem b "firstname" in
  Ast.Build.qedge b p n;
  let q = (Ast.Build.finish b).Ast.query in
  let ctx = Matching.run people q in
  (match Construct.aggregate_value people ctx Ast.Count n with
  | Some v ->
    check_str "count over non-numeric source" "3" (Gql_data.Value.to_string v)
  | None -> Alcotest.fail "count must always be defined");
  check "sum over non-numeric source is None" true
    (Construct.aggregate_value people ctx Ast.Sum n = None)

let test_aggregate_grouped () =
  (* aggregates respect group narrowing: persons per city *)
  let src = {|xmlgl
result per-city
rule
query
  node $p elem PERSON
  node $a elem FULLADDR
  node $c elem city
  node $cv content
  edge $p $a
  edge $a $c
  edge $c $cv
construct
  node g group $cv
  node bucket new city
  node key value $cv
  node n count $p
  root g
  edge g bucket
  edge bucket key attr name
  edge bucket n attr persons
end
|} in
  let p = Gql_lang.Xmlgl_text.parse_program src in
  let out = Engine.run_program people p in
  check_int "two cities" 2 (List.length out.Gql_xml.Tree.children);
  List.iter
    (function
      | Gql_xml.Tree.Element e ->
        check_str "one person per city" "1"
          (Option.get (Gql_xml.Tree.attr e "persons"))
      | _ -> Alcotest.fail "element")
    out.Gql_xml.Tree.children

let test_multiple_roots_order () =
  let b = Ast.Build.create () in
  let p = Ast.Build.q_elem b "PERSON" in
  ignore p;
  let first = Ast.Build.c_const b (Gql_data.Value.string "one") in
  let second = Ast.Build.c_const b (Gql_data.Value.string "two") in
  Ast.Build.root b first;
  Ast.Build.root b second;
  match run_rule people (Ast.Build.finish b) with
  | [ Gql_xml.Tree.Text "one"; Gql_xml.Tree.Text "two" ] -> ()
  | _ -> Alcotest.fail "roots must instantiate in declaration order"

let test_predicate_units () =
  let env = { Predicate.data = people; binding = [||] } in
  let self = Some (Gql_data.Value.int 10) in
  let ev p = Predicate.eval env ~self p in
  check "eq" true (ev (Ast.Compare (Ast.Eq, Ast.Self, Ast.Const (Gql_data.Value.string "10"))));
  check "arith chain" true
    (ev (Ast.Compare (Ast.Eq,
        Ast.Arith (Ast.Add, Ast.Self, Ast.Arith (Ast.Mul, Ast.Self, Ast.Const (Gql_data.Value.int 2))),
        Ast.Const (Gql_data.Value.int 30))));
  check "div by zero is non-match" false
    (ev (Ast.Compare (Ast.Eq,
        Ast.Arith (Ast.Div, Ast.Self, Ast.Const (Gql_data.Value.int 0)),
        Ast.Self)));
  check "unbound node ref is non-match" false
    (ev (Ast.Compare (Ast.Eq, Ast.Self, Ast.Node_value 99)));
  check "not" true (ev (Ast.Not (Ast.Compare (Ast.Lt, Ast.Self, Ast.Const (Gql_data.Value.int 5)))));
  check "contains" true
    (Predicate.eval env ~self:(Some (Gql_data.Value.string "hello world")) 
       (Ast.Contains_str (Ast.Self, "lo wo")));
  check "missing self is non-match" false
    (Predicate.eval env ~self:None (Ast.Compare (Ast.Eq, Ast.Self, Ast.Self)))

let test_result_document_order () =
  (* construction instances follow match (document) order: a query over
     ordered siblings must emit them in that order *)
  let data = load {|<r><x>1</x><x>2</x><x>3</x></r>|} in
  let b = Ast.Build.create () in
  let x = Ast.Build.q_elem b "x" in
  let c = Ast.Build.c_copy b ~deep:true x in
  Ast.Build.root b c;
  let out = run_rule data (Ast.Build.finish b) in
  let texts = List.map Gql_xml.Tree.text_content out in
  Alcotest.(check (list string)) "document order" [ "1"; "2"; "3" ] texts

(* --- well-formedness -------------------------------------------------------- *)

let test_check_rule_errors () =
  (* construction root missing *)
  let b = Ast.Build.create () in
  let _ = Ast.Build.q_elem b "x" in
  let r = Ast.Build.finish b in
  check "no root flagged" true (Ast.check_rule r <> []);
  (* edge out of range *)
  let r2 =
    { Ast.query = { Ast.q_nodes = [||]; q_edges = [ { Ast.q_src = 0; q_kind_e = Ast.Deep; q_dst = 1 } ] };
      construction = { Ast.c_nodes = [| { Ast.c_kind = Ast.C_elem { name = "r"; per = None } } |]; c_edges = []; c_roots = [ 0 ] } }
  in
  check "range flagged" true (Ast.check_rule r2 <> []);
  (* circle as source *)
  let b3 = Ast.Build.create () in
  let c = Ast.Build.q_content b3 () in
  let e = Ast.Build.q_elem b3 "x" in
  Ast.Build.qedge b3 c e;
  let rt = Ast.Build.c_elem b3 "r" in
  Ast.Build.root b3 rt;
  check "circle source flagged" true (Ast.check_rule (Ast.Build.finish b3) <> [])

let test_engine_rejects_ill_formed () =
  let b = Ast.Build.create () in
  let _ = Ast.Build.q_elem b "x" in
  let r = Ast.Build.finish b in
  match Engine.run_rule people r with
  | _ -> Alcotest.fail "should raise"
  | exception Engine.Ill_formed _ -> ()

(* --- schema ------------------------------------------------------------------ *)

let valid_book =
  load
    {|<BOOK isbn="1"><price>10</price><title>t</title><AUTHOR><first-name>A</first-name><last-name>B</last-name></AUTHOR></BOOK>|}

let test_schema_unordered_accepts () =
  (* price before title: fine for the unordered XML-GL schema, fatal for
     the DTD — the paper's expressiveness point *)
  check "unordered schema accepts" true
    (Schema.is_valid Schema.book_schema valid_book)

let test_schema_violations () =
  let missing_price = load {|<BOOK isbn="1"><title>t</title></BOOK>|} in
  check "missing price" false (Schema.is_valid Schema.book_schema missing_price);
  let two_titles = load {|<BOOK isbn="1"><title>a</title><title>b</title><price>1</price></BOOK>|} in
  check "two titles" false (Schema.is_valid Schema.book_schema two_titles);
  let no_isbn = load {|<BOOK><price>1</price></BOOK>|} in
  check "missing isbn" false (Schema.is_valid Schema.book_schema no_isbn);
  let stray = load {|<BOOK isbn="1"><price>1</price><extra/></BOOK>|} in
  check "undeclared child" false (Schema.is_valid Schema.book_schema stray)

let test_schema_ordered_decl () =
  let author_wrong = load {|<AUTHOR><last-name>B</last-name><first-name>A</first-name></AUTHOR>|} in
  let s = { Schema.book_schema with Schema.root = Some "AUTHOR" } in
  check "ordered AUTHOR rejects swap" false (Schema.is_valid s author_wrong)

let test_of_dtd () =
  let s = Schema.of_dtd Gql_workload.Gen.book_dtd in
  check_int "declarations carried" 7 (List.length s.Schema.decls);
  (* of_dtd keeps DTD ordering semantics *)
  let d = List.find (fun d -> d.Schema.d_name = "BOOK") s.Schema.decls in
  check "ordered" true d.Schema.d_ordered;
  check "isbn required" true (List.mem ("isbn", true) d.Schema.d_attrs)

let test_to_dtd () =
  (* unordered content has no DTD equivalent *)
  (match Schema.to_dtd Schema.book_schema with
  | _ -> Alcotest.fail "unordered must not translate"
  | exception Schema.Not_translatable _ -> ());
  let dtd = Schema.to_dtd ~force_order:true Schema.book_schema in
  check "book present" true
    (Gql_dtd.Ast.content_model dtd "BOOK" <> None)

let test_dtd_roundtrip_agreement () =
  (* DTD -> XML-GL schema: both validators agree on clean and defective
     generated corpora *)
  let s = Schema.of_dtd Gql_workload.Gen.book_dtd in
  List.iter
    (fun (seed, defect_rate) ->
      let doc = Gql_workload.Gen.bibliography ~seed ~defect_rate 15 in
      let dtd_ok = Gql_dtd.Validate.is_valid Gql_workload.Gen.book_dtd doc in
      let g, _ = Gql_data.Codec.encode doc in
      let gl_ok = Schema.is_valid s g in
      check (Printf.sprintf "agreement seed=%d rate=%.1f" seed defect_rate)
        true (dtd_ok = gl_ok))
    [ (1, 0.0); (2, 0.0); (3, 0.5); (4, 1.0); (5, 0.8) ]

let test_flatten_seq_errors () =
  match Schema.flatten_seq Gql_regex.Syntax.(alt (sym "a") (sym "b")) with
  | _ -> Alcotest.fail "choice is not flat"
  | exception Schema.Not_translatable _ -> ()

let () =
  Alcotest.run "gql_xmlgl"
    [
      ( "matching",
        [
          Alcotest.test_case "select by name" `Quick test_select_by_name;
          Alcotest.test_case "wildcard" `Quick test_select_wildcard;
          Alcotest.test_case "name regex" `Quick test_select_name_regex;
          Alcotest.test_case "containment" `Quick test_containment_edge;
          Alcotest.test_case "content predicate" `Quick test_content_predicate;
          Alcotest.test_case "attribute edge" `Quick test_attr_edge;
          Alcotest.test_case "deep edge" `Quick test_deep_edge;
          Alcotest.test_case "absent edge" `Quick test_absent_edge;
          Alcotest.test_case "position pin" `Quick test_position_pin;
          Alcotest.test_case "ordered tick" `Quick test_ordered_tick;
          Alcotest.test_case "value join" `Quick test_value_join;
          Alcotest.test_case "cross-node predicate" `Quick test_cross_node_predicate;
          Alcotest.test_case "regex predicate" `Quick test_regex_predicate;
          Alcotest.test_case "ref edge" `Quick test_ref_edge;
        ] );
      ( "construction",
        [
          Alcotest.test_case "copy deep" `Quick test_construct_copy_deep;
          Alcotest.test_case "copy shallow + projection" `Quick test_construct_copy_shallow_projection;
          Alcotest.test_case "value and const" `Quick test_construct_value_and_const;
          Alcotest.test_case "triangle" `Quick test_construct_all_triangle;
          Alcotest.test_case "as attribute" `Quick test_construct_as_attr;
          Alcotest.test_case "group" `Quick test_construct_group;
          Alcotest.test_case "unnest" `Quick test_construct_unnest;
          Alcotest.test_case "multi-rule program" `Quick test_multi_rule_program;
          Alcotest.test_case "construct edge cases" `Quick test_construct_edge_cases;
          Alcotest.test_case "multiple roots" `Quick test_multiple_roots_order;
          Alcotest.test_case "predicate units" `Quick test_predicate_units;
          Alcotest.test_case "result document order" `Quick test_result_document_order;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "aggregate empty" `Quick test_aggregate_empty;
          Alcotest.test_case "aggregate grouped" `Quick test_aggregate_grouped;
          Alcotest.test_case "aggregate count dispatch" `Quick
            test_aggregate_count_dispatch;
        ] );
      ( "checks",
        [
          Alcotest.test_case "check_rule" `Quick test_check_rule_errors;
          Alcotest.test_case "engine rejects" `Quick test_engine_rejects_ill_formed;
        ] );
      ( "schema",
        [
          Alcotest.test_case "unordered accepts" `Quick test_schema_unordered_accepts;
          Alcotest.test_case "violations" `Quick test_schema_violations;
          Alcotest.test_case "ordered declaration" `Quick test_schema_ordered_decl;
          Alcotest.test_case "of_dtd" `Quick test_of_dtd;
          Alcotest.test_case "to_dtd" `Quick test_to_dtd;
          Alcotest.test_case "dtd agreement" `Quick test_dtd_roundtrip_agreement;
          Alcotest.test_case "flatten errors" `Quick test_flatten_seq_errors;
        ] );
    ]
