(* The flat product-automaton regular-path engine against its reference
   implementations: the retained subset-construction BFS (exact, list
   based) and the bounded naive path enumerator — plus the automaton
   edge cases the flat layout has to get right (empty language,
   ε-accepting starts, self-loops, symbols unseen at freeze time, batch
   agreement, scratch reuse across differently-sized graphs). *)

open Gql_graph

let check = Alcotest.(check bool)
let check_list = Alcotest.(check (list int))

let build payloads edges : (string, string) Digraph.t =
  let g = Digraph.create ~dummy:"" in
  List.iter (fun p -> ignore (Digraph.add_node g p)) payloads;
  List.iter (fun (src, l, dst) -> Digraph.add_edge g ~src ~dst l) edges;
  g

let lbl_pred l e = l = e
let compile_lbl re = Regpath.compile lbl_pred re

(* Classified variant of the same predicate: every leaf is a literal
   name, resolvable against an interner. *)
let compile_lbl_classified re =
  Regpath.compile_classified ~plane_hint:1
    ~classify:(fun l -> Regpath.Lname l)
    lbl_pred re

(* A tiny interner for string-labelled test graphs: the distinct labels
   present in the graph, in first-seen order — mirroring how the real
   snapshot index interns every frozen edge name. *)
let intern_of g =
  let tbl = Hashtbl.create 8 in
  Digraph.iter_edges
    (fun ~src:_ ~dst:_ l ->
      if not (Hashtbl.mem tbl l) then Hashtbl.replace tbl l (Hashtbl.length tbl))
    g;
  fun l -> match Hashtbl.find_opt tbl l with Some i -> i | None -> -1

let plane_of g intern =
  let c = Csr.freeze g in
  (c, Csr.map_out_labels intern c, Csr.map_in_labels intern c)

(* --- automaton edge cases ---------------------------------------------- *)

let test_empty_language () =
  let g = build [ "a"; "b" ] [ (0, "x", 1) ] in
  let rp = compile_lbl Gql_regex.Syntax.Empty in
  check_list "empty regex reaches nothing" [] (Regpath.reachable rp g 0);
  check "empty regex connects nothing" false (Regpath.connects rp g ~src:0 ~dst:0);
  check "depth bound of empty" true (Regpath.depth_bound rp = Some 0);
  check "empty not nullable" false (Regpath.nullable rp)

let test_eps_accepting_start () =
  let g = build [ "a"; "b" ] [ (0, "x", 1) ] in
  let star = compile_lbl Gql_regex.Syntax.(star (sym "x")) in
  check "star is nullable" true (Regpath.nullable star);
  check_list "start itself is reachable" [ 0; 1 ] (Regpath.reachable star g 0);
  check "nullable self-connect" true (Regpath.connects star g ~src:1 ~dst:1);
  let opt = compile_lbl Gql_regex.Syntax.(opt (sym "y")) in
  check_list "opt with no matching edge keeps the start" [ 0 ]
    (Regpath.reachable opt g 0)

let test_self_loop () =
  let g = build [ "a"; "b" ] [ (0, "x", 0); (0, "x", 1) ] in
  let rp = compile_lbl Gql_regex.Syntax.(plus (sym "x")) in
  check_list "self-loop closure" [ 0; 1 ] (Regpath.reachable rp g 0);
  check "loops back to itself" true (Regpath.connects rp g ~src:0 ~dst:0);
  (* exactly two hops through the loop still terminates *)
  let two = compile_lbl Gql_regex.Syntax.(seq (sym "x") (sym "x")) in
  check_list "two hops over a loop" [ 0; 1 ] (Regpath.reachable two g 0);
  check "bounded depth of xx" true (Regpath.depth_bound two = Some 2);
  check "unbounded depth of x+" true (Regpath.depth_bound rp = None)

let test_unseen_symbol () =
  (* a regex naming a symbol absent from the frozen graph: the
     specialised automaton maps the leaf to the never-matching sentinel
     and must agree with the predicate lane (which fails label compares) *)
  let g = build [ "a"; "b"; "c" ] [ (0, "x", 1); (1, "x", 2) ] in
  let intern = intern_of g in
  check "unseen symbol resolves negative" true (intern "zzz" = -1);
  let rp = compile_lbl_classified Gql_regex.Syntax.(seq (sym "x") (sym "zzz")) in
  let spec = Regpath.specialise rp ~intern in
  let csr, out_p, _in_p = plane_of g intern in
  check_list "pred lane finds nothing" [] (Regpath.reachable rp g 0);
  check "plane lane finds nothing" true
    (Iset.is_empty (Regpath.reachable_plane rp spec csr ~plane:out_p 0));
  (* the seen prefix alone still works on both lanes *)
  let rp_x = compile_lbl_classified Gql_regex.Syntax.(plus (sym "x")) in
  let spec_x = Regpath.specialise rp_x ~intern in
  check_list "plane lane agrees on seen symbols" [ 1; 2 ]
    (Iset.to_list (Regpath.reachable_plane rp_x spec_x csr ~plane:out_p 0))

let test_batch_vs_single () =
  let g =
    build [ "a"; "b"; "c"; "d" ]
      [ (0, "x", 1); (1, "x", 2); (2, "y", 3); (3, "x", 0) ]
  in
  let rp = compile_lbl Gql_regex.Syntax.(star (alt (sym "x") (sym "y"))) in
  let srcs = [| 0; 1; 2; 3 |] in
  let batched = Regpath.reachable_batch rp g srcs in
  Array.iteri
    (fun i src ->
      check_list "batched = single" (Regpath.reachable rp g src)
        (Iset.to_list batched.(i)))
    srcs

let test_scratch_across_sizes () =
  (* same domain, alternating differently-sized graphs: the reused
     scratch must grow for the big graph and stay correct on the small
     one afterwards (stale visited bits would drop or invent nodes) *)
  let small = build [ "a"; "b" ] [ (0, "x", 1) ] in
  let big =
    let n = 500 in
    let g = Digraph.create ~dummy:"" in
    for i = 0 to n - 1 do
      ignore (Digraph.add_node g (string_of_int i))
    done;
    for i = 0 to n - 2 do
      Digraph.add_edge g ~src:i ~dst:(i + 1) "x"
    done;
    g
  in
  let rp = compile_lbl Gql_regex.Syntax.(plus (sym "x")) in
  let expect_small = [ 1 ] and expect_big = List.init 499 (fun i -> i + 1) in
  for _round = 1 to 3 do
    check_list "big graph" expect_big (Regpath.reachable rp big 0);
    check_list "small graph after big" expect_small (Regpath.reachable rp small 0);
    check "connects on big after small" true
      (Regpath.connects rp big ~src:0 ~dst:499)
  done

let test_counters_move () =
  let before = Regpath.stats () in
  let g = build [ "a"; "b" ] [ (0, "x", 1) ] in
  let rp = compile_lbl Gql_regex.Syntax.(sym "x") in
  ignore (Regpath.reachable rp g 0);
  ignore (Regpath.reachable rp g 0);
  let d = Regpath.stats_diff ~before (Regpath.stats ()) in
  check "compiles counted" true (d.Regpath.compiles >= 1);
  check "searches counted" true (d.Regpath.searches >= 2);
  let lines = Regpath.stats_lines () in
  let mentions key =
    let kl = String.length key and n = String.length lines in
    let found = ref false in
    for i = 0 to n - kl do
      if String.sub lines i kl = key then found := true
    done;
    !found
  in
  List.iter
    (fun k -> check (k ^ " serialised") true (mentions k))
    [ "path_compiles"; "path_searches"; "path_memo_hits"; "path_scratch_reuses" ]

(* --- properties -------------------------------------------------------- *)

let graph_gen =
  QCheck.Gen.(
    let* n = int_range 1 10 in
    let* m = int_range 0 18 in
    let edge = triple (int_bound (n - 1)) (oneofl [ "x"; "y" ]) (int_bound (n - 1)) in
    let* edges = list_size (return m) edge in
    return (n, edges))

let re_gen =
  let open QCheck.Gen in
  let sym = oneofl [ "x"; "y"; "z" ] in
  let rec gen d =
    if d = 0 then map Gql_regex.Syntax.sym sym
    else
      frequency
        [
          (3, gen 0);
          (2, map2 Gql_regex.Syntax.seq (gen (d - 1)) (gen (d - 1)));
          (2, map2 Gql_regex.Syntax.alt (gen (d - 1)) (gen (d - 1)));
          (2, map Gql_regex.Syntax.star (gen (d - 1)));
          (2, map Gql_regex.Syntax.plus (gen (d - 1)));
          (1, map Gql_regex.Syntax.opt (gen (d - 1)));
        ]
  in
  gen 3

let case_gen = QCheck.Gen.pair graph_gen re_gen

let with_case f ((n, edges), re) =
  let g = build (List.init n string_of_int) edges in
  f g re

(* The tentpole equivalence: flat product automaton vs the retained
   subset-construction reference, every node as source, byte-equal
   result lists. *)
let prop_flat_vs_subset =
  QCheck.Test.make ~name:"flat engine = subset-BFS reference" ~count:500
    (QCheck.make case_gen)
    (with_case (fun g re ->
         let rp = compile_lbl re in
         List.for_all
           (fun src -> Regpath.reachable rp g src = Regpath.reachable_subset rp g src)
           (Digraph.nodes g)))

let prop_frozen_and_plane_agree =
  QCheck.Test.make ~name:"digraph = frozen = specialised plane" ~count:500
    (QCheck.make case_gen)
    (with_case (fun g re ->
         let rp = compile_lbl re in
         let rpc = compile_lbl_classified re in
         let intern = intern_of g in
         let spec = Regpath.specialise rpc ~intern in
         let csr, out_p, in_p = plane_of g intern in
         List.for_all
           (fun src ->
             let base = Regpath.reachable rp g src in
             base = Regpath.reachable_frozen rp csr src
             && base = Iset.to_list (Regpath.reachable_plane rpc spec csr ~plane:out_p src)
             && Iset.to_list (Regpath.reachable_rev_plane rpc spec csr ~plane:in_p src)
                = Iset.to_list (Regpath.reachable_rev_set rp g src))
           (Digraph.nodes g)))

let prop_rev_is_transpose =
  QCheck.Test.make ~name:"reverse reachability = forward transposed" ~count:300
    (QCheck.make case_gen)
    (with_case (fun g re ->
         let rp = compile_lbl re in
         let nodes = Digraph.nodes g in
         List.for_all
           (fun dst ->
             let back = Regpath.reachable_rev_set rp g dst in
             List.for_all
               (fun src ->
                 Iset.mem back src = List.mem dst (Regpath.reachable rp g src))
               nodes)
           nodes))

let prop_connects_agrees =
  QCheck.Test.make ~name:"early-exit connects = membership" ~count:300
    (QCheck.make case_gen)
    (with_case (fun g re ->
         let rp = compile_lbl re in
         let nodes = Digraph.nodes g in
         List.for_all
           (fun src ->
             let r = Regpath.reachable rp g src in
             List.for_all
               (fun dst -> Regpath.connects rp g ~src ~dst = List.mem dst r)
               nodes)
           nodes))

let prop_batch_agrees =
  QCheck.Test.make ~name:"batch = repeated single-source" ~count:200
    (QCheck.make case_gen)
    (with_case (fun g re ->
         let rp = compile_lbl re in
         let srcs = Array.of_list (Digraph.nodes g) in
         let sets = Regpath.reachable_batch rp g srcs in
         let ok = ref true in
         Array.iteri
           (fun i src ->
             if Iset.to_list sets.(i) <> Regpath.reachable rp g src then ok := false)
           srcs;
         !ok))

let prop_naive_subset =
  QCheck.Test.make ~name:"bounded naive results are engine subset" ~count:200
    (QCheck.make case_gen)
    (with_case (fun g re ->
         let rp = compile_lbl re in
         let fast = Regpath.reachable rp g 0 in
         let slow = Regpath.reachable_naive lbl_pred re g 0 ~max_len:5 in
         List.for_all (fun v -> List.mem v fast) slow))

let prop_depth_bound_sound =
  QCheck.Test.make ~name:"finite depth bound really bounds path length"
    ~count:300
    (QCheck.make re_gen)
    (fun re ->
      match Regpath.depth_bound (compile_lbl re) with
      | None -> true (* unbounded: nothing to check *)
      | Some d ->
        (* a chain longer than the bound must not be fully traversable:
           build a d+2-long "x" chain and check nothing at distance > d
           is reached from node 0 *)
        let n = d + 3 in
        let g = build (List.init n string_of_int)
            (List.init (n - 1) (fun i -> (i, "x", i + 1)))
        in
        let rp = compile_lbl re in
        List.for_all (fun v -> v <= d) (Regpath.reachable rp g 0))

let () =
  Alcotest.run "gql_regpath"
    [
      ( "edge cases",
        [
          Alcotest.test_case "empty language" `Quick test_empty_language;
          Alcotest.test_case "ε-accepting start" `Quick test_eps_accepting_start;
          Alcotest.test_case "self-loops" `Quick test_self_loop;
          Alcotest.test_case "unseen symbol at freeze" `Quick test_unseen_symbol;
          Alcotest.test_case "batch vs single" `Quick test_batch_vs_single;
          Alcotest.test_case "scratch across graph sizes" `Quick
            test_scratch_across_sizes;
          Alcotest.test_case "counters move" `Quick test_counters_move;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_flat_vs_subset;
          QCheck_alcotest.to_alcotest prop_frozen_and_plane_agree;
          QCheck_alcotest.to_alcotest prop_rev_is_transpose;
          QCheck_alcotest.to_alcotest prop_connects_agrees;
          QCheck_alcotest.to_alcotest prop_batch_agrees;
          QCheck_alcotest.to_alcotest prop_naive_subset;
          QCheck_alcotest.to_alcotest prop_depth_bound_sound;
        ] );
    ]
