(* The experiment harness: one section per experiment in DESIGN.md's
   index (E1-E10), each printing a paper-style table.

     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe e3 e7      # selected experiments
     dune exec bench/main.exe micro      # Bechamel microbenchmarks

   The paper (survey band) has no performance tables of its own; the
   figures are reproduced as executable artefacts and the performance
   characterisation is the substituted evaluation recorded in
   EXPERIMENTS.md. *)

(* --seed N shifts every workload-generator seed: each run stays fully
   deterministic, but the whole trajectory (and E12's request mix) can
   be re-rolled reproducibly. *)
let seed_base = ref 0
let seed k = k + !seed_base

type timing = {
  median_ms : float;
  min_ms : float;
  minor_words : float;  (** minor-heap words allocated, per run *)
  major_words : float;  (** major-heap words allocated, per run *)
}

let timed ?(repeat = 3) f =
  (* One warm-up run first (page in code paths, fill caches), then
     median-of-k wall clock; the minimum is kept as the low-noise
     floor.  Tables print the median, BENCH JSON records both, plus
     the per-run GC allocation ({!Gc.quick_stat} deltas averaged over
     the measured runs) so allocation regressions show up alongside
     time. *)
  ignore (f ());
  let g0 = Gc.quick_stat () in
  let runs =
    List.init repeat (fun _ ->
        let t0 = Unix.gettimeofday () in
        let r = f () in
        ((Unix.gettimeofday () -. t0) *. 1000.0, r))
  in
  let g1 = Gc.quick_stat () in
  let per_run x = x /. float_of_int repeat in
  let times = List.sort compare (List.map fst runs) in
  let _, r = List.nth runs (repeat - 1) in
  ( {
      median_ms = List.nth times (repeat / 2);
      min_ms = List.hd times;
      minor_words = per_run (g1.Gc.minor_words -. g0.Gc.minor_words);
      major_words = per_run (g1.Gc.major_words -. g0.Gc.major_words);
    },
    r )

let ms (t : timing) = t.median_ms

let header title =
  Printf.printf "\n================ %s ================\n" title

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Machine-readable trajectory (--json -> BENCH_PR2.json)              *)
(* ------------------------------------------------------------------ *)

type json =
  | J_int of int
  | J_num of float
  | J_str of string
  | J_bool of bool
  | J_list of json list
  | J_obj of (string * json) list

let rec json_to_buf buf = function
  | J_int i -> Buffer.add_string buf (string_of_int i)
  | J_num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | J_str s ->
    Buffer.add_char buf '"';
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  | J_bool b -> Buffer.add_string buf (string_of_bool b)
  | J_list l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ", ";
        json_to_buf buf x)
      l;
    Buffer.add_char buf ']'
  | J_obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        json_to_buf buf (J_str k);
        Buffer.add_string buf ": ";
        json_to_buf buf v)
      kvs;
    Buffer.add_char buf '}'

let records : json list ref = ref []

(** Append one measurement record; every experiment pushes its table
    rows here so [--json] can dump the whole trajectory. *)
let record ~experiment fields =
  records := J_obj (("experiment", J_str experiment) :: fields) :: !records

let j_timing (t : timing) =
  [
    ("median_ms", J_num t.median_ms);
    ("min_ms", J_num t.min_ms);
    ("minor_words", J_num t.minor_words);
    ("major_words", J_num t.major_words);
  ]

let write_json path =
  let buf = Buffer.create 4096 in
  json_to_buf buf
    (J_obj
       [
         ("schema", J_str "bench-trajectory-v2");
         ("records", J_list (List.rev !records));
       ]);
  Buffer.add_char buf '\n';
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nwrote %s (%d records)\n" path (List.length !records)

(* ------------------------------------------------------------------ *)
(* E1 — the WG-Log restaurant figure at scale                          *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1  WG-Log: rest-list of restaurants offering menus";
  row "%8s  %10s  %8s  %10s  %10s\n" "n_rest" "embeddings" "members" "rounds" "ms";
  List.iter
    (fun n ->
      let tm, (stats, members) =
        timed (fun () ->
            let g = Gql_workload.Gen.restaurants ~seed:(seed 41) ~menu_fraction:0.6 n in
            let p =
              Gql_lang.Wglog_text.parse_program
                ~schema:Gql_wglog.Schema.restaurant_schema
                Gql_workload.Queries.q10_src
            in
            let stats = Gql_wglog.Eval.run g p in
            let rl = Gql_data.Graph.nodes_labelled g "rest-list" in
            let members =
              match rl with
              | [ l ] ->
                List.length
                  (List.filter (fun (nm, _) -> nm = "member") (Gql_data.Graph.rels g l))
              | _ -> -1
            in
            (stats, members))
      in
      record ~experiment:"e1"
        ([ ("n_restaurants", J_int n);
           ("embeddings", J_int stats.Gql_wglog.Eval.embeddings_found);
           ("members", J_int members);
           ("rounds", J_int stats.Gql_wglog.Eval.rounds) ]
        @ j_timing tm);
      row "%8d  %10d  %8d  %10d  %10.2f\n" n stats.Gql_wglog.Eval.embeddings_found
        members stats.Gql_wglog.Eval.rounds (ms tm))
    [ 100; 500; 2000 ]

(* ------------------------------------------------------------------ *)
(* E2 — DTD vs XML-GL schema agreement                                  *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2  schema expressiveness: DTD vs XML-GL graph (figures DTD1/DTD2)";
  let schema = Gql_xmlgl.Schema.of_dtd Gql_workload.Gen.book_dtd in
  row "%12s  %8s  %10s  %12s  %12s\n" "defect_rate" "corpus" "agreement" "dtd_ms" "xmlgl_ms";
  List.iter
    (fun rate ->
      let corpus =
        List.init 40 (fun seed ->
            let doc = Gql_workload.Gen.bibliography ~seed ~defect_rate:rate 20 in
            (doc, fst (Gql_data.Codec.encode doc)))
      in
      let dtd_ms, dtd_verdicts =
        timed (fun () ->
            List.map
              (fun (doc, _) -> Gql_dtd.Validate.is_valid Gql_workload.Gen.book_dtd doc)
              corpus)
      in
      let gl_ms, gl_verdicts =
        timed (fun () ->
            List.map (fun (_, g) -> Gql_xmlgl.Schema.is_valid schema g) corpus)
      in
      let agree =
        List.length
          (List.filter Fun.id (List.map2 ( = ) dtd_verdicts gl_verdicts))
      in
      row "%12.2f  %8d  %9d%%  %12.2f  %12.2f\n" rate (List.length corpus)
        (100 * agree / List.length corpus)
        (ms dtd_ms) (ms gl_ms))
    [ 0.0; 0.3; 0.7; 1.0 ];
  (* the separating document *)
  let swapped = "<BOOK isbn=\"1\"><price>1</price><title>t</title></BOOK>" in
  let doc = Gql_xml.Parser.parse_document swapped in
  let g = fst (Gql_data.Codec.encode doc) in
  row "beyond-DTD check (price before title): DTD=%s  unordered-XML-GL=%s\n"
    (if Gql_dtd.Validate.is_valid Gql_workload.Gen.book_dtd doc then "valid" else "invalid")
    (if Gql_xmlgl.Schema.is_valid Gql_xmlgl.Schema.book_schema g then "valid" else "invalid")

(* ------------------------------------------------------------------ *)
(* E3/E4 — the two XML-GL figures as queries                           *)
(* ------------------------------------------------------------------ *)

let run_fig ~tag name src xpath mk_db sizes =
  header name;
  row "%8s  %9s  %9s  %11s  %11s\n" "size" "gl_hits" "xp_hits" "xmlgl_ms" "xpath_ms";
  List.iter
    (fun n ->
      let db = mk_db n in
      let gl_ms, gl =
        timed (fun () ->
            List.length (Gql_core.Gql.run_xmlgl_text db src).Gql_xml.Tree.children)
      in
      let xp_ms, xp =
        timed (fun () -> List.length (Gql_core.Gql.xpath_select db xpath))
      in
      let nodes, edges = Gql_core.Gql.stats db in
      record ~experiment:tag
        [ ("size", J_int n); ("graph_nodes", J_int nodes);
          ("graph_edges", J_int edges); ("xmlgl_hits", J_int gl);
          ("xpath_hits", J_int xp); ("xmlgl", J_obj (j_timing gl_ms));
          ("xpath", J_obj (j_timing xp_ms)) ];
      row "%8d  %9d  %9d  %11.2f  %11.2f\n" n gl xp (ms gl_ms) (ms xp_ms))
    sizes

let e3 () =
  run_fig ~tag:"e3" "E3  figure XML-GL-simple: all BOOK elements (deep copy)"
    Gql_workload.Queries.q1_src Gql_workload.Queries.q1_xpath
    (fun n -> Gql_core.Gql.of_document (Gql_workload.Gen.bibliography ~seed:(seed 42) n))
    [ 50; 200; 1000 ]

let e4 () =
  run_fig ~tag:"e4" "E4  figure XML-GL-aggregate: persons with FULLADDR projected"
    Gql_workload.Queries.q3_src Gql_workload.Queries.q3_xpath
    (fun n -> Gql_core.Gql.of_document (Gql_workload.Gen.people ~seed:(seed 43) n))
    [ 50; 200; 1000 ]

(* ------------------------------------------------------------------ *)
(* E5 — the GraphLog figures on hyperdocument webs                      *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5  GraphLog figures: sibling links and index+ root links";
  row "%8s  %12s  %12s  %12s  %12s\n" "docs" "sibling+" "sibling_ms" "root+" "root_ms";
  List.iter
    (fun n ->
      let sib_ms, sib =
        timed (fun () ->
            let g = Gql_workload.Gen.hyperdocs ~seed:(seed 44) ~fanout:3 ~link_factor:1 n in
            let p =
              Gql_lang.Wglog_text.parse_program
                ~schema:Gql_wglog.Schema.hyperdoc_schema Gql_workload.Queries.q11_src
            in
            (Gql_wglog.Eval.run g p).Gql_wglog.Eval.edges_added)
      in
      let root_ms, root =
        timed (fun () ->
            let g = Gql_workload.Gen.hyperdocs ~seed:(seed 44) ~fanout:3 ~link_factor:1 n in
            let p =
              Gql_lang.Wglog_text.parse_program
                ~schema:Gql_wglog.Schema.hyperdoc_schema Gql_workload.Queries.q12_src
            in
            (Gql_wglog.Eval.run g p).Gql_wglog.Eval.edges_added)
      in
      record ~experiment:"e5"
        [ ("docs", J_int n); ("sibling_edges", J_int sib);
          ("root_edges", J_int root); ("sibling", J_obj (j_timing sib_ms));
          ("root", J_obj (j_timing root_ms)) ];
      row "%8d  %12d  %12.2f  %12d  %12.2f\n" n sib (ms sib_ms) root (ms root_ms))
    [ 50; 150; 400 ]

(* ------------------------------------------------------------------ *)
(* E6 — the expressiveness matrix, witness-checked                      *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6  expressiveness matrix (the paper's comparison, verified)";
  print_string (Gql_core.Expressiveness.matrix_to_string ());
  let ok = ref 0 in
  List.iter
    (fun (e : Gql_workload.Queries.entry) ->
      let feats =
        match e.kind with
        | `Xmlgl p -> Gql_core.Expressiveness.of_xmlgl (Lazy.force p)
        | `Wglog p -> Gql_core.Expressiveness.of_wglog (Lazy.force p)
      in
      if feats <> [] then incr ok)
    Gql_workload.Queries.suite;
  row "witness queries classified: %d / %d\n" !ok
    (List.length Gql_workload.Queries.suite)

(* ------------------------------------------------------------------ *)
(* E7 — scalability: evaluation time vs document size                   *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7  evaluation time vs document size (XML-GL vs XPath baseline)";
  row "%-10s  %8s  %8s  %11s  %11s  %11s\n" "query" "size" "hits" "xmlgl_ms" "algebra_ms" "xpath_ms";
  let cases =
    [ ("Q2-select", Gql_workload.Queries.q2_src, Gql_workload.Queries.q2_xpath,
       (fun n -> Gql_workload.Gen.bibliography ~seed:(seed 45) n));
      ("Q4-join", Gql_workload.Queries.q4_src, Gql_workload.Queries.q4_xpath,
       (fun n -> Gql_workload.Gen.greengrocer ~seed:(seed 46) n));
      ("Q6-negate", Gql_workload.Queries.q6_src, Gql_workload.Queries.q6_xpath,
       (fun n -> Gql_workload.Gen.people ~seed:(seed 47) n)) ]
  in
  List.iter
    (fun (name, src, xpath, gen) ->
      List.iter
        (fun n ->
          let doc = gen n in
          let db = Gql_core.Gql.of_document doc in
          let p = Gql_core.Gql.parse_xmlgl src in
          let q = (List.hd p.Gql_xmlgl.Ast.rules).Gql_xmlgl.Ast.query in
          let gl_ms, hits =
            timed (fun () ->
                List.length (Gql_xmlgl.Matching.run db.Gql_core.Gql.graph q))
          in
          let alg_ms, _ =
            timed (fun () ->
                List.length (Gql_algebra.Exec.run_xmlgl db.Gql_core.Gql.graph q))
          in
          let xp_ms, _ =
            timed (fun () -> List.length (Gql_core.Gql.xpath_select db xpath))
          in
          record ~experiment:"e7"
            [ ("query", J_str name); ("size", J_int n); ("hits", J_int hits);
              ("xmlgl", J_obj (j_timing gl_ms));
              ("algebra", J_obj (j_timing alg_ms));
              ("xpath", J_obj (j_timing xp_ms)) ];
          row "%-10s  %8d  %8d  %11.2f  %11.2f  %11.2f\n" name n hits (ms gl_ms)
            (ms alg_ms) (ms xp_ms))
        [ 100; 400; 1600 ])
    cases

(* ------------------------------------------------------------------ *)
(* E8 — deductive fixpoint: naive vs semi-naive                         *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8  WG-Log fixpoint: naive vs semi-naive (transitive closure)";
  let closure_src =
    "wglog\nrule\n  node a Document\n  node b Document\n  node c Document\n\
    \  edge a link b\n  edge b link c\n  cedge a link c\nend\n"
  in
  let chain n =
    let g = Gql_data.Graph.create () in
    let docs = Array.init n (fun _ -> Gql_data.Graph.add_complex g "Document") in
    Gql_data.Graph.add_root g docs.(0);
    for i = 0 to n - 2 do
      Gql_data.Graph.link g ~src:docs.(i) ~dst:docs.(i + 1)
        (Gql_data.Graph.rel_edge "link")
    done;
    g
  in
  row "%8s  %9s  %8s  %11s  %11s  %11s  %11s  %9s\n" "chain" "derived" "rounds"
    "naive_emb" "semi_emb" "naive_ms" "semi_ms" "speedup";
  List.iter
    (fun n ->
      let p () = Gql_lang.Wglog_text.parse_program closure_src in
      let naive_ms, naive_stats =
        timed ~repeat:1 (fun () -> Gql_wglog.Eval.run ~strategy:`Naive (chain n) (p ()))
      in
      let semi_ms, stats =
        timed ~repeat:1 (fun () ->
            let g = chain n in
            Gql_wglog.Eval.run ~strategy:`Semi_naive g (p ()))
      in
      (* embeddings_found is the work metric: naive re-derives every old
         embedding each round, semi-naive only touches the delta *)
      record ~experiment:"e8"
        [ ("chain", J_int n);
          ("derived", J_int stats.Gql_wglog.Eval.edges_added);
          ("rounds", J_int stats.Gql_wglog.Eval.rounds);
          ("naive_embeddings", J_int naive_stats.Gql_wglog.Eval.embeddings_found);
          ("semi_embeddings", J_int stats.Gql_wglog.Eval.embeddings_found);
          ("naive", J_obj (j_timing naive_ms));
          ("semi", J_obj (j_timing semi_ms));
          ("speedup", J_num (ms naive_ms /. ms semi_ms)) ];
      row "%8d  %9d  %8d  %11d  %11d  %11.2f  %11.2f  %8.2fx\n" n
        stats.Gql_wglog.Eval.edges_added stats.Gql_wglog.Eval.rounds
        naive_stats.Gql_wglog.Eval.embeddings_found
        stats.Gql_wglog.Eval.embeddings_found (ms naive_ms) (ms semi_ms)
        (ms naive_ms /. ms semi_ms))
    [ 16; 32; 64; 128 ]

(* ------------------------------------------------------------------ *)
(* E9 — planner ablation                                                *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9  planner ablation: greedy fail-first vs declaration order";
  row "%-6s  %8s  %8s  %12s  %12s  %10s\n" "query" "size" "hits" "greedy_ms" "fixed_ms" "ratio";
  let dbs =
    [ (`Bibliography, Gql_core.Gql.of_document (Gql_workload.Gen.bibliography ~seed:(seed 48) 400));
      (`Greengrocer, Gql_core.Gql.of_document (Gql_workload.Gen.greengrocer ~seed:(seed 48) 400));
      (`People, Gql_core.Gql.of_document (Gql_workload.Gen.people ~seed:(seed 48) 400)) ]
  in
  List.iter
    (fun (e : Gql_workload.Queries.entry) ->
      match e.kind, List.assoc_opt e.workload dbs with
      | `Xmlgl p, Some db ->
        let q = (List.hd (Lazy.force p).Gql_xmlgl.Ast.rules).Gql_xmlgl.Ast.query in
        let g_ms, hits =
          timed (fun () ->
              List.length (Gql_algebra.Exec.run_xmlgl ~strategy:`Greedy db.Gql_core.Gql.graph q))
        in
        let f_ms, _ =
          timed (fun () ->
              List.length (Gql_algebra.Exec.run_xmlgl ~strategy:`Fixed db.Gql_core.Gql.graph q))
        in
        record ~experiment:"e9"
          [ ("query", J_str e.name); ("size", J_int 400); ("hits", J_int hits);
            ("greedy", J_obj (j_timing g_ms)); ("fixed", J_obj (j_timing f_ms));
            ("ratio", J_num (ms f_ms /. ms g_ms)) ];
        row "%-6s  %8d  %8d  %12.2f  %12.2f  %9.2fx\n" e.name 400 hits (ms g_ms)
          (ms f_ms) (ms f_ms /. ms g_ms)
      | _ -> ())
    Gql_workload.Queries.suite

(* ------------------------------------------------------------------ *)
(* E10 — visual scalability: clutter and layout cost                    *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10  layout: crossings and time vs query size (layered vs grid)";
  row "%8s  %8s  %12s  %12s  %12s  %12s\n" "nodes" "edges" "layered_x" "grid_x" "layered_ms" "grid_ms";
  let random_diagram n seed =
    (* a rule-shaped random diagram: mostly tree-like with extra join
       edges — the clutter source the paper worries about *)
    let rng = Gql_workload.Prng.create seed in
    let d = Gql_visual.Diagram.create "synthetic" in
    let ids =
      Array.init n (fun i ->
          Gql_visual.Diagram.add_node d Gql_visual.Diagram.Box (Printf.sprintf "n%d" i))
    in
    for i = 1 to n - 1 do
      Gql_visual.Diagram.add_edge d ids.(Gql_workload.Prng.int rng i) ids.(i)
    done;
    for _ = 1 to n / 3 do
      let a = Gql_workload.Prng.int rng n and b = Gql_workload.Prng.int rng n in
      if a <> b then Gql_visual.Diagram.add_edge d ids.(a) ids.(b)
    done;
    d
  in
  List.iter
    (fun n ->
      let d1 = random_diagram n 7 in
      let lay_ms, () = timed (fun () -> Gql_visual.Layout.layered d1) in
      let lx = Gql_visual.Layout.count_crossings d1 in
      let d2 = random_diagram n 7 in
      let grid_ms, () = timed (fun () -> Gql_visual.Layout.grid d2) in
      let gx = Gql_visual.Layout.count_crossings d2 in
      row "%8d  %8d  %12d  %12d  %12.2f  %12.2f\n" n (Gql_visual.Diagram.n_edges d1)
        lx gx (ms lay_ms) (ms grid_ms))
    [ 10; 20; 40; 80 ]

(* ------------------------------------------------------------------ *)
(* E11 — frozen index vs whole-graph scan                               *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11  embedding search: frozen label/value indexes vs graph scans";
  (* 150 labels x 400 entities, each with a unique key atom: 120k nodes,
     240k edges.  Scan-based matching pays a whole-graph pass per global
     candidate list; the index answers from one bucket. *)
  let build_tm, data =
    timed ~repeat:1 (fun () ->
        Gql_workload.Gen.labelled_graph ~labels:150 ~per_label:400 ~degree:3 ())
  in
  let n_nodes = Gql_data.Graph.n_nodes data in
  let n_edges = Gql_data.Graph.n_edges data in
  let index_tm, idx = timed (fun () -> Gql_data.Index.build data) in
  row "graph: %d nodes, %d edges (built in %.0f ms); index built in %.2f ms\n"
    n_nodes n_edges (ms build_tm) (ms index_tm);
  record ~experiment:"e11"
    [ ("graph_nodes", J_int n_nodes); ("graph_edges", J_int n_edges);
      ("index_build", J_obj (j_timing index_tm)) ];
  let point_query () =
    (* r:L40 --key--> "k-16123": label bucket + value bucket *)
    let open Gql_wglog.Ast.Build in
    let b = create () in
    let r = entity b "L40" in
    let v = const b (Gql_data.Value.string "k-16123") in
    edge b ~label:"key" r v;
    finish b
  in
  let join_query () =
    (* a:L7 --rel--> b:L8: a labelled join between two layers *)
    let open Gql_wglog.Ast.Build in
    let b = create () in
    let a = entity b "L7" in
    let c = entity b "L8" in
    edge b ~label:"rel" a c;
    finish b
  in
  row "%-12s  %8s  %12s  %12s  %9s\n" "query" "hits" "scan_ms" "indexed_ms" "speedup";
  List.iter
    (fun (name, rule) ->
      let cq = Gql_wglog.Eval.compile_query rule in
      let scan_tm, scan_hits =
        timed (fun () ->
            List.length (Gql_wglog.Eval.query_embeddings data rule cq))
      in
      let idx_tm, idx_hits =
        timed (fun () ->
            List.length (Gql_wglog.Eval.query_embeddings ~index:idx data rule cq))
      in
      if scan_hits <> idx_hits then
        failwith
          (Printf.sprintf "E11 %s: indexed (%d) and scan (%d) disagree" name
             idx_hits scan_hits);
      let speedup = ms scan_tm /. ms idx_tm in
      record ~experiment:"e11"
        [ ("query", J_str name); ("hits", J_int scan_hits);
          ("bindings_equal", J_bool true);
          ("scan", J_obj (j_timing scan_tm));
          ("indexed", J_obj (j_timing idx_tm)); ("speedup", J_num speedup) ];
      row "%-12s  %8d  %12.2f  %12.2f  %8.1fx\n" name scan_hits (ms scan_tm)
        (ms idx_tm) speedup)
    [ ("point", point_query ()); ("label-join", join_query ()) ]

(* ------------------------------------------------------------------ *)
(* E12 — the query service: closed-loop throughput and latency          *)
(* ------------------------------------------------------------------ *)

let percentile_us sorted q =
  if Array.length sorted = 0 then 0.0
  else
    sorted.(min (Array.length sorted - 1)
              (int_of_float (ceil (q *. float_of_int (Array.length sorted))) - 1))
    *. 1e6

let e12 () =
  header "E12  gql serve: closed-loop clients vs single-threaded direct evaluation";
  let clients = 4 and mix_n = 160 in
  let mix = Gql_workload.Queries.server_mix ~seed:!seed_base mix_n in
  (* the served corpus: three documents + the WG-Log restaurant base *)
  let config =
    { Gql_server.Server.default_config with workers = Some clients; result_cache = 512 }
  in
  let server = Gql_server.Server.create ~config () in
  let reg = Gql_server.Server.registry server in
  let load name doc =
    match Gql_server.Registry.load_xml reg ~name (Gql_xml.Printer.to_string doc) with
    | Ok _ -> ()
    | Error m -> failwith ("E12 load " ^ name ^ ": " ^ m)
  in
  load "bibliography" (Gql_workload.Gen.bibliography ~seed:(seed 61) 100);
  load "people" (Gql_workload.Gen.people ~seed:(seed 62) 400);
  load "greengrocer" (Gql_workload.Gen.greengrocer ~seed:(seed 63) 800);
  ignore
    (Gql_server.Registry.add_graph reg ~name:"restaurants"
       (Gql_workload.Gen.restaurants ~seed:(seed 64) 200));
  (* baseline: what a process without the service pays per request —
     parse + evaluate, one thread, same request stream *)
  let direct (q : Gql_workload.Queries.server_query) =
    let snap = Option.get (Gql_server.Registry.find reg q.doc) in
    let graph = snap.Gql_server.Registry.db.Gql_core.Gql.graph in
    match Gql_core.Gql.language_of_source q.source with
    | `Xmlgl ->
      let p = Gql_core.Gql.parse_xmlgl q.source in
      ignore
        (Gql_core.Gql.to_xml_string
           (Gql_xmlgl.Engine.run_program ~index:snap.Gql_server.Registry.index
              graph p))
    | `Wglog ->
      let schema =
        match q.schema with
        | Some "restaurant" -> Some Gql_wglog.Schema.restaurant_schema
        | Some "hyperdoc" -> Some Gql_wglog.Schema.hyperdoc_schema
        | _ -> None
      in
      let p = Gql_core.Gql.parse_wglog ?schema q.source in
      ignore
        (Gql_server.Server.wglog_stats_line
           (Gql_wglog.Eval.run (Gql_server.Registry.fork snap) p))
    | `Match ->
      let q = Gql_core.Gql.parse_match q.source in
      ignore
        (Gql_match.Eval.run ~index:snap.Gql_server.Registry.index graph q)
    | `Unknown -> failwith "E12: unknown query language"
  in
  let t0 = Unix.gettimeofday () in
  List.iter direct mix;
  let base_s = Unix.gettimeofday () -. t0 in
  let base_rps = float_of_int mix_n /. base_s in
  (* closed loop: [clients] threads over a Unix socket, round-robin
     slices of the same stream, per-request latency recorded *)
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gql-e12-%d.sock" (Unix.getpid ()))
  in
  let _listener = Gql_server.Server.listen server (Unix.ADDR_UNIX sock) in
  let slices =
    Array.init clients (fun k ->
        List.filteri (fun i _ -> i mod clients = k) mix |> Array.of_list)
  in
  let latencies = Array.map (fun slice -> Array.make (Array.length slice) 0.0) slices in
  let run_slice k () =
    let c = Gql_server.Client.connect_unix sock in
    Array.iteri
      (fun i (q : Gql_workload.Queries.server_query) ->
        let t = Unix.gettimeofday () in
        (match
           Gql_server.Client.run c ~doc:q.doc ?schema:q.schema (`Source q.source)
         with
        | Ok _ -> ()
        | Error m -> failwith ("E12 client: " ^ m));
        latencies.(k).(i) <- Unix.gettimeofday () -. t)
      slices.(k);
    ignore (Gql_server.Client.quit c)
  in
  let t0 = Unix.gettimeofday () in
  let threads = Array.init clients (fun k -> Thread.create (run_slice k) ()) in
  Array.iter Thread.join threads;
  let loop_s = Unix.gettimeofday () -. t0 in
  let served_rps = float_of_int mix_n /. loop_s in
  let all_lat = Array.concat (Array.to_list latencies) in
  Array.sort compare all_lat;
  let p50 = percentile_us all_lat 0.50
  and p95 = percentile_us all_lat 0.95
  and p99 = percentile_us all_lat 0.99 in
  (* cold vs result-cache hit: re-LOAD bumps the snapshot version, so
     the first RUN after it is a guaranteed miss *)
  let c = Gql_server.Client.connect_unix sock in
  let q4 = List.find (fun (q : Gql_workload.Queries.server_query) -> q.sq_name = "Q4")
      Gql_workload.Queries.server_suite in
  let run_once () =
    let t = Unix.gettimeofday () in
    (match Gql_server.Client.run c ~doc:"greengrocer" (`Source q4.source) with
    | Ok _ -> ()
    | Error m -> failwith ("E12 cold/hit: " ^ m));
    (Unix.gettimeofday () -. t) *. 1000.0
  in
  let colds =
    List.init 3 (fun _ ->
        load "greengrocer" (Gql_workload.Gen.greengrocer ~seed:(seed 63) 800);
        run_once ())
  in
  let hits = List.init 10 (fun _ -> run_once ()) in
  let cold_ms = List.fold_left min (List.hd colds) colds in
  let hit_ms = List.fold_left min (List.hd hits) hits in
  let cache_speedup = cold_ms /. hit_ms in
  (* exercise the deadline path once so timeouts are non-zero *)
  (match
     Gql_server.Client.run c ~doc:"greengrocer" ~deadline_ms:0.0 (`Source q4.source)
   with
  | Error _ -> ()
  | Ok _ -> failwith "E12: deadline=0 should time out");
  let server_metrics =
    match Gql_server.Client.metrics c with
    | Ok (_, body) -> Gql_server.Metrics.parse_body body
    | Error m -> failwith ("E12 metrics: " ^ m)
  in
  ignore (Gql_server.Client.quit c);
  Gql_server.Server.stop server;
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let m key = try List.assoc key server_metrics with Not_found -> "?" in
  row "request mix: %d requests over 4 docs (seed %d), %d client threads\n"
    mix_n !seed_base clients;
  row "%-28s  %12.1f req/s\n" "direct single-threaded" base_rps;
  row "%-28s  %12.1f req/s  (%.2fx)\n" "served closed-loop" served_rps
    (served_rps /. base_rps);
  row "client latency: p50 %.0f us  p95 %.0f us  p99 %.0f us\n" p50 p95 p99;
  row "server latency: p50 %s us  p95 %s us  p99 %s us  (%s reqs)\n"
    (m "latency_p50_us") (m "latency_p95_us") (m "latency_p99_us") (m "requests");
  row "result cache: cold %.2f ms  hit %.3f ms  (%.0fx);  hits=%s misses=%s  timeouts=%s\n"
    cold_ms hit_ms cache_speedup (m "result_cache_hits") (m "result_cache_misses")
    (m "timeouts");
  if served_rps < base_rps then
    row "WARNING: served throughput below single-threaded baseline\n";
  if cache_speedup < 10.0 then
    row "WARNING: result-cache hit less than 10x faster than cold query\n";
  let mi key = try int_of_string (m key) with _ -> -1 in
  record ~experiment:"e12"
    [ ("requests", J_int mix_n); ("clients", J_int clients);
      ("seed", J_int !seed_base);
      ("baseline_rps", J_num base_rps); ("served_rps", J_num served_rps);
      ("speedup_vs_baseline", J_num (served_rps /. base_rps));
      ("client_p50_us", J_num p50); ("client_p95_us", J_num p95);
      ("client_p99_us", J_num p99);
      ("server_p50_us", J_int (mi "latency_p50_us"));
      ("server_p95_us", J_int (mi "latency_p95_us"));
      ("server_p99_us", J_int (mi "latency_p99_us"));
      ("cold_ms", J_num cold_ms); ("cache_hit_ms", J_num hit_ms);
      ("cache_speedup", J_num cache_speedup);
      ("result_cache_hits", J_int (mi "result_cache_hits"));
      ("result_cache_misses", J_int (mi "result_cache_misses"));
      ("timeouts", J_int (mi "timeouts")) ]

(* ------------------------------------------------------------------ *)
(* E13 — domain-parallel scaling                                        *)
(* ------------------------------------------------------------------ *)

(* Everything observable about a graph, in deterministic order — used
   to assert that a parallel fixpoint produced byte-for-byte the same
   derived graph as the sequential one. *)
let graph_digest (data : Gql_data.Graph.t) =
  let nodes =
    List.rev
      (Gql_graph.Digraph.fold_nodes
         (fun acc i kind -> (i, kind) :: acc)
         [] (Gql_data.Graph.digraph data))
  in
  let edges = ref [] in
  Gql_graph.Digraph.iter_edges
    (fun ~src ~dst (e : Gql_data.Graph.edge) -> edges := (src, dst, e) :: !edges)
    (Gql_data.Graph.digraph data);
  Digest.string (Marshal.to_string (nodes, List.rev !edges) [])

let e13 () =
  header "E13  domain-parallel scaling: 1/2/4/8 domains, byte-identical results";
  row "(host reports %d recommended domain(s); speedups above 1 core are\n\
      \ not expected there — the table records honest wall clock plus the\n\
      \ byte-identity check on every run)\n"
    (Domain.recommended_domain_count ());
  (* One workload per experiment class: E1's restaurant fixpoint, E5's
     index+ closure, E7's XML-GL join.  Each parallel run must produce
     exactly the sequential answer; [timed] re-runs the closure, so the
     identity check fires on every recorded repetition. *)
  let e1_base =
    Gql_workload.Gen.restaurants ~seed:(seed 71) ~menu_fraction:0.6 1000
  in
  let e1_prog =
    Gql_lang.Wglog_text.parse_program ~schema:Gql_wglog.Schema.restaurant_schema
      Gql_workload.Queries.q10_src
  in
  let e5_base =
    Gql_workload.Gen.hyperdocs ~seed:(seed 72) ~fanout:3 ~link_factor:1 400
  in
  let e5_prog =
    Gql_lang.Wglog_text.parse_program ~schema:Gql_wglog.Schema.hyperdoc_schema
      Gql_workload.Queries.q12_src
  in
  let e7_graph =
    fst (Gql_data.Codec.encode (Gql_workload.Gen.greengrocer ~seed:(seed 73) 1600))
  in
  let e7_query =
    (List.hd (Gql_core.Gql.parse_xmlgl Gql_workload.Queries.q4_src).Gql_xmlgl.Ast.rules)
      .Gql_xmlgl.Ast.query
  in
  let fixpoint base prog domains () =
    let g = Gql_data.Graph.copy base in
    let stats = Gql_wglog.Eval.run ~domains g prog in
    Digest.string
      (Marshal.to_string
         ( stats.Gql_wglog.Eval.rounds,
           stats.Gql_wglog.Eval.embeddings_found,
           stats.Gql_wglog.Eval.nodes_added,
           stats.Gql_wglog.Eval.edges_added )
         [])
    ^ graph_digest g
  in
  let join domains () =
    Digest.string
      (Marshal.to_string (Gql_xmlgl.Matching.run ~domains e7_graph e7_query) [])
  in
  let workloads =
    [ ("e1/q10-restaurants", fixpoint e1_base e1_prog);
      ("e5/q12-hyperdocs", fixpoint e5_base e5_prog);
      ("e7/q4-join", join) ]
  in
  row "%-20s  %8s  %10s  %10s  %10s  %9s\n" "workload" "domains" "median_ms"
    "min_ms" "identical" "speedup";
  List.iter
    (fun (name, run) ->
      let baseline = ref None in
      List.iter
        (fun domains ->
          let tm, digest = timed (fun () -> run domains ()) in
          let seq_digest, seq_ms =
            match !baseline with
            | None ->
              baseline := Some (digest, tm.median_ms);
              (digest, tm.median_ms)
            | Some b -> b
          in
          if digest <> seq_digest then
            failwith
              (Printf.sprintf "E13 %s: %d-domain result differs from sequential"
                 name domains);
          let speedup = seq_ms /. tm.median_ms in
          record ~experiment:"e13"
            ([ ("workload", J_str name); ("domains", J_int domains);
               ("identical", J_bool true); ("speedup", J_num speedup) ]
            @ j_timing tm);
          row "%-20s  %8d  %10.2f  %10.2f  %10s  %8.2fx\n" name domains
            tm.median_ms tm.min_ms "yes" speedup)
        [ 1; 2; 4; 8 ])
    workloads

(* ------------------------------------------------------------------ *)
(* E14 — the interned-symbol data path vs the PR4 baseline              *)
(* ------------------------------------------------------------------ *)

(* PR4 medians are read back from the committed BENCH_PR4.json so the
   speedup column is measured against the pre-rewrite trajectory, not a
   re-run (the old code no longer exists in this tree).  The extractor
   is a targeted scan, not a JSON parser: it finds the record by its
   literal anchor text and reads the float after the field key. *)
let find_sub (s : string) (sub : string) (from : int) : int option =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some (i + m)
    else go (i + 1)
  in
  go from

let float_after (s : string) (pos : int) : float =
  let n = String.length s in
  let j = ref pos in
  while
    !j < n
    && (match s.[!j] with
       | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
       | _ -> false)
  do
    incr j
  done;
  float_of_string (String.sub s pos (!j - pos))

let pr4_median ~(anchor : string) ~(field : string) : float option =
  let path = "BENCH_PR4.json" in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match find_sub contents anchor 0 with
    | None -> None
    | Some p -> (
      match find_sub contents ("\"" ^ field ^ "\": {\"median_ms\": ") p with
      | None -> None
      | Some q -> Some (float_after contents q))
  end

let e14 () =
  header "E14  interned symbols + flat sorted sets vs the PR4 data path";
  (* The PR4 trajectory's indexed workloads, replayed on the rewritten
     path at 1 domain: the E11 point and label-join queries (150x400
     labelled graph) and the E5 index+ root fixpoint at 400 documents.
     Same seeds, same shapes — only the data path changed. *)
  row "%-16s  %8s  %10s  %10s  %9s  %12s\n" "workload" "result" "ms" "pr4_ms"
    "speedup" "minor_Mw";
  let measure name f baseline =
    let tm, result = timed f in
    let speedup = Option.map (fun b -> b /. tm.median_ms) baseline in
    record ~experiment:"e14"
      ([ ("workload", J_str name); ("result", J_int result);
         ("domains", J_int 1) ]
      @ j_timing tm
      @ (match baseline with
        | Some b ->
          [ ("pr4_median_ms", J_num b);
            ("speedup_vs_pr4", J_num (Option.get speedup)) ]
        | None -> []));
    row "%-16s  %8d  %10.3f  %10.3f  %8.1fx  %12.2f\n" name result tm.median_ms
      (Option.value baseline ~default:Float.nan)
      (Option.value speedup ~default:Float.nan)
      (tm.minor_words /. 1e6)
  in
  (* The 120k-node graph lives only for this block: it is dropped (and
     compacted away) before the fixpoint workload so the fixpoint's GC
     behaviour is measured on its own heap. *)
  begin
    let data =
      Gql_workload.Gen.labelled_graph ~labels:150 ~per_label:400 ~degree:3 ()
    in
    let idx = Gql_data.Index.build data in
    let wg_query build =
      let cq = Gql_wglog.Eval.compile_query build in
      fun () ->
        List.length
          (Gql_wglog.Eval.query_embeddings ~index:idx ~domains:1 data build cq)
    in
    let point =
      let open Gql_wglog.Ast.Build in
      let b = create () in
      let r = entity b "L40" in
      let v = const b (Gql_data.Value.string "k-16123") in
      edge b ~label:"key" r v;
      finish b
    in
    let join =
      let open Gql_wglog.Ast.Build in
      let b = create () in
      let a = entity b "L7" in
      let c = entity b "L8" in
      edge b ~label:"rel" a c;
      finish b
    in
    measure "e11-point" (wg_query point)
      (pr4_median ~anchor:"\"experiment\": \"e11\", \"query\": \"point\""
         ~field:"indexed");
    measure "e11-label-join" (wg_query join)
      (pr4_median ~anchor:"\"experiment\": \"e11\", \"query\": \"label-join\""
         ~field:"indexed")
  end;
  Gc.compact ();
  let root_fixpoint () =
    let g =
      Gql_workload.Gen.hyperdocs ~seed:(seed 44) ~fanout:3 ~link_factor:1 400
    in
    let p =
      Gql_lang.Wglog_text.parse_program ~schema:Gql_wglog.Schema.hyperdoc_schema
        Gql_workload.Queries.q12_src
    in
    (Gql_wglog.Eval.run ~domains:1 g p).Gql_wglog.Eval.edges_added
  in
  measure "e5-root-400" root_fixpoint
    (pr4_median ~anchor:"\"experiment\": \"e5\", \"docs\": 400" ~field:"root")

(* ------------------------------------------------------------------ *)
(* E13v2 — the pooled, work-gated scheduler                             *)
(* ------------------------------------------------------------------ *)

let e13v2 () =
  header "E13v2  pooled scheduler: gated small fixtures, million-node scaling";
  let host = Domain.recommended_domain_count () in
  let cutoff = Gql_graph.Par.cutoff () in
  row
    "(host reports %d domain(s); par cutoff = %d work units.  The small\n\
    \ fixtures sit below the cutoff, so every domain count runs the same\n\
    \ sequential code — their speedup column is the price of the gate and\n\
    \ must hold ~1.0x.  The large fixtures clear the cutoff and go through\n\
    \ the worker pool; real scaling needs real cores, so on a 1-core host\n\
    \ the table records honest wall clock while the byte-identity check\n\
    \ still fires on every run.  Speedups use min_ms — the low-noise\n\
    \ floor — because the gate comparison is a same-code-path ratio.)\n"
    host cutoff;
  row "%-22s  %6s  %8s  %10s  %10s  %5s  %8s  %6s  %6s  %7s\n" "workload"
    "class" "domains" "median_ms" "min_ms" "ident" "speedup" "jobs" "chunks"
    "stolen";
  let sweep ~klass ?repeat name run =
    let baseline = ref None in
    List.iter
      (fun domains ->
        (* a compacted heap before every point: the sweep compares
           domain counts, and carried-over garbage from earlier points
           would otherwise drift the floor between them *)
        Gc.compact ();
        let s0 = Gql_graph.Par.stats () in
        let tm, digest = timed ?repeat (fun () -> run domains) in
        let ds =
          Gql_graph.Par.stats_diff ~before:s0 (Gql_graph.Par.stats ())
        in
        let seq_digest, seq_min =
          match !baseline with
          | None ->
            baseline := Some (digest, tm.min_ms);
            (digest, tm.min_ms)
          | Some b -> b
        in
        if digest <> seq_digest then
          failwith
            (Printf.sprintf
               "E13v2 %s: %d-domain result differs from sequential" name
               domains);
        let speedup = seq_min /. tm.min_ms in
        record ~experiment:"e13v2"
          ([ ("workload", J_str name); ("class", J_str klass);
             ("domains", J_int domains); ("identical", J_bool true);
             ("speedup", J_num speedup); ("cutoff", J_int cutoff);
             ("host_domains", J_int host);
             ("par_jobs", J_int ds.Gql_graph.Par.jobs);
             ("par_chunks", J_int ds.Gql_graph.Par.chunks);
             ("par_chunks_stolen", J_int ds.Gql_graph.Par.stolen);
             ("par_seq_below_cutoff", J_int ds.Gql_graph.Par.seq_below_cutoff);
             ("par_seq_nested", J_int ds.Gql_graph.Par.seq_nested);
             ("par_seq_solo", J_int ds.Gql_graph.Par.seq_solo);
             ("par_workers_spawned", J_int ds.Gql_graph.Par.workers_spawned);
             ("par_spawn_failures", J_int ds.Gql_graph.Par.spawn_failures) ]
          @ j_timing tm);
        row "%-22s  %6s  %8d  %10.2f  %10.2f  %5s  %7.2fx  %6d  %6d  %7d\n"
          name klass domains tm.median_ms tm.min_ms "yes" speedup
          ds.Gql_graph.Par.jobs ds.Gql_graph.Par.chunks
          ds.Gql_graph.Par.stolen)
      [ 1; 2; 4; 8 ]
  in
  (* -- the three E13 small fixtures, same seeds: the gate must keep
     them sequential at every domain count ------------------------------ *)
  begin
    let e1_base =
      Gql_workload.Gen.restaurants ~seed:(seed 71) ~menu_fraction:0.6 1000
    in
    let e1_prog =
      Gql_lang.Wglog_text.parse_program
        ~schema:Gql_wglog.Schema.restaurant_schema Gql_workload.Queries.q10_src
    in
    let e5_base =
      Gql_workload.Gen.hyperdocs ~seed:(seed 72) ~fanout:3 ~link_factor:1 400
    in
    let e5_prog =
      Gql_lang.Wglog_text.parse_program
        ~schema:Gql_wglog.Schema.hyperdoc_schema Gql_workload.Queries.q12_src
    in
    let e7_graph =
      fst
        (Gql_data.Codec.encode (Gql_workload.Gen.greengrocer ~seed:(seed 73) 1600))
    in
    let e7_query =
      (List.hd
         (Gql_core.Gql.parse_xmlgl Gql_workload.Queries.q4_src).Gql_xmlgl.Ast.rules)
        .Gql_xmlgl.Ast.query
    in
    let fixpoint base prog domains =
      let g = Gql_data.Graph.copy base in
      let stats = Gql_wglog.Eval.run ~domains g prog in
      Digest.string
        (Marshal.to_string
           ( stats.Gql_wglog.Eval.rounds,
             stats.Gql_wglog.Eval.embeddings_found,
             stats.Gql_wglog.Eval.nodes_added,
             stats.Gql_wglog.Eval.edges_added )
           [])
      ^ graph_digest g
    in
    (* extra repetitions: the small points are a few ms each, and their
       speedup column is a same-code-path ratio that must not wobble *)
    sweep ~klass:"small" ~repeat:9 "e1/q10-restaurants" (fixpoint e1_base e1_prog);
    sweep ~klass:"small" ~repeat:9 "e5/q12-hyperdocs" (fixpoint e5_base e5_prog);
    sweep ~klass:"small" ~repeat:9 "e7/q4-join" (fun domains ->
        Digest.string
          (Marshal.to_string
             (Gql_xmlgl.Matching.run ~domains e7_graph e7_query) []))
  end;
  Gc.compact ();
  (* -- the million-node fixtures: wide, deep, skewed -------------------- *)
  (* embedding digests fold a hash in enumeration order instead of
     marshalling million-element lists; count + hash pin both the set
     and the order *)
  let goal_digest g rule domains =
    let embs = Gql_wglog.Eval.goal ~domains g rule in
    let h =
      List.fold_left
        (fun acc emb ->
          Array.fold_left (fun a x -> (a * 1_000_003) lxor x) acc emb)
        17 embs
    in
    Printf.sprintf "%d:%d" (List.length embs) h
  in
  let rule_of schema src =
    List.hd (Gql_lang.Wglog_text.parse_program ~schema src).Gql_wglog.Ast.rules
  in
  List.iter
    (fun (name, gen, src) ->
      let g = gen () in
      let rule = rule_of Gql_wglog.Schema.scale_schema src in
      row "%-22s  (%d nodes)\n" name (Gql_data.Graph.n_nodes g);
      sweep ~klass:"large" name (goal_digest g rule);
      Gc.compact ())
    [ ("wide-1M", (fun () -> Gql_workload.Gen.wide_graph ~seed:(seed 74) ~hubs:1024 1_000_000),
       Gql_workload.Queries.q13_src);
      ("deep-1M", (fun () -> Gql_workload.Gen.deep_graph ~seed:(seed 75) ~chains:2048 1_000_000),
       Gql_workload.Queries.q14_src);
      ("skewed-1M", (fun () -> Gql_workload.Gen.skewed_graph ~seed:(seed 76) ~groups:512 1_000_000),
       Gql_workload.Queries.q15_src) ]

(* ------------------------------------------------------------------ *)
(* E15 — planner ablation: cost-based vs greedy vs fixed               *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header "E15  planner ablation: cost-based vs greedy vs fixed join order";
  row
    "(same MATCH query through the algebra under the three planner\n\
    \ strategies; each plan is built once and its execution timed —\n\
    \ the plan-cache deployment model.  Every point checks the row\n\
    \ counts agree, records the plan's own cost/row estimates and\n\
    \ whether it contains a cartesian product.  Fixtures are E11's\n\
    \ 120k-node labelled graph and the E13v2 million-node trio.)\n";
  row "%-14s  %-8s  %9s  %6s  %10s  %10s  %12s\n" "workload" "strategy" "rows"
    "cross" "median_ms" "min_ms" "est_cost";
  let strategies = [ (`Cost, "cost"); (`Greedy, "greedy"); (`Fixed, "fixed") ] in
  let bench_workload ~name ~data ~idx ~src =
    let q = Gql_match.Parse.parse src in
    let c = Gql_match.Compile.compile q in
    (* The strategy points are compared against each other, and the
       first evaluations on a fresh fixture run on a cold heap several
       times slower than steady state — warm the workload globally
       before measuring any strategy, or measurement order would
       masquerade as a planner difference. *)
    for _ = 1 to 6 do
      ignore
        (Gql_match.Eval.bindings_algebra ~strategy:`Greedy ~index:idx
           ~domains:1 data c)
    done;
    let planned =
      List.map
        (fun (strategy, sname) ->
          let job = Gql_match.Compile.job ~index:idx c in
          (sname, job, Gql_algebra.Planner.build ~strategy data job))
        strategies
    in
    let execute (_, job, plan) =
      List.length
        (Gql_algebra.Exec.run ?provider:job.Gql_algebra.Planner.provider
           ~domains:1 data c.Gql_match.Compile.pattern plan)
    in
    (* row-count agreement, checked once before timing (and doubling as
       a per-plan warm-up run) *)
    let rows = execute (List.hd planned) in
    List.iter
      (fun ((sname, _, _) as p) ->
        let r = execute p in
        if r <> rows then
          failwith
            (Printf.sprintf "E15 %s: %s returned %d rows, expected %d" name
               sname r rows))
      (List.tl planned);
    (* Interleaved rounds rather than [timed] per strategy: the plans
       often coincide, so any timing gap between strategies on a
       sequential schedule would be heap drift, not planner quality.
       Round-robin makes the drift hit every strategy alike. *)
    let n_plans = List.length planned in
    let samples = Array.make n_plans [] in
    let minor = Array.make n_plans 0.0 in
    let major = Array.make n_plans 0.0 in
    let repeat = 9 in
    Gc.compact ();
    for _round = 1 to repeat do
      List.iteri
        (fun i p ->
          let g0 = Gc.quick_stat () in
          let t0 = Unix.gettimeofday () in
          ignore (execute p);
          let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
          let g1 = Gc.quick_stat () in
          samples.(i) <- dt :: samples.(i);
          minor.(i) <- minor.(i) +. g1.Gc.minor_words -. g0.Gc.minor_words;
          major.(i) <- major.(i) +. g1.Gc.major_words -. g0.Gc.major_words)
        planned
    done;
    List.iteri
      (fun i (sname, _, plan) ->
        let sorted = List.sort compare samples.(i) in
        let tm =
          {
            median_ms = List.nth sorted (repeat / 2);
            min_ms = List.hd sorted;
            minor_words = minor.(i) /. float_of_int repeat;
            major_words = major.(i) /. float_of_int repeat;
          }
        in
        let cross = Gql_algebra.Plan.has_cross plan in
        let est_rows, est_cost =
          match Gql_algebra.Plan.root_est plan with
          | Some e -> (e.Gql_algebra.Plan.est_rows, e.Gql_algebra.Plan.est_cost)
          | None -> (Float.nan, Float.nan)
        in
        record ~experiment:"e15"
          ([ ("workload", J_str name); ("strategy", J_str sname);
             ("rows", J_int rows); ("has_cross", J_bool cross);
             ("plan_est_rows", J_num est_rows);
             ("plan_est_cost", J_num est_cost) ]
          @ j_timing tm);
        row "%-14s  %-8s  %9d  %6s  %10.2f  %10.2f  %12.3g\n" name sname rows
          (if cross then "yes" else "no")
          tm.median_ms tm.min_ms est_cost)
      planned
  in
  (* -- E11's 120k-node labelled graph --------------------------------- *)
  begin
    let data =
      Gql_workload.Gen.labelled_graph ~labels:150 ~per_label:400 ~degree:3 ()
    in
    let idx = Gql_data.Index.build data in
    List.iter
      (fun (name, src) -> bench_workload ~name ~data ~idx ~src)
      [ ( "e11-point",
          "MATCH (r:L40)-[:key]->(v)\nWHERE v.value = \"k-16123\"\nRETURN r\n"
        );
        ("e11-join", "MATCH (a:L7)-[:rel]->(b:L8)\nRETURN a, b\n");
        ( "e11-tri",
          "MATCH (a:L7)-[:rel]->(b:L8)<-[:rel]-(c:L7)\nRETURN a, b, c\n" ) ]
  end;
  Gc.compact ();
  (* -- the E13v2 million-node fixtures -------------------------------- *)
  List.iter
    (fun (name, gen, src) ->
      let data = gen () in
      let idx = Gql_data.Index.build data in
      row "%-14s  (%d nodes)\n" name (Gql_data.Graph.n_nodes data);
      bench_workload ~name ~data ~idx ~src;
      Gc.compact ())
    [ ( "wide-1M",
        (fun () -> Gql_workload.Gen.wide_graph ~seed:(seed 74) ~hubs:1024 1_000_000),
        "MATCH (h:Hub)-[:rel]->(i:Item)\nRETURN h, i\n" );
      ( "deep-1M",
        (fun () -> Gql_workload.Gen.deep_graph ~seed:(seed 75) ~chains:2048 1_000_000),
        "MATCH (h:Head)-[:next+]->(t:Cell)\nRETURN h, t\n" );
      ( "skewed-1M",
        (fun () -> Gql_workload.Gen.skewed_graph ~seed:(seed 76) ~groups:512 1_000_000),
        "MATCH (g:Group)-[:member]->(m:Member)\nRETURN g, m\n" ) ]

(* ------------------------------------------------------------------ *)
(* E16 — flat product-automaton path engine                            *)
(* ------------------------------------------------------------------ *)

(* Field lookup in the committed PR8 trajectory (flat numeric fields of
   an e13v2-style record, not the nested [field: {median_ms: ..}] shape
   pr4_median reads). *)
let pr8_field ~(anchor : string) ~(field : string) : float option =
  let path = "BENCH_PR8.json" in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match find_sub contents anchor 0 with
    | None -> None
    | Some p -> (
      match find_sub contents ("\"" ^ field ^ "\": ") p with
      | None -> None
      | Some q -> Some (float_after contents q))
  end

let e16 () =
  let module Rp = Gql_graph.Regpath in
  header "E16  flat product-automaton path engine vs subset-construction BFS";
  row
    "(Micro: per-head next+ closure over a 200k-node chain fixture, the\n\
    \ retained subset-construction BFS vs the flat product-automaton\n\
    \ search on the same frozen snapshot, byte-identical result lists\n\
    \ asserted before timing; batch = one scratch claim for all heads.\n\
    \ Sweeps: the path-heavy million-node WG-Log goals at 1/2/4 domains\n\
    \ with the engine's own counters, digest-checked across domain\n\
    \ counts, minor-heap words compared against the committed PR8\n\
    \ trajectory where the same fixture appears.)\n";
  (* -- micro ----------------------------------------------------------- *)
  begin
    let data = Gql_workload.Gen.deep_graph ~seed:(seed 81) ~chains:256 200_000 in
    let csr = Gql_graph.Csr.freeze (Gql_data.Graph.digraph data) in
    let heads = ref [] in
    Gql_graph.Digraph.iter_nodes
      (fun i kind ->
        match kind with
        | Gql_data.Graph.Complex "Head" -> heads := i :: !heads
        | _ -> ())
      (Gql_data.Graph.digraph data);
    let heads = Array.of_list (List.rev !heads) in
    let rp =
      Rp.compile_classified ~plane_hint:Gql_data.Index.plane_rel
        ~classify:(fun lbl -> if lbl = "*" then Rp.Lany else Rp.Lname lbl)
        (fun lbl (de : Gql_data.Graph.edge) ->
          de.Gql_data.Graph.kind <> Gql_data.Graph.Attribute
          && (lbl = "*" || de.Gql_data.Graph.name = lbl))
        Gql_regex.Syntax.(plus (sym "next"))
    in
    (* the deployed snapshot path: interned symbol plane + specialised
       automaton, exactly what Index.nav_path runs *)
    let interner = Hashtbl.create 8 in
    let intern name =
      match Hashtbl.find_opt interner name with
      | Some i -> i
      | None ->
        let i = Hashtbl.length interner in
        Hashtbl.add interner name i;
        i
    in
    let plane =
      Gql_graph.Csr.map_out_labels
        (fun (de : Gql_data.Graph.edge) ->
          if de.Gql_data.Graph.kind = Gql_data.Graph.Attribute then -1
          else intern de.Gql_data.Graph.name)
        csr
    in
    let spec = Rp.specialise rp ~intern in
    let hash_list acc l =
      List.fold_left (fun a x -> (a * 1_000_003) lxor x) acc l
    in
    let digest_over f =
      Array.fold_left (fun acc h -> hash_list acc (f h)) 17 heads
    in
    let run_plane h =
      Gql_graph.Iset.to_list (Rp.reachable_plane rp spec csr ~plane h)
    in
    (* identity first: all four engines must agree head-for-head *)
    let batch0 = Rp.reachable_frozen_batch rp csr heads in
    Array.iteri
      (fun i h ->
        let s = Rp.reachable_subset_frozen rp csr h in
        let f = Rp.reachable_frozen rp csr h in
        if s <> f || f <> Gql_graph.Iset.to_list batch0.(i) || f <> run_plane h
        then failwith "E16 micro: engines disagree")
      heads;
    let sub_tm, sub_digest =
      timed ~repeat:5 (fun () -> digest_over (Rp.reachable_subset_frozen rp csr))
    in
    let pred_tm, pred_digest =
      timed ~repeat:5 (fun () -> digest_over (Rp.reachable_frozen rp csr))
    in
    let s0 = Rp.stats () in
    let flat_tm, flat_digest =
      timed ~repeat:5 (fun () -> digest_over run_plane)
    in
    let ds = Rp.stats_diff ~before:s0 (Rp.stats ()) in
    let batch_tm, batch_digest =
      timed ~repeat:5 (fun () ->
          Array.fold_left
            (fun acc s -> hash_list acc (Gql_graph.Iset.to_list s))
            17
            (Rp.reachable_frozen_batch rp csr heads))
    in
    if
      sub_digest <> flat_digest || flat_digest <> batch_digest
      || pred_digest <> flat_digest
    then failwith "E16 micro: timed digests disagree";
    let speedup_flat = sub_tm.min_ms /. flat_tm.min_ms in
    let speedup_pred = sub_tm.min_ms /. pred_tm.min_ms in
    let speedup_batch = sub_tm.min_ms /. batch_tm.min_ms in
    record ~experiment:"e16"
      [ ("workload", J_str "regpath-micro-next+");
        ("heads", J_int (Array.length heads));
        ("nodes", J_int (Gql_data.Graph.n_nodes data));
        ("identical", J_bool true);
        ("subset", J_obj (j_timing sub_tm));
        ("flat", J_obj (j_timing flat_tm));
        ("flat_pred", J_obj (j_timing pred_tm));
        ("batch", J_obj (j_timing batch_tm));
        ("speedup_flat", J_num speedup_flat);
        ("speedup_pred", J_num speedup_pred);
        ("speedup_batch", J_num speedup_batch);
        ("path_searches", J_int ds.Rp.searches);
        ("path_frontier_peak", J_int ds.Rp.frontier_peak);
        ("path_scratch_reuses", J_int ds.Rp.scratch_reuses) ];
    row "%-22s  %8s  %10s  %10s  %9s  %11s\n" "engine" "heads" "median_ms"
      "min_ms" "speedup" "minor_Mw";
    row "%-22s  %8d  %10.2f  %10.2f  %9s  %11.2f\n" "subset-BFS"
      (Array.length heads) sub_tm.median_ms sub_tm.min_ms "1.00x"
      (sub_tm.minor_words /. 1e6);
    row "%-22s  %8d  %10.2f  %10.2f  %8.2fx  %11.2f\n" "flat-pred"
      (Array.length heads) pred_tm.median_ms pred_tm.min_ms speedup_pred
      (pred_tm.minor_words /. 1e6);
    row "%-22s  %8d  %10.2f  %10.2f  %8.2fx  %11.2f\n" "flat-plane"
      (Array.length heads) flat_tm.median_ms flat_tm.min_ms speedup_flat
      (flat_tm.minor_words /. 1e6);
    row "%-22s  %8d  %10.2f  %10.2f  %8.2fx  %11.2f\n" "flat-batch"
      (Array.length heads) batch_tm.median_ms batch_tm.min_ms speedup_batch
      (batch_tm.minor_words /. 1e6)
  end;
  Gc.compact ();
  (* -- million-node path sweeps ---------------------------------------- *)
  row "\n%-22s  %8s  %10s  %10s  %5s  %8s  %9s  %10s\n" "workload" "domains"
    "median_ms" "min_ms" "ident" "speedup" "searches" "minor_Mw";
  let goal_digest g rule domains =
    let embs = Gql_wglog.Eval.goal ~domains g rule in
    let h =
      List.fold_left
        (fun acc emb ->
          Array.fold_left (fun a x -> (a * 1_000_003) lxor x) acc emb)
        17 embs
    in
    Printf.sprintf "%d:%d" (List.length embs) h
  in
  let rule_of src =
    List.hd
      (Gql_lang.Wglog_text.parse_program ~schema:Gql_wglog.Schema.scale_schema
         src)
        .Gql_wglog.Ast.rules
  in
  let q_skew_path_src =
    (* skewed-1M variant of q15 with the member edge starred: the
       pathedge rides the same skew the scheduler has to absorb *)
    "wglog\nrule\n  node g Group\n  node m Member\n  pathedge g member+ m\nend\n"
  in
  List.iter
    (fun (name, pr8_workload, gen, src) ->
      let g = gen () in
      let rule = rule_of src in
      row "%-22s  (%d nodes)\n" name (Gql_data.Graph.n_nodes g);
      let baseline = ref None in
      List.iter
        (fun domains ->
          Gc.compact ();
          let s0 = Rp.stats () in
          let tm, digest = timed (fun () -> goal_digest g rule domains) in
          let ds = Rp.stats_diff ~before:s0 (Rp.stats ()) in
          let seq_digest, seq_min =
            match !baseline with
            | None ->
              baseline := Some (digest, tm.min_ms);
              (digest, tm.min_ms)
            | Some b -> b
          in
          if digest <> seq_digest then
            failwith
              (Printf.sprintf
                 "E16 %s: %d-domain result differs from sequential" name
                 domains);
          let speedup = seq_min /. tm.min_ms in
          let pr8 =
            if domains = 1 then
              match pr8_workload with
              | None -> []
              | Some w -> (
                match
                  pr8_field
                    ~anchor:
                      (Printf.sprintf
                         "\"workload\": \"%s\", \"class\": \"large\", \
                          \"domains\": 1, \"identical\"" w)
                    ~field:"minor_words"
                with
                | Some mw ->
                  [ ("pr8_minor_words", J_num mw);
                    ("minor_words_ratio", J_num (tm.minor_words /. mw)) ]
                | None -> [])
            else []
          in
          record ~experiment:"e16"
            ([ ("workload", J_str name); ("domains", J_int domains);
               ("identical", J_bool true); ("speedup", J_num speedup);
               ("path_compiles", J_int ds.Rp.compiles);
               ("path_specialisations", J_int ds.Rp.specialisations);
               ("path_searches", J_int ds.Rp.searches);
               ("path_memo_hits", J_int ds.Rp.memo_hits);
               ("path_memo_misses", J_int ds.Rp.memo_misses);
               ("path_frontier_peak", J_int ds.Rp.frontier_peak);
               ("path_scratch_reuses", J_int ds.Rp.scratch_reuses) ]
            @ j_timing tm @ pr8);
          row "%-22s  %8d  %10.2f  %10.2f  %5s  %7.2fx  %9d  %10.2f\n" name
            domains tm.median_ms tm.min_ms "yes" speedup ds.Rp.searches
            (tm.minor_words /. 1e6))
        [ 1; 2; 4 ];
      Gc.compact ())
    [ ( "deep-1M-next+",
        Some "deep-1M",
        (fun () ->
          Gql_workload.Gen.deep_graph ~seed:(seed 75) ~chains:2048 1_000_000),
        Gql_workload.Queries.q14_src );
      ( "skewed-1M-member+",
        None,
        (fun () ->
          Gql_workload.Gen.skewed_graph ~seed:(seed 76) ~groups:512 1_000_000),
        q_skew_path_src ) ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                             *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let xml = Gql_xml.Printer.to_string (Gql_workload.Gen.bibliography ~seed:(seed 50) 100) in
  let db = Gql_core.Gql.load_xml_string xml in
  let q2 = Gql_core.Gql.parse_xmlgl Gql_workload.Queries.q2_src in
  let q2_query = (List.hd q2.Gql_xmlgl.Ast.rules).Gql_xmlgl.Ast.query in
  let regex = Gql_regex.Chre.compile "[hH]olland|Van.*" in
  let idx = Lazy.force db.Gql_core.Gql.xpath_index in
  let xp = Gql_xpath.Parse.expr Gql_workload.Queries.q2_xpath in
  let tests =
    [
      Test.make ~name:"xml-parse-100-books"
        (Staged.stage (fun () -> ignore (Gql_xml.Parser.parse_document xml)));
      Test.make ~name:"xmlgl-match-q2"
        (Staged.stage (fun () ->
             ignore (Gql_xmlgl.Matching.run db.Gql_core.Gql.graph q2_query)));
      Test.make ~name:"xpath-eval-q2"
        (Staged.stage (fun () -> ignore (Gql_xpath.Eval.select idx xp)));
      Test.make ~name:"regex-search"
        (Staged.stage (fun () ->
             ignore (Gql_regex.Chre.search regex "sold in Holland by VanDam")));
      Test.make ~name:"rule-parse"
        (Staged.stage (fun () ->
             ignore (Gql_lang.Xmlgl_text.parse_program Gql_workload.Queries.q4_src)));
    ]
  in
  header "microbenchmarks (ns/run, OLS on monotonic clock)";
  List.iter
    (fun test ->
      let instances = Toolkit.Instance.[ monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
      in
      let a = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name res ->
          match Analyze.OLS.estimates res with
          | Some [ est ] -> row "%-28s  %12.1f ns/run\n" name est
          | Some _ | None -> row "%-28s  (no estimate)\n" name)
        a)
    tests

(* ------------------------------------------------------------------ *)
(* E17 — the persistent snapshot store                                  *)
(* ------------------------------------------------------------------ *)

let e17 () =
  header "E17  snapshot store: mapped load vs re-freezing the index";
  row
    "(save serialises the frozen planes once; load maps the file back,\n\
    \ blitting the hot planes and wiring the cold lanes and the mutable\n\
    \ graph lazily.  'refreeze' is Index.build on the in-memory graph —\n\
    \ what a process start pays without the store; 'validate' is the\n\
    \ zero-copy open that checks every checksum without materialising;\n\
    \ 'thaw' is the lazy Digraph force the first scan-route query pays.\n\
    \ ident compares a q13-style goal digest frozen-vs-loaded; speedup\n\
    \ is refreeze/load on min_ms.)\n";
  row "%-12s  %10s  %9s  %11s  %11s  %9s  %9s  %5s  %8s\n" "workload"
    "refreeze_ms" "save_ms" "bytes" "validate_ms" "load_ms" "thaw_ms" "ident"
    "speedup";
  let goal_digest ~index g rule =
    let embs = Gql_wglog.Eval.goal ~index ~domains:1 g rule in
    let h =
      List.fold_left
        (fun acc emb ->
          Array.fold_left (fun a x -> (a * 1_000_003) lxor x) acc emb)
        17 embs
    in
    Printf.sprintf "%d:%d" (List.length embs) h
  in
  (* Both sides of the ratio allocate ~200 MB per run, so the shared
     [timed] harness — which keeps every run's result alive — would
     charge each run with collecting its predecessors' garbage and
     compress the ratio arbitrarily.  Here every run starts from a
     compacted heap with the previous result dropped: the columns time
     the phase, not the GC echo of the phase before it. *)
  let timed_gc ?(repeat = 3) f =
    let keep = ref None in
    let times = ref [] in
    for i = 0 to repeat do
      keep := None;
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
      keep := Some r;
      if i > 0 then times := dt :: !times (* run 0 is the warm-up *)
    done;
    let times = List.sort compare !times in
    ( { median_ms = List.nth times (repeat / 2); min_ms = List.hd times;
        minor_words = 0.0; major_words = 0.0 },
      Option.get !keep )
  in
  List.iter
    (fun (name, gen, src) ->
      let g = gen () in
      let rule =
        List.hd
          (Gql_lang.Wglog_text.parse_program
             ~schema:Gql_wglog.Schema.scale_schema src)
          .Gql_wglog.Ast.rules
      in
      Gc.compact ();
      let tm_freeze, idx = timed_gc (fun () -> Gql_data.Index.build g) in
      let path = Filename.temp_file "gql-bench" ".snap" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let tm_save, bytes = timed_gc (fun () -> Gql_data.Store.save ~path idx) in
          let tm_validate, _ = timed_gc (fun () -> Gql_data.Store.validate path) in
          let tm_load, (lg, lidx) =
            timed_gc (fun () -> Gql_data.Store.load ~path)
          in
          let t0 = Unix.gettimeofday () in
          ignore (Gql_data.Graph.digraph lg);
          let thaw_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
          let identical =
            goal_digest ~index:idx g rule = goal_digest ~index:lidx lg rule
          in
          if not identical then
            failwith
              (Printf.sprintf "E17 %s: loaded snapshot answers differently"
                 name);
          let speedup = tm_freeze.min_ms /. tm_load.min_ms in
          record ~experiment:"e17"
            ([ ("workload", J_str name);
               ("refreeze_ms", J_num tm_freeze.median_ms);
               ("refreeze_min_ms", J_num tm_freeze.min_ms);
               ("snapshot_save_ms", J_num tm_save.median_ms);
               ("snapshot_bytes", J_int bytes);
               ("validate_ms", J_num tm_validate.median_ms);
               ("snapshot_load_ms", J_num tm_load.median_ms);
               ("snapshot_load_min_ms", J_num tm_load.min_ms);
               ("thaw_ms", J_num thaw_ms);
               ("identical", J_bool identical);
               ("speedup", J_num speedup);
               ("median_ms", J_num tm_load.median_ms);
               ("min_ms", J_num tm_load.min_ms) ]);
          row "%-12s  %11.1f  %9.1f  %11d  %11.2f  %9.1f  %9.1f  %5s  %7.1fx\n"
            name tm_freeze.median_ms tm_save.median_ms bytes
            tm_validate.median_ms tm_load.median_ms thaw_ms
            (if identical then "yes" else "NO") speedup))
    [ ("wide-1M",
       (fun () -> Gql_workload.Gen.wide_graph ~seed:(seed 74) ~hubs:1024 1_000_000),
       Gql_workload.Queries.q13_src);
      ("deep-1M",
       (fun () -> Gql_workload.Gen.deep_graph ~seed:(seed 75) ~chains:2048 1_000_000),
       Gql_workload.Queries.q14_src);
      ("skewed-1M",
       (fun () -> Gql_workload.Gen.skewed_graph ~seed:(seed 76) ~groups:512 1_000_000),
       Gql_workload.Queries.q15_src) ]

(* ------------------------------------------------------------------ *)

let all =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e13v2", e13v2); ("e15", e15);
    ("e16", e16); ("e17", e17) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  (* --seed N: shift every generator seed (see [seed_base]) *)
  let rec strip = function
    | "--seed" :: n :: rest ->
      (match int_of_string_opt n with
      | Some s -> seed_base := s
      | None -> Printf.eprintf "bad --seed %s (integer expected)\n" n);
      strip rest
    | "--domains" :: n :: rest ->
      (* default domain count for every evaluation in the run; E13
         still sweeps its own explicit 1/2/4/8 regardless *)
      (match int_of_string_opt n with
      | Some d -> Gql_graph.Par.set_default d
      | None -> Printf.eprintf "bad --domains %s (integer expected)\n" n);
      strip rest
    | "--json" :: rest -> strip rest
    | a :: rest -> a :: strip rest
    | [] -> []
  in
  let args = strip args in
  (match args with
  | [] -> List.iter (fun (_, f) -> f ()) all
  | [ "micro" ] -> micro ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt (String.lowercase_ascii name) all with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %s (e1..e17, e13v2, micro)\n" name)
      names);
  if json then write_json "BENCH_PR10.json"
