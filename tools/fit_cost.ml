(* Fit the E15 cost-model calibration constants (lib/algebra/cost.ml)
   from the committed bench trajectory.

     dune exec tools/fit_cost.exe            # newest BENCH_PR*.json
     dune exec tools/fit_cost.exe -- FILE..  # explicit trajectory files

   Method.  Each bench record whose physical plan we know statically
   becomes one equation "sum over operators of (constant x item count)
   = measured nanoseconds".  A single linear model cannot satisfy all
   of them: the 120k-node fixtures run cache-resident at ~8 ns/item
   while the million-row fixtures stream at ~900 ns/item, a ~50x
   per-item gap that is memory hierarchy, not operator mix (a
   least-squares fit just collapses onto whichever scale the weighting
   favours).  So the fit is tiered, with each constant taken from the
   fixture class where the planner's mistakes would actually cost
   something: expansion constants from the streaming fixtures, scan
   constants from the isolated small-fixture measurements.  The
   constants with no isolated measurement are derived from fitted ones
   by documented rules (see [derive] below).

   The attribution table (fixture shapes are fixed by
   lib/workload/gen.ml, so item counts are known):

     e11 point, scan arm      2 sweeps x 120k nodes        -> c_scan_full
     e11 point, indexed arm   800 emits + 800 expansions   -> scan/expand mix
     e11 join, indexed arm    800 emits + 800 expansions   -> scan/expand mix
     e13v2 wide-1M   (d=1)    1024 emits + 1M expansions   -> c_expand_direct
     e13v2 skewed-1M (d=1)    512 emits + 1M expansions    -> c_expand_direct
     e13v2 deep-1M   (d=1)    2048 emits + ~1M path nodes  -> c_expand_path

   Output is a [Cost.default]-shaped block to paste into
   lib/algebra/cost.ml, plus per-equation residuals so drift between
   trajectory files is visible. *)

(* ---------------- minimal JSON reader ------------------------------- *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () <> c then
      raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
    advance ()
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'u' ->
          (* escaped code points never appear in bench output; keep the
             raw escape rather than decoding *)
          Buffer.add_string b "\\u"
        | c -> Buffer.add_char b c);
        advance ();
        go ()
      | '\000' -> raise (Bad "unterminated string")
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while num_char (peek ()) do
      advance ()
    done;
    float_of_string (String.sub s start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (advance (); J_obj [])
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          if peek () = ',' then (advance (); fields_loop ()) else expect '}'
        in
        fields_loop ();
        J_obj (List.rev !fields)
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (advance (); J_list [])
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = value () in
          items := v :: !items;
          skip_ws ();
          if peek () = ',' then (advance (); items_loop ()) else expect ']'
        in
        items_loop ();
        J_list (List.rev !items)
      end
    | '"' -> J_str (string_lit ())
    | 't' -> literal "true" (J_bool true)
    | 'f' -> literal "false" (J_bool false)
    | 'n' -> literal "null" J_null
    | _ -> J_num (number ())
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage");
  v

let field j k =
  match j with J_obj fs -> List.assoc_opt k fs | _ -> None

let str j k = match field j k with Some (J_str s) -> Some s | _ -> None
let num j k = match field j k with Some (J_num f) -> Some f | _ -> None

(* ---------------- datapoint extraction ------------------------------ *)

(* One equation: measured ns = sum of (count x constant). Coefficient
   order: [| scan_indexed; scan_full; expand_direct; expand_path |]. *)
type eqn = { eq_label : string; coeffs : float array; ns : float }

let median_ns j k =
  match field j k with
  | Some sub -> (
    match num sub "median_ms" with Some ms -> Some (ms *. 1e6) | None -> None)
  | None -> None

let extract (records : json list) : eqn list * float option =
  let eqns = ref [] and path_hops = ref None in
  let add label coeffs ns =
    eqns := { eq_label = label; coeffs; ns } :: !eqns
  in
  List.iter
    (fun r ->
      match str r "experiment" with
      | Some "e11" -> (
        match str r "query" with
        | Some "point" ->
          (* scan arm: the naive matcher sweeps every node once per
             pattern variable (2 variables, 120k nodes).  indexed arm:
             one posting emit + one key-edge expansion per L40 node
             (per_label = 800). *)
          (match median_ns r "scan" with
          | Some ns -> add "e11 point/scan" [| 0.; 240_000.; 0.; 0. |] ns
          | None -> ());
          (match median_ns r "indexed" with
          | Some ns -> add "e11 point/indexed" [| 800.; 0.; 800.; 0. |] ns
          | None -> ())
        | Some "label-join" -> (
          (* 800 L7 emits, one rel edge expanded per node *)
          match median_ns r "indexed" with
          | Some ns -> add "e11 join/indexed" [| 800.; 0.; 800.; 0. |] ns
          | None -> ())
        | _ -> ())
      | Some "e13v2" -> (
        match (str r "workload", num r "domains", num r "median_ms") with
        | Some w, Some 1.0, Some ms -> (
          let ns = ms *. 1e6 in
          match w with
          | "wide-1M" -> add "e13v2 wide-1M" [| 1024.; 0.; 1e6; 0. |] ns
          | "skewed-1M" -> add "e13v2 skewed-1M" [| 512.; 0.; 1e6; 0. |] ns
          | "deep-1M" ->
            add "e13v2 deep-1M" [| 2048.; 0.; 0.; 997_376. |] ns;
            (* mean chain suffix length = rows / chains; the deep graph
               has ~1 edge per node, so this is also the reachability
               cap in units of average degree. *)
            path_hops := Some (997_376. /. 2048.)
          | _ -> ())
        | _ -> ())
      | _ -> ())
    records;
  (List.rev !eqns, !path_hops)

(* ---------------- tiered fit ---------------------------------------- *)

(* Solve the identifiable constants in precedence order; each tier
   substitutes the ones already fixed.  Coefficient indices:
   0 = scan_indexed, 1 = scan_full, 2 = expand_direct, 3 = expand_path.

   Tier 1  c_scan_full     e11 point/scan (only unknown present).
   Tier 2  c_scan_indexed  every mixed small equation upper-bounds it
                           by its blended per-item time (the other
                           operators contribute nonnegative time); take
                           the tightest bound.
   Tier 3  c_expand_direct mean over wide/skewed-1M after subtracting
                           the (negligible) posting emits.
   Tier 4  c_expand_path   deep-1M likewise. *)
let fit (eqns : eqn list) : float array =
  let x = Array.make 4 0.0 in
  let pick f =
    match List.filter_map f eqns with
    | [] -> None
    | vs -> Some (List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs))
  in
  (match
     pick (fun e ->
         if e.coeffs.(1) > 0.0 then Some (e.ns /. e.coeffs.(1)) else None)
   with
  | Some v -> x.(1) <- v
  | None -> failwith "no full-scan datum (e11 point/scan)");
  (let bounds =
     List.filter_map
       (fun e ->
         if e.coeffs.(0) > 0.0 && e.coeffs.(2) > 0.0 then
           Some (e.ns /. (e.coeffs.(0) +. e.coeffs.(2)))
         else None)
       eqns
   in
   match bounds with
   | [] -> failwith "no indexed-scan datum (e11 indexed arms)"
   | b :: bs -> x.(0) <- List.fold_left Float.min b bs);
  (match
     pick (fun e ->
         if e.coeffs.(2) >= 1e5 then
           Some ((e.ns -. (e.coeffs.(0) *. x.(0))) /. e.coeffs.(2))
         else None)
   with
  | Some v -> x.(2) <- v
  | None -> failwith "no streaming expansion datum (e13v2 wide/skewed)");
  (match
     pick (fun e ->
         if e.coeffs.(3) > 0.0 then
           Some ((e.ns -. (e.coeffs.(0) *. x.(0))) /. e.coeffs.(3))
         else None)
   with
  | Some v -> x.(3) <- v
  | None -> failwith "no path expansion datum (e13v2 deep)");
  x

(* ---------------- derived constants --------------------------------- *)

(* Rules for the constants with no isolated bench signal, expressed as
   multiples of fitted ones:
   - a direct edge check is a posting membership probe: two indexed-emit
     units (binary search beats a full enumeration);
   - a path edge check walks the path like an expansion of one source;
   - a residual filter evaluates an OCaml closure over the whole
     embedding: three indexed-emit units;
   - a cross product writes one merged binding per output row: one
     indexed-emit unit. *)
let derive x =
  let si = x.(0) in
  (2.0 *. si, x.(3), 3.0 *. si, si)

(* ---------------- driver -------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let () =
  let files =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> (
      (* default: the newest committed trajectory that has the needed
         experiments *)
      let all =
        Sys.readdir "."
        |> Array.to_list
        |> List.filter (fun f ->
               String.length f > 8
               && String.sub f 0 8 = "BENCH_PR"
               && Filename.check_suffix f ".json")
        |> List.sort (fun a b -> compare b a)
      in
      match all with
      | [] ->
        prerr_endline "fit_cost: no BENCH_PR*.json in the current directory";
        exit 1
      | newest :: _ -> [ newest ])
    | args -> args
  in
  let records =
    List.concat_map
      (fun f ->
        match field (parse_json (read_file f)) "records" with
        | Some (J_list rs) -> rs
        | _ ->
          prerr_endline ("fit_cost: no records array in " ^ f);
          exit 1)
      files
  in
  let eqns, path_hops = extract records in
  if List.length eqns < 4 then begin
    Printf.eprintf
      "fit_cost: only %d usable records (need e11 + e13v2 at domains=1)\n"
      (List.length eqns);
    exit 1
  end;
  Printf.printf "fitting %d equations from %s\n\n" (List.length eqns)
    (String.concat ", " files);
  let x = fit eqns in
  Printf.printf "%-20s  %12s  %12s  %8s\n" "equation" "measured_ns"
    "predicted_ns" "rel_err";
  List.iter
    (fun e ->
      let pred = ref 0.0 in
      Array.iteri (fun j c -> pred := !pred +. (c *. x.(j))) e.coeffs;
      Printf.printf "%-20s  %12.0f  %12.0f  %7.1f%%\n" e.eq_label e.ns !pred
        (100.0 *. ((!pred /. e.ns) -. 1.0)))
    eqns;
  let check_direct, check_path, filter, cross = derive x in
  let hops = match path_hops with Some h -> h | None -> 32.0 in
  Printf.printf
    "\nlet default =\n\
    \  {\n\
    \    c_scan_indexed = %.1f;\n\
    \    c_scan_full = %.1f;\n\
    \    c_expand_direct = %.1f;\n\
    \    c_expand_path = %.1f;\n\
    \    c_check_direct = %.1f;\n\
    \    c_check_path = %.1f;\n\
    \    c_filter = %.1f;\n\
    \    c_cross = %.1f;\n\
    \    path_hops = %.1f;\n\
    \  }\n"
    x.(0) x.(1) x.(2) x.(3) check_direct check_path filter cross hops
