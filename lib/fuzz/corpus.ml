(** On-disk format for minimized fuzz repros.

    A repro is everything needed to replay one oracle on one input
    with no randomness left: the seed and oracle it came from, the
    (minimized) query source and document, and for the graph oracle
    the side-graph seed.  The format is line-oriented text so repros
    diff cleanly and can be authored by hand:

    {v
    # gql fuzz minimized repro
    seed: 12345
    oracle: direct-vs-served
    detail: cold served ERR: ...
    graph_seed: 0
    --- query
    xmlgl ...
    --- doc
    <a>...</a>
    v}

    Files live in [test/corpus/] and are replayed by
    [test_fuzz_corpus] on every test run, so every bug the fuzzer ever
    minimized stays fixed. *)

type repro = {
  seed : int;
  oracle : string;  (** {!Oracle.to_string} form *)
  detail : string;  (** the failure line at minimization time *)
  graph_seed : int;  (** only meaningful for digraph-vs-csr *)
  source : string;  (** minimized query program (or label regex) *)
  xml : string;  (** minimized document; [""] when the oracle has none *)
}

let render (r : repro) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# gql fuzz minimized repro\n";
  Printf.bprintf buf "seed: %d\n" r.seed;
  Printf.bprintf buf "oracle: %s\n" r.oracle;
  (* keep the detail single-line so the header stays line-oriented *)
  let detail =
    String.map (function '\n' | '\r' -> ' ' | c -> c) r.detail
  in
  Printf.bprintf buf "detail: %s\n" detail;
  Printf.bprintf buf "graph_seed: %d\n" r.graph_seed;
  Buffer.add_string buf "--- query\n";
  Buffer.add_string buf r.source;
  if r.source <> "" && r.source.[String.length r.source - 1] <> '\n' then
    Buffer.add_char buf '\n';
  Buffer.add_string buf "--- doc\n";
  Buffer.add_string buf r.xml;
  if r.xml <> "" && r.xml.[String.length r.xml - 1] <> '\n' then
    Buffer.add_char buf '\n';
  Buffer.contents buf

let filename (r : repro) = Printf.sprintf "seed%d-%s.repro" r.seed r.oracle

let write ~(dir : string) (r : repro) : string =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (filename r) in
  let oc = open_out path in
  output_string oc (render r);
  close_out oc;
  path

let parse (text : string) : repro =
  let lines = String.split_on_char '\n' text in
  let headers = Hashtbl.create 8 in
  let query = ref [] and doc = ref [] in
  let section = ref `Header in
  List.iter
    (fun line ->
      match !section, line with
      | _, "--- query" -> section := `Query
      | _, "--- doc" -> section := `Doc
      | `Header, line -> (
        if String.length line > 0 && line.[0] <> '#' then
          match String.index_opt line ':' with
          | Some i ->
            let key = String.sub line 0 i in
            let v =
              String.trim (String.sub line (i + 1) (String.length line - i - 1))
            in
            Hashtbl.replace headers key v
          | None -> ())
      | `Query, line -> query := line :: !query
      | `Doc, line -> doc := line :: !doc)
    lines;
  let get key default =
    match Hashtbl.find_opt headers key with Some v -> v | None -> default
  in
  let section_text rev_lines =
    (* the file's final newline invents one trailing empty line *)
    let lines =
      match rev_lines with "" :: rest -> List.rev rest | l -> List.rev l
    in
    String.concat "\n" lines
  in
  {
    seed = int_of_string (get "seed" "0");
    oracle = get "oracle" "";
    detail = get "detail" "";
    graph_seed = int_of_string (get "graph_seed" "0");
    source = section_text !query;
    xml = section_text !doc;
  }

let load (path : string) : repro =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text
