(** Seed-driven inputs for the differential fuzzer.

    Everything a case contains — the document, one XML-GL and one
    WG-Log program, and the side graph + label regex for the
    regular-path oracle — derives from a single integer seed through
    {!Gql_workload.Prng} (splitmix64).  Same seed, same bytes, on any
    machine: a failure report is just a seed plus an oracle name.

    Programs are generated as ASTs through the [Build] APIs and then
    *printed* to the concrete syntax, so every case also round-trips
    through the textual parsers — the same path a served [RUN] takes.
    The generators only emit rules that pass the static checks; the
    corpus of deliberately ill-formed programs lives in [test/corpus/]
    instead, as minimized repros of real crash paths. *)

module Prng = Gql_workload.Prng

type case = {
  seed : int;
  xml : string;  (** the document under test *)
  xmlgl_src : string;  (** a well-formed XML-GL program over it *)
  wglog_src : string;  (** a well-formed WG-Log program over it *)
  graph_seed : int;  (** seed of the labelled digraph of the path oracle *)
  regex_src : string;  (** textual label regex for the path oracle *)
  match_src : string;  (** a well-formed textual MATCH query over [xml] *)
}

let tags = [| "a"; "b"; "c"; "d"; "e"; "item"; "entry"; "node" |]
let pick_tag rng = Prng.pick rng tags

(* --- documents ------------------------------------------------------- *)

let gen_doc rng : string =
  let n = 8 + Prng.int rng 53 in
  let fanout = 2 + Prng.int rng 4 in
  let seed = Prng.int rng 1_000_000 in
  let doc = Gql_workload.Gen.random_tree ~seed ~fanout ~ref_density:0.08 n in
  Gql_xml.Printer.to_string doc

(* --- XML-GL programs -------------------------------------------------- *)

let gen_xmlgl rng : string =
  let open Gql_xmlgl.Ast in
  let b = Build.create () in
  let elem () =
    if Prng.int rng 4 = 0 then Build.q_any b () else Build.q_elem b (pick_tag rng)
  in
  (* a chain of element boxes joined by containment or descendant edges *)
  let n0 = elem () in
  let last = ref n0 in
  for _ = 1 to Prng.int rng 3 do
    let nx = elem () in
    if Prng.bool rng then Build.qedge b !last nx else Build.qdeep b !last nx;
    last := nx
  done;
  (* sometimes a content circle, possibly with a predicate *)
  let content =
    if Prng.int rng 2 = 0 then begin
      let pred =
        match Prng.int rng 4 with
        | 0 -> None
        | 1 ->
          Some (Compare (Lt, Self, Const (Gql_data.Value.int (Prng.int rng 1000))))
        | 2 ->
          Some (Compare (Ge, Self, Const (Gql_data.Value.int (Prng.int rng 1000))))
        | _ -> Some (Contains_str (Self, string_of_int (Prng.int rng 10)))
      in
      let c = Build.q_content b ?pred () in
      Build.qedge b !last c;
      Some c
    end
    else None
  in
  (* sometimes the id attribute circle every generated element carries *)
  if Prng.int rng 3 = 0 then begin
    let a = Build.q_attr_node b () in
    Build.qattr b n0 "id" a
  end;
  (* sometimes a negated child *)
  if Prng.int rng 4 = 0 then begin
    let m = Build.q_elem b (pick_tag rng) in
    Build.qabsent b n0 m
  end;
  (* construction: always rooted, always acyclic *)
  (match Prng.int rng 4 with
  | 0 -> Build.root b (Build.c_copy b ~deep:(Prng.bool rng) !last)
  | 1 ->
    let out = Build.c_elem b "out" in
    Build.cedge b ~ord:0 out (Build.c_all b !last);
    Build.root b out
  | 2 ->
    let out = Build.c_elem b "out" in
    let fn = [| Count; Sum; Min; Max; Avg |].(Prng.int rng 5) in
    let source = match content with Some c -> c | None -> !last in
    Build.cedge b ~ord:0 out (Build.c_aggregate b fn source);
    Build.root b out
  | _ ->
    let out = Build.c_elem b "out" in
    let v =
      match content with
      | Some c -> Build.c_value b c
      | None -> Build.c_copy b n0
    in
    Build.cedge b ~ord:0 out v;
    Build.root b out);
  let p = { rules = [ Build.finish b ]; result_root = "result" } in
  (match check_program p with
  | [] -> ()
  | errs ->
    failwith ("casegen produced ill-formed XML-GL: " ^ String.concat "; " errs));
  Gql_lang.Pp.xmlgl_program p

(* --- WG-Log programs --------------------------------------------------- *)

(* Child edges of an encoded document carry the empty name, so the only
   structural navigation expressible over them is the '.' wildcard;
   attribute slots are named ("id" on every generated element). *)
let path_res =
  (* biased toward starred / deep forms: those are the shapes where the
     flat product-automaton engine diverging from the reference would
     actually show (frontier growth, ε-closure over nested closures) *)
  [| "."; ".."; ".+"; ".?"; ".*"; ".+.+"; "..?"; ".?.+"; "(..)+" |]

let gen_wglog rng : string =
  let open Gql_wglog.Ast in
  let b = Build.create () in
  let entity () =
    if Prng.int rng 4 = 0 then Build.any_entity b ()
    else Build.entity b (pick_tag rng)
  in
  let n0 = entity () in
  let cond =
    match Prng.int rng 3 with
    | 0 -> []
    | 1 -> [ Re (Printf.sprintf "n%d" (Prng.int rng 10)) ]
    | _ -> [ Cmp (Neq, Gql_data.Value.string "n1") ]
  in
  let v = Build.value b ~cond () in
  Build.edge b ~label:"id" n0 v;
  if Prng.int rng 2 = 0 then begin
    let n1 = entity () in
    let re = Gql_lang.Label_re.parse (Prng.pick rng path_res) in
    Build.regex b re n0 n1
  end;
  if Prng.int rng 5 = 0 then Build.negated b ~label:"ref" n0 (Build.any_entity b ());
  (match Prng.int rng 3 with
  | 0 -> () (* pure goal *)
  | 1 ->
    let e = Build.entity b ~role:Construct "derived" in
    Build.derive b ~label:"marked" e n0
  | _ -> Build.collect b (Build.entity b ~role:Construct "bag") n0);
  let p = { schema = None; rules = [ Build.finish b ] } in
  (match check_program p with
  | [] -> ()
  | errs ->
    failwith ("casegen produced ill-formed WG-Log: " ^ String.concat "; " errs));
  Gql_lang.Pp.wglog_program p

(* --- textual MATCH queries --------------------------------------------- *)

(* Over an encoded document, containment edges carry the empty name (so
   only [-[]->] and path wildcards traverse them), attribute slots are
   named ("id" on every generated element, "ref" sometimes), and
   complex-node labels are the element tags.  The generator builds an
   AST and prints it, so every case also exercises {!Gql_match.Pp} and
   the parser — the same route a served RUN takes. *)
let match_path_specs =
  [| "."; ".."; ".+"; ".?"; "id|ref"; ".*"; "(id|ref)*"; ".+.?"; "id*ref?"; ".."; "(.id?)+" |]

let gen_match rng : string =
  let open Gql_match.Ast in
  let nv = ref 0 in
  let vars = ref [] in
  let fresh_var () =
    let v = Printf.sprintf "v%d" !nv in
    incr nv;
    vars := v :: !vars;
    v
  in
  let pick_var () = List.nth !vars (Prng.int rng (List.length !vars)) in
  let fresh_node ~label_one_in =
    let l = if Prng.int rng label_one_in = 0 then Some (pick_tag rng) else None in
    { n_var = Some (fresh_var ()); n_label = l }
  in
  let dst_node () =
    if Prng.int rng 4 = 0 then
      (* anonymous: still constrains the pattern, cannot be returned *)
      { n_var = None;
        n_label = (if Prng.bool rng then Some (pick_tag rng) else None) }
    else fresh_node ~label_one_in:2
  in
  let edge () =
    let e_var =
      if Prng.int rng 6 = 0 then Some (Printf.sprintf "e%d" (Prng.int rng 10))
      else None
    in
    match Prng.int rng 8 with
    | 0 | 1 | 2 -> { e_var; e_spec = Any; e_dir = Out }
    | 3 -> { e_var; e_spec = Any; e_dir = In }
    | 4 -> { e_var; e_spec = Label "id"; e_dir = Out }
    | 5 -> { e_var; e_spec = Label "ref"; e_dir = Out }
    (* no In-direction path edges: backward closure over a path regex
       costs a whole-graph scan per binding, and adds no coverage *)
    | _ -> { e_var; e_spec = Regex (Prng.pick rng match_path_specs); e_dir = Out }
  in
  let chain_from head n_hops =
    { head; hops = List.init n_hops (fun _ -> (edge (), dst_node ())) }
  in
  let clauses = ref [] in
  let add c = clauses := c :: !clauses in
  add (Match (chain_from (fresh_node ~label_one_in:2) (1 + Prng.int rng 3)));
  (* sometimes a second chain, anchored on a bound variable so the
     pattern stays connected (no cross-product blow-up) *)
  if Prng.int rng 3 = 0 then
    add
      (Match (chain_from { n_var = Some (pick_var ()); n_label = None } 1));
  if Prng.int rng 3 = 0 then begin
    let cond () =
      let v = pick_var () in
      match Prng.int rng 5 with
      | 0 -> { lhs = Var v; op = Ne; rhs = Lit (Gql_data.Value.string "n1") }
      | 1 -> { lhs = Var v; op = Lt; rhs = Lit (Gql_data.Value.int (Prng.int rng 1000)) }
      | 2 -> { lhs = Var v; op = Ge; rhs = Lit (Gql_data.Value.int (Prng.int rng 1000)) }
      | 3 -> { lhs = Var v; op = Eq; rhs = Var (pick_var ()) }
      | _ ->
        { lhs = Var v; op = Le;
          rhs = Lit (Gql_data.Value.Float (float_of_int (Prng.int rng 100) /. 4.)) }
    in
    let c0 = cond () in
    add (Where (if Prng.int rng 3 = 0 then [ c0; cond () ] else [ c0 ]))
  end;
  if Prng.int rng 4 = 0 then begin
    let a = { n_var = Some (pick_var ()); n_label = None } in
    let inner =
      if Prng.bool rng then
        (* both endpoints bound: lowers to an in-search Negated edge *)
        { head = a;
          hops =
            [ ( { e_var = None;
                  e_spec = (if Prng.bool rng then Any else Label "ref");
                  e_dir = Out },
                { n_var = Some (pick_var ()); n_label = None } ) ] }
      else
        (* fresh labelled endpoint: becomes an exists-subpattern residual *)
        { head = a;
          hops =
            [ ( { e_var = None; e_spec = Any; e_dir = Out },
                { n_var = None; n_label = Some (pick_tag rng) } ) ] }
    in
    add (Not_exists inner)
  end;
  let pool = List.rev !vars in
  let n_rets = 1 + Prng.int rng (min 2 (List.length pool)) in
  let returns =
    List.filteri (fun i _ -> i < n_rets) pool
    |> List.map (fun v -> if Prng.bool rng then Node v else Value v)
  in
  let q = { clauses = List.rev !clauses; returns } in
  Gql_match.Pp.query q

(* --- label regexes for the path oracle ---------------------------------- *)

let regex_labels = [| "a"; "b"; "c"; "." |]

let gen_regex rng : string =
  let buf = Buffer.create 16 in
  let rec atom depth =
    if depth < 3 && Prng.int rng 3 = 0 then begin
      Buffer.add_char buf '(';
      alt (depth + 1);
      Buffer.add_char buf ')'
    end
    else Buffer.add_string buf (Prng.pick rng regex_labels)
  and postfix depth =
    atom depth;
    (* starred forms dominate: closure nesting is where the flat
       engine's ε-elimination and frontier reuse earn their keep *)
    match Prng.int rng 5 with
    | 0 | 1 -> Buffer.add_char buf '*'
    | 2 -> Buffer.add_char buf '+'
    | 3 -> Buffer.add_char buf '?'
    | _ -> ()
  and seq depth =
    postfix depth;
    while Prng.int rng 2 = 0 do
      postfix depth
    done
  and alt depth =
    seq depth;
    if Prng.int rng 3 = 0 then begin
      Buffer.add_char buf '|';
      seq depth
    end
  in
  alt 0;
  Buffer.contents buf

(** The labelled digraph of the regular-path oracle, regenerable from
    its own seed (so a repro needs only [graph_seed], not the edges). *)
let gen_graph ~graph_seed : (unit, string) Gql_graph.Digraph.t =
  let rng = Prng.create graph_seed in
  let n = 4 + Prng.int rng 21 in
  let g = Gql_graph.Digraph.create ~dummy:() in
  let nodes = Array.init n (fun _ -> Gql_graph.Digraph.add_node g ()) in
  let m = n * (1 + Prng.int rng 3) in
  for _ = 1 to m do
    let src = nodes.(Prng.int rng n) and dst = nodes.(Prng.int rng n) in
    Gql_graph.Digraph.add_edge g ~src ~dst regex_labels.(Prng.int rng 3)
  done;
  g

(* --- a full case ------------------------------------------------------- *)

let generate ~seed : case =
  let rng = Prng.create seed in
  let xml = gen_doc rng in
  let xmlgl_src = gen_xmlgl rng in
  let wglog_src = gen_wglog rng in
  let graph_seed = Prng.int rng 1_000_000 in
  let regex_src = gen_regex rng in
  (* drawn last so the artifacts above keep their per-seed bytes from
     before the MATCH front-end existed *)
  let match_src = gen_match rng in
  { seed; xml; xmlgl_src; wglog_src; graph_seed; regex_src; match_src }
