(** Greedy minimization of a failing (document, query) pair.

    The shrinker never sees the oracle: it is handed a [still_fails]
    predicate (re-run the failing oracle on candidate inputs) and a
    [parses] predicate (candidate queries must stay syntactically
    valid, or the repro would demonstrate a parse error instead of the
    original disagreement).  Both phases are greedy fixpoints:

    - documents shrink by deleting one element subtree at a time,
      largest first, so one accepted deletion removes as much as
      possible;
    - queries shrink by dropping one line of the program body at a
      time (the concrete syntaxes are line-oriented: one box, circle,
      node, edge or clause per line); a [MATCH] source additionally
      shrinks *within* clauses through {!Gql_match.Reduce.candidates} —
      dropping a trailing hop, a WHERE conjunct or a RETURN column.

    Alternating doc/query rounds run until neither side improves. *)

(* Addresses of deletable element subtrees: a path of child indexes
   from the root.  The root itself is never a candidate — an empty
   document is not well-formed. *)
let subtree_paths (root : Gql_xml.Tree.element) : int list list =
  let acc = ref [] in
  let rec walk (e : Gql_xml.Tree.element) (path : int list) =
    List.iteri
      (fun i node ->
        match node with
        | Gql_xml.Tree.Element child ->
          acc := List.rev (i :: path) :: !acc;
          walk child (i :: path)
        | Gql_xml.Tree.Text _ ->
          (* text slots participate too: a failure may hinge on one value *)
          acc := List.rev (i :: path) :: !acc
        | _ -> ())
      e.Gql_xml.Tree.children
  in
  walk root [];
  !acc

let remove_at (root : Gql_xml.Tree.element) (path : int list) :
    Gql_xml.Tree.element =
  let rec go e = function
    | [] -> e
    | [ last ] ->
      { e with
        Gql_xml.Tree.children =
          List.filteri (fun i _ -> i <> last) e.Gql_xml.Tree.children
      }
    | i :: rest ->
      { e with
        Gql_xml.Tree.children =
          List.mapi
            (fun j node ->
              match node with
              | Gql_xml.Tree.Element child when j = i ->
                Gql_xml.Tree.Element (go child rest)
              | node -> node)
            e.Gql_xml.Tree.children
      }
  in
  go root path

(* Subtree size, to try big deletions first. *)
let rec el_size (e : Gql_xml.Tree.element) =
  1
  + List.fold_left
      (fun n -> function
        | Gql_xml.Tree.Element c -> n + el_size c
        | _ -> n + 1)
      0 e.Gql_xml.Tree.children

let size_at (root : Gql_xml.Tree.element) (path : int list) : int =
  let rec go e = function
    | [] -> el_size e
    | i :: rest -> (
      match List.nth_opt e.Gql_xml.Tree.children i with
      | Some (Gql_xml.Tree.Element c) -> go c rest
      | Some _ -> 1
      | None -> 0)
  in
  go root path

let shrink_doc ~(still_fails : xml:string -> source:string -> bool)
    ~(source : string) (xml : string) : string =
  match Gql_xml.Parser.parse_document_result xml with
  | Error _ -> xml
  | Ok doc ->
    let improved = ref true in
    let current = ref doc.Gql_xml.Tree.root in
    while !improved do
      improved := false;
      let candidates =
        subtree_paths !current
        |> List.map (fun p -> (size_at !current p, p))
        |> List.sort (fun (a, _) (b, _) -> compare b a)
        |> List.map snd
      in
      List.iter
        (fun path ->
          if not !improved then begin
            let smaller = remove_at !current path in
            let xml' =
              Gql_xml.Printer.to_string
                { doc with Gql_xml.Tree.root = smaller }
            in
            if still_fails ~xml:xml' ~source then begin
              current := smaller;
              improved := true
            end
          end)
        candidates
    done;
    Gql_xml.Printer.to_string { doc with Gql_xml.Tree.root = !current }

let shrink_query ~(parses : string -> bool)
    ~(still_fails : xml:string -> source:string -> bool) ~(xml : string)
    (source : string) : string =
  let improved = ref true in
  let current = ref source in
  while !improved do
    improved := false;
    let lines = String.split_on_char '\n' !current in
    let n = List.length lines in
    let rec try_drop i =
      if i < n && not !improved then begin
        let candidate =
          lines
          |> List.filteri (fun j _ -> j <> i)
          |> String.concat "\n"
        in
        if parses candidate && still_fails ~xml ~source:candidate then begin
          current := candidate;
          improved := true
        end
        else try_drop (i + 1)
      end
    in
    try_drop 0;
    (* clause-internal reductions for MATCH sources (no-ops elsewhere:
       candidates is empty when the source is not a MATCH query) *)
    if not !improved then
      List.iter
        (fun candidate ->
          if
            (not !improved) && parses candidate
            && still_fails ~xml ~source:candidate
          then begin
            current := candidate;
            improved := true
          end)
        (Gql_match.Reduce.candidates !current)
  done;
  !current

(** Minimize both artifacts of a failing case.  [xml] may be [""] (the
    graph oracle has no document); the query phase likewise accepts any
    string the [parses] predicate owns — a program or a label regex. *)
let minimize ~(parses : string -> bool)
    ~(still_fails : xml:string -> source:string -> bool) ~(xml : string)
    ~(source : string) : string * string =
  let xml = ref xml and source = ref source in
  let changed = ref true in
  (* alternate: a smaller doc can unlock query lines and vice versa *)
  while !changed do
    changed := false;
    if !xml <> "" then begin
      let xml' = shrink_doc ~still_fails ~source:!source !xml in
      if xml' <> !xml then begin
        xml := xml';
        changed := true
      end
    end;
    let source' = shrink_query ~parses ~still_fails ~xml:!xml !source in
    if source' <> !source then begin
      source := source';
      changed := true
    end
  done;
  (!xml, !source)
