(** The seven differential oracles.

    Each oracle evaluates the same question along two redundant paths
    that share as little code as possible and demands byte-identical
    answers:

    - {!scan_vs_index}: embedding search with scan candidates vs. the
      frozen index provider (same embeddings, same order);
    - {!digraph_vs_csr}: regular-path reachability over the mutable
      [Digraph] vs. the frozen [Csr] view (both sorted);
    - {!engine_vs_algebra}: the direct XML-GL matcher vs. the algebra
      planner/executor under both join strategies (compared as sorted
      binding sets — plan order is not part of the contract);
    - {!direct_vs_served}: in-process evaluation vs. a [gql serve]
      round-trip, cold and cached;
    - {!seq_vs_par}: 1-domain vs. N-domain evaluation — bindings, goal
      embeddings, fixpoint statistics and the derived graph must all be
      byte-identical (the determinism guarantee of [Gql_graph.Par]);
    - {!match_vs_algebra}: the textual [MATCH] front-end — parse→pp→parse
      identity, then the canonical result body along four in-process
      routes (direct matcher scan/indexed, algebra greedy/fixed) and
      through a served round-trip, cold and cached;
    - {!loaded_vs_frozen}: a freshly frozen index vs. the same index
      after a {!Gql_data.Store} save/load round-trip — every engine
      must answer byte-identically on the loaded flat planes, and the
      lazily thawed graph must fingerprint the same.

    Any disagreement — including one side raising where the other
    answers — is a {!Fail}; uncaught exceptions are converted to
    failures by the driver.  Every oracle takes plain strings so the
    shrinker can re-run it on candidate inputs. *)

type name =
  | Scan_vs_index
  | Digraph_vs_csr
  | Engine_vs_algebra
  | Direct_vs_served
  | Seq_vs_par
  | Match_vs_algebra
  | Loaded_vs_frozen

let all =
  [ Scan_vs_index; Digraph_vs_csr; Engine_vs_algebra; Direct_vs_served;
    Seq_vs_par; Match_vs_algebra; Loaded_vs_frozen ]

let to_string = function
  | Scan_vs_index -> "scan-vs-index"
  | Digraph_vs_csr -> "digraph-vs-csr"
  | Engine_vs_algebra -> "engine-vs-algebra"
  | Direct_vs_served -> "direct-vs-served"
  | Seq_vs_par -> "seq-vs-par"
  | Match_vs_algebra -> "match-vs-algebra"
  | Loaded_vs_frozen -> "loaded-vs-frozen"

let of_string = function
  | "scan-vs-index" -> Some Scan_vs_index
  | "digraph-vs-csr" -> Some Digraph_vs_csr
  | "engine-vs-algebra" -> Some Engine_vs_algebra
  | "direct-vs-served" -> Some Direct_vs_served
  | "seq-vs-par" -> Some Seq_vs_par
  | "match-vs-algebra" -> Some Match_vs_algebra
  | "loaded-vs-frozen" -> Some Loaded_vs_frozen
  | _ -> None

type verdict = Pass | Fail of string

let failf fmt = Printf.ksprintf (fun s -> Fail s) fmt

(* Evaluate a thunk to a result-or-error; the typed errors the engines
   may legitimately raise become comparable [Error] values, so an
   oracle can also check that both paths *reject* an input. *)
let capture (f : unit -> 'a) : ('a, string) result =
  match f () with
  | v -> Ok v
  | exception Gql_core.Gql.Error msg -> Error ("gql: " ^ msg)
  | exception Gql_wglog.Eval.Invalid_query msg -> Error ("invalid query: " ^ msg)
  | exception Gql_xmlgl.Construct.Invalid_query msg ->
    Error ("invalid query: " ^ msg)
  | exception Gql_xmlgl.Engine.Ill_formed errs ->
    Error ("invalid query: " ^ String.concat "; " errs)
  | exception Gql_match.Parse.Error msg -> Error ("match parse: " ^ msg)
  | exception Gql_match.Compile.Error msg -> Error ("invalid query: " ^ msg)
  | exception Failure msg -> Error ("failure: " ^ msg)

let norm_bindings (bs : int array list) : int list list =
  List.sort compare (List.map Array.to_list bs)

(* ------------------------------------------------------------------ *)
(* (a) scan vs. indexed candidates                                     *)
(* ------------------------------------------------------------------ *)

let scan_vs_index ~(xml : string) ~(source : string) : verdict =
  match capture (fun () -> Gql_core.Gql.load_xml_string xml) with
  | Error e -> failf "document rejected: %s" e
  | Ok db -> (
    let data = db.Gql_core.Gql.graph in
    match Gql_core.Gql.language_of_source source with
    | `Xmlgl -> (
      let run use_index =
        capture (fun () ->
            let p = Gql_core.Gql.parse_xmlgl source in
            List.concat_map
              (fun (r : Gql_xmlgl.Ast.rule) ->
                if use_index then
                  Gql_xmlgl.Engine.query_bindings ~index:(Gql_core.Gql.index db)
                    data r.Gql_xmlgl.Ast.query
                else Gql_xmlgl.Engine.query_bindings data r.Gql_xmlgl.Ast.query)
              p.Gql_xmlgl.Ast.rules)
      in
      match run false, run true with
      | Ok scan, Ok indexed ->
        if List.equal (fun a b -> a = b) (List.map Array.to_list scan)
             (List.map Array.to_list indexed)
        then Pass
        else
          failf "xmlgl bindings differ: scan=%d indexed=%d" (List.length scan)
            (List.length indexed)
      | Error a, Error b -> if a = b then Pass else failf "errors differ: %s / %s" a b
      | Ok _, Error e -> failf "indexed raised where scan answered: %s" e
      | Error e, Ok _ -> failf "scan raised where indexed answered: %s" e)
    | `Wglog -> (
      let run use_index =
        capture (fun () ->
            let p = Gql_core.Gql.parse_wglog source in
            List.concat_map
              (fun r ->
                if use_index then
                  Gql_wglog.Eval.goal ~index:(Gql_core.Gql.index db) data r
                else Gql_wglog.Eval.goal data r)
              p.Gql_wglog.Ast.rules)
      in
      match run false, run true with
      | Ok scan, Ok indexed ->
        if List.map Array.to_list scan = List.map Array.to_list indexed then Pass
        else
          failf "wglog embeddings differ: scan=%d indexed=%d" (List.length scan)
            (List.length indexed)
      | Error a, Error b -> if a = b then Pass else failf "errors differ: %s / %s" a b
      | Ok _, Error e -> failf "indexed raised where scan answered: %s" e
      | Error e, Ok _ -> failf "scan raised where indexed answered: %s" e)
    | `Match -> (
      let run use_index =
        capture (fun () ->
            let q = Gql_core.Gql.parse_match source in
            let c = Gql_match.Compile.compile q in
            let index = if use_index then Some (Gql_core.Gql.index db) else None in
            Gql_match.Eval.bindings ?index data c)
      in
      match run false, run true with
      | Ok scan, Ok indexed ->
        if List.map Array.to_list scan = List.map Array.to_list indexed then Pass
        else
          failf "match embeddings differ: scan=%d indexed=%d" (List.length scan)
            (List.length indexed)
      | Error a, Error b -> if a = b then Pass else failf "errors differ: %s / %s" a b
      | Ok _, Error e -> failf "indexed raised where scan answered: %s" e
      | Error e, Ok _ -> failf "scan raised where indexed answered: %s" e)
    | `Unknown -> failf "query source has no language header")

(* ------------------------------------------------------------------ *)
(* (b) Digraph vs. frozen Csr regular-path search                      *)
(* ------------------------------------------------------------------ *)

let digraph_vs_csr ~(graph_seed : int) ~(regex_src : string) : verdict =
  match Gql_lang.Label_re.parse regex_src with
  (* a regex the parser refuses is vacuous for this oracle; the
     parse-error path has its own unit tests *)
  | exception Gql_lang.Label_re.Error _ -> Pass
  | re -> (
    let g = Casegen.gen_graph ~graph_seed in
    let rp =
      Gql_graph.Regpath.compile
        (fun sym lbl -> Gql_lang.Label_re.symbol_matches sym lbl)
        re
    in
    let frozen = Gql_graph.Csr.freeze g in
    let n = Gql_graph.Digraph.n_nodes g in
    let rec check_from s =
      if s >= n then Pass
      else
        let live = Gql_graph.Regpath.reachable rp g s in
        let cold = Gql_graph.Regpath.reachable_frozen rp frozen s in
        if live <> cold then
          failf "reachable sets differ from node %d under /%s/: live=%d frozen=%d"
            s regex_src (List.length live) (List.length cold)
        else check_from (s + 1)
    in
    check_from 0)

(* ------------------------------------------------------------------ *)
(* (c) direct engine vs. algebra planner/exec                          *)
(* ------------------------------------------------------------------ *)

let engine_vs_algebra ~(xml : string) ~(source : string) : verdict =
  match Gql_core.Gql.language_of_source source with
  | `Wglog | `Unknown -> Pass (* the algebra path plans XML-GL queries *)
  | `Match -> Pass (* covered, more strictly, by match_vs_algebra *)
  | `Xmlgl -> (
    match
      capture (fun () ->
          let db = Gql_core.Gql.load_xml_string xml in
          let p = Gql_core.Gql.parse_xmlgl source in
          (db, p))
    with
    | Error e -> failf "inputs rejected: %s" e
    | Ok (db, p) ->
      let data = db.Gql_core.Gql.graph in
      let idx = Gql_core.Gql.index db in
      let rec rules = function
        | [] -> Pass
        | (r : Gql_xmlgl.Ast.rule) :: rest -> (
          let q = r.Gql_xmlgl.Ast.query in
          let direct =
            capture (fun () -> norm_bindings (Gql_xmlgl.Matching.run ~index:idx data q))
          in
          let planned strategy =
            capture (fun () ->
                norm_bindings (Gql_algebra.Exec.run_xmlgl ~strategy ~index:idx data q))
          in
          match direct, planned `Greedy, planned `Fixed with
          | Ok d, Ok g, Ok f ->
            if d = g && d = f then rules rest
            else
              failf "binding sets differ: direct=%d greedy=%d fixed=%d"
                (List.length d) (List.length g) (List.length f)
          | Error a, Error b, Error c ->
            if a = b && a = c then rules rest
            else failf "errors differ: %s / %s / %s" a b c
          | d, g, f ->
            let s = function Ok _ -> "ok" | Error e -> e in
            failf "one path raised: direct=%s greedy=%s fixed=%s" (s d) (s g) (s f))
      in
      rules p.Gql_xmlgl.Ast.rules)

(* ------------------------------------------------------------------ *)
(* (d) direct vs. served (cold and cached)                             *)
(* ------------------------------------------------------------------ *)

type transport = Gql_server.Protocol.request -> Gql_server.Protocol.response
(** One service request; either a socket round-trip or the in-process
    [handle_payload] — the corpus replays use the latter so tier-1
    tests need no sockets. *)

let socket_transport (c : Gql_server.Client.t) : transport =
  fun req -> Gql_server.Client.request c req

let inproc_transport (s : Gql_server.Server.t) : transport =
  fun req ->
    Gql_server.Protocol.parse_response
      (Gql_server.Server.handle_payload s (Gql_server.Protocol.render_request req))

(** What direct evaluation answers for [source] over [xml]: exactly the
    body a [RUN] response carries, or a typed error. *)
let direct_body ~xml ~source : (string, string) result =
  capture (fun () ->
      let db = Gql_core.Gql.load_xml_string xml in
      match Gql_core.Gql.language_of_source source with
      | `Xmlgl ->
        Gql_core.Gql.to_xml_string
          (Gql_core.Gql.run_xmlgl db (Gql_core.Gql.parse_xmlgl source))
      | `Wglog ->
        Gql_server.Server.wglog_stats_line
          (Gql_core.Gql.run_wglog db (Gql_core.Gql.parse_wglog source))
      | `Match -> fst (Gql_core.Gql.run_match db (Gql_core.Gql.parse_match source))
      | `Unknown ->
        failwith "query source must start with 'xmlgl', 'wglog' or 'match'")

let direct_vs_served (t : transport) ~(doc_name : string) ~(xml : string)
    ~(source : string) : verdict =
  let load = t (Gql_server.Protocol.Load { doc = doc_name; xml }) in
  let direct_db = capture (fun () -> ignore (Gql_core.Gql.load_xml_string xml)) in
  match load, direct_db with
  | Gql_server.Protocol.Err _, Error _ -> Pass (* both reject the document *)
  | Gql_server.Protocol.Err msg, Ok () -> failf "served LOAD rejected: %s" msg
  | (Gql_server.Protocol.Ok_ _ | Gql_server.Protocol.Timeout _), Error e ->
    failf "direct load rejected where served LOAD answered: %s" e
  | Gql_server.Protocol.Timeout _, Ok () -> Fail "LOAD timed out"
  | Gql_server.Protocol.Ok_ _, Ok () -> (
    let direct = direct_body ~xml ~source in
    let run () =
      t
        (Gql_server.Protocol.Run
           { doc = doc_name; query = `Source source; schema = None; deadline_ms = None })
    in
    let check_one label (resp : Gql_server.Protocol.response) =
      match direct, resp with
      | Ok body, Gql_server.Protocol.Ok_ { body = served; _ } ->
        if body = served then Pass
        else failf "%s body differs (%d vs %d bytes)" label (String.length body)
               (String.length served)
      | Error _, Gql_server.Protocol.Err _ -> Pass
      | Ok _, Gql_server.Protocol.Err msg -> failf "%s served ERR: %s" label msg
      | Error e, Gql_server.Protocol.Ok_ _ ->
        failf "%s direct raised where served answered: %s" label e
      | _, Gql_server.Protocol.Timeout _ -> failf "%s timed out" label
    in
    match check_one "cold" (run ()) with
    | Fail _ as f -> f
    | Pass -> check_one "cached" (run ()))

(* ------------------------------------------------------------------ *)
(* (e) sequential vs. domain-parallel evaluation                       *)
(* ------------------------------------------------------------------ *)

let par_domains = 3
(* enough to exercise spawning, chunk hand-off and ordered merge even
   on a small machine; the answer must not depend on the count *)

(* Everything observable about a graph, in deterministic order — node
   kinds plus every edge with its full payload (incl. generation
   stamps), so two fixpoint runs compare byte-for-byte. *)
let graph_fingerprint (data : Gql_data.Graph.t) =
  let nodes =
    List.rev
      (Gql_graph.Digraph.fold_nodes
         (fun acc i kind -> (i, kind) :: acc)
         [] (Gql_data.Graph.digraph data))
  in
  let edges = ref [] in
  Gql_graph.Digraph.iter_edges
    (fun ~src ~dst (e : Gql_data.Graph.edge) -> edges := (src, dst, e) :: !edges)
    (Gql_data.Graph.digraph data);
  (nodes, List.rev !edges)

let seq_vs_par ~(xml : string) ~(source : string) : verdict =
  match Gql_core.Gql.language_of_source source with
  | `Unknown -> failf "query source has no language header"
  | `Xmlgl -> (
    let run domains =
      capture (fun () ->
          let db = Gql_core.Gql.load_xml_string xml in
          let p = Gql_core.Gql.parse_xmlgl source in
          List.concat_map
            (fun (r : Gql_xmlgl.Ast.rule) ->
              Gql_xmlgl.Engine.query_bindings ~index:(Gql_core.Gql.index db)
                ~domains db.Gql_core.Gql.graph r.Gql_xmlgl.Ast.query)
            p.Gql_xmlgl.Ast.rules)
    in
    match run 1, run par_domains with
    | Ok seq, Ok par ->
      if List.map Array.to_list seq = List.map Array.to_list par then Pass
      else
        failf "xmlgl bindings differ: seq=%d par=%d" (List.length seq)
          (List.length par)
    | Error a, Error b -> if a = b then Pass else failf "errors differ: %s / %s" a b
    | Ok _, Error e -> failf "parallel raised where sequential answered: %s" e
    | Error e, Ok _ -> failf "sequential raised where parallel answered: %s" e)
  | `Match -> (
    (* raw embedding order through both the direct matcher and the
       algebra executor must not depend on the domain count *)
    let run domains =
      capture (fun () ->
          let db = Gql_core.Gql.load_xml_string xml in
          let q = Gql_core.Gql.parse_match source in
          let c = Gql_match.Compile.compile q in
          let index = Gql_core.Gql.index db in
          let data = db.Gql_core.Gql.graph in
          ( List.map Array.to_list (Gql_match.Eval.bindings ~index ~domains data c),
            List.map Array.to_list
              (Gql_match.Eval.bindings_algebra ~index ~domains data c) ))
    in
    match run 1, run par_domains with
    | Ok seq, Ok par ->
      if seq = par then Pass
      else
        failf "match bindings differ: seq=%d/%d par=%d/%d"
          (List.length (fst seq)) (List.length (snd seq))
          (List.length (fst par)) (List.length (snd par))
    | Error a, Error b -> if a = b then Pass else failf "errors differ: %s / %s" a b
    | Ok _, Error e -> failf "parallel raised where sequential answered: %s" e
    | Error e, Ok _ -> failf "sequential raised where parallel answered: %s" e)
  | `Wglog -> (
    (* goal embeddings AND the full fixpoint (stats + derived graph) *)
    let run domains =
      capture (fun () ->
          let db = Gql_core.Gql.load_xml_string xml in
          let p = Gql_core.Gql.parse_wglog source in
          let goals =
            List.concat_map
              (fun r ->
                List.map Array.to_list
                  (Gql_wglog.Eval.goal ~index:(Gql_core.Gql.index db) ~domains
                     db.Gql_core.Gql.graph r))
              p.Gql_wglog.Ast.rules
          in
          let g = Gql_data.Graph.copy db.Gql_core.Gql.graph in
          let stats = Gql_wglog.Eval.run ~domains g p in
          (goals, stats, graph_fingerprint g))
    in
    match run 1, run par_domains with
    | Ok (gs, ss, fs), Ok (gp, sp, fp) ->
      if gs <> gp then
        failf "wglog goal embeddings differ: seq=%d par=%d" (List.length gs)
          (List.length gp)
      else if ss <> sp then
        failf "fixpoint stats differ: seq=%d/%d/%d/%d par=%d/%d/%d/%d"
          ss.Gql_wglog.Eval.rounds ss.embeddings_found ss.nodes_added
          ss.edges_added sp.Gql_wglog.Eval.rounds sp.embeddings_found
          sp.nodes_added sp.edges_added
      else if fs <> fp then Fail "derived graphs differ"
      else Pass
    | Error a, Error b -> if a = b then Pass else failf "errors differ: %s / %s" a b
    | Ok _, Error e -> failf "parallel raised where sequential answered: %s" e
    | Error e, Ok _ -> failf "sequential raised where parallel answered: %s" e)

(* ------------------------------------------------------------------ *)
(* (f) the textual MATCH front-end vs. everything else                 *)
(* ------------------------------------------------------------------ *)

(** Three checks on one generated [MATCH] text:

    - printing the parsed query and re-parsing it must give back the
      same AST, and printing again the same text (pp is a retraction);
    - the canonical result body must be byte-identical along four
      in-process routes that share only the compiled pattern: the direct
      homomorphism matcher with scan candidates, the same with the index
      provider, and the algebra executor under both planner strategies
      (or all four must reject with the same message);
    - with a transport, the same body must come back from a served
      round-trip, cold and cached ([Rcache] on).

    Routes are compared as rendered text, not embeddings, because the
    rendered body is the public contract of the textual front-end. *)
let match_vs_algebra (transport : transport option) ~(doc_name : string)
    ~(xml : string) ~(source : string) : verdict =
  match Gql_match.Parse.parse_result source with
  | Error msg -> failf "MATCH source does not parse: %s" msg
  | Ok q -> (
    let printed = Gql_match.Pp.query q in
    match Gql_match.Parse.parse_result printed with
    | Error msg -> failf "pretty-printed query does not re-parse: %s" msg
    | Ok q2 when q2 <> q -> Fail "pp roundtrip changed the AST"
    | Ok _ when Gql_match.Pp.query (Gql_match.Parse.parse printed) <> printed ->
      Fail "pp is not idempotent"
    | Ok _ -> (
      match capture (fun () -> Gql_core.Gql.load_xml_string xml) with
      | Error e -> failf "document rejected: %s" e
      | Ok db -> (
        let data = db.Gql_core.Gql.graph in
        let route f =
          capture (fun () ->
              let c = Gql_match.Compile.compile q in
              Gql_match.Eval.body data c (f c))
        in
        let routes =
          [
            ("homo-scan", route (fun c -> Gql_match.Eval.bindings data c));
            ( "homo-indexed",
              route (fun c ->
                  Gql_match.Eval.bindings ~index:(Gql_core.Gql.index db) data c)
            );
            ( "algebra-greedy",
              route (fun c ->
                  Gql_match.Eval.bindings_algebra ~strategy:`Greedy
                    ~index:(Gql_core.Gql.index db) data c) );
            ( "algebra-fixed",
              route (fun c ->
                  Gql_match.Eval.bindings_algebra ~strategy:`Fixed
                    ~index:(Gql_core.Gql.index db) data c) );
            ( "algebra-cost",
              route (fun c ->
                  Gql_match.Eval.bindings_algebra ~strategy:`Cost
                    ~index:(Gql_core.Gql.index db) data c) );
            ( "algebra-noindex",
              route (fun c -> Gql_match.Eval.bindings_algebra data c) );
          ]
        in
        let disagreement =
          match routes with
          | [] -> None
          | (ref_label, ref_res) :: rest ->
            List.find_map
              (fun (label, res) ->
                match ref_res, res with
                | Ok a, Ok b when a = b -> None
                | Error a, Error b when a = b -> None
                | _ ->
                  let s = function Ok _ -> "ok" | Error e -> e in
                  Some
                    (Printf.sprintf "%s and %s disagree (%s / %s)" ref_label
                       label (s ref_res) (s res)))
              rest
        in
        match disagreement with
        | Some msg -> Fail msg
        | None -> (
          match transport with
          | None -> Pass
          | Some t -> (
            match t (Gql_server.Protocol.Load { doc = doc_name; xml }) with
            | Gql_server.Protocol.Err msg -> failf "served LOAD rejected: %s" msg
            | Gql_server.Protocol.Timeout _ -> Fail "LOAD timed out"
            | Gql_server.Protocol.Ok_ _ -> (
              (* the server evaluates MATCH through the algebra (greedy,
                 indexed): compare against that same route's body *)
              let direct =
                List.assoc "algebra-greedy" routes
              in
              let run () =
                t
                  (Gql_server.Protocol.Run
                     {
                       doc = doc_name;
                       query = `Source source;
                       schema = None;
                       deadline_ms = None;
                     })
              in
              let check_one label (resp : Gql_server.Protocol.response) =
                match direct, resp with
                | Ok body, Gql_server.Protocol.Ok_ { body = served; _ } ->
                  if body = served then Pass
                  else
                    failf "%s body differs (%d vs %d bytes)" label
                      (String.length body) (String.length served)
                | Error _, Gql_server.Protocol.Err _ -> Pass
                | Ok _, Gql_server.Protocol.Err msg ->
                  failf "%s served ERR: %s" label msg
                | Error e, Gql_server.Protocol.Ok_ _ ->
                  failf "%s direct raised where served answered: %s" label e
                | _, Gql_server.Protocol.Timeout _ -> failf "%s timed out" label
              in
              match check_one "cold" (run ()) with
              | Fail _ as f -> f
              | Pass -> check_one "cached" (run ())))))))

(* ------------------------------------------------------------------ *)
(* (g) freshly frozen vs. snapshot save/load round-trip                *)
(* ------------------------------------------------------------------ *)

(** Freeze the document's index, save it through {!Gql_data.Store},
    load the file back, and demand that the loaded database answers
    byte-identically to the frozen original:

    - [MATCH] sources run all six routes (homomorphism scan/indexed,
      algebra greedy/fixed/cost/no-index) on both databases — the scan
      routes force the lazy [Digraph] thaw, the indexed routes exercise
      the flat postings planes;
    - XML-GL programs compare rendered result documents;
    - WG-Log programs run the fixpoint on a fork of each graph and
      compare the statistics and the full derived-graph fingerprint.

    A save or load that raises is a failure in itself — the generator
    only produces documents the store must accept. *)
let loaded_vs_frozen ~(xml : string) ~(source : string) : verdict =
  match Gql_core.Gql.language_of_source source with
  | `Unknown -> failf "query source has no language header"
  | lang -> (
    match capture (fun () -> Gql_core.Gql.load_xml_string xml) with
    | Error e -> failf "document rejected: %s" e
    | Ok frozen ->
      let tmp = Filename.temp_file "gql-fuzz" ".snap" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          match
            capture (fun () ->
                ignore (Gql_data.Store.save ~path:tmp (Gql_core.Gql.index frozen));
                Gql_core.Gql.load_snapshot_file tmp)
          with
          | Error e -> failf "snapshot round-trip rejected: %s" e
          | Ok loaded -> (
            let pair label a b =
              match a, b with
              | Ok x, Ok y when x = y -> None
              | Error x, Error y when x = y -> None
              | _ ->
                let s = function Ok _ -> "ok" | Error e -> e in
                Some
                  (Printf.sprintf "%s differs frozen-vs-loaded (%s / %s)" label
                     (s a) (s b))
            in
            let disagreement =
              match lang with
              | `Xmlgl ->
                let run (db : Gql_core.Gql.db) =
                  capture (fun () ->
                      Gql_core.Gql.to_xml_string
                        (Gql_core.Gql.run_xmlgl db (Gql_core.Gql.parse_xmlgl source)))
                in
                pair "xmlgl result" (run frozen) (run loaded)
              | `Wglog ->
                let run (db : Gql_core.Gql.db) =
                  capture (fun () ->
                      let g = Gql_data.Graph.copy db.Gql_core.Gql.graph in
                      let fork = Gql_core.Gql.of_graph g in
                      let stats =
                        Gql_core.Gql.run_wglog fork (Gql_core.Gql.parse_wglog source)
                      in
                      ( stats.Gql_wglog.Eval.rounds, stats.embeddings_found,
                        stats.nodes_added, stats.edges_added,
                        graph_fingerprint g ))
                in
                pair "wglog fixpoint" (run frozen) (run loaded)
              | `Match | `Unknown ->
                let routes (db : Gql_core.Gql.db) =
                  let data = db.Gql_core.Gql.graph in
                  let route f =
                    capture (fun () ->
                        let q = Gql_core.Gql.parse_match source in
                        let c = Gql_match.Compile.compile q in
                        Gql_match.Eval.body data c (f c))
                  in
                  [
                    ("homo-scan", route (fun c -> Gql_match.Eval.bindings data c));
                    ( "homo-indexed",
                      route (fun c ->
                          Gql_match.Eval.bindings ~index:(Gql_core.Gql.index db)
                            data c) );
                    ( "algebra-greedy",
                      route (fun c ->
                          Gql_match.Eval.bindings_algebra ~strategy:`Greedy
                            ~index:(Gql_core.Gql.index db) data c) );
                    ( "algebra-fixed",
                      route (fun c ->
                          Gql_match.Eval.bindings_algebra ~strategy:`Fixed
                            ~index:(Gql_core.Gql.index db) data c) );
                    ( "algebra-cost",
                      route (fun c ->
                          Gql_match.Eval.bindings_algebra ~strategy:`Cost
                            ~index:(Gql_core.Gql.index db) data c) );
                    ( "algebra-noindex",
                      route (fun c -> Gql_match.Eval.bindings_algebra data c) );
                  ]
                in
                List.find_map
                  (fun ((label, a), (_, b)) -> pair label a b)
                  (List.combine (routes frozen) (routes loaded))
            in
            match disagreement with Some msg -> Fail msg | None -> Pass)))
