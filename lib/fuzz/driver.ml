(** The fuzz loop: generate, check, shrink, report.

    Case [i] of a run uses seed [base_seed + i], so any failure is
    addressable as a single integer regardless of how many cases ran
    before it — [gql fuzz --seed N --cases 1] replays exactly one.
    Each case fans out into one subcheck per (oracle, artifact) pair;
    a subcheck that fails is minimized with {!Shrink.minimize} against
    its own re-run closure and reported (and written to [out_dir] as a
    {!Corpus.repro} when one is given). *)

module Server = Gql_server.Server
module Client = Gql_server.Client

type config = {
  base_seed : int;
  cases : int;
  oracles : Oracle.name list;
  out_dir : string option;  (** where minimized repros are written *)
  log : string -> unit;
}

type failure = {
  seed : int;
  oracle : Oracle.name;
  detail : string;
  minimized_source : string;
  minimized_xml : string;
  repro_path : string option;
}

type outcome = { cases_run : int; checks_run : int; failures : failure list }

(* An oracle that dies is as much a bug as one that disagrees. *)
let guard (f : unit -> Oracle.verdict) : Oracle.verdict =
  try f () with
  | exn -> Oracle.Fail ("uncaught exception: " ^ Printexc.to_string exn)

let prog_parses (source : string) : bool =
  match Gql_core.Gql.language_of_source source with
  | `Xmlgl -> (
    match Gql_core.Gql.parse_xmlgl source with
    | _ -> true
    | exception _ -> false)
  | `Wglog -> (
    match Gql_core.Gql.parse_wglog source with
    | _ -> true
    | exception _ -> false)
  | `Match -> (
    match Gql_core.Gql.parse_match source with
    | _ -> true
    | exception _ -> false)
  | `Unknown -> false

let regex_parses (source : string) : bool =
  match Gql_lang.Label_re.parse source with
  | _ -> true
  | exception _ -> false

(* One subcheck: the artifacts it starts from and a closure that
   re-judges any candidate pair — the same closure drives both the
   initial verdict and the shrinker. *)
type check = {
  oracle : Oracle.name;
  xml : string;
  source : string;
  parses : string -> bool;
  rerun : xml:string -> source:string -> Oracle.verdict;
}

let checks_for ~(transport : Oracle.transport option)
    ~(fresh_doc : unit -> string) (oracles : Oracle.name list)
    (c : Casegen.case) : check list =
  List.concat_map
    (fun oracle ->
      match oracle with
      | Oracle.Scan_vs_index ->
        List.map
          (fun source ->
            { oracle; xml = c.Casegen.xml; source; parses = prog_parses;
              rerun = (fun ~xml ~source -> Oracle.scan_vs_index ~xml ~source) })
          [ c.Casegen.xmlgl_src; c.Casegen.wglog_src ]
      | Oracle.Engine_vs_algebra ->
        [ { oracle; xml = c.Casegen.xml; source = c.Casegen.xmlgl_src;
            parses = prog_parses;
            rerun = (fun ~xml ~source -> Oracle.engine_vs_algebra ~xml ~source) } ]
      | Oracle.Digraph_vs_csr ->
        [ { oracle; xml = ""; source = c.Casegen.regex_src;
            parses = regex_parses;
            rerun =
              (fun ~xml:_ ~source ->
                Oracle.digraph_vs_csr ~graph_seed:c.Casegen.graph_seed
                  ~regex_src:source) } ]
      | Oracle.Direct_vs_served -> (
        match transport with
        | None -> []
        | Some t ->
          List.map
            (fun source ->
              { oracle; xml = c.Casegen.xml; source; parses = prog_parses;
                rerun =
                  (fun ~xml ~source ->
                    (* each candidate loads under a fresh name so no
                       stale snapshot or cached result can leak in *)
                    Oracle.direct_vs_served t ~doc_name:(fresh_doc ()) ~xml
                      ~source) })
            [ c.Casegen.xmlgl_src; c.Casegen.wglog_src ])
      | Oracle.Seq_vs_par ->
        List.map
          (fun source ->
            { oracle; xml = c.Casegen.xml; source; parses = prog_parses;
              rerun = (fun ~xml ~source -> Oracle.seq_vs_par ~xml ~source) })
          [ c.Casegen.xmlgl_src; c.Casegen.wglog_src; c.Casegen.match_src ]
      | Oracle.Match_vs_algebra ->
        (* the in-process route comparison always runs; the served legs
           join in whenever the fuzz loop has a live server *)
        [ { oracle; xml = c.Casegen.xml; source = c.Casegen.match_src;
            parses = prog_parses;
            rerun =
              (fun ~xml ~source ->
                Oracle.match_vs_algebra transport ~doc_name:(fresh_doc ())
                  ~xml ~source) } ]
      | Oracle.Loaded_vs_frozen ->
        (* one save/load round-trip per source language: the MATCH leg
           exercises all six routes, XML-GL and WG-Log the engines *)
        List.map
          (fun source ->
            { oracle; xml = c.Casegen.xml; source; parses = prog_parses;
              rerun = (fun ~xml ~source -> Oracle.loaded_vs_frozen ~xml ~source) })
          [ c.Casegen.xmlgl_src; c.Casegen.wglog_src; c.Casegen.match_src ]
      )
    oracles

(** Run [f] against a live server over a unix socket; tear both down
    afterwards even if [f] raises. *)
let with_served (f : Oracle.transport -> 'a) : 'a =
  let config =
    { Server.default_config with workers = Some 2; result_cache = 64 }
  in
  let server = Server.create ~config () in
  let path = Filename.temp_file "gql-fuzz" ".sock" in
  Sys.remove path;
  let _listener = Server.listen server (Unix.ADDR_UNIX path) in
  let client = Client.connect_unix path in
  Fun.protect
    ~finally:(fun () ->
      (try Client.close client with _ -> ());
      Server.stop server;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f (Oracle.socket_transport client))

let run (cfg : config) : outcome =
  let body (transport : Oracle.transport option) : outcome =
    let doc_ctr = ref 0 in
    let fresh_doc () =
      incr doc_ctr;
      Printf.sprintf "fuzz%d" !doc_ctr
    in
    let failures = ref [] in
    let checks_run = ref 0 in
    for i = 0 to cfg.cases - 1 do
      let seed = cfg.base_seed + i in
      let case = Casegen.generate ~seed in
      List.iter
        (fun ch ->
          incr checks_run;
          match guard (fun () -> ch.rerun ~xml:ch.xml ~source:ch.source) with
          | Oracle.Pass -> ()
          | Oracle.Fail detail ->
            let still_fails ~xml ~source =
              match guard (fun () -> ch.rerun ~xml ~source) with
              | Oracle.Fail _ -> true
              | Oracle.Pass -> false
            in
            let xml, source =
              Shrink.minimize ~parses:ch.parses ~still_fails ~xml:ch.xml
                ~source:ch.source
            in
            let repro =
              { Corpus.seed; oracle = Oracle.to_string ch.oracle; detail;
                graph_seed = case.Casegen.graph_seed; source; xml }
            in
            let path =
              Option.map (fun dir -> Corpus.write ~dir repro) cfg.out_dir
            in
            cfg.log
              (Printf.sprintf "FAIL seed=%d oracle=%s: %s%s" seed
                 (Oracle.to_string ch.oracle) detail
                 (match path with Some p -> "\n  minimized repro: " ^ p | None -> ""));
            failures :=
              { seed; oracle = ch.oracle; detail; minimized_source = source;
                minimized_xml = xml; repro_path = path }
              :: !failures)
        (checks_for ~transport ~fresh_doc cfg.oracles case);
      if (i + 1) mod 1000 = 0 then
        cfg.log
          (Printf.sprintf "  %d/%d cases, %d checks, %d failure(s)" (i + 1)
             cfg.cases !checks_run
             (List.length !failures))
    done;
    { cases_run = cfg.cases; checks_run = !checks_run;
      failures = List.rev !failures }
  in
  if
    List.exists
      (fun o -> o = Oracle.Direct_vs_served || o = Oracle.Match_vs_algebra)
      cfg.oracles
  then with_served (fun t -> body (Some t))
  else body None

(** Re-judge a stored repro.  [direct-vs-served] replays against a
    fresh in-process server ({!Oracle.inproc_transport}) so corpus
    replay inside [dune runtest] needs no sockets. *)
let replay (r : Corpus.repro) : Oracle.verdict =
  match Oracle.of_string r.oracle with
  | None -> Oracle.Fail ("unknown oracle: " ^ r.oracle)
  | Some Oracle.Scan_vs_index ->
    guard (fun () -> Oracle.scan_vs_index ~xml:r.xml ~source:r.source)
  | Some Oracle.Engine_vs_algebra ->
    guard (fun () -> Oracle.engine_vs_algebra ~xml:r.xml ~source:r.source)
  | Some Oracle.Digraph_vs_csr ->
    guard (fun () ->
        Oracle.digraph_vs_csr ~graph_seed:r.graph_seed ~regex_src:r.source)
  | Some Oracle.Seq_vs_par ->
    guard (fun () -> Oracle.seq_vs_par ~xml:r.xml ~source:r.source)
  | Some Oracle.Direct_vs_served ->
    let config = { Server.default_config with workers = Some 1 } in
    let server = Server.create ~config () in
    Fun.protect
      ~finally:(fun () -> Server.stop server)
      (fun () ->
        guard (fun () ->
            Oracle.direct_vs_served
              (Oracle.inproc_transport server)
              ~doc_name:"repro" ~xml:r.xml ~source:r.source))
  | Some Oracle.Match_vs_algebra ->
    let config = { Server.default_config with workers = Some 1 } in
    let server = Server.create ~config () in
    Fun.protect
      ~finally:(fun () -> Server.stop server)
      (fun () ->
        guard (fun () ->
            Oracle.match_vs_algebra
              (Some (Oracle.inproc_transport server))
              ~doc_name:"repro" ~xml:r.xml ~source:r.source))
  | Some Oracle.Loaded_vs_frozen ->
    guard (fun () -> Oracle.loaded_vs_frozen ~xml:r.xml ~source:r.source)
