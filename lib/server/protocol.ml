(** The wire protocol of [gql serve].

    Every message — request or response — is one *frame*:

    {v
      frame    ::=  length '\n' payload
      length   ::=  decimal byte count of the payload
    v}

    The payload is text.  Its first line is the *head*; the remaining
    bytes (if any) are the *body*.  Request heads:

    {v
      LOAD <doc> [key=val ...]            body = XML source
      PREPARE <name> [schema=S]           body = query source (header line
                                          'xmlgl' | 'wglog' selects the
                                          language, as for `gql run`)
      RUN <doc> <name> [deadline=MS]      run a prepared query
      RUN <doc> [deadline=MS] [schema=S]  body = query source (one-shot)
      EXPLAIN <doc> <name>                physical plan of a prepared query
      EXPLAIN <doc>                       body = query source
      STATS <doc>                         snapshot statistics
      METRICS                             server counters and latencies
      PING                                liveness probe
      QUIT                                close the connection
    v}

    Response heads are ["OK ..."], ["ERR <message>"] or
    ["TIMEOUT <elapsed-ms>"], followed by the result body (query output,
    plan text, statistics).  Verbs are case-insensitive; [key=val]
    arguments may appear in any order after the positional ones.

    Frames are capped at {!max_frame} bytes; an over-long length header
    or payload is a protocol error, not an allocation. *)

let max_frame = 64 * 1024 * 1024

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let write_frame (oc : out_channel) (payload : string) : unit =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  flush oc

(** [None] on a clean EOF at a frame boundary. *)
let read_frame (ic : in_channel) : string option =
  let buf = Buffer.create 16 in
  let rec header () =
    match input_char ic with
    | '\n' -> Buffer.contents buf
    | '0' .. '9' as c ->
      if Buffer.length buf > 9 then fail "frame length header too long";
      Buffer.add_char buf c;
      header ()
    | c -> fail "bad frame length byte %C" c
    | exception End_of_file ->
      if Buffer.length buf = 0 then raise Exit (* clean EOF *)
      else fail "EOF inside frame length"
  in
  match header () with
  | exception Exit -> None
  | h ->
    let n = int_of_string h in
    if n > max_frame then fail "frame of %d bytes exceeds cap" n;
    (try Some (really_input_string ic n)
     with End_of_file -> fail "EOF inside %d-byte frame" n)

(* ------------------------------------------------------------------ *)
(* Payload shape                                                       *)
(* ------------------------------------------------------------------ *)

(** Split a payload into its head line and body. *)
let split (payload : string) : string * string =
  match String.index_opt payload '\n' with
  | None -> (payload, "")
  | Some i ->
    ( String.sub payload 0 i,
      String.sub payload (i + 1) (String.length payload - i - 1) )

let join head body = if body = "" then head else head ^ "\n" ^ body

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request =
  | Load of { doc : string; xml : string }
  | Prepare of { name : string; schema : string option; source : string }
  | Run of {
      doc : string;
      query : [ `Named of string | `Source of string ];
      schema : string option;
      deadline_ms : float option;
    }
  | Explain of { doc : string; query : [ `Named of string | `Source of string ] }
  | Stats of { doc : string }
  | Metrics
  | Ping
  | Quit

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

(** Split head-line tokens into positional words and [key=val] options. *)
let split_args toks =
  let pos, opts =
    List.partition_map
      (fun t ->
        match String.index_opt t '=' with
        | Some i when i > 0 ->
          Right
            ( String.lowercase_ascii (String.sub t 0 i),
              String.sub t (i + 1) (String.length t - i - 1) )
        | _ -> Left t)
      toks
  in
  (pos, opts)

let opt_schema opts = List.assoc_opt "schema" opts

let opt_deadline opts =
  match List.assoc_opt "deadline" opts with
  | None -> None
  | Some v -> (
    match float_of_string_opt v with
    | Some ms when ms >= 0.0 -> Some ms
    | _ -> fail "bad deadline=%s (milliseconds expected)" v)

let parse_request (payload : string) : request =
  let head, body = split payload in
  match tokens head with
  | [] -> fail "empty request"
  | verb :: rest -> (
    let pos, opts = split_args rest in
    match String.uppercase_ascii verb, pos with
    | "LOAD", [ doc ] -> Load { doc; xml = body }
    | "PREPARE", [ name ] ->
      Prepare { name; schema = opt_schema opts; source = body }
    | "RUN", [ doc ] ->
      if String.trim body = "" then fail "RUN needs a prepared name or a body";
      Run
        {
          doc;
          query = `Source body;
          schema = opt_schema opts;
          deadline_ms = opt_deadline opts;
        }
    | "RUN", [ doc; name ] ->
      Run
        {
          doc;
          query = `Named name;
          schema = opt_schema opts;
          deadline_ms = opt_deadline opts;
        }
    | "EXPLAIN", [ doc ] ->
      if String.trim body = "" then fail "EXPLAIN needs a prepared name or a body";
      Explain { doc; query = `Source body }
    | "EXPLAIN", [ doc; name ] -> Explain { doc; query = `Named name }
    | "STATS", [ doc ] -> Stats { doc }
    | "METRICS", [] -> Metrics
    | "PING", [] -> Ping
    | "QUIT", [] -> Quit
    | v, _ -> fail "bad request %S (wrong verb or arity)" v)

let render_request : request -> string = function
  | Load { doc; xml } -> join (Printf.sprintf "LOAD %s" doc) xml
  | Prepare { name; schema; source } ->
    let head =
      match schema with
      | None -> Printf.sprintf "PREPARE %s" name
      | Some s -> Printf.sprintf "PREPARE %s schema=%s" name s
    in
    join head source
  | Run { doc; query; schema; deadline_ms } ->
    let head = Buffer.create 32 in
    Buffer.add_string head "RUN ";
    Buffer.add_string head doc;
    (match query with
    | `Named n ->
      Buffer.add_char head ' ';
      Buffer.add_string head n
    | `Source _ -> ());
    Option.iter
      (fun s -> Buffer.add_string head (Printf.sprintf " schema=%s" s))
      schema;
    Option.iter
      (fun ms -> Buffer.add_string head (Printf.sprintf " deadline=%g" ms))
      deadline_ms;
    let body = match query with `Named _ -> "" | `Source s -> s in
    join (Buffer.contents head) body
  | Explain { doc; query = `Named n } -> Printf.sprintf "EXPLAIN %s %s" doc n
  | Explain { doc; query = `Source s } -> join (Printf.sprintf "EXPLAIN %s" doc) s
  | Stats { doc } -> Printf.sprintf "STATS %s" doc
  | Metrics -> "METRICS"
  | Ping -> "PING"
  | Quit -> "QUIT"

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type response =
  | Ok_ of { info : string; body : string }
  | Err of string
  | Timeout of { elapsed_ms : float }

let render_response : response -> string = function
  | Ok_ { info; body } ->
    join (if info = "" then "OK" else "OK " ^ info) body
  | Err msg ->
    (* the message must stay on the head line *)
    "ERR " ^ String.map (function '\n' -> ' ' | c -> c) msg
  | Timeout { elapsed_ms } -> Printf.sprintf "TIMEOUT %.1f" elapsed_ms

let parse_response (payload : string) : response =
  let head, body = split payload in
  match tokens head with
  | "OK" :: rest -> Ok_ { info = String.concat " " rest; body }
  | "ERR" :: rest -> Err (String.concat " " rest)
  | [ "TIMEOUT"; ms ] -> Timeout { elapsed_ms = float_of_string ms }
  | _ -> fail "bad response head %S" head
