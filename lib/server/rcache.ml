(** The LRU result cache.

    Evaluation over a frozen snapshot is deterministic, so the rendered
    response body of a [RUN] or [EXPLAIN] is safe to replay as long as
    the inputs are the same.  Keys therefore bind everything the result
    depends on: the document name *and its snapshot version*, the
    prepared query's hash, and the command kind.  Invalidation is the
    version: re-[LOAD]ing a document bumps it, making old keys
    unreachable, and {!purge_doc} drops them eagerly so the capacity is
    not squatted by dead entries.

    A classic intrusive doubly-linked LRU under one mutex: [find] is a
    hash lookup + list splice, [add] evicts from the tail. *)

type key = {
  doc : string;
  version : int;
  qhash : string;
  kind : string;  (** "run" | "explain" *)
}

type node = {
  key : key;
  value : string;  (** rendered response body *)
  info : string;  (** rendered OK-line info *)
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  mutex : Mutex.t;
  capacity : int;
  table : (key, node) Hashtbl.t;
  mutable head : node option;  (** most recently used *)
  mutable tail : node option;
}

let create ?(capacity = 256) () =
  {
    mutex = Mutex.create ();
    capacity = max 1 capacity;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key : (string * string) option =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None -> None
      | Some n ->
        unlink t n;
        push_front t n;
        Some (n.info, n.value))

let add t key ~info value =
  locked t (fun () ->
      (match Hashtbl.find_opt t.table key with
      | Some old ->
        unlink t old;
        Hashtbl.remove t.table key
      | None -> ());
      let n = { key; value; info; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n;
      while Hashtbl.length t.table > t.capacity do
        match t.tail with
        | None -> Hashtbl.reset t.table (* unreachable *)
        | Some victim ->
          unlink t victim;
          Hashtbl.remove t.table victim.key
      done)

(** Drop every entry of [doc] (any version) — called on re-[LOAD]. *)
let purge_doc t doc =
  locked t (fun () ->
      let victims =
        Hashtbl.fold
          (fun k n acc -> if k.doc = doc then n :: acc else acc)
          t.table []
      in
      List.iter
        (fun n ->
          unlink t n;
          Hashtbl.remove t.table n.key)
        victims)

let length t = locked t (fun () -> Hashtbl.length t.table)
