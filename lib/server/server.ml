(** The query service: frozen snapshots behind a socket.

    One [t] owns the four shared structures — document {!Registry},
    prepared-{!Qcache}, result-{!Rcache} and {!Metrics} — plus a
    {!Pool} of worker domains.  Listeners (TCP and/or Unix-domain)
    accept in a lightweight thread and hand each connection to the
    pool, so up to [workers] connections evaluate in parallel over the
    same immutable snapshots.

    Request handling is a pure [payload -> payload] function
    ({!handle_payload}), which is also the in-process entry point the
    tests and benchmarks drive without sockets.

    Deadlines: a [RUN] may carry [deadline=MS] (or inherit the server
    default).  The engines are not preemptible, so the deadline is
    enforced at the evaluation boundaries — a request that has already
    overstayed when it reaches the evaluator, or that finishes past its
    deadline, answers [TIMEOUT] instead of the result.  A completed
    result is still cached, so a retry of a timed-out query usually
    hits. *)

type config = {
  workers : int option;  (** worker domains; default {!Pool.default_size} *)
  result_cache : int;  (** LRU capacity; [0] disables result caching *)
  query_cache : int;  (** prepared-query capacity *)
  default_deadline_ms : float option;
  run_domains : int option;
      (** domains per [RUN] evaluation; [None] (the default) sizes each
          RUN by {!Gql_graph.Par.auto_domains} — a lone request borrows
          the capacity idle pool workers leave unused, while concurrent
          busy workers each hold a budget unit so a client burst
          degrades to one domain per request instead of oversubscribing
          the machine *)
}

let default_config =
  { workers = None; result_cache = 256; query_cache = 1024;
    default_deadline_ms = None; run_domains = None }

type t = {
  config : config;
  registry : Registry.t;
  qcache : Qcache.t;
  rcache : Rcache.t option;
  pcache : Gql_match.Eval.prepared Pcache.t;
      (** planned MATCH queries, keyed (doc, snapshot version, query
          hash) — planning (estimate scans, join enumeration) runs once
          per snapshot even when the result cache misses or is off *)
  metrics : Metrics.t;
  pool : Pool.t;
  mutex : Mutex.t;  (** listener list *)
  mutable listeners : Unix.file_descr list;
}

let create ?(config = default_config) () =
  {
    config;
    registry = Registry.create ();
    qcache = Qcache.create ~capacity:config.query_cache ();
    rcache =
      (if config.result_cache > 0 then
         Some (Rcache.create ~capacity:config.result_cache ())
       else None);
    pcache = Pcache.create ~capacity:config.query_cache ();
    metrics = Metrics.create ();
    pool = Pool.create ?size:config.workers ();
    mutex = Mutex.create ();
    listeners = [];
  }

let registry t = t.registry
let metrics t = t.metrics
let workers t = Pool.size t.pool

(** The exact [RUN] body of a WG-Log fixpoint — kept in one place so the
    server, the CLI and the byte-identity tests cannot drift apart. *)
let wglog_stats_line (s : Gql_wglog.Eval.stats) =
  Printf.sprintf "fixpoint reached: %d rounds, %d embeddings, +%d nodes, +%d edges\n"
    s.Gql_wglog.Eval.rounds s.embeddings_found s.nodes_added s.edges_added

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let ok ?(info = "") body = Protocol.Ok_ { info; body }

let require_doc t doc k =
  match Registry.find t.registry doc with
  | Some snap -> k snap
  | None -> Protocol.Err (Printf.sprintf "no document %S (LOAD it first)" doc)

(** Resolve a [RUN]/[EXPLAIN] query reference through the prepared
    cache, counting hits/misses. *)
let resolve_query t ~schema query k =
  let r =
    match query with
    | `Named name -> Qcache.find_named t.qcache name
    | `Source src -> Qcache.intern t.qcache ~schema src
  in
  match r with
  | Error msg -> Protocol.Err msg
  | Ok (entry, hit) ->
    Metrics.incr
      (if hit then t.metrics.Metrics.prepared_hits
       else t.metrics.Metrics.prepared_misses);
    k entry

let cache_key (snap : Registry.snapshot) (entry : Qcache.entry) kind =
  {
    Rcache.doc = snap.Registry.name;
    version = snap.Registry.version;
    qhash = entry.Qcache.hash;
    kind;
  }

(** Look up / fill the result cache around an evaluation thunk. *)
let with_result_cache t snap entry kind (eval : unit -> string * string) :
    string * string =
  match t.rcache with
  | None ->
    Metrics.incr t.metrics.Metrics.result_misses;
    eval ()
  | Some rc -> (
    let key = cache_key snap entry kind in
    match Rcache.find rc key with
    | Some (info, body) ->
      Metrics.incr t.metrics.Metrics.result_hits;
      ((if info = "" then "cached" else info ^ " cached"), body)
    | None ->
      Metrics.incr t.metrics.Metrics.result_misses;
      let info, body = eval () in
      Rcache.add rc key ~info body;
      (info, body))

(** The plan-cache door for MATCH: return the prepared (compiled +
    planned) form for [entry] against [snap], planning at most once per
    (doc, version, hash), counting hits/misses. *)
let plan_match t (snap : Registry.snapshot) (entry : Qcache.entry)
    (q : Gql_match.Ast.query) : Gql_match.Eval.prepared =
  let key =
    {
      Pcache.doc = snap.Registry.name;
      version = snap.Registry.version;
      qhash = entry.Qcache.hash;
    }
  in
  match Pcache.find t.pcache key with
  | Some prepared ->
    Metrics.incr t.metrics.Metrics.plan_hits;
    prepared
  | None ->
    Metrics.incr t.metrics.Metrics.plan_misses;
    let prepared =
      Gql_match.Eval.prepare ~index:snap.Registry.index
        snap.Registry.db.Gql_core.Gql.graph q
    in
    Pcache.add t.pcache key prepared;
    prepared

let evaluate t (snap : Registry.snapshot) (entry : Qcache.entry) :
    string * string =
  let domains =
    match t.config.run_domains with
    | Some n -> max 1 n
    | None -> Gql_graph.Par.auto_domains ()
  in
  match entry.Qcache.prepared with
  | Qcache.Xmlgl p ->
    let result =
      Gql_xmlgl.Engine.run_program ~index:snap.Registry.index ~domains
        snap.Registry.db.Gql_core.Gql.graph p
    in
    let body = Gql_core.Gql.to_xml_string result in
    ( Printf.sprintf "lang=xmlgl hits=%d" (List.length result.Gql_xml.Tree.children),
      body )
  | Qcache.Wglog p ->
    (* deductive semantics mutate: run on a private fork, publish nothing *)
    let g = Registry.fork snap in
    let stats = Gql_wglog.Eval.run ~domains g p in
    ( Printf.sprintf "lang=wglog derived_edges=%d" stats.Gql_wglog.Eval.edges_added,
      wglog_stats_line stats )
  | Qcache.Match q ->
    let prepared = plan_match t snap entry q in
    let body, rows =
      Gql_match.Eval.run_prepared ~domains
        snap.Registry.db.Gql_core.Gql.graph prepared
    in
    (Printf.sprintf "lang=match rows=%d" rows, body)

let explain t (snap : Registry.snapshot) (entry : Qcache.entry) :
    string * string =
  match entry.Qcache.prepared with
  | Qcache.Xmlgl p -> (
    match p.Gql_xmlgl.Ast.rules with
    | [] -> ("lang=xmlgl", "(no rules)\n")
    | r :: _ ->
      ( "lang=xmlgl",
        Gql_algebra.Exec.explain_xmlgl ~index:snap.Registry.index
          snap.Registry.db.Gql_core.Gql.graph r.Gql_xmlgl.Ast.query ))
  | Qcache.Wglog p -> (
    match p.Gql_wglog.Ast.rules with
    | [] -> ("lang=wglog", "(no rules)\n")
    | r :: _ ->
      ( "lang=wglog",
        Gql_algebra.Exec.explain_wglog ~index:snap.Registry.index
          snap.Registry.db.Gql_core.Gql.graph r ))
  | Qcache.Match q ->
    ( "lang=match",
      Gql_algebra.Plan.to_string
        (plan_match t snap entry q).Gql_match.Eval.pr_plan )

let handle_request t (req : Protocol.request) ~(started : float) :
    Protocol.response =
  match req with
  | Protocol.Ping -> ok ~info:"pong" ""
  | Protocol.Quit -> ok ~info:"bye" ""
  | Protocol.Metrics ->
    (* server counters plus the Par scheduler's slice: jobs, chunks,
       steals, sequential-fallback reasons, spawn failures *)
    ok
      (Metrics.render t.metrics
      ^ Gql_graph.Par.stats_lines ()
      ^ Gql_graph.Regpath.stats_lines ()
      ^ Gql_data.Store.stats_lines ())
  | Protocol.Load { doc; xml } -> (
    let prior = Registry.find t.registry doc in
    match Registry.load_xml t.registry ~name:doc xml with
    | Error msg -> Protocol.Err msg
    | Ok snap ->
      Metrics.incr t.metrics.Metrics.loads;
      (* Digest reuse: identical content re-installed the same snapshot
         (version unchanged) — its cached results are still valid, so
         keep them warm instead of purging. *)
      let reused =
        match prior with
        | Some p -> p.Registry.version = snap.Registry.version
        | None -> false
      in
      if not reused then begin
        Option.iter (fun rc -> Rcache.purge_doc rc doc) t.rcache;
        Pcache.purge_doc t.pcache doc
      end;
      ok
        ~info:
          (Printf.sprintf "doc=%s version=%d nodes=%d edges=%d" snap.Registry.name
             snap.Registry.version snap.Registry.nodes snap.Registry.edges)
        "")
  | Protocol.Prepare { name; schema; source } -> (
    match Qcache.prepare t.qcache ~name ~schema source with
    | Error msg -> Protocol.Err msg
    | Ok (entry, hit) ->
      Metrics.incr
        (if hit then t.metrics.Metrics.prepared_hits
         else t.metrics.Metrics.prepared_misses);
      ok
        ~info:
          (Printf.sprintf "name=%s lang=%s hash=%s" name
             (match entry.Qcache.lang with
             | `Xmlgl -> "xmlgl"
             | `Wglog -> "wglog"
             | `Match -> "match")
             entry.Qcache.hash)
        "")
  | Protocol.Stats { doc } ->
    require_doc t doc (fun snap ->
        ok
          (Printf.sprintf "name=%s\nversion=%d\nnodes=%d\nedges=%d\ndocument=%b\n"
             snap.Registry.name snap.Registry.version snap.Registry.nodes
             snap.Registry.edges
             (Option.is_some snap.Registry.db.Gql_core.Gql.document)))
  | Protocol.Explain { doc; query } ->
    require_doc t doc (fun snap ->
        resolve_query t ~schema:None query (fun entry ->
            let info, body =
              with_result_cache t snap entry "explain" (fun () ->
                  explain t snap entry)
            in
            ok ~info body))
  | Protocol.Run { doc; query; schema; deadline_ms } ->
    require_doc t doc (fun snap ->
        resolve_query t ~schema query (fun entry ->
            let deadline =
              match deadline_ms with
              | Some _ -> deadline_ms
              | None -> t.config.default_deadline_ms
            in
            let elapsed_ms () = (Unix.gettimeofday () -. started) *. 1000.0 in
            let overdue () =
              match deadline with Some d -> elapsed_ms () > d | None -> false
            in
            if overdue () then begin
              Metrics.incr t.metrics.Metrics.timeouts;
              Protocol.Timeout { elapsed_ms = elapsed_ms () }
            end
            else begin
              Metrics.incr t.metrics.Metrics.runs;
              let info, body =
                with_result_cache t snap entry "run" (fun () ->
                    evaluate t snap entry)
              in
              if overdue () then begin
                (* the work is done (and cached) but the client's budget
                   is blown: answer the truth *)
                Metrics.incr t.metrics.Metrics.timeouts;
                Protocol.Timeout { elapsed_ms = elapsed_ms () }
              end
              else
                ok ~info:(Printf.sprintf "%s ms=%.2f" info (elapsed_ms ())) body
            end))

(** The full service function: request payload in, response payload out.
    Everything — parse errors included — becomes a framed response;
    metrics are recorded here so in-process callers count too. *)
let handle_payload t (payload : string) : string =
  let started = Unix.gettimeofday () in
  Metrics.incr t.metrics.Metrics.requests;
  let response =
    match Protocol.parse_request payload with
    | req -> (
      (* Everything an evaluator can throw must become a framed ERR: an
         exception escaping here kills the worker domain serving the
         connection.  The typed errors keep their messages; anything
         unexpected is still fenced off by the final catch-all. *)
      try handle_request t req ~started with
      | Gql_core.Gql.Error msg | Failure msg -> Protocol.Err msg
      | Protocol.Protocol_error msg -> Protocol.Err msg
      | Gql_wglog.Eval.Invalid_query msg
      | Gql_xmlgl.Construct.Invalid_query msg
      | Gql_match.Compile.Error msg ->
        Protocol.Err ("invalid query: " ^ msg)
      | Gql_xmlgl.Engine.Ill_formed errs ->
        Protocol.Err ("invalid query: " ^ String.concat "; " errs)
      | Invalid_argument msg -> Protocol.Err ("invalid request: " ^ msg)
      | exn -> Protocol.Err ("internal error: " ^ Printexc.to_string exn))
    | exception Protocol.Protocol_error msg -> Protocol.Err msg
  in
  (match response with
  | Protocol.Err _ -> Metrics.incr t.metrics.Metrics.errors
  | Protocol.Timeout _ | Protocol.Ok_ _ -> ());
  Metrics.observe t.metrics.Metrics.latency
    ~us:(int_of_float ((Unix.gettimeofday () -. started) *. 1e6));
  Protocol.render_response response

(* ------------------------------------------------------------------ *)
(* Connections and listeners                                           *)
(* ------------------------------------------------------------------ *)

let is_quit payload =
  match Protocol.parse_request payload with
  | Protocol.Quit -> true
  | _ | (exception Protocol.Protocol_error _) -> false

let handle_connection t (fd : Unix.file_descr) : unit =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match Protocol.read_frame ic with
    | None -> ()
    | Some payload ->
      let response = handle_payload t payload in
      Protocol.write_frame oc response;
      if not (is_quit payload) then loop ()
  in
  (try loop () with
  | Protocol.Protocol_error msg ->
    (try Protocol.write_frame oc (Protocol.render_response (Protocol.Err msg))
     with Sys_error _ | Unix.Unix_error _ -> ())
  | End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

type listener = { fd : Unix.file_descr; thread : Thread.t }

(** Bind, listen and accept in a background thread; each connection is
    handled on a pool domain.  [ADDR_UNIX path] unlinks a stale socket
    file first. *)
let listen t (addr : Unix.sockaddr) : listener =
  let domain = Unix.domain_of_sockaddr addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd addr;
  Unix.listen fd 64;
  let thread =
    Thread.create
      (fun () ->
        let rec accept_loop () =
          match Unix.accept fd with
          | conn, _ ->
            Pool.submit t.pool (fun () -> handle_connection t conn);
            accept_loop ()
          | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
            () (* listener shut down: stop *)
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _)
            ->
            accept_loop ()
        in
        accept_loop ())
      ()
  in
  Mutex.lock t.mutex;
  t.listeners <- fd :: t.listeners;
  Mutex.unlock t.mutex;
  { fd; thread }

let wait (l : listener) = Thread.join l.thread

(** Close every listener and join the worker domains (in-flight
    connections finish first). *)
let stop t =
  Mutex.lock t.mutex;
  let fds = t.listeners in
  t.listeners <- [];
  Mutex.unlock t.mutex;
  List.iter
    (fun fd ->
      (* shutdown wakes a blocked accept (EINVAL on Linux); close alone
         can leave the accept thread parked forever *)
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    fds;
  Pool.shutdown t.pool
