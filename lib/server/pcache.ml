(** The LRU plan cache.

    Planning a MATCH query against a frozen snapshot is deterministic
    but not free: the cost-based planner scans for cardinality
    estimates, samples fan-outs and enumerates join orders.  Serve
    traffic repeats the same few queries against the same snapshot, so
    the planned form ({!Gql_match.Eval.prepared}) is cached keyed by
    everything it depends on: the document name *and its snapshot
    version* plus the prepared query's hash (the same MD5 `Qcache`
    keys by).  Invalidation mirrors {!Rcache}: re-[LOAD]ing a document
    bumps its version, and {!purge_doc} eagerly drops dead entries.

    The value type is polymorphic so the cache stores prepared plans
    without this module depending on the front-ends.  Same intrusive
    doubly-linked LRU under one mutex as {!Rcache}. *)

type key = { doc : string; version : int; qhash : string }

type 'a node = {
  key : key;
  value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  mutex : Mutex.t;
  capacity : int;
  table : (key, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (** most recently used *)
  mutable tail : 'a node option;
}

let create ?(capacity = 256) () =
  {
    mutex = Mutex.create ();
    capacity = max 1 capacity;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key : 'a option =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None -> None
      | Some n ->
        unlink t n;
        push_front t n;
        Some n.value)

let add t key value =
  locked t (fun () ->
      (match Hashtbl.find_opt t.table key with
      | Some old ->
        unlink t old;
        Hashtbl.remove t.table key
      | None -> ());
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n;
      while Hashtbl.length t.table > t.capacity do
        match t.tail with
        | None -> Hashtbl.reset t.table (* unreachable *)
        | Some victim ->
          unlink t victim;
          Hashtbl.remove t.table victim.key
      done)

(** Drop every entry of [doc] (any version) — called on re-[LOAD]. *)
let purge_doc t doc =
  locked t (fun () ->
      let victims =
        Hashtbl.fold
          (fun k n acc -> if k.doc = doc then n :: acc else acc)
          t.table []
      in
      List.iter
        (fun n ->
          unlink t n;
          Hashtbl.remove t.table n.key)
        victims)

let length t = locked t (fun () -> Hashtbl.length t.table)
