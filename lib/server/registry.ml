(** The document registry: named, versioned, frozen snapshots.

    [LOAD] parses the XML, encodes the data graph and builds the frozen
    {!Gql_data.Index} *once*; the resulting snapshot is then shared
    immutably by every worker domain — reads need no lock because
    nothing ever mutates a published snapshot.  Re-loading a name
    installs a fresh snapshot under a bumped [version]; the version is
    part of every result-cache key, so cached results of the old
    snapshot can never be served for the new one.  The index carries
    the snapshot's {!Gql_data.Symtab} — symbol ids are snapshot-local,
    so a re-load builds a fresh interner along with the fresh index and
    ids must never be held across, or compared between, versions.

    The only mutation a query can demand — WG-Log's deductive fixpoint —
    happens on a {!fork}: a private copy of the data graph, discarded
    after the request. *)

type snapshot = {
  name : string;
  version : int;
  db : Gql_core.Gql.db;  (** graph + document + DTD, treated read-only *)
  index : Gql_data.Index.t;  (** frozen CSR + access paths *)
  nodes : int;
  edges : int;
}

type t = {
  mutex : Mutex.t;
  table : (string, snapshot) Hashtbl.t;
  versions : (string, int) Hashtbl.t;  (** survives re-loads *)
}

let create () =
  { mutex = Mutex.create (); table = Hashtbl.create 8; versions = Hashtbl.create 8 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let publish t name (db : Gql_core.Gql.db) : snapshot =
  let index = Gql_data.Index.build db.Gql_core.Gql.graph in
  let nodes, edges = Gql_core.Gql.stats db in
  locked t (fun () ->
      let version = 1 + Option.value ~default:0 (Hashtbl.find_opt t.versions name) in
      Hashtbl.replace t.versions name version;
      let snap = { name; version; db; index; nodes; edges } in
      Hashtbl.replace t.table name snap;
      snap)

(** Parse, encode and index an XML source under [name]. *)
let load_xml t ~name (xml : string) : (snapshot, string) result =
  match Gql_core.Gql.load_xml_string xml with
  | db -> Ok (publish t name db)
  | exception Gql_core.Gql.Error msg -> Error msg

(** Register an existing entity graph (databases that never were XML,
    e.g. the WG-Log restaurant base). *)
let add_graph t ~name (g : Gql_data.Graph.t) : snapshot =
  publish t name (Gql_core.Gql.of_graph g)

let find t name : snapshot option =
  locked t (fun () -> Hashtbl.find_opt t.table name)

let names t : string list =
  locked t (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare)

(** A private mutable copy of the snapshot's graph for deductive runs. *)
let fork (snap : snapshot) : Gql_data.Graph.t =
  Gql_data.Graph.copy snap.db.Gql_core.Gql.graph
