(** The document registry: named, versioned, frozen snapshots.

    [LOAD] parses the XML, encodes the data graph and builds the frozen
    {!Gql_data.Index} *once*; the resulting snapshot is then shared
    immutably by every worker domain — reads need no lock because
    nothing ever mutates a published snapshot.  Re-loading a name
    installs a fresh snapshot under a bumped [version]; the version is
    part of every result-cache key, so cached results of the old
    snapshot can never be served for the new one.  The index carries
    the snapshot's {!Gql_data.Symtab} — symbol ids are snapshot-local,
    so a re-load builds a fresh interner along with the fresh index and
    ids must never be held across, or compared between, versions.

    Publishes are keyed by a content digest: re-loading an identical
    document (or snapshot file) under the same name is recognised
    *before* any parse/index work, returns the existing snapshot with
    its version unchanged, and therefore keeps every [Rcache]/[Pcache]
    entry warm — only genuinely new content invalidates.

    The only mutation a query can demand — WG-Log's deductive fixpoint —
    happens on a {!fork}: a private copy of the data graph, discarded
    after the request. *)

type snapshot = {
  name : string;
  version : int;
  key : string;  (** content digest of the underlying doc/file *)
  db : Gql_core.Gql.db;  (** graph + document + DTD, treated read-only *)
  index : Gql_data.Index.t;  (** frozen CSR + access paths *)
  nodes : int;
  edges : int;
}

type t = {
  mutex : Mutex.t;
  table : (string, snapshot) Hashtbl.t;
  versions : (string, int) Hashtbl.t;  (** survives re-loads *)
}

let create () =
  { mutex = Mutex.create (); table = Hashtbl.create 8; versions = Hashtbl.create 8 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* The digest-reuse fast path: same name, same content key — nothing to
   do, caches stay warm.  An empty key never matches (unkeyed publishes
   always install fresh). *)
let find_keyed t name key : snapshot option =
  if key = "" then None
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.table name with
        | Some s when s.key = key -> Some s
        | Some _ | None -> None)

let install t name key (db : Gql_core.Gql.db) (index : Gql_data.Index.t) :
    snapshot =
  let nodes, edges = Gql_core.Gql.stats db in
  locked t (fun () ->
      let version = 1 + Option.value ~default:0 (Hashtbl.find_opt t.versions name) in
      Hashtbl.replace t.versions name version;
      let snap = { name; version; key; db; index; nodes; edges } in
      Hashtbl.replace t.table name snap;
      snap)

(** Index [db]'s graph and install it under [name].  With [key], an
    existing snapshot carrying the same key is returned as-is (no
    version bump, no index build). *)
let publish ?(key = "") t name (db : Gql_core.Gql.db) : snapshot =
  match find_keyed t name key with
  | Some snap -> snap
  | None -> install t name key db (Gql_data.Index.build db.Gql_core.Gql.graph)

(** Parse, encode and index an XML source under [name].  Keyed by the
    source digest: re-loading byte-identical XML skips even the parse
    and returns the current snapshot, version unchanged. *)
let load_xml t ~name (xml : string) : (snapshot, string) result =
  let key = "xml-" ^ Digest.to_hex (Digest.string xml) in
  match find_keyed t name key with
  | Some snap -> Ok snap
  | None -> (
    match Gql_core.Gql.load_xml_string xml with
    | db -> Ok (publish ~key t name db)
    | exception Gql_core.Gql.Error msg -> Error msg)

(** Load a snapshot file ({!Gql_data.Store}) under [name].  Keyed by the
    file's content key, so re-loading an unchanged file bumps no
    version; the prebuilt index is installed directly — no re-freeze. *)
let load_snapshot t ~name (path : string) : (snapshot, string) result =
  match Gql_data.Store.file_key path with
  | exception (Gql_data.Store.Invalid_snapshot _ as e) ->
    Error (Gql_data.Store.describe e)
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | key -> (
    match find_keyed t name key with
    | Some snap -> Ok snap
    | None -> (
      match Gql_data.Store.load ~path with
      | graph, index ->
        Ok (install t name key (Gql_core.Gql.of_snapshot graph index) index)
      | exception (Gql_data.Store.Invalid_snapshot _ as e) ->
        Error (Gql_data.Store.describe e)
      | exception Sys_error msg -> Error msg
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)))

(** Register an existing entity graph (databases that never were XML,
    e.g. the WG-Log restaurant base). *)
let add_graph t ~name (g : Gql_data.Graph.t) : snapshot =
  publish t name (Gql_core.Gql.of_graph g)

let find t name : snapshot option =
  locked t (fun () -> Hashtbl.find_opt t.table name)

let names t : string list =
  locked t (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare)

(** A private mutable copy of the snapshot's graph for deductive runs. *)
let fork (snap : snapshot) : Gql_data.Graph.t =
  Gql_data.Graph.copy snap.db.Gql_core.Gql.graph
