(** Service observability: lock-free counters and latency histograms.

    Every counter is an [Atomic.t] and the histogram buckets are atomics
    too, so workers on different domains record without contending on a
    lock; readers ([METRICS]) see a near-consistent snapshot, which is
    all a monitoring endpoint needs.

    The histogram is log-linear over microseconds: each power of two is
    split into {!sub} linear sub-buckets, giving <= 25% relative error
    on reported quantiles across nine decades — the classic HDR shape in
    ~500 words of memory. *)

type histogram = {
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum_us : int Atomic.t;
  max_us : int Atomic.t;
}

let sub = 8 (* linear sub-buckets per power of two *)
let n_pows = 30 (* up to ~2^30 us ~ 18 minutes *)

let histogram () =
  {
    buckets = Array.init (sub * n_pows) (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum_us = Atomic.make 0;
    max_us = Atomic.make 0;
  }

let bucket_of_us us =
  let us = max us 1 in
  let pow = (* floor log2 *)
    let rec go p v = if v <= 1 then p else go (p + 1) (v lsr 1) in
    go 0 us
  in
  let base = 1 lsl pow in
  let frac = if base >= sub then (us - base) / (base / sub) else 0 in
  min ((pow * sub) + min frac (sub - 1)) ((sub * n_pows) - 1)

(** Upper bound (us) of bucket [i] — what quantile lookups report. *)
let bucket_upper i =
  let pow = i / sub and frac = i mod sub in
  let base = 1 lsl pow in
  if base >= sub then base + ((frac + 1) * (base / sub)) else base * 2

let observe (h : histogram) ~us =
  let us = max us 0 in
  Atomic.incr h.count;
  ignore (Atomic.fetch_and_add h.sum_us us);
  Atomic.incr h.buckets.(bucket_of_us us);
  let rec raise_max () =
    let m = Atomic.get h.max_us in
    if us > m && not (Atomic.compare_and_set h.max_us m us) then raise_max ()
  in
  raise_max ()

(** The [q]-quantile (0..1) in microseconds, or 0 with no observations. *)
let quantile (h : histogram) q =
  let total = Atomic.get h.count in
  if total = 0 then 0
  else begin
    let target =
      max 1 (int_of_float (ceil (q *. float_of_int total)))
    in
    let acc = ref 0 and result = ref (Atomic.get h.max_us) in
    (try
       Array.iteri
         (fun i b ->
           acc := !acc + Atomic.get b;
           if !acc >= target then begin
             result := bucket_upper i;
             raise Exit
           end)
         h.buckets
     with Exit -> ());
    min !result (max (Atomic.get h.max_us) 1)
  end

let mean_us (h : histogram) =
  let n = Atomic.get h.count in
  if n = 0 then 0.0 else float_of_int (Atomic.get h.sum_us) /. float_of_int n

(* ------------------------------------------------------------------ *)
(* The service's counter set                                           *)
(* ------------------------------------------------------------------ *)

type t = {
  started_at : float;
  requests : int Atomic.t;
  errors : int Atomic.t;
  timeouts : int Atomic.t;
  loads : int Atomic.t;
  runs : int Atomic.t;
  prepared_hits : int Atomic.t;  (** query cache: parse+plan reused *)
  prepared_misses : int Atomic.t;
  result_hits : int Atomic.t;  (** result cache: evaluation skipped *)
  result_misses : int Atomic.t;
  plan_hits : int Atomic.t;  (** plan cache: planning skipped *)
  plan_misses : int Atomic.t;
  latency : histogram;  (** per-request service time *)
}

let create () =
  {
    started_at = Unix.gettimeofday ();
    requests = Atomic.make 0;
    errors = Atomic.make 0;
    timeouts = Atomic.make 0;
    loads = Atomic.make 0;
    runs = Atomic.make 0;
    prepared_hits = Atomic.make 0;
    prepared_misses = Atomic.make 0;
    result_hits = Atomic.make 0;
    result_misses = Atomic.make 0;
    plan_hits = Atomic.make 0;
    plan_misses = Atomic.make 0;
    latency = histogram ();
  }

let incr = Atomic.incr

(** The [METRICS] body: one [key=value] per line, stable keys. *)
let render (t : t) : string =
  let b = Buffer.create 256 in
  let kv k v = Buffer.add_string b (Printf.sprintf "%s=%s\n" k v) in
  let ki k v = kv k (string_of_int v) in
  kv "uptime_s" (Printf.sprintf "%.1f" (Unix.gettimeofday () -. t.started_at));
  ki "requests" (Atomic.get t.requests);
  ki "errors" (Atomic.get t.errors);
  ki "timeouts" (Atomic.get t.timeouts);
  ki "loads" (Atomic.get t.loads);
  ki "runs" (Atomic.get t.runs);
  ki "prepared_cache_hits" (Atomic.get t.prepared_hits);
  ki "prepared_cache_misses" (Atomic.get t.prepared_misses);
  ki "result_cache_hits" (Atomic.get t.result_hits);
  ki "result_cache_misses" (Atomic.get t.result_misses);
  ki "plan_cache_hits" (Atomic.get t.plan_hits);
  ki "plan_cache_misses" (Atomic.get t.plan_misses);
  ki "latency_count" (Atomic.get t.latency.count);
  kv "latency_mean_us" (Printf.sprintf "%.1f" (mean_us t.latency));
  ki "latency_p50_us" (quantile t.latency 0.50);
  ki "latency_p95_us" (quantile t.latency 0.95);
  ki "latency_p99_us" (quantile t.latency 0.99);
  ki "latency_max_us" (Atomic.get t.latency.max_us);
  Buffer.contents b

(** Parse a [render]ed body back into an association list (client side). *)
let parse_body (body : string) : (string * string) list =
  String.split_on_char '\n' body
  |> List.filter_map (fun line ->
         match String.index_opt line '=' with
         | Some i ->
           Some
             ( String.sub line 0 i,
               String.sub line (i + 1) (String.length line - i - 1) )
         | None -> None)
