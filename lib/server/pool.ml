(** A fixed pool of OCaml 5 worker domains.

    Jobs are thunks pulled from one mutex/condvar queue; each accepted
    connection becomes a job, so up to [size] connections evaluate
    queries truly in parallel (snapshots are immutable — workers share
    them without synchronisation) while further connections queue.

    A worker holds one unit of the process-wide {!Gql_graph.Par} domain
    budget while it runs a job: per-request parallelism sized by
    [Par.auto_domains] then only spends the capacity that idle workers
    leave over, so a burst of clients cannot oversubscribe the machine
    while a lone request may still fan out across the whole budget.
    This composes with Par's own persistent worker pool: a request that
    does fan out submits a job to Par's parked domains rather than
    spawning fresh ones, and its submitting connection worker holds the
    extra budget units only while that job runs.  (The two pools stay
    separate on purpose — these workers block on sockets, Par's never
    do, so a slow client can't starve query parallelism.)

    [shutdown] drains nothing: it wakes every worker, lets in-flight
    jobs finish, and joins the domains — callers close listeners first
    so no new jobs arrive. *)

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  size : int;
}

let default_size () = max 2 (min 8 (Domain.recommended_domain_count () - 1))

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.jobs && t.stopping then Mutex.unlock t.mutex
    else begin
      let job = Queue.pop t.jobs in
      Mutex.unlock t.mutex;
      (try Gql_graph.Par.charged job
       with _ -> () (* a job's failure is the job's problem *));
      loop ()
    end
  in
  loop ()

let create ?size () =
  let size = match size with Some n -> max 1 n | None -> default_size () in
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      stopping = false;
      domains = [];
      size;
    }
  in
  t.domains <- List.init size (fun _ -> Domain.spawn (worker t));
  t

let size t = t.size

let submit t job =
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shutting down"
  end;
  Queue.push job t.jobs;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []
