(** A blocking client for the {!Protocol}: one socket, one outstanding
    request at a time.  Used by [gql client], the server tests and the
    E12 closed-loop benchmark. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let of_fd fd =
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let connect (addr : Unix.sockaddr) : t =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  of_fd fd

let connect_unix path = connect (Unix.ADDR_UNIX path)

let connect_tcp ~host ~port =
  let inet =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  connect (Unix.ADDR_INET (inet, port))

let close t =
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(** One round trip at the payload level. *)
let roundtrip t (payload : string) : string =
  Protocol.write_frame t.oc payload;
  match Protocol.read_frame t.ic with
  | Some response -> response
  | None -> raise (Protocol.Protocol_error "server closed the connection")

(** One round trip at the typed level. *)
let request t (req : Protocol.request) : Protocol.response =
  Protocol.parse_response (roundtrip t (Protocol.render_request req))

(* Convenience wrappers returning [Ok (info, body)] or [Error message];
   a [TIMEOUT] surfaces as [Error]. *)

let lift = function
  | Protocol.Ok_ { info; body } -> Ok (info, body)
  | Protocol.Err msg -> Error msg
  | Protocol.Timeout { elapsed_ms } ->
    Error (Printf.sprintf "timeout after %.1f ms" elapsed_ms)

let load t ~doc xml = lift (request t (Protocol.Load { doc; xml }))

let prepare t ~name ?schema source =
  lift (request t (Protocol.Prepare { name; schema; source }))

let run t ~doc ?schema ?deadline_ms query =
  lift (request t (Protocol.Run { doc; query; schema; deadline_ms }))

let explain t ~doc query = lift (request t (Protocol.Explain { doc; query }))
let stats t ~doc = lift (request t (Protocol.Stats { doc }))
let metrics t = lift (request t Protocol.Metrics)
let ping t = lift (request t Protocol.Ping)

let quit t =
  let r = lift (request t Protocol.Quit) in
  close t;
  r
