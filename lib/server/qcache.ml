(** The prepared-query cache.

    Parsing a textual WG-Log/XML-GL program is pure, so one parse can
    serve every later request with the same source: entries are keyed by
    the MD5 of (schema tag, source) — [PREPARE]ing the same text twice,
    or [RUN]ning an inline query the server has seen before, hits.
    Names given by [PREPARE <name>] are aliases onto the hash table, so
    a re-[PREPARE] of a name with new text simply repoints the alias.

    Eviction is FIFO at [capacity] parses; aliases to an evicted hash
    fall back to a re-parse on next use (the alias also remembers the
    source). *)

type prepared =
  | Xmlgl of Gql_xmlgl.Ast.program
  | Wglog of Gql_wglog.Ast.program
  | Match of Gql_match.Ast.query

type entry = {
  hash : string;  (** hex MD5 of (schema, source) *)
  lang : [ `Xmlgl | `Wglog | `Match ];
  schema : string option;
  source : string;
  prepared : prepared;
}

type t = {
  mutex : Mutex.t;
  capacity : int;
  by_hash : (string, entry) Hashtbl.t;
  fifo : string Queue.t;
  by_name : (string, string * string option) Hashtbl.t;
      (** name -> (source, schema): survives hash eviction *)
}

let create ?(capacity = 1024) () =
  {
    mutex = Mutex.create ();
    capacity = max 1 capacity;
    by_hash = Hashtbl.create 64;
    fifo = Queue.create ();
    by_name = Hashtbl.create 16;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let schema_of_tag = function
  | None -> Ok None
  | Some "restaurant" -> Ok (Some Gql_wglog.Schema.restaurant_schema)
  | Some "hyperdoc" -> Ok (Some Gql_wglog.Schema.hyperdoc_schema)
  | Some s -> Error (Printf.sprintf "unknown schema %S (restaurant|hyperdoc)" s)

let hash_of ~schema source =
  Digest.to_hex (Digest.string (Option.value ~default:"" schema ^ "\x00" ^ source))

let parse ~schema:tag source : (entry, string) result =
  match schema_of_tag tag with
  | Error _ as e -> e
  | Ok schema -> (
    match Gql_core.Gql.language_of_source source with
    | `Xmlgl -> (
      match Gql_core.Gql.parse_xmlgl source with
      | p ->
        Ok
          {
            hash = hash_of ~schema:tag source;
            lang = `Xmlgl;
            schema = tag;
            source;
            prepared = Xmlgl p;
          }
      | exception Gql_core.Gql.Error msg -> Error msg)
    | `Wglog -> (
      match Gql_core.Gql.parse_wglog ?schema source with
      | p ->
        Ok
          {
            hash = hash_of ~schema:tag source;
            lang = `Wglog;
            schema = tag;
            source;
            prepared = Wglog p;
          }
      | exception Gql_core.Gql.Error msg -> Error msg)
    | `Match -> (
      match Gql_core.Gql.parse_match source with
      | q ->
        Ok
          {
            hash = hash_of ~schema:tag source;
            lang = `Match;
            schema = tag;
            source;
            prepared = Match q;
          }
      | exception Gql_core.Gql.Error msg -> Error msg)
    | `Unknown ->
      Error "query source must start with 'xmlgl', 'wglog' or 'match'")

(** Insert under the lock, returning the *canonical* entry for the hash.
    A hash that is already cached (a concurrent parse of the same
    source, or a re-[PREPARE]) must NOT be pushed into [fifo] again:
    a duplicate queue slot makes the hash table look over-capacity
    later and evicts a live entry prematurely. *)
let insert t (e : entry) : entry =
  match Hashtbl.find_opt t.by_hash e.hash with
  | Some canonical -> canonical
  | None ->
    Hashtbl.replace t.by_hash e.hash e;
    Queue.push e.hash t.fifo;
    while Hashtbl.length t.by_hash > t.capacity do
      let victim = Queue.pop t.fifo in
      Hashtbl.remove t.by_hash victim
    done;
    e

(** Parse-or-reuse by source text; [hit] says the parse was skipped. *)
let intern t ~schema source : (entry * bool, string) result =
  let hash = hash_of ~schema source in
  match locked t (fun () -> Hashtbl.find_opt t.by_hash hash) with
  | Some e -> Ok (e, true)
  | None -> (
    match parse ~schema source with
    | Error _ as err -> err
    | Ok e ->
      let e = locked t (fun () -> insert t e) in
      Ok (e, false))

(** [PREPARE name]: intern the source and alias [name] to it. *)
let prepare t ~name ~schema source : (entry * bool, string) result =
  match intern t ~schema source with
  | Error _ as err -> err
  | Ok (e, hit) ->
    locked t (fun () -> Hashtbl.replace t.by_name name (source, schema));
    Ok (e, hit)

(** Resolve a [PREPARE]d name (re-parsing if the hash was evicted). *)
let find_named t name : (entry * bool, string) result =
  match locked t (fun () -> Hashtbl.find_opt t.by_name name) with
  | None -> Error (Printf.sprintf "no prepared query %S" name)
  | Some (source, schema) -> intern t ~schema source
