(** The XML-GL engine: match, filter, construct.

    [run_rule] evaluates one query/construction pair; [run_program]
    evaluates a set of rules and collects all their results under a
    single result root, which is how the paper composes "complex
    programs [that] may consist of various rules".

    [domains] on each entry point fans the embedding search out over
    OCaml domains (see {!Gql_graph.Par}); construction always runs
    sequentially on the calling domain. *)

exception Ill_formed of string list

let check_or_raise errs = if errs <> [] then raise (Ill_formed errs)

(** Evaluate one rule; returns the constructed forest. *)
let run_rule ?index ?domains (data : Gql_data.Graph.t) (r : Ast.rule) :
    Gql_xml.Tree.node list =
  check_or_raise (Ast.check_rule r);
  let bindings = Matching.run ?index ?domains data r.query in
  Construct.run data r.construction bindings

(** Evaluate a program; the result is a single element named after
    [p.result_root] containing every rule's output in rule order. *)
let run_program ?index ?domains (data : Gql_data.Graph.t) (p : Ast.program) :
    Gql_xml.Tree.element =
  check_or_raise (Ast.check_program p);
  let children = List.concat_map (fun r -> run_rule ?index ?domains data r) p.rules in
  { Gql_xml.Tree.name = p.result_root; attrs = []; children }

(** Convenience: evaluate over an XML string, producing an XML string. *)
let run_program_xml ?dtd (xml : string) (p : Ast.program) : string =
  let data = Gql_data.Codec.encode_string ?dtd xml in
  Gql_xml.Printer.element_to_string_pretty (run_program data p)

(** Bindings only — used by benches and the expressiveness matrix. *)
let query_bindings ?index ?domains (data : Gql_data.Graph.t) (q : Ast.query) =
  Matching.run ?index ?domains data q
