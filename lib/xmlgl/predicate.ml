(** Evaluation of XML-GL content predicates against a (partial) binding.

    Predicates live on content circles and attribute dots in the query
    graph; operands may refer to the node's own value ([Self]), to other
    query nodes' values (value joins and the arithmetic conditions of
    QBE-style condition boxes) and to constants.

    Evaluation is three-valued in spirit but collapses to [false] on
    missing information (an unbound reference or a non-numeric operand of
    an arithmetic expression): semi-structured data is ragged by design
    and a failed lookup is a non-match, never a crash. *)

open Gql_data

type env = {
  data : Graph.t;
  binding : int array;  (** query node id -> data node, or -1 *)
}

let node_value env qid =
  if qid < 0 || qid >= Array.length env.binding then None
  else
    let dn = env.binding.(qid) in
    if dn < 0 then None else Some (Graph.node_value env.data dn)

let rec eval_operand env ~self (op : Ast.operand) : Value.t option =
  match op with
  | Ast.Const v -> Some v
  | Ast.Self -> self
  | Ast.Node_value qid -> node_value env qid
  | Ast.Arith (aop, a, b) -> (
    match eval_operand env ~self a, eval_operand env ~self b with
    | Some x, Some y ->
      let o =
        match aop with
        | Ast.Add -> `Add
        | Ast.Sub -> `Sub
        | Ast.Mul -> `Mul
        | Ast.Div -> `Div
      in
      Value.arith o x y
    | (Some _ | None), _ -> None)

(* Regex predicates are compiled once per distinct pattern and cached;
   rules are evaluated over thousands of candidate nodes.  The cache is
   reached from node predicates during matching, which may run on
   several domains at once — hence the mutex (compiling under the lock
   is fine: it happens once per distinct pattern). *)
let regex_cache : (string, Gql_regex.Chre.t) Hashtbl.t = Hashtbl.create 16
let regex_cache_lock = Mutex.create ()

let compiled_regex pattern =
  Mutex.protect regex_cache_lock (fun () ->
      match Hashtbl.find_opt regex_cache pattern with
      | Some t -> t
      | None ->
        let t = Gql_regex.Chre.compile pattern in
        Hashtbl.replace regex_cache pattern t;
        t)

let contains_sub ~needle hay =
  let hl = String.length hay and nl = String.length needle in
  let rec find i =
    if i + nl > hl then false
    else if String.sub hay i nl = needle then true
    else find (i + 1)
  in
  nl = 0 || find 0

let rec eval env ~self (p : Ast.predicate) : bool =
  match p with
  | Ast.Compare (op, a, b) -> (
    match eval_operand env ~self a, eval_operand env ~self b with
    | Some x, Some y -> (
      let c = Value.compare_values x y in
      match op with
      | Ast.Eq -> c = 0
      | Ast.Neq -> c <> 0
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0)
    | (Some _ | None), _ -> false)
  | Ast.Contains_str (a, needle) -> (
    match eval_operand env ~self a with
    | Some v -> contains_sub ~needle (Value.to_string v)
    | None -> false)
  | Ast.Starts_with (a, prefix) -> (
    match eval_operand env ~self a with
    | Some v ->
      let s = Value.to_string v in
      String.length prefix <= String.length s
      && String.sub s 0 (String.length prefix) = prefix
    | None -> false)
  | Ast.Matches (a, pattern) -> (
    match eval_operand env ~self a with
    | Some v -> Gql_regex.Chre.search (compiled_regex pattern) (Value.to_string v)
    | None -> false)
  | Ast.And (a, b) -> eval env ~self a && eval env ~self b
  | Ast.Or (a, b) -> eval env ~self a || eval env ~self b
  | Ast.Not a -> not (eval env ~self a)

(** Does the predicate only depend on the node itself (no cross-node
    references)?  Such predicates are pushed into candidate selection. *)
let is_local (p : Ast.predicate) = Ast.pred_refs p = []

(** A constant the node's own value must equal for [p] to hold, when one
    is syntactically evident ([self = c], possibly under [And]).  Used to
    narrow index candidates: any node matching [p] also satisfies the
    returned equality, so the value index yields a sound superset. *)
let rec equality_const (p : Ast.predicate) : Value.t option =
  match p with
  | Ast.Compare (Ast.Eq, Ast.Self, Ast.Const v)
  | Ast.Compare (Ast.Eq, Ast.Const v, Ast.Self) ->
    Some v
  | Ast.And (a, b) -> (
    match equality_const a with
    | Some v -> Some v
    | None -> equality_const b)
  | Ast.Compare _ | Ast.Contains_str _ | Ast.Starts_with _ | Ast.Matches _
  | Ast.Or _ | Ast.Not _ ->
    None
