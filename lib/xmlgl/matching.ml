(** The XML-GL matcher: from a query graph to the set of bindings.

    Compilation to [Gql_graph.Homo]:
    - every query node becomes a pattern node whose candidate predicate
      combines the shape test (box -> complex node, circle -> atom) with
      any *local* content predicate (pushed down for pruning);
    - containment edges become direct-edge constraints, deep edges
      become regular paths over Child edges, attribute edges match
      [Attribute] edges by name, reference edges match [Ref]/[Rel];
    - a content/attribute circle with several incoming edges is the
      paper's *value join*: it is split into one pattern node per
      incoming edge plus value-equality filters (two distinct text nodes
      with equal values must join, identity would be too strong);
    - [Absent] edges are removed from the positive pattern and enforced
      as negative post-filters;
    - ordered containment (the tick) is checked per embedding: the bound
      children must appear in the same relative document order as the
      pattern edges.

    The result of matching is a list of environments mapping query node
    ids to data nodes. *)

open Gql_data

type binding = int array
(** [b.(q)] = data node bound to query node [q]. *)

type compiled = {
  query : Ast.query;
  pattern : (Graph.node_kind, Graph.edge) Gql_graph.Homo.pattern;
  qpos : int array;
      (** query node -> pattern node, or -1 for nodes that exist only as
          targets of [Absent] edges (they never bind) *)
  pat_to_query : int array;  (** pattern node -> query node *)
  value_join_groups : int list list;
      (** pattern nodes that must agree on value *)
  absent_checks : (int * Ast.qnode) list;
      (** (pattern node of src, absent child spec) *)
  ordered_groups : (int * int list) list;
      (** (src pattern node, dst pattern nodes in pattern order) *)
  cross_preds : (int * Ast.predicate) list;
      (** non-local predicates: (query node, predicate) *)
  edge_kinds : Ast.qedge_kind list;
      (** the query-edge kind behind each element of [pattern.p_edges]
          (same order) — what the index-backed provider navigates by *)
}

let name_test_matches data test dn =
  match Graph.label data dn with
  | None -> false
  | Some l -> (
    match test with
    | Ast.Exact n -> l = n
    | Ast.Any_name -> true
    | Ast.Name_re pattern ->
      Gql_regex.Chre.matches (Predicate.compiled_regex pattern) l)

(* With an index in hand, a name test is an integer compare against the
   node's interned label symbol ([Index.node_sym], -1 for atoms) — one
   symbol resolution per *query*, not one string compare per candidate.
   Regex name tests memoise their verdict per label symbol, so the
   automaton runs once per distinct label ever probed (a benign write
   race under domains: every domain computes the same byte). *)
let name_test_sym (idx : Index.t) test : int -> bool =
  match test with
  | Ast.Exact n ->
    let sym = Index.label_sym idx n in
    fun dn -> sym >= 0 && Index.node_sym idx dn = sym
  | Ast.Any_name -> fun dn -> Index.node_sym idx dn >= 0
  | Ast.Name_re pattern ->
    let re = Predicate.compiled_regex pattern in
    let n_syms = Gql_data.Symtab.length (Index.symtab idx) in
    let memo = Bytes.make (max 1 n_syms) '\000' in
    fun dn ->
      let s = Index.node_sym idx dn in
      s >= 0
      && (match Bytes.get memo s with
         | '\001' -> true
         | '\002' -> false
         | _ ->
           let ok =
             Gql_regex.Chre.matches re
               (Gql_data.Symtab.name (Index.symtab idx) s)
           in
           Bytes.set memo s (if ok then '\001' else '\002');
           ok)

(* Candidate predicate for one query node, with local predicate pushdown.
   [index] specialises the name test to interned-symbol compares; the
   accepted node set is identical either way (scan-vs-index oracle). *)
let node_predicate ?(index : Index.t option) data (qn : Ast.qnode) :
    int -> Graph.node_kind -> bool =
  let local_pred =
    match qn.q_pred with
    | Some p when Predicate.is_local p -> Some p
    | Some _ | None -> None
  in
  let check_local dn self =
    match local_pred with
    | None -> true
    | Some p ->
      ignore dn;
      Predicate.eval { Predicate.data; binding = [||] } ~self:(Some self) p
  in
  match qn.q_kind with
  | Ast.Q_elem test ->
    let name_ok : int -> bool =
      match index with
      | Some idx -> name_test_sym idx test
      | None -> fun dn -> name_test_matches data test dn
    in
    fun dn kind ->
      (match kind with Graph.Complex _ -> true | Graph.Atom _ -> false)
      && name_ok dn
      && (local_pred = None || check_local dn (Graph.node_value data dn))
  | Ast.Q_content | Ast.Q_attr ->
    fun dn kind ->
      (match kind with
      | Graph.Atom v -> check_local dn v
      | Graph.Complex _ -> false)

let deep_path : Graph.edge Gql_graph.Regpath.t =
  (* one or more containment steps; classified [Lany] on the child-edge
     plane, so frozen snapshots run it as pure int-compare hops *)
  Gql_graph.Regpath.compile_classified ~plane_hint:Index.plane_child
    ~classify:(fun () -> Gql_graph.Regpath.Lany)
    (fun () (e : Graph.edge) -> e.Graph.kind = Graph.Child)
    (Gql_regex.Syntax.plus (Gql_regex.Syntax.sym ()))

let edge_constraint (k : Ast.qedge_kind) :
    (Graph.node_kind, Graph.edge) Gql_graph.Homo.edge_constraint option =
  match k with
  | Ast.Contains { position; _ } ->
    Some
      (Gql_graph.Homo.Direct
         (fun e ->
           e.Graph.kind = Graph.Child
           &&
           match position with
           | None -> true
           | Some p -> e.Graph.ord = Some p))
  | Ast.Deep -> Some (Gql_graph.Homo.Path deep_path)
  | Ast.Attr_of name ->
    Some
      (Gql_graph.Homo.Direct
         (fun e -> e.Graph.kind = Graph.Attribute && e.Graph.name = name))
  | Ast.Ref_to name ->
    Some
      (Gql_graph.Homo.Direct
         (fun e ->
           (e.Graph.kind = Graph.Ref || e.Graph.kind = Graph.Rel)
           &&
           match name with
           | None -> true
           | Some n -> e.Graph.name = n))
  | Ast.Absent -> None

let compile ?(index : Index.t option) (data : Graph.t) (q : Ast.query) :
    compiled =
  let nq = Array.length q.q_nodes in
  (* Count positive incoming edges per node to find value-join circles,
     and incident non-absent edges to find absent-only nodes. *)
  let incoming = Array.make nq 0 in
  let positive_incident = Array.make nq 0 in
  let absent_target = Array.make nq false in
  List.iter
    (fun (e : Ast.qedge) ->
      match e.q_kind_e with
      | Ast.Absent ->
        absent_target.(e.q_dst) <- true;
        positive_incident.(e.q_src) <- positive_incident.(e.q_src) + 1
      | Ast.Contains _ | Ast.Deep | Ast.Attr_of _ | Ast.Ref_to _ ->
        incoming.(e.q_dst) <- incoming.(e.q_dst) + 1;
        positive_incident.(e.q_src) <- positive_incident.(e.q_src) + 1;
        positive_incident.(e.q_dst) <- positive_incident.(e.q_dst) + 1)
    q.q_edges;
  (* Nodes referenced by any predicate must bind. *)
  let pred_referenced = Array.make nq false in
  Array.iter
    (fun (n : Ast.qnode) ->
      match n.q_pred with
      | Some p -> List.iter (fun m -> if m < nq then pred_referenced.(m) <- true) (Ast.pred_refs p)
      | None -> ())
    q.q_nodes;
  (* A node that exists ONLY as the target of Absent edges never binds:
     it is a description of what must not exist, not a variable. *)
  let excluded qid =
    absent_target.(qid) && positive_incident.(qid) = 0
    && not pred_referenced.(qid)
  in
  (* Pattern positions: kept query nodes in order, then split circles. *)
  let qpos = Array.make nq (-1) in
  let kept = ref [] in
  for qid = nq - 1 downto 0 do
    if not (excluded qid) then kept := qid :: !kept
  done;
  List.iteri (fun pos qid -> qpos.(qid) <- pos) !kept;
  let n_kept = List.length !kept in
  let splits = ref [] in
  let n_splits = ref 0 in
  let add_split qid =
    let pid = n_kept + !n_splits in
    incr n_splits;
    splits := qid :: !splits;
    pid
  in
  let join_groups : (int, int list) Hashtbl.t = Hashtbl.create 4 in
  let seen_edge_to : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let p_edges = ref [] in
  let p_kinds = ref [] in
  let absent_checks = ref [] in
  let is_circle qid =
    match q.q_nodes.(qid).q_kind with
    | Ast.Q_content | Ast.Q_attr -> true
    | Ast.Q_elem _ -> false
  in
  List.iter
    (fun (e : Ast.qedge) ->
      match edge_constraint e.q_kind_e with
      | None ->
        (* Absent edge: record the child spec for post-filtering. *)
        absent_checks := (qpos.(e.q_src), q.q_nodes.(e.q_dst)) :: !absent_checks
      | Some c ->
        let dst =
          if is_circle e.q_dst && incoming.(e.q_dst) > 1 then begin
            (* Value join: first incoming edge targets the original node,
               later ones target split copies. *)
            if Hashtbl.mem seen_edge_to e.q_dst then begin
              let pid = add_split e.q_dst in
              let group =
                match Hashtbl.find_opt join_groups e.q_dst with
                | Some g -> g
                | None -> [ qpos.(e.q_dst) ]
              in
              Hashtbl.replace join_groups e.q_dst (pid :: group);
              pid
            end
            else begin
              Hashtbl.replace seen_edge_to e.q_dst 1;
              Hashtbl.replace join_groups e.q_dst [ qpos.(e.q_dst) ];
              qpos.(e.q_dst)
            end
          end
          else qpos.(e.q_dst)
        in
        p_edges := (qpos.(e.q_src), c, dst) :: !p_edges;
        p_kinds := e.q_kind_e :: !p_kinds)
    q.q_edges;
  let splits = List.rev !splits in
  let total = n_kept + List.length splits in
  let query_of_pid pid =
    if pid < n_kept then List.nth !kept pid else List.nth splits (pid - n_kept)
  in
  let p_nodes =
    Array.init total (fun pid ->
        node_predicate ?index data q.q_nodes.(query_of_pid pid))
  in
  let pat_to_query_arr = Array.init total query_of_pid in
  let value_join_groups =
    Hashtbl.fold
      (fun _ g acc -> if List.length g > 1 then g :: acc else acc)
      join_groups []
  in
  (* Ordered containment groups (pattern positions). *)
  let ordered_groups =
    let by_src = Hashtbl.create 4 in
    List.iter
      (fun (e : Ast.qedge) ->
        match e.q_kind_e with
        | Ast.Contains { ordered = true; _ } ->
          let cur =
            match Hashtbl.find_opt by_src e.q_src with Some l -> l | None -> []
          in
          Hashtbl.replace by_src e.q_src (qpos.(e.q_dst) :: cur)
        | Ast.Contains _ | Ast.Deep | Ast.Attr_of _ | Ast.Ref_to _ | Ast.Absent
          ->
          ())
      q.q_edges;
    Hashtbl.fold (fun src dsts acc -> (qpos.(src), List.rev dsts) :: acc) by_src []
  in
  let cross_preds =
    Array.to_list q.q_nodes
    |> List.mapi (fun qid (n : Ast.qnode) -> (qid, n.q_pred))
    |> List.filter_map (fun (qid, p) ->
           match p with
           | Some p when not (Predicate.is_local p) -> Some (qid, p)
           | Some _ | None -> None)
  in
  {
    query = q;
    pattern = { Gql_graph.Homo.p_nodes; p_edges = List.rev !p_edges };
    qpos;
    pat_to_query = pat_to_query_arr;
    value_join_groups;
    absent_checks = List.rev !absent_checks;
    ordered_groups;
    cross_preds;
    edge_kinds = List.rev !p_kinds;
  }

(* --- index-backed candidate provider --------------------------------- *)

(** Global candidates for one query node, from the index — zero-copy
    posting sets.  Supersets are sound: [Gql_graph.Homo] re-applies the
    node predicate.  Regex name tests run once per distinct label
    instead of once per node. *)
let index_candidates (idx : Index.t) (qn : Ast.qnode) : Gql_graph.Iset.t =
  match qn.q_kind with
  | Ast.Q_elem (Ast.Exact n) -> Index.complex_with_label idx n
  | Ast.Q_elem Ast.Any_name -> Index.all_complex idx
  | Ast.Q_elem (Ast.Name_re pattern) ->
    let re = Predicate.compiled_regex pattern in
    Index.complex_matching idx (fun l -> Gql_regex.Chre.matches re l)
  | Ast.Q_content | Ast.Q_attr -> (
    match qn.q_pred with
    | Some p when Predicate.is_local p -> (
      match Predicate.equality_const p with
      | Some v -> Index.atoms_equal idx v
      | None -> Index.all_atoms idx)
    | Some _ | None -> Index.all_atoms idx)

let index_nav (idx : Index.t) (k : Ast.qedge_kind) : Gql_graph.Homo.nav option =
  match k with
  | Ast.Contains { position = None; _ } -> Some (Index.nav_child idx)
  | Ast.Contains { position = Some _; _ } ->
    (* child adjacency is a superset; the ordinal is re-checked *)
    Some (Index.nav_child_superset idx)
  | Ast.Deep -> Some (Index.nav_path idx deep_path)
  | Ast.Attr_of name -> Some (Index.nav_attr idx name)
  | Ast.Ref_to None -> Some (Index.nav_ref idx)
  | Ast.Ref_to (Some name) -> Some (Index.nav_ref_named idx name)
  | Ast.Absent -> None

(** The candidate provider routing this compiled query through [idx]. *)
let provider (idx : Index.t) (c : compiled) :
    (Graph.node_kind, Graph.edge) Gql_graph.Homo.provider =
  let navs = Array.of_list (List.map (index_nav idx) c.edge_kinds) in
  Index.provider ~navs idx ~candidates:(fun p ->
      Some (index_candidates idx c.query.Ast.q_nodes.(c.pat_to_query.(p))))

(** Translate a pattern-space embedding into query-node space ([-1] for
    nodes that never bind). *)
let to_query_binding (c : compiled) (emb : int array) : int array =
  Array.map (fun pos -> if pos >= 0 then emb.(pos) else -1) c.qpos

(* --- post filters --------------------------------------------------- *)

let child_ord data ~parent ~child =
  (* Position of [child] among [parent]'s Child edges; None if not a
     direct child. *)
  List.find_map
    (fun (dst, (e : Graph.edge)) ->
      if dst = child && e.Graph.kind = Graph.Child then e.Graph.ord else None)
    (Graph.out data parent)

let embedding_ok (c : compiled) (data : Graph.t) (emb : int array) : bool =
  (* value joins *)
  List.for_all
    (fun group ->
      match group with
      | [] | [ _ ] -> true
      | first :: rest ->
        let v p = Graph.node_value data emb.(p) in
        let v0 = v first in
        List.for_all (fun p -> Value.equal_values v0 (v p)) rest)
    c.value_join_groups
  && (* absent children *)
  List.for_all
    (fun (src_q, (spec : Ast.qnode)) ->
      let src_dn = emb.(src_q) in
      let matches_spec dn =
        let kind = Graph.kind data dn in
        node_predicate data spec dn kind
      in
      not
        (List.exists (fun (child, _) -> matches_spec child) (Graph.children data src_dn)))
    c.absent_checks
  && (* ordered containment *)
  List.for_all
    (fun (src_q, dst_qs) ->
      let parent = emb.(src_q) in
      let ords =
        List.map (fun dq -> child_ord data ~parent ~child:emb.(dq)) dst_qs
      in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | [ _ ] | [] -> true
      in
      List.for_all Option.is_some ords
      && increasing (List.filter_map Fun.id ords))
    c.ordered_groups
  && (* cross-node predicates *)
  let binding = to_query_binding c emb in
  List.for_all
    (fun (qid, p) ->
      let dn = binding.(qid) in
      let self = if dn >= 0 then Some (Graph.node_value data dn) else None in
      Predicate.eval { Predicate.data; binding } ~self p)
    c.cross_preds

(** All bindings of the query in the data graph; [index] routes the
    embedding search through the frozen index instead of graph scans;
    [domains] partitions the first pattern node's candidates over that
    many domains (answers are byte-identical to sequential). *)
let run ?(index : Index.t option) ?domains (data : Graph.t) (q : Ast.query) :
    binding list =
  let c = compile ?index data q in
  let provider = Option.map (fun idx -> provider idx c) index in
  let out = ref [] in
  Gql_graph.Homo.iter_embeddings ?provider ?domains c.pattern (Graph.digraph data)
    ~emit:(fun emb ->
      if embedding_ok c data emb then out := to_query_binding c emb :: !out);
  List.rev !out

let count ?index ?domains (data : Graph.t) (q : Ast.query) : int =
  List.length (run ?index ?domains data q)
