(** Instantiation of XML-GL construction graphs.

    The construction side is evaluated against the full set of bindings
    produced by {!Matching.run}.  Multiplicity is contextual, which is
    exactly how the paper's three aggregation constructs behave:

    - a fresh element box ([C_elem]) is instantiated once per call — at
      the top level that means once per rule, giving the collecting
      [RESULT] element of the aggregation figure;
    - a box attached to the query side ([C_copy_of]) is instantiated once
      per *distinct binding* of its query node within the current
      context, narrowing the context for its subtree — "for each element
      the query pattern has matched, an element is constructed";
    - a triangle ([C_all]) deep-copies every distinct binding in the
      current context under one parent;
    - a list icon ([C_group]) partitions the current context by the value
      of its grouping node and instantiates its subtree once per group.

    Shared subtrees and ID/IDREF links in copied regions are handled by
    [Gql_data.Codec.decode]. *)

open Gql_data

exception Invalid_query of string
(** A construction graph reached evaluation in a shape the static checks
    should have refused (e.g. an aggregate function applied where it
    cannot be computed).  Raised instead of [assert false] so a server
    worker answers ERROR rather than dying. *)

type context = Matching.binding list

let distinct_bindings (ctx : context) (source : int) : (int * context) list =
  (* Distinct data nodes bound to [source], in order of first occurrence,
     each with the narrowed context. *)
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun b ->
      let dn = b.(source) in
      if dn >= 0 then
        match Hashtbl.find_opt seen dn with
        | Some cell -> cell := b :: !cell
        | None ->
          let cell = ref [ b ] in
          Hashtbl.replace seen dn cell;
          order := dn :: !order)
    ctx;
  (* [!order] holds the most recent first; rev_map restores first-seen
     (match) order *)
  List.rev_map (fun dn -> (dn, List.rev !(Hashtbl.find seen dn))) !order

let distinct_values (data : Graph.t) (ctx : context) (source : int) :
    (Value.t * context) list =
  let groups : (string * (Value.t * Matching.binding list ref)) list ref =
    ref []
  in
  List.iter
    (fun b ->
      let dn = b.(source) in
      if dn >= 0 then begin
        let v = Graph.node_value data dn in
        let key = Value.to_string v in
        match List.assoc_opt key !groups with
        | Some (_, cell) -> cell := b :: !cell
        | None -> groups := !groups @ [ (key, (v, ref [ b ])) ]
      end)
    ctx;
  List.map (fun (_, (v, cell)) -> (v, List.rev !cell)) !groups

let aggregate_value (data : Graph.t) (ctx : context) fn source : Value.t option =
  let bindings = distinct_bindings ctx source in
  match fn with
  | Ast.Count -> Some (Value.int (List.length bindings))
  | Ast.Sum | Ast.Min | Ast.Max | Ast.Avg -> (
    let nums =
      List.filter_map
        (fun (dn, _) -> Value.as_number (Graph.node_value data dn))
        bindings
    in
    match nums with
    | [] -> None
    | first :: rest -> (
      match fn with
      | Ast.Sum -> Some (Value.float (List.fold_left ( +. ) first rest))
      | Ast.Min -> Some (Value.float (List.fold_left Float.min first rest))
      | Ast.Max -> Some (Value.float (List.fold_left Float.max first rest))
      | Ast.Avg ->
        Some
          (Value.float
             (List.fold_left ( +. ) first rest /. float_of_int (List.length nums)))
      | Ast.Count ->
        (* unreachable: the outer match returns Count before the numeric
           branch — but a typed error beats a fatal assert if the
           dispatch ever drifts *)
        raise (Invalid_query "count aggregate reached the numeric fold")))

type compiled_cons = {
  cons : Ast.construction;
  children : (int * Ast.cedge list) list;  (** per parent, sorted by ord *)
}

let compile (cons : Ast.construction) : compiled_cons =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Ast.cedge) ->
      let cur =
        match Hashtbl.find_opt tbl e.c_parent with Some l -> l | None -> []
      in
      Hashtbl.replace tbl e.c_parent (e :: cur))
    cons.c_edges;
  let children =
    Hashtbl.fold
      (fun p es acc ->
        (p, List.sort (fun (a : Ast.cedge) b -> compare a.c_ord b.c_ord) es)
        :: acc)
      tbl []
  in
  { cons; children }

let edges_of cc parent =
  match List.assoc_opt parent cc.children with Some l -> l | None -> []

(** The scalar value of a construction node in a context — used for
    attribute-producing edges. *)
let scalar_value data cc ctx cid : string option =
  match cc.cons.Ast.c_nodes.(cid).Ast.c_kind with
  | Ast.C_const v -> Some (Value.to_string v)
  | Ast.C_value_of source -> (
    match distinct_values data ctx source with
    | (v, _) :: _ -> Some (Value.to_string v)
    | [] -> None)
  | Ast.C_copy_of { source; _ } -> (
    match distinct_bindings ctx source with
    | (dn, _) :: _ -> Some (Graph.string_value data dn)
    | [] -> None)
  | Ast.C_aggregate { fn; source } ->
    Option.map Value.to_string (aggregate_value data ctx fn source)
  | Ast.C_elem _ | Ast.C_all _ | Ast.C_group _ | Ast.C_unnest _ -> None

let rec instantiate (data : Graph.t) (cc : compiled_cons) (ctx : context)
    (cid : int) : Gql_xml.Tree.node list =
  let open Gql_xml.Tree in
  match cc.cons.Ast.c_nodes.(cid).Ast.c_kind with
  | Ast.C_const v -> [ Text (Value.to_string v) ]
  | Ast.C_value_of source ->
    List.map (fun (v, _) -> Text (Value.to_string v)) (distinct_values data ctx source)
  | Ast.C_elem { name; per = None } ->
    let attrs, children = build_children data cc ctx cid in
    [ Element { name; attrs; children } ]
  | Ast.C_elem { name; per = Some source } ->
    List.map
      (fun (_, narrowed) ->
        let attrs, children = build_children data cc narrowed cid in
        Element { name; attrs; children })
      (distinct_bindings ctx source)
  | Ast.C_copy_of { source; deep } ->
    List.concat_map
      (fun (dn, narrowed) ->
        match Graph.kind data dn with
        | Graph.Atom v -> [ Text (Value.to_string v) ]
        | Graph.Complex label ->
          if deep then [ Element (Codec.decode data dn) ]
          else begin
            let own_attrs =
              List.map
                (fun (a, v) -> (a, Value.to_string v))
                (Graph.attributes data dn)
            in
            let extra_attrs, children = build_children data cc narrowed cid in
            [ Element { name = label; attrs = own_attrs @ extra_attrs; children } ]
          end)
      (distinct_bindings ctx source)
  | Ast.C_all source ->
    List.map
      (fun (dn, _) ->
        match Graph.kind data dn with
        | Graph.Atom v -> Text (Value.to_string v)
        | Graph.Complex _ -> Element (Codec.decode data dn))
      (distinct_bindings ctx source)
  | Ast.C_aggregate { fn; source } -> (
    match aggregate_value data ctx fn source with
    | Some v -> [ Text (Value.to_string v) ]
    | None -> [])
  | Ast.C_unnest source ->
    (* flatten: the children of each bound node, in stored order *)
    List.concat_map
      (fun (dn, _) ->
        List.map
          (fun (c, _) ->
            match Graph.kind data c with
            | Graph.Atom v -> Text (Value.to_string v)
            | Graph.Complex _ -> Element (Codec.decode data c))
          (Graph.children data dn))
      (distinct_bindings ctx source)
  | Ast.C_group { by } ->
    List.concat_map
      (fun (_, narrowed) ->
        List.concat_map
          (fun (e : Ast.cedge) -> instantiate data cc narrowed e.c_child)
          (edges_of cc cid))
      (distinct_values data ctx by)

and build_children data cc ctx cid :
    (string * string) list * Gql_xml.Tree.node list =
  List.fold_left
    (fun (attrs, children) (e : Ast.cedge) ->
      match e.Ast.c_as_attr with
      | Some aname -> (
        match scalar_value data cc ctx e.c_child with
        | Some v -> (attrs @ [ (aname, v) ], children)
        | None -> (attrs, children))
      | None -> (attrs, children @ instantiate data cc ctx e.c_child))
    ([], []) (edges_of cc cid)

(** Instantiate a whole construction for a binding set. *)
let run (data : Graph.t) (cons : Ast.construction) (ctx : context) :
    Gql_xml.Tree.node list =
  let cc = compile cons in
  List.concat_map (fun root -> instantiate data cc ctx root) cons.Ast.c_roots
