(** Regular path queries.

    GraphLog introduced dashed edges carrying a regular expression over
    edge labels: such an edge matches any *path* in the database whose
    label word belongs to the expression's language (e.g. [index+] in the
    paper's root-link example).  WG-Log inherits the construct, so the
    matcher needs: given a start node and a label regex, which nodes are
    reachable by a matching path?

    Implementation: compile the regex to a Thompson NFA over labels and
    run a BFS over the product (graph node x NFA state set).  The state
    space is bounded by |V| * 2^|Q| in theory but the frontier is tiny in
    practice; visited pairs are memoised per node via sorted state-id
    lists.  Cost is O(|V| * |E| * |Q|)-ish on real inputs, good enough for
    the fixpoint loops in [Gql_wglog]. *)

(* The NFA engine lives in Gql_regex; a thin alias keeps callers dealing
   only with this module. *)
module Nfa_runner = struct
  type 'e t = 'e Gql_regex.Nfa.t

  let compile = Gql_regex.Nfa.compile
  let start_set = Gql_regex.Nfa.start_set
  let step = Gql_regex.Nfa.step
  let accepting = Gql_regex.Nfa.accepts_set
end

type 'e t = { nfa : 'e Nfa_runner.t }

let compile (pred : 'a -> 'e -> bool) (re : 'a Gql_regex.Syntax.t) : 'e t =
  { nfa = Nfa_runner.compile pred re }

let key_of_set set =
  let b = Buffer.create 16 in
  Array.iteri (fun i m -> if m then (Buffer.add_string b (string_of_int i); Buffer.add_char b ',')) set;
  Buffer.contents b

(* The product BFS, parametric in how successors are enumerated so the
   same search runs over a mutable [Digraph] or a frozen [Csr] view. *)
let reachable_iter (rp : 'e t) ~(iter_succ : Digraph.node -> (Digraph.node -> 'e -> unit) -> unit)
    (start : Digraph.node) : Digraph.node list =
  let init = Nfa_runner.start_set rp.nfa in
  let seen : (int * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let results = Hashtbl.create 16 in
  let queue = Queue.create () in
  let enqueue node set =
    if Array.exists Fun.id set then begin
      let key = (node, key_of_set set) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        Queue.add (node, set) queue
      end
    end
  in
  enqueue start init;
  while not (Queue.is_empty queue) do
    let node, set = Queue.take queue in
    if Nfa_runner.accepting rp.nfa set then Hashtbl.replace results node ();
    iter_succ node (fun next label -> enqueue next (Nfa_runner.step rp.nfa set label))
  done;
  Hashtbl.fold (fun n () acc -> n :: acc) results [] |> List.sort compare

(** All nodes reachable from [start] along a path whose labels match the
    expression.  The empty path counts when the expression is nullable
    (so [start] itself may be returned). *)
let reachable (rp : 'e t) (g : ('n, 'e) Digraph.t) (start : Digraph.node) :
    Digraph.node list =
  reachable_iter rp start
    ~iter_succ:(fun node f -> List.iter (fun (next, l) -> f next l) (Digraph.succ g node))

(** Same search over a frozen CSR view — array slices instead of cons
    lists, used by the indexed matcher. *)
let reachable_frozen (rp : 'e t) (c : ('n, 'e) Csr.t) (start : Digraph.node) :
    Digraph.node list =
  reachable_iter rp start ~iter_succ:(fun node f -> Csr.iter_succ f c node)

(** Does a matching path lead from [src] to [dst]? *)
let connects rp g ~src ~dst = List.mem dst (reachable rp g src)

let connects_frozen rp c ~src ~dst = List.mem dst (reachable_frozen rp c src)

(** Reference implementation for property tests: enumerate all simple-ish
    paths up to [max_len] hops and check their label words against the
    regex via naive NFA word-matching.  Exponential; small graphs only. *)
let reachable_naive (pred : 'a -> 'e -> bool) (re : 'a Gql_regex.Syntax.t)
    (g : ('n, 'e) Digraph.t) (start : Digraph.node) ~max_len =
  let nfa = Gql_regex.Nfa.compile pred re in
  let results = Hashtbl.create 16 in
  let rec go node word len =
    if Gql_regex.Nfa.run_list nfa (List.rev word) then
      Hashtbl.replace results node ();
    if len < max_len then
      List.iter (fun (next, l) -> go next (l :: word) (len + 1)) (Digraph.succ g node)
  in
  go start [] 0;
  Hashtbl.fold (fun n () acc -> n :: acc) results [] |> List.sort compare
