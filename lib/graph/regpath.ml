(** Regular path queries — flat product-automaton engine.

    GraphLog introduced dashed edges carrying a regular expression over
    edge labels: such an edge matches any *path* in the database whose
    label word belongs to the expression's language (e.g. [index+] in the
    paper's root-link example).  WG-Log inherits the construct, XML-GL's
    deep containment is the special case [child+], and the textual MATCH
    front-end exposes the full surface — so this module is the
    navigational workhorse of all three engines.

    Implementation: the regex is compiled once into a dense int-indexed
    automaton — a Thompson NFA flattened into offset/target arrays with
    every ε-transition eliminated up front (start states are the
    ε-closure of the Thompson start; each symbol transition's target set
    is pre-expanded through its ε-closure).  Evaluation is then a plain
    BFS over single [(node, state)] pairs: the product space is
    [|V| * |Q|], visited pairs live in a flat [Bytes] bitset, the
    frontier is an int array whose retained prefix doubles as the
    touched list (so clearing costs O(visited), not O(|V|*|Q|)), and no
    list cell is allocated on the hot path.  Scratch buffers are
    domain-local and reused across searches; [connects] exits on the
    first accepting pair; a reverse automaton compiled alongside the
    forward one answers "which sources reach [n]" without scanning the
    graph.

    Each symbol leaf carries both a predicate closure (for mutable
    [Digraph]s and generic frozen views) and a classification
    ([Lany]/[Lname]/[Lopaque]) that [Gql_data.Index] resolves against
    the snapshot's interned symbols, turning label tests on the frozen
    planes into single integer compares. *)

(* ------------------------------------------------------------------ *)
(* Engine counters, mirroring [Par.stats].                             *)

let c_compiles = Atomic.make 0
let c_specialisations = Atomic.make 0
let c_searches = Atomic.make 0
let c_memo_hits = Atomic.make 0
let c_memo_misses = Atomic.make 0
let c_frontier_peak = Atomic.make 0
let c_scratch_reuses = Atomic.make 0

type stats = {
  compiles : int;  (** regexes compiled to automata *)
  specialisations : int;  (** per-snapshot symbol resolutions *)
  searches : int;  (** product-BFS runs (any direction, any backend) *)
  memo_hits : int;  (** snapshot path-memo hits (bumped by the index) *)
  memo_misses : int;
  frontier_peak : int;  (** high-water (node,state) pairs in one search *)
  scratch_reuses : int;  (** searches that reused a warm domain-local scratch *)
}

let stats () =
  {
    compiles = Atomic.get c_compiles;
    specialisations = Atomic.get c_specialisations;
    searches = Atomic.get c_searches;
    memo_hits = Atomic.get c_memo_hits;
    memo_misses = Atomic.get c_memo_misses;
    frontier_peak = Atomic.get c_frontier_peak;
    scratch_reuses = Atomic.get c_scratch_reuses;
  }

(* [frontier_peak] is a high-water mark, not a monotone count: a diff
   reports the after-side value rather than a meaningless subtraction. *)
let stats_diff ~(before : stats) (after : stats) : stats =
  {
    compiles = after.compiles - before.compiles;
    specialisations = after.specialisations - before.specialisations;
    searches = after.searches - before.searches;
    memo_hits = after.memo_hits - before.memo_hits;
    memo_misses = after.memo_misses - before.memo_misses;
    frontier_peak = after.frontier_peak;
    scratch_reuses = after.scratch_reuses - before.scratch_reuses;
  }

let stats_lines () =
  let s = stats () in
  Printf.sprintf
    "path_compiles=%d\npath_specialisations=%d\npath_searches=%d\n\
     path_memo_hits=%d\npath_memo_misses=%d\npath_frontier_peak=%d\n\
     path_scratch_reuses=%d\n"
    s.compiles s.specialisations s.searches s.memo_hits s.memo_misses
    s.frontier_peak s.scratch_reuses

(* The snapshot index owns the memo table; it reports outcomes here so
   all path counters serve from one place. *)
let note_memo_hit () = Atomic.incr c_memo_hits
let note_memo_miss () = Atomic.incr c_memo_misses

let rec bump_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then bump_max a v

(* ------------------------------------------------------------------ *)
(* Automaton representation.                                           *)

(** How a symbol leaf tests an edge once the snapshot's interned symbols
    are known.  [Lany] admits every edge the plane admits; [Lname]
    compares against one interned name; [Lopaque] always falls back to
    the leaf's predicate closure. *)
type lclass = Lany | Lname of string | Lopaque

(* One direction of the automaton, ε-free.  State [q] owns transitions
   [h_off.(q) .. h_off.(q+1)-1]; transition [ti] tests leaf
   [h_leaf.(ti)] and on success activates every state in
   [h_tgt.(h_tgt_off.(ti) .. h_tgt_off.(ti+1)-1)] (the ε-closure of the
   raw Thompson target, precomputed).  A pushed state is accepting iff
   it equals [h_accept] — closure expansion enumerates each closed
   state individually, so no set-valued acceptance test is needed. *)
type half = {
  h_start : int array;  (** ε-closure of the start state *)
  h_accept : int;
  h_off : int array;  (** length [n_states + 1] *)
  h_leaf : int array;
  h_tgt_off : int array;  (** length [n_transitions + 1] *)
  h_tgt : int array;
}

type 'e t = {
  uid : int;  (** process-unique; keys per-snapshot spec/memo caches *)
  plane_hint : int;  (** which frozen edge plane applies; 0 = none *)
  n_states : int;
  is_nullable : bool;  (** ε ∈ L: the start node is always reachable *)
  bound : int option;  (** longest accepted word when the language is finite *)
  preds : ('e -> bool) array;  (** per-leaf predicate closures *)
  classes : lclass array;  (** per-leaf classification *)
  opaque_spec : int array;  (** all-[-2] spec: force the predicate lane *)
  fwd : half;
  rev : half;  (** same language reversed; answers backward navigation *)
  nfa : 'e Gql_regex.Nfa.t;  (** kept for the subset-BFS reference engine *)
}

let uid t = t.uid
let plane_hint t = t.plane_hint
let n_states t = t.n_states
let nullable t = t.is_nullable
let depth_bound t = t.bound
let uid_counter = Atomic.make 0

(* --- compilation --------------------------------------------------- *)

(* ε-closure of [q] over adjacency lists, ascending. *)
let closure_of (eps : int list array) (q : int) : int array =
  let n = Array.length eps in
  let seen = Array.make n false in
  let rec go q =
    if not seen.(q) then begin
      seen.(q) <- true;
      List.iter go eps.(q)
    end
  in
  go q;
  let count = ref 0 in
  Array.iter (fun b -> if b then incr count) seen;
  let out = Array.make !count 0 in
  let i = ref 0 in
  Array.iteri
    (fun s b ->
      if b then begin
        out.(!i) <- s;
        incr i
      end)
    seen;
  out

(* Flatten one direction: raw Thompson ε/transition lists to the dense
   offset arrays, with targets expanded through their ε-closures. *)
let flatten ~n_states ~start ~accept ~(eps : int list array)
    ~(trans : (int * int) list array) : half =
  (* trans.(q) = (leaf, raw target) pairs out of q *)
  let h_start = closure_of eps start in
  let n_trans = Array.fold_left (fun acc l -> acc + List.length l) 0 trans in
  let h_off = Array.make (n_states + 1) 0 in
  let h_leaf = Array.make n_trans 0 in
  let h_tgt_off = Array.make (n_trans + 1) 0 in
  let tgt_chunks = Array.make n_trans [||] in
  let ti = ref 0 in
  for q = 0 to n_states - 1 do
    h_off.(q) <- !ti;
    List.iter
      (fun (leaf, raw_tgt) ->
        h_leaf.(!ti) <- leaf;
        tgt_chunks.(!ti) <- closure_of eps raw_tgt;
        incr ti)
      trans.(q)
  done;
  h_off.(n_states) <- !ti;
  let total = Array.fold_left (fun acc c -> acc + Array.length c) 0 tgt_chunks in
  let h_tgt = Array.make (max 1 total) 0 in
  let k = ref 0 in
  Array.iteri
    (fun i chunk ->
      h_tgt_off.(i) <- !k;
      Array.iter
        (fun s ->
          h_tgt.(!k) <- s;
          incr k)
        chunk)
    tgt_chunks;
  h_tgt_off.(n_trans) <- !k;
  { h_start; h_accept = accept; h_off; h_leaf; h_tgt_off; h_tgt }

exception Cyclic

(* Longest accepted word, walking the ε-free symbol graph.  Any cycle
   reachable from a start state makes the bound [None] — conservative
   when the cycle cannot reach acceptance, which only costs the planner
   a looser estimate. *)
let compute_bound (h : half) ~n_states : int option =
  let color = Array.make n_states 0 in
  (* 0 white, 1 on stack, 2 done *)
  let best = Array.make n_states (-1) in
  (* -1: acceptance unreachable from here *)
  let rec go q =
    match color.(q) with
    | 1 -> raise Cyclic
    | 2 -> best.(q)
    | _ ->
      color.(q) <- 1;
      let b = ref (if q = h.h_accept then 0 else -1) in
      for ti = h.h_off.(q) to h.h_off.(q + 1) - 1 do
        for k = h.h_tgt_off.(ti) to h.h_tgt_off.(ti + 1) - 1 do
          let bt = go h.h_tgt.(k) in
          if bt >= 0 && bt + 1 > !b then b := bt + 1
        done
      done;
      color.(q) <- 2;
      best.(q) <- !b;
      !b
  in
  try
    let d = Array.fold_left (fun acc q -> max acc (go q)) (-1) h.h_start in
    Some (max d 0)
  with Cyclic -> None

let compile_classified ~(plane_hint : int) ~(classify : 'a -> lclass)
    (pred : 'a -> 'e -> bool) (re : 'a Gql_regex.Syntax.t) : 'e t =
  Atomic.incr c_compiles;
  (* Thompson construction, keeping the leaf identity of each symbol
     transition (Gql_regex.Nfa folds leaves into bare closures, which
     would lose the classification). *)
  let next = ref 0 in
  let new_state () =
    let s = !next in
    incr next;
    s
  in
  let eps_edges = ref [] and sym_edges = ref [] in
  let leaf_preds = ref [] and leaf_classes = ref [] and n_leaves = ref 0 in
  let new_leaf s =
    let i = !n_leaves in
    incr n_leaves;
    leaf_preds := pred s :: !leaf_preds;
    leaf_classes := classify s :: !leaf_classes;
    i
  in
  let add_eps p q = eps_edges := (p, q) :: !eps_edges in
  let rec go = function
    | Gql_regex.Syntax.Empty ->
      let i = new_state () and o = new_state () in
      (i, o)
    | Gql_regex.Syntax.Eps ->
      let i = new_state () and o = new_state () in
      add_eps i o;
      (i, o)
    | Gql_regex.Syntax.Sym s ->
      let i = new_state () and o = new_state () in
      sym_edges := (i, new_leaf s, o) :: !sym_edges;
      (i, o)
    | Gql_regex.Syntax.Seq (x, y) ->
      let ix, ox = go x in
      let iy, oy = go y in
      add_eps ox iy;
      (ix, oy)
    | Gql_regex.Syntax.Alt (x, y) ->
      let i = new_state () and o = new_state () in
      let ix, ox = go x in
      let iy, oy = go y in
      add_eps i ix;
      add_eps i iy;
      add_eps ox o;
      add_eps oy o;
      (i, o)
    | Gql_regex.Syntax.Star x ->
      let i = new_state () and o = new_state () in
      let ix, ox = go x in
      add_eps i ix;
      add_eps i o;
      add_eps ox ix;
      add_eps ox o;
      (i, o)
    | Gql_regex.Syntax.Plus x ->
      let ix, ox = go x in
      let o = new_state () in
      add_eps ox ix;
      add_eps ox o;
      (ix, o)
    | Gql_regex.Syntax.Opt x ->
      let i = new_state () and o = new_state () in
      let ix, ox = go x in
      add_eps i ix;
      add_eps i o;
      add_eps ox o;
      (i, o)
  in
  let start, accept = go re in
  let n = !next in
  let eps = Array.make n [] and eps_r = Array.make n [] in
  List.iter
    (fun (p, q) ->
      eps.(p) <- q :: eps.(p);
      eps_r.(q) <- p :: eps_r.(q))
    !eps_edges;
  let trans = Array.make n [] and trans_r = Array.make n [] in
  List.iter
    (fun (p, leaf, q) ->
      trans.(p) <- (leaf, q) :: trans.(p);
      trans_r.(q) <- (leaf, p) :: trans_r.(q))
    !sym_edges;
  let fwd = flatten ~n_states:n ~start ~accept ~eps ~trans in
  let rev = flatten ~n_states:n ~start:accept ~accept:start ~eps:eps_r ~trans:trans_r in
  let is_nullable = Array.exists (fun q -> q = accept) fwd.h_start in
  let n_leaves = !n_leaves in
  let preds = Array.make (max 1 n_leaves) (fun _ -> false) in
  let classes = Array.make (max 1 n_leaves) Lopaque in
  List.iteri (fun i p -> preds.(n_leaves - 1 - i) <- p) !leaf_preds;
  List.iteri (fun i c -> classes.(n_leaves - 1 - i) <- c) !leaf_classes;
  {
    uid = Atomic.fetch_and_add uid_counter 1;
    plane_hint;
    n_states = n;
    is_nullable;
    bound = compute_bound fwd ~n_states:n;
    preds;
    classes;
    opaque_spec = Array.make (max 1 n_leaves) (-2);
    fwd;
    rev;
    nfa = Gql_regex.Nfa.compile pred re;
  }

let compile (pred : 'a -> 'e -> bool) (re : 'a Gql_regex.Syntax.t) : 'e t =
  compile_classified ~plane_hint:0 ~classify:(fun _ -> Lopaque) pred re

(* --- per-snapshot specialisation ----------------------------------- *)

(** Per-leaf resolved symbol test against one snapshot's interner:
    [>= 0] interned id to compare, [-1] any plane-admitted edge,
    [-2] call the predicate closure, [-3] a name unseen at freeze time
    (matches nothing — symbols interned after the snapshot cannot name
    any frozen edge). *)
type spec = int array

let specialise (t : 'e t) ~(intern : string -> int) : spec =
  Atomic.incr c_specialisations;
  Array.map
    (function
      | Lany -> -1
      | Lopaque -> -2
      | Lname s ->
        let id = intern s in
        if id < 0 then -3 else id)
    t.classes

(* ------------------------------------------------------------------ *)
(* Domain-local scratch.                                               *)

type scratch = {
  busy : bool Atomic.t;
  (* atomic rather than a plain flag: the serve pool runs sys-threads
     inside worker domains, so two searches can race on one domain's
     scratch; the loser takes a throwaway allocation. *)
  mutable visited : Bytes.t;  (** (node * n_states + state) bitset *)
  mutable frontier : int array;  (** pair nodes; prefix = touched list *)
  mutable fstate : int array;  (** pair states, parallel to [frontier] *)
  mutable n_frontier : int;
  mutable rmark : Bytes.t;  (** per-node result-recorded bitset *)
  mutable results : int array;  (** result nodes in first-visit order *)
  mutable n_results : int;
}

let fresh_scratch () =
  {
    busy = Atomic.make false;
    visited = Bytes.create 0;
    frontier = [||];
    fstate = [||];
    n_frontier = 0;
    rmark = Bytes.create 0;
    results = [||];
    n_results = 0;
  }

let scratch_key = Domain.DLS.new_key fresh_scratch

let acquire () =
  let s = Domain.DLS.get scratch_key in
  if Atomic.compare_and_set s.busy false true then begin
    if Bytes.length s.visited > 0 then Atomic.incr c_scratch_reuses;
    s
  end
  else
    let t = fresh_scratch () in
    Atomic.set t.busy true;
    t

let release s = Atomic.set s.busy false

(* Invariant: [visited]/[rmark] are all-zero between searches (cleared
   via the touched lists), so growth never needs to copy — fresh bytes
   are zero already. *)
let ensure s ~pairs ~nodes =
  let vbytes = (pairs + 7) lsr 3 in
  if Bytes.length s.visited < vbytes then
    s.visited <- Bytes.make (max vbytes (2 * Bytes.length s.visited)) '\000';
  let rbytes = (nodes + 7) lsr 3 in
  if Bytes.length s.rmark < rbytes then
    s.rmark <- Bytes.make (max rbytes (2 * Bytes.length s.rmark)) '\000';
  if Array.length s.frontier = 0 then begin
    s.frontier <- Array.make 256 0;
    s.fstate <- Array.make 256 0
  end;
  if Array.length s.results = 0 then s.results <- Array.make 64 0

let bit_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

let bit_clear b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) land lnot (1 lsl (i land 7))))

let sort_ints (a : int array) =
  (* BFS visit order is already ascending on chain/tree-shaped data;
     an O(n) sortedness check there beats the unconditional sort *)
  let n = Array.length a in
  let sorted = ref true in
  for i = 1 to n - 1 do
    if Array.unsafe_get a (i - 1) > Array.unsafe_get a i then sorted := false
  done;
  if not !sorted then Array.sort (fun (x : int) y -> compare x y) a

(* ------------------------------------------------------------------ *)
(* The product BFS.                                                    *)

exception Found

(* One search over pre-sized, clean scratch [s]; leaves [s] clean.
   [iter u k] must call [k dst es lab] for each edge out of [u] (in the
   search direction), where [es] is the plane-resolved symbol of the
   edge ([-1] = lane-rejected) or any value when [spec] never consults
   it.  [target >= 0] switches to early-exit connectivity. *)
let search_scratch (t : 'e t) (h : half) (spec : spec) (s : scratch)
    ~(iter : int -> (int -> int -> 'e -> unit) -> unit) ~(src : int)
    ~(target : int) : [ `Hit | `Set of int array ] =
  Atomic.incr c_searches;
  let ns = t.n_states in
  let preds = t.preds in
  let push_frontier u q =
    if s.n_frontier = Array.length s.frontier then begin
      s.frontier <- Array.append s.frontier (Array.make (Array.length s.frontier) 0);
      s.fstate <- Array.append s.fstate (Array.make (Array.length s.fstate) 0)
    end;
    s.frontier.(s.n_frontier) <- u;
    s.fstate.(s.n_frontier) <- q;
    s.n_frontier <- s.n_frontier + 1
  in
  let record node =
    if not (bit_get s.rmark node) then begin
      bit_set s.rmark node;
      if s.n_results = Array.length s.results then
        s.results <- Array.append s.results (Array.make (Array.length s.results) 0);
      s.results.(s.n_results) <- node;
      s.n_results <- s.n_results + 1;
      if node = target then raise_notrace Found
    end
  in
  let hit = ref false in
  let finish () =
    bump_max c_frontier_peak s.n_frontier;
    for i = 0 to s.n_frontier - 1 do
      bit_clear s.visited ((s.frontier.(i) * ns) + s.fstate.(i))
    done;
    for i = 0 to s.n_results - 1 do
      bit_clear s.rmark s.results.(i)
    done;
    s.n_frontier <- 0;
    s.n_results <- 0
  in
  Fun.protect ~finally:finish @@ fun () ->
  (try
     Array.iter
       (fun q ->
         let p = (src * ns) + q in
         if not (bit_get s.visited p) then begin
           bit_set s.visited p;
           push_frontier src q;
           if q = h.h_accept then record src
         end)
       h.h_start;
     let cur_q = ref 0 in
     let on_edge dst es lab =
       let q = !cur_q in
       for ti = h.h_off.(q) to h.h_off.(q + 1) - 1 do
         let li = Array.unsafe_get h.h_leaf ti in
         let sv = Array.unsafe_get spec li in
         let ok =
           if sv >= 0 then es = sv
           else if sv = -1 then es >= 0
           else if sv = -2 then (Array.unsafe_get preds li) lab
           else false
         in
         if ok then
           for k = h.h_tgt_off.(ti) to h.h_tgt_off.(ti + 1) - 1 do
             let tq = Array.unsafe_get h.h_tgt k in
             let p = (dst * ns) + tq in
             if not (bit_get s.visited p) then begin
               bit_set s.visited p;
               push_frontier dst tq;
               if tq = h.h_accept then record dst
             end
           done
       done
     in
     let cursor = ref 0 in
     while !cursor < s.n_frontier do
       let u = Array.unsafe_get s.frontier !cursor in
       cur_q := Array.unsafe_get s.fstate !cursor;
       incr cursor;
       iter u on_edge
     done
   with Found -> hit := true);
  if !hit then `Hit
  else begin
    let r = Array.sub s.results 0 s.n_results in
    sort_ints r;
    `Set r
  end

let product_search t h spec ~n_nodes ~iter ~src ~target =
  let s = acquire () in
  ensure s ~pairs:(n_nodes * t.n_states) ~nodes:n_nodes;
  Fun.protect
    ~finally:(fun () -> release s)
    (fun () -> search_scratch t h spec s ~iter ~src ~target)

let set_of = function
  | `Set r -> Iset.unsafe_of_sorted_array r
  | `Hit -> assert false

(* --- edge iterators for each backend ------------------------------- *)

let dg_fwd g u k = List.iter (fun (d, l) -> k d 0 l) (Digraph.succ g u)
let dg_rev g u k = List.iter (fun (d, l) -> k d 0 l) (Digraph.pred g u)
let csr_fwd c u k = Csr.iter_succ (fun d l -> k d 0 l) c u
let csr_rev c u k = Csr.iter_pred (fun d l -> k d 0 l) c u

let csr_fwd_plane (c : (_, _) Csr.t) (plane : int array) u k =
  for i = c.Csr.out_off.(u) to c.Csr.out_off.(u + 1) - 1 do
    k (Array.unsafe_get c.Csr.out_dst i) (Array.unsafe_get plane i)
      (Array.unsafe_get c.Csr.out_lab i)
  done

let csr_rev_plane (c : (_, _) Csr.t) (plane : int array) u k =
  for i = c.Csr.in_off.(u) to c.Csr.in_off.(u + 1) - 1 do
    k (Array.unsafe_get c.Csr.in_src i) (Array.unsafe_get plane i)
      (Array.unsafe_get c.Csr.in_lab i)
  done

(* --- public search API --------------------------------------------- *)

(** All nodes reachable from [start] along a path whose labels match the
    expression, ascending.  The empty path counts when the expression is
    nullable (so [start] itself may be returned). *)
let reachable_set (rp : 'e t) (g : ('n, 'e) Digraph.t) (start : Digraph.node) :
    Iset.t =
  set_of
    (product_search rp rp.fwd rp.opaque_spec ~n_nodes:(Digraph.n_nodes g)
       ~iter:(dg_fwd g) ~src:start ~target:(-1))

let reachable rp g start : Digraph.node list = Iset.to_list (reachable_set rp g start)

(** All sources from which a matching path leads *to* [start] (the
    reverse automaton walked over predecessor edges), ascending. *)
let reachable_rev_set (rp : 'e t) (g : ('n, 'e) Digraph.t) (start : Digraph.node) :
    Iset.t =
  set_of
    (product_search rp rp.rev rp.opaque_spec ~n_nodes:(Digraph.n_nodes g)
       ~iter:(dg_rev g) ~src:start ~target:(-1))

(** Same searches over a frozen CSR view, testing each edge with the
    leaf predicates. *)
let reachable_frozen_set (rp : 'e t) (c : ('n, 'e) Csr.t) (start : Digraph.node) :
    Iset.t =
  set_of
    (product_search rp rp.fwd rp.opaque_spec ~n_nodes:(Csr.n_nodes c)
       ~iter:(csr_fwd c) ~src:start ~target:(-1))

let reachable_frozen rp c start : Digraph.node list =
  Iset.to_list (reachable_frozen_set rp c start)

let reachable_frozen_rev_set (rp : 'e t) (c : ('n, 'e) Csr.t)
    (start : Digraph.node) : Iset.t =
  set_of
    (product_search rp rp.rev rp.opaque_spec ~n_nodes:(Csr.n_nodes c)
       ~iter:(csr_rev c) ~src:start ~target:(-1))

(** Frozen searches over a specialised symbol plane: [plane] assigns
    each edge (in [out_lab]/[in_lab] order) its interned name, or [-1]
    when the lane rejects the edge; label tests become int compares. *)
let reachable_plane (rp : 'e t) (spec : spec) (c : ('n, 'e) Csr.t)
    ~(plane : int array) (start : Digraph.node) : Iset.t =
  set_of
    (product_search rp rp.fwd spec ~n_nodes:(Csr.n_nodes c)
       ~iter:(csr_fwd_plane c plane) ~src:start ~target:(-1))

let reachable_rev_plane (rp : 'e t) (spec : spec) (c : ('n, 'e) Csr.t)
    ~(plane : int array) (start : Digraph.node) : Iset.t =
  set_of
    (product_search rp rp.rev spec ~n_nodes:(Csr.n_nodes c)
       ~iter:(csr_rev_plane c plane) ~src:start ~target:(-1))

(** Does a matching path lead from [src] to [dst]?  Exits on the first
    accepting [(dst, state)] pair instead of materialising the set. *)
let connects rp (g : ('n, 'e) Digraph.t) ~src ~dst =
  match
    product_search rp rp.fwd rp.opaque_spec ~n_nodes:(Digraph.n_nodes g)
      ~iter:(dg_fwd g) ~src ~target:dst
  with
  | `Hit -> true
  | `Set _ -> false

let connects_frozen rp (c : ('n, 'e) Csr.t) ~src ~dst =
  match
    product_search rp rp.fwd rp.opaque_spec ~n_nodes:(Csr.n_nodes c)
      ~iter:(csr_fwd c) ~src ~target:dst
  with
  | `Hit -> true
  | `Set _ -> false

let connects_plane (rp : 'e t) (spec : spec) (c : ('n, 'e) Csr.t)
    ~(plane : int array) ~src ~dst =
  match
    product_search rp rp.fwd spec ~n_nodes:(Csr.n_nodes c)
      ~iter:(csr_fwd_plane c plane) ~src ~target:dst
  with
  | `Hit -> true
  | `Set _ -> false

(* --- multi-source batches ------------------------------------------ *)

(* One scratch acquisition amortised over the whole source frontier;
   per-source results stay independent (visited is cleared between
   sources — the automaton state reached en route differs per source,
   so closures cannot be merged). *)
let batch t h ~n_nodes ~iter (srcs : int array) : Iset.t array =
  let s = acquire () in
  ensure s ~pairs:(n_nodes * t.n_states) ~nodes:n_nodes;
  Fun.protect
    ~finally:(fun () -> release s)
    (fun () ->
      Array.map
        (fun src ->
          set_of (search_scratch t h t.opaque_spec s ~iter ~src ~target:(-1)))
        srcs)

(** [reachable_batch rp g srcs] = per-source reachable sets, resolved in
    one scratch sweep. *)
let reachable_batch (rp : 'e t) (g : ('n, 'e) Digraph.t) (srcs : int array) :
    Iset.t array =
  batch rp rp.fwd ~n_nodes:(Digraph.n_nodes g) ~iter:(dg_fwd g) srcs

let reachable_frozen_batch (rp : 'e t) (c : ('n, 'e) Csr.t) (srcs : int array) :
    Iset.t array =
  batch rp rp.fwd ~n_nodes:(Csr.n_nodes c) ~iter:(csr_fwd c) srcs

let reachable_rev_batch (rp : 'e t) (g : ('n, 'e) Digraph.t) (srcs : int array) :
    Iset.t array =
  batch rp rp.rev ~n_nodes:(Digraph.n_nodes g) ~iter:(dg_rev g) srcs

(* ------------------------------------------------------------------ *)
(* Reference engines.                                                  *)

(* The pre-flattening subset-construction BFS, kept verbatim as the
   list-based reference: qcheck equivalence properties and the E16
   micro-benchmark compare against it. *)
let key_of_set set =
  let b = Buffer.create 16 in
  Array.iteri
    (fun i m ->
      if m then begin
        Buffer.add_string b (string_of_int i);
        Buffer.add_char b ','
      end)
    set;
  Buffer.contents b

let reachable_subset_iter (rp : 'e t)
    ~(iter_succ : Digraph.node -> (Digraph.node -> 'e -> unit) -> unit)
    (start : Digraph.node) : Digraph.node list =
  let init = Gql_regex.Nfa.start_set rp.nfa in
  let seen : (int * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let results = Hashtbl.create 16 in
  let queue = Queue.create () in
  let enqueue node set =
    if Array.exists Fun.id set then begin
      let key = (node, key_of_set set) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        Queue.add (node, set) queue
      end
    end
  in
  enqueue start init;
  while not (Queue.is_empty queue) do
    let node, set = Queue.take queue in
    if Gql_regex.Nfa.accepts_set rp.nfa set then Hashtbl.replace results node ();
    iter_succ node (fun next label -> enqueue next (Gql_regex.Nfa.step rp.nfa set label))
  done;
  Hashtbl.fold (fun n () acc -> n :: acc) results [] |> List.sort compare

let reachable_subset (rp : 'e t) (g : ('n, 'e) Digraph.t) (start : Digraph.node) :
    Digraph.node list =
  reachable_subset_iter rp start ~iter_succ:(fun node f ->
      List.iter (fun (next, l) -> f next l) (Digraph.succ g node))

let reachable_subset_frozen (rp : 'e t) (c : ('n, 'e) Csr.t)
    (start : Digraph.node) : Digraph.node list =
  reachable_subset_iter rp start ~iter_succ:(fun node f -> Csr.iter_succ f c node)

(** Reference implementation for property tests: enumerate all simple-ish
    paths up to [max_len] hops and check their label words against the
    regex via naive NFA word-matching.  Exponential; small graphs only. *)
let reachable_naive (pred : 'a -> 'e -> bool) (re : 'a Gql_regex.Syntax.t)
    (g : ('n, 'e) Digraph.t) (start : Digraph.node) ~max_len =
  let nfa = Gql_regex.Nfa.compile pred re in
  let results = Hashtbl.create 16 in
  let rec go node word len =
    if Gql_regex.Nfa.run_list nfa (List.rev word) then
      Hashtbl.replace results node ();
    if len < max_len then
      List.iter (fun (next, l) -> go next (l :: word) (len + 1)) (Digraph.succ g node)
  in
  go start [] 0;
  Hashtbl.fold (fun n () acc -> n :: acc) results [] |> List.sort compare
