(** Generic pattern matching: find homomorphic embeddings of a small
    pattern graph into a large data graph.

    Both visual languages reduce their matching phase to this search:
    pattern nodes constrain the data node they may bind to (a predicate),
    pattern edges constrain pairs of bindings — either a direct edge whose
    label satisfies a predicate, or a regular path ({!Regpath}).  Shared
    pattern nodes *are* the joins of the paper ("they share the same
    nodes, making variables obsolete").

    The search is backtracking with the standard optimisations that keep
    the paper's example queries interactive on 100k-node databases:
    - once part of the pattern is bound, candidates for a node connected
      to the bound region come from *adjacency* of the bound neighbours —
      the sorted sets contributed by every incident bound edge are
      intersected smallest-first ({!Iset.inter_many}), never scanned
      per-element;
    - global candidate sets (needed to start each connected component)
      are computed lazily and memoised as {!Iset.t}, so their size is
      O(1) for the fail-first scorer;
    - the next node to bind is chosen fail-first: connected nodes are
      scored by their bound neighbour's degree, unconnected ones by their
      global candidate count.

    [iter_embeddings ~pre_bound] seeds the search with fixed bindings —
    the semi-naive WG-Log evaluator pins a pattern edge to a freshly
    derived data edge and completes the embedding around it. *)

type ('n, 'e) edge_constraint =
  | Direct of ('e -> bool)  (** one edge whose label satisfies the predicate *)
  | Path of 'e Regpath.t  (** a regular path *)
  | Negated of ('e -> bool)
      (** no edge with a matching label may exist (GraphLog's crossed-out
          edges); checked once both endpoints are bound *)

type ('n, 'e) pattern = {
  p_nodes : (Digraph.node -> 'n -> bool) array;
      (** predicate for each pattern node; receives the data node id so
          callers can consult surrounding structure (e.g. string-values) *)
  p_edges : (int * ('n, 'e) edge_constraint * int) list;
}

type embedding = int array
(** [emb.(p)] = data node bound to pattern node [p]. *)

(** Per-pattern-edge index navigation.  [nav_out n] enumerates candidate
    endpoints reached from [n] along the edge (and [nav_in] the reverse
    direction) as a sorted set; both may return a *superset* of the
    truly matching neighbours — the search re-checks node predicates and
    edge constraints on every binding, so supersets only cost time,
    never correctness.  [nav_exact] declares that [nav_out]/[nav_in] are
    *not* supersets (every enumerated neighbour satisfies the edge
    constraint) — executors that skip the re-check (algebra [Expand])
    may only navigate exact navs.  [nav_links src dst], when present,
    must always be exact: it replaces the adjacency scan that decides
    whether the constraint holds between two bound nodes. *)
type nav = {
  nav_out : (Digraph.node -> Iset.t) option;
  nav_in : (Digraph.node -> Iset.t) option;
  nav_links : (Digraph.node -> Digraph.node -> bool) option;
  nav_exact : bool;
}

(** A pluggable candidate provider: how an index-backed caller replaces
    the matcher's linear scans.

    - [prov_candidates p] returns the global candidates for pattern node
      [p] (a sorted superset is fine — the node predicate is re-applied);
      [None] falls back to the whole-graph scan.
    - [prov_degree], when present, must be O(1) (a frozen {!Csr} view);
      it feeds the fail-first scorer.
    - [prov_nav i] attaches navigation to the [i]-th element of
      [p_edges] (list order). *)
type ('n, 'e) provider = {
  prov_candidates : int -> Iset.t option;
  prov_degree : (Digraph.node -> int) option;
  prov_nav : int -> nav option;
}

let no_provider : ('n, 'e) provider =
  {
    prov_candidates = (fun _ -> None);
    prov_degree = None;
    prov_nav = (fun _ -> None);
  }

(* One search instance: fresh mutable state (bindings, caches) closed
   over by two operations.

   [i_plan ()] seeds the pre-bound nodes and reports the first choice
   point the search will branch on — [Some (p, candidates)] — or [None]
   when there is nothing to branch on (seeds rejected, or the pattern is
   fully pre-bound).

   [i_run ~first] performs the full backtracking enumeration; [first],
   when given, replaces the first choice point's node selection and
   candidate set.  The parallel driver plans once, splits the candidate
   set into contiguous {!Iset.sub} slices, and gives each slice to a
   fresh instance via [~first]: everything past the first choice point
   is per-instance state, so the per-chunk outputs concatenated in chunk
   order are exactly the sequential enumeration.  The data graph,
   pattern and provider are shared across instances and must not be
   mutated while a search runs. *)
type run_ops = {
  i_plan : unit -> (int * Iset.t * int) option;
  i_run : first:(int * Iset.t * int) option -> unit;
}

(* Read-only compiled form of a pattern + provider, built once per
   search and shared by every instance — the parallel driver used to
   rebuild the edge array, navs and adjacency lists *per chunk*, and
   each chunk recomputed every memoised global candidate set from
   scratch (E13's 30% minor-word inflation at 2+ domains).  [s_cands]
   is the global-candidate memo: the probe instance fills it in place
   while planning; chunk instances take an [Array.copy], so any set a
   chunk still computes lazily stays domain-local.

   The copy is sound because the probe already computed every set the
   chunks will need: [next_node] scores *all* unbound unconnected nodes
   by their global candidate count, so during [i_plan] each node that
   could ever fall back to a global set has had it memoised. *)
type ('n, 'e) shared = {
  s_edges : (int * ('n, 'e) edge_constraint * int) array;
  s_navs : nav option array;
  s_adj : int list array;
  s_cands : Iset.t option array;
}

let make_shared ~(provider : ('n, 'e) provider) (pat : ('n, 'e) pattern) :
    ('n, 'e) shared =
  let k = Array.length pat.p_nodes in
  let s_edges = Array.of_list pat.p_edges in
  let s_navs = Array.init (Array.length s_edges) provider.prov_nav in
  (* Positive adjacency between pattern nodes, for connectivity-guided
     ordering; negated edges do not guide the order (they only filter). *)
  let s_adj = Array.make k [] in
  List.iter
    (fun (a, c, b) ->
      match c with
      | Direct _ | Path _ ->
        s_adj.(a) <- b :: s_adj.(a);
        s_adj.(b) <- a :: s_adj.(b)
      | Negated _ -> ())
    pat.p_edges;
  { s_edges; s_navs; s_adj; s_cands = Array.make k None }

let instance ~(shared : ('n, 'e) shared) ~(copy_cands : bool)
    ~(pre_bound : (int * int) list) ~(provider : ('n, 'e) provider)
    (pat : ('n, 'e) pattern) (g : ('n, 'e) Digraph.t)
    ~(emit : embedding -> unit) : run_ops =
  let k = Array.length pat.p_nodes in
  begin
    let binding = Array.make k (-1) in
    let bound = Array.make k false in
    let p_edges = shared.s_edges in
    let navs = shared.s_navs in
    (* Lazy global candidate sets: from the provider's index when it has
       one (filtered through the node predicate, so supersets are safe),
       from a whole-graph scan otherwise.  Both paths yield a sorted
       ascending set, so indexed and scan-based searches enumerate in
       the same order. *)
    let cand_cache : Iset.t option array =
      if copy_cands then Array.copy shared.s_cands else shared.s_cands
    in
    let global_candidates p =
      match cand_cache.(p) with
      | Some c -> c
      | None ->
        let c =
          match provider.prov_candidates p with
          | Some s ->
            Iset.filter (fun i -> pat.p_nodes.(p) i (Digraph.payload g i)) s
          | None ->
            Iset.unsafe_of_sorted_array
              (Array.of_list
                 (List.rev
                    (Digraph.fold_nodes
                       (fun acc i payload ->
                         if pat.p_nodes.(p) i payload then i :: acc else acc)
                       [] g)))
        in
        cand_cache.(p) <- Some c;
        c
    in
    (* O(1) from a frozen view when provided, O(degree) otherwise. *)
    let total_degree n =
      match provider.prov_degree with
      | Some deg -> deg n
      | None -> Digraph.out_degree g n + Digraph.in_degree g n
    in
    let adj = shared.s_adj in
    (* Check every constraint whose endpoints are both bound and that
       involves pattern node [just_bound].  [nav_links] is the exact
       index-backed replacement for the adjacency scan. *)
    let direct_ok i p na nb =
      match navs.(i) with
      | Some { nav_links = Some links; _ } -> links na nb
      | Some _ | None ->
        List.exists (fun (d, l) -> d = nb && p l) (Digraph.succ g na)
    in
    let edge_holds i (c : ('n, 'e) edge_constraint) na nb =
      match c with
      | Direct p -> direct_ok i p na nb
      | Path rp -> (
        match navs.(i) with
        | Some { nav_links = Some links; _ } -> links na nb
        | Some _ | None -> Regpath.connects rp g ~src:na ~dst:nb)
      | Negated p -> not (direct_ok i p na nb)
    in
    (* [skip] is a bitmask of p_edges positions whose constraint is
       already guaranteed by the candidate set [just_bound] was drawn
       from ({!candidates_for} below) — those are not re-checked. *)
    let edges_ok ?(skip = 0) just_bound =
      let ok = ref true in
      Array.iteri
        (fun i (a, c, b) ->
          if
            !ok
            && not (i < 62 && (skip lsr i) land 1 = 1)
            && (a = just_bound || b = just_bound)
            && bound.(a) && bound.(b)
            && not (edge_holds i c binding.(a) binding.(b))
          then ok := false)
        p_edges;
      !ok
    in
    (* Fail-first ordering with cheap scores: a node adjacent to the
       bound region is scored by that neighbour's degree (its candidates
       will come from adjacency); an unconnected node costs a global
       scan, memoised — and O(1) thereafter. *)
    let next_node () =
      let best = ref (-1) in
      let best_score = ref max_int in
      for p = 0 to k - 1 do
        if not bound.(p) then begin
          let neighbour_degree =
            List.fold_left
              (fun acc q ->
                if bound.(q) then min acc (total_degree binding.(q)) else acc)
              max_int adj.(p)
          in
          let score =
            if neighbour_degree < max_int then neighbour_degree
            else 1_000_000 + Iset.length (global_candidates p)
          in
          if score < !best_score then begin
            best_score := score;
            best := p
          end
        end
      done;
      !best
    in
    (* Candidates for [p], plus the bitmask of p_edges positions the
       returned set already guarantees (so {!edges_ok} can skip them).

       Every positive edge between p and an already-bound node
       contributes a sorted set of endpoints reachable along that edge
       (index navigation when available, adjacency otherwise); the sets
       are intersected smallest-first.  Each set is a superset of that
       edge's true matches, so the intersection drops only bindings
       [edges_ok] would reject — the surviving candidates and their
       ascending order are exactly the sequential scan's.  A
       contributing edge whose set was *exact* (a scan filter, exact
       reachability, or a [nav_exact] nav) is recorded in the mask.

       Negated edges between p and a bound node are propagated as
       *exclusions*: the exact set of adjacent nodes matching the
       negated label predicate is subtracted ({!Iset.diff}).  Exclusion
       needs the exact set — a superset would drop valid candidates —
       so a non-exact nav falls back to the adjacency scan, which is
       exact by construction.

       With no bound incident edge, fall back to the global set.  The
       node predicate is re-checked on propagated candidates. *)
    let candidates_for p =
      let nav_field i get =
        match navs.(i) with Some nav -> get nav | None -> None
      in
      let exact_nav_field i get =
        match navs.(i) with
        | Some nav when nav.nav_exact -> get nav
        | Some _ | None -> None
      in
      let sets = ref [] and excl = ref [] and sat = ref 0 in
      let mark i = if i < 62 then sat := !sat lor (1 lsl i) in
      Array.iteri
        (fun i (a, c, b) ->
          match c with
          | Negated f ->
            if a <> p && b = p && bound.(a) then begin
              excl :=
                (match exact_nav_field i (fun nav -> nav.nav_out) with
                | Some out -> out binding.(a)
                | None ->
                  Iset.of_list
                    (List.filter_map
                       (fun (d, l) -> if f l then Some d else None)
                       (Digraph.succ g binding.(a))))
                :: !excl;
              mark i
            end
            else if a = p && b <> p && bound.(b) then begin
              excl :=
                (match exact_nav_field i (fun nav -> nav.nav_in) with
                | Some inn -> inn binding.(b)
                | None ->
                  Iset.of_list
                    (List.filter_map
                       (fun (s, l) -> if f l then Some s else None)
                       (Digraph.pred g binding.(b))))
                :: !excl;
              mark i
            end
          | Direct f ->
            if a <> p && b = p && bound.(a) then begin
              sets :=
                (match nav_field i (fun nav -> nav.nav_out) with
                | Some out ->
                  if (Option.get navs.(i)).nav_exact then mark i;
                  out binding.(a)
                | None ->
                  mark i;
                  Iset.of_list
                    (List.filter_map
                       (fun (d, l) -> if f l then Some d else None)
                       (Digraph.succ g binding.(a))))
                :: !sets
            end
            else if a = p && b <> p && bound.(b) then begin
              sets :=
                (match nav_field i (fun nav -> nav.nav_in) with
                | Some inn ->
                  if (Option.get navs.(i)).nav_exact then mark i;
                  inn binding.(b)
                | None ->
                  mark i;
                  Iset.of_list
                    (List.filter_map
                       (fun (s, l) -> if f l then Some s else None)
                       (Digraph.pred g binding.(b))))
                :: !sets
            end
          | Path rp ->
            if a <> p && b = p && bound.(a) then
              sets :=
                (match nav_field i (fun nav -> nav.nav_out) with
                | Some out ->
                  if (Option.get navs.(i)).nav_exact then mark i;
                  out binding.(a)
                | None ->
                  mark i;
                  Regpath.reachable_set rp g binding.(a))
                :: !sets
            else if a = p && b <> p && bound.(b) then
              (* Backward propagation: the reverse automaton (or the
                 index's nav_in) gives the exact set of sources reaching
                 binding.(b) — before the flat engine this cost a
                 whole-graph scan per binding, so the case fell through
                 to the global candidate set. *)
              sets :=
                (match nav_field i (fun nav -> nav.nav_in) with
                | Some inn ->
                  if (Option.get navs.(i)).nav_exact then mark i;
                  inn binding.(b)
                | None ->
                  mark i;
                  Regpath.reachable_rev_set rp g binding.(b))
                :: !sets)
        p_edges;
      let base =
        match !sets with
        | [] -> global_candidates p
        | sets ->
          Iset.filter
            (fun n -> pat.p_nodes.(p) n (Digraph.payload g n))
            (Iset.inter_many sets)
      in
      (List.fold_left Iset.diff base !excl, !sat)
    in
    (* Seed the pre-bound nodes. *)
    let seeds_ok =
      List.for_all
        (fun (p, n) ->
          if p < 0 || p >= k then false
          else if bound.(p) then binding.(p) = n
          else if pat.p_nodes.(p) n (Digraph.payload g n) then begin
            binding.(p) <- n;
            bound.(p) <- true;
            edges_ok p
          end
          else false)
        pre_bound
    in
    let already = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bound in
    let i_plan () =
      if (not seeds_ok) || already >= k then None
      else
        let p = next_node () in
        let cands, sat = candidates_for p in
        Some (p, cands, sat)
    in
    let rec extend ~first depth =
      if depth = k then emit (Array.copy binding)
      else begin
        let p, cands, sat =
          match first with
          | Some (p, cands, sat) -> (p, cands, sat)
          | None ->
            let p = next_node () in
            let cands, sat = candidates_for p in
            (p, cands, sat)
        in
        bound.(p) <- true;
        Iset.iter
          (fun candidate ->
            binding.(p) <- candidate;
            if edges_ok ~skip:sat p then extend ~first:None (depth + 1))
          cands;
        binding.(p) <- -1;
        bound.(p) <- false
      end
    in
    let i_run ~first = if seeds_ok then extend ~first already in
    { i_plan; i_run }
  end

(** Enumerate embeddings, calling [emit] on each.  [emit] may raise to
    stop early (see {!exists}).  [pre_bound] fixes pattern nodes to data
    nodes before the search starts (duplicates must agree); the fixed
    nodes are checked against their predicates and edge constraints.
    [provider] supplies index-backed candidates; with the default, every
    global candidate set is a graph scan.  Indexed and scan-based
    searches enumerate the same embeddings in the same order (provider
    candidate sets are sorted, as scans are).

    [domains] > 1 partitions the first choice point's candidate set over
    that many domains ({!Par.map_chunks}); each chunk is a zero-copy
    {!Iset.sub} slice, the enumeration order is byte-identical to the
    sequential one, and [emit] is always called sequentially from the
    calling domain.  Compiled pattern state (edge array, navs,
    adjacency, the probe's memoised global candidate sets) is built once
    and shared read-only across chunks; each chunk's instance carries
    only its own bindings and emit buffer.  The fan-out is work-gated:
    the job's cost estimate — first-choice-point candidates x pattern
    size — must clear {!Par.cutoff} or the search stays sequential.  The
    default for [domains] comes from {!Par.default_domains}
    ([GQL_DOMAINS] / [Par.set_default]).  The graph must not be mutated
    during a parallel search. *)
let iter_embeddings ?(pre_bound = []) ?(provider = no_provider) ?domains
    (pat : ('n, 'e) pattern)
    (g : ('n, 'e) Digraph.t) ~(emit : embedding -> unit) : unit =
  let domains =
    match domains with Some d -> max 1 d | None -> Par.default_domains ()
  in
  if Array.length pat.p_nodes = 0 then emit [||]
  else
    let shared = make_shared ~provider pat in
    let seq () =
      (instance ~shared ~copy_cands:false ~pre_bound ~provider pat g ~emit)
        .i_run ~first:None
    in
    if domains <= 1 then seq ()
    else begin
      let probe =
        instance ~shared ~copy_cands:false ~pre_bound ~provider pat g
          ~emit:ignore
      in
      match probe.i_plan () with
      | None -> seq ()
      | Some (p, cands, sat) ->
        let n = Iset.length cands in
        let k = Array.length pat.p_nodes in
        (* Work estimate for the gate.  The first choice point is the
           *smallest* candidate set by fail-first design, so its length
           alone would under-count a search that fans out per seed;
           instead sum the global candidate sets the probe has already
           memoised — the total candidate mass across pattern nodes —
           plus a fixed weight per regular-path edge (a path constraint
           hides a traversal, not one predicate test).  O(k), all
           lengths O(1). *)
        let cost =
          let mass = ref (n * k) in
          Array.iter
            (function
              | Some c -> mass := !mass + Iset.length c | None -> ())
            shared.s_cands;
          Array.iter
            (fun (_, c, _) ->
              match c with
              | Path _ -> mass := !mass + (64 * n)
              | Direct _ | Negated _ -> ())
            shared.s_edges;
          !mass
        in
        let chunks =
          Par.map_chunks ~cost ~domains ~n (fun lo hi ->
              let buf = Vec.create ~capacity:(max 16 (hi - lo)) ~dummy:[||] () in
              let inst =
                instance ~shared ~copy_cands:true ~pre_bound ~provider pat g
                  ~emit:(fun e -> ignore (Vec.push buf e))
              in
              inst.i_run ~first:(Some (p, Iset.sub cands lo (hi - lo), sat));
              buf)
        in
        List.iter (fun buf -> Vec.iteri (fun _ e -> emit e) buf) chunks
    end

exception Found

let exists ?pre_bound ?provider pat g =
  match
    iter_embeddings ?pre_bound ?provider ~domains:1 pat g ~emit:(fun _ ->
        raise Found)
  with
  | () -> false
  | exception Found -> true

let all_embeddings ?pre_bound ?provider ?domains pat g =
  let acc = ref [] in
  iter_embeddings ?pre_bound ?provider ?domains pat g ~emit:(fun e -> acc := e :: !acc);
  List.rev !acc

let count ?pre_bound ?provider ?domains pat g =
  let n = ref 0 in
  iter_embeddings ?pre_bound ?provider ?domains pat g ~emit:(fun _ -> incr n);
  !n
