(** Sorted integer sets over flat arrays — the candidate-set currency of
    the whole data path.

    A set is an [int array] that is sorted ascending and duplicate-free;
    that invariant is what every operation below assumes and preserves.
    The representation is deliberately transparent: index postings,
    matcher candidate lists and planner estimates all share the same
    arrays with zero copying, [length] is O(1), and {!Par} can hand a
    contiguous [sub] slice to each domain without rebuilding lists.

    Intersection is the hot operation (candidate propagation intersects
    the postings of every pattern edge incident to the bound region).
    [inter] picks between a linear merge and a galloping search: when
    one side is much smaller, binary-search probes from the small side
    cost O(|small| * log |large|) instead of O(|small| + |large|).
    {!inter_linear} and {!inter_gallop} expose both paths so tests can
    pin the crossover behaviour. *)

type t = int array
(** sorted ascending, no duplicates *)

let empty : t = [||]
let length (s : t) = Array.length s
let is_empty (s : t) = Array.length s = 0
let get (s : t) i = s.(i)
let to_list (s : t) = Array.to_list s
let iter f (s : t) = Array.iter f s
let fold f acc (s : t) = Array.fold_left f acc s
let equal (a : t) (b : t) = a = b

(** Contiguous slice [\[lo, lo+len)] — still sorted and unique, so the
    result is itself a set.  This is how the parallel driver chunks a
    candidate set. *)
let sub (s : t) lo len : t = Array.sub s lo len

(* Sort-and-dedup in place over a scratch copy; the common pre-sorted
   case (index postings are built sorted) costs one verification pass. *)
let rec sorted_from (a : int array) i =
  i >= Array.length a - 1 || (a.(i) < a.(i + 1) && sorted_from a (i + 1))

let dedup_sorted (a : int array) : t =
  let n = Array.length a in
  if n <= 1 then a
  else begin
    let w = ref 1 in
    for r = 1 to n - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    if !w = n then a else Array.sub a 0 !w
  end

let of_array (a : int array) : t =
  if sorted_from a 0 then Array.copy a
  else begin
    let c = Array.copy a in
    Array.sort compare c;
    dedup_sorted c
  end

let of_list (l : int list) : t =
  let a = Array.of_list l in
  if sorted_from a 0 then a
  else begin
    Array.sort compare a;
    dedup_sorted a
  end

(** Trusted constructor: [a] must already be sorted and duplicate-free.
    Shares the array — never mutate it afterwards. *)
let unsafe_of_sorted_array (a : int array) : t = a

let singleton x : t = [| x |]

(* Smallest index in [s.[lo, hi)] holding a value >= x (hi if none) —
   the primitive under both membership and galloping. *)
let lower_bound (s : t) x lo hi =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if s.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

(** Membership of [x] in the sorted slice [pool.[lo, hi)] without
    materialising it — the snapshot loader's flat postings answer link
    tests straight off the shared pool array, allocating nothing. *)
let mem_range (pool : int array) ~lo ~hi x =
  if hi - lo <= 8 then begin
    let rec go i = i < hi && (pool.(i) = x || (pool.(i) < x && go (i + 1))) in
    go lo
  end
  else begin
    let lo = ref lo and hi' = ref hi in
    while !lo < !hi' do
      let mid = !lo + ((!hi' - !lo) / 2) in
      if pool.(mid) < x then lo := mid + 1 else hi' := mid
    done;
    !lo < hi && pool.(!lo) = x
  end

let mem (s : t) x =
  let n = Array.length s in
  if n <= 8 then begin
    (* adjacency slices are tiny; a scan beats binary-search setup *)
    let rec go i = i < n && (s.(i) = x || (s.(i) < x && go (i + 1))) in
    go 0
  end
  else
    let i = lower_bound s x 0 n in
    i < n && s.(i) = x

(* Both intersection paths write into a shared output buffer sized by
   the smaller input, then shrink once. *)
let inter_linear (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then empty
  else begin
    let out = Array.make (min la lb) 0 in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < la && !j < lb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then incr i
      else if y < x then incr j
      else begin
        out.(!w) <- x;
        incr w;
        incr i;
        incr j
      end
    done;
    if !w = 0 then empty else Array.sub out 0 !w
  end

(** Galloping intersection: probe each element of the smaller set into
    the larger one, restarting the binary search past the last hit so a
    full pass costs O(|small| * log |large|). *)
let inter_gallop (small : t) (large : t) : t =
  let ls = Array.length small and ll = Array.length large in
  if ls = 0 || ll = 0 then empty
  else begin
    let out = Array.make ls 0 in
    let w = ref 0 and from = ref 0 in
    for i = 0 to ls - 1 do
      let x = small.(i) in
      let j = lower_bound large x !from ll in
      from := j;
      if j < ll && large.(j) = x then begin
        out.(!w) <- x;
        incr w;
        from := j + 1
      end
    done;
    if !w = 0 then empty else Array.sub out 0 !w
  end

let gallop_factor = 16
(* gallop when the large side is >= 16x the small side: below that the
   merge's sequential reads win, above it the log-probes do (E14) *)

let inter (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let small, large, ls, ll = if la <= lb then (a, b, la, lb) else (b, a, lb, la) in
  if ls = 0 then empty
  else if ll >= ls * gallop_factor then inter_gallop small large
  else inter_linear a b

(** Intersect all sets, smallest first, so intermediate results can only
    shrink and every later intersection is vs. the current (small)
    running set.  [inter_many []] is undefined domain-wise; callers
    guard the empty case. *)
let inter_many (sets : t list) : t =
  match List.sort (fun a b -> compare (Array.length a) (Array.length b)) sets with
  | [] -> invalid_arg "Iset.inter_many: empty list"
  | first :: rest ->
    List.fold_left (fun acc s -> if is_empty acc then acc else inter acc s) first rest

let union (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let out = Array.make (la + lb) 0 in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < la && !j < lb do
      let x = a.(!i) and y = b.(!j) in
      let v =
        if x < y then (incr i; x)
        else if y < x then (incr j; y)
        else (incr i; incr j; x)
      in
      out.(!w) <- v;
      incr w
    done;
    while !i < la do
      out.(!w) <- a.(!i);
      incr w;
      incr i
    done;
    while !j < lb do
      out.(!w) <- b.(!j);
      incr w;
      incr j
    done;
    if !w = la + lb then out else Array.sub out 0 !w
  end

(** Elements of [a] not in [b]. *)
let diff (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then (if la = 0 then empty else Array.copy a)
  else begin
    let out = Array.make la 0 in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < la do
      let x = a.(!i) in
      while !j < lb && b.(!j) < x do incr j done;
      if !j >= lb || b.(!j) <> x then begin
        out.(!w) <- x;
        incr w
      end;
      incr i
    done;
    if !w = la then out else Array.sub out 0 !w
  end

(** Order-preserving filter — the matcher's node-predicate re-check. *)
let filter (p : int -> bool) (s : t) : t =
  let n = Array.length s in
  let out = Array.make n 0 in
  let w = ref 0 in
  for i = 0 to n - 1 do
    if p s.(i) then begin
      out.(!w) <- s.(i);
      incr w
    end
  done;
  if !w = n then s else Array.sub out 0 !w
