(** Labelled directed multigraphs.

    The shared substrate under both visual languages: WG-Log queries
    *are* graphs, XML-GL patterns are graphs, and the semi-structured
    databases they run on ([Gql_data.Graph]) are graphs too.

    Nodes are dense integer ids carrying a payload ['n]; edges carry a
    label ['e].  The structure is mutable during construction and then
    used as read-only; all analysis lives in {!Algo}, {!Regpath},
    {!Homo}. *)

type ('n, 'e) t = {
  payloads : 'n Vec.t;
  out_adj : (int * 'e) list array Vec.t;  (** boxed to allow growth *)
  in_adj : (int * 'e) list array Vec.t;
  mutable n_edges : int;
}

type node = int

let create ~(dummy : 'n) : ('n, 'e) t =
  {
    payloads = Vec.create ~dummy ();
    out_adj = Vec.create ~dummy:[| [] |] ();
    in_adj = Vec.create ~dummy:[| [] |] ();
    n_edges = 0;
  }

let add_node g payload : node =
  let id = Vec.push g.payloads payload in
  let _ = Vec.push g.out_adj [| [] |] in
  let _ = Vec.push g.in_adj [| [] |] in
  id

let add_edge g ~src ~dst label =
  let out = Vec.get g.out_adj src in
  out.(0) <- (dst, label) :: out.(0);
  let inn = Vec.get g.in_adj dst in
  inn.(0) <- (src, label) :: inn.(0);
  g.n_edges <- g.n_edges + 1

let n_nodes g = Vec.length g.payloads
let n_edges g = g.n_edges
let payload g n = Vec.get g.payloads n
let set_payload g n p = Vec.set g.payloads n p

(** Outgoing (destination, label) pairs, most recently added first. *)
let succ g n = (Vec.get g.out_adj n).(0)

let pred g n = (Vec.get g.in_adj n).(0)
let out_degree g n = List.length (succ g n)
let in_degree g n = List.length (pred g n)
let nodes g = List.init (n_nodes g) Fun.id

let iter_nodes f g =
  for i = 0 to n_nodes g - 1 do
    f i (payload g i)
  done

let fold_nodes f acc g =
  let acc = ref acc in
  iter_nodes (fun i p -> acc := f !acc i p) g;
  !acc

let iter_edges f g =
  iter_nodes (fun src _ -> List.iter (fun (dst, l) -> f ~src ~dst l) (succ g src)) g

let fold_edges f acc g =
  let acc = ref acc in
  iter_edges (fun ~src ~dst l -> acc := f !acc ~src ~dst l) g;
  !acc

let edges g = List.rev (fold_edges (fun acc ~src ~dst l -> (src, l, dst) :: acc) [] g)

let find_nodes g p =
  fold_nodes (fun acc i payload -> if p payload then i :: acc else acc) [] g
  |> List.rev

(** Edges from [src] to [dst] (multigraph: may be several). *)
let edges_between g src dst =
  List.filter_map (fun (d, l) -> if d = dst then Some l else None) (succ g src)

let has_edge ?label g src dst =
  match label with
  | None -> List.exists (fun (d, _) -> d = dst) (succ g src)
  | Some l -> List.exists (fun (d, l') -> d = dst && l' = l) (succ g src)

(** Structure-preserving payload/label translation. *)
let map ~node ~edge ~dummy g =
  let g' = create ~dummy in
  iter_nodes (fun i p -> ignore (add_node g' (node i p))) g;
  iter_edges (fun ~src ~dst l -> add_edge g' ~src ~dst (edge l)) g;
  g'

(** Rebuild a mutable graph from prebuilt adjacency lists — the inverse
    of a freeze, used by the snapshot loader to thaw an on-disk CSR
    image.  Takes ownership of all three arrays; [succ]/[pred] lists
    must describe the same edge multiset ([n_edges] of them) with
    mirrored order, as {!succ}/{!pred} of the original graph did. *)
let of_adjacency ~(dummy : 'n) ~(payloads : 'n array)
    ~(succ : (int * 'e) list array) ~(pred : (int * 'e) list array)
    ~(n_edges : int) : ('n, 'e) t =
  if Array.length succ <> Array.length payloads
     || Array.length pred <> Array.length payloads
  then invalid_arg "Digraph.of_adjacency: length mismatch";
  {
    payloads = Vec.of_array ~dummy payloads;
    out_adj = Vec.of_array ~dummy:[| [] |] (Array.map (fun l -> [| l |]) succ);
    in_adj = Vec.of_array ~dummy:[| [] |] (Array.map (fun l -> [| l |]) pred);
    n_edges;
  }

(** An independent structural copy: same node ids, same adjacency-list
    order (so evaluation over the copy enumerates embeddings exactly as
    over the original), no shared mutable state. *)
let copy g =
  let copy_adj v =
    let v' = Vec.copy v in
    for i = 0 to Vec.length v' - 1 do
      Vec.set v' i (Array.copy (Vec.get v' i))
    done;
    v'
  in
  {
    payloads = Vec.copy g.payloads;
    out_adj = copy_adj g.out_adj;
    in_adj = copy_adj g.in_adj;
    n_edges = g.n_edges;
  }
