(** Frozen, index-friendly view of a {!Digraph}.

    [Digraph] is mutable and adjacency lives in cons lists — right for
    construction, wrong for the matcher's hot loops, where degrees are
    recomputed with [List.length] and neighbour walks chase pointers.
    Freezing packs the same graph into classic CSR (compressed sparse
    row) form: one offset array per direction plus flat neighbour/label
    arrays, so degrees are O(1) subtractions and adjacency scans are
    cache-friendly array slices.

    The frozen view is a snapshot: it does not observe later mutation of
    the source graph.  Neighbour order within a node is preserved from
    [Digraph.succ]/[Digraph.pred] (most recently added first), so code
    that iterates either representation sees the same sequence. *)

type ('n, 'e) t = {
  payloads : 'n array;
  out_off : int array;  (** length [n+1]; node [i] owns slice [out_off.(i) .. out_off.(i+1) - 1] *)
  out_dst : int array;
  out_lab : 'e array;
  in_off : int array;
  in_src : int array;
  in_lab : 'e array;
  mutable node_syms : int array;
      (** per-node interned label ids ([Gql_data.Symtab] ids, [-1] for
          nodes without a label); empty until an index build attaches
          them via {!set_node_syms}.  Ids are snapshot-local: valid only
          against the symbol table of the index that set them. *)
}

type node = Digraph.node

let n_nodes t = Array.length t.payloads
let n_edges t = Array.length t.out_dst
let payload t n = t.payloads.(n)

(** Attach per-node interned label ids (length must be [n_nodes]). *)
let set_node_syms t (syms : int array) =
  if Array.length syms <> Array.length t.payloads then
    invalid_arg "Csr.set_node_syms: length mismatch";
  t.node_syms <- syms

(** The interned label id of [n], or [-1] when no plane is attached or
    the node carries no label — so a single integer compare answers
    "is this a complex node with label X?". *)
let node_sym t n =
  if Array.length t.node_syms = 0 then -1 else t.node_syms.(n)

(* O(1) degrees — the point of the exercise. *)
let out_degree t n = t.out_off.(n + 1) - t.out_off.(n)
let in_degree t n = t.in_off.(n + 1) - t.in_off.(n)
let degree t n = out_degree t n + in_degree t n

(** Mean out-degree over all nodes (= edges/nodes) — the cost model's
    fallback fan-out when no per-symbol posting set can be sampled.
    O(1): both totals sit in the offset arrays. *)
let avg_out_degree t =
  let n = n_nodes t in
  if n = 0 then 0.0 else float_of_int (n_edges t) /. float_of_int n

let avg_in_degree = avg_out_degree

(** Largest out-degree of any node — O(n), used for reachability caps on
    regular-path estimates. *)
let max_out_degree t =
  let best = ref 0 in
  for n = 0 to n_nodes t - 1 do
    best := max !best (out_degree t n)
  done;
  !best

let iter_succ f t n =
  for i = t.out_off.(n) to t.out_off.(n + 1) - 1 do
    f t.out_dst.(i) t.out_lab.(i)
  done

let iter_pred f t n =
  for i = t.in_off.(n) to t.in_off.(n + 1) - 1 do
    f t.in_src.(i) t.in_lab.(i)
  done

let fold_succ f acc t n =
  let acc = ref acc in
  iter_succ (fun d l -> acc := f !acc d l) t n;
  !acc

let fold_pred f acc t n =
  let acc = ref acc in
  iter_pred (fun s l -> acc := f !acc s l) t n;
  !acc

(** Per-edge derived planes, index-aligned with the out/in label slices
    (so [plane.(i)] annotates the edge [iter_succ]/[iter_pred] visits at
    position [i]).  [Gql_data.Index] uses these to resolve edge names to
    interned symbols once per snapshot for the regular-path engine. *)
let map_out_labels (f : 'e -> int) t : int array = Array.map f t.out_lab

let map_in_labels (f : 'e -> int) t : int array = Array.map f t.in_lab

(** Allocating compatibility shims, same shape as [Digraph.succ]/[pred]. *)
let succ t n = List.rev (fold_succ (fun acc d l -> (d, l) :: acc) [] t n)

let pred t n = List.rev (fold_pred (fun acc s l -> (s, l) :: acc) [] t n)

let exists_succ p t n =
  let rec go i stop = i < stop && (p t.out_dst.(i) t.out_lab.(i) || go (i + 1) stop) in
  go t.out_off.(n) t.out_off.(n + 1)

let has_edge ?pred t src dst =
  exists_succ
    (fun d l -> d = dst && match pred with None -> true | Some p -> p l)
    t src

let iter_edges f t =
  for src = 0 to n_nodes t - 1 do
    for i = t.out_off.(src) to t.out_off.(src + 1) - 1 do
      f ~src ~dst:t.out_dst.(i) t.out_lab.(i)
    done
  done

(** Snapshot a mutable graph.  O(V + E); the result shares nothing with
    the source. *)
let freeze (g : ('n, 'e) Digraph.t) : ('n, 'e) t =
  let n = Digraph.n_nodes g in
  let m = Digraph.n_edges g in
  let payloads = Array.init n (Digraph.payload g) in
  let out_off = Array.make (n + 1) 0 in
  let in_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    out_off.(i + 1) <- out_off.(i) + List.length (Digraph.succ g i);
    in_off.(i + 1) <- in_off.(i) + List.length (Digraph.pred g i)
  done;
  (* ['e] has no dummy; steal one from any edge (m = 0 needs none). *)
  if m = 0 then
    {
      payloads;
      out_off;
      out_dst = [||];
      out_lab = [||];
      in_off;
      in_src = [||];
      in_lab = [||];
      node_syms = [||];
    }
  else begin
    let some_label =
      let rec find i =
        match Digraph.succ g i with
        | (_, l) :: _ -> l
        | [] -> find (i + 1)
      in
      find 0
    in
    let out_dst = Array.make m (-1) in
    let out_lab = Array.make m some_label in
    let in_src = Array.make m (-1) in
    let in_lab = Array.make m some_label in
    for i = 0 to n - 1 do
      List.iteri
        (fun k (d, l) ->
          out_dst.(out_off.(i) + k) <- d;
          out_lab.(out_off.(i) + k) <- l)
        (Digraph.succ g i);
      List.iteri
        (fun k (s, l) ->
          in_src.(in_off.(i) + k) <- s;
          in_lab.(in_off.(i) + k) <- l)
        (Digraph.pred g i)
    done;
    { payloads; out_off; out_dst; out_lab; in_off; in_src; in_lab;
      node_syms = [||] }
  end

(** Assemble a frozen view from prebuilt planes — the snapshot loader's
    constructor.  Takes ownership of every array; offsets must be
    monotone with [off.(0) = 0] and [off.(n)] equal to the edge count
    (the loader validates this against the file before calling). *)
let of_planes ~payloads ~out_off ~out_dst ~out_lab ~in_off ~in_src ~in_lab
    ~node_syms : ('n, 'e) t =
  let n = Array.length payloads in
  if Array.length out_off <> n + 1 || Array.length in_off <> n + 1 then
    invalid_arg "Csr.of_planes: offset length mismatch";
  if
    Array.length out_dst <> Array.length out_lab
    || Array.length in_src <> Array.length in_lab
    || Array.length out_dst <> Array.length in_src
  then invalid_arg "Csr.of_planes: edge plane length mismatch";
  { payloads; out_off; out_dst; out_lab; in_off; in_src; in_lab; node_syms }

(** Rebuild a mutable {!Digraph} from the frozen view — the inverse of
    {!freeze}, used to thaw a loaded snapshot on first demand.  Preserves
    adjacency order (slice order = cons-list order), copies the payload
    array (so [Digraph.set_payload] cannot corrupt the CSR), and shares
    the immutable edge labels. *)
let thaw (t : ('n, 'e) t) ~(dummy : 'n) : ('n, 'e) Digraph.t =
  let n = n_nodes t in
  if n = 0 then Digraph.create ~dummy
  else begin
    let succ = Array.make n [] in
    let pred = Array.make n [] in
    for i = 0 to n - 1 do
      let lo = t.out_off.(i) in
      let l = ref [] in
      for k = t.out_off.(i + 1) - 1 downto lo do
        l := (t.out_dst.(k), t.out_lab.(k)) :: !l
      done;
      succ.(i) <- !l;
      let lo = t.in_off.(i) in
      let l = ref [] in
      for k = t.in_off.(i + 1) - 1 downto lo do
        l := (t.in_src.(k), t.in_lab.(k)) :: !l
      done;
      pred.(i) <- !l
    done;
    Digraph.of_adjacency ~dummy ~payloads:(Array.copy t.payloads) ~succ ~pred
      ~n_edges:(n_edges t)
  end
