(** Deterministic chunked fan-out over OCaml 5 domains.

    The embedding searches in this repo are pure reads over a frozen or
    quiescent graph, so they parallelise by *seed partitioning*: split
    the first choice point's candidate list into contiguous chunks, run
    an independent search instance per chunk, and concatenate the
    per-chunk buffers in chunk order.  Because every instance is
    deterministic and the chunks tile the sequential candidate order,
    the merged enumeration is byte-identical to the sequential one —
    parallelism changes wall-clock time, never answers.

    {!map_chunks} is the only scheduling primitive: a fixed set of
    domains pulls chunk indexes from a shared atomic counter (work
    stealing at chunk granularity), the calling domain participates, and
    results land in a slot array read back after all joins.  Worker
    domains are flagged via {!Domain.DLS} so nested calls degrade to
    sequential execution instead of spawning domains recursively.

    A process-wide {!budget} (seeded from
    [Domain.recommended_domain_count () - 1]) accounts for extra live
    domains.  Explicit requests ([~domains:4] from the CLI, bench or
    tests) are always honoured — the user asked — but they charge the
    budget while running, and *auto* sizing ({!auto_domains}, used by
    the server) only spends what is currently left, so an 8-client
    burst cannot oversubscribe the machine: busy pool workers each hold
    one unit, and per-request fan-out sees the remainder. *)

let total_capacity = Domain.recommended_domain_count ()

(* Spare-domain budget: how many domains beyond the already-running
   ones the machine can absorb.  May go negative under explicit
   oversubscription; auto sizing clamps at zero. *)
let budget = Atomic.make (max 0 (total_capacity - 1))

let charge () = ignore (Atomic.fetch_and_add budget (-1))
let refund () = ignore (Atomic.fetch_and_add budget 1)

(** Run [f] with one budget unit held — how a server pool worker marks
    itself busy for the duration of a job. *)
let charged f =
  charge ();
  Fun.protect ~finally:refund f

(** Domain count an auto-sized caller should use right now: itself plus
    whatever spare capacity is left.  Never below 1. *)
let auto_domains () = 1 + max 0 (Atomic.get budget)

(* Default domain count for engine entry points that were not given an
   explicit [~domains]: a programmatic override ({!set_default}, the
   CLI's [--domains]) wins, then the [GQL_DOMAINS] environment variable
   (how CI runs the whole test suite in parallel mode), then 1.
   [env_domains] is computed once at module initialisation so no lazy
   cell is forced concurrently from worker domains. *)
let env_domains =
  match Sys.getenv_opt "GQL_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> 1

let override = Atomic.make 0 (* 0 = unset *)

let set_default n = Atomic.set override (max 1 n)

let default_domains () =
  match Atomic.get override with 0 -> env_domains | n -> n

(* Worker domains must not fan out again: nested [map_chunks] inside a
   worker runs sequentially on that worker. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let chunk_factor = 4
(* chunks per domain: cheap load balancing for skewed seed costs *)

(** [map_chunks ~domains ~n f] tiles the index range [\[0, n)] with
    contiguous chunks, evaluates [f lo hi] once per chunk ([lo]
    inclusive, [hi] exclusive) on up to [domains] domains (the caller
    included), and returns the chunk results in ascending chunk order —
    so [List.concat (map_chunks ~domains ~n f)] equals the sequential
    [f 0 n] whenever [f] concatenates over its range.  If any [f]
    raises, the exception of the lowest-numbered failing chunk is
    re-raised after all domains have joined.  Runs sequentially when
    [domains <= 1], [n < 2], or when called from inside a worker. *)
let map_chunks ~(domains : int) ~(n : int) (f : int -> int -> 'a) : 'a list =
  if n <= 0 then []
  else if domains <= 1 || n < 2 || Domain.DLS.get in_worker then [ f 0 n ]
  else begin
    let extra = min (domains - 1) (n - 1) in
    let n_chunks = min n ((extra + 1) * chunk_factor) in
    let slots : ('a, exn) result option array = Array.make n_chunks None in
    let next = Atomic.make 0 in
    let work () =
      let rec loop () =
        let c = Atomic.fetch_and_add next 1 in
        if c < n_chunks then begin
          let lo = c * n / n_chunks and hi = (c + 1) * n / n_chunks in
          slots.(c) <- Some (try Ok (f lo hi) with e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    (* one budget unit per *extra* domain (the caller is already live);
       best effort: if the OS refuses a domain, run with fewer *)
    let spawned = ref [] in
    (try
       for _ = 1 to extra do
         charge ();
         match
           Domain.spawn (fun () ->
               Domain.DLS.set in_worker true;
               work ())
         with
         | d -> spawned := d :: !spawned
         | exception e ->
           refund ();
           raise e
       done
     with _ -> ());
    let was_worker = Domain.DLS.get in_worker in
    Domain.DLS.set in_worker true;
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set in_worker was_worker;
        List.iter Domain.join !spawned;
        List.iter (fun _ -> refund ()) !spawned)
      work;
    (* all chunks were claimed and filled before the counter ran past
       [n_chunks]; joins give the happens-before edge for the reads *)
    let out = ref [] in
    for c = n_chunks - 1 downto 0 do
      match slots.(c) with
      | Some (Ok v) -> out := v :: !out
      | Some (Error _) | None -> ()
    done;
    Array.iter
      (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
      slots;
    !out
  end

(** Deterministic parallel concat-map: [concat_map_chunks ~domains f xs]
    equals [List.concat_map f xs], computed chunk-wise. *)
let concat_map_chunks ~domains (f : 'a -> 'b list) (xs : 'a list) : 'b list =
  match xs with
  | [] -> []
  | [ x ] -> f x
  | _ ->
    let arr = Array.of_list xs in
    map_chunks ~domains ~n:(Array.length arr) (fun lo hi ->
        let out = ref [] in
        for i = hi - 1 downto lo do
          out := f arr.(i) :: !out
        done;
        List.concat !out)
    |> List.concat
