(** Deterministic chunked fan-out over a persistent pool of OCaml 5
    worker domains.

    The embedding searches in this repo are pure reads over a frozen or
    quiescent graph, so they parallelise by *seed partitioning*: split
    the first choice point's candidate list into contiguous chunks, run
    an independent search instance per chunk, and concatenate the
    per-chunk buffers in chunk order.  Because every instance is
    deterministic and the chunks tile the sequential candidate order,
    the merged enumeration is byte-identical to the sequential one —
    parallelism changes wall-clock time, never answers.

    {!map_chunks} is the only scheduling primitive, and it is now *job
    submission*, not domain creation: worker domains are spawned lazily,
    at most once each, and park on a condition variable between jobs.  A
    job is an atomic chunk counter plus a slot array; the submitting
    domain claims chunks alongside however many pool workers took a seat
    on the job, so an idle pool costs nothing and a busy one never pays
    [Domain.spawn] (~50-200 us plus a GC ramp-up) on the hot path.
    Results land in the slot array and are read back in chunk order
    after the last chunk completes (the atomic completion counter gives
    the happens-before edge for the reads).  Worker domains are flagged
    via {!Domain.DLS} so nested calls degrade to sequential execution
    instead of re-entering the pool.

    On top of the pool sits *work-size gating*: callers pass [?cost], a
    cheap estimate of the job's total work (candidate count x pattern
    size, in predicate-test units), and jobs below {!cutoff} run
    sequentially on the caller — a 6 ms query never pays fan-out tax,
    however many domains were requested.  The chunk count also adapts to
    the estimate: big jobs get fine chunks (work stealing smooths skewed
    seed costs), marginal jobs get few.

    A process-wide {!budget} (seeded from
    [Domain.recommended_domain_count () - 1]) accounts for concurrently
    busy domains.  Explicit requests ([~domains:4] from the CLI, bench
    or tests) may grow the pool past the hardware budget — the user
    asked — but they charge the budget while running, and *auto* sizing
    ({!auto_domains}, used by the server) only spends what is currently
    left, so an 8-client burst cannot oversubscribe the machine: busy
    pool workers each hold one unit, and per-request fan-out sees the
    remainder.

    Everything observable about the scheduler — jobs, chunks, steals,
    sequential-fallback reasons, spawn failures, saturation — is
    counted in {!stats}. *)

let total_capacity = Domain.recommended_domain_count ()

(* Spare-domain budget: how many domains beyond the already-running
   ones the machine can absorb.  May go negative under explicit
   oversubscription; auto sizing clamps at zero. *)
let budget = Atomic.make (max 0 (total_capacity - 1))

let charge () = ignore (Atomic.fetch_and_add budget (-1))
let refund () = ignore (Atomic.fetch_and_add budget 1)

(** Run [f] with one budget unit held — how a server pool worker marks
    itself busy for the duration of a job. *)
let charged f =
  charge ();
  Fun.protect ~finally:refund f

(** Domain count an auto-sized caller should use right now: itself plus
    whatever spare capacity is left.  Never below 1. *)
let auto_domains () = 1 + max 0 (Atomic.get budget)

(* Default domain count for engine entry points that were not given an
   explicit [~domains]: a programmatic override ({!set_default}, the
   CLI's [--domains]) wins, then the [GQL_DOMAINS] environment variable
   (how CI runs the whole test suite in parallel mode), then 1.
   [env_domains] is computed once at module initialisation so no lazy
   cell is forced concurrently from worker domains. *)
let env_domains =
  match Sys.getenv_opt "GQL_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> 1

let override = Atomic.make 0 (* 0 = unset *)

let set_default n = Atomic.set override (max 1 n)

let default_domains () =
  match Atomic.get override with 0 -> env_domains | n -> n

(* ------------------------------------------------------------------ *)
(* Work-size gating                                                    *)
(* ------------------------------------------------------------------ *)

(** Calibration constant: jobs whose [?cost] estimate (in candidate x
    pattern-size units — roughly "predicate tests this job will run")
    falls below the cutoff never fan out.  65536 units ≈ a handful of
    milliseconds of matching on 2020s hardware, comfortably above the
    point where E13's small fixtures lost to fan-out overhead and an
    order of magnitude below the million-node workloads that win.
    Recorded in every E13v2 bench record so the trajectory documents
    the constant it was measured under. *)
let default_cutoff = 65536

let env_cutoff =
  match Sys.getenv_opt "GQL_PAR_CUTOFF" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> Some n
    | _ -> None)
  | None -> None

let cutoff_override = Atomic.make (-1) (* -1 = unset *)

let set_cutoff n = Atomic.set cutoff_override (max 0 n)

(** The work-size cutoff now in force: {!set_cutoff} (the CLI's
    [--par-cutoff]) wins, then [GQL_PAR_CUTOFF], then
    {!default_cutoff}.  [0] disables gating entirely. *)
let cutoff () =
  match Atomic.get cutoff_override with
  | -1 -> ( match env_cutoff with Some n -> n | None -> default_cutoff)
  | n -> n

(* ------------------------------------------------------------------ *)
(* Scheduler observability                                             *)
(* ------------------------------------------------------------------ *)

type stats = {
  jobs : int;  (** parallel jobs submitted to the worker pool *)
  chunks : int;  (** chunks executed by pooled jobs (all domains) *)
  stolen : int;  (** chunks executed by pool workers, not the submitter *)
  seq_below_cutoff : int;
      (** calls gated sequential: cost estimate under {!cutoff} *)
  seq_nested : int;  (** calls gated sequential: issued from a worker *)
  seq_solo : int;  (** calls gated sequential: [domains <= 1] or [n < 2] *)
  workers_spawned : int;  (** pool domains ever spawned (never joined) *)
  spawn_failures : int;
      (** [Domain.spawn] refusals — the pool runs with fewer workers,
          visibly instead of silently *)
  saturated : int;
      (** jobs submitted with fewer idle workers than requested seats *)
}

let c_jobs = Atomic.make 0
let c_chunks = Atomic.make 0
let c_stolen = Atomic.make 0
let c_seq_below_cutoff = Atomic.make 0
let c_seq_nested = Atomic.make 0
let c_seq_solo = Atomic.make 0
let c_workers_spawned = Atomic.make 0
let c_spawn_failures = Atomic.make 0
let c_saturated = Atomic.make 0

let stats () =
  {
    jobs = Atomic.get c_jobs;
    chunks = Atomic.get c_chunks;
    stolen = Atomic.get c_stolen;
    seq_below_cutoff = Atomic.get c_seq_below_cutoff;
    seq_nested = Atomic.get c_seq_nested;
    seq_solo = Atomic.get c_seq_solo;
    workers_spawned = Atomic.get c_workers_spawned;
    spawn_failures = Atomic.get c_spawn_failures;
    saturated = Atomic.get c_saturated;
  }

(** Counter deltas between two snapshots — what a bench wraps around a
    measured run. *)
let stats_diff ~(before : stats) (after : stats) : stats =
  {
    jobs = after.jobs - before.jobs;
    chunks = after.chunks - before.chunks;
    stolen = after.stolen - before.stolen;
    seq_below_cutoff = after.seq_below_cutoff - before.seq_below_cutoff;
    seq_nested = after.seq_nested - before.seq_nested;
    seq_solo = after.seq_solo - before.seq_solo;
    workers_spawned = after.workers_spawned - before.workers_spawned;
    spawn_failures = after.spawn_failures - before.spawn_failures;
    saturated = after.saturated - before.saturated;
  }

(** The scheduler's slice of a METRICS body: one [par_key=value] per
    line, stable keys. *)
let stats_lines () =
  let s = stats () in
  Printf.sprintf
    "par_jobs=%d\npar_chunks=%d\npar_chunks_stolen=%d\n\
     par_seq_below_cutoff=%d\npar_seq_nested=%d\npar_seq_solo=%d\n\
     par_workers_spawned=%d\npar_spawn_failures=%d\npar_saturated=%d\n\
     par_cutoff=%d\n"
    s.jobs s.chunks s.stolen s.seq_below_cutoff s.seq_nested s.seq_solo
    s.workers_spawned s.spawn_failures s.saturated (cutoff ())

(* ------------------------------------------------------------------ *)
(* The worker pool                                                     *)
(* ------------------------------------------------------------------ *)

(* Worker domains must not fan out again: nested [map_chunks] inside a
   worker runs sequentially on that worker. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* One submitted fan-out.  Chunk claiming ([j_next]) and completion
   ([j_left]) are atomics touched outside the pool lock; [j_seats] — how
   many more workers may join — is plain state under the pool lock.
   [j_run] computes one chunk into the submitter's slot array and never
   raises (exceptions are captured into the slot). *)
type job = {
  j_chunks : int;
  j_next : int Atomic.t;
  j_left : int Atomic.t;
  j_run : int -> unit;
  mutable j_seats : int;
}

type pool = {
  lock : Mutex.t;
  work : Condition.t;  (** workers park here between jobs *)
  finished : Condition.t;  (** submitters wait here for their last chunk *)
  mutable jobs : job list;  (** open jobs, oldest first *)
  mutable idle : int;  (** workers parked or scanning for a job *)
}

let pool =
  {
    lock = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    jobs = [];
    idle = 0;
  }

(* Claim and run chunks until the job's counter runs out.  Shared by the
   submitter and every seated worker; the last finisher wakes the
   submitter.  [j_run] never raises, so neither does this. *)
let run_chunks ~(stolen : bool) (j : job) =
  let rec loop () =
    let c = Atomic.fetch_and_add j.j_next 1 in
    if c < j.j_chunks then begin
      j.j_run c;
      Atomic.incr c_chunks;
      if stolen then Atomic.incr c_stolen;
      if Atomic.fetch_and_add j.j_left (-1) = 1 then begin
        Mutex.lock pool.lock;
        Condition.broadcast pool.finished;
        Mutex.unlock pool.lock
      end;
      loop ()
    end
  in
  loop ()

let rec worker_loop () =
  Mutex.lock pool.lock;
  let rec find () =
    (* drop jobs whose chunks are all claimed; they finish without us *)
    pool.jobs <-
      List.filter (fun j -> Atomic.get j.j_next < j.j_chunks) pool.jobs;
    match List.find_opt (fun j -> j.j_seats > 0) pool.jobs with
    | Some j -> j
    | None ->
      Condition.wait pool.work pool.lock;
      find ()
  in
  let j = find () in
  j.j_seats <- j.j_seats - 1;
  pool.idle <- pool.idle - 1;
  Mutex.unlock pool.lock;
  run_chunks ~stolen:true j;
  Mutex.lock pool.lock;
  pool.idle <- pool.idle + 1;
  Mutex.unlock pool.lock;
  worker_loop ()

(* Grow the pool (under the pool lock) until [wanted] workers are idle.
   Auto-sized callers never want more than the hardware budget; an
   explicit ~domains beyond it grows the pool once and reuses those
   workers forever after.  A refused spawn is counted, not swallowed:
   the job still completes on fewer domains, but [stats] says so. *)
let ensure_workers wanted =
  (try
     while pool.idle < wanted do
       ignore
         (Domain.spawn (fun () ->
              Domain.DLS.set in_worker true;
              worker_loop ()));
       pool.idle <- pool.idle + 1;
       Atomic.incr c_workers_spawned
     done
   with _ -> Atomic.incr c_spawn_failures);
  if pool.idle < wanted then Atomic.incr c_saturated

let chunk_factor = 4
(* chunks per domain when no cost estimate is given: cheap load
   balancing for skewed seed costs *)

(* Chunk count for a job: with a cost estimate, one chunk per
   [cutoff/4] work units — fine enough that stealing can smooth skew,
   never more than 8 per domain and never fewer than one per domain. *)
let chunk_count ~cost ~slots_wanted ~n =
  match cost with
  | None -> min n (slots_wanted * chunk_factor)
  | Some c ->
    let per_chunk = max 1 (cutoff () / 4) in
    min n (max slots_wanted (min (slots_wanted * 8) (c / per_chunk)))

(** [map_chunks ?cost ~domains ~n f] tiles the index range [\[0, n)]
    with contiguous chunks, evaluates [f lo hi] once per chunk ([lo]
    inclusive, [hi] exclusive) on up to [domains] domains (the caller
    included), and returns the chunk results in ascending chunk order —
    so [List.concat (map_chunks ~domains ~n f)] equals the sequential
    [f 0 n] whenever [f] concatenates over its range.  If any [f]
    raises, the exception of the lowest-numbered failing chunk is
    re-raised after the whole job has completed.

    Runs sequentially (one [f 0 n] call, no pool traffic) when
    [domains <= 1], [n < 2], when called from inside a pool worker, or
    when [cost] — the caller's work estimate — is below {!cutoff}.
    Otherwise the call becomes a pool job: up to [domains - 1] idle
    workers (spawned on first need, reused forever) claim chunks from
    the job's atomic counter alongside the caller. *)
let map_chunks ?cost ~(domains : int) ~(n : int) (f : int -> int -> 'a) :
    'a list =
  if n <= 0 then []
  else if domains <= 1 || n < 2 then begin
    Atomic.incr c_seq_solo;
    [ f 0 n ]
  end
  else if Domain.DLS.get in_worker then begin
    Atomic.incr c_seq_nested;
    [ f 0 n ]
  end
  else
    match cost with
    | Some c when c < cutoff () ->
      Atomic.incr c_seq_below_cutoff;
      [ f 0 n ]
    | _ ->
      let seats = min (domains - 1) (n - 1) in
      let n_chunks = chunk_count ~cost ~slots_wanted:(seats + 1) ~n in
      let slots : ('a, exn) result option array = Array.make n_chunks None in
      let job =
        {
          j_chunks = n_chunks;
          j_next = Atomic.make 0;
          j_left = Atomic.make n_chunks;
          j_run =
            (fun c ->
              let lo = c * n / n_chunks and hi = (c + 1) * n / n_chunks in
              slots.(c) <- Some (try Ok (f lo hi) with e -> Error e));
          j_seats = seats;
        }
      in
      Atomic.incr c_jobs;
      (* the submitter holds [seats] budget units for the job's duration
         — how concurrent auto-sized callers see each other *)
      for _ = 1 to seats do
        charge ()
      done;
      Mutex.lock pool.lock;
      ensure_workers seats;
      pool.jobs <- pool.jobs @ [ job ];
      Condition.broadcast pool.work;
      Mutex.unlock pool.lock;
      let was_worker = Domain.DLS.get in_worker in
      Domain.DLS.set in_worker true;
      Fun.protect
        ~finally:(fun () ->
          Domain.DLS.set in_worker was_worker;
          Mutex.lock pool.lock;
          while Atomic.get job.j_left > 0 do
            Condition.wait pool.finished pool.lock
          done;
          pool.jobs <- List.filter (fun j -> j != job) pool.jobs;
          Mutex.unlock pool.lock;
          for _ = 1 to seats do
            refund ()
          done)
        (fun () -> run_chunks ~stolen:false job);
      (* the completion counter hit zero before we read the slots, so
         every slot write happens-before these reads *)
      let out = ref [] in
      for c = n_chunks - 1 downto 0 do
        match slots.(c) with
        | Some (Ok v) -> out := v :: !out
        | Some (Error _) | None -> ()
      done;
      Array.iter
        (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
        slots;
      !out

(** Deterministic parallel concat-map: [concat_map_chunks ~domains f xs]
    equals [List.concat_map f xs], computed chunk-wise.  [?cost] gates
    and granulates exactly as in {!map_chunks}. *)
let concat_map_chunks ?cost ~domains (f : 'a -> 'b list) (xs : 'a list) :
    'b list =
  match xs with
  | [] -> []
  | [ x ] -> f x
  | _ ->
    let arr = Array.of_list xs in
    map_chunks ?cost ~domains ~n:(Array.length arr) (fun lo hi ->
        let out = ref [] in
        for i = hi - 1 downto lo do
          out := f arr.(i) :: !out
        done;
        List.concat !out)
    |> List.concat
