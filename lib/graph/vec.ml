(** Minimal growable array (OCaml 5.1 predates [Dynarray]).

    Used for node/edge storage in {!Digraph}; amortised O(1) push. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 8) ~dummy () =
  { data = Array.make (max 1 capacity) dummy; len = 0; dummy }
let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let push v x =
  if v.len = Array.length v.data then begin
    let bigger = Array.make (2 * Array.length v.data) v.dummy in
    Array.blit v.data 0 bigger 0 v.len;
    v.data <- bigger
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

(** An independent copy sharing no mutable state with the original. *)
let copy v = { data = Array.copy v.data; len = v.len; dummy = v.dummy }

(** Wrap [a] as a vector of exactly its elements.  Takes ownership of
    the array (the vector mutates it in place on [set]/[push]); callers
    that still need [a] must pass a copy. *)
let of_array ~(dummy : 'a) (a : 'a array) : 'a t =
  if Array.length a = 0 then create ~dummy ()
  else { data = a; len = Array.length a; dummy }

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))
