(** Parser for regular path expressions over edge labels.

    These appear on GraphLog/WG-Log dashed edges; syntax:
    [link], [index+], [(link|index)* ref?], ['.' = any label].
    Sequencing is by juxtaposition. *)

exception Error of string

let parse (src : string) : string Gql_regex.Syntax.t =
  let n = String.length src in
  let pos = ref 0 in
  (* Column-stamped errors (1-based): fuzz minimization and editors
     need to tell a *parse* failure at a position apart from an
     evaluation disagreement. *)
  let error fmt =
    Printf.ksprintf
      (fun s -> raise (Error (Printf.sprintf "%s at column %d" s (!pos + 1))))
      fmt
  in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let skip () =
    while !pos < n && (src.[!pos] = ' ' || src.[!pos] = '\t') do
      advance ()
    done
  in
  let is_name c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-'
  in
  let name () =
    let start = !pos in
    while !pos < n && is_name src.[!pos] do
      advance ()
    done;
    if !pos = start then error "expected an edge label";
    String.sub src start (!pos - start)
  in
  let rec alt () =
    let left = seq () in
    skip ();
    match peek () with
    | Some '|' ->
      advance ();
      Gql_regex.Syntax.alt left (alt ())
    | _ -> left
  and seq () =
    let rec go acc =
      skip ();
      match peek () with
      | None | Some ')' | Some '|' -> acc
      | _ -> go (Gql_regex.Syntax.seq acc (postfix ()))
    in
    go Gql_regex.Syntax.eps
  and postfix () =
    let a = atom () in
    let rec p r =
      skip ();
      match peek () with
      | Some '*' -> advance (); p (Gql_regex.Syntax.star r)
      | Some '+' -> advance (); p (Gql_regex.Syntax.plus r)
      | Some '?' -> advance (); p (Gql_regex.Syntax.opt r)
      | _ -> r
    in
    p a
  and atom () =
    skip ();
    match peek () with
    | Some '(' ->
      advance ();
      let r = alt () in
      skip ();
      (match peek () with
      | Some ')' -> advance ()
      | _ -> error "expected ')'");
      r
    | Some '.' ->
      advance ();
      (* any label: encoded as the reserved wildcard token *)
      Gql_regex.Syntax.sym "*"
    | Some c when is_name c -> Gql_regex.Syntax.sym (name ())
    | _ -> error "expected a label, '(' or '.'"
  in
  skip ();
  if !pos >= n then error "empty path expression";
  let r = alt () in
  skip ();
  if !pos <> n then error "trailing input in path expression";
  r

(** Matching of a label symbol against a data label: the reserved ["*"]
    matches anything. *)
let symbol_matches sym label = sym = "*" || sym = label

let to_string (re : string Gql_regex.Syntax.t) =
  Gql_regex.Syntax.to_string (fun s -> if s = "*" then "." else s) re
