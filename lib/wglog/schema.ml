(** WG-Log schemas.

    Unlike XML-GL, WG-Log is *schema-aware* ("the patterns are explicitly
    based on schemas"; "WG-Log is only applicable to schema based data").
    A schema is itself a graph: node types (entities and the atomic slots
    hanging off them) and edge types with the source/destination types
    they connect and ER-style multiplicities.  Rules are checked against
    the schema before evaluation — the static guarantees are what the
    paper trades schema freedom for. *)

type multiplicity = M_one_one | M_one_many | M_many_one | M_many_many

let mult_to_string = function
  | M_one_one -> "1:1"
  | M_one_many -> "1:n"
  | M_many_one -> "n:1"
  | M_many_many -> "m:n"

type edge_type = {
  et_name : string;
  et_src : string;  (** source entity type *)
  et_dst : string;  (** destination entity type, or "string"/"int"/... for slots *)
  et_mult : multiplicity;
}

type t = {
  entities : string list;
  slots : (string * string * string) list;
      (** (entity, slot name, value type) — atomic attributes *)
  edge_types : edge_type list;
}

let empty = { entities = []; slots = []; edge_types = [] }

let has_entity t name = List.mem name t.entities

let edge_type t name =
  List.find_opt (fun et -> et.et_name = name) t.edge_types

let slots_of t entity =
  List.filter_map
    (fun (e, s, ty) -> if e = entity then Some (s, ty) else None)
    t.slots

(** Edge types legal between two entity types. *)
let edges_between t ~src ~dst =
  List.filter (fun et -> et.et_src = src && et.et_dst = dst) t.edge_types

type error = string

(** Check internal consistency: every edge type connects declared
    entities; slot entities are declared. *)
let check (t : t) : error list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  List.iter
    (fun et ->
      if not (has_entity t et.et_src) then
        err "edge %s: unknown source entity %s" et.et_name et.et_src;
      if not (has_entity t et.et_dst) then
        err "edge %s: unknown destination entity %s" et.et_name et.et_dst)
    t.edge_types;
  List.iter
    (fun (e, s, _) ->
      if not (has_entity t e) then err "slot %s: unknown entity %s" s e)
    t.slots;
  List.rev !errs

(** Enforce the ER-style multiplicities: a [1:1] relation admits at most
    one outgoing edge per source and one incoming per destination; [1:n]
    constrains the destination side, [n:1] the source side. *)
let check_multiplicities (t : t) (data : Gql_data.Graph.t) : error list =
  let open Gql_data in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let count_rel edges name =
    List.length (List.filter (fun (n, _) -> n = name) edges)
  in
  List.iter
    (fun et ->
      let src_limited = et.et_mult = M_one_one || et.et_mult = M_many_one in
      let dst_limited = et.et_mult = M_one_one || et.et_mult = M_one_many in
      if src_limited || dst_limited then
        for n = 0 to Graph.n_nodes data - 1 do
          match Graph.kind data n with
          | Graph.Atom _ -> ()
          | Graph.Complex label ->
            if src_limited && label = et.et_src then begin
              let k = count_rel (Graph.rels data n) et.et_name in
              if k > 1 then
                err "%s: %d outgoing %s edges violate multiplicity %s" label k
                  et.et_name (mult_to_string et.et_mult)
            end;
            if dst_limited && label = et.et_dst then begin
              let incoming =
                List.filter
                  (fun (_, (e : Graph.edge)) ->
                    e.Graph.kind = Graph.Rel && e.Graph.name = et.et_name)
                  (Graph.inn data n)
              in
              if List.length incoming > 1 then
                err "%s: %d incoming %s edges violate multiplicity %s" label
                  (List.length incoming) et.et_name (mult_to_string et.et_mult)
            end
        done)
    t.edge_types;
  List.rev !errs

(** Validate a data graph against the schema: every complex node's label
    must be a declared entity; every Rel edge a declared edge type with
    matching endpoint types; slot edges must match declared slots;
    multiplicities must hold. *)
let validate (t : t) (data : Gql_data.Graph.t) : error list =
  let open Gql_data in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  for n = 0 to Graph.n_nodes data - 1 do
    match Graph.kind data n with
    | Graph.Atom _ -> ()
    | Graph.Complex label ->
      if not (has_entity t label) then err "undeclared entity type %s" label
      else begin
        List.iter
          (fun (dst, (e : Graph.edge)) ->
            match e.Graph.kind with
            | Graph.Rel -> (
              match edge_type t e.Graph.name with
              | None -> err "undeclared relation %s" e.Graph.name
              | Some et -> (
                if et.et_src <> label then
                  err "relation %s from %s (schema says %s)" e.Graph.name label
                    et.et_src;
                match Graph.label data dst with
                | Some dlabel when dlabel <> et.et_dst ->
                  err "relation %s to %s (schema says %s)" e.Graph.name dlabel
                    et.et_dst
                | Some _ | None -> ()))
            | Graph.Attribute -> (
              match List.assoc_opt e.Graph.name (slots_of t label) with
              | None -> err "undeclared slot %s of %s" e.Graph.name label
              | Some _ -> ())
            | Graph.Child | Graph.Ref -> ())
          (Graph.out data n)
      end
  done;
  List.rev !errs @ check_multiplicities t data

(** The restaurant schema backing the paper's WG-Log figure: Restaurants
    [offer] Menus; both have a [name] slot, menus have a [price]. *)
let restaurant_schema : t =
  {
    entities = [ "Restaurant"; "Menu"; "City"; "rest-list" ];
    slots =
      [
        ("Restaurant", "name", "string");
        ("Menu", "name", "string");
        ("Menu", "price", "float");
        ("City", "name", "string");
      ];
    edge_types =
      [
        { et_name = "offers"; et_src = "Restaurant"; et_dst = "Menu"; et_mult = M_one_many };
        { et_name = "located-in"; et_src = "Restaurant"; et_dst = "City"; et_mult = M_many_one };
        { et_name = "member"; et_src = "rest-list"; et_dst = "Restaurant"; et_mult = M_one_many };
      ];
  }

(** The schema of the million-node parallel-scaling fixtures
    ({!Gql_workload.Gen.wide_graph} / [deep_graph] / [skewed_graph]):
    hubs own items, chain heads thread cells ([next] continues
    cell-to-cell, traversed only through path edges, which are
    schema-unchecked by design), groups own members. *)
let scale_schema : t =
  {
    entities = [ "Hub"; "Item"; "Head"; "Cell"; "Group"; "Member" ];
    slots = [];
    edge_types =
      [
        { et_name = "rel"; et_src = "Hub"; et_dst = "Item"; et_mult = M_one_many };
        { et_name = "next"; et_src = "Head"; et_dst = "Cell"; et_mult = M_many_many };
        { et_name = "member"; et_src = "Group"; et_dst = "Member"; et_mult = M_one_many };
      ];
  }

(** The hyperdocument schema backing the GraphLog figures: documents
    connected by [link]/[index] edges; derived [sibling] and [root]. *)
let hyperdoc_schema : t =
  {
    entities = [ "Document" ];
    slots = [ ("Document", "title", "string") ];
    edge_types =
      [
        { et_name = "link"; et_src = "Document"; et_dst = "Document"; et_mult = M_many_many };
        { et_name = "index"; et_src = "Document"; et_dst = "Document"; et_mult = M_many_many };
        { et_name = "sibling"; et_src = "Document"; et_dst = "Document"; et_mult = M_many_many };
        { et_name = "root"; et_src = "Document"; et_dst = "Document"; et_mult = M_many_many };
      ];
  }
