(** WG-Log evaluation: embedding search plus deductive fixpoint.

    Rule semantics follow G-Log: for every embedding of the red (query)
    part in the database, the green (construction) part must exist; the
    engine *adds* the missing nodes and edges.  Construction nodes are
    Skolemised — keyed by (rule, node, bindings of the query nodes their
    instance depends on) — so re-applying a rule never duplicates, which
    both gives the deductive fixpoint its termination and implements the
    aggregation triangle: a collecting node depends on no query binding
    and is therefore created exactly once, with one [Collect] edge per
    binding.

    Programs iterate rules to fixpoint.  Two strategies, compared by
    experiment E8:
    - [`Naive]: every round matches the full graph;
    - [`Semi_naive]: from round 2 on, each rule is re-matched once per
      query edge with that edge restricted to the previous round's delta
      (edges carry a generation stamp).  Rules whose query part contains
      a regular-path edge fall back to naive matching for correctness
      (a new edge can extend a path without being the matched edge). *)

open Gql_data

type stats = {
  rounds : int;
  embeddings_found : int;
  nodes_added : int;
  edges_added : int;
}

exception Invalid_query of string
(** The program failed {!Ast.check_program} (or an ill-formed edge
    survived to compilation).  A typed error rather than
    [Invalid_argument]/[assert false] so the query service can answer
    ERROR instead of losing a worker domain. *)

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid_query s)) fmt

let check_or_raise (p : Ast.program) =
  match Ast.check_program p with
  | [] -> ()
  | errs -> invalid "%s" (String.concat "; " errs)

(* Conditions are compiled once per rule-node spec ([node_pred] below),
   not once per candidate node: a regex condition used to rebuild its
   Chre automaton for every node it tested, which dominated rules that
   fall back to full rematch each fixpoint round. *)
let compile_condition (c : Ast.condition) : Value.t -> bool =
  match c with
  | Ast.Cmp (op, rhs) ->
    fun v ->
      (let cmp = Value.compare_values v rhs in
       match op with
       | Ast.Eq -> cmp = 0
       | Ast.Neq -> cmp <> 0
       | Ast.Lt -> cmp < 0
       | Ast.Le -> cmp <= 0
       | Ast.Gt -> cmp > 0
       | Ast.Ge -> cmp >= 0)
  | Ast.Re pattern ->
    let re = Gql_regex.Chre.compile pattern in
    fun v -> Gql_regex.Chre.search re (Value.to_string v)

let condition_holds (c : Ast.condition) (v : Value.t) = compile_condition c v

(* --- query-part compilation ---------------------------------------- *)

(* A data edge "carries" a WG-Log label when its name matches; Attribute
   edges carry slot labels, Rel/Ref/Child edges carry relation labels.
   Attribute edges are excluded from regular paths (paths navigate
   structure, not slots). *)
let label_matches lbl (e : Graph.edge) = e.Graph.name = lbl

type neg_check = {
  nc_anchor : int;  (** rule node id of the bound endpoint *)
  nc_dir : [ `Out | `In ];  (** edge direction relative to the anchor *)
  nc_label : string;
  nc_spec : Ast.node;  (** what the unconstrained endpoint would match *)
}

type compiled_query = {
  pattern : (Graph.node_kind, Graph.edge) Gql_graph.Homo.pattern;
  query_ids : int array;  (** pattern position -> rule node id *)
  node_specs : Ast.node array;  (** pattern position -> rule node *)
  edge_names : string option list;
      (** aligned with [pattern.p_edges]: the WG-Log label of each
          Direct/Negated edge ([None] for regular paths) — what the
          index-backed provider partitions adjacency by *)
  has_regex : bool;
  n_pattern_edges : int;
  neg_checks : neg_check list;
      (** GraphLog negation with a free endpoint: NOT EXISTS any such
          neighbour (the crossed edge universally quantifies the
          otherwise-unconstrained node) *)
  global_negs : (string * Ast.node * Ast.node) list;
      (** both endpoints free: no matching edge anywhere in the graph *)
}

let node_pred (nd : Ast.node) : int -> Graph.node_kind -> bool =
  match nd.Ast.n_kind with
  | Ast.Entity (Some t) ->
    fun _ kind ->
      (match kind with Graph.Complex l -> l = t | Graph.Atom _ -> false)
  | Ast.Entity None ->
    fun _ kind ->
      (match kind with Graph.Complex _ -> true | Graph.Atom _ -> false)
  | Ast.Value const ->
    let conds = List.map compile_condition nd.Ast.n_cond in
    fun _ kind ->
      (match kind with
      | Graph.Atom v ->
        (match const with
        | Some c -> Value.equal_values c v
        | None -> true)
        && List.for_all (fun cond -> cond v) conds
      | Graph.Complex _ -> false)

let compile_query (r : Ast.rule) : compiled_query =
  let n = Array.length r.Ast.nodes in
  (* A query node whose only incident query edges are Negated never
     binds: the crossed edge reads "no such neighbour exists". *)
  let pos_incident = Array.make n 0 in
  let neg_incident = Array.make n 0 in
  List.iter
    (fun (e : Ast.edge) ->
      match e.e_role, e.e_mode with
      | Ast.Query, Ast.Negated ->
        neg_incident.(e.e_src) <- neg_incident.(e.e_src) + 1;
        neg_incident.(e.e_dst) <- neg_incident.(e.e_dst) + 1
      | Ast.Query, (Ast.Plain | Ast.Regex _) ->
        pos_incident.(e.e_src) <- pos_incident.(e.e_src) + 1;
        pos_incident.(e.e_dst) <- pos_incident.(e.e_dst) + 1
      | Ast.Construct, _ ->
        (* green edges to a query node anchor it *)
        if r.Ast.nodes.(e.e_src).n_role = Ast.Query then
          pos_incident.(e.e_src) <- pos_incident.(e.e_src) + 1;
        if r.Ast.nodes.(e.e_dst).n_role = Ast.Query then
          pos_incident.(e.e_dst) <- pos_incident.(e.e_dst) + 1
      | Ast.Query, Ast.Collect -> ())
    r.Ast.edges;
  let free_neg qid =
    r.Ast.nodes.(qid).n_role = Ast.Query
    && neg_incident.(qid) > 0 && pos_incident.(qid) = 0
  in
  let qids = List.filter (fun q -> not (free_neg q)) (Ast.query_nodes r) in
  let query_ids = Array.of_list qids in
  let pos_of = Hashtbl.create 8 in
  Array.iteri (fun pos qid -> Hashtbl.replace pos_of qid pos) query_ids;
  let p_nodes = Array.map (fun qid -> node_pred r.Ast.nodes.(qid)) query_ids in
  let has_regex = ref false in
  let neg_checks = ref [] in
  let global_negs = ref [] in
  let names = ref [] in
  let p_edges =
    List.filter_map
      (fun (e : Ast.edge) ->
        if e.e_role <> Ast.Query then None
        else
          match e.e_mode with
          | Ast.Negated when free_neg e.e_src && free_neg e.e_dst ->
            global_negs :=
              (e.e_label, r.Ast.nodes.(e.e_src), r.Ast.nodes.(e.e_dst))
              :: !global_negs;
            None
          | Ast.Negated when free_neg e.e_src ->
            neg_checks :=
              { nc_anchor = e.e_dst; nc_dir = `In; nc_label = e.e_label;
                nc_spec = r.Ast.nodes.(e.e_src) }
              :: !neg_checks;
            None
          | Ast.Negated when free_neg e.e_dst ->
            neg_checks :=
              { nc_anchor = e.e_src; nc_dir = `Out; nc_label = e.e_label;
                nc_spec = r.Ast.nodes.(e.e_dst) }
              :: !neg_checks;
            None
          | _ ->
            let src = Hashtbl.find pos_of e.e_src
            and dst = Hashtbl.find pos_of e.e_dst in
            let c =
              match e.e_mode with
              | Ast.Plain ->
                names := Some e.e_label :: !names;
                Gql_graph.Homo.Direct (label_matches e.e_label)
              | Ast.Negated ->
                names := Some e.e_label :: !names;
                Gql_graph.Homo.Negated (label_matches e.e_label)
              | Ast.Regex re ->
                has_regex := true;
                names := None :: !names;
                Gql_graph.Homo.Path
                  (* classified: on a frozen snapshot the index resolves
                     each leaf against the relational (non-attribute)
                     edge plane, so hops are integer compares *)
                  (Gql_graph.Regpath.compile_classified
                     ~plane_hint:Index.plane_rel
                     ~classify:(fun lbl ->
                       if lbl = "*" then Gql_graph.Regpath.Lany
                       else Gql_graph.Regpath.Lname lbl)
                     (fun lbl (de : Graph.edge) ->
                       de.Graph.kind <> Graph.Attribute
                       && (lbl = "*" || de.Graph.name = lbl))
                     re)
              | Ast.Collect ->
                (* reachable when an unchecked rule carries a query-role
                   collect edge (e.g. goal evaluation of a hand-built
                   AST); check_rule flags it, so refuse loudly here too *)
                invalid "collect edge %d->%d must be green" e.e_src e.e_dst
            in
            Some (src, c, dst))
      r.Ast.edges
  in
  {
    pattern = { Gql_graph.Homo.p_nodes; p_edges };
    query_ids;
    node_specs = Array.map (fun qid -> r.Ast.nodes.(qid)) query_ids;
    edge_names = List.rev !names;
    has_regex = !has_regex;
    n_pattern_edges = List.length p_edges;
    neg_checks = List.rev !neg_checks;
    global_negs = List.rev !global_negs;
  }

(** Index-backed candidates and navigation for a compiled query.

    Candidates: typed entity circles hit the label index, constant value
    rectangles the (normalised) value index; untyped circles and free
    rectangles still restrict the scan to the right node class.  Every
    list is a sorted superset — the matcher re-applies the node
    predicate, so conditions on rectangles stay sound.

    Navigation: a labelled Direct/Negated edge checks only the edge
    name ([label_matches]), which is exactly what [Index.nav_name]
    partitions by, so its links test is exact; regular paths run over
    the frozen CSR view. *)
let provider (idx : Index.t) (cq : compiled_query) :
    (Graph.node_kind, Graph.edge) Gql_graph.Homo.provider =
  let candidates p =
    let nd = cq.node_specs.(p) in
    match nd.Ast.n_kind with
    | Ast.Entity (Some t) -> Some (Index.complex_with_label idx t)
    | Ast.Entity None -> Some (Index.all_complex idx)
    | Ast.Value (Some c) -> Some (Index.atoms_equal idx c)
    | Ast.Value None -> Some (Index.all_atoms idx)
  in
  let navs =
    Array.of_list
      (List.map2
         (fun (_, c, _) name ->
           match c, name with
           | (Gql_graph.Homo.Direct _ | Gql_graph.Homo.Negated _), Some nm ->
             Some (Index.nav_name idx nm)
           | Gql_graph.Homo.Path rp, _ -> Some (Index.nav_path idx rp)
           | _, _ -> None)
         cq.pattern.Gql_graph.Homo.p_edges cq.edge_names)
  in
  Index.provider ~navs idx ~candidates

(* Entity predicates specialised to a specific index snapshot: "is this
   node labelled t?" becomes one integer compare against the snapshot's
   interned label plane.  Value rectangles keep their precompiled
   generic predicate (conditions were compiled once in [compile_query];
   respecialising would re-build Chre automata per call).  Only valid
   while [idx] matches [data] — exactly the contract [query_embeddings]
   already has for its [?index] argument. *)
let specialised_pattern (idx : Index.t) (cq : compiled_query) :
    (Graph.node_kind, Graph.edge) Gql_graph.Homo.pattern =
  let p_nodes =
    Array.mapi
      (fun p (nd : Ast.node) ->
        match nd.Ast.n_kind with
        | Ast.Entity (Some t) ->
          let sym = Index.label_sym idx t in
          fun dn (_ : Graph.node_kind) -> sym >= 0 && Index.node_sym idx dn = sym
        | Ast.Entity None ->
          fun dn (_ : Graph.node_kind) -> Index.node_sym idx dn >= 0
        | Ast.Value _ -> cq.pattern.Gql_graph.Homo.p_nodes.(p))
      cq.node_specs
  in
  { cq.pattern with Gql_graph.Homo.p_nodes }

let global_negs_ok ?index (data : Graph.t) (cq : compiled_query) =
  List.for_all
    (fun (label, src_spec, dst_spec) ->
      let sp = node_pred src_spec and dp = node_pred dst_spec in
      match index with
      | Some idx ->
        (* one bucket probe instead of an all-edges sweep *)
        not
          (Array.exists
             (fun (src, dst) ->
               sp src (Graph.kind data src) && dp dst (Graph.kind data dst))
             (Index.edges_named idx label))
      | None ->
        let found = ref false in
        Gql_graph.Digraph.iter_edges
          (fun ~src ~dst (e : Graph.edge) ->
            if
              (not !found)
              && label_matches label e
              && sp src (Graph.kind data src)
              && dp dst (Graph.kind data dst)
            then found := true)
          (Graph.digraph data);
        not !found)
    cq.global_negs

let neg_checks_ok ?index (data : Graph.t) (cq : compiled_query)
    (full : int array) =
  List.for_all
    (fun nc ->
      let anchor = full.(nc.nc_anchor) in
      anchor < 0
      ||
      let spec = node_pred nc.nc_spec in
      let hit m = spec m (Graph.kind data m) in
      (match index with
      | Some idx ->
        let set =
          match nc.nc_dir with
          | `Out -> Index.out_named idx anchor nc.nc_label
          | `In -> Index.in_named idx anchor nc.nc_label
        in
        not (Gql_graph.Iset.fold (fun acc m -> acc || hit m) false set)
      | None ->
        not
          (List.exists
             (fun (m, (e : Graph.edge)) -> label_matches nc.nc_label e && hit m)
             (match nc.nc_dir with
             | `Out -> Graph.out data anchor
             | `In -> Graph.inn data anchor))))
    cq.neg_checks

(** Embeddings of the query part; each result maps rule node id -> data
    node (non-query nodes map to -1).  [domains] parallelises the
    embedding search (byte-identical enumeration, see {!Gql_graph.Par});
    the negation post-filters run sequentially on the calling domain. *)
let query_embeddings ?(pre_bound = []) ?index ?domains (data : Graph.t)
    (r : Ast.rule) (cq : compiled_query) : int array list =
  let n = Array.length r.Ast.nodes in
  if not (global_negs_ok ?index data cq) then []
  else begin
  let out = ref [] in
  let prov = Option.map (fun idx -> provider idx cq) index in
  let pattern =
    (* the same embeddings, but entity tests become integer compares
       against the snapshot's interned labels *)
    match index with
    | Some idx -> specialised_pattern idx cq
    | None -> cq.pattern
  in
  Gql_graph.Homo.iter_embeddings ~pre_bound ?provider:prov ?domains pattern
    (Graph.digraph data) ~emit:(fun emb ->
      let full = Array.make n (-1) in
      Array.iteri (fun pos qid -> full.(qid) <- emb.(pos)) cq.query_ids;
      if neg_checks_ok ?index data cq full then out := full :: !out);
  List.rev !out
  end

(* --- construction --------------------------------------------------- *)

(* The Skolem key of a construction node: bindings of the query nodes its
   instance depends on — query nodes reachable from it through green
   non-Collect edges (in either direction), hopping over other green
   nodes. *)
let determinants (r : Ast.rule) (cnode : int) : int list =
  let n = Array.length r.Ast.nodes in
  let adj = Array.make n [] in
  List.iter
    (fun (e : Ast.edge) ->
      if e.e_role = Ast.Construct && e.e_mode <> Ast.Collect then begin
        adj.(e.e_src) <- e.e_dst :: adj.(e.e_src);
        adj.(e.e_dst) <- e.e_src :: adj.(e.e_dst)
      end)
    r.Ast.edges;
  let seen = Array.make n false in
  let dets = ref [] in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      if r.Ast.nodes.(i).n_role = Ast.Query then dets := i :: !dets
      else List.iter go adj.(i)
    end
  in
  go cnode;
  List.sort compare !dets

type skolem_table = (int * int * int list, int) Hashtbl.t
(** (rule index, construction node, determinant bindings) -> data node *)

let rel_edge_exists data ~src ~dst ~label =
  List.exists
    (fun (d, (e : Graph.edge)) ->
      d = dst && e.Graph.name = label && e.Graph.kind <> Graph.Attribute)
    (Graph.out data src)

let slot_edge_exists data ~src ~dst ~label =
  List.exists
    (fun (d, (e : Graph.edge)) ->
      d = dst && e.Graph.name = label && e.Graph.kind = Graph.Attribute)
    (Graph.out data src)

(* G-Log semantics: the green part must EXIST for every red embedding;
   creation is only the repair action.  This check attempts to satisfy
   the construction nodes with existing graph nodes (anchored search —
   candidates come from edges whose other endpoint is already resolved),
   making rule application idempotent across runs. *)
let green_part_exists (data : Graph.t) (r : Ast.rule) (emb : int array) : bool =
  let cnodes = Ast.construct_nodes r in
  if cnodes = [] then
    (* edge-only green part: existence = all green edges already there *)
    List.for_all
      (fun (e : Ast.edge) ->
        e.e_role <> Ast.Construct
        ||
        let src = emb.(e.e_src) and dst = emb.(e.e_dst) in
        let is_slot =
          match r.Ast.nodes.(e.e_dst).n_kind with
          | Ast.Value _ -> true
          | Ast.Entity _ -> false
        in
        if is_slot then slot_edge_exists data ~src ~dst ~label:e.e_label
        else rel_edge_exists data ~src ~dst ~label:e.e_label)
      r.Ast.edges
  else begin
    let green_edges =
      List.filter (fun (e : Ast.edge) -> e.e_role = Ast.Construct) r.Ast.edges
    in
    let assign = Hashtbl.create 4 in
    let resolve i =
      if r.Ast.nodes.(i).n_role = Ast.Query then Some emb.(i)
      else Hashtbl.find_opt assign i
    in
    let edge_ok (e : Ast.edge) =
      match resolve e.e_src, resolve e.e_dst with
      | Some src, Some dst ->
        let is_slot =
          match r.Ast.nodes.(e.e_dst).n_kind with
          | Ast.Value _ -> true
          | Ast.Entity _ -> false
        in
        if is_slot then slot_edge_exists data ~src ~dst ~label:e.e_label
        else rel_edge_exists data ~src ~dst ~label:e.e_label
      | _ -> true (* endpoint not yet assigned; checked later *)
    in
    let candidates c =
      (* neighbours of a resolved endpoint along some green edge of c *)
      List.fold_left
        (fun acc (e : Ast.edge) ->
          match acc with
          | Some _ -> acc
          | None ->
            if e.e_src = c then
              match resolve e.e_dst with
              | Some d ->
                Some
                  (List.filter_map
                     (fun (s, (de : Graph.edge)) ->
                       if de.Graph.name = e.e_label then Some s else None)
                     (Graph.inn data d))
              | None -> None
            else if e.e_dst = c then
              match resolve e.e_src with
              | Some s ->
                Some
                  (List.filter_map
                     (fun (d, (de : Graph.edge)) ->
                       if de.Graph.name = e.e_label then Some d else None)
                     (Graph.out data s))
              | None -> None
            else None)
        None green_edges
    in
    let rec solve pending =
      match pending with
      | [] -> List.for_all edge_ok green_edges
      | _ -> (
        (* pick an anchored pending node *)
        let anchored =
          List.find_opt (fun c -> candidates c <> None) pending
        in
        match anchored with
        | None -> false (* floating construction node: cannot verify *)
        | Some c ->
          let rest = List.filter (fun x -> x <> c) pending in
          let spec = node_pred r.Ast.nodes.(c) in
          let cands = Option.value (candidates c) ~default:[] in
          List.exists
            (fun cand ->
              if spec cand (Graph.kind data cand) then begin
                Hashtbl.replace assign c cand;
                let ok = List.for_all edge_ok green_edges && solve rest in
                if not ok then Hashtbl.remove assign c;
                ok
              end
              else false)
            (List.sort_uniq compare cands))
    in
    solve cnodes
  end

(** Apply the construction part for one embedding.  Returns the number of
    (nodes, edges) added. *)
let apply_construction (data : Graph.t) (skolems : skolem_table)
    ~(rule_idx : int) ~(gen : int) (r : Ast.rule) (emb : int array) :
    int * int =
  let nodes_added = ref 0 and edges_added = ref 0 in
  let dets = Hashtbl.create 4 in
  let det_of c =
    match Hashtbl.find_opt dets c with
    | Some d -> d
    | None ->
      let d = determinants r c in
      Hashtbl.replace dets c d;
      d
  in
  (* Resolve a rule node to a data node under this embedding, creating
     Skolemised instances for construction nodes. *)
  let resolve i =
    if r.Ast.nodes.(i).n_role = Ast.Query then emb.(i)
    else begin
      let key = (rule_idx, i, List.map (fun q -> emb.(q)) (det_of i)) in
      match Hashtbl.find_opt skolems key with
      | Some dn -> dn
      | None ->
        let dn =
          match r.Ast.nodes.(i).n_kind with
          | Ast.Entity (Some t) -> Graph.add_complex data t
          | Ast.Entity None -> Graph.add_complex data "entity"
          | Ast.Value (Some v) -> Graph.add_atom data v
          | Ast.Value None -> Graph.add_atom data (Value.string "")
        in
        incr nodes_added;
        Hashtbl.replace skolems key dn;
        dn
    end
  in
  List.iter
    (fun (e : Ast.edge) ->
      if e.e_role = Ast.Construct then begin
        let src = resolve e.e_src and dst = resolve e.e_dst in
        let is_slot =
          match r.Ast.nodes.(e.e_dst).n_kind with
          | Ast.Value _ -> true
          | Ast.Entity _ -> false
        in
        let exists =
          if is_slot then
            List.exists
              (fun (d, (de : Graph.edge)) ->
                d = dst && de.Graph.name = e.e_label
                && de.Graph.kind = Graph.Attribute)
              (Graph.out data src)
          else rel_edge_exists data ~src ~dst ~label:e.e_label
        in
        if not exists then begin
          let edge =
            if is_slot then Graph.attr_edge e.e_label
            else Graph.rel_edge ~gen e.e_label
          in
          Graph.link data ~src ~dst edge;
          incr edges_added
        end
      end)
    r.Ast.edges;
  (!nodes_added, !edges_added)

(* --- construction footprint ------------------------------------------ *)

(* Which rules can reuse a pre-loop index across fixpoint rounds?  The
   unseeded fallback (regex-path rules, rules with no pattern edge)
   rebuilt the index every round, which made E5's `root` query pay a
   full O(graph) rebuild per round.  An index built before the loop
   stays *exact* for a rule as long as nothing the program constructs
   can be visible to that rule's query part: the program adds no nodes,
   and the labels of the edges it may add are disjoint from every label
   the query consults (positive, negated, free-negation and regex-path
   alike — a `*` wildcard consults every relation label). *)

module Labels = Set.Make (String)

let regex_symbols (re : string Gql_regex.Syntax.t) : string list =
  let rec go acc = function
    | Gql_regex.Syntax.Empty | Gql_regex.Syntax.Eps -> acc
    | Gql_regex.Syntax.Sym s -> s :: acc
    | Gql_regex.Syntax.Seq (a, b) | Gql_regex.Syntax.Alt (a, b) ->
      go (go acc a) b
    | Gql_regex.Syntax.Star a | Gql_regex.Syntax.Plus a
    | Gql_regex.Syntax.Opt a ->
      go acc a
  in
  go [] re

(* (can add nodes, labels of edges the construction parts may add) *)
let construction_footprint (p : Ast.program) : bool * Labels.t =
  List.fold_left
    (fun (nodes, labels) (r : Ast.rule) ->
      let nodes = nodes || Ast.construct_nodes r <> [] in
      let labels =
        List.fold_left
          (fun acc (e : Ast.edge) ->
            if e.Ast.e_role = Ast.Construct then Labels.add e.Ast.e_label acc
            else acc)
          labels r.Ast.edges
      in
      (nodes, labels))
    (false, Labels.empty) p.Ast.rules

(* Edge labels one rule's query part examines; [`Any] if a regex path
   contains the `*` wildcard. *)
let query_footprint (r : Ast.rule) : [ `Any | `Labels of Labels.t ] =
  let exception Wildcard in
  try
    `Labels
      (List.fold_left
         (fun acc (e : Ast.edge) ->
           if e.Ast.e_role <> Ast.Query then acc
           else
             match e.Ast.e_mode with
             | Ast.Plain | Ast.Negated -> Labels.add e.Ast.e_label acc
             | Ast.Collect -> acc
             | Ast.Regex re ->
               List.fold_left
                 (fun acc s ->
                   if s = "*" then raise Wildcard else Labels.add s acc)
                 acc (regex_symbols re))
         Labels.empty r.Ast.edges)
  with Wildcard -> `Any

let stale_index_ok ~adds_nodes ~added_labels (r : Ast.rule) : bool =
  (not adds_nodes)
  &&
  match query_footprint r with
  | `Any -> Labels.is_empty added_labels
  | `Labels consulted -> Labels.is_empty (Labels.inter consulted added_labels)

(* --- fixpoint -------------------------------------------------------- *)

(* Semi-naive: for every positive Direct pattern edge, enumerate the data
   edges added in the previous round, pin the pattern edge's endpoints to
   that instance, and complete the embedding around it.  With seeded
   search the per-round cost tracks the delta instead of the database.

   One pass over the data edges serves every pattern edge at once (the
   old per-pattern-edge sweep paid O(pattern edges * data edges) per
   round); per-pattern-edge accumulators keep the seed order identical
   to the per-edge sweeps, so downstream Skolem node numbering — and
   therefore every constructed graph — is unchanged. *)
let delta_seeds (data : Graph.t) (cq : compiled_query) ~(last_gen : int) :
    (int * int) list list =
  let pats =
    List.filter_map
      (fun (src, c, dst) ->
        match c with
        | Gql_graph.Homo.Direct p -> Some (src, p, dst)
        | Gql_graph.Homo.Path _ | Gql_graph.Homo.Negated _ -> None)
      cq.pattern.Gql_graph.Homo.p_edges
  in
  match pats with
  | [] -> []
  | pats ->
    let pats = Array.of_list pats in
    let acc = Array.make (Array.length pats) [] in
    Gql_graph.Digraph.iter_edges
      (fun ~src:u ~dst:v (e : Graph.edge) ->
        if e.Graph.gen = last_gen then
          Array.iteri
            (fun i (src, p, dst) ->
              if p e then acc.(i) <- [ (src, u); (dst, v) ] :: acc.(i))
            pats)
      (Graph.digraph data);
    List.concat_map (fun seeds -> seeds) (Array.to_list acc)

(** Run a program to fixpoint.  Mutates [data]; returns statistics.

    [use_index] (default on) freezes an index for the *unseeded*
    matching rounds (round 1, naive strategy, regex rules); seeded
    delta completion already tracks the delta and would pay a rebuild
    per round for nothing.  The {!Index.cache} makes consecutive rules
    in a round share one build, and rules whose query footprint is
    disjoint from everything the program can construct
    ({!stale_index_ok}) keep reusing the pre-loop index instead of
    rebuilding it every round.

    [domains] parallelises the matching side of each round — the
    unseeded searches and the completion of the previous round's delta
    seeds.  Graph mutation ([apply_construction]), Skolem-table updates
    and the per-rule dedup stay strictly sequential on the calling
    domain, so generation stamps and fixpoint results are identical to
    a sequential run. *)
let run ?(strategy = `Semi_naive) ?(use_index = true) ?(max_rounds = 1000)
    ?domains (data : Graph.t) (p : Ast.program) : stats =
  check_or_raise p;
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Gql_graph.Par.default_domains ()
  in
  let compiled = List.map (fun r -> (r, compile_query r)) p.Ast.rules in
  let adds_nodes, added_labels = construction_footprint p in
  let stale_ok =
    List.map (fun (r, _) -> stale_index_ok ~adds_nodes ~added_labels r) compiled
  in
  let skolems : skolem_table = Hashtbl.create 64 in
  let icache = Index.cache () in
  let base_index =
    (* fresh at round 1; still exact in later rounds for stale-ok rules *)
    if use_index then Some (Index.refresh icache data) else None
  in
  let total_emb = ref 0 and total_nodes = ref 0 and total_edges = ref 0 in
  let round = ref 0 in
  let continue_ = ref true in
  while !continue_ && !round < max_rounds do
    incr round;
    let gen = !round in
    let added_this_round = ref 0 in
    List.iteri
      (fun rule_idx ((r, cq), stale_ok) ->
        let embeddings =
          if !round = 1 || strategy = `Naive || cq.has_regex
             || cq.n_pattern_edges = 0
          then
            let index =
              if not use_index then None
              else if !round = 1 || stale_ok then base_index
              else Some (Index.refresh icache data)
            in
            query_embeddings ?index ~domains data r cq
          else begin
            (* Semi-naive: union of delta-seeded matches.  Seeds are
               completed in parallel (pure reads); the dedup below runs
               sequentially over the per-seed lists in seed order, so
               the union is the one a sequential run produces. *)
            let seeds = delta_seeds data cq ~last_gen:(gen - 1) in
            let matched =
              (* work estimate: each seed completes an embedding around
                 one pinned edge — pattern-sized backtracking, not a
                 whole-graph match — so charge a small constant per
                 pattern element per seed *)
              let cost =
                List.length seeds
                * (Array.length cq.pattern.Gql_graph.Homo.p_nodes
                  + cq.n_pattern_edges)
                * 4
              in
              Gql_graph.Par.concat_map_chunks ~cost ~domains
                (fun pre_bound -> query_embeddings ~pre_bound data r cq)
                seeds
            in
            let seen = Hashtbl.create 64 in
            List.filter
              (fun emb ->
                if Hashtbl.mem seen emb then false
                else begin
                  Hashtbl.replace seen emb ();
                  true
                end)
              matched
          end
        in
        total_emb := !total_emb + List.length embeddings;
        List.iter
          (fun emb ->
            if not (green_part_exists data r emb) then begin
              let nn, ne =
                apply_construction data skolems ~rule_idx ~gen r emb
              in
              total_nodes := !total_nodes + nn;
              total_edges := !total_edges + ne;
              added_this_round := !added_this_round + nn + ne
            end)
          embeddings)
      (List.combine compiled stale_ok);
    if !added_this_round = 0 then continue_ := false
  done;
  {
    rounds = !round;
    embeddings_found = !total_emb;
    nodes_added = !total_nodes;
    edges_added = !total_edges;
  }

(** Evaluate a goal (pure query rule): return its embeddings without
    touching the database.  Ill-formed rules raise {!Invalid_query}. *)
let goal ?index ?domains (data : Graph.t) (r : Ast.rule) : int array list =
  (match Ast.check_rule r with
  | [] -> ()
  | errs -> invalid "%s" (String.concat "; " errs));
  let cq = compile_query r in
  query_embeddings ?index ?domains data r cq
