(** The semi-structured data graph (OEM-style).

    This is the model both query languages evaluate over.  A node is
    either a *complex* object carrying a label (element name / entity
    type) or an *atom* carrying a value; edges carry a name, an edge kind
    and an optional position:

    - [Child]: XML containment; [ord] records document order so XML-GL's
      "ordered content" tick can be honoured;
    - [Attribute]: XML attributes (the paper draws them as filled
      circles);
    - [Ref]: a resolved ID/IDREF link — these are what make the data a
      graph rather than a tree;
    - [Rel]: a named relation edge for WG-Log-style entity databases
      (e.g. [offers] between [Restaurant] and [Menu]). *)

type node_kind =
  | Complex of string
  | Atom of Value.t

type edge_kind = Child | Attribute | Ref | Rel

type edge = {
  name : string;
  kind : edge_kind;
  ord : int option;
  gen : int;
      (** derivation generation: 0 for base facts, n for edges added by
          the n-th round of a WG-Log fixpoint — what makes semi-naive
          evaluation possible *)
}

type digraph = (node_kind, edge) Gql_graph.Digraph.t

(** The mutable adjacency representation is held behind a one-shot lazy
    cell so a snapshot loaded from disk ({!Gql_data.Store}) can serve
    indexed queries off its CSR planes without ever paying the cons-list
    rebuild; the {!Digraph} materialises only when an engine actually
    walks it (scan routes, WG-Log forks, dot rendering).  Graphs built
    in memory start with the cell already filled, so nothing changes for
    them. *)
type t = {
  cell : digraph option Atomic.t;
  thaw : unit -> digraph;  (** called at most once, under [thaw_lock] *)
  hint_nodes : int;  (** counts while unforced — keeps [Index.refresh]'s *)
  hint_edges : int;  (** version check from forcing the thaw *)
  mutable roots : Gql_graph.Digraph.node list;
}

type node = Gql_graph.Digraph.node

let dummy_kind = Complex ""
let thaw_lock = Mutex.create ()
let no_thaw () : digraph = assert false (* cell starts filled *)

(** The underlying mutable graph, thawing it on first use.  The slow
    path runs under a global lock so concurrent server domains force a
    loaded snapshot exactly once. *)
let digraph t : digraph =
  match Atomic.get t.cell with
  | Some g -> g
  | None ->
    Mutex.protect thaw_lock (fun () ->
        match Atomic.get t.cell with
        | Some g -> g
        | None ->
          let g = t.thaw () in
          Atomic.set t.cell (Some g);
          g)

let forced t = Option.is_some (Atomic.get t.cell)

let of_digraph g roots : t =
  { cell = Atomic.make (Some g); thaw = no_thaw; hint_nodes = 0;
    hint_edges = 0; roots }

let create () : t = of_digraph (Gql_graph.Digraph.create ~dummy:dummy_kind) []

(** A graph whose adjacency thaws on demand.  [n_nodes]/[n_edges] must
    equal the counts of the graph [thaw] will produce: they are answered
    from the hints while the cell is empty. *)
let of_thaw ~n_nodes ~n_edges ~roots thaw : t =
  { cell = Atomic.make None; thaw; hint_nodes = n_nodes;
    hint_edges = n_edges; roots }

(** An independent copy of the data graph; forked snapshots let the
    deductive WG-Log evaluator saturate a private graph while the
    original stays frozen (the server's per-request semantics). *)
let copy t : t = of_digraph (Gql_graph.Digraph.copy (digraph t)) t.roots

let add_complex t label = Gql_graph.Digraph.add_node (digraph t) (Complex label)
let add_atom t v = Gql_graph.Digraph.add_node (digraph t) (Atom v)
let add_root t n = t.roots <- t.roots @ [ n ]

let child_edge ?ord name = { name; kind = Child; ord; gen = 0 }
let attr_edge name = { name; kind = Attribute; ord = None; gen = 0 }
let ref_edge name = { name; kind = Ref; ord = None; gen = 0 }
let rel_edge ?(gen = 0) name = { name; kind = Rel; ord = None; gen }

let link t ~src ~dst e = Gql_graph.Digraph.add_edge (digraph t) ~src ~dst e

let kind t n = Gql_graph.Digraph.payload (digraph t) n

let label t n =
  match kind t n with
  | Complex l -> Some l
  | Atom _ -> None

let atom_value t n =
  match kind t n with
  | Atom v -> Some v
  | Complex _ -> None

let is_atom t n = match kind t n with Atom _ -> true | Complex _ -> false

let out t n = Gql_graph.Digraph.succ (digraph t) n
let inn t n = Gql_graph.Digraph.pred (digraph t) n

(* Counts come from the hints while unforced: [Index.refresh] compares
   them against the index version on every query, and that check must
   not thaw a freshly loaded snapshot. *)
let n_nodes t =
  match Atomic.get t.cell with
  | Some g -> Gql_graph.Digraph.n_nodes g
  | None -> t.hint_nodes

let n_edges t =
  match Atomic.get t.cell with
  | Some g -> Gql_graph.Digraph.n_edges g
  | None -> t.hint_edges

let roots t = t.roots

(** Children in stored order: [Child] edges sorted by [ord]. *)
let children t n =
  out t n
  |> List.filter_map (fun (dst, e) ->
         match e.kind with
         | Child -> Some (e.ord, dst, e)
         | Attribute | Ref | Rel -> None)
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (_, dst, e) -> (dst, e))

let attributes t n =
  out t n
  |> List.filter_map (fun (dst, e) ->
         match e.kind, atom_value t dst with
         | Attribute, Some v -> Some (e.name, v)
         | (Attribute | Child | Ref | Rel), _ -> None)
  |> List.sort compare

let refs t n =
  List.filter_map
    (fun (dst, e) -> match e.kind with Ref -> Some (e.name, dst) | _ -> None)
    (out t n)

let rels t n =
  List.filter_map
    (fun (dst, e) -> match e.kind with Rel -> Some (e.name, dst) | _ -> None)
    (out t n)

(** The string-value of a node: its atom, or the concatenation of the
    string-values of its children in order (XPath-style). *)
let rec string_value t n =
  match kind t n with
  | Atom v -> Value.to_string v
  | Complex _ ->
    String.concat "" (List.map (fun (c, _) -> string_value t c) (children t n))

(** Typed value of a node: atoms as themselves, complex nodes by their
    string-value with inference. *)
let node_value t n =
  match kind t n with
  | Atom v -> v
  | Complex _ -> Value.of_string (string_value t n)

(** All nodes with a given label. *)
let nodes_labelled t lbl =
  Gql_graph.Digraph.find_nodes (digraph t) (function
    | Complex l -> l = lbl
    | Atom _ -> false)

(** Nodes reachable from [n] via Child/Ref/Rel edges (descendants in the
    graph sense), excluding [n]. *)
let descendants t n =
  let order =
    Gql_graph.Algo.bfs
      ~follow:(fun e -> e.kind <> Attribute)
      (digraph t) [ n ]
  in
  List.filter (fun m -> m <> n) order

let pp_node t n =
  match kind t n with
  | Complex l -> Printf.sprintf "%s#%d" l n
  | Atom v -> Printf.sprintf "%S#%d" (Value.to_string v) n

let pp_edge e =
  let k =
    match e.kind with
    | Child -> "child"
    | Attribute -> "attr"
    | Ref -> "ref"
    | Rel -> "rel"
  in
  match e.name, e.ord with
  | "", Some i -> Printf.sprintf "%s[%d]" k i
  | "", None -> k
  | n, Some i -> Printf.sprintf "%s:%s[%d]" k n i
  | n, None -> Printf.sprintf "%s:%s" k n

let to_dot t =
  Gql_graph.Dot.to_string
    ~node_label:(fun n k ->
      match k with
      | Complex l -> Printf.sprintf "%s (%d)" l n
      | Atom v -> Value.to_string v)
    ~node_attrs:(fun _ k ->
      match k with
      | Complex _ -> [ ("shape", "box") ]
      | Atom _ -> [ ("shape", "ellipse") ])
    ~edge_label:pp_edge (digraph t)
