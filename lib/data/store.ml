(** Persistent snapshot store: one page-aligned, sectioned, checksummed
    file holding a frozen {!Index}'s flat planes — CSR offsets and
    neighbour/label arrays, the node-symbol plane, the {!Symtab} string
    table, and every per-sym {!Gql_graph.Iset} posting pool — so a
    [gql serve] restart loads a snapshot by mapping and blitting arrays
    instead of re-parsing, re-freezing and re-indexing.

    Layout: a 4 KiB header page (magic, format version, word-layout tag,
    section table with per-section checksums, whole-header checksum)
    followed by ~50 page-aligned sections.  Elements are native OCaml
    ints stored as 8-byte words, IEEE float64 words, or raw bytes; every
    section is checksummed with the same word-mix on save and verified
    on load, and all structural invariants (monotone offsets, sorted
    keys, in-range ids) are re-validated before anything is trusted, so
    a corrupt, truncated or wrong-version file answers a typed
    {!Invalid_snapshot} — never a crash or a silent wrong answer.

    Loading is zero-copy where the representation allows and one blit
    per section where [int array] is load-bearing (Iset/CSR interop —
    the bench's E17 records both the map+verify and the materialise
    cost).  Hot planes (CSR, adjacency postings, label postings) are
    blitted eagerly; cold lanes stay on disk behind captured Bigarray
    views and materialise on first demand: the value table and the
    per-name edge-pair table become [V_lazy]/[E_lazy] cells in the
    index, the mutable {!Digraph} thaws behind {!Graph.of_thaw}, and
    the regular-path planes/specs/memo rebuild on demand exactly as a
    fresh build's would. *)

module Iset = Gql_graph.Iset

exception
  Invalid_snapshot of {
    path : string;
    section : string;
    offset : int;  (** byte offset of the offending section / field *)
    reason : string;
  }

let describe = function
  | Invalid_snapshot { path; section; offset; reason } ->
    Printf.sprintf "invalid snapshot %s (section %s, offset %d): %s" path
      section offset reason
  | e -> Printexc.to_string e

let () =
  Printexc.register_printer (function
    | Invalid_snapshot _ as e -> Some (describe e)
    | _ -> None)

let err ~path ~section ~offset fmt =
  Printf.ksprintf
    (fun reason -> raise (Invalid_snapshot { path; section; offset; reason }))
    fmt

(* --- format constants -------------------------------------------------- *)

let page = 4096
let magic = "GQLSNAP1"
let format_version = 1

(* Written through the word (Bigarray int) view and compared on load:
   catches endianness / word-layout mismatches between writer and
   reader, since the header proper is parsed as explicit little-endian
   bytes. *)
let word_tag = 0x6751_5357

type skind = KW  (** native-int words *) | KF  (** float64 *) | KB  (** bytes *)

(* Section ids as they appear in the header table. *)
let s_meta = 1
let s_roots = 2
let s_sym_off = 3
let s_sym_blob = 4
let s_node_sym = 5
let s_out_off = 6
let s_out_dst = 7
let s_out_erec = 8
let s_in_off = 9
let s_in_src = 10
let s_in_erec = 11
let s_erec_name = 12
let s_erec_kind = 13
let s_erec_ord = 14
let s_erec_gen = 15
let s_atom_tag = 16
let s_atom_aux = 17
let s_atom_flt = 18
let s_astr_off = 19
let s_astr_blob = 20
let s_lbl_keys = 21
let s_lbl_off = 22
let s_lbl_pool = 23
let s_adjo_keys = 24
let s_adjo_off = 25
let s_adjo_pool = 26
let s_adji_keys = 27
let s_adji_off = 28
let s_adji_pool = 29
let s_attr_keys = 30
let s_attr_off = 31
let s_attr_pool = 32
let s_childo_off = 33
let s_childo_pool = 34
let s_childi_off = 35
let s_childi_pool = 36
let s_refo_off = 37
let s_refo_pool = 38
let s_refi_off = 39
let s_refi_pool = 40
let s_valn_keys = 41
let s_valn_off = 42
let s_valn_pool = 43
let s_vals_koff = 44
let s_vals_kblob = 45
let s_vals_off = 46
let s_vals_pool = 47
let s_edgn_keys = 48
let s_edgn_off = 49
let s_edgn_pool = 50

let section_specs : (int * string * skind) array =
  [|
    (s_meta, "meta", KW);
    (s_roots, "roots", KW);
    (s_sym_off, "sym_off", KW);
    (s_sym_blob, "sym_blob", KB);
    (s_node_sym, "node_sym", KW);
    (s_out_off, "out_off", KW);
    (s_out_dst, "out_dst", KW);
    (s_out_erec, "out_erec", KW);
    (s_in_off, "in_off", KW);
    (s_in_src, "in_src", KW);
    (s_in_erec, "in_erec", KW);
    (s_erec_name, "erec_name", KW);
    (s_erec_kind, "erec_kind", KW);
    (s_erec_ord, "erec_ord", KW);
    (s_erec_gen, "erec_gen", KW);
    (s_atom_tag, "atom_tag", KW);
    (s_atom_aux, "atom_aux", KW);
    (s_atom_flt, "atom_flt", KF);
    (s_astr_off, "astr_off", KW);
    (s_astr_blob, "astr_blob", KB);
    (s_lbl_keys, "lbl_keys", KW);
    (s_lbl_off, "lbl_off", KW);
    (s_lbl_pool, "lbl_pool", KW);
    (s_adjo_keys, "adjo_keys", KW);
    (s_adjo_off, "adjo_off", KW);
    (s_adjo_pool, "adjo_pool", KW);
    (s_adji_keys, "adji_keys", KW);
    (s_adji_off, "adji_off", KW);
    (s_adji_pool, "adji_pool", KW);
    (s_attr_keys, "attr_keys", KW);
    (s_attr_off, "attr_off", KW);
    (s_attr_pool, "attr_pool", KW);
    (s_childo_off, "childo_off", KW);
    (s_childo_pool, "childo_pool", KW);
    (s_childi_off, "childi_off", KW);
    (s_childi_pool, "childi_pool", KW);
    (s_refo_off, "refo_off", KW);
    (s_refo_pool, "refo_pool", KW);
    (s_refi_off, "refi_off", KW);
    (s_refi_pool, "refi_pool", KW);
    (s_valn_keys, "valn_keys", KF);
    (s_valn_off, "valn_off", KW);
    (s_valn_pool, "valn_pool", KW);
    (s_vals_koff, "vals_koff", KW);
    (s_vals_kblob, "vals_kblob", KB);
    (s_vals_off, "vals_off", KW);
    (s_vals_pool, "vals_pool", KW);
    (s_edgn_keys, "edgn_keys", KW);
    (s_edgn_off, "edgn_off", KW);
    (s_edgn_pool, "edgn_pool", KW);
  |]

let spec_of_id id =
  let rec go i =
    if i >= Array.length section_specs then None
    else
      let (id', _, _) as s = section_specs.(i) in
      if id' = id then Some s else go (i + 1)
  in
  go 0

let name_of_id id =
  match spec_of_id id with Some (_, n, _) -> n | None -> Printf.sprintf "#%d" id

(* --- counters (served as METRICS lines) -------------------------------- *)

let saves = Atomic.make 0
let loads = Atomic.make 0
let save_us = Atomic.make 0
let load_us = Atomic.make 0
let last_bytes = Atomic.make 0

let note counter us_counter ~us ~bytes =
  Atomic.incr counter;
  ignore (Atomic.fetch_and_add us_counter us);
  Atomic.set last_bytes bytes

(** Counter lines in the serve METRICS [key=value] format, cumulative
    per process (ms totals across all saves/loads). *)
let stats_lines () =
  Printf.sprintf
    "snapshot_saves=%d\nsnapshot_loads=%d\nsnapshot_save_ms=%d\n\
     snapshot_load_ms=%d\nsnapshot_bytes=%d\n"
    (Atomic.get saves) (Atomic.get loads)
    (Atomic.get save_us / 1000)
    (Atomic.get load_us / 1000)
    (Atomic.get last_bytes)

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

(* --- checksums --------------------------------------------------------- *)

type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type chars = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* One word-mix for everything: sections are checksummed through the
   word view (so float and byte payloads mix their raw bits), the header
   through its little-endian bytes.  [land max_int] keeps the running
   hash in OCaml-int range on both paths ([Array1.get] of kind [int]
   and [Int64.to_int] both truncate modulo 2^63, so writer and reader
   agree even on corrupt words with the top bit set). *)
let mix h w = ((h * 1_000_003) lxor w) land max_int

(* Four interleaved lanes, folded together at the end: the serial
   multiply chain of a single-lane mix caps checksum throughput at one
   word per multiply latency, and sections total hundreds of MB.  Any
   flipped word still perturbs its lane and therefore the fold. *)
let checksum_words (va : words) lo nwords =
  let h0 = ref 0x1505 and h1 = ref 0x1505 in
  let h2 = ref 0x1505 and h3 = ref 0x1505 in
  let stop = lo + (nwords land lnot 3) in
  let i = ref lo in
  while !i < stop do
    h0 := mix !h0 (Bigarray.Array1.unsafe_get va !i);
    h1 := mix !h1 (Bigarray.Array1.unsafe_get va (!i + 1));
    h2 := mix !h2 (Bigarray.Array1.unsafe_get va (!i + 2));
    h3 := mix !h3 (Bigarray.Array1.unsafe_get va (!i + 3));
    i := !i + 4
  done;
  let h = ref (mix (mix (mix !h0 !h1) !h2) !h3) in
  for j = stop to lo + nwords - 1 do
    h := mix !h (Bigarray.Array1.unsafe_get va j)
  done;
  !h

let checksum_header_bytes (b : Bytes.t) =
  let h = ref 0x1505 in
  for i = 0 to (Bytes.length b / 8) - 1 do
    h := mix !h (Int64.to_int (Bytes.get_int64_le b (8 * i)))
  done;
  !h

let words_of_bytes nbytes = (nbytes + 7) / 8

(* header field slots (byte offsets) *)
let h_version = 8
let h_word_bytes = 16
let h_page = 24
let h_nsections = 32
let h_total = 40
let h_checksum = 48
let h_table = 64
let h_entry = 32 (* bytes per section-table entry: id, off, elems, checksum *)

(* --- save -------------------------------------------------------------- *)

type sec_data = W of int array | F of float array | B of Bytes.t

let sec_bytes = function
  | W a -> 8 * Array.length a
  | F a -> 8 * Array.length a
  | B b -> Bytes.length b

let sec_elems = function
  | W a -> Array.length a
  | F a -> Array.length a
  | B b -> Bytes.length b

let round_page x = (x + page - 1) / page * page

(* Flatten a posting map to (sorted keys, offsets, concatenated pool). *)
let flat_of_postings (p : Index.postings) : int array * int array * int array =
  let items =
    Array.of_list (Index.p_fold (fun k s acc -> (k, s) :: acc) p [])
  in
  Array.sort (fun (a, _) (b, _) -> compare (a : int) b) items;
  let nk = Array.length items in
  let keys = Array.make nk 0 in
  let off = Array.make (nk + 1) 0 in
  let total = Array.fold_left (fun acc (_, s) -> acc + Iset.length s) 0 items in
  let pool = Array.make total 0 in
  let w = ref 0 in
  Array.iteri
    (fun i (k, s) ->
      keys.(i) <- k;
      off.(i) <- !w;
      Iset.iter
        (fun v ->
          pool.(!w) <- v;
          incr w)
        s)
    items;
  off.(nk) <- !w;
  (keys, off, pool)

(* Flatten a dense per-node plane to (offsets, pool). *)
let flat_of_dense (d : Index.dense) ~n : int array * int array =
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + Iset.length (Index.d_get d i)
  done;
  let pool = Array.make off.(n) 0 in
  let w = ref 0 in
  for i = 0 to n - 1 do
    Iset.iter
      (fun v ->
        pool.(!w) <- v;
        incr w)
      (Index.d_get d i)
  done;
  (off, pool)

let blob_of_strings (arr : string array) : int array * Bytes.t =
  let off = Array.make (Array.length arr + 1) 0 in
  let b = Buffer.create 1024 in
  Array.iteri
    (fun i s ->
      off.(i) <- Buffer.length b;
      Buffer.add_string b s)
    arr;
  off.(Array.length arr) <- Buffer.length b;
  (off, Buffer.to_bytes b)

let kind_code : Graph.edge_kind -> int = function
  | Graph.Child -> 0
  | Graph.Attribute -> 1
  | Graph.Ref -> 2
  | Graph.Rel -> 3

(** Serialize the frozen snapshot behind [idx] to [path]; returns the
    file size in bytes.  The mutable digraph is never consulted (and a
    loaded, still-unthawed snapshot can be re-saved): everything comes
    from the CSR planes and the index postings. *)
let save ~path (idx : Index.t) : int =
  let t0 = now_us () in
  let csr = idx.Index.csr in
  let n = Gql_graph.Csr.n_nodes csr in
  let m = Gql_graph.Csr.n_edges csr in
  let syms = Symtab.to_array idx.Index.symtab in
  let n_syms = Array.length syms in
  let sym_id name =
    match Symtab.find idx.Index.symtab name with
    | Some s -> s
    | None -> invalid_arg "Store.save: edge name missing from symtab"
  in
  (* Deduplicate edge records: the planes store small record ids and the
     loader re-materialises one shared record per distinct
     (name, kind, ord, gen). *)
  let erec_tbl : (string * int * int option * int, int) Hashtbl.t =
    Hashtbl.create 64
  in
  let erec_rev = ref [] in
  let erec_n = ref 0 in
  let erec_id (e : Graph.edge) =
    let key = (e.Graph.name, kind_code e.Graph.kind, e.Graph.ord, e.Graph.gen) in
    match Hashtbl.find_opt erec_tbl key with
    | Some id -> id
    | None ->
      let id = !erec_n in
      incr erec_n;
      Hashtbl.replace erec_tbl key id;
      erec_rev := e :: !erec_rev;
      id
  in
  let out_erec = Array.map erec_id csr.Gql_graph.Csr.out_lab in
  let in_erec = Array.map erec_id csr.Gql_graph.Csr.in_lab in
  let erecs = Array.of_list (List.rev !erec_rev) in
  let u = Array.length erecs in
  let erec_name = Array.map (fun e -> sym_id e.Graph.name) erecs in
  let erec_kind =
    Array.map
      (fun e ->
        kind_code e.Graph.kind
        lor (match e.Graph.ord with Some _ -> 4 | None -> 0))
      erecs
  in
  let erec_ord =
    Array.map (fun e -> match e.Graph.ord with Some o -> o | None -> 0) erecs
  in
  let erec_gen = Array.map (fun e -> e.Graph.gen) erecs in
  (* Atom payloads in ascending node order; strings deduplicated. *)
  let astr_tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let astr_rev = ref [] in
  let astr_n = ref 0 in
  let astr_id s =
    match Hashtbl.find_opt astr_tbl s with
    | Some id -> id
    | None ->
      let id = !astr_n in
      incr astr_n;
      Hashtbl.replace astr_tbl s id;
      astr_rev := s :: !astr_rev;
      id
  in
  let tags = ref [] and auxs = ref [] and flts = ref [] in
  let n_flt = ref 0 and n_atoms = ref 0 in
  for i = n - 1 downto 0 do
    match Gql_graph.Csr.payload csr i with
    | Graph.Complex _ -> ()
    | Graph.Atom v ->
      incr n_atoms;
      let tag, aux =
        match v with
        | Value.String s -> (0, astr_id s)
        | Value.Int k -> (1, k)
        | Value.Float f ->
          flts := f :: !flts;
          incr n_flt;
          (2, !n_flt - 1)
        | Value.Bool b -> (3, if b then 1 else 0)
      in
      tags := tag :: !tags;
      auxs := aux :: !auxs
  done;
  (* the loop ran high-to-low, so the consed tag/aux lists come out in
     ascending node order; reversing the float list likewise puts pool
     slot [k] under the atom that was assigned aux [k] *)
  let atom_tag = Array.of_list !tags in
  let atom_aux = Array.of_list !auxs in
  let atom_flt = Array.of_list (List.rev !flts) in
  let astr_off, astr_blob =
    blob_of_strings (Array.of_list (List.rev !astr_rev))
  in
  let sym_off, sym_blob = blob_of_strings syms in
  (* node-symbol plane (and implicit node kinds: -1 = atom) *)
  let node_sym = Array.init n (fun i -> Gql_graph.Csr.node_sym csr i) in
  (* postings and dense planes *)
  let lbl_keys, lbl_off, lbl_pool = flat_of_postings idx.Index.by_label in
  let adjo_keys, adjo_off, adjo_pool = flat_of_postings idx.Index.out_by_name in
  let adji_keys, adji_off, adji_pool = flat_of_postings idx.Index.in_by_name in
  let attr_keys, attr_off, attr_pool = flat_of_postings idx.Index.attr_out in
  let childo_off, childo_pool = flat_of_dense idx.Index.child_out ~n in
  let childi_off, childi_pool = flat_of_dense idx.Index.child_in ~n in
  let refo_off, refo_pool = flat_of_dense idx.Index.ref_out ~n in
  let refi_off, refi_pool = flat_of_dense idx.Index.ref_in ~n in
  (* value table, split into numeric and textual buckets *)
  let vtbl = Index.by_value_tbl idx in
  let nums = ref [] and strs = ref [] in
  Hashtbl.iter
    (fun k s ->
      match k with
      | Index.Num f -> nums := (f, s) :: !nums
      | Index.Str str -> strs := (str, s) :: !strs)
    vtbl;
  let nums = Array.of_list !nums and strs = Array.of_list !strs in
  Array.sort (fun (a, _) (b, _) -> compare (a : float) b) nums;
  Array.sort (fun (a, _) (b, _) -> compare (a : string) b) strs;
  let concat_sets items =
    let nk = Array.length items in
    let off = Array.make (nk + 1) 0 in
    let total =
      Array.fold_left (fun acc (_, s) -> acc + Iset.length s) 0 items
    in
    let pool = Array.make total 0 in
    let w = ref 0 in
    Array.iteri
      (fun i (_, s) ->
        off.(i) <- !w;
        Iset.iter
          (fun v ->
            pool.(!w) <- v;
            incr w)
          s)
      items;
    off.(nk) <- !w;
    (off, pool)
  in
  let valn_keys = Array.map fst nums in
  let valn_off, valn_pool = concat_sets nums in
  let vals_koff, vals_kblob = blob_of_strings (Array.map fst strs) in
  let vals_off, vals_pool = concat_sets strs in
  (* per-name edge pairs, interleaved (src, dst) *)
  let etbl = Index.edges_tbl idx in
  let edges =
    Array.of_list (Hashtbl.fold (fun k v acc -> (k, v) :: acc) etbl [])
  in
  Array.sort (fun (a, _) (b, _) -> compare (a : int) b) edges;
  let edgn_keys = Array.map fst edges in
  let edgn_off = Array.make (Array.length edges + 1) 0 in
  Array.iteri
    (fun i (_, pairs) ->
      edgn_off.(i + 1) <- edgn_off.(i) + (2 * Array.length pairs))
    edges;
  let edgn_pool = Array.make edgn_off.(Array.length edges) 0 in
  Array.iteri
    (fun i (_, pairs) ->
      let base = edgn_off.(i) in
      Array.iteri
        (fun j (src, dst) ->
          edgn_pool.(base + (2 * j)) <- src;
          edgn_pool.(base + (2 * j) + 1) <- dst)
        pairs)
    edges;
  let roots_arr = Array.of_list (Graph.roots idx.Index.data) in
  let meta =
    [|
      word_tag; n; m; n_syms; idx.Index.stride; u; !n_atoms;
      Array.length roots_arr;
    |]
  in
  let secs : (int * sec_data) list =
    [
      (s_meta, W meta);
      (s_roots, W roots_arr);
      (s_sym_off, W sym_off);
      (s_sym_blob, B sym_blob);
      (s_node_sym, W node_sym);
      (s_out_off, W csr.Gql_graph.Csr.out_off);
      (s_out_dst, W csr.Gql_graph.Csr.out_dst);
      (s_out_erec, W out_erec);
      (s_in_off, W csr.Gql_graph.Csr.in_off);
      (s_in_src, W csr.Gql_graph.Csr.in_src);
      (s_in_erec, W in_erec);
      (s_erec_name, W erec_name);
      (s_erec_kind, W erec_kind);
      (s_erec_ord, W erec_ord);
      (s_erec_gen, W erec_gen);
      (s_atom_tag, W atom_tag);
      (s_atom_aux, W atom_aux);
      (s_atom_flt, F atom_flt);
      (s_astr_off, W astr_off);
      (s_astr_blob, B astr_blob);
      (s_lbl_keys, W lbl_keys);
      (s_lbl_off, W lbl_off);
      (s_lbl_pool, W lbl_pool);
      (s_adjo_keys, W adjo_keys);
      (s_adjo_off, W adjo_off);
      (s_adjo_pool, W adjo_pool);
      (s_adji_keys, W adji_keys);
      (s_adji_off, W adji_off);
      (s_adji_pool, W adji_pool);
      (s_attr_keys, W attr_keys);
      (s_attr_off, W attr_off);
      (s_attr_pool, W attr_pool);
      (s_childo_off, W childo_off);
      (s_childo_pool, W childo_pool);
      (s_childi_off, W childi_off);
      (s_childi_pool, W childi_pool);
      (s_refo_off, W refo_off);
      (s_refo_pool, W refo_pool);
      (s_refi_off, W refi_off);
      (s_refi_pool, W refi_pool);
      (s_valn_keys, F valn_keys);
      (s_valn_off, W valn_off);
      (s_valn_pool, W valn_pool);
      (s_vals_koff, W vals_koff);
      (s_vals_kblob, B vals_kblob);
      (s_vals_off, W vals_off);
      (s_vals_pool, W vals_pool);
      (s_edgn_keys, W edgn_keys);
      (s_edgn_off, W edgn_off);
      (s_edgn_pool, W edgn_pool);
    ]
  in
  (* layout: header page, then each section page-aligned *)
  let cur = ref page in
  let placed =
    List.map
      (fun (id, d) ->
        let off = !cur in
        cur := !cur + round_page (sec_bytes d);
        (id, off, d))
      secs
  in
  let total = !cur in
  let fd = Unix.openfile path [ O_RDWR; O_CREAT; O_TRUNC ] 0o644 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.ftruncate fd total;
  let va : words =
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.int Bigarray.c_layout true [| total / 8 |])
  in
  let vc : chars =
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.char Bigarray.c_layout true [| total |])
  in
  let vf : floats =
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.float64 Bigarray.c_layout true [| total / 8 |])
  in
  let entries =
    List.map
      (fun (id, off, d) ->
        (match d with
        | W a ->
          let base = off / 8 in
          Array.iteri (fun i v -> Bigarray.Array1.set va (base + i) v) a
        | F a ->
          let base = off / 8 in
          Array.iteri (fun i v -> Bigarray.Array1.set vf (base + i) v) a
        | B b ->
          Bytes.iteri (fun i c -> Bigarray.Array1.set vc (off + i) c) b);
        let ck = checksum_words va (off / 8) (words_of_bytes (sec_bytes d)) in
        (id, off, sec_elems d, ck))
      placed
  in
  let hdr = Bytes.make page '\000' in
  Bytes.blit_string magic 0 hdr 0 8;
  let set slot v = Bytes.set_int64_le hdr slot (Int64.of_int v) in
  set h_version format_version;
  set h_word_bytes 8;
  set h_page page;
  set h_nsections (List.length entries);
  set h_total total;
  List.iteri
    (fun i (id, off, elems, ck) ->
      let base = h_table + (i * h_entry) in
      set base id;
      set (base + 8) off;
      set (base + 16) elems;
      set (base + 24) ck)
    entries;
  set h_checksum (checksum_header_bytes hdr);
  Bytes.iteri (fun i c -> Bigarray.Array1.set vc i c) hdr;
  note saves save_us ~us:(now_us () - t0) ~bytes:total;
  total

(* --- mapped view ------------------------------------------------------- *)

type mapped = {
  mp_path : string;
  mp_total : int;
  mp_words : words;
  mp_chars : chars;
  mp_floats : floats;
  mp_secs : (int * int * int * int) array;
      (** id, byte offset, element count, checksum *)
}

let really_read fd buf =
  let rec go off =
    if off >= Bytes.length buf then off
    else
      let k = Unix.read fd buf off (Bytes.length buf - off) in
      if k = 0 then off else go (off + k)
  in
  go 0

(* Parse and fully distrust the header: magic, version, word layout,
   page size, recorded total vs. actual file size (truncation), table
   bounds, whole-header checksum — then (with [verify]) every section's
   bounds, alignment and checksum.  Anything off answers the typed
   error with the section name and byte offset. *)
let open_mapped ~verify path : mapped =
  let fail section offset fmt = err ~path ~section ~offset fmt in
  let fd = Unix.openfile path [ O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let size = (Unix.fstat fd).Unix.st_size in
  if size < page then
    fail "header" 0 "file is %d bytes, smaller than the %d-byte header page"
      size page;
  let hdr = Bytes.make page '\000' in
  if really_read fd hdr <> page then fail "header" 0 "short header read";
  if Bytes.sub_string hdr 0 8 <> magic then
    fail "header" 0 "bad magic %S (not a gql snapshot)"
      (String.escaped (Bytes.sub_string hdr 0 8));
  let geti slot = Int64.to_int (Bytes.get_int64_le hdr slot) in
  let version = geti h_version in
  if version <> format_version then
    fail "header" h_version "format version %d, this build reads version %d"
      version format_version;
  if geti h_word_bytes <> 8 then
    fail "header" h_word_bytes "word size %d, expected 8" (geti h_word_bytes);
  if geti h_page <> page then
    fail "header" h_page "page size %d, expected %d" (geti h_page) page;
  let total = geti h_total in
  if total <> size then
    fail "header" h_total
      "header records %d bytes but the file has %d (truncated or grown)" total
      size;
  if total mod page <> 0 then
    fail "header" h_total "total %d is not a page multiple" total;
  let nsec = geti h_nsections in
  if nsec < 0 || h_table + (nsec * h_entry) > page then
    fail "header" h_nsections "section table of %d entries overflows the header"
      nsec;
  let stored = geti h_checksum in
  Bytes.set_int64_le hdr h_checksum 0L;
  let computed = checksum_header_bytes hdr in
  if stored <> computed then
    fail "header" h_checksum "header checksum mismatch (stored %x, computed %x)"
      stored computed;
  let secs =
    Array.init nsec (fun i ->
        let base = h_table + (i * h_entry) in
        (geti base, geti (base + 8), geti (base + 16), geti (base + 24)))
  in
  let va : words =
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.int Bigarray.c_layout false [| total / 8 |])
  in
  let vc : chars =
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| total |])
  in
  let vf : floats =
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.float64 Bigarray.c_layout false [| total / 8 |])
  in
  Array.iter
    (fun (id, off, elems, ck) ->
      let name = name_of_id id in
      let kind =
        match spec_of_id id with
        | Some (_, _, k) -> k
        | None -> fail name off "unknown section id %d" id
      in
      let bytes = match kind with KW | KF -> 8 * elems | KB -> elems in
      if off < page || off mod page <> 0 then
        fail name off "section offset %d is not page-aligned" off;
      if elems < 0 || bytes < 0 || off + bytes > total then
        fail name off "section of %d elements overruns the %d-byte file" elems
          total;
      if verify then begin
        let computed = checksum_words va (off / 8) (words_of_bytes bytes) in
        if computed <> ck then
          fail name off "section checksum mismatch (stored %x, computed %x)" ck
            computed
      end)
    secs;
  { mp_path = path; mp_total = total; mp_words = va; mp_chars = vc;
    mp_floats = vf; mp_secs = secs }

let find_sec mp id : int * int =
  let rec go i =
    if i >= Array.length mp.mp_secs then
      err ~path:mp.mp_path ~section:(name_of_id id) ~offset:0
        "section missing from file"
    else
      let id', off, elems, _ = mp.mp_secs.(i) in
      if id' = id then (off, elems) else go (i + 1)
  in
  go 0

let sec_fail mp id fmt =
  let off, _ = find_sec mp id in
  err ~path:mp.mp_path ~section:(name_of_id id) ~offset:off fmt

(* Materialise a word section as a plain [int array] — the one blit per
   section that keeps [Iset]/CSR interop on native arrays. *)
let sec_words mp id : int array =
  let off, elems = find_sec mp id in
  let base = off / 8 in
  let va = mp.mp_words in
  if elems = 0 then [||]
  else begin
    let a = Array.make elems 0 in
    for i = 0 to elems - 1 do
      Array.unsafe_set a i (Bigarray.Array1.unsafe_get va (base + i))
    done;
    a
  end

(* Zero-copy views for the lazy sections: the data stays on disk until
   a cold lane forces it. *)
let word_view mp id : words =
  let off, elems = find_sec mp id in
  Bigarray.Array1.sub mp.mp_words (off / 8) elems

let float_view mp id : floats =
  let off, elems = find_sec mp id in
  Bigarray.Array1.sub mp.mp_floats (off / 8) elems

let char_view mp id : chars =
  let off, elems = find_sec mp id in
  Bigarray.Array1.sub mp.mp_chars off elems

let view_string (v : chars) ~off ~len : string =
  String.init len (fun i -> Bigarray.Array1.get v (off + i))

(* --- structural validation helpers ------------------------------------- *)

let check_len mp id (a : int array) ~expect =
  if Array.length a <> expect then
    sec_fail mp id "expected %d elements, found %d" expect (Array.length a)

(* Offsets: length count+1, starts at 0, monotone non-decreasing, ends
   exactly at the pool length — so every later slice access is in
   bounds by construction. *)
let check_offsets mp id (off : int array) ~count ~limit =
  check_len mp id off ~expect:(count + 1);
  if count >= 0 && Array.length off > 0 && off.(0) <> 0 then
    sec_fail mp id "offsets start at %d, not 0" off.(0);
  for i = 0 to count - 1 do
    if Array.unsafe_get off (i + 1) < Array.unsafe_get off i then
      sec_fail mp id "offsets decrease at entry %d (%d -> %d)" i off.(i)
        off.(i + 1)
  done;
  if count >= 0 && off.(count) <> limit then
    sec_fail mp id "offsets end at %d but the pool holds %d elements"
      off.(count) limit

let check_range mp id (a : int array) ~lo ~hi =
  let n = Array.length a in
  let i = ref 0 in
  while
    !i < n
    &&
    let v = Array.unsafe_get a !i in
    v >= lo && v < hi
  do
    incr i
  done;
  if !i < n then
    sec_fail mp id "element %d holds %d, outside [%d, %d)" !i a.(!i) lo hi

(* Posting keys must be strictly ascending: flat lookups binary-search
   them, and an unsorted key plane would answer wrong sets silently. *)
let check_keys mp id (keys : int array) =
  for i = 1 to Array.length keys - 1 do
    if Array.unsafe_get keys (i - 1) >= Array.unsafe_get keys i then
      sec_fail mp id "keys not strictly ascending at entry %d" i
  done

(* Pool slices must be sorted (Iset invariant); [strict] is off only for
   the edge-pair pool, where parallel edges legitimately repeat. *)
(* Specialised for the blitted pools: same invariant as {!check_slices}
   below, but direct array access — the closure-per-element cost is
   visible at 1M-node scale. *)
let check_slices_words mp id ~(off : int array) ~(pool : int array) =
  for i = 0 to Array.length off - 2 do
    for j = Array.unsafe_get off i + 1 to Array.unsafe_get off (i + 1) - 1 do
      if Array.unsafe_get pool (j - 1) >= Array.unsafe_get pool j then
        sec_fail mp id "pool slice %d not sorted at element %d" i j
    done
  done

let check_slices mp id ~(off : int array) ~(get : int -> int) ~strict =
  for i = 0 to Array.length off - 2 do
    for j = Array.unsafe_get off i + 1 to Array.unsafe_get off (i + 1) - 1 do
      let a = get (j - 1) and b = get j in
      if (strict && a >= b) || (not strict && a > b) then
        sec_fail mp id "pool slice %d not sorted at element %d" i j
    done
  done

(* --- info / validate / file_key ---------------------------------------- *)

let read_meta mp : int array =
  let meta = sec_words mp s_meta in
  check_len mp s_meta meta ~expect:8;
  if meta.(0) <> word_tag then
    sec_fail mp s_meta
      "word-layout tag mismatch (file written on a foreign endianness?)";
  Array.iteri
    (fun i v ->
      if i > 0 && v < 0 then sec_fail mp s_meta "negative count %d at slot %d" v i)
    meta;
  meta

type info = {
  info_bytes : int;
  info_format : int;
  info_nodes : int;
  info_edges : int;
  info_syms : int;
  info_sections : (string * int * int) list;
      (** name, byte offset, element count *)
}

(** Map the file and verify every checksum and header invariant without
    materialising anything — the "zero-copy open" half of the E17
    zero-copy vs blit measurement, and the engine behind
    [gql snapshot info]. *)
let validate path : info =
  let mp = open_mapped ~verify:true path in
  let meta = read_meta mp in
  {
    info_bytes = mp.mp_total;
    info_format = format_version;
    info_nodes = meta.(1);
    info_edges = meta.(2);
    info_syms = meta.(3);
    info_sections =
      Array.to_list
        (Array.map (fun (id, off, elems, _) -> (name_of_id id, off, elems))
           mp.mp_secs);
  }

(** Content key of a snapshot file, from the header checksum (which
    covers every section checksum, so it is content-addressing without
    re-reading the payload).  Raises {!Invalid_snapshot} on garbage. *)
let file_key path : string =
  let mp = open_mapped ~verify:false path in
  let rec table_ck i acc =
    if i >= Array.length mp.mp_secs then acc
    else
      let _, _, _, ck = mp.mp_secs.(i) in
      table_ck (i + 1) (mix acc ck)
  in
  Printf.sprintf "snap-%d-%x" mp.mp_total (table_ck 0 0x1505)

(* --- load -------------------------------------------------------------- *)

(** Load a snapshot: verify everything, blit the hot planes into native
    arrays, wire the cold lanes lazily, and return the graph + index
    pair ([Index.graph] of the result is the returned graph, so
    [Index.refresh] on a cache seeded with this index is a no-op until
    the graph grows).  The mutable digraph is NOT materialised — it
    thaws from the CSR on first scan-route/fork/render use. *)
let load ~path : Graph.t * Index.t =
  let t0 = now_us () in
  let mp = open_mapped ~verify:true path in
  let meta = read_meta mp in
  let n = meta.(1) and m = meta.(2) and n_syms = meta.(3) in
  let stride = meta.(4) and u = meta.(5) and n_atoms = meta.(6) in
  let n_roots = meta.(7) in
  if stride < 1 then sec_fail mp s_meta "stride %d < 1" stride;
  if n_atoms > n then sec_fail mp s_meta "%d atoms > %d nodes" n_atoms n;
  (* symbol table *)
  let sym_off = sec_words mp s_sym_off in
  let _, sym_blob_len = find_sec mp s_sym_blob in
  check_offsets mp s_sym_off sym_off ~count:n_syms ~limit:sym_blob_len;
  let sym_blob = char_view mp s_sym_blob in
  let syms =
    Array.init n_syms (fun i ->
        view_string sym_blob ~off:sym_off.(i)
          ~len:(sym_off.(i + 1) - sym_off.(i)))
  in
  let symtab =
    try Symtab.of_names syms
    with Invalid_argument _ ->
      sec_fail mp s_sym_blob "duplicate strings in symbol table"
  in
  (* edge records, shared across both label planes *)
  let erec_name = sec_words mp s_erec_name in
  let erec_kind = sec_words mp s_erec_kind in
  let erec_ord = sec_words mp s_erec_ord in
  let erec_gen = sec_words mp s_erec_gen in
  check_len mp s_erec_name erec_name ~expect:u;
  check_len mp s_erec_kind erec_kind ~expect:u;
  check_len mp s_erec_ord erec_ord ~expect:u;
  check_len mp s_erec_gen erec_gen ~expect:u;
  check_range mp s_erec_name erec_name ~lo:0 ~hi:(max 1 n_syms);
  check_range mp s_erec_kind erec_kind ~lo:0 ~hi:8;
  let erecs =
    Array.init u (fun k ->
        let kind =
          match erec_kind.(k) land 3 with
          | 0 -> Graph.Child
          | 1 -> Graph.Attribute
          | 2 -> Graph.Ref
          | _ -> Graph.Rel
        in
        {
          Graph.name = syms.(erec_name.(k));
          kind;
          ord = (if erec_kind.(k) land 4 <> 0 then Some erec_ord.(k) else None);
          gen = erec_gen.(k);
        })
  in
  (* CSR planes *)
  let out_off = sec_words mp s_out_off in
  let out_dst = sec_words mp s_out_dst in
  let out_erec_ids = sec_words mp s_out_erec in
  let in_off = sec_words mp s_in_off in
  let in_src = sec_words mp s_in_src in
  let in_erec_ids = sec_words mp s_in_erec in
  check_offsets mp s_out_off out_off ~count:n ~limit:m;
  check_offsets mp s_in_off in_off ~count:n ~limit:m;
  check_len mp s_out_dst out_dst ~expect:m;
  check_len mp s_in_src in_src ~expect:m;
  check_len mp s_out_erec out_erec_ids ~expect:m;
  check_len mp s_in_erec in_erec_ids ~expect:m;
  check_range mp s_out_dst out_dst ~lo:0 ~hi:(max 1 n);
  check_range mp s_in_src in_src ~lo:0 ~hi:(max 1 n);
  check_range mp s_out_erec out_erec_ids ~lo:0 ~hi:(max 1 u);
  check_range mp s_in_erec in_erec_ids ~lo:0 ~hi:(max 1 u);
  let dummy_edge = Graph.rel_edge "" in
  let lab_of ids =
    if u = 0 then [||]
    else begin
      let a = Array.make m dummy_edge in
      for i = 0 to m - 1 do
        a.(i) <- erecs.(ids.(i))
      done;
      a
    end
  in
  let out_lab = lab_of out_erec_ids in
  let in_lab = lab_of in_erec_ids in
  (* node payloads: one shared [Complex] box per symbol, atoms by cursor *)
  let node_sym = sec_words mp s_node_sym in
  check_len mp s_node_sym node_sym ~expect:n;
  check_range mp s_node_sym node_sym ~lo:(-1) ~hi:(max 1 n_syms);
  let atom_tag = sec_words mp s_atom_tag in
  let atom_aux = sec_words mp s_atom_aux in
  check_len mp s_atom_tag atom_tag ~expect:n_atoms;
  check_len mp s_atom_aux atom_aux ~expect:n_atoms;
  check_range mp s_atom_tag atom_tag ~lo:0 ~hi:4;
  let _, n_flt = find_sec mp s_atom_flt in
  let flt = float_view mp s_atom_flt in
  let astr_off = sec_words mp s_astr_off in
  let _, astr_blob_len = find_sec mp s_astr_blob in
  let n_astr = Array.length astr_off - 1 in
  if n_astr < 0 then sec_fail mp s_astr_off "empty offset section";
  check_offsets mp s_astr_off astr_off ~count:n_astr ~limit:astr_blob_len;
  let astr_blob = char_view mp s_astr_blob in
  let astrs =
    Array.init n_astr (fun i ->
        view_string astr_blob ~off:astr_off.(i)
          ~len:(astr_off.(i + 1) - astr_off.(i)))
  in
  let atom_box =
    Array.init n_atoms (fun k ->
        let aux = atom_aux.(k) in
        let v =
          match atom_tag.(k) with
          | 0 ->
            if aux < 0 || aux >= n_astr then
              sec_fail mp s_atom_aux "string id %d out of range" aux;
            Value.String astrs.(aux)
          | 1 -> Value.Int aux
          | 2 ->
            if aux < 0 || aux >= n_flt then
              sec_fail mp s_atom_aux "float id %d out of range" aux;
            Value.Float (Bigarray.Array1.get flt aux)
          | _ -> Value.Bool (aux <> 0)
        in
        Graph.Atom v)
  in
  let label_box = Array.map (fun s -> Graph.Complex s) syms in
  let payloads = Array.make n Graph.dummy_kind in
  let cursor = ref 0 in
  for i = 0 to n - 1 do
    let s = node_sym.(i) in
    if s >= 0 then payloads.(i) <- label_box.(s)
    else begin
      if !cursor >= n_atoms then
        sec_fail mp s_node_sym "more atom nodes than the %d recorded" n_atoms;
      payloads.(i) <- atom_box.(!cursor);
      incr cursor
    end
  done;
  if !cursor <> n_atoms then
    sec_fail mp s_node_sym "%d atom nodes, %d payloads recorded" !cursor n_atoms;
  let csr =
    Gql_graph.Csr.of_planes ~payloads ~out_off ~out_dst ~out_lab ~in_off
      ~in_src ~in_lab ~node_syms:node_sym
  in
  (* roots and the lazily-thawed mutable graph *)
  let roots_arr = sec_words mp s_roots in
  check_len mp s_roots roots_arr ~expect:n_roots;
  check_range mp s_roots roots_arr ~lo:0 ~hi:(max 1 n);
  let graph =
    Graph.of_thaw ~n_nodes:n ~n_edges:m ~roots:(Array.to_list roots_arr)
      (fun () -> Gql_graph.Csr.thaw csr ~dummy:Graph.dummy_kind)
  in
  (* flat posting maps (hot: blitted) *)
  let postings keys_id off_id pool_id ~key_hi =
    let keys = sec_words mp keys_id in
    let off = sec_words mp off_id in
    let pool = sec_words mp pool_id in
    check_keys mp keys_id keys;
    check_range mp keys_id keys ~lo:0 ~hi:key_hi;
    check_offsets mp off_id off ~count:(Array.length keys)
      ~limit:(Array.length pool);
    check_range mp pool_id pool ~lo:0 ~hi:(max 1 n);
    check_slices_words mp pool_id ~off ~pool;
    Index.P_flat { keys; off; pool }
  in
  let adj_hi = max 1 (((n - 1) * stride) + n_syms) in
  let by_label = postings s_lbl_keys s_lbl_off s_lbl_pool ~key_hi:(max 1 n_syms) in
  let out_by_name = postings s_adjo_keys s_adjo_off s_adjo_pool ~key_hi:adj_hi in
  let in_by_name = postings s_adji_keys s_adji_off s_adji_pool ~key_hi:adj_hi in
  let attr_out = postings s_attr_keys s_attr_off s_attr_pool ~key_hi:adj_hi in
  let dense off_id pool_id =
    let off = sec_words mp off_id in
    let pool = sec_words mp pool_id in
    check_offsets mp off_id off ~count:n ~limit:(Array.length pool);
    check_range mp pool_id pool ~lo:0 ~hi:(max 1 n);
    check_slices_words mp pool_id ~off ~pool;
    Index.D_flat { off; pool }
  in
  let child_out = dense s_childo_off s_childo_pool in
  let child_in = dense s_childi_off s_childi_pool in
  let ref_out = dense s_refo_off s_refo_pool in
  let ref_in = dense s_refi_off s_refi_pool in
  (* all-complex / all-atoms from the node-symbol plane *)
  let all_complex = Array.make (n - n_atoms) 0 in
  let all_atoms = Array.make n_atoms 0 in
  let wc = ref 0 and wa = ref 0 in
  for i = 0 to n - 1 do
    if node_sym.(i) >= 0 then begin
      all_complex.(!wc) <- i;
      incr wc
    end
    else begin
      all_atoms.(!wa) <- i;
      incr wa
    end
  done;
  (* value table: validated eagerly, materialised lazily off the views *)
  let valn_keys = float_view mp s_valn_keys in
  let valn_off = sec_words mp s_valn_off in
  let valn_pool = word_view mp s_valn_pool in
  let n_num = Bigarray.Array1.dim valn_keys in
  check_offsets mp s_valn_off valn_off ~count:n_num
    ~limit:(Bigarray.Array1.dim valn_pool);
  check_slices mp s_valn_pool ~off:valn_off
    ~get:(fun i -> Bigarray.Array1.get valn_pool i)
    ~strict:true;
  let vals_koff = sec_words mp s_vals_koff in
  let _, vals_kblob_len = find_sec mp s_vals_kblob in
  let n_str = Array.length vals_koff - 1 in
  if n_str < 0 then sec_fail mp s_vals_koff "empty offset section";
  check_offsets mp s_vals_koff vals_koff ~count:n_str ~limit:vals_kblob_len;
  let vals_kblob = char_view mp s_vals_kblob in
  let vals_off = sec_words mp s_vals_off in
  let vals_pool = word_view mp s_vals_pool in
  check_offsets mp s_vals_off vals_off ~count:n_str
    ~limit:(Bigarray.Array1.dim vals_pool);
  check_slices mp s_vals_pool ~off:vals_off
    ~get:(fun i -> Bigarray.Array1.get vals_pool i)
    ~strict:true;
  let slice_set (pool : words) lo hi =
    Iset.unsafe_of_sorted_array
      (Array.init (hi - lo) (fun j -> Bigarray.Array1.get pool (lo + j)))
  in
  let by_value_mk () =
    let h = Hashtbl.create (max 16 (n_num + n_str)) in
    for i = 0 to n_num - 1 do
      Hashtbl.replace h
        (Index.Num (Bigarray.Array1.get valn_keys i))
        (slice_set valn_pool valn_off.(i) valn_off.(i + 1))
    done;
    for i = 0 to n_str - 1 do
      Hashtbl.replace h
        (Index.Str
           (view_string vals_kblob ~off:vals_koff.(i)
              ~len:(vals_koff.(i + 1) - vals_koff.(i))))
        (slice_set vals_pool vals_off.(i) vals_off.(i + 1))
    done;
    h
  in
  (* per-name edge pairs: counts eager (planner stats), pairs lazy *)
  let edgn_keys = sec_words mp s_edgn_keys in
  let edgn_off = sec_words mp s_edgn_off in
  let edgn_pool = word_view mp s_edgn_pool in
  check_keys mp s_edgn_keys edgn_keys;
  check_range mp s_edgn_keys edgn_keys ~lo:0 ~hi:(max 1 n_syms);
  check_offsets mp s_edgn_off edgn_off ~count:(Array.length edgn_keys)
    ~limit:(Bigarray.Array1.dim edgn_pool);
  Array.iteri
    (fun i _ ->
      if (edgn_off.(i + 1) - edgn_off.(i)) mod 2 <> 0 then
        sec_fail mp s_edgn_off "odd pair-pool slice at entry %d" i)
    edgn_keys;
  let counts =
    Array.init (Array.length edgn_keys) (fun i ->
        (edgn_keys.(i), (edgn_off.(i + 1) - edgn_off.(i)) / 2))
  in
  let edgn_mk () =
    let h = Hashtbl.create (max 16 (Array.length edgn_keys)) in
    Array.iteri
      (fun i sym ->
        let lo = edgn_off.(i) in
        let cnt = (edgn_off.(i + 1) - lo) / 2 in
        Hashtbl.replace h sym
          (Array.init cnt (fun j ->
               ( Bigarray.Array1.get edgn_pool (lo + (2 * j)),
                 Bigarray.Array1.get edgn_pool (lo + (2 * j) + 1) ))))
      edgn_keys;
    h
  in
  let index =
    {
      Index.data = graph;
      csr;
      version = (n, m);
      symtab;
      stride;
      by_label;
      by_value = Index.V_lazy by_value_mk;
      all_complex = Iset.unsafe_of_sorted_array all_complex;
      all_atoms = Iset.unsafe_of_sorted_array all_atoms;
      out_by_name;
      in_by_name;
      attr_out;
      child_out;
      child_in;
      ref_out;
      ref_in;
      edges_by_name = Index.E_lazy { counts; mk = edgn_mk };
      path_lock = Mutex.create ();
      planes = Hashtbl.create 4;
      path_specs = Hashtbl.create 8;
      path_memo = Hashtbl.create 64;
    }
  in
  note loads load_us ~us:(now_us () - t0) ~bytes:mp.mp_total;
  (graph, index)
