(** Snapshot-local string interning.

    Every frozen {!Index} owns one symbol table mapping the strings the
    data path compares in its hot loops — node labels and edge names —
    to dense integer ids, so candidate tests become integer compares and
    postings can be keyed by id.  Ids are *snapshot-local*: a table is
    built alongside its index (and rebuilt with it on a [gql serve]
    reload), and ids from different snapshots must never be compared —
    the same label can intern to different ids in different builds.

    Interning is mutex-protected so pool workers touching a snapshot
    while another thread is still interning (a reload racing a late
    query) stay safe; the read side ([name]) is lock-free because the
    backing store is append-only and [resolve]/[intern] publish a fully
    written array before bumping [len]. *)

type t = {
  lock : Mutex.t;
  tbl : (string, int) Hashtbl.t;
  mutable names : string array;  (** id -> string; grows by doubling *)
  mutable len : int;
}

let create ?(size = 64) () : t =
  {
    lock = Mutex.create ();
    tbl = Hashtbl.create size;
    names = Array.make (max 1 size) "";
    len = 0;
  }

let length t = t.len

(** The id of [s], minting a fresh one on first sight.  Thread-safe. *)
let intern (t : t) (s : string) : int =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl s with
      | Some id -> id
      | None ->
        let id = t.len in
        if id = Array.length t.names then begin
          let bigger = Array.make (2 * id) "" in
          Array.blit t.names 0 bigger 0 id;
          t.names <- bigger
        end;
        t.names.(id) <- s;
        t.len <- id + 1;
        Hashtbl.replace t.tbl s id;
        id)

(** The id of [s] if it was ever interned — the query-side lookup.  A
    miss means no node/edge in the snapshot carries the string, so a
    query naming it can only match the empty set. *)
let find (t : t) (s : string) : int option =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.tbl s)

(** The string behind [id].  Ids come from this table, so out-of-range
    is a programming error. *)
let name (t : t) (id : int) : string =
  if id < 0 || id >= t.len then invalid_arg "Symtab.name: unknown id";
  t.names.(id)

(** All interned strings in id order (a build-order snapshot). *)
let to_array (t : t) : string array =
  Mutex.protect t.lock (fun () -> Array.sub t.names 0 t.len)

(** Rebuild a table whose id [i] resolves to [names.(i)] — how the
    snapshot loader restores a saved table so every id recorded in the
    file's planes resolves exactly as it did in the saved index.  Takes
    ownership of [names]; entries must be distinct. *)
let of_names (names : string array) : t =
  let n = Array.length names in
  let tbl = Hashtbl.create (max 64 n) in
  Array.iteri (fun i s -> Hashtbl.replace tbl s i) names;
  if Hashtbl.length tbl <> n then
    invalid_arg "Symtab.of_names: duplicate entries";
  { lock = Mutex.create (); tbl; names = (if n = 0 then [| "" |] else names);
    len = n }
